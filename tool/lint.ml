(* The rtlint engine: parses .ml files with the in-tree compiler
   front-end (compiler-libs, version-matched by construction) and runs
   syntactic rules that guard the invariants the learner's hot path
   depends on.  No typing pass: every rule is decidable on the
   Parsetree plus a little per-file context (local [compare]
   rebindings, Domain_pool aliases, directory scoping). *)

module F = Rt_check.Finding

(* The seven-value dependency lattice; a pattern naming one of these is
   how we recognise a match over [Depval.t] without type information. *)
let depval_ctors =
  [ "Par"; "Fwd"; "Bwd"; "Bi"; "Fwd_maybe"; "Bwd_maybe"; "Bi_maybe" ]

let wall_clock_idents =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ];
    [ "Random"; "self_init" ] ]

let poly_hash_idents =
  [ [ "Hashtbl"; "hash" ]; [ "Hashtbl"; "seeded_hash" ];
    [ "Hashtbl"; "hash_param" ] ]

let mutating_idents =
  [ [ "Array"; "set" ]; [ "Array"; "unsafe_set" ]; [ "Array"; "fill" ];
    [ "Array"; "blit" ]; [ "Bytes"; "set" ]; [ "Bytes"; "unsafe_set" ];
    [ "Bytes"; "fill" ]; [ "Bytes"; "blit" ]; [ "String"; "set" ] ]

(* RTL007: every durable file the tools publish (models, checkpoints,
   traces, reports) must go through the atomic temp-and-rename funnel,
   so a crash mid-write never leaves a truncated file for a reader.
   [Rt_util.Atomic_file] and the store own the raw syscalls; direct
   [open_out]/[Sys.rename] anywhere else is a finding. *)
let persist_write_idents =
  [ [ "open_out" ]; [ "open_out_bin" ]; [ "open_out_gen" ];
    [ "Sys"; "rename" ] ]

type ctx = {
  file : string;
  mutable findings : F.t list;
  allow_wall_clock : bool;   (* lib/obs and lib/sim own the clock *)
  check_pool_rule : bool;    (* off inside domain_pool.ml itself *)
  check_ingest_rule : bool;  (* only in the packed ingest hot path *)
  check_persist_rule : bool; (* off in atomic_file.ml and lib/store *)
  mutable defines_compare : bool;
  mutable pool_aliases : string list;
}

let pos_of_loc file (loc : Location.t) =
  let p = loc.loc_start in
  F.at ~file ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol)

let emit ctx ?(severity = F.Error) ~loc rule fmt =
  Printf.ksprintf
    (fun message ->
      ctx.findings <-
        F.v ~pos:(pos_of_loc ctx.file loc) ~rule ~severity message
        :: ctx.findings)
    fmt

(* Suffix match so [Stdlib.Hashtbl.hash] still counts as
   [Hashtbl.hash]. *)
let path_ends_with suffix path =
  let ls = List.length suffix and lp = List.length path in
  lp >= ls
  && (let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
      drop (lp - ls) path = suffix)

let ident_path (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | _ -> None

let rec strip_constraint (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_constraint e
  | _ -> e

(* {2 Pattern helpers} *)

let pat_bound_names (p : Parsetree.pattern) =
  let acc = ref [] in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.pat it p;
  !acc

let rec pat_mentions_depval (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
      List.mem (Longident.last txt) depval_ctors
      || (match arg with
         | Some (_, p) -> pat_mentions_depval p
         | None -> false)
  | Ppat_or (a, b) -> pat_mentions_depval a || pat_mentions_depval b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p)
  | Ppat_exception p | Ppat_lazy p ->
      pat_mentions_depval p
  | Ppat_tuple ps | Ppat_array ps -> List.exists pat_mentions_depval ps
  | Ppat_record (fields, _) ->
      List.exists (fun (_, p) -> pat_mentions_depval p) fields
  | _ -> false

let rec pat_is_catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_is_catch_all p
  | _ -> false

let expr_is_depval_ctor (e : Parsetree.expression) =
  match (strip_constraint e).pexp_desc with
  | Pexp_construct ({ txt; _ }, _) ->
      List.mem (Longident.last txt) depval_ctors
  | _ -> false

(* {2 RTL004: closures handed to Domain_pool}

   Two over-approximating passes over the closure: first collect every
   name the closure binds anywhere (parameters, lets, match cases);
   then flag any mutation whose target is not one of those — i.e. a
   captured ref/array/bytes, or module-level state.  Results computed
   on pool domains must flow back through return values only. *)

let closure_local_names (e : Parsetree.expression) =
  let acc = ref [] in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.expr it e;
  !acc

let mutation_target (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some path -> (
          let arg1 () =
            match args with (_, a) :: _ -> Some (strip_constraint a) | [] -> None
          in
          if path_ends_with [ ":=" ] path || path_ends_with [ "incr" ] path
             || path_ends_with [ "decr" ] path
          then arg1 ()
          else if List.exists (fun m -> path_ends_with m path) mutating_idents
          then arg1 ()
          else None)
      | None -> None)
  | Pexp_setfield (obj, _, _) -> Some (strip_constraint obj)
  | _ -> None

let check_pool_closure ctx (closure : Parsetree.expression) =
  let locals = closure_local_names closure in
  let expr it (e : Parsetree.expression) =
    (match mutation_target e with
    | Some target -> (
        match target.pexp_desc with
        | Pexp_ident { txt = Longident.Lident name; _ }
          when List.mem name locals ->
            ()
        | Pexp_ident { txt; _ } ->
            emit ctx ~loc:e.pexp_loc "RTL004"
              "closure passed to Domain_pool mutates captured state \
               (%s); pool results must flow back through return values"
              (String.concat "." (Longident.flatten txt))
        | _ ->
            emit ctx ~loc:e.pexp_loc "RTL004"
              "closure passed to Domain_pool mutates state it did not \
               allocate; pool results must flow back through return values")
    | None -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it closure

let is_pool_call ctx (f : Parsetree.expression) =
  match ident_path f with
  | Some path ->
      List.mem "Domain_pool" path
      || (match path with
         | m :: _ :: _ -> List.mem m ctx.pool_aliases
         | _ -> false)
  | None -> false

let rec is_fun_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) -> is_fun_literal e
  | _ -> false

(* {2 RTL006: heap allocation in the packed ingest hot loop}

   The zero-allocation contract of the mmap reader and the event arena
   is that their scan loops touch only the mapped buffer, the packed
   Bigarray and scalar refs — one record or tuple built per event and
   the minor heap churns in proportion to the trace. The rule is
   syntactic and scoped: direct [Pexp_record]/[Pexp_tuple] construction
   anywhere inside a [while]/[for] body, in the two files that own the
   hot path. Error raises allocate too, but only once per failed load,
   so constructions whose enclosing expression is a [raise] application
   are exempt. *)

let ingest_hot_files = [ "mmap_io.ml"; "event_arena.ml" ]

let rec is_raise_apply (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some path ->
          path_ends_with [ "raise" ] path
          || path_ends_with [ "failwith" ] path
          || path_ends_with [ "invalid_arg" ] path
          || (match List.rev path with
             | last :: _ -> last = "fail"
             | [] -> false)
      | None -> false)
  | Pexp_constraint (e, _) -> is_raise_apply e
  | _ -> false

let check_hot_loop_body ctx (body : Parsetree.expression) =
  let expr it (e : Parsetree.expression) =
    if is_raise_apply e then ()  (* error paths may box their payload *)
    else
      match e.pexp_desc with
      (* A nested loop's body is flagged once, by its own visit in the
         main pass; only its condition/bounds belong to this body. *)
      | Pexp_while (cond, _) -> it.Ast_iterator.expr it cond
      | Pexp_for (_, lo, hi, _, _) ->
          it.Ast_iterator.expr it lo;
          it.Ast_iterator.expr it hi
      | desc ->
          (match desc with
          | Pexp_record _ ->
              emit ctx ~loc:e.pexp_loc "RTL006"
                "record construction in a packed-ingest loop allocates \
                 per event; keep loop state in the arena or in scalar \
                 refs"
          | Pexp_tuple _ ->
              emit ctx ~loc:e.pexp_loc "RTL006"
                "tuple construction in a packed-ingest loop allocates \
                 per event; keep loop state in the arena or in scalar \
                 refs"
          | _ -> ());
          Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body

(* {2 The main per-expression rule pass} *)

let check_cases ctx kind (cases : Parsetree.case list) =
  let over_depval =
    List.exists (fun (c : Parsetree.case) -> pat_mentions_depval c.pc_lhs) cases
  in
  if over_depval then
    List.iter
      (fun (c : Parsetree.case) ->
        if pat_is_catch_all c.pc_lhs then
          emit ctx ~loc:c.pc_lhs.ppat_loc "RTL005"
            "wildcard in a %s over the dependency lattice: enumerate \
             all 7 Depval constructors so new values cannot be \
             silently misclassified"
            kind)
      cases

let check_expr ctx (e : Parsetree.expression) =
  (match ident_path e with
  | Some path ->
      if List.exists (fun p -> path_ends_with p path) poly_hash_idents then
        emit ctx ~loc:e.pexp_loc "RTL001"
          "%s is the polymorphic hash: on lattice and hypothesis \
           values it hashes structure, not identity; use a dedicated \
           hash over Depval.index"
          (String.concat "." path);
      if path_ends_with [ "Stdlib"; "compare" ] path
         || path_ends_with [ "Pervasives"; "compare" ] path
         || (path = [ "compare" ] && not ctx.defines_compare)
      then
        emit ctx ~loc:e.pexp_loc "RTL002"
          "polymorphic compare: on lattice and hypothesis values its \
           order is representation-dependent and it boxes; use a \
           monomorphic comparison";
      if (not ctx.allow_wall_clock)
         && List.exists (fun p -> path_ends_with p path) wall_clock_idents
      then
        emit ctx ~loc:e.pexp_loc "RTL003"
          "%s reads the wall clock: timing must come from the trace \
           or Rt_obs.Registry.now_ns so runs stay reproducible"
          (String.concat "." path);
      if ctx.check_persist_rule
         && List.exists (fun p -> path_ends_with p path) persist_write_idents
      then
        emit ctx ~loc:e.pexp_loc "RTL007"
          "direct %s on a persistence path: route whole-file writes \
           through Rt_util.Atomic_file (or the store) so a crash never \
           publishes a truncated file"
          (String.concat "." path)
  | None -> ());
  match e.pexp_desc with
  | Pexp_apply (f, args) ->
      (match ident_path f with
      | Some [ op ] when op = "=" || op = "<>" ->
          let ctor_operand =
            List.exists (fun (_, a) -> expr_is_depval_ctor a) args
          in
          if ctor_operand then
            emit ctx ~loc:e.pexp_loc "RTL002"
              "polymorphic (%s) against a Depval constructor; use \
               Depval.equal (or match) so the comparison stays \
               monomorphic"
              op
      | _ -> ());
      if ctx.check_pool_rule && is_pool_call ctx f then
        List.iter
          (fun (_, a) -> if is_fun_literal a then check_pool_closure ctx a)
          args
  | Pexp_match (_, cases) -> check_cases ctx "match" cases
  | Pexp_function cases -> check_cases ctx "function" cases
  | Pexp_while (_, body) when ctx.check_ingest_rule ->
      check_hot_loop_body ctx body
  | Pexp_for (_, _, _, _, body) when ctx.check_ingest_rule ->
      check_hot_loop_body ctx body
  | _ -> ()

(* {2 Per-file prescan: local [compare] rebindings, pool aliases} *)

let prescan ctx (str : Parsetree.structure) =
  let value_binding it (vb : Parsetree.value_binding) =
    if List.mem "compare" (pat_bound_names vb.pvb_pat) then
      ctx.defines_compare <- true;
    Ast_iterator.default_iterator.value_binding it vb
  in
  let module_binding it (mb : Parsetree.module_binding) =
    (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
    | Some name, Pmod_ident { txt; _ }
      when List.mem "Domain_pool" (Longident.flatten txt) ->
        ctx.pool_aliases <- name :: ctx.pool_aliases
    | _ -> ());
    Ast_iterator.default_iterator.module_binding it mb
  in
  let it =
    { Ast_iterator.default_iterator with value_binding; module_binding }
  in
  it.structure it str

(* {2 Suppression comments}

   [(* rtlint: allow RTL003 <why it is safe here> *)] on the flagged
   line or the line above suppresses that rule at that site.  A
   suppression without a reason does not document why the invariant
   holds, so it is replaced by an RTL000 error instead of silencing
   anything for free. *)

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* Returns [Some reason] when [line] carries an allow-comment for
   [rule]; the reason may be empty. *)
let suppression_on line rule =
  match find_sub line "rtlint: allow " with
  | None -> None
  | Some i ->
      let rest =
        String.sub line (i + 14) (String.length line - i - 14)
        |> String.trim
      in
      if String.length rest >= String.length rule
         && String.sub rest 0 (String.length rule) = rule
      then
        let after =
          String.sub rest (String.length rule)
            (String.length rest - String.length rule)
        in
        let reason =
          match find_sub after "*)" with
          | Some j -> String.trim (String.sub after 0 j)
          | None -> String.trim after
        in
        Some reason
      else None

let apply_suppressions ~file ~lines findings =
  let line_at n =
    if n >= 1 && n <= Array.length lines then lines.(n - 1) else ""
  in
  List.concat_map
    (fun (f : F.t) ->
      match f.pos with
      | None -> [ f ]
      | Some p -> (
          let hit =
            match suppression_on (line_at p.line) f.rule with
            | Some r -> Some (p.line, r)
            | None -> (
                match suppression_on (line_at (p.line - 1)) f.rule with
                | Some r -> Some (p.line - 1, r)
                | None -> None)
          in
          match hit with
          | None -> [ f ]
          | Some (_, reason) when String.length reason > 0 -> []
          | Some (line, _) ->
              [ F.v
                  ~pos:(F.at ~file ~line ~col:0)
                  ~rule:"RTL000" ~severity:F.Error
                  (Printf.sprintf
                     "suppression of %s without a justification; write \
                      (* rtlint: allow %s <reason> *)"
                     f.rule f.rule) ]))
    findings

(* {2 Entry points} *)

let contains_dir path dir =
  Option.is_some (find_sub path dir)

let lint_source ~file text =
  let ctx =
    {
      file;
      findings = [];
      allow_wall_clock =
        contains_dir file "lib/obs/" || contains_dir file "lib/sim/";
      check_pool_rule = not (contains_dir file "domain_pool.ml");
      check_ingest_rule =
        List.mem (Filename.basename file) ingest_hot_files;
      check_persist_rule =
        (not (contains_dir file "lib/store/"))
        && Filename.basename file <> "atomic_file.ml";
      defines_compare = false;
      pool_aliases = [];
    }
  in
  (match
     let lexbuf = Lexing.from_string text in
     Location.init lexbuf file;
     Parse.implementation lexbuf
   with
  | str ->
      prescan ctx str;
      let expr it (e : Parsetree.expression) =
        check_expr ctx e;
        Ast_iterator.default_iterator.expr it e
      in
      let it = { Ast_iterator.default_iterator with expr } in
      it.structure it str
  | exception exn ->
      let loc, msg =
        match exn with
        | Syntaxerr.Error err ->
            (Syntaxerr.location_of_error err, "syntax error")
        | _ -> (Location.in_file file, Printexc.to_string exn)
      in
      emit ctx ~loc "RTL999" "cannot parse: %s" msg);
  let lines = String.split_on_char '\n' text |> Array.of_list in
  apply_suppressions ~file ~lines ctx.findings |> F.sort

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path = lint_source ~file:path (read_file path)

let skip_dirs = [ "_build"; ".git"; "fixtures" ]

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if List.mem entry skip_dirs then acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths paths =
  match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some missing -> Error (Printf.sprintf "no such file or directory: %s" missing)
  | None ->
      let files =
        List.fold_left collect_ml [] paths |> List.rev
      in
      Ok (List.concat_map lint_file files |> F.sort)
