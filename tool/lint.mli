(** The rtlint engine (the codebase prong of the static-analysis
    layer): syntactic rules over the Parsetree, parsed with the
    in-tree compiler front-end so the grammar always matches the
    toolchain.

    Rules (ids are stable, see {!Rt_check.Finding.rules}):
    - RTL001 no-poly-hash — [Hashtbl.hash] family
    - RTL002 no-poly-compare — bare/[Stdlib.compare], and [=]/[<>]
      against a Depval constructor; a file-local [let compare]
      rebinding disables the bare-ident form for that file
    - RTL003 no-wall-clock — [Unix.gettimeofday]/[Unix.time]/
      [Sys.time]/[Random.self_init] outside [lib/obs] and [lib/sim]
    - RTL004 no-captured-mutation — closures handed to [Domain_pool]
      mutating state they did not allocate
    - RTL005 depval-wildcard — catch-all cases in matches over the
      7-value lattice
    - RTL006 no-hot-loop-alloc — record/tuple construction inside a
      [while]/[for] body of the packed ingest path ([mmap_io.ml],
      [event_arena.ml]); raise/fail error paths are exempt
    - RTL000 suppression-needs-reason; RTL999 parse-error

    Suppression: [(* rtlint: allow RTL00X <reason> *)] on the flagged
    line or the line above. *)

val lint_source : file:string -> string -> Rt_check.Finding.t list
(** Lint source text as if read from [file]; [file] also drives the
    directory-scoped rules. Findings are sorted and suppressions
    already applied. *)

val lint_file : string -> Rt_check.Finding.t list

val lint_paths : string list -> (Rt_check.Finding.t list, string) result
(** Recursively lint every [.ml] under the given files/directories
    (skipping [_build], [.git] and test [fixtures]); [Error] when a
    path does not exist. *)
