(* rtlint — static analysis over the rtgen codebase itself.

   Exit codes follow the shared convention (Rt_check.Exit_code):
   0 clean, 1 findings at error severity, 2 input error (missing
   path), 3 internal error; cmdliner keeps 124 for CLI misuse. *)

module F = Rt_check.Finding
module Ec = Rt_check.Exit_code

open Cmdliner

let format_conv =
  let parse = function
    | "text" -> Ok F.Text
    | "json" -> Ok F.Json_format
    | "sarif" -> Ok F.Sarif
    | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))
  in
  let print ppf = function
    | F.Text -> Format.pp_print_string ppf "text"
    | F.Json_format -> Format.pp_print_string ppf "json"
    | F.Sarif -> Format.pp_print_string ppf "sarif"
  in
  Arg.conv (parse, print)

let paths_arg =
  let doc = "Files or directories to lint (default: lib bin bench)." in
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)

let format_arg =
  let doc = "Report format: $(b,text), $(b,json) or $(b,sarif)." in
  Arg.(value & opt format_conv F.Text & info [ "format" ] ~docv:"FMT" ~doc)

let output_arg =
  let doc = "Write the report to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let quiet_arg =
  let doc = "Suppress the report; only the exit code speaks." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let write_report output text =
  match output with
  | None -> print_string text
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text)

let run paths format output quiet =
  let paths = if paths = [] then [ "lib"; "bin"; "bench" ] else paths in
  match Rt_lint.Lint.lint_paths paths with
  | Error msg ->
      prerr_endline ("rtlint: " ^ msg);
      Ec.input_error
  | Ok findings ->
      if not quiet then
        write_report output (F.render ~tool:"rtlint" ~format findings);
      F.exit_code findings

let cmd =
  let doc = "static analysis for the rtgen codebase" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml file under the given paths with the \
         compiler front-end and enforces the project's hot-path \
         invariants: no polymorphic hash/compare on lattice values, \
         no wall-clock reads outside the observability and simulator \
         layers, no captured-state mutation in Domain_pool closures, \
         and no wildcard matches over the 7-value dependency lattice.";
      `P
        "Suppress a finding with (* rtlint: allow RTL00X reason *) on \
         the flagged line or the line above; the reason is mandatory.";
      `S Manpage.s_exit_status;
      `P "0 on a clean tree; 1 when findings of error severity exist; \
          2 when an input path is missing; 3 on internal errors.";
    ]
  in
  let term = Term.(const run $ paths_arg $ format_arg $ output_arg $ quiet_arg) in
  Cmd.v (Cmd.info "rtlint" ~version:"%%VERSION%%" ~doc ~man) term

let () =
  let code =
    try Cmd.eval' cmd
    with exn ->
      prerr_endline ("rtlint: internal error: " ^ Printexc.to_string exn);
      Ec.internal_error
  in
  exit code
