(* The streaming engine's contract: feeding a trace period by period is
   bit-identical to batch learning — same hypotheses, same counters — at
   every bound, every -j level, with snapshots taken mid-stream, and
   from a live segmented event stream instead of a materialized trace. *)

module Eng = Rt_engine.Engine
module L = Rt_engine.Learner
module Df = Rt_lattice.Depfun
module Reg = Rt_obs.Registry
module T = Rt_trace.Trace
module P = Rt_trace.Period
module E = Rt_trace.Event
module Es = Rt_trace.Event_source
module Seg = Rt_trace.Segmenter

let gm = Rt_case.Gm_model.trace ()

let hyp_strings hs = List.map Df.to_string hs

(* The deterministic prefix of a metrics dump: everything before the
   timing-dependent gauge/histogram/span sections. *)
let counters r =
  let s = Rt_obs.Json.to_string (Reg.to_json r) in
  let find needle from =
    let nn = String.length needle and nh = String.length s in
    let rec go i =
      if i + nn > nh then Alcotest.failf "no %S section in metrics" needle
      else if String.sub s i nn = needle then i
      else go (i + 1)
    in
    go from
  in
  let a = find "\"counters\"" 0 in
  String.sub s a (find "\"gauges\"" a - a)

let with_pool jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Rt_util.Domain_pool.create ~jobs in
    Fun.protect ~finally:(fun () -> Rt_util.Domain_pool.shutdown pool)
      (fun () -> f (Some pool))
  end

let engine_fed ?pool ?obs ~bound trace =
  let eng =
    Eng.create ?pool ?obs ~ntasks:(T.task_count trace)
      (Eng.Heuristic { bound })
  in
  List.iter (Eng.feed eng) (T.periods trace);
  Eng.finalize eng

(* --- batch = engine-fed, byte for byte --- *)

let check_equiv ~bound ~jobs () =
  let r_learner = Reg.create () and r_engine = Reg.create () in
  let rep =
    with_pool jobs (fun pool ->
        L.learn ?pool ~obs:r_learner (L.Heuristic bound) gm)
  in
  let snap =
    with_pool jobs (fun pool -> engine_fed ?pool ~obs:r_engine ~bound gm)
  in
  Alcotest.(check (list string)) "hypotheses byte-equal"
    (hyp_strings rep.L.hypotheses) (hyp_strings snap.Eng.hypotheses);
  Alcotest.(check (option string)) "lub equal"
    (Option.map Df.to_string rep.L.lub)
    (Option.map Df.to_string snap.Eng.lub);
  Alcotest.(check int) "periods" rep.L.periods snap.Eng.periods;
  Alcotest.(check int) "messages" rep.L.messages snap.Eng.messages;
  Alcotest.(check bool) "converged agrees" rep.L.converged snap.Eng.converged;
  Alcotest.(check string) "counters byte-equal"
    (counters r_learner) (counters r_engine)

let test_equiv_bound4_j1 () = check_equiv ~bound:4 ~jobs:1 ()
let test_equiv_bound4_j4 () = check_equiv ~bound:4 ~jobs:4 ()
let test_equiv_bound64_j1 () = check_equiv ~bound:64 ~jobs:1 ()
let test_equiv_bound64_j4 () = check_equiv ~bound:64 ~jobs:4 ()

(* --- mid-stream snapshots are free --- *)

let test_midstream_snapshot_is_free () =
  let eng =
    Eng.create ~ntasks:(T.task_count gm) (Eng.Heuristic { bound = 4 })
  in
  let periods = T.periods gm in
  let half = List.length periods / 2 in
  List.iteri (fun i p ->
      if i = half then begin
        let s = Eng.snapshot eng in
        Alcotest.(check int) "snapshot sees the fed prefix" half s.Eng.periods;
        Alcotest.(check bool) "mid-stream answer nonempty" true
          (s.Eng.hypotheses <> [])
      end;
      Eng.feed eng p)
    periods;
  let interrupted = Eng.finalize eng in
  let clean = engine_fed ~bound:4 gm in
  Alcotest.(check (list string)) "snapshot did not perturb the run"
    (hyp_strings clean.Eng.hypotheses)
    (hyp_strings interrupted.Eng.hypotheses);
  Alcotest.(check int) "periods" clean.Eng.periods interrupted.Eng.periods;
  Alcotest.(check int) "messages" clean.Eng.messages interrupted.Eng.messages

(* --- streamed periods from a flat event capture = batch --- *)

let flatten ~period_len trace =
  List.concat_map (fun (pd : P.t) ->
      List.map (fun (e : E.t) ->
          { e with E.time = e.time + (pd.index * period_len) })
        pd.events)
    (T.periods trace)

let test_feed_source_equals_batch () =
  let d = Rt_case.Gm_model.design () in
  let period_len = d.Rt_task.Design.period in
  let events = flatten ~period_len gm in
  let seg =
    Seg.create ~task_set:gm.task_set ~period_len (Es.of_list events)
  in
  let eng =
    Eng.create ~ntasks:(T.task_count gm) (Eng.Heuristic { bound = 4 })
  in
  (match Eng.feed_source eng seg with
   | Error e ->
     Alcotest.failf "segmentation failed at period %d" e.Seg.period_index
   | Ok n -> Alcotest.(check int) "all periods fed" (T.period_count gm) n);
  let streamed = Eng.finalize eng in
  let batch = L.learn (L.Heuristic 4) gm in
  (* The streamed periods carry absolute timestamps; the learner depends
     only on time differences, so the model is identical anyway. *)
  Alcotest.(check (list string)) "streamed = batch hypotheses"
    (hyp_strings batch.L.hypotheses) (hyp_strings streamed.Eng.hypotheses);
  Alcotest.(check int) "messages" batch.L.messages streamed.Eng.messages

(* --- live simulator feed = batch simulator run --- *)

let test_simulator_source_equals_run () =
  let d = Rt_case.Gm_model.design () in
  let cfg =
    { Rt_case.Gm_model.reference_config with Rt_sim.Simulator.periods = 6 }
  in
  let batch = Rt_sim.Simulator.run d cfg in
  let seg =
    Seg.create ~task_set:(Rt_task.Design.task_set d)
      ~period_len:d.Rt_task.Design.period
      (Rt_sim.Simulator.source d cfg)
  in
  let eng =
    Eng.create ~ntasks:(T.task_count batch) (Eng.Heuristic { bound = 4 })
  in
  (match Eng.feed_source eng seg with
   | Error _ -> Alcotest.fail "simulated stream must segment cleanly"
   | Ok n -> Alcotest.(check int) "6 periods" 6 n);
  let streamed = Eng.finalize eng in
  let from_trace = engine_fed ~bound:4 batch in
  Alcotest.(check (list string)) "same model from the live feed"
    (hyp_strings from_trace.Eng.hypotheses)
    (hyp_strings streamed.Eng.hypotheses);
  Alcotest.(check int) "same messages"
    from_trace.Eng.messages streamed.Eng.messages

(* --- the exact core, driven incrementally --- *)

let test_exact_engine_matches_run () =
  let t = Rt_case.Paper_example.trace () in
  let o = Rt_learn.Exact.run t in
  let eng =
    Eng.create ~ntasks:(T.task_count t) (Eng.Exact { limit = None })
  in
  List.iter (Eng.feed eng) (T.periods t);
  let snap = Eng.finalize eng in
  Alcotest.(check (list string)) "exact engine = Exact.run"
    (hyp_strings o.hypotheses) (hyp_strings snap.Eng.hypotheses);
  Alcotest.(check bool) "consistent" true snap.Eng.consistent;
  (match Eng.checkpoint eng with
   | Ok _ -> Alcotest.fail "exact core must refuse to checkpoint"
   | Error _ -> ())

(* --- checkpoint round trip through the engine API --- *)

let test_engine_checkpoint_roundtrip () =
  let eng =
    Eng.create ~ntasks:(T.task_count gm) (Eng.Heuristic { bound = 4 })
  in
  let periods = T.periods gm in
  let cut = 3 in
  List.iteri (fun i p -> if i < cut then Eng.feed eng p) periods;
  let data =
    match Eng.checkpoint ~tag:"roundtrip" eng with
    | Ok d -> d
    | Error m -> Alcotest.failf "checkpoint failed: %s" m
  in
  match Eng.resume data with
  | Error m -> Alcotest.failf "resume failed: %s" m
  | Ok (eng', tag) ->
    Alcotest.(check string) "tag preserved" "roundtrip" tag;
    Alcotest.(check int) "periods travel" cut (Eng.periods_fed eng');
    Alcotest.(check int) "messages travel"
      (Eng.messages_fed eng) (Eng.messages_fed eng');
    List.iteri (fun i p ->
        if i >= cut then begin Eng.feed eng p; Eng.feed eng' p end)
      periods;
    let a = Eng.finalize eng and b = Eng.finalize eng' in
    Alcotest.(check (list string)) "resumed run converges identically"
      (hyp_strings a.Eng.hypotheses) (hyp_strings b.Eng.hypotheses);
    Alcotest.(check int) "messages equal" a.Eng.messages b.Eng.messages

(* --- Learner facade: trajectory and monotonic timing --- *)

let test_auto_trajectory () =
  let rep, bound = L.auto gm in
  let steps = rep.L.trajectory in
  Alcotest.(check bool) "trajectory recorded" true (steps <> []);
  (* Bounds double from 1. *)
  List.iteri (fun i (s : L.bound_step) ->
      Alcotest.(check int) "doubling bounds" (1 lsl i) s.L.bound;
      Alcotest.(check bool) "elapsed is monotonic-clock nonnegative" true
        (s.L.elapsed_s >= 0.0);
      Alcotest.(check bool) "hypotheses within bound" true
        (s.L.hypotheses >= 1))
    steps;
  let last = List.nth steps (List.length steps - 1) in
  Alcotest.(check int) "returned bound is the last step's" last.L.bound bound;
  Alcotest.(check bool) "search stopped because the lub settled" false
    last.L.lub_changed;
  (* The report is the plain learn report at the chosen bound. *)
  let direct = L.learn (L.Heuristic bound) gm in
  Alcotest.(check (list string)) "auto report = learn at chosen bound"
    (hyp_strings direct.L.hypotheses) (hyp_strings rep.L.hypotheses)

let test_learn_elapsed_monotonic () =
  let rep = L.learn (L.Heuristic 2) gm in
  Alcotest.(check bool) "elapsed nonnegative" true (rep.L.elapsed_s >= 0.0);
  Alcotest.(check bool) "plain learn has no trajectory" true
    (rep.L.trajectory = [])

let test_learn_verify () =
  let rep = L.learn (L.Heuristic 4) gm in
  Alcotest.(check bool) "theorem 2 holds" true (L.verify rep gm)

let () =
  Alcotest.run "rt_engine"
    [
      ( "equivalence",
        [
          Alcotest.test_case "bound 4, -j 1" `Quick test_equiv_bound4_j1;
          Alcotest.test_case "bound 4, -j 4" `Quick test_equiv_bound4_j4;
          Alcotest.test_case "bound 64, -j 1" `Quick test_equiv_bound64_j1;
          Alcotest.test_case "bound 64, -j 4" `Quick test_equiv_bound64_j4;
          Alcotest.test_case "mid-stream snapshot" `Quick
            test_midstream_snapshot_is_free;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "feed_source = batch" `Quick
            test_feed_source_equals_batch;
          Alcotest.test_case "simulator live feed" `Quick
            test_simulator_source_equals_run;
        ] );
      ( "cores",
        [
          Alcotest.test_case "exact incremental" `Quick
            test_exact_engine_matches_run;
          Alcotest.test_case "checkpoint round trip" `Quick
            test_engine_checkpoint_roundtrip;
        ] );
      ( "facade",
        [
          Alcotest.test_case "auto trajectory" `Quick test_auto_trajectory;
          Alcotest.test_case "elapsed monotonic" `Quick
            test_learn_elapsed_monotonic;
          Alcotest.test_case "verify" `Quick test_learn_verify;
        ] );
    ]
