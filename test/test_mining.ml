module F = Rt_mining.Follows
module Om = Rt_mining.Order_miner
open Test_support

let trace () = fig2_trace ()

(* --- Follows statistics --- *)

let test_executed_counts () =
  let s = F.of_trace (trace ()) in
  Alcotest.(check int) "t1 in all 3" 3 (F.executed s 0);
  Alcotest.(check int) "t2 in 2" 2 (F.executed s 1);
  Alcotest.(check int) "t3 in 2" 2 (F.executed s 2);
  Alcotest.(check int) "t4 in all 3" 3 (F.executed s 3)

let test_co_executed () =
  let s = F.of_trace (trace ()) in
  Alcotest.(check int) "t1/t4 always" 3 (F.co_executed s 0 3);
  Alcotest.(check int) "t2/t3 once" 1 (F.co_executed s 1 2);
  Alcotest.(check int) "symmetric" (F.co_executed s 2 1) (F.co_executed s 1 2)

let test_preceded () =
  let s = F.of_trace (trace ()) in
  (* t1 always ends before t4 starts in the Fig.2 timings. *)
  Alcotest.(check int) "t1 before t4" 3 (F.preceded s 0 3);
  Alcotest.(check int) "t4 never before t1" 0 (F.preceded s 3 0)

let test_implies () =
  let s = F.of_trace (trace ()) in
  Alcotest.(check bool) "t1 -> t4 implied" true (F.implies s 0 3);
  Alcotest.(check bool) "t1 -> t2 not implied" false (F.implies s 0 1);
  Alcotest.(check bool) "t2 -> t1 implied" true (F.implies s 1 0)

let test_always_precedes () =
  let s = F.of_trace (trace ()) in
  Alcotest.(check bool) "t1 before t4" true (F.always_precedes s 0 3);
  Alcotest.(check bool) "t3 before t2 (only co-period)" true
    (F.always_precedes s 2 1);
  Alcotest.(check bool) "t2 not before t3" false (F.always_precedes s 1 2)

(* --- Order_miner --- *)

let test_miner_on_fig2 () =
  let mined = Om.infer (trace ()) in
  (* t1 always precedes t4 and implies it: definite forward. *)
  Alcotest.(check depval) "d(t1,t4)" Dv.Fwd (Df.get mined 0 3);
  (* t4 implies t1 and t1 precedes it: definite backward. *)
  Alcotest.(check depval) "d(t4,t1)" Dv.Bwd (Df.get mined 3 0);
  (* t1 only sometimes runs with t2: conditional. *)
  Alcotest.(check depval) "d(t1,t2)" Dv.Fwd_maybe (Df.get mined 0 1)

let test_miner_never_co_executed_is_par () =
  let trace = trace () in
  let two =
    Rt_trace.Trace.of_periods ~task_set:trace.task_set
      (List.filteri (fun i _ -> i < 2) (Rt_trace.Trace.periods trace))
  in
  let mined = Om.infer two in
  Alcotest.(check depval) "t2/t3 par" Dv.Par (Df.get mined 1 2);
  Alcotest.(check depval) "t3/t2 par" Dv.Par (Df.get mined 2 1)

let test_miner_output_sound_for_matching () =
  (* The mined function is built from ordering statistics, but it should
     still satisfy the execution-closure half of matching on the very
     trace it was mined from. *)
  let t = trace () in
  let mined = Om.infer t in
  List.iter (fun pd ->
      Alcotest.(check bool) "closure holds" true
        (Rt_learn.Matching.closure_ok mined pd))
    (Rt_trace.Trace.periods t)

let test_miner_overclaims_vs_learner () =
  (* The headline comparison: on a scheduled system the pure-ordering
     baseline reports scheduling coincidences as dependencies; the
     message-guided learner does not suffer the same direction of error
     on design ground truth. *)
  let design = pipeline_design 3 in
  let t = simulate ~periods:8 design in
  let truth = Option.get (Rt_task.Design.ground_truth design) in
  let mined = Om.infer t in
  let learner =
    match (Rt_learn.Heuristic.run ~bound:1 t).hypotheses with
    | [ d ] -> d
    | _ -> Alcotest.fail "learner inconsistent"
  in
  let m_mined = Om.score ~predicted:mined ~truth in
  let m_learn = Om.score ~predicted:learner ~truth in
  (* Both find all true definite edges on this easy design... *)
  Alcotest.(check (float 0.01)) "miner recall" 1.0 m_mined.definite_recall;
  Alcotest.(check (float 0.01)) "learner recall" 1.0 m_learn.definite_recall;
  (* ...and both over-claim transitives; the score machinery quantifies it. *)
  Alcotest.(check bool) "precision defined" true
    (m_mined.definite_precision <= 1.0 && m_learn.definite_precision <= 1.0)

let test_score_perfect () =
  let d = df [ [ p; f ]; [ b; p ] ] in
  let m = Om.score ~predicted:d ~truth:d in
  Alcotest.(check (float 0.001)) "accuracy" 1.0 m.cell_accuracy;
  Alcotest.(check (float 0.001)) "definite precision" 1.0 m.definite_precision;
  Alcotest.(check (float 0.001)) "definite recall" 1.0 m.definite_recall

let test_score_mismatch () =
  let predicted = df [ [ p; f ]; [ b; p ] ] in
  let truth = df [ [ p; p ]; [ p; p ] ] in
  let m = Om.score ~predicted ~truth in
  Alcotest.(check (float 0.001)) "accuracy 0" 0.0 m.cell_accuracy;
  Alcotest.(check (float 0.001)) "precision 0" 0.0 m.definite_precision;
  (* truth has no definite edges: recall is vacuous 1.0 *)
  Alcotest.(check (float 0.001)) "recall vacuous" 1.0 m.definite_recall

let test_score_size_mismatch () =
  Alcotest.check_raises "sizes"
    (Invalid_argument "Order_miner.score: size mismatch")
    (fun () ->
       ignore (Om.score ~predicted:(Df.create 2) ~truth:(Df.create 3)))

let miner_closure_sound =
  qcheck_case "mined function passes closure on its own trace" ~count:40
    (QCheck.int_range 0 5_000)
    (fun seed ->
       let design = small_design (seed mod 30) in
       let t = simulate ~periods:6 ~seed design in
       let mined = Om.infer t in
       List.for_all (fun pd -> Rt_learn.Matching.closure_ok mined pd)
         (Rt_trace.Trace.periods t))

let () =
  Alcotest.run "rt_mining"
    [
      ( "follows",
        [
          Alcotest.test_case "executed counts" `Quick test_executed_counts;
          Alcotest.test_case "co-executed" `Quick test_co_executed;
          Alcotest.test_case "preceded" `Quick test_preceded;
          Alcotest.test_case "implies" `Quick test_implies;
          Alcotest.test_case "always precedes" `Quick test_always_precedes;
        ] );
      ( "order_miner",
        [
          Alcotest.test_case "fig2 inference" `Quick test_miner_on_fig2;
          Alcotest.test_case "par when never together" `Quick
            test_miner_never_co_executed_is_par;
          Alcotest.test_case "closure sound" `Quick
            test_miner_output_sound_for_matching;
          Alcotest.test_case "vs learner on ground truth" `Quick
            test_miner_overclaims_vs_learner;
          Alcotest.test_case "perfect score" `Quick test_score_perfect;
          Alcotest.test_case "mismatch score" `Quick test_score_mismatch;
          Alcotest.test_case "size mismatch" `Quick test_score_size_mismatch;
          miner_closure_sound;
        ] );
    ]
