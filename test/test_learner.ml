module H = Rt_learn.Hypothesis
module M = Rt_learn.Matching
module V = Rt_learn.Violations
module P = Rt_trace.Period
module E = Rt_trace.Event
open Test_support

let ts4 = Rt_task.Task_set.numbered 4

let ev time kind = { E.time; kind }

(* Fig.2 period 1: t1 [10,20], m1 (21,24), t2 [25,35], m2 (36,39),
   t4 [40,50]. *)
let period1 () =
  P.make_exn ~index:0 ~task_set:ts4
    [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0); ev 21 (E.Msg_rise 1);
      ev 24 (E.Msg_fall 1); ev 25 (E.Task_start 1); ev 35 (E.Task_end 1);
      ev 36 (E.Msg_rise 2); ev 39 (E.Msg_fall 2); ev 40 (E.Task_start 3);
      ev 50 (E.Task_end 3) ]

(* --- Hypothesis --- *)

let test_hyp_bottom () =
  let h = H.bottom 4 in
  Alcotest.(check int) "weight 0" 0 (H.weight h);
  Alcotest.(check (list (pair int int))) "no assumptions" [] (H.assumptions h)

let test_hyp_generalize_message () =
  let h = H.bottom 4 in
  match H.generalize_message h ~sender:0 ~receiver:1 with
  | None -> Alcotest.fail "generalization expected"
  | Some h' ->
    Alcotest.(check depval) "fwd" Dv.Fwd (Df.get (H.depfun h') 0 1);
    Alcotest.(check depval) "bwd" Dv.Bwd (Df.get (H.depfun h') 1 0);
    Alcotest.(check int) "weight 2" 2 (H.weight h');
    Alcotest.(check bool) "assumption recorded" true (H.assumed h' 0 1);
    (* Parent untouched. *)
    Alcotest.(check int) "parent weight" 0 (H.weight h);
    Alcotest.(check depval) "parent cell" Dv.Par (Df.get (H.depfun h) 0 1)

let test_hyp_assumption_blocks_pair () =
  let h = H.bottom 4 in
  let h' = Option.get (H.generalize_message h ~sender:0 ~receiver:1) in
  Alcotest.(check bool) "blocked" true
    (H.generalize_message h' ~sender:0 ~receiver:1 = None);
  Alcotest.(check bool) "reverse allowed" true
    (H.generalize_message h' ~sender:1 ~receiver:0 <> None)

let test_hyp_weight_cache_consistent () =
  let h = H.bottom 4 in
  let h = Option.get (H.generalize_message h ~sender:0 ~receiver:1) in
  let h = Option.get (H.generalize_message h ~sender:2 ~receiver:3) in
  Alcotest.(check int) "cached = recomputed" (Df.weight (H.depfun h)) (H.weight h)

let test_hyp_weaken_violations () =
  let h = H.bottom 3 in
  let h = Option.get (H.generalize_message h ~sender:0 ~receiver:1) in
  let violated = Array.make_matrix 3 3 false in
  violated.(0).(1) <- true;
  H.weaken_violations h ~violated;
  Alcotest.(check depval) "fwd weakened" Dv.Fwd_maybe (Df.get (H.depfun h) 0 1);
  Alcotest.(check depval) "bwd kept" Dv.Bwd (Df.get (H.depfun h) 1 0);
  Alcotest.(check int) "weight updated" (Df.weight (H.depfun h)) (H.weight h)

let test_hyp_merge_lub () =
  let h0 = H.bottom 3 in
  let h1 = Option.get (H.generalize_message h0 ~sender:0 ~receiver:1) in
  let h2 = Option.get (H.generalize_message h0 ~sender:1 ~receiver:2) in
  let m = H.merge_lub h1 h2 in
  Alcotest.(check depval) "cell 01" Dv.Fwd (Df.get (H.depfun m) 0 1);
  Alcotest.(check depval) "cell 12" Dv.Fwd (Df.get (H.depfun m) 1 2);
  Alcotest.(check int) "weight" 4 (H.weight m);
  (* Intersection of disjoint assumption sets is empty. *)
  Alcotest.(check (list (pair int int))) "assumptions intersected" []
    (H.assumptions m)

let test_hyp_clear_assumptions () =
  let h = H.bottom 3 in
  let h = Option.get (H.generalize_message h ~sender:0 ~receiver:1) in
  H.clear_assumptions h;
  Alcotest.(check (list (pair int int))) "cleared" [] (H.assumptions h)

(* --- Violations --- *)

let test_violations () =
  let v = V.create 3 in
  Alcotest.(check bool) "initially false" false (V.get v 0 1);
  V.observe v ~executed:[| true; false; true |];
  Alcotest.(check bool) "0 without 1" true (V.get v 0 1);
  Alcotest.(check bool) "2 without 1" true (V.get v 2 1);
  Alcotest.(check bool) "0 with 2" false (V.get v 0 2);
  Alcotest.(check bool) "non-executed row" false (V.get v 1 0);
  (* Sticky across periods. *)
  V.observe v ~executed:[| true; true; true |];
  Alcotest.(check bool) "sticky" true (V.get v 0 1)

let test_violations_of_periods () =
  let t = fig2_trace () in
  let v = V.of_periods 4 (Rt_trace.Trace.periods t) in
  Alcotest.(check bool) "t1 without t2 (period 2)" true (V.get v 0 1);
  Alcotest.(check bool) "t1 without t3 (period 1)" true (V.get v 0 2);
  Alcotest.(check bool) "never t2 without t1" false (V.get v 1 0);
  Alcotest.(check bool) "never t1 without t4" false (V.get v 0 3)

(* --- Matching --- *)

let test_matching_bottom_fails_on_messages () =
  (* d⊥ cannot explain any message: no pair has → below it. *)
  Alcotest.(check bool) "bottom rejected" false
    (M.matches (Df.create 4) (period1 ()))

let test_matching_bottom_matches_messageless_period () =
  let pd =
    P.make_exn ~index:0 ~task_set:ts4
      [ ev 1 (E.Task_start 0); ev 2 (E.Task_end 0) ]
  in
  Alcotest.(check bool) "no messages, matches" true (M.matches (Df.create 4) pd)

let test_matching_top_matches () =
  Alcotest.(check bool) "top matches" true (M.matches (Df.top 4) (period1 ()))

let test_matching_closure_violation () =
  (* d(t1,t3) = → requires t3 to execute whenever t1 does; period 1 has
     t1 without t3. *)
  let d = Df.top 4 in
  Df.set d 0 2 Dv.Fwd;
  Alcotest.(check bool) "closure fails" false (M.closure_ok d (period1 ()));
  Alcotest.(check bool) "match fails" false (M.matches d (period1 ()))

let test_matching_backward_closure_violation () =
  (* d(t1,t3) = ← also requires t3 whenever t1 executes. *)
  let d = Df.top 4 in
  Df.set d 0 2 Dv.Bwd;
  Alcotest.(check bool) "closure fails" false (M.closure_ok d (period1 ()))

let test_matching_needs_distinct_pairs () =
  (* Only the pair (t1,t2) enabled: m1 can use it but then m2 has no pair
     left (m2's candidates are (t1,t4) and (t2,t4)). *)
  let d = Df.create 4 in
  Df.set d 0 1 Dv.Fwd;
  Df.set d 1 0 Dv.Bwd;
  Alcotest.(check bool) "insufficient pairs" false (M.matches d (period1 ()))

let test_matching_witness () =
  let d = Df.create 4 in
  Df.set d 0 1 Dv.Fwd;
  Df.set d 1 0 Dv.Bwd;
  Df.set d 1 3 Dv.Fwd;
  Df.set d 3 1 Dv.Bwd;
  (match M.explain d (period1 ()) with
   | Some w ->
     Alcotest.(check (array (pair int int))) "witness" [| (0, 1); (1, 3) |] w
   | None -> Alcotest.fail "expected a witness")

let test_matching_maybe_values_allow_messages () =
  (* →? on (s,r) is enough to explain a message s→r. *)
  let d = Df.create 4 in
  Df.set d 0 1 Dv.Fwd_maybe;
  Df.set d 1 0 Dv.Bwd_maybe;
  Df.set d 1 3 Dv.Fwd_maybe;
  Df.set d 3 1 Dv.Bwd_maybe;
  Alcotest.(check bool) "maybe suffices" true (M.matches d (period1 ()))

let test_matching_requires_both_directions () =
  (* → on (s,r) without ← on (r,s) does not explain the message. *)
  let d = Df.create 4 in
  Df.set d 0 1 Dv.Fwd;
  Df.set d 1 3 Dv.Fwd;
  Alcotest.(check bool) "one-sided rejected" false (M.matches d (period1 ()))

let test_matching_trace () =
  let t = fig2_trace () in
  Alcotest.(check bool) "top matches trace" true (M.matches_trace (Df.top 4) t);
  Alcotest.(check bool) "bottom fails trace" false
    (M.matches_trace (Df.create 4) t)

let test_count_assignments () =
  let pd = period1 () in
  (* Under d⊤ every candidate combination with distinct pairs counts:
     m1 ∈ {(0,1),(0,3)}, m2 ∈ {(0,3),(1,3)} minus double-use of (0,3). *)
  Alcotest.(check int) "3 assignments" 3 (M.count_assignments (Df.top 4) pd);
  Alcotest.(check int) "capped" 2 (M.count_assignments ~limit:2 (Df.top 4) pd)

(* --- Exact algorithm on controlled designs --- *)

let test_exact_two_task_converges () =
  (* With two tasks every message has a unique candidate pair, so the
     version space is a singleton. *)
  let d = pipeline_design 2 in
  let trace = simulate ~periods:4 d in
  let o = Rt_learn.Exact.run trace in
  match Rt_learn.Exact.converged o with
  | None ->
    Alcotest.failf "expected convergence, got %d hypotheses"
      (List.length o.hypotheses)
  | Some dep ->
    Alcotest.(check depval) "t1->t2" Dv.Fwd (Df.get dep 0 1);
    Alcotest.(check depval) "t2<-t1" Dv.Bwd (Df.get dep 1 0)

let test_exact_pipeline_ambiguity () =
  (* A 3-task pipeline never converges: the two messages admit three
     incomparable most specific explanations (t1->t2 & t2->t3,
     t1->t2 & t1->t3, t1->t3 & t2->t3) — the paper's footnote 3
     situation. Their LUB still recovers every true edge. *)
  let d = pipeline_design 3 in
  let trace = simulate ~periods:6 d in
  let o = Rt_learn.Exact.run trace in
  Alcotest.(check int) "three explanations" 3 (List.length o.hypotheses);
  let lub = Df.lub o.hypotheses in
  Alcotest.(check depval) "t1->t2" Dv.Fwd (Df.get lub 0 1);
  Alcotest.(check depval) "t2->t3" Dv.Fwd (Df.get lub 1 2);
  Alcotest.(check depval) "t1->t3 (transitive)" Dv.Fwd (Df.get lub 0 2)

let test_exact_empty_trace () =
  let trace = Rt_trace.Trace.of_periods ~task_set:ts4 [] in
  let o = Rt_learn.Exact.run trace in
  Alcotest.(check int) "just bottom" 1 (List.length o.hypotheses);
  Alcotest.(check depfun) "bottom" (Df.create 4) (List.hd o.hypotheses)

let test_exact_inconsistent_trace () =
  (* A message with no admissible sender (nobody ended before its rise)
     empties the version space. *)
  let pd =
    P.make_exn ~index:0 ~task_set:ts4
      [ ev 5 (E.Msg_rise 1); ev 8 (E.Msg_fall 1); ev 10 (E.Task_start 0);
        ev 20 (E.Task_end 0) ]
  in
  let trace = Rt_trace.Trace.of_periods ~task_set:ts4 [ pd ] in
  let o = Rt_learn.Exact.run trace in
  Alcotest.(check int) "no hypotheses" 0 (List.length o.hypotheses)

let test_exact_blowup_guard () =
  let trace = fig2_trace () in
  (match Rt_learn.Exact.run ~limit:2 trace with
   | exception Rt_learn.Exact.Blowup { limit = 2; _ } -> ()
   | _ -> Alcotest.fail "expected Blowup")

let test_heuristic_bound_validation () =
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Heuristic.init: bound must be >= 1")
    (fun () -> ignore (Rt_learn.Heuristic.run ~bound:0 (fig2_trace ())))

let test_heuristic_respects_bound () =
  let trace = fig2_trace () in
  List.iter (fun bound ->
      let o = Rt_learn.Heuristic.run ~bound trace in
      Alcotest.(check bool)
        (Printf.sprintf "at most %d" bound)
        true
        (List.length o.hypotheses <= bound))
    [ 1; 2; 3 ]

let test_heuristic_merge_policies_sound () =
  let trace = fig2_trace () in
  List.iter (fun policy ->
      let o = Rt_learn.Heuristic.run ~policy ~bound:2 trace in
      List.iter (fun d ->
          Alcotest.(check bool) "policy sound" true (M.matches_trace d trace))
        o.hypotheses)
    [ Rt_learn.Heuristic.Lightest_pair; Rt_learn.Heuristic.Heaviest_pair;
      Rt_learn.Heuristic.First_last ]

(* --- Online (incremental) learning --- *)

let test_online_equals_batch () =
  let trace = fig2_trace () in
  let st = Rt_learn.Heuristic.init ~bound:3 ~ntasks:4 () in
  List.iter (Rt_learn.Heuristic.feed st) (Rt_trace.Trace.periods trace);
  let online = Rt_learn.Heuristic.snapshot st in
  let batch = Rt_learn.Heuristic.run ~bound:3 trace in
  let norm o = List.sort Df.compare o.Rt_learn.Heuristic.hypotheses in
  Alcotest.(check int) "same count" (List.length (norm batch))
    (List.length (norm online));
  List.iter2 (fun a b -> Alcotest.(check depfun) "same hypotheses" a b)
    (norm batch) (norm online);
  Alcotest.(check int) "same merges" batch.stats.merges online.stats.merges

let test_online_progressive () =
  let trace = fig2_trace () in
  let st = Rt_learn.Heuristic.init ~bound:1 ~ntasks:4 () in
  Alcotest.(check int) "starts at bottom" 1
    (List.length (Rt_learn.Heuristic.current st));
  Alcotest.(check depfun) "bottom" (Df.create 4)
    (List.hd (Rt_learn.Heuristic.current st));
  let snapshots =
    List.map (fun p ->
        Rt_learn.Heuristic.feed st p;
        List.hd (Rt_learn.Heuristic.current st))
      (Rt_trace.Trace.periods trace)
  in
  (* Evidence only generalizes: the model never moves down the lattice. *)
  let rec mono = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "monotone growth" true (Df.leq a b);
      mono rest
    | [ _ ] | [] -> ()
  in
  mono snapshots;
  Alcotest.(check int) "periods counted" 3
    (Rt_learn.Heuristic.stats st).periods_processed

let test_online_validates () =
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Heuristic.init: bound must be >= 1")
    (fun () -> ignore (Rt_learn.Heuristic.init ~bound:0 ~ntasks:2 ()));
  Alcotest.check_raises "bad ntasks"
    (Invalid_argument "Heuristic.init: need at least one task")
    (fun () -> ignore (Rt_learn.Heuristic.init ~bound:1 ~ntasks:0 ()))

let test_online_current_is_a_copy () =
  let st = Rt_learn.Heuristic.init ~bound:1 ~ntasks:3 () in
  (match Rt_learn.Heuristic.current st with
   | [ d ] -> Df.set d 0 1 Dv.Bi_maybe
   | _ -> Alcotest.fail "singleton expected");
  (match Rt_learn.Heuristic.current st with
   | [ d ] -> Alcotest.(check depval) "state unaffected" Dv.Par (Df.get d 0 1)
   | _ -> Alcotest.fail "singleton expected")

(* --- Window-restricted learning --- *)

let test_window_learning_more_specific () =
  let d = pipeline_design 3 in
  let trace = simulate ~periods:6 d in
  let wide = Rt_learn.Heuristic.run ~bound:1 trace in
  let narrow = Rt_learn.Heuristic.run ~window:20 ~bound:1 trace in
  match wide.hypotheses, narrow.hypotheses with
  | [ dw ], [ dn ] ->
    Alcotest.(check bool) "narrow below wide" true (Df.leq dn dw);
    (* Both remain sound for the window they were learned with. *)
    Alcotest.(check bool) "wide sound" true (M.matches_trace dw trace);
    Alcotest.(check bool) "narrow sound for its window" true
      (M.matches_trace ~window:20 dn trace)
  | _, [] ->
    (* An over-narrow window can exclude the true pair: acceptable,
       reported as inconsistent. *)
    ()
  | _ -> Alcotest.fail "unexpected shapes"

(* --- Version space extension --- *)

let test_version_space_negative_filter () =
  let trace = fig2_trace () in
  (* Forbid the pattern "t1 and t4 execute without t2 and t3" — an
     impossible behaviour under d(t1,t4)=→ hypotheses with a message
     explained only by (t1,t4). *)
  let negative =
    P.make_exn ~index:99 ~task_set:ts4
      [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0); ev 21 (E.Msg_rise 1);
        ev 24 (E.Msg_fall 1); ev 30 (E.Task_start 3); ev 40 (E.Task_end 3) ]
  in
  let r = Rt_learn.Version_space.learn ~negatives:[ negative ] trace in
  Alcotest.(check int) "total preserved" 5
    (List.length r.accepted + List.length r.rejected);
  (* Hypotheses that can explain a lone t1->t4 message are rejected. *)
  Alcotest.(check bool) "some rejected" true (List.length r.rejected > 0);
  List.iter (fun d ->
      Alcotest.(check bool) "accepted do not match negative" false
        (M.matches d negative))
    r.accepted

let test_version_space_no_negatives () =
  let trace = fig2_trace () in
  let r = Rt_learn.Version_space.learn ~negatives:[] trace in
  Alcotest.(check int) "all accepted" 5 (List.length r.accepted);
  Alcotest.(check int) "none rejected" 0 (List.length r.rejected)

let () =
  Alcotest.run "rt_learn"
    [
      ( "hypothesis",
        [
          Alcotest.test_case "bottom" `Quick test_hyp_bottom;
          Alcotest.test_case "generalize message" `Quick
            test_hyp_generalize_message;
          Alcotest.test_case "assumption blocks pair" `Quick
            test_hyp_assumption_blocks_pair;
          Alcotest.test_case "weight cache" `Quick
            test_hyp_weight_cache_consistent;
          Alcotest.test_case "weaken violations" `Quick
            test_hyp_weaken_violations;
          Alcotest.test_case "merge lub" `Quick test_hyp_merge_lub;
          Alcotest.test_case "clear assumptions" `Quick
            test_hyp_clear_assumptions;
        ] );
      ( "violations",
        [
          Alcotest.test_case "observe" `Quick test_violations;
          Alcotest.test_case "of fig2 trace" `Quick test_violations_of_periods;
        ] );
      ( "matching",
        [
          Alcotest.test_case "bottom vs messages" `Quick
            test_matching_bottom_fails_on_messages;
          Alcotest.test_case "bottom vs silence" `Quick
            test_matching_bottom_matches_messageless_period;
          Alcotest.test_case "top matches" `Quick test_matching_top_matches;
          Alcotest.test_case "closure violation" `Quick
            test_matching_closure_violation;
          Alcotest.test_case "backward closure" `Quick
            test_matching_backward_closure_violation;
          Alcotest.test_case "distinct pairs" `Quick
            test_matching_needs_distinct_pairs;
          Alcotest.test_case "witness" `Quick test_matching_witness;
          Alcotest.test_case "maybe values" `Quick
            test_matching_maybe_values_allow_messages;
          Alcotest.test_case "both directions" `Quick
            test_matching_requires_both_directions;
          Alcotest.test_case "whole trace" `Quick test_matching_trace;
          Alcotest.test_case "count assignments" `Quick test_count_assignments;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "two tasks converge" `Quick
            test_exact_two_task_converges;
          Alcotest.test_case "pipeline ambiguity" `Quick
            test_exact_pipeline_ambiguity;
          Alcotest.test_case "empty trace" `Quick test_exact_empty_trace;
          Alcotest.test_case "inconsistent trace" `Quick
            test_exact_inconsistent_trace;
          Alcotest.test_case "blowup guard" `Quick test_exact_blowup_guard;
          Alcotest.test_case "bound validation" `Quick
            test_heuristic_bound_validation;
          Alcotest.test_case "bound respected" `Quick
            test_heuristic_respects_bound;
          Alcotest.test_case "merge policies sound" `Quick
            test_heuristic_merge_policies_sound;
        ] );
      ( "online",
        [
          Alcotest.test_case "online = batch" `Quick test_online_equals_batch;
          Alcotest.test_case "progressive growth" `Quick test_online_progressive;
          Alcotest.test_case "validation" `Quick test_online_validates;
          Alcotest.test_case "current copies" `Quick
            test_online_current_is_a_copy;
          Alcotest.test_case "window learning" `Quick
            test_window_learning_more_specific;
        ] );
      ( "version_space",
        [
          Alcotest.test_case "negative filter" `Quick
            test_version_space_negative_filter;
          Alcotest.test_case "no negatives" `Quick
            test_version_space_no_negatives;
        ] );
    ]
