(* The rtlint engine, rule by rule: each RTL id fires on a minimal
   snippet and stays silent on the idiomatic alternative; suppression
   comments silence exactly one site and demand a reason. *)

module F = Rt_check.Finding
module Lint = Rt_lint.Lint

let lint ?(file = "lib/core/snippet.ml") src = Lint.lint_source ~file src

let rules fs = List.sort_uniq String.compare (List.map (fun (f : F.t) -> f.rule) fs)

let check_rules name expected src =
  Alcotest.(check (list string)) name expected (rules (lint src))

let test_poly_hash () =
  check_rules "Hashtbl.hash flagged" [ "RTL001" ]
    "let f x = Hashtbl.hash x";
  check_rules "seeded too" [ "RTL001" ]
    "let f x = Hashtbl.seeded_hash 7 x";
  check_rules "monomorphic hash fine" []
    "let f h = Rt_core.Hypothesis.hash h"

let test_poly_compare () =
  check_rules "bare compare flagged" [ "RTL002" ]
    "let xs = List.sort compare [3; 1]";
  check_rules "Stdlib.compare flagged" [ "RTL002" ]
    "let c = Stdlib.compare a b";
  check_rules "Int.compare fine" []
    "let xs = List.sort Int.compare [3; 1]";
  (* A file that rebinds [compare] uses its own, monomorphic one. *)
  check_rules "local rebinding disables the bare form" []
    "let compare a b = Int.compare a b\nlet xs = List.sort compare [3; 1]"

let test_depval_equality () =
  check_rules "= against a lattice constructor" [ "RTL002" ]
    "let p v = v = Dv.Par";
  check_rules "<> too" [ "RTL002" ]
    "let p v = v <> Rt_lattice.Depval.Fwd_maybe";
  check_rules "integer comparison of indices fine" []
    "let p v = v <> Dv.index Dv.Par";
  check_rules "Depval.equal fine" []
    "let p v = Dv.equal v Dv.Par"

let test_wall_clock () =
  check_rules "gettimeofday flagged" [ "RTL003" ]
    "let t0 = Unix.gettimeofday ()";
  check_rules "Sys.time flagged" [ "RTL003" ]
    "let t0 = Sys.time ()";
  check_rules "Random.self_init flagged" [ "RTL003" ]
    "let () = Random.self_init ()";
  Alcotest.(check (list string)) "allowed in lib/obs" []
    (rules
       (Lint.lint_source ~file:"lib/obs/registry.ml"
          "let t0 = Unix.gettimeofday ()"));
  Alcotest.(check (list string)) "allowed in the simulator" []
    (rules
       (Lint.lint_source ~file:"lib/sim/simulator.ml"
          "let t0 = Unix.gettimeofday ()"))

let test_pool_mutation () =
  check_rules "captured ref mutated in pool closure" [ "RTL004" ]
    "let n = ref 0\n\
     let run pool xs = Rt_util.Domain_pool.map pool (fun x -> incr n; x) xs";
  check_rules "captured array mutated" [ "RTL004" ]
    "let a = Array.make 4 0\n\
     let run pool xs = Domain_pool.map pool (fun i -> a.(i) <- i; i) xs";
  check_rules "locally allocated state fine" []
    "let run pool xs =\n\
    \  Rt_util.Domain_pool.map pool\n\
    \    (fun x -> let b = Bytes.create 4 in Bytes.set b 0 'a'; b) xs";
  check_rules "mutation outside a pool call fine" []
    "let n = ref 0\nlet bump () = incr n";
  (* Module aliases to Domain_pool are resolved. *)
  check_rules "aliased pool module" [ "RTL004" ]
    "module Pool = Rt_util.Domain_pool\n\
     let n = ref 0\n\
     let run pool xs = Pool.map pool (fun x -> n := x; x) xs"

let test_depval_wildcard () =
  check_rules "wildcard over the lattice" [ "RTL005" ]
    "let def = function Dv.Fwd | Dv.Bi -> true | _ -> false";
  check_rules "catch-all variable too" [ "RTL005" ]
    "let f v = match v with Dv.Par -> 0 | other -> ignore other; 1";
  check_rules "exhaustive match fine" []
    "let def = function\n\
    \  | Dv.Fwd | Dv.Bi -> true\n\
    \  | Dv.Par | Dv.Bwd | Dv.Fwd_maybe | Dv.Bwd_maybe | Dv.Bi_maybe -> false";
  check_rules "wildcard over strings fine" []
    "let f = function \"a\" -> 1 | _ -> 0"

let test_hot_loop_alloc () =
  let hot = "lib/trace/mmap_io.ml" in
  let check name expected src =
    Alcotest.(check (list string)) name expected
      (rules (Lint.lint_source ~file:hot src))
  in
  check "record in a while body" [ "RTL006" ]
    "let scan n =\n\
    \  let i = ref 0 in\n\
    \  while !i < n do acc := { time = !i; kind = 0 } :: !acc; incr i done";
  check "tuple in a for body" [ "RTL006" ]
    "let scan n =\n\
    \  for i = 0 to n - 1 do marks := (i, i * 2) :: !marks done";
  check "scalar refs fine"
    []
    "let scan n =\n\
    \  let i = ref 0 and t = ref 0 in\n\
    \  while !i < n do t := !t + !i; incr i done";
  (* Error paths box their payload once per failed load, not per event. *)
  check "raise in the loop exempt" []
    "let scan n =\n\
    \  for i = 0 to n - 1 do\n\
    \    if bad i then fail i (Printf.sprintf \"bad %d\" i)\n\
    \  done";
  (* The rule is scoped to the packed ingest files. *)
  check_rules "same loop elsewhere is fine" []
    "let scan n =\n\
    \  for i = 0 to n - 1 do marks := (i, i * 2) :: !marks done";
  check "suppression with a reason silences" []
    "let scan n =\n\
    \  for i = 0 to n - 1 do\n\
    \    (* rtlint: allow RTL006 runs once per file header *)\n\
    \    marks := (i, i * 2) :: !marks\n\
    \  done"

let test_persist_writes () =
  check_rules "open_out flagged" [ "RTL007" ]
    "let save path s = let oc = open_out path in output_string oc s";
  check_rules "open_out_bin flagged" [ "RTL007" ]
    "let save path s = let oc = open_out_bin path in output_string oc s";
  check_rules "open_out_gen flagged" [ "RTL007" ]
    "let oc = open_out_gen [ Open_append ] 0o644 \"x\"";
  check_rules "Sys.rename flagged" [ "RTL007" ]
    "let publish tmp path = Sys.rename tmp path";
  check_rules "atomic write is the sanctioned route" []
    "let save path s = Rt_util.Atomic_file.write path s";
  (* The funnel itself and the store own the raw syscalls. *)
  Alcotest.(check (list string)) "atomic_file.ml exempt" []
    (rules
       (Lint.lint_source ~file:"lib/util/atomic_file.ml"
          "let w p s = let oc = open_out p in output_string oc s"));
  Alcotest.(check (list string)) "lib/store exempt" []
    (rules
       (Lint.lint_source ~file:"lib/store/store.ml"
          "let publish tmp path = Sys.rename tmp path"));
  check_rules "justified suppression silences" []
    "(* rtlint: allow RTL007 appends forever, atomicity has no meaning *)\n\
     let oc = open_out_gen [ Open_append ] 0o644 \"log\""

let test_suppression () =
  check_rules "justified suppression silences" []
    "(* rtlint: allow RTL003 bench harness timing, not model input *)\n\
     let t0 = Unix.gettimeofday ()";
  check_rules "same-line suppression" []
    "let t0 = Unix.gettimeofday () (* rtlint: allow RTL003 harness only *)";
  check_rules "reasonless suppression becomes RTL000" [ "RTL000" ]
    "(* rtlint: allow RTL003 *)\nlet t0 = Unix.gettimeofday ()";
  check_rules "wrong rule id does not silence" [ "RTL003" ]
    "(* rtlint: allow RTL001 wrong id *)\nlet t0 = Unix.gettimeofday ()"

let test_parse_error () =
  check_rules "unparseable source" [ "RTL999" ] "let let let"

let test_positions_and_severity () =
  match lint "let a = 1\nlet t0 = Sys.time ()" with
  | [ f ] ->
    Alcotest.(check string) "rule" "RTL003" f.F.rule;
    Alcotest.(check bool) "error severity" true (f.F.severity = F.Error);
    (match f.F.pos with
     | Some p -> Alcotest.(check int) "line" 2 p.F.line
     | None -> Alcotest.fail "no position")
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "RTL001 poly hash" `Quick test_poly_hash;
          Alcotest.test_case "RTL002 poly compare" `Quick test_poly_compare;
          Alcotest.test_case "RTL002 lattice equality" `Quick
            test_depval_equality;
          Alcotest.test_case "RTL003 wall clock" `Quick test_wall_clock;
          Alcotest.test_case "RTL004 pool mutation" `Quick test_pool_mutation;
          Alcotest.test_case "RTL005 depval wildcard" `Quick
            test_depval_wildcard;
          Alcotest.test_case "RTL006 hot-loop alloc" `Quick
            test_hot_loop_alloc;
          Alcotest.test_case "RTL007 raw persistence writes" `Quick
            test_persist_writes;
          Alcotest.test_case "RTL999 parse error" `Quick test_parse_error;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "suppressions" `Quick test_suppression;
          Alcotest.test_case "positions and severity" `Quick
            test_positions_and_severity;
        ] );
    ]
