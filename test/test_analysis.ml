module Dg = Rt_analysis.Dep_graph
module Cl = Rt_analysis.Classify
module R = Rt_analysis.Reachability
module Mo = Rt_analysis.Modes
module L = Rt_analysis.Latency
module D = Rt_task.Design
open Test_support

(* The worked example's dLUB (Fig. 4). *)
let dlub = df [ [ p; fq; fq; f ]; [ b; p; p; f ]; [ b; p; p; f ]; [ b; bq; bq; p ] ]

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Dep_graph --- *)

let test_determines () =
  Alcotest.(check (list int)) "t1 determines t4" [ 3 ] (Dg.determines dlub 0);
  Alcotest.(check (list int)) "t2 determines t4" [ 3 ] (Dg.determines dlub 1);
  Alcotest.(check (list int)) "t4 determines nothing" [] (Dg.determines dlub 3)

let test_depends_on () =
  Alcotest.(check (list int)) "t4 depends on t1" [ 0 ] (Dg.depends_on dlub 3);
  Alcotest.(check (list int)) "t2 depends on t1" [ 0 ] (Dg.depends_on dlub 1);
  Alcotest.(check (list int)) "t1 depends on nothing" [] (Dg.depends_on dlub 0)

let test_may_determine () =
  Alcotest.(check (list int)) "t1 may determine t2,t3" [ 1; 2 ]
    (Dg.may_determine dlub 0);
  Alcotest.(check (list int)) "t4 may depend on t2,t3" [ 1; 2 ]
    (Dg.may_depend_on dlub 3)

let test_definite_edges () =
  let edges = Dg.definite_edges dlub in
  Alcotest.(check bool) "t1->t4 in" true (List.mem (0, 3) edges);
  Alcotest.(check bool) "t4->t1 in (bwd)" true (List.mem (3, 0) edges);
  Alcotest.(check int) "count" 6 (List.length edges)

let test_dot_output () =
  let s = Dg.to_dot ~names:[| "t1"; "t2"; "t3"; "t4" |] dlub in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph" s);
  Alcotest.(check bool) "t1->t4 edge" true (contains ~needle:"t1 -> t4" s);
  (* t2 and t3 are unrelated: no edge either way. *)
  Alcotest.(check bool) "no t2-t3 edge" false
    (contains ~needle:"t2 -> t3" s || contains ~needle:"t3 -> t2" s)

let test_summary () =
  let s = Dg.summary dlub in
  Alcotest.(check bool) "mentions relation" true (contains ~needle:"->" s)

(* --- Classify --- *)

let test_classify_disjunction () =
  (* t1 has two →? successors: the archetypal disjunction node. *)
  let i = Cl.classify_task dlub 0 in
  Alcotest.(check bool) "t1 disjunction" true (i.kind = Cl.Disjunction);
  Alcotest.(check (list int)) "choices" [ 1; 2 ] i.may_determine

let test_classify_conjunction () =
  let i = Cl.classify_task dlub 3 in
  Alcotest.(check bool) "t4 conjunction" true (i.kind = Cl.Conjunction);
  Alcotest.(check (list int)) "joins" [ 1; 2 ] i.may_depend_on

let test_classify_plain () =
  let i = Cl.classify_task dlub 1 in
  Alcotest.(check bool) "t2 plain" true (i.kind = Cl.Plain)

let test_classify_lists () =
  Alcotest.(check (list int)) "disjunctions" [ 0 ] (Cl.disjunction_nodes dlub);
  Alcotest.(check (list int)) "conjunctions" [ 3 ] (Cl.conjunction_nodes dlub)

let test_classify_both () =
  (* A node with 2 →? out and 2 ←? in is both. *)
  let d = Df.create 5 in
  Df.set d 0 1 Dv.Fwd_maybe;
  Df.set d 0 2 Dv.Fwd_maybe;
  Df.set d 0 3 Dv.Bwd_maybe;
  Df.set d 0 4 Dv.Bwd_maybe;
  Alcotest.(check bool) "both" true ((Cl.classify_task d 0).kind = Cl.Both)

(* --- Reachability --- *)

let test_consistent () =
  Alcotest.(check bool) "empty consistent" true
    (R.consistent dlub [| false; false; false; false |]);
  Alcotest.(check bool) "t1 alone inconsistent (needs t4)" false
    (R.consistent dlub [| true; false; false; false |]);
  Alcotest.(check bool) "t1+t4 inconsistent (t4 needs t1: ok; but t4 bwd t1 ok) "
    true
    (R.consistent dlub [| true; false; false; true |]);
  Alcotest.(check bool) "t2 alone inconsistent" false
    (R.consistent dlub [| false; true; false; false |])

let test_closure () =
  let c = R.closure dlub [| true; false; false; false |] in
  Alcotest.(check bool) "t4 added" true c.(3);
  Alcotest.(check bool) "t2 not added" false c.(1);
  Alcotest.(check bool) "closure consistent" true (R.consistent dlub c)

let test_count_consistent () =
  (* For dLUB the consistent states are exactly: {}, {t1,t4}, {t1,t2,t4},
     {t1,t3,t4}, {t1,t2,t3,t4} and {t2,t1,t4}... enumerate and check
     against the brute-force definition. *)
  let count = R.count_consistent dlub in
  let states = R.consistent_states dlub in
  Alcotest.(check int) "count matches list" count (List.length states);
  List.iter (fun s -> Alcotest.(check bool) "all consistent" true (R.consistent dlub s))
    states;
  Alcotest.(check bool) "fewer than total" true (count < R.total_states 4)

let test_count_consistent_bottom_top () =
  (* Bottom has no definite cells: all 2^n states consistent. *)
  Alcotest.(check int) "bottom" 16 (R.count_consistent (Df.create 4));
  (* Top has none definite either. *)
  Alcotest.(check int) "top" 16 (R.count_consistent (Df.top 4))

let test_reduction () =
  Alcotest.(check bool) "reduction > 1" true (R.reduction dlub > 1.0);
  Alcotest.(check (float 0.001)) "no reduction for bottom" 1.0
    (R.reduction (Df.create 4))

let test_reachability_guard () =
  Alcotest.check_raises "too many tasks"
    (Invalid_argument "Reachability.count_consistent: too many tasks")
    (fun () -> ignore (R.count_consistent (Df.create 25)))

(* --- Modes --- *)

let test_co_execution_classes () =
  (* dLUB: t1 and t4 force each other (→ both effective directions). *)
  let classes = Mo.co_execution_classes dlub in
  Alcotest.(check bool) "t1,t4 together" true (List.mem [ 0; 3 ] classes);
  Alcotest.(check bool) "t2 alone" true (List.mem [ 1 ] classes);
  Alcotest.(check int) "3 classes" 3 (List.length classes)

let test_exclusive_pairs () =
  let trace = fig2_trace () in
  (* t2 and t3 co-execute in period 3, so nothing is exclusive. *)
  Alcotest.(check (list (pair int int))) "none" [] (Mo.exclusive_pairs trace)

let test_exclusive_pairs_found () =
  (* Drop period 3: t2 and t3 never co-execute in periods 1-2. *)
  let trace = fig2_trace () in
  let two =
    Rt_trace.Trace.of_periods ~task_set:trace.task_set
      (List.filteri (fun i _ -> i < 2) (Rt_trace.Trace.periods trace))
  in
  Alcotest.(check (list (pair int int))) "t2/t3 exclusive" [ (1, 2) ]
    (Mo.exclusive_pairs two)

let test_mode_alternatives () =
  let trace = fig2_trace () in
  let two =
    Rt_trace.Trace.of_periods ~task_set:trace.task_set
      (List.filteri (fun i _ -> i < 2) (Rt_trace.Trace.periods trace))
  in
  (* On the 2-period trace t1's choices t2/t3 are mutually exclusive:
     two singleton alternatives. *)
  let alts = Mo.mode_alternatives dlub two 0 in
  Alcotest.(check (list (list int))) "alternatives" [ [ 1 ]; [ 2 ] ] alts;
  (* With period 3 present they can co-occur: one group. *)
  let alts3 = Mo.mode_alternatives dlub trace 0 in
  Alcotest.(check (list (list int))) "one group" [ [ 1; 2 ] ] alts3

(* --- Latency --- *)

(* Two tasks on one ECU: hp (priority 1, wcet 30) and lo (priority 2,
   wcet 100), plus a downstream sink fed by lo. *)
let latency_design () =
  let t name ecu priority wcet =
    { D.name; policy = D.Broadcast; ecu; priority; wcet; offset = 0 }
  in
  D.make
    ~tasks:[| t "hp" 0 1 30; t "lo" 0 2 100; t "sink" 1 1 50 |]
    ~edges:[| { D.src = 1; dst = 2; can_id = 0x10; tx_time = 20; medium = D.Bus };
              { D.src = 0; dst = 2; can_id = 0x20; tx_time = 40; medium = D.Bus } |]
    ~period:10_000

let test_response_time_pessimistic () =
  let d = latency_design () in
  Alcotest.(check int) "hp undisturbed" 30 (L.response_time d 0);
  Alcotest.(check int) "lo suffers hp" 130 (L.response_time d 1);
  Alcotest.(check int) "sink alone on ecu1" 50 (L.response_time d 2)

let test_response_time_informed () =
  let d = latency_design () in
  (* A learned definite dependency between lo and hp removes the
     preemption term. *)
  let dep = Df.create 3 in
  Df.set dep 1 0 Dv.Bwd;
  Df.set dep 0 1 Dv.Fwd;
  Alcotest.(check int) "lo no longer disturbed" 100 (L.response_time ~dep d 1)

let test_frame_delay () =
  let d = latency_design () in
  (* Frame 0x10: blocking by slower lower-priority frame 0x20 (40) + own
     tx (20). *)
  Alcotest.(check int) "high prio frame" 60 (L.frame_delay d d.edges.(0));
  (* Frame 0x20: interference from 0x10 (20) + own tx (40). *)
  Alcotest.(check int) "low prio frame" 60 (L.frame_delay d d.edges.(1))

let test_analyze_path () =
  let d = latency_design () in
  let r = L.analyze d ~path:[ 1; 2 ] in
  (* lo (130) + frame 0x10 (60) + sink (50). *)
  Alcotest.(check int) "total" 240 r.total;
  Alcotest.(check int) "hops" 1 (List.length r.bus_delay)

let test_analyze_invalid_path () =
  let d = latency_design () in
  Alcotest.check_raises "no edge"
    (Invalid_argument "Latency.analyze: no design edge hp -> lo")
    (fun () -> ignore (L.analyze d ~path:[ 0; 1 ]))

let test_improvement () =
  let d = latency_design () in
  let dep = Df.create 3 in
  Df.set dep 1 0 Dv.Bwd;
  Df.set dep 0 1 Dv.Fwd;
  let pess, inf, gain = L.improvement d ~dep ~path:[ 1; 2 ] in
  Alcotest.(check int) "pessimistic" 240 pess;
  Alcotest.(check int) "informed" 210 inf;
  Alcotest.(check bool) "gain > 1" true (gain > 1.0)

let test_critical_path () =
  let d = latency_design () in
  let path = L.critical_path d in
  Alcotest.(check bool) "ends at sink" true
    (match List.rev path with last :: _ -> last = 2 | [] -> false)

let test_critical_path_fig1 () =
  let d = fig1_design () in
  let path = L.critical_path d in
  Alcotest.(check bool) "from t1 to t4" true
    (match path, List.rev path with
     | first :: _, last :: _ -> first = 0 && last = 3
     | _ -> false)

(* --- transitive reduction --- *)

let test_reduced_determines_chain () =
  (* a -> b -> c with the transitive a -> c: reduction drops (a,c). *)
  let d = Df.create 3 in
  Df.set d 0 1 Dv.Fwd;
  Df.set d 1 2 Dv.Fwd;
  Df.set d 0 2 Dv.Fwd;
  Alcotest.(check (list (pair int int))) "skeleton" [ (0, 1); (1, 2) ]
    (List.sort compare (Dg.reduced_determines d))

let test_reduced_determines_keeps_mutual () =
  let d = Df.create 2 in
  Df.set d 0 1 Dv.Fwd;
  Df.set d 1 0 Dv.Fwd;
  Alcotest.(check (list (pair int int))) "both kept" [ (0, 1); (1, 0) ]
    (List.sort compare (Dg.reduced_determines d))

let test_reduced_determines_no_edges () =
  Alcotest.(check (list (pair int int))) "empty" []
    (Dg.reduced_determines (Df.top 3))

let test_reduced_determines_dlub () =
  (* dLUB has t1->t4, t2->t4, t3->t4 (no chains): nothing to drop. *)
  Alcotest.(check (list (pair int int))) "fan kept" [ (0, 3); (1, 3); (2, 3) ]
    (List.sort compare (Dg.reduced_determines dlub))

(* --- utilization / schedulability --- *)

let test_utilization () =
  let d = latency_design () in
  (* ECU 0: hp (30) + lo (100) over 10000; ECU 1: sink (50). *)
  Alcotest.(check int) "two ecus" 2 (List.length (L.ecu_utilization d));
  let u0 = List.assoc 0 (L.ecu_utilization d) in
  Alcotest.(check (float 0.0001)) "ecu0" 0.013 u0;
  Alcotest.(check (float 0.0001)) "bus" 0.006 (L.bus_utilization d)

let test_schedulable () =
  let d = latency_design () in
  Alcotest.(check bool) "comfortably schedulable" true (L.schedulable d);
  Alcotest.(check bool) "gm schedulable" true
    (L.schedulable (Rt_case.Gm_model.design ()))

let test_not_schedulable () =
  let t name ecu priority wcet =
    { D.name; policy = D.Broadcast; ecu; priority; wcet; offset = 0 }
  in
  let d =
    D.make ~tasks:[| t "a" 0 1 900; t "b" 0 2 900 |]
      ~edges:[| { D.src = 0; dst = 1; can_id = 1; tx_time = 10; medium = D.Bus } |]
      ~period:1000
  in
  Alcotest.(check bool) "over-utilized" false (L.schedulable d)

(* --- Query language --- *)

module Q = Rt_analysis.Query

let names4 = [| "t1"; "t2"; "t3"; "t4" |]

let eval_one q =
  match Q.eval ~model:dlub ~names:names4 (Q.parse_exn q) with
  | Ok [ v ] -> v.Q.holds
  | Ok _ -> Alcotest.fail "expected one verdict"
  | Error m -> Alcotest.fail m

let test_query_cell_eq () =
  Alcotest.(check bool) "d(t1,t4) = ->" true (eval_one "d(t1, t4) = ->");
  Alcotest.(check bool) "d(t1,t4) = || fails" false (eval_one "d(t1, t4) = ||");
  Alcotest.(check bool) "d(t1,t2) = ->?" true (eval_one "d(t1,t2) = ->?");
  Alcotest.(check bool) "d(t4,t2) = <-?" true (eval_one "d(t4,t2) = <-?")

let test_query_cell_leq () =
  Alcotest.(check bool) "-> below <->?" true (eval_one "d(t1,t4) <= <->?");
  Alcotest.(check bool) "->? not below ->" false (eval_one "d(t1,t2) <= ->")

let test_query_cell_set () =
  Alcotest.(check bool) "in set" true (eval_one "d(t1,t2) = {->, ->?}");
  Alcotest.(check bool) "not in set" false (eval_one "d(t1,t2) = {||, <-}")

let test_query_predicates () =
  Alcotest.(check bool) "disjunction t1" true (eval_one "disjunction(t1)");
  Alcotest.(check bool) "disjunction t2" false (eval_one "disjunction(t2)");
  Alcotest.(check bool) "conjunction t4" true (eval_one "conjunction(t4)");
  Alcotest.(check bool) "determines" true (eval_one "determines(t1, t4)");
  Alcotest.(check bool) "not determines" false (eval_one "determines(t1, t2)");
  Alcotest.(check bool) "depends" true (eval_one "depends(t4, t1)");
  Alcotest.(check bool) "together" true (eval_one "together(t1, t4)");
  Alcotest.(check bool) "not together" false (eval_one "together(t1, t2)")

let test_query_conjunction_of_clauses () =
  let q = Q.parse_exn "d(t1,t4) = -> & conjunction(t4) & disjunction(t1)" in
  (match Q.holds ~model:dlub ~names:names4 q with
   | Ok b -> Alcotest.(check bool) "all hold" true b
   | Error m -> Alcotest.fail m);
  let q = Q.parse_exn "d(t1,t4) = -> & d(t1,t4) = ||" in
  (match Q.holds ~model:dlub ~names:names4 q with
   | Ok b -> Alcotest.(check bool) "one fails" false b
   | Error m -> Alcotest.fail m)

let test_query_exclusive_needs_trace () =
  let q = Q.parse_exn "exclusive(t2, t3)" in
  (match Q.eval ~model:dlub ~names:names4 q with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "should require a trace");
  let trace = fig2_trace () in
  let two =
    Rt_trace.Trace.of_periods ~task_set:trace.task_set
      (List.filteri (fun i _ -> i < 2) (Rt_trace.Trace.periods trace))
  in
  (match Q.holds ~model:dlub ~names:names4 ~trace:two q with
   | Ok b -> Alcotest.(check bool) "exclusive on 2 periods" true b
   | Error m -> Alcotest.fail m);
  (match Q.holds ~model:dlub ~names:names4 ~trace q with
   | Ok b -> Alcotest.(check bool) "not exclusive on 3" false b
   | Error m -> Alcotest.fail m)

let test_query_parse_errors () =
  let bad q =
    match Q.parse q with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" q
  in
  bad "";
  bad "d(t1 t2) = ->";
  bad "d(t1, t2) ->";
  bad "frobnicate(t1)";
  bad "d(t1, t2) = -> &";
  bad "d(t1, t2) = {}";
  bad "d(t1, t2) = {->,}"

let test_query_unknown_task () =
  match Q.eval ~model:dlub ~names:names4 (Q.parse_exn "d(zz, t1) = ->") with
  | Error m -> Alcotest.(check bool) "mentions name" true
                 (String.length m > 0)
  | Ok _ -> Alcotest.fail "unknown task accepted"

let test_query_round_trip_print () =
  List.iter (fun q ->
      let parsed = Q.parse_exn q in
      let printed = String.concat " & " (List.map Q.clause_to_string parsed) in
      let reparsed = Q.parse_exn printed in
      Alcotest.(check int) "same clause count" (List.length parsed)
        (List.length reparsed))
    [ "d(t1,t2) = ->?"; "together(t1, t4) & exclusive(t2, t3)";
      "d(t1,t2) = {->, ->?} & conjunction(t4)" ]

let () =
  Alcotest.run "rt_analysis"
    [
      ( "dep_graph",
        [
          Alcotest.test_case "determines" `Quick test_determines;
          Alcotest.test_case "depends_on" `Quick test_depends_on;
          Alcotest.test_case "may determine" `Quick test_may_determine;
          Alcotest.test_case "definite edges" `Quick test_definite_edges;
          Alcotest.test_case "dot output" `Quick test_dot_output;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "reduction: chain" `Quick
            test_reduced_determines_chain;
          Alcotest.test_case "reduction: mutual kept" `Quick
            test_reduced_determines_keeps_mutual;
          Alcotest.test_case "reduction: empty" `Quick
            test_reduced_determines_no_edges;
          Alcotest.test_case "reduction: dlub fan" `Quick
            test_reduced_determines_dlub;
        ] );
      ( "classify",
        [
          Alcotest.test_case "disjunction" `Quick test_classify_disjunction;
          Alcotest.test_case "conjunction" `Quick test_classify_conjunction;
          Alcotest.test_case "plain" `Quick test_classify_plain;
          Alcotest.test_case "node lists" `Quick test_classify_lists;
          Alcotest.test_case "both kinds" `Quick test_classify_both;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "consistent" `Quick test_consistent;
          Alcotest.test_case "closure" `Quick test_closure;
          Alcotest.test_case "count" `Quick test_count_consistent;
          Alcotest.test_case "bottom/top" `Quick
            test_count_consistent_bottom_top;
          Alcotest.test_case "reduction" `Quick test_reduction;
          Alcotest.test_case "size guard" `Quick test_reachability_guard;
        ] );
      ( "modes",
        [
          Alcotest.test_case "co-execution classes" `Quick
            test_co_execution_classes;
          Alcotest.test_case "no exclusive pairs" `Quick test_exclusive_pairs;
          Alcotest.test_case "exclusive pairs" `Quick
            test_exclusive_pairs_found;
          Alcotest.test_case "mode alternatives" `Quick test_mode_alternatives;
        ] );
      ( "query",
        [
          Alcotest.test_case "cell equality" `Quick test_query_cell_eq;
          Alcotest.test_case "cell leq" `Quick test_query_cell_leq;
          Alcotest.test_case "cell set" `Quick test_query_cell_set;
          Alcotest.test_case "predicates" `Quick test_query_predicates;
          Alcotest.test_case "clause conjunction" `Quick
            test_query_conjunction_of_clauses;
          Alcotest.test_case "exclusive needs trace" `Quick
            test_query_exclusive_needs_trace;
          Alcotest.test_case "parse errors" `Quick test_query_parse_errors;
          Alcotest.test_case "unknown task" `Quick test_query_unknown_task;
          Alcotest.test_case "print round trip" `Quick
            test_query_round_trip_print;
        ] );
      ( "latency",
        [
          Alcotest.test_case "pessimistic response" `Quick
            test_response_time_pessimistic;
          Alcotest.test_case "informed response" `Quick
            test_response_time_informed;
          Alcotest.test_case "frame delay" `Quick test_frame_delay;
          Alcotest.test_case "path analysis" `Quick test_analyze_path;
          Alcotest.test_case "invalid path" `Quick test_analyze_invalid_path;
          Alcotest.test_case "improvement" `Quick test_improvement;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "fig1 critical path" `Quick
            test_critical_path_fig1;
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "schedulable" `Quick test_schedulable;
          Alcotest.test_case "not schedulable" `Quick test_not_schedulable;
        ] );
    ]
