(* The daemon's robustness contract, tested without sleeping: the
   supervisor is a pure state machine driven by an injected clock; the
   bounded queue is strict-pipe; Tail survives rotation and truncation;
   a Stream killed between checkpoints and replayed from byte 0 renders
   a model byte-equal to an uninterrupted run; and an in-process daemon
   (signals off) drains, stops-and-resumes, refuses over-limit connects
   with BUSY, and keeps the accepted = finalized + failed + shed books
   exact even when a corrupt stream burns its whole restart budget. *)

module Sup = Rt_daemon.Supervisor
module Bq = Rt_daemon.Bqueue
module Stream = Rt_daemon.Stream
module Daemon = Rt_daemon.Daemon
module Control = Rt_daemon.Control
module Tail = Rt_trace.Stream_io.Tail

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  go 0

let tmpdir () =
  let d = Filename.temp_file "rtgend_test" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A deterministic multi-period trace as text. *)
let trace_text ?(periods = 9) seed =
  Rt_trace.Trace_io.to_string
    (Test_support.simulate ~periods ~seed (Test_support.pipeline_design 3))

let lines_of text =
  match List.rev (String.split_on_char '\n' text) with
  | "" :: rev -> List.rev rev
  | rev -> List.rev rev

let period_lines text =
  List.length
    (List.filter
       (fun l -> String.length l >= 6 && String.sub l 0 6 = "period")
       (lines_of text))

(* --- bounded queue --------------------------------------------------- *)

let test_bqueue_fifo () =
  let q = Bq.create ~capacity:3 in
  Alcotest.(check bool) "empty" true (Bq.is_empty q);
  List.iter (fun i -> Alcotest.(check bool) "push" true (Bq.push q i = `Ok)) [ 1; 2; 3 ];
  Alcotest.(check bool) "overflow" true (Bq.push q 4 = `Overflow);
  Alcotest.(check int) "unchanged" 3 (Bq.length q);
  Alcotest.(check int) "rejected" 1 (Bq.rejected q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Bq.pop q);
  Alcotest.(check bool) "room again" true (Bq.push q 4 = `Ok);
  Alcotest.(check (list int))
    "drain order" [ 2; 3; 4 ]
    (List.filter_map (fun () -> Bq.pop q) [ (); (); () ]);
  Alcotest.(check (option int)) "empty pop" None (Bq.pop q);
  Alcotest.(check int) "capacity" 3 (Bq.capacity q)

let test_bqueue_capacity () =
  match Bq.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

(* --- supervisor (fake clock, no sleeps) ------------------------------ *)

let policy =
  {
    Sup.max_restarts = 3;
    backoff_base = 0.1;
    backoff_factor = 2.0;
    backoff_cap = 5.0;
    stall_timeout = 1.0;
    idle_timeout = 2.0;
  }

let test_backoff_schedule () =
  let expected = [ 0.1; 0.2; 0.4; 0.8; 1.6; 3.2; 5.0; 5.0 ] in
  List.iteri
    (fun i want ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "restart %d" (i + 1))
        want
        (Sup.backoff_delay policy ~restart:(i + 1)))
    expected

let test_restart_budget () =
  let sup = Sup.create ~policy ~now:0.0 () in
  (* three crashes back off with the doubling schedule... *)
  List.iteri
    (fun i until ->
      let now = float_of_int i *. 10.0 in
      match Sup.note_crash sup ~now ~reason:"boom" with
      | `Backoff u ->
        Alcotest.(check (float 1e-9)) "backoff until" (now +. until) u;
        (* mid-backoff the verdict is Continue, after the deadline Restart *)
        Alcotest.(check bool) "too early" true
          (Sup.poll sup ~now:(u -. 0.01) ~pending:true = Sup.Continue);
        Alcotest.(check bool) "due" true
          (Sup.poll sup ~now:(u +. 0.01) ~pending:true = Sup.Restart);
        Sup.note_restart sup ~now:(u +. 0.01)
      | `Failed -> Alcotest.fail "failed before budget exhausted")
    [ 0.1; 0.2; 0.4 ];
  Alcotest.(check int) "restarts" 3 (Sup.restarts sup);
  (* ...the fourth exhausts the budget *)
  (match Sup.note_crash sup ~now:40.0 ~reason:"final straw" with
   | `Failed -> ()
   | `Backoff _ -> Alcotest.fail "budget not enforced");
  (match Sup.phase sup with
   | Sup.Failed r -> Alcotest.(check string) "reason" "final straw" r
   | _ -> Alcotest.fail "not failed");
  Alcotest.(check bool) "failed polls Continue" true
    (Sup.poll sup ~now:1000.0 ~pending:true = Sup.Continue)

let test_stall_watchdog () =
  let sup = Sup.create ~policy ~now:0.0 () in
  (* pending input, no progress: stall fires after stall_timeout *)
  Alcotest.(check bool) "within" true
    (Sup.poll sup ~now:0.9 ~pending:true = Sup.Continue);
  Alcotest.(check bool) "stalled" true
    (Sup.poll sup ~now:1.1 ~pending:true = Sup.Stalled);
  (* progress resets the watchdog *)
  Sup.note_progress sup ~now:1.05;
  Alcotest.(check bool) "reset" true
    (Sup.poll sup ~now:1.1 ~pending:true = Sup.Continue)

let test_idle_watchdog () =
  let sup = Sup.create ~policy ~now:0.0 () in
  Alcotest.(check bool) "within" true
    (Sup.poll sup ~now:1.9 ~pending:false = Sup.Continue);
  Alcotest.(check bool) "idle" true
    (Sup.poll sup ~now:2.1 ~pending:false = Sup.Idle);
  (* fresh data resets idleness; a stall clock does not tick while the
     queue is empty *)
  Sup.note_data sup ~now:2.05;
  Alcotest.(check bool) "reset" true
    (Sup.poll sup ~now:2.1 ~pending:false = Sup.Continue);
  (* the default policy never idles out *)
  let lazy_sup = Sup.create ~now:0.0 () in
  Alcotest.(check bool) "default never idle" true
    (Sup.poll lazy_sup ~now:1.0e9 ~pending:false = Sup.Continue)

let test_fail_latch () =
  let sup = Sup.create ~policy ~now:0.0 () in
  Sup.fail sup ~reason:"socket gone";
  (match Sup.phase sup with
   | Sup.Failed r -> Alcotest.(check string) "reason" "socket gone" r
   | _ -> Alcotest.fail "not failed");
  Alcotest.(check int) "no restart consumed" 0 (Sup.restarts sup);
  Alcotest.(check bool) "quarantine latch" false (Sup.quarantined sup);
  Sup.set_quarantined sup;
  Alcotest.(check bool) "latched" true (Sup.quarantined sup);
  let sup2 = Sup.create ~policy ~now:0.0 () in
  Sup.finalize sup2;
  Alcotest.(check bool) "finalized polls Continue" true
    (Sup.poll sup2 ~now:1.0e9 ~pending:true = Sup.Continue)

(* --- Tail: rotation, truncation, disappearance ----------------------- *)

(* Step until [stop] matches, collecting Line payloads; bounded so a
   regression fails fast instead of spinning. *)
let collect_until tail stop =
  let lines = ref [] in
  let rec go n =
    if n > 1000 then Alcotest.fail "tail did not settle in 1000 steps"
    else
      let ev = Tail.step tail in
      (match ev with Tail.Line l -> lines := l :: !lines | _ -> ());
      if stop ev then List.rev !lines else go (n + 1)
  in
  go 0

let test_tail_growth () =
  let dir = tmpdir () in
  let path = Filename.concat dir "t.trace" in
  let tail = Tail.create path in
  Alcotest.(check bool) "missing file" true (Tail.step tail = Tail.Vanished);
  write_file path "a\nb\n";
  Alcotest.(check (list string)) "initial" [ "a"; "b" ]
    (collect_until tail (fun e -> e = Tail.Waiting));
  (* append, including a line split across writes *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "c\nd";
  close_out oc;
  Alcotest.(check (list string)) "appended" [ "c" ]
    (collect_until tail (fun e -> e = Tail.Waiting));
  Alcotest.(check (option string)) "partial held back" (Some "d") (Tail.pending tail);
  (* pending takes the buffer; put the tail back together by reopening *)
  Tail.close tail

let test_tail_rotation () =
  let dir = tmpdir () in
  let path = Filename.concat dir "t.trace" in
  write_file path "a\npart";
  let tail = Tail.create path in
  Alcotest.(check (list string)) "before rotate" [ "a" ]
    (collect_until tail (fun e -> e = Tail.Waiting));
  (* logrotate-style: rename away, new file appears under the old name *)
  Sys.rename path (Filename.concat dir "t.trace.1");
  write_file path "fresh\n";
  let got = collect_until tail (fun e -> e = Tail.Waiting) in
  (* the old file's final partial line is flushed, then the new file is
     read from byte 0 *)
  Alcotest.(check (list string)) "across rotation" [ "part"; "fresh" ] got;
  Tail.close tail

let test_tail_truncation () =
  let dir = tmpdir () in
  let path = Filename.concat dir "t.trace" in
  write_file path "one\ntwo\nthree\n";
  let tail = Tail.create path in
  Alcotest.(check (list string)) "before truncate" [ "one"; "two"; "three" ]
    (collect_until tail (fun e -> e = Tail.Waiting));
  (* copytruncate-style shrink: reading restarts from byte 0 *)
  write_file path "anew\n";
  let saw_trunc = ref false in
  let got =
    collect_until tail (fun e ->
        if e = Tail.Truncated then saw_trunc := true;
        e = Tail.Waiting)
  in
  Alcotest.(check bool) "truncation detected" true !saw_trunc;
  Alcotest.(check (list string)) "reread" [ "anew" ] got;
  Tail.close tail

let test_follow_path_events () =
  (* follow_path absorbs Opened/Rotated/Truncated while yielding lines;
     on_event must surface each so callers can route them into the
     flight recorder. *)
  let dir = tmpdir () in
  let path = Filename.concat dir "f.trace" in
  write_file path "a\n";
  let seen = ref [] in
  let stop_flag = ref false in
  let source =
    Rt_trace.Stream_io.follow_path ~poll_interval:0.001
      ~on_event:(fun e -> seen := e :: !seen)
      ~stop:(fun () -> !stop_flag)
      path
  in
  Alcotest.(check (option string)) "first line" (Some "a") (source ());
  (* logrotate: rename away, recreate under the old name *)
  Sys.rename path (Filename.concat dir "f.trace.1");
  write_file path "fresh\n";
  Alcotest.(check (option string)) "line across rotation" (Some "fresh")
    (source ());
  (* copytruncate: shrink below the read position *)
  write_file path "zz\n";
  Alcotest.(check (option string)) "line after truncation" (Some "zz")
    (source ());
  stop_flag := true;
  Alcotest.(check (option string)) "ends on stop" None (source ());
  Alcotest.(check bool) "rotation surfaced" true
    (List.mem Tail.Rotated !seen);
  Alcotest.(check bool) "truncation surfaced" true
    (List.mem Tail.Truncated !seen);
  Alcotest.(check int) "every (re)open surfaced" 3
    (List.length (List.filter (fun e -> e = Tail.Opened) !seen))

(* --- stream: checkpoint kill/replay byte-equality -------------------- *)

let stream_cfg ?checkpoint_path ?(checkpoint_every = 2) () =
  {
    Stream.bound = 4;
    window = None;
    eps = None;
    queue_capacity = 4096;
    checkpoint =
      Option.map (fun p -> Rt_store.Slot.File p) checkpoint_path;
    checkpoint_every;
  }

let feed_all s text =
  List.iter (fun l -> ignore (Stream.offer_line s l)) (lines_of text);
  Stream.close_input s

let pump_to_done s =
  let rec go n =
    if n > 10_000 then Alcotest.fail "stream did not finish"
    else
      match Stream.pump s ~budget:7 with
      | _, Stream.Done -> ()
      | _, Stream.Crashed m -> Alcotest.failf "stream crashed: %s" m
      | _, (Stream.More | Stream.Blocked) -> go (n + 1)
  in
  go 0

let uninterrupted_model text =
  let s, note = Stream.create ~id:"ref" (stream_cfg ()) in
  Alcotest.(check (option string)) "fresh" None note;
  feed_all s text;
  pump_to_done s;
  match Stream.render_model s with
  | Ok m -> m
  | Error e -> Alcotest.failf "reference render: %s" e

let test_stream_kill_replay () =
  let dir = tmpdir () in
  let ckpt = Filename.concat dir "v.ckpt" in
  let text = trace_text ~periods:12 42 in
  let reference = uninterrupted_model text in
  (* run half-way with checkpoints every 2 periods, then "die" *)
  let s1, _ = Stream.create ~id:"v" (stream_cfg ~checkpoint_path:ckpt ()) in
  List.iter (fun l -> ignore (Stream.offer_line s1 l)) (lines_of text);
  let handled, _ = Stream.pump s1 ~budget:5 in
  Alcotest.(check int) "made progress" 5 handled;
  Alcotest.(check bool) "checkpointed" true (Stream.checkpoints_written s1 > 0);
  Alcotest.(check bool) "checkpoint on disk" true (Sys.file_exists ckpt);
  (* the replacement resumes the checkpoint and replays from byte 0 *)
  let s2, note = Stream.create ~id:"v" (stream_cfg ~checkpoint_path:ckpt ()) in
  Alcotest.(check (option string)) "clean resume" None note;
  Alcotest.(check bool) "prefix restored" true (Stream.periods_fed s2 > 0);
  feed_all s2 text;
  pump_to_done s2;
  (match Stream.render_model s2 with
   | Ok m -> Alcotest.(check string) "byte-equal after kill" reference m
   | Error e -> Alcotest.failf "resumed render: %s" e);
  Alcotest.(check int) "all periods" (period_lines text) (Stream.periods_fed s2)

let test_stream_corrupt_checkpoint () =
  let dir = tmpdir () in
  let ckpt = Filename.concat dir "v.ckpt" in
  let text = trace_text ~periods:6 7 in
  let reference = uninterrupted_model text in
  write_file ckpt "definitely not a checkpoint";
  let s, note = Stream.create ~id:"v" (stream_cfg ~checkpoint_path:ckpt ()) in
  Alcotest.(check bool) "fallback noted" true (note <> None);
  Alcotest.(check int) "fresh engine" 0 (Stream.periods_fed s);
  feed_all s text;
  pump_to_done s;
  (match Stream.render_model s with
   | Ok m -> Alcotest.(check string) "model unaffected" reference m
   | Error e -> Alcotest.failf "render: %s" e)

let test_stream_foreign_checkpoint () =
  let dir = tmpdir () in
  let ckpt = Filename.concat dir "x.ckpt" in
  let text = trace_text ~periods:6 9 in
  (* a checkpoint tagged for another stream id must not be resumed *)
  let s1, _ = Stream.create ~id:"other" (stream_cfg ~checkpoint_path:ckpt ()) in
  List.iter (fun l -> ignore (Stream.offer_line s1 l)) (lines_of text);
  ignore (Stream.pump s1 ~budget:4);
  Stream.write_checkpoint s1;
  Alcotest.(check bool) "checkpoint exists" true (Sys.file_exists ckpt);
  let s2, note = Stream.create ~id:"mine" (stream_cfg ~checkpoint_path:ckpt ()) in
  Alcotest.(check bool) "foreign tag noted" true (note <> None);
  Alcotest.(check int) "fresh engine" 0 (Stream.periods_fed s2)

let test_stream_overflow_and_close () =
  let s, _ =
    Stream.create ~id:"tiny"
      { (stream_cfg ()) with Stream.queue_capacity = 2 }
  in
  Alcotest.(check bool) "1" true (Stream.offer_line s "a" = `Ok);
  Alcotest.(check bool) "2" true (Stream.offer_line s "b" = `Ok);
  Alcotest.(check bool) "full" true (Stream.offer_line s "c" = `Overflow);
  Alcotest.(check int) "rejected" 1 (Stream.rejected s);
  Alcotest.(check int) "queued" 2 (Stream.queued s);
  Stream.close_input s;
  Alcotest.(check bool) "post-close drop" true (Stream.offer_line s "d" = `Ok);
  Alcotest.(check int) "still 2" 2 (Stream.queued s)

(* --- control protocol ------------------------------------------------ *)

let test_control_parse () =
  let ok req s =
    match Control.parse s with
    | Ok r -> Alcotest.(check string) s (Control.to_string req) (Control.to_string r)
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  ok Control.Status "status";
  ok Control.Status "  status  ";
  ok Control.Metrics "metrics";
  ok Control.Drain "drain";
  ok Control.Flight "flight";
  ok Control.Prometheus "prometheus";
  ok (Control.Snapshot "veh01") "snapshot veh01";
  (match Control.parse "snapshot" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "snapshot needs an id");
  match Control.parse "launch-missiles" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown verb accepted"

(* --- in-process daemon ----------------------------------------------- *)

let daemon_cfg ~spool ~out ?checkpoint_dir ?stop_after ?drain_after () =
  {
    Daemon.default with
    Daemon.spool = Some spool;
    out_dir = out;
    checkpoint_dir;
    checkpoint_every = 4;
    bound = 4;
    tick = 0.002;
    stop_after_total = stop_after;
    drain_after_total = drain_after;
    handle_signals = false;
  }

(* Three spool streams; threshold is total minus one held-back final
   period per stream (the parser needs the next period line or EOF to
   close a period, and a followed file has no EOF until drain). *)
let make_spool dir seeds =
  List.iteri
    (fun i seed ->
      write_file
        (Filename.concat dir (Printf.sprintf "veh%02d.trace" i))
        (trace_text ~periods:9 seed))
    seeds;
  let total =
    List.fold_left
      (fun acc seed -> acc + period_lines (trace_text ~periods:9 seed))
      0 seeds
  in
  total - List.length seeds

let check_models dir seeds =
  List.iteri
    (fun i seed ->
      let reference = uninterrupted_model (trace_text ~periods:9 seed) in
      let got = read_file (Filename.concat dir (Printf.sprintf "veh%02d.model" i)) in
      Alcotest.(check string) (Printf.sprintf "veh%02d byte-equal" i) reference got)
    seeds

let test_daemon_drain () =
  let spool = tmpdir () and out = tmpdir () in
  let seeds = [ 11; 22; 33 ] in
  let threshold = make_spool spool seeds in
  (match Daemon.run (daemon_cfg ~spool ~out ~drain_after:threshold ()) with
   | Ok Daemon.Drained -> ()
   | Ok Daemon.Stopped -> Alcotest.fail "stopped without stop_after_total"
   | Error e -> Alcotest.failf "daemon: %s" e);
  check_models out seeds

let test_daemon_kill_resume () =
  let spool = tmpdir () and out = tmpdir () and ckpt = tmpdir () in
  let seeds = [ 5; 6; 7 ] in
  let threshold = make_spool spool seeds in
  (* two abrupt exits mid-learn, then a drain over the same spool *)
  List.iter
    (fun stop_after ->
      match
        Daemon.run
          (daemon_cfg ~spool ~out ~checkpoint_dir:ckpt ~stop_after ())
      with
      | Ok Daemon.Stopped -> ()
      | Ok Daemon.Drained -> Alcotest.fail "drained instead of stopping"
      | Error e -> Alcotest.failf "daemon: %s" e)
    [ 9; 18 ];
  Alcotest.(check bool) "no model yet" false
    (Sys.file_exists (Filename.concat out "veh00.model"));
  Alcotest.(check bool) "checkpoint written" true
    (Sys.file_exists (Filename.concat ckpt "veh00.ckpt"));
  (match
     Daemon.run
       (daemon_cfg ~spool ~out ~checkpoint_dir:ckpt ~drain_after:threshold ())
   with
   | Ok Daemon.Drained -> ()
   | Ok Daemon.Stopped -> Alcotest.fail "stopped during final run"
   | Error e -> Alcotest.failf "daemon: %s" e);
  check_models out seeds

let test_daemon_corrupt_isolation () =
  let spool = tmpdir () and out = tmpdir () in
  let seeds = [ 3; 4 ] in
  let threshold = make_spool spool seeds in
  write_file (Filename.concat spool "broken.trace") "garbage\nmore garbage\n";
  let cfg = daemon_cfg ~spool ~out ~drain_after:threshold () in
  let cfg =
    {
      cfg with
      Daemon.metrics_path = Some (Filename.concat out "m.json");
      policy =
        { Sup.default_policy with Sup.max_restarts = 1; backoff_base = 0.0001 };
    }
  in
  (match Daemon.run cfg with
   | Ok Daemon.Drained -> ()
   | Ok Daemon.Stopped -> Alcotest.fail "stopped"
   | Error e -> Alcotest.failf "daemon: %s" e);
  (* neighbors unharmed, byte-equal *)
  check_models out seeds;
  Alcotest.(check bool) "no model for the corrupt stream" false
    (Sys.file_exists (Filename.concat out "broken.model"));
  (* the books balance: 3 accepted = 2 finalized + 1 failed *)
  let m = read_file (Filename.concat out "m.json") in
  Alcotest.(check bool) "accepted" true
    (contains m "\"daemon.streams_accepted\": 3");
  Alcotest.(check bool) "finalized" true
    (contains m "\"daemon.streams_finalized\": 2");
  Alcotest.(check bool) "failed" true (contains m "\"daemon.streams_failed\": 1");
  Alcotest.(check bool) "restart budget spent" true
    (contains m "\"daemon.restarts\": 1")

(* BUSY admission and the control socket, exercised by a forked client
   while the daemon runs in this process. *)
let connect_retry path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if n > 500 then failwith "connect_retry"
      else begin
        Unix.sleepf 0.01;
        go (n + 1)
      end
  in
  go 0

let read_all fd =
  let b = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    match Unix.read fd chunk 0 1024 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ();
  Buffer.contents b

let roundtrip sock line =
  let fd = connect_retry sock in
  let msg = Bytes.of_string (line ^ "\n") in
  ignore (Unix.write fd msg 0 (Bytes.length msg));
  let resp = read_all fd in
  Unix.close fd;
  resp

let test_daemon_busy_and_control () =
  let dir = tmpdir () in
  let data_sock = Filename.concat dir "data.sock" in
  let ctrl_sock = Filename.concat dir "ctl.sock" in
  let out = Filename.concat dir "client.out" in
  let cfg =
    {
      Daemon.default with
      Daemon.listen = Some data_sock;
      control = Some ctrl_sock;
      out_dir = dir;
      max_streams = 0;
      tick = 0.002;
      metrics_path = Some (Filename.concat dir "m.json");
      handle_signals = false;
    }
  in
  match Unix.fork () with
  | 0 ->
    (* client: refused with BUSY, then a status round-trip, then drain *)
    (try
       let fd = connect_retry data_sock in
       let greeting = read_all fd in
       Unix.close fd;
       let status = roundtrip ctrl_sock "status" in
       let bogus = roundtrip ctrl_sock "frobnicate" in
       let flight = roundtrip ctrl_sock "flight" in
       let prom = roundtrip ctrl_sock "prometheus" in
       write_file out
         (String.concat "\x00" [ greeting; status; bogus; flight; prom ]);
       ignore (roundtrip ctrl_sock "drain")
     with _ -> ());
    Unix._exit 0
  | pid ->
    (match Daemon.run cfg with
     | Ok Daemon.Drained -> ()
     | Ok Daemon.Stopped -> Alcotest.fail "stopped"
     | Error e -> Alcotest.failf "daemon: %s" e);
    ignore (Unix.waitpid [] pid);
    (match String.split_on_char '\x00' (read_file out) with
     | [ greeting; status; bogus; flight; prom ] ->
       Alcotest.(check string) "refused" "BUSY\n" greeting;
       Alcotest.(check bool) "status header" true
         (contains status "rtgend status");
       (* an unknown verb gets exactly one "error: ..." line back *)
       let n = String.length bogus in
       Alcotest.(check bool) "error reply is one line" true
         (n > 0 && bogus.[n - 1] = '\n'
          && not (String.contains (String.sub bogus 0 (n - 1)) '\n'));
       Alcotest.(check bool) "error prefix" true
         (String.length bogus >= 6 && String.sub bogus 0 6 = "error:");
       Alcotest.(check bool) "names the verb" true (contains bogus "frobnicate");
       Alcotest.(check bool) "flight dump over the socket" true
         (contains flight "rtgen-flight" && contains flight "daemon.start");
       Alcotest.(check bool) "prometheus over the socket" true
         (contains prom "# TYPE rtgen_")
     | _ -> Alcotest.fail "client did not complete");
    let m = read_file (Filename.concat dir "m.json") in
    Alcotest.(check bool) "busy counted" true
      (contains m "\"daemon.busy_rejections\": 1")

(* --- flight recorder: the dump narrates the supervisor ---------------- *)

module Json = Rt_obs.Json

let load_flight path =
  match Json.of_string (read_file path) with
  | Error m -> Alcotest.failf "flight dump unparsable: %s" m
  | Ok doc ->
    Alcotest.(check (option string)) "flight schema" (Some "rtgen-flight")
      (Option.bind (Json.member "schema" doc) Json.to_string_opt);
    (match Option.bind (Json.member "events" doc) Json.to_list with
     | Some events -> events
     | None -> Alcotest.fail "flight dump has no events array")

let ev_field name ev =
  Option.value ~default:""
    (Option.bind (Json.member name ev) Json.to_string_opt)

let index_of x l =
  let rec go i = function
    | [] -> None
    | y :: tl -> if y = x then Some i else go (i + 1) tl
  in
  go 0 l

let test_daemon_flight_sequence () =
  let spool = tmpdir () and out = tmpdir () and ckpt = tmpdir () in
  let seeds = [ 11; 22 ] in
  let threshold = make_spool spool seeds in
  let flight = Filename.concat out "flight.json" in
  let cfg =
    {
      (daemon_cfg ~spool ~out ~checkpoint_dir:ckpt ~drain_after:threshold ())
      with
      Daemon.flight_path = Some flight;
    }
  in
  (match Daemon.run cfg with
   | Ok Daemon.Drained -> ()
   | Ok Daemon.Stopped -> Alcotest.fail "stopped"
   | Error e -> Alcotest.failf "daemon: %s" e);
  let events = load_flight flight in
  let kinds = List.map (ev_field "kind") events in
  Alcotest.(check string) "recording opens with daemon.start" "daemon.start"
    (List.hd kinds);
  Alcotest.(check string) "recording closes with daemon.exit" "daemon.exit"
    (List.nth kinds (List.length kinds - 1));
  Alcotest.(check bool) "drain transition recorded" true
    (List.mem "drain.begin" kinds);
  (* Per stream, the event order retells the supervisor's life cycle:
     admitted first, period boundaries and checkpoint writes in the
     middle, finalize last. *)
  List.iteri
    (fun i _ ->
      let id = Printf.sprintf "veh%02d" i in
      let mine =
        List.filter (fun ev -> ev_field "stream" ev = id) events
      in
      let my_kinds = List.map (ev_field "kind") mine in
      (match my_kinds with
       | "stream.admit" :: _ -> ()
       | k :: _ -> Alcotest.failf "%s opens with %s, not admit" id k
       | [] -> Alcotest.failf "%s has no events" id);
      (match List.rev my_kinds with
       | "stream.finalize" :: _ -> ()
       | k :: _ -> Alcotest.failf "%s closes with %s, not finalize" id k
       | [] -> assert false);
      Alcotest.(check bool) (id ^ " wrote checkpoints") true
        (List.mem "checkpoint.write" my_kinds);
      Alcotest.(check bool) (id ^ " crossed period boundaries") true
        (List.mem "engine.period" my_kinds))
    seeds

let test_daemon_flight_resume_sequence () =
  let spool = tmpdir () and out = tmpdir () and ckpt = tmpdir () in
  let seeds = [ 5; 6 ] in
  let threshold = make_spool spool seeds in
  (* die abruptly mid-learn, checkpoints on disk... *)
  (match
     Daemon.run
       (daemon_cfg ~spool ~out ~checkpoint_dir:ckpt ~stop_after:9 ())
   with
   | Ok Daemon.Stopped -> ()
   | Ok Daemon.Drained -> Alcotest.fail "drained instead of stopping"
   | Error e -> Alcotest.failf "daemon: %s" e);
  (* ...then the successor's flight dump must narrate the resume. *)
  let flight = Filename.concat out "flight.json" in
  let cfg =
    {
      (daemon_cfg ~spool ~out ~checkpoint_dir:ckpt ~drain_after:threshold ())
      with
      Daemon.flight_path = Some flight;
    }
  in
  (match Daemon.run cfg with
   | Ok Daemon.Drained -> ()
   | Ok Daemon.Stopped -> Alcotest.fail "stopped during final run"
   | Error e -> Alcotest.failf "daemon: %s" e);
  let events = load_flight flight in
  List.iteri
    (fun i _ ->
      let id = Printf.sprintf "veh%02d" i in
      let my_kinds =
        List.map (ev_field "kind")
          (List.filter (fun ev -> ev_field "stream" ev = id) events)
      in
      match (index_of "stream.resume" my_kinds,
             index_of "engine.period" my_kinds) with
      | None, _ -> Alcotest.failf "%s never resumed its checkpoint" id
      | Some _, None -> Alcotest.failf "%s fed no periods" id
      | Some r, Some p ->
        Alcotest.(check bool) (id ^ " resumed before feeding") true (r < p))
    seeds;
  (* and the resumed run still renders byte-equal models *)
  check_models out seeds

let () =
  Alcotest.run "daemon"
    [
      ( "bqueue",
        [
          Alcotest.test_case "fifo and overflow" `Quick test_bqueue_fifo;
          Alcotest.test_case "capacity validation" `Quick test_bqueue_capacity;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "restart budget" `Quick test_restart_budget;
          Alcotest.test_case "stall watchdog" `Quick test_stall_watchdog;
          Alcotest.test_case "idle watchdog" `Quick test_idle_watchdog;
          Alcotest.test_case "fail latch" `Quick test_fail_latch;
        ] );
      ( "tail",
        [
          Alcotest.test_case "growth" `Quick test_tail_growth;
          Alcotest.test_case "rotation" `Quick test_tail_rotation;
          Alcotest.test_case "truncation" `Quick test_tail_truncation;
          Alcotest.test_case "follow_path surfaces transitions" `Quick
            test_follow_path_events;
        ] );
      ( "stream",
        [
          Alcotest.test_case "kill/replay byte-equality" `Quick
            test_stream_kill_replay;
          Alcotest.test_case "corrupt checkpoint fallback" `Quick
            test_stream_corrupt_checkpoint;
          Alcotest.test_case "foreign checkpoint refused" `Quick
            test_stream_foreign_checkpoint;
          Alcotest.test_case "overflow and close" `Quick
            test_stream_overflow_and_close;
        ] );
      ( "control",
        [ Alcotest.test_case "request parsing" `Quick test_control_parse ] );
      ( "daemon",
        [
          Alcotest.test_case "spool drain byte-equality" `Quick
            test_daemon_drain;
          Alcotest.test_case "kill twice, resume, byte-equality" `Quick
            test_daemon_kill_resume;
          Alcotest.test_case "corrupt stream isolation" `Quick
            test_daemon_corrupt_isolation;
          Alcotest.test_case "busy admission and control socket" `Quick
            test_daemon_busy_and_control;
        ] );
      ( "flight",
        [
          Alcotest.test_case "dump narrates supervisor transitions" `Quick
            test_daemon_flight_sequence;
          Alcotest.test_case "resume sequence after abrupt stop" `Quick
            test_daemon_flight_resume_sequence;
        ] );
    ]
