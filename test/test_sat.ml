module Cnf = Rt_sat.Cnf
module Dimacs = Rt_sat.Dimacs
module Dpll = Rt_sat.Dpll
module Me = Rt_sat.Match_encoding
module P = Rt_trace.Period
module E = Rt_trace.Event
open Test_support

(* --- Cnf --- *)

let test_cnf_validation () =
  Alcotest.check_raises "zero literal" (Invalid_argument "Cnf.make: zero literal")
    (fun () -> ignore (Cnf.make ~nvars:2 [ [ 1; 0 ] ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Cnf.make: literal out of range")
    (fun () -> ignore (Cnf.make ~nvars:2 [ [ 3 ] ]))

let test_cnf_eval () =
  let f = Cnf.make ~nvars:2 [ [ 1; 2 ]; [ -1; -2 ] ] in
  Alcotest.(check bool) "xor true" true (Cnf.eval f [| false; true; false |]);
  Alcotest.(check bool) "xor false" false (Cnf.eval f [| false; true; true |]);
  Alcotest.(check bool) "empty clause" false
    (Cnf.eval (Cnf.make ~nvars:1 [ [] ]) [| false; true |])

(* --- Dpll --- *)

let check_sat f expected =
  match Dpll.solve f, expected with
  | Dpll.Sat model, true ->
    Alcotest.(check bool) "model evaluates" true (Cnf.eval f model)
  | Dpll.Unsat, false -> ()
  | Dpll.Sat _, false -> Alcotest.fail "expected unsat"
  | Dpll.Unsat, true -> Alcotest.fail "expected sat"

let test_dpll_trivial () =
  check_sat (Cnf.make ~nvars:0 []) true;
  check_sat (Cnf.make ~nvars:1 [ [ 1 ] ]) true;
  check_sat (Cnf.make ~nvars:1 [ [ 1 ]; [ -1 ] ]) false;
  check_sat (Cnf.make ~nvars:1 [ [] ]) false

let test_dpll_unit_chain () =
  (* x1, x1→x2, x2→x3 forces all true. *)
  let f = Cnf.make ~nvars:3 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] in
  (match Dpll.solve f with
   | Dpll.Sat m ->
     Alcotest.(check bool) "all forced" true (m.(1) && m.(2) && m.(3))
   | Dpll.Unsat -> Alcotest.fail "sat expected")

let test_dpll_pigeonhole () =
  (* 3 pigeons, 2 holes: classic unsat. Vars p_{i,j} = 2*(i-1)+j. *)
  let v i j = (2 * (i - 1)) + j in
  let clauses =
    (* each pigeon somewhere *)
    [ [ v 1 1; v 1 2 ]; [ v 2 1; v 2 2 ]; [ v 3 1; v 3 2 ] ]
    (* no two pigeons share a hole *)
    @ List.concat_map (fun j ->
        [ [ -v 1 j; -v 2 j ]; [ -v 1 j; -v 3 j ]; [ -v 2 j; -v 3 j ] ])
      [ 1; 2 ]
  in
  check_sat (Cnf.make ~nvars:6 clauses) false

let test_dpll_stats () =
  let f = Cnf.make ~nvars:3 [ [ 1; 2; 3 ] ] in
  let _, stats = Dpll.solve_with_stats f in
  Alcotest.(check bool) "some work recorded" true
    (stats.decisions >= 1 || stats.propagations >= 0)

let random_cnf rng nvars nclauses =
  let clause () =
    let len = 1 + Rt_util.Pcg32.int rng 3 in
    List.init len (fun _ ->
        let v = 1 + Rt_util.Pcg32.int rng nvars in
        if Rt_util.Pcg32.bool rng then v else -v)
  in
  Cnf.make ~nvars (List.init nclauses (fun _ -> clause ()))

let dpll_vs_brute_force =
  qcheck_case "dpll agrees with brute force" ~count:200 (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Rt_util.Pcg32.of_int seed in
       let nvars = 1 + Rt_util.Pcg32.int rng 8 in
       let f = random_cnf rng nvars (1 + Rt_util.Pcg32.int rng 16) in
       let d = Dpll.is_satisfiable f in
       let b = match Dpll.brute_force f with Dpll.Sat _ -> true | Dpll.Unsat -> false in
       d = b)

let dpll_models_valid =
  qcheck_case "dpll models satisfy the formula" ~count:200
    (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Rt_util.Pcg32.of_int seed in
       let nvars = 1 + Rt_util.Pcg32.int rng 10 in
       let f = random_cnf rng nvars (1 + Rt_util.Pcg32.int rng 20) in
       match Dpll.solve f with
       | Dpll.Sat m -> Cnf.eval f m
       | Dpll.Unsat -> true)

(* --- Dimacs --- *)

let test_dimacs_round_trip () =
  let f = Cnf.make ~nvars:3 [ [ 1; -2 ]; [ 2; 3 ]; [ -1 ] ] in
  match Dimacs.of_string (Dimacs.to_string f) with
  | Ok f' ->
    Alcotest.(check int) "nvars" f.Cnf.nvars f'.Cnf.nvars;
    Alcotest.(check bool) "clauses" true (f.Cnf.clauses = f'.Cnf.clauses)
  | Error _ -> Alcotest.fail "round trip failed"

let test_dimacs_comments () =
  let f = Dimacs.of_string_exn "c hi\np cnf 2 1\nc mid\n1 -2 0\n" in
  Alcotest.(check int) "one clause" 1 (Cnf.num_clauses f)

let test_dimacs_errors () =
  (match Dimacs.of_string "1 2 0\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing header accepted");
  (match Dimacs.of_string "p cnf x y\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad header accepted")

(* --- Match_encoding --- *)

let ts4 = Rt_task.Task_set.numbered 4

let ev time kind = { E.time; kind }

let period1 () =
  P.make_exn ~index:0 ~task_set:ts4
    [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0); ev 21 (E.Msg_rise 1);
      ev 24 (E.Msg_fall 1); ev 25 (E.Task_start 1); ev 35 (E.Task_end 1);
      ev 36 (E.Msg_rise 2); ev 39 (E.Msg_fall 2); ev 40 (E.Task_start 3);
      ev 50 (E.Task_end 3) ]

let test_encoding_shape () =
  let enc = Me.encode (Df.top 4) (period1 ()) in
  (* m1 has 2 admissible pairs, m2 has 2: 4 variables. *)
  Alcotest.(check int) "4 vars" 4 enc.cnf.Cnf.nvars;
  Alcotest.(check bool) "has clauses" true (Cnf.num_clauses enc.cnf >= 2)

let test_sat_matches_agree_on_example () =
  let pd = period1 () in
  let cases =
    [ Df.top 4; Df.create 4;
      (let d = Df.create 4 in
       Df.set d 0 1 Dv.Fwd; Df.set d 1 0 Dv.Bwd;
       Df.set d 1 3 Dv.Fwd; Df.set d 3 1 Dv.Bwd; d);
      (let d = Df.create 4 in
       Df.set d 0 1 Dv.Fwd; Df.set d 1 0 Dv.Bwd; d) ]
  in
  List.iter (fun d ->
      Alcotest.(check bool) "sat = backtracking"
        (Rt_learn.Matching.matches d pd) (Me.matches_sat d pd))
    cases

let test_witness_decoding () =
  let pd = period1 () in
  let enc = Me.encode (Df.top 4) pd in
  (match Dpll.solve enc.cnf with
   | Dpll.Sat model ->
     let w = Me.witness_of_model enc model in
     Alcotest.(check int) "one pair per message" 2 (Array.length w);
     Array.iter (fun (s, r) ->
         Alcotest.(check bool) "pair decoded" true (s >= 0 && r >= 0 && s <> r))
       w
   | Dpll.Unsat -> Alcotest.fail "top must match")

(* Differential test over random traces and random hypotheses. *)
let sat_vs_backtracking =
  qcheck_case "sat encoding = backtracking matcher" ~count:60
    (QCheck.int_range 0 10_000)
    (fun seed ->
       let design = small_design (seed mod 40) in
       let trace = simulate ~periods:3 ~seed design in
       let n = Rt_trace.Trace.task_count trace in
       let rng = Rt_util.Pcg32.of_int (seed * 13) in
       let d = Df.create n in
       let values = [| Dv.Par; Dv.Fwd; Dv.Bwd; Dv.Fwd_maybe; Dv.Bwd_maybe; Dv.Bi_maybe |] in
       for a = 0 to n - 1 do
         for b = 0 to n - 1 do
           if a <> b then
             Df.set d a b values.(Rt_util.Pcg32.int rng (Array.length values))
         done
       done;
       List.for_all (fun pd ->
           Rt_learn.Matching.matches d pd = Me.matches_sat d pd)
         (Rt_trace.Trace.periods trace))

let () =
  Alcotest.run "rt_sat"
    [
      ( "cnf",
        [
          Alcotest.test_case "validation" `Quick test_cnf_validation;
          Alcotest.test_case "eval" `Quick test_cnf_eval;
        ] );
      ( "dpll",
        [
          Alcotest.test_case "trivial" `Quick test_dpll_trivial;
          Alcotest.test_case "unit chain" `Quick test_dpll_unit_chain;
          Alcotest.test_case "pigeonhole unsat" `Quick test_dpll_pigeonhole;
          Alcotest.test_case "stats" `Quick test_dpll_stats;
          dpll_vs_brute_force;
          dpll_models_valid;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "round trip" `Quick test_dimacs_round_trip;
          Alcotest.test_case "comments" `Quick test_dimacs_comments;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
        ] );
      ( "match_encoding",
        [
          Alcotest.test_case "shape" `Quick test_encoding_shape;
          Alcotest.test_case "agrees on example" `Quick
            test_sat_matches_agree_on_example;
          Alcotest.test_case "witness decoding" `Quick test_witness_decoding;
          sat_vs_backtracking;
        ] );
    ]
