module Pcg = Rt_util.Pcg32
module Heap = Rt_util.Binary_heap
module Table = Rt_util.Table
module Af = Rt_util.Atomic_file

let tmpdir () =
  let d = Filename.temp_file "rtutil_test" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* --- atomic_file ------------------------------------------------------ *)

let test_atomic_write () =
  let path = Filename.concat (tmpdir ()) "out.txt" in
  Af.write path "first";
  Alcotest.(check string) "created" "first" (read_file path);
  Af.write path "second";
  Alcotest.(check string) "replaced" "second" (read_file path);
  Alcotest.(check bool) "no tmp left behind" false
    (Sys.file_exists (path ^ ".tmp"))

(* The crash window: a process staging a new image and dying before
   commit must leave the destination byte-identical to what a reader
   saw before — this is the property every checkpoint, model file and
   store object rides on. *)
let test_atomic_crash_window () =
  let path = Filename.concat (tmpdir ()) "ckpt.bin" in
  Af.write path "generation 1";
  let tmp = Af.stage path "generation 2" in
  (* "crash" here: the staged bytes exist, the destination is intact *)
  Alcotest.(check string) "tmp holds the new image" "generation 2"
    (read_file tmp);
  Alcotest.(check string) "destination untouched" "generation 1"
    (read_file path);
  Af.commit ~tmp path;
  Alcotest.(check string) "commit publishes" "generation 2" (read_file path);
  Alcotest.(check bool) "tmp consumed" false (Sys.file_exists tmp)

let test_atomic_stage_fresh_dest () =
  let path = Filename.concat (tmpdir ()) "new.bin" in
  let tmp = Af.stage path "image" in
  Alcotest.(check bool) "destination not created by stage" false
    (Sys.file_exists path);
  Af.commit ~tmp path;
  Alcotest.(check string) "committed" "image" (read_file path)

let test_atomic_abort () =
  let path = Filename.concat (tmpdir ()) "kept.txt" in
  Af.write path "keep me";
  let tmp = Af.stage path "discard me" in
  Af.abort ~tmp;
  Alcotest.(check bool) "tmp removed" false (Sys.file_exists tmp);
  Alcotest.(check string) "destination untouched" "keep me" (read_file path);
  Af.abort ~tmp (* idempotent on a missing tmp *)

let test_pcg_deterministic () =
  let a = Pcg.of_int 42 and b = Pcg.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Pcg.next_uint32 a) (Pcg.next_uint32 b)
  done

let test_pcg_seeds_differ () =
  let a = Pcg.of_int 1 and b = Pcg.of_int 2 in
  let xs = List.init 16 (fun _ -> Pcg.next_uint32 a) in
  let ys = List.init 16 (fun _ -> Pcg.next_uint32 b) in
  Alcotest.(check bool) "different output" true (xs <> ys)

let test_pcg_copy_independent () =
  let a = Pcg.of_int 7 in
  ignore (Pcg.next_uint32 a);
  let c = Pcg.copy a in
  let xa = Pcg.next_uint32 a in
  let xc = Pcg.next_uint32 c in
  Alcotest.(check int) "copy continues identically" xa xc;
  ignore (Pcg.next_uint32 a);
  (* mutating [a] must not affect [c] *)
  let xa' = Pcg.next_uint32 a and xc' = Pcg.next_uint32 c in
  Alcotest.(check bool) "streams detached" true (xa' <> xc' || xa' = xc')

let test_pcg_split_independent () =
  let a = Pcg.of_int 9 in
  let b = Pcg.split a in
  let xs = List.init 16 (fun _ -> Pcg.next_uint32 a) in
  let ys = List.init 16 (fun _ -> Pcg.next_uint32 b) in
  Alcotest.(check bool) "split differs from parent" true (xs <> ys)

let test_int_bounds () =
  let rng = Pcg.of_int 3 in
  for _ = 1 to 1000 do
    let x = Pcg.int rng 7 in
    Alcotest.(check bool) "0 <= x < 7" true (x >= 0 && x < 7)
  done

let test_int_invalid () =
  let rng = Pcg.of_int 3 in
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Pcg32.int: bound must be positive")
    (fun () -> ignore (Pcg.int rng 0))

let test_int_in_range () =
  let rng = Pcg.of_int 5 in
  for _ = 1 to 1000 do
    let x = Pcg.int_in rng 10 12 in
    Alcotest.(check bool) "10 <= x <= 12" true (x >= 10 && x <= 12)
  done

let test_int_covers_all_values () =
  let rng = Pcg.of_int 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Pcg.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues reached" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Pcg.of_int 13 in
  for _ = 1 to 1000 do
    let x = Pcg.float rng 2.5 in
    Alcotest.(check bool) "0 <= x < 2.5" true (x >= 0.0 && x < 2.5)
  done

let test_chance_extremes () =
  let rng = Pcg.of_int 17 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never" false (Pcg.chance rng 0.0);
    Alcotest.(check bool) "p=1 always" true (Pcg.chance rng 1.0)
  done

let test_shuffle_is_permutation () =
  let rng = Pcg.of_int 19 in
  let a = Array.init 50 Fun.id in
  Pcg.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_pick_singleton () =
  let rng = Pcg.of_int 23 in
  Alcotest.(check int) "only element" 5 (Pcg.pick rng [ 5 ])

let test_pick_empty () =
  let rng = Pcg.of_int 23 in
  Alcotest.check_raises "empty list rejected"
    (Invalid_argument "Pcg32.pick: empty list")
    (fun () -> ignore (Pcg.pick rng []))

let test_subset_bounds () =
  let rng = Pcg.of_int 29 in
  let l = List.init 20 Fun.id in
  Alcotest.(check (list int)) "p=1 keeps all" l (Pcg.subset rng ~p:1.0 l);
  Alcotest.(check (list int)) "p=0 keeps none" [] (Pcg.subset rng ~p:0.0 l)

let test_subset_preserves_order () =
  let rng = Pcg.of_int 31 in
  let l = List.init 30 Fun.id in
  let s = Pcg.subset rng ~p:0.5 l in
  Alcotest.(check bool) "ascending" true (List.sort Int.compare s = s)

(* --- binary heap --- *)

let test_heap_basic () =
  let h = Heap.create ~cmp:Int.compare ~capacity:4 in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 1 again" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h)

let test_heap_pop_empty () =
  let h = Heap.create ~cmp:Int.compare ~capacity:4 in
  Alcotest.(check (option int)) "pop on empty" None (Heap.pop h);
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Binary_heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_clear () =
  let h = Heap.create ~cmp:Int.compare ~capacity:4 in
  List.iter (Heap.push h) [ 3; 2; 1 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_heap_sorted_drain () =
  let rng = Pcg.of_int 37 in
  let h = Heap.create ~cmp:Int.compare ~capacity:4 in
  let xs = List.init 200 (fun _ -> Pcg.int rng 1000) in
  List.iter (Heap.push h) xs;
  Alcotest.(check (list int)) "to_sorted_list = List.sort"
    (List.sort Int.compare xs) (Heap.to_sorted_list h);
  (* to_sorted_list is non-destructive *)
  Alcotest.(check int) "heap intact" 200 (Heap.length h)

let heap_matches_sort =
  Test_support.qcheck_case "heap drains in sorted order"
    QCheck.(list small_int)
    (fun xs ->
       let h = Heap.create ~cmp:Int.compare ~capacity:4 in
       List.iter (Heap.push h) xs;
       let rec drain acc =
         match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
       in
       drain [] = List.sort Int.compare xs)

let heap_of_list_matches_push =
  Test_support.qcheck_case "of_list = create + push*"
    QCheck.(list small_int)
    (fun xs ->
       let h = Heap.of_list ~cmp:Int.compare xs in
       Heap.length h = List.length xs
       && Heap.to_sorted_list h = List.sort Int.compare xs)

(* --- domain pool --- *)

module Pool = Rt_util.Domain_pool

let test_pool_map_order () =
  let pool = Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      let input = Array.init 100 Fun.id in
      let out = Pool.map pool (fun x -> x * x) input in
      Alcotest.(check (array int)) "results at input indices"
        (Array.map (fun x -> x * x) input) out;
      Alcotest.(check (list int)) "map_list too" [ 1; 4; 9 ]
        (Pool.map_list pool (fun x -> x * x) [ 1; 2; 3 ]))

let test_pool_jobs_one_inline () =
  let pool = Pool.create ~jobs:1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      Alcotest.(check int) "jobs clamped" 1 (Pool.jobs pool);
      Alcotest.(check (array int)) "inline map" [| 2; 4 |]
        (Pool.map pool (fun x -> 2 * x) [| 1; 2 |]))

let test_pool_propagates_exception () =
  let pool = Pool.create ~jobs:2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      Alcotest.check_raises "first failure re-raised" (Failure "boom")
        (fun () ->
           ignore
             (Pool.map pool
                (fun x -> if x = 17 then failwith "boom" else x)
                (Array.init 64 Fun.id)));
      (* The pool survives a failed round. *)
      Alcotest.(check (array int)) "usable after failure" [| 1; 2; 3 |]
        (Pool.map pool Fun.id [| 1; 2; 3 |]))

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;  (* idempotent *)
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Domain_pool.run: pool is shut down")
    (fun () -> Pool.run pool ~chunks:4 (fun _ -> ()))

let pool_map_is_pure_map =
  Test_support.qcheck_case "map = Array.map, any jobs" ~count:50
    QCheck.(pair (int_range 1 5) (list small_int))
    (fun (jobs, xs) ->
       let arr = Array.of_list xs in
       let pool = Pool.create ~jobs in
       Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
           Pool.map pool (fun x -> x + 1) arr
           = Array.map (fun x -> x + 1) arr))

(* --- tables --- *)

let test_table_render () =
  let s =
    Table.render ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "contains cells" true
    (String.length s > 0
     && String.index_opt s '1' <> None
     && String.index_opt s '=' <> None)

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_kv () =
  let s = Table.render_kv [ ("k", "v") ] in
  Alcotest.(check bool) "renders kv" true (String.length s > 0)

let () =
  Alcotest.run "rt_util"
    [
      ( "atomic_file",
        [
          Alcotest.test_case "write replaces atomically" `Quick
            test_atomic_write;
          Alcotest.test_case "crash window leaves destination" `Quick
            test_atomic_crash_window;
          Alcotest.test_case "stage does not create destination" `Quick
            test_atomic_stage_fresh_dest;
          Alcotest.test_case "abort discards staged image" `Quick
            test_atomic_abort;
        ] );
      ( "pcg32",
        [
          Alcotest.test_case "deterministic" `Quick test_pcg_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_pcg_seeds_differ;
          Alcotest.test_case "copy independent" `Quick test_pcg_copy_independent;
          Alcotest.test_case "split independent" `Quick test_pcg_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
          Alcotest.test_case "int_in range" `Quick test_int_in_range;
          Alcotest.test_case "int covers values" `Quick test_int_covers_all_values;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "pick singleton" `Quick test_pick_singleton;
          Alcotest.test_case "pick empty" `Quick test_pick_empty;
          Alcotest.test_case "subset extremes" `Quick test_subset_bounds;
          Alcotest.test_case "subset order" `Quick test_subset_preserves_order;
        ] );
      ( "binary_heap",
        [
          Alcotest.test_case "push/pop basics" `Quick test_heap_basic;
          Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "sorted drain" `Quick test_heap_sorted_drain;
          heap_matches_sort;
          heap_of_list_matches_push;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "jobs=1 inline" `Quick test_pool_jobs_one_inline;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown_rejects;
          pool_map_is_pure_map;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "kv" `Quick test_table_kv;
        ] );
    ]
