(* Robustness suite for the fault-injection / resilient-ingestion /
   checkpointing work: Corrupt is exactly reproducible and the identity
   at rate 0; Recover-mode loading survives every corruption kind and
   accounts for everything it changed; Repair's per-stream fixes are the
   documented ones; checkpoints round-trip bit-exactly across all merge
   policies and make a killed run indistinguishable from an uninterrupted
   one; the simulator's extended fault model stays deterministic. *)

module E = Rt_trace.Event
module P = Rt_trace.Period
module T = Rt_trace.Trace
module Io = Rt_trace.Trace_io
module Q = Rt_trace.Quarantine
module Rp = Rt_trace.Repair
module C = Rt_trace.Corrupt
module V = Rt_trace.Vcd
module H = Rt_learn.Heuristic

let ev time kind = { E.time; kind }

let ts2 = Rt_task.Task_set.of_names [| "a"; "b" |]

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A mid-sized deterministic trace shared by the heavier tests. *)
let base_trace =
  lazy (Test_support.simulate ~periods:8 ~seed:3 (Test_support.pipeline_design 4))

(* --- Repair: the per-stream fixes --- *)

let repair_ok events =
  match Rp.period ~index:0 ~task_set:ts2 events with
  | Ok (p, fixes) -> (p, fixes)
  | Error e -> Alcotest.failf "repair failed: %s" (P.string_of_error e)

let test_repair_dangling_rise () =
  let p, fixes =
    repair_ok
      [ ev 0 (E.Task_start 0); ev 10 (E.Task_end 0); ev 12 (E.Msg_rise 5) ]
  in
  Alcotest.(check bool) "fix reported" true
    (fixes = [ Rp.Closed_dangling_rise 5 ]);
  Alcotest.(check int) "message kept" 1 (P.msg_count p);
  Alcotest.(check int) "synthetic fall just after tmax" 13 p.msgs.(0).fall

let test_repair_orphan_fall () =
  let p, fixes =
    repair_ok
      [ ev 0 (E.Task_start 0); ev 10 (E.Task_end 0); ev 8 (E.Msg_fall 5) ]
  in
  Alcotest.(check bool) "fix reported" true
    (fixes = [ Rp.Dropped_orphan_fall 5 ]);
  Alcotest.(check int) "message gone" 0 (P.msg_count p)

let test_repair_swap_within_eps () =
  let inverted =
    [ ev 0 (E.Task_start 0); ev 10 (E.Task_end 0);
      ev 22 (E.Msg_rise 5); ev 20 (E.Msg_fall 5) ]
  in
  (match Rp.period ~eps:5 ~index:0 ~task_set:ts2 inverted with
   | Error e -> Alcotest.failf "repair failed: %s" (P.string_of_error e)
   | Ok (p, fixes) ->
     Alcotest.(check bool) "swap reported" true
       (fixes = [ Rp.Swapped_edges_within_eps 5 ]);
     Alcotest.(check int) "rise took the earlier stamp" 20 p.msgs.(0).rise;
     Alcotest.(check int) "fall took the later stamp" 22 p.msgs.(0).fall);
  (* Without the tolerance the same evidence is an orphan plus a
     dangling edge. *)
  let _, fixes = repair_ok inverted in
  Alcotest.(check bool) "eps 0 falls back to drop+close" true
    (List.mem (Rp.Dropped_orphan_fall 5) fixes
     && List.mem (Rp.Closed_dangling_rise 5) fixes)

let test_repair_duplicate_start () =
  let p, fixes =
    repair_ok
      [ ev 0 (E.Task_start 0); ev 5 (E.Task_start 0); ev 10 (E.Task_end 0) ]
  in
  Alcotest.(check bool) "fix reported" true
    (fixes = [ Rp.Dropped_duplicate_start 0 ]);
  Alcotest.(check int) "first start kept" 0 p.start_time.(0);
  Alcotest.(check bool) "task executed" true p.executed.(0)

let test_repair_task_inversion () =
  match
    Rp.period ~eps:2 ~index:0 ~task_set:ts2
      [ ev 5 (E.Task_end 0); ev 7 (E.Task_start 0) ]
  with
  | Error e -> Alcotest.failf "repair failed: %s" (P.string_of_error e)
  | Ok (p, fixes) ->
    Alcotest.(check bool) "swap reported" true
      (fixes = [ Rp.Swapped_task_within_eps 0 ]);
    Alcotest.(check int) "start" 5 p.start_time.(0);
    Alcotest.(check int) "end" 7 p.end_time.(0)

(* --- Trace_io: strict vs recover --- *)

let damaged_text =
  "# rtgen-trace v1\ntasks a b\nperiod 0\nbogus line\n1 start a\n2 end a\n\
   period 1\n1 start a\n"

let test_io_strict_still_rejects () =
  match Io.of_string damaged_text with
  | Ok _ -> Alcotest.fail "strict mode accepted damage"
  | Error e -> Alcotest.(check int) "first bad line" 4 e.line

let test_io_recover_accounts () =
  match Io.of_string ~mode:`Recover damaged_text with
  | Error e -> Alcotest.failf "recover failed: %s" e.message
  | Ok (t, q) ->
    Alcotest.(check int) "both periods usable" 2 (T.period_count t);
    Alcotest.(check int) "one line skipped" 1 (List.length q.skipped_lines);
    Alcotest.(check int) "skipped line number" 4
      (List.hd q.skipped_lines).Q.line;
    Alcotest.(check int) "clean period counted" 1 q.kept;
    (* period 1's dangling start was closed, not dropped *)
    Alcotest.(check int) "repaired" 1 (List.length q.repaired);
    Alcotest.(check int) "dropped" 0 (List.length q.dropped)

let test_io_missing_tasks_fatal_in_both_modes () =
  List.iter (fun mode ->
      match Io.of_string ~mode "period 0\n1 start a\n" with
      | Ok _ -> Alcotest.fail "accepted a trace without a tasks line"
      | Error _ -> ())
    [ `Strict; `Recover ]

(* --- Quarantine arithmetic --- *)

let test_quarantine_confidence () =
  Alcotest.(check (float 1e-9)) "empty is full confidence" 1.0
    (Q.confidence Q.empty);
  let q =
    { Q.empty with
      Q.kept = 3;
      repaired =
        [ { Q.period_index = 1; fixes = [ "x" ] };
          { Q.period_index = 2; fixes = [ "y" ] } ];
      dropped = [ { Q.period_index = 3; reason = "z" } ] }
  in
  Alcotest.(check int) "periods seen" 6 (Q.periods_seen q);
  Alcotest.(check (float 1e-9)) "kept=1, repaired=1/2, dropped=0"
    (4.0 /. 6.0) (Q.confidence q);
  Alcotest.(check bool) "summary mentions the counts" true
    (contains ~needle:"3 kept, 2 repaired, 1 dropped" (Q.summary q))

(* --- Corrupt: identity at rate 0, reproducible otherwise --- *)

let test_corrupt_zero_rate_is_identity () =
  let trace = Lazy.force base_trace in
  List.iter (fun kind ->
      let spec = { C.kinds = [ kind ]; rate = 0.0; eps = 50; seed = 9 } in
      Alcotest.(check string)
        ("rate 0 identity: " ^ C.kind_to_string kind)
        (Io.to_string trace)
        (C.to_string (C.apply spec trace)))
    C.all_kinds;
  (* ... and Recover-mode ingestion of the identity is bit-identical to
     Strict, with an empty quarantine and identical learning. *)
  let text = C.to_string (C.apply { C.default with rate = 0.0 } trace) in
  match (Io.of_string ~mode:`Recover text, Io.of_string text) with
  | Ok (tr, qr), Ok (ts, _) ->
    Alcotest.(check bool) "quarantine empty" true (Q.is_empty qr);
    Alcotest.(check string) "same trace" (Io.to_string ts) (Io.to_string tr);
    let a = H.run ~bound:8 tr and b = H.run ~bound:8 ts in
    Alcotest.(check bool) "same stats" true (a.H.stats = b.H.stats);
    Alcotest.(check (list Test_support.depfun)) "same hypotheses"
      b.H.hypotheses a.H.hypotheses
  | _ -> Alcotest.fail "loading the identity corruption failed"

let test_corrupt_reproducible () =
  let trace = Lazy.force base_trace in
  let spec = { C.default with rate = 0.2; seed = 77 } in
  Alcotest.(check string) "same seed, same damage"
    (C.to_string (C.apply spec trace))
    (C.to_string (C.apply spec trace))

let prop_recover_survives_each_kind =
  Test_support.qcheck_case ~count:60 "recover load survives any single kind"
    QCheck.(triple (oneofl C.all_kinds) (int_bound 9) (int_bound 1000))
    (fun (kind, r10, seed) ->
       let trace = Lazy.force base_trace in
       let rate = 0.03 +. (0.27 *. float_of_int r10 /. 9.0) in
       let spec = { C.kinds = [ kind ]; rate; eps = 40; seed } in
       let text = C.to_string (C.apply spec trace) in
       match Io.of_string ~mode:`Recover ~eps:80 text with
       | Ok _ -> true
       | Error _ -> false)

let prop_recover_survives_all_kinds =
  Test_support.qcheck_case ~count:40 "recover load survives combined kinds"
    QCheck.(pair (int_bound 9) (int_bound 1000))
    (fun (r10, seed) ->
       let trace = Lazy.force base_trace in
       let rate = 0.03 +. (0.27 *. float_of_int r10 /. 9.0) in
       let spec = { C.default with rate; seed } in
       let text = C.to_string (C.apply spec trace) in
       match Io.of_string ~mode:`Recover ~eps:80 text with
       | Ok (_, q) -> Q.periods_seen q + List.length [] >= 0
       | Error _ -> false)

(* --- segment_recover --- *)

let test_segment_recover () =
  let events =
    [ (* period 0 (absolute times 0..99): clean *)
      ev 10 (E.Task_start 0); ev 20 (E.Task_end 0);
      (* period 1: dangling rise, repairable *)
      ev 110 (E.Task_start 0); ev 120 (E.Task_end 0); ev 125 (E.Msg_rise 5) ]
  in
  let t, q = T.segment_recover ~task_set:ts2 ~period_len:100 events in
  Alcotest.(check int) "both periods kept" 2 (T.period_count t);
  Alcotest.(check int) "one clean" 1 q.Q.kept;
  Alcotest.(check int) "one repaired" 1 (List.length q.Q.repaired);
  Alcotest.(check int) "repaired period reported by original index" 1
    (List.hd q.Q.repaired).Q.period_index;
  Alcotest.(check int) "nothing dropped" 0 (List.length q.Q.dropped)

(* --- Checkpoint / resume --- *)

let policies = [ H.Lightest_pair; H.Heaviest_pair; H.First_last ]

let policy_name = function
  | H.Lightest_pair -> "lightest" | H.Heaviest_pair -> "heaviest"
  | H.First_last -> "first-last"

let outcomes_equal ~ctx (a : H.outcome) (b : H.outcome) =
  Alcotest.(check bool) (ctx ^ ": stats equal") true (a.H.stats = b.H.stats);
  Alcotest.(check (list Test_support.depfun)) (ctx ^ ": hypotheses equal")
    b.H.hypotheses a.H.hypotheses

let test_checkpoint_roundtrip () =
  let trace = Lazy.force base_trace in
  let periods = T.periods trace in
  let ntasks = T.task_count trace in
  let k = List.length periods / 2 in
  List.iter (fun policy ->
      let ctx = policy_name policy in
      let st = H.init ~policy ~bound:4 ~ntasks () in
      List.iteri (fun i p -> if i < k then H.feed st p) periods;
      H.set_provenance st ~dropped:2 ~repaired:3;
      let data = H.checkpoint ~tag:"trace-digest" st in
      match H.resume data with
      | Error m -> Alcotest.failf "%s: resume failed: %s" ctx m
      | Ok (st', tag) ->
        Alcotest.(check string) (ctx ^ ": tag round trip") "trace-digest" tag;
        Alcotest.(check bool) (ctx ^ ": provenance survives") true
          (H.provenance st'
           = { H.periods_dropped = 2; periods_repaired = 3 });
        outcomes_equal ~ctx:(ctx ^ " at the cut") (H.snapshot st)
          (H.snapshot st');
        Alcotest.(check bool) (ctx ^ ": counters survive the cut") true
          (H.counters st = H.counters st');
        (* The killed-and-resumed learner must match the uninterrupted
           one for the rest of the trace. *)
        List.iteri (fun i p ->
            if i >= k then begin H.feed st p; H.feed st' p end)
          periods;
        outcomes_equal ~ctx:(ctx ^ " after the rest") (H.snapshot st)
          (H.snapshot st');
        Alcotest.(check bool) (ctx ^ ": counters equal after the rest") true
          (H.counters st = H.counters st'))
    policies

let test_checkpoint_matches_uninterrupted_run () =
  let trace = Lazy.force base_trace in
  let periods = T.periods trace in
  let ntasks = T.task_count trace in
  let st = H.init ~bound:4 ~ntasks () in
  (* Kill and resume after every single period. *)
  let st =
    List.fold_left (fun st p ->
        H.feed st p;
        match H.resume (H.checkpoint st) with
        | Ok (st', _) -> st'
        | Error m -> Alcotest.failf "resume failed: %s" m)
      st periods
  in
  outcomes_equal ~ctx:"period-by-period kill-resume"
    (H.run ~bound:4 trace) (H.snapshot st);
  (* The observability counters also survive every cut: totals equal an
     uninterrupted state's, not just the reference stats triple. *)
  let whole = H.init ~bound:4 ~ntasks () in
  List.iter (H.feed whole) periods;
  Alcotest.(check bool) "counters equal an uninterrupted state's" true
    (H.counters whole = H.counters st)

let test_resume_rejects_garbage () =
  let bad data =
    match H.resume data with
    | Ok _ -> Alcotest.fail "resume accepted malformed input"
    | Error _ -> ()
  in
  bad "";
  bad "garbage";
  bad (String.make 64 '\000');
  (* a valid checkpoint, truncated *)
  let st = H.init ~bound:2 ~ntasks:3 () in
  let data = H.checkpoint st in
  bad (String.sub data 0 (String.length data - 1));
  bad (data ^ "\000")

(* --- Vcd import/export --- *)

let test_vcd_roundtrip () =
  let t = Test_support.fig2_trace () in
  let dump = V.to_string ~period_len:1000 t in
  match V.of_string ~period_len:1000 dump with
  | Error (e : V.parse_error) ->
    Alcotest.failf "import failed: line %d: %s" e.line e.message
  | Ok (t', len) ->
    Alcotest.(check int) "period length" 1000 len;
    Alcotest.(check string) "round trip" (Io.to_string t) (Io.to_string t')

let test_vcd_roundtrip_simulated () =
  let t = Lazy.force base_trace in
  let dump = V.to_string ~period_len:2000 t in
  match V.of_string ~period_len:2000 dump with
  | Error (e : V.parse_error) ->
    Alcotest.failf "import failed: line %d: %s" e.line e.message
  | Ok (t', _) ->
    Alcotest.(check string) "round trip" (Io.to_string t) (Io.to_string t')

let test_vcd_errors_are_positioned () =
  let line_of s =
    match V.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error e -> e.V.line
  in
  Alcotest.(check int) "junk first line" 1 (line_of "junk\n");
  Alcotest.(check int) "unknown code" 3
    (line_of "$var wire 1 ! task_a $end\n#5\n1?\n");
  Alcotest.(check int) "unsupported width" 1
    (line_of "$var wire 8 ! task_a $end\n");
  Alcotest.(check int) "bad signal name" 1
    (line_of "$var wire 1 ! voltage $end\n");
  Alcotest.(check int) "decreasing time" 4
    (line_of "$var wire 1 ! task_a $end\n#5\n1!\n#3\n0!\n")

let test_vcd_exporter_total () =
  (* Every bus id present in the events gets a declared signal; the
     seed's lookup could raise [Invalid_argument] here. *)
  let dump = V.to_string (Test_support.fig2_trace ()) in
  Alcotest.(check bool) "task signals declared" true
    (contains ~needle:"task_" dump);
  Alcotest.(check bool) "bus signals declared" true
    (contains ~needle:"can_0x" dump)

(* --- Atomic writes --- *)

let test_atomic_write () =
  let path = Filename.temp_file "rtgen" ".atomic" in
  Rt_util.Atomic_file.write path "hello";
  Alcotest.(check bool) "no tmp residue" false
    (Sys.file_exists (path ^ ".tmp"));
  let read p =
    let ic = open_in p in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check string) "content written" "hello" (read path);
  Rt_util.Atomic_file.write path "world";
  Alcotest.(check string) "overwrite is atomic too" "world" (read path);
  Sys.remove path

(* --- Simulator fault model --- *)

let test_sim_faults_deterministic_and_valid () =
  let d = Test_support.pipeline_design 4 in
  let cfg =
    { Rt_sim.Simulator.default_config with
      periods = 6; seed = 11; jitter_spike_rate = 0.3; glitch_rate = 0.9 }
  in
  let t1 = Rt_sim.Simulator.run d cfg in
  let t2 = Rt_sim.Simulator.run d cfg in
  let s1 = Io.to_string t1 in
  Alcotest.(check string) "same seed, same trace" s1 (Io.to_string t2);
  Alcotest.(check bool) "glitches logged under high ids" true
    (contains ~needle:"0x7c" s1);
  (* Glitched traces are noisy but structurally valid. *)
  match Io.of_string s1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "glitched trace invalid: %s" e.message

let () =
  Alcotest.run "robustness"
    [
      ( "repair",
        [
          Alcotest.test_case "dangling rise closed" `Quick
            test_repair_dangling_rise;
          Alcotest.test_case "orphan fall dropped" `Quick
            test_repair_orphan_fall;
          Alcotest.test_case "inverted edges swapped within eps" `Quick
            test_repair_swap_within_eps;
          Alcotest.test_case "duplicate start dropped" `Quick
            test_repair_duplicate_start;
          Alcotest.test_case "inverted start/end swapped" `Quick
            test_repair_task_inversion;
        ] );
      ( "ingestion",
        [
          Alcotest.test_case "strict rejects with line number" `Quick
            test_io_strict_still_rejects;
          Alcotest.test_case "recover accounts for damage" `Quick
            test_io_recover_accounts;
          Alcotest.test_case "missing tasks fatal in both modes" `Quick
            test_io_missing_tasks_fatal_in_both_modes;
          Alcotest.test_case "quarantine confidence" `Quick
            test_quarantine_confidence;
          Alcotest.test_case "segment_recover" `Quick test_segment_recover;
        ] );
      ( "corrupt",
        [
          Alcotest.test_case "rate 0 is the identity" `Quick
            test_corrupt_zero_rate_is_identity;
          Alcotest.test_case "same seed same damage" `Quick
            test_corrupt_reproducible;
          prop_recover_survives_each_kind;
          prop_recover_survives_all_kinds;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round trip across policies" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "kill-resume equals uninterrupted" `Quick
            test_checkpoint_matches_uninterrupted_run;
          Alcotest.test_case "malformed input rejected" `Quick
            test_resume_rejects_garbage;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "round trip (worked example)" `Quick
            test_vcd_roundtrip;
          Alcotest.test_case "round trip (simulated)" `Quick
            test_vcd_roundtrip_simulated;
          Alcotest.test_case "structured errors" `Quick
            test_vcd_errors_are_positioned;
          Alcotest.test_case "exporter is total" `Quick
            test_vcd_exporter_total;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "atomic file write" `Quick test_atomic_write;
          Alcotest.test_case "simulator faults deterministic" `Quick
            test_sim_faults_deterministic_and_valid;
        ] );
    ]
