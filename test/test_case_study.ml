(* End-to-end reproduction of the paper's §3.4 case-study findings on the
   synthetic GM-like controller (see DESIGN.md for the substitution
   rationale). These tests run the bound-1 learner on the 27-period
   reference trace, like the paper's dependency-graph extraction. *)

module Gm = Rt_case.Gm_model
module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun
module D = Rt_task.Design

let lub =
  lazy
    (let trace = Gm.trace () in
     match (Rt_learn.Heuristic.run ~bound:1 trace).hypotheses with
     | [ d ] -> d
     | _ -> Alcotest.fail "reference trace inconsistent")

let t = Gm.task

let test_scale_matches_paper () =
  let trace = Gm.trace () in
  Alcotest.(check int) "18 tasks" 18 (Rt_trace.Trace.task_count trace);
  Alcotest.(check int) "27 periods" 27 (Rt_trace.Trace.period_count trace);
  let msgs = Rt_trace.Trace.total_messages trace in
  (* The paper logs 330 messages; the synthetic controller emits 12 per
     period = 324. Same scale. *)
  Alcotest.(check bool) "around 330 messages" true (msgs >= 300 && msgs <= 360)

let test_design_valid_and_schedulable () =
  let d = Gm.design () in
  Alcotest.(check int) "18 tasks" 18 (D.size d);
  (* Simulation across many seeds never overruns the period. *)
  for seed = 1 to 10 do
    ignore (Rt_sim.Simulator.run d { Gm.reference_config with periods = 5; seed })
  done

let test_disjunction_nodes () =
  let lub = Lazy.force lub in
  let disj = Rt_analysis.Classify.disjunction_nodes lub in
  Alcotest.(check bool) "A is disjunction" true (List.mem (t "A") disj);
  Alcotest.(check bool) "B is disjunction" true (List.mem (t "B") disj)

let test_conjunction_nodes () =
  let lub = Lazy.force lub in
  let conj = Rt_analysis.Classify.conjunction_nodes lub in
  List.iter (fun name ->
      Alcotest.(check bool) (name ^ " is conjunction") true
        (List.mem (t name) conj))
    [ "H"; "P"; "Q" ]

let test_a_determines_l () =
  (* "no matter which mode task A chooses, task L must execute" *)
  let lub = Lazy.force lub in
  Alcotest.(check bool) "d(A,L) = fwd" true
    (Dv.equal (Df.get lub (t "A") (t "L")) Dv.Fwd)

let test_b_determines_m () =
  let lub = Lazy.force lub in
  Alcotest.(check bool) "d(B,M) = fwd" true
    (Dv.equal (Df.get lub (t "B") (t "M")) Dv.Fwd)

let test_a_choice_is_conditional () =
  let lub = Lazy.force lub in
  Alcotest.(check bool) "d(A,C) = fwd?" true
    (Dv.equal (Df.get lub (t "A") (t "C")) Dv.Fwd_maybe);
  Alcotest.(check bool) "d(A,D) = fwd?" true
    (Dv.equal (Df.get lub (t "A") (t "D")) Dv.Fwd_maybe)

let test_implicit_q_o_dependency () =
  (* The paper's headline: a data dependency between Q and O that "comes
     from the interactions between the functional tasks and the
     infrastructure tasks" — not a design edge. *)
  let lub = Lazy.force lub in
  Alcotest.(check bool) "d(Q,O) = bwd" true
    (Dv.equal (Df.get lub (t "Q") (t "O")) Dv.Bwd);
  let d = Gm.design () in
  Alcotest.(check bool) "no design edge O->Q" true
    (not (List.exists (fun (e : D.edge) -> e.dst = t "Q")
            (D.outgoing d (t "O"))))

let test_state_space_reduction () =
  let lub = Lazy.force lub in
  let reduction = Rt_analysis.Reachability.reduction lub in
  Alcotest.(check bool) "reduction over 100x" true (reduction > 100.0)

let test_latency_improvement_on_critical_path () =
  (* "one path that was examined in this case study was the critical path
     including task Q ... excluding the possible preemption from higher
     priority task O during the execution of task Q". *)
  let lub = Lazy.force lub in
  let d = Gm.design () in
  let path = Rt_analysis.Latency.critical_path d in
  Alcotest.(check bool) "critical path reaches Q" true
    (List.mem (t "Q") path);
  let pess, inf, gain = Rt_analysis.Latency.improvement d ~dep:lub ~path in
  Alcotest.(check bool) "informed strictly better" true (inf < pess);
  Alcotest.(check bool) "gain sensible" true (gain > 1.0 && gain < 100.0);
  (* The informed response time of Q specifically must have dropped by at
     least O's WCET. *)
  let rq_pess = Rt_analysis.Latency.response_time d (t "Q") in
  let rq_inf = Rt_analysis.Latency.response_time ~dep:lub d (t "Q") in
  Alcotest.(check bool) "O excluded from Q's interference" true
    (rq_pess - rq_inf >= d.tasks.(t "O").wcet)

let test_learner_sound_on_case_study () =
  (* Theorem 2 at case-study scale, for a couple of bounds. *)
  let trace = Gm.trace () in
  List.iter (fun bound ->
      let o = Rt_learn.Heuristic.run ~bound trace in
      Alcotest.(check bool) "non-empty" true (o.hypotheses <> []);
      List.iter (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "bound %d matches" bound)
            true
            (Rt_learn.Matching.matches_trace d trace))
        o.hypotheses)
    [ 1; 4 ]

let test_miner_vs_learner_on_case_study () =
  let trace = Gm.trace () in
  let truth = Option.get (D.ground_truth (Gm.design ())) in
  let lub = Lazy.force lub in
  let mined = Rt_mining.Order_miner.infer trace in
  let m_learner = Rt_mining.Order_miner.score ~predicted:lub ~truth in
  let m_mined = Rt_mining.Order_miner.score ~predicted:mined ~truth in
  (* The learner recovers every definite design dependency. *)
  Alcotest.(check (float 0.01)) "learner definite recall" 1.0
    m_learner.definite_recall;
  (* Both are reported; the bench prints the comparison table. *)
  Alcotest.(check bool) "miner metrics defined" true
    (m_mined.definite_recall >= 0.0 && m_mined.definite_precision >= 0.0)

let test_reference_trace_deterministic () =
  let t1 = Rt_trace.Trace_io.to_string (Gm.trace ()) in
  let t2 = Rt_trace.Trace_io.to_string (Gm.trace ()) in
  Alcotest.(check bool) "reproducible reference trace" true (t1 = t2)

let test_section_3_4_as_queries () =
  (* All §3.4 findings expressed in the property language in one shot —
     the form a verification engineer would actually write them in. *)
  let model = Lazy.force lub in
  let trace = Gm.trace () in
  let q =
    Rt_analysis.Query.parse_exn
      "d(A,L) = -> & d(B,M) = -> & d(Q,O) = <- & disjunction(A) & \
       disjunction(B) & conjunction(H) & conjunction(P) & conjunction(Q) & \
       exclusive(C,D) & exclusive(E,F) & together(A,L)"
  in
  match Rt_analysis.Query.holds ~model ~names:Gm.names ~trace q with
  | Ok b -> Alcotest.(check bool) "all paper properties hold" true b
  | Error m -> Alcotest.fail m

let test_modes_are_exclusive () =
  (* C vs D and E vs F are Choose_one alternatives: never co-executed. *)
  let trace = Gm.trace () in
  let excl = Rt_analysis.Modes.exclusive_pairs trace in
  let mem a b = List.mem (min a b, max a b) excl in
  Alcotest.(check bool) "C/D exclusive" true (mem (t "C") (t "D"));
  Alcotest.(check bool) "E/F exclusive" true (mem (t "E") (t "F"));
  Alcotest.(check bool) "L/M not exclusive" false (mem (t "L") (t "M"))

(* --- The ACC (adaptive cruise control) case study --- *)

module Acc = Rt_case.Acc_model

let acc_model =
  lazy
    (let trace = Acc.trace () in
     match (Rt_learn.Heuristic.run ~bound:2 trace).hypotheses with
     | [] -> Alcotest.fail "ACC trace inconsistent"
     | hs -> Df.lub hs)

let test_acc_shape () =
  let d = Acc.design () in
  Alcotest.(check int) "12 tasks" 12 (D.size d);
  Alcotest.(check int) "5 local edges" 5
    (Array.length d.edges - List.length (D.bus_edges d));
  Alcotest.(check bool) "schedulable" true (Rt_analysis.Latency.schedulable d);
  let trace = Acc.trace () in
  (* 6 bus frames per period: 2 sensor streams, 1 mode command, 3
     actuation commands. *)
  Alcotest.(check int) "messages" (6 * 40) (Rt_trace.Trace.total_messages trace)

let test_acc_properties () =
  let model = Lazy.force acc_model in
  let trace = Acc.trace () in
  let q =
    Rt_analysis.Query.parse_exn
      "disjunction(AccCtl) & exclusive(Follow, Cruise) & \
       d(AccCtl, Arbiter) = -> & d(Arbiter, Brake) = -> & \
       depends(Fusion, RadarProc) & depends(Fusion, CamProc) & \
       depends(Brake, Fusion)"
  in
  match Rt_analysis.Query.holds ~model ~names:Acc.names ~trace q with
  | Ok b -> Alcotest.(check bool) "ACC checklist" true b
  | Error m -> Alcotest.fail m

let test_acc_local_hop_invisible () =
  let model = Lazy.force acc_model in
  Alcotest.(check bool) "learner blind to local hop" false
    (Rt_lattice.Depval.is_definite
       (Df.get model (Acc.task "RadarAcq") (Acc.task "RadarProc")));
  let mined = Rt_mining.Order_miner.infer (Acc.trace ()) in
  Alcotest.(check bool) "baseline sees it" true
    (Rt_lattice.Depval.is_definite
       (Df.get mined (Acc.task "RadarAcq") (Acc.task "RadarProc")))

let test_acc_brake_deadline () =
  let d = Acc.design () in
  let model = Lazy.force acc_model in
  let path = Acc.brake_path () in
  let pess, inf, _ = Rt_analysis.Latency.improvement d ~dep:model ~path in
  Alcotest.(check bool) "informed tighter" true (inf < pess);
  Alcotest.(check bool) "deadline met" true (inf <= Acc.brake_deadline_us)

(* --- Anonymization --- *)

let test_anonymize_preserves_learning () =
  let trace = Acc.trace ~periods:12 () in
  let anon, mapping = Rt_trace.Anonymize.anonymize trace in
  Alcotest.(check int) "same periods" (Rt_trace.Trace.period_count trace)
    (Rt_trace.Trace.period_count anon);
  Alcotest.(check int) "same messages" (Rt_trace.Trace.total_messages trace)
    (Rt_trace.Trace.total_messages anon);
  Alcotest.(check (option string)) "mapping works" (Some "A")
    (Rt_trace.Anonymize.apply_names mapping "RadarAcq");
  let learn t =
    match (Rt_learn.Heuristic.run ~bound:1 t).hypotheses with
    | [ d ] -> d
    | _ -> Alcotest.fail "learning failed"
  in
  Alcotest.check Test_support.depfun "identical model" (learn trace) (learn anon)

let test_anonymize_hides_names () =
  let trace = Acc.trace ~periods:3 () in
  let anon, _ = Rt_trace.Anonymize.anonymize trace in
  let text = Rt_trace.Trace_io.to_string anon in
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Array.iter (fun name ->
      Alcotest.(check bool) ("hides " ^ name) false (contains name text))
    Acc.names

(* --- Automatic bound selection --- *)

let test_auto_bound_gm () =
  let trace = Gm.trace ~periods:10 () in
  let report, bound = Rt_engine.Learner.auto trace in
  Alcotest.(check bool) "bound is a power of two" true
    (List.mem bound [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]);
  Alcotest.(check bool) "consistent" true report.consistent;
  Alcotest.(check bool) "verified" true (Rt_engine.Learner.verify report trace)

let test_auto_bound_validates () =
  Alcotest.check_raises "initial 0"
    (Invalid_argument "Learner.auto: initial bound must be >= 1")
    (fun () -> ignore (Rt_engine.Learner.auto ~initial:0 (Gm.trace ~periods:2 ())))

let () =
  Alcotest.run "case_study"
    [
      ( "gm_model",
        [
          Alcotest.test_case "scale matches paper" `Quick
            test_scale_matches_paper;
          Alcotest.test_case "valid and schedulable" `Quick
            test_design_valid_and_schedulable;
          Alcotest.test_case "reference trace deterministic" `Quick
            test_reference_trace_deterministic;
        ] );
      ( "section_3_4",
        [
          Alcotest.test_case "A,B disjunction" `Quick test_disjunction_nodes;
          Alcotest.test_case "H,P,Q conjunction" `Quick test_conjunction_nodes;
          Alcotest.test_case "d(A,L) = fwd" `Quick test_a_determines_l;
          Alcotest.test_case "d(B,M) = fwd" `Quick test_b_determines_m;
          Alcotest.test_case "A's choice conditional" `Quick
            test_a_choice_is_conditional;
          Alcotest.test_case "implicit Q-O dependency" `Quick
            test_implicit_q_o_dependency;
          Alcotest.test_case "state space reduction" `Quick
            test_state_space_reduction;
          Alcotest.test_case "latency improvement" `Quick
            test_latency_improvement_on_critical_path;
          Alcotest.test_case "learner sound at scale" `Quick
            test_learner_sound_on_case_study;
          Alcotest.test_case "baseline comparison" `Quick
            test_miner_vs_learner_on_case_study;
          Alcotest.test_case "mode exclusivity" `Quick test_modes_are_exclusive;
          Alcotest.test_case "properties as queries" `Quick
            test_section_3_4_as_queries;
        ] );
      ( "acc",
        [
          Alcotest.test_case "shape and schedulability" `Quick test_acc_shape;
          Alcotest.test_case "safety checklist" `Quick test_acc_properties;
          Alcotest.test_case "local hop visibility" `Quick
            test_acc_local_hop_invisible;
          Alcotest.test_case "brake deadline" `Quick test_acc_brake_deadline;
        ] );
      ( "tooling",
        [
          Alcotest.test_case "anonymize preserves learning" `Quick
            test_anonymize_preserves_learning;
          Alcotest.test_case "anonymize hides names" `Quick
            test_anonymize_hides_names;
          Alcotest.test_case "auto bound" `Quick test_auto_bound_gm;
          Alcotest.test_case "auto bound validation" `Quick
            test_auto_bound_validates;
        ] );
    ]
