(* The packed-event encoding and the mmap reader built on it.

   Two contracts: [decode ∘ encode = id] over the whole encodable event
   space (including events recovered from quarantined frames), and
   byte-for-byte parity of {!Rt_trace.Mmap_io} with the boxed
   {!Rt_trace.Trace_io} strict loader — same accepted traces, same
   error messages, same line numbers. *)

module E = Rt_trace.Event
module A = Rt_trace.Event_arena
module Mmap = Rt_trace.Mmap_io
module Tio = Rt_trace.Trace_io
module Trace = Rt_trace.Trace

let event : E.t Alcotest.testable =
  Alcotest.testable
    (fun ppf e -> Format.fprintf ppf "{time=%d}" e.E.time)
    (fun a b -> E.compare a b = 0 && a.E.kind = b.E.kind)

(* --- encode / decode -------------------------------------------------- *)

let arb_event =
  let open QCheck in
  let kind =
    map
      (fun (tag, id) ->
         match tag with
         | 0 -> E.Task_start id
         | 1 -> E.Task_end id
         | 2 -> E.Msg_rise id
         | _ -> E.Msg_fall id)
      (pair (int_range 0 3) (int_range 0 A.max_id))
  in
  map
    (fun (time, kind) -> { E.time; kind })
    (pair (int_range 0 A.max_time) kind)

let qc_roundtrip =
  Test_support.qcheck_case "decode (encode e) = e" ~count:1000 arb_event
    (fun e ->
       let e' = A.decode (A.encode e) in
       e'.E.time = e.E.time && e'.E.kind = e.E.kind)

let qc_stream_roundtrip =
  Test_support.qcheck_case "arena preserves arbitrary event streams"
    ~count:200
    QCheck.(small_list arb_event)
    (fun events ->
       let a = A.of_events events in
       A.length a = List.length events
       && A.to_list a = events
       && (let src = A.source a in
           let rec drain acc =
             match Rt_trace.Event_source.next src with
             | Some e -> drain (e :: acc)
             | None -> List.rev acc
           in
           drain [] = events))

let test_limits () =
  let ok time id = ignore (A.encode { E.time; kind = E.Msg_rise id }) in
  ok A.max_time A.max_id;
  ok 0 0;
  let bad time kind =
    match A.encode { E.time; kind } with
    | _ -> Alcotest.fail "out-of-range event encoded"
    | exception Invalid_argument _ -> ()
  in
  bad (A.max_time + 1) (E.Msg_rise 0);
  bad (-1) (E.Msg_rise 0);
  bad 0 (E.Msg_rise (A.max_id + 1));
  bad 0 (E.Task_start (-1))

let test_sub_ranges () =
  let events =
    List.init 10 (fun i -> { E.time = i * 10; kind = E.Task_start (i mod 3) })
  in
  let a = A.of_events events in
  Alcotest.(check (list event)) "middle slice"
    (List.filteri (fun i _ -> i >= 3 && i < 7) events)
    (A.to_list ~lo:3 ~hi:7 a);
  Alcotest.(check (list event)) "empty slice" [] (A.to_list ~lo:4 ~hi:4 a);
  Alcotest.check_raises "bad range"
    (Invalid_argument "Event_arena.to_list: range out of bounds") (fun () ->
        ignore (A.to_list ~lo:0 ~hi:11 a))

(* Recover-mode quarantined frames: a period Repair had to touch still
   yields events the arena must carry verbatim. *)
let test_quarantined_roundtrip () =
  let text =
    "tasks t1 t2\n\
     period 0\n\
     100 start t1\n\
     200 end t1\n\
     210 rise 0x10\n\
     260 start t2\n\
     300 end t2\n\
     period 1\n\
     100 start t1\n\
     150 end t1\n"
  in
  (* Period 0's frame never falls: recover mode repairs or drops it. *)
  match Tio.of_string ~mode:`Recover text with
  | Error e -> Alcotest.failf "recover load failed: %s" e.message
  | Ok (trace, q) ->
    Alcotest.(check bool) "something was quarantined" true
      (q.repaired <> [] || q.dropped <> []);
    let events =
      List.concat_map (fun (p : Rt_trace.Period.t) -> p.events)
        (Trace.periods trace)
    in
    Alcotest.(check (list event)) "quarantined-frame events roundtrip"
      events
      (A.to_list (A.of_events events))

(* --- mmap parity with the boxed loader -------------------------------- *)

let with_file text f =
  let path = Filename.temp_file "rtgen_arena" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       let oc = open_out_bin path in
       output_string oc text;
       close_out oc;
       f path)

let check_parity ?(name = "parity") text =
  with_file text (fun path ->
      match (Tio.load path, Mmap.load path) with
      | Ok (t1, q1), Ok (mm, q2) ->
        Alcotest.(check string)
          (name ^ ": same trace")
          (Tio.to_string t1)
          (Tio.to_string mm.Mmap.trace);
        Alcotest.(check int) (name ^ ": same kept count") q1.kept q2.kept;
        (* The arena holds exactly the trace's events and the marks
           delimit each period's slice. The arena keeps file order while
           [Period.make] sorts, so compare as sorted sequences. *)
        List.iteri
          (fun i (p : Rt_trace.Period.t) ->
             let idx, lo, hi = mm.Mmap.marks.(i) in
             Alcotest.(check int) (name ^ ": mark index") p.index idx;
             Alcotest.(check (list event))
               (name ^ ": mark slice = period events")
               (List.sort E.compare p.events)
               (List.sort E.compare (A.to_list ~lo ~hi mm.Mmap.arena)))
          (Trace.periods mm.Mmap.trace)
      | Error e1, Error e2 ->
        Alcotest.(check (pair int string))
          (name ^ ": same error")
          (e1.line, e1.message) (e2.line, e2.message)
      | Ok _, Error e ->
        Alcotest.failf "%s: mmap rejects (line %d: %s), boxed accepts" name
          e.line e.message
      | Error e, Ok _ ->
        Alcotest.failf "%s: mmap accepts, boxed rejects (line %d: %s)" name
          e.line e.message)

let test_parity_valid () =
  check_parity ~name:"paper example" Test_support.fig2_trace_text;
  let sim =
    Test_support.simulate ~periods:10 ~seed:6 (Test_support.pipeline_design 4)
  in
  check_parity ~name:"simulated" (Tio.to_string sim);
  check_parity ~name:"no trailing newline" "tasks a b\nperiod 0";
  check_parity ~name:"hex and underscores"
    "tasks a b\n\
     period 0\n\
     0x64 start a\n\
     1_50 end a\n\
     160 rise 0x1_0\n\
     +200 fall 0x10\n\
     210 start b\n\
     250 end b\n";
  check_parity ~name:"crlf and comments"
    "# header\r\ntasks a\r\n\r\nperiod 0\r\n100 start a\r\n150 end a\r\n";
  check_parity ~name:"indented lines"
    "  tasks a  \nperiod 0\n  100 start a\n  150   end   a  \n"

let malformed =
  [
    ("empty file", "");
    ("blank only", "\n\n# c\n");
    ("tasks without names", "tasks\n");
    ("duplicate tasks", "tasks a b\ntasks c\n");
    ("duplicate task name", "tasks a a\n");
    ("period before tasks", "period 0\n100 rise 0x1\n200 fall 0x1\n");
    ("bad period index", "tasks a\nperiod x\n");
    ("event before period", "tasks a\n100 start a\n");
    ("bad timestamp", "tasks a\nperiod 0\nfoo start a\n");
    ("three-token period", "tasks a\nperiod 1 2\n");
    ("negative timestamp", "tasks a\nperiod 0\n-5 start a\n");
    ("unknown verb", "tasks a\nperiod 0\n100 boing a\n");
    ("unknown task", "tasks a\nperiod 0\n100 start b\n");
    ("bad message id", "tasks a\nperiod 0\n100 rise zz\n");
    ("unparseable", "tasks a\nperiod 0\nfoo bar\n");
    ("tab-joined tokens", "tasks a\nperiod 0\n100\tstart\ta\n");
    ("invalid period", "tasks a\nperiod 0\n200 end a\n100 start a\n");
    ("unpaired rise", "tasks a\nperiod 0\n100 start a\n150 rise 0x1\n200 end a\n");
    ("huge timestamp", "tasks a\nperiod 0\n99999999999999999999 start a\n");
  ]

let test_parity_malformed () =
  List.iter (fun (name, text) -> check_parity ~name text) malformed

let qc_parity_random =
  Test_support.qcheck_case "mmap = boxed loader on simulated traces"
    ~count:25
    QCheck.(pair (int_range 0 11) (int_range 1 10))
    (fun (seed, periods) ->
       let text =
         Tio.to_string
           (Test_support.simulate ~periods ~seed (Test_support.small_design seed))
       in
       with_file text (fun path ->
           match (Tio.load path, Mmap.load path) with
           | Ok (t1, _), Ok (mm, _) ->
             Tio.to_string t1 = Tio.to_string mm.Mmap.trace
           | _ -> false))

(* Timestamps beyond the 41-bit packed range: the boxed loader accepts,
   mmap refuses with its documented range error — the CLI's cue to fall
   back. *)
let test_range_fallback () =
  let text =
    Printf.sprintf "tasks a\nperiod 0\n%d start a\n%d end a\n"
      (A.max_time + 1)
      (A.max_time + 2)
  in
  with_file text (fun path ->
      (match Tio.load path with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "boxed loader rejected: %s" e.message);
      match Mmap.load path with
      | Ok _ -> Alcotest.fail "mmap stored an unencodable timestamp"
      | Error e ->
        Alcotest.(check bool) "flagged as range error" true
          (Mmap.is_range_error e);
        Alcotest.(check int) "at the offending line" 3 e.line)

(* A zero-byte file is the mmap edge case (length-0 mappings are
   implementation-defined): it must be a clean parse error, not a
   crash, and agree with the boxed loader. *)
let test_empty_file () =
  with_file "" (fun path ->
      match (Tio.load path, Mmap.load path) with
      | Error e1, Error e2 ->
        Alcotest.(check (pair int string))
          "same refusal"
          (e1.line, e1.message) (e2.line, e2.message)
      | Ok _, _ -> Alcotest.fail "boxed loader accepted an empty file"
      | _, Ok _ -> Alcotest.fail "mmap accepted an empty file")

(* Files cut mid-record — a writer died between bytes. Every prefix of
   a valid trace must load in parity with the boxed reader: either
   both accept (the cut fell on a record boundary) or both refuse with
   the same line and message. Exhaustive over all cut points. *)
let test_truncated_mid_record () =
  let text =
    "tasks a b\n\
     period 0\n\
     100 start a\n\
     120 rise 0x10\n\
     140 fall 0x10\n\
     150 end a\n\
     160 start b\n\
     200 end b\n"
  in
  for cut = 0 to String.length text - 1 do
    check_parity
      ~name:(Printf.sprintf "truncated at byte %d" cut)
      (String.sub text 0 cut)
  done

let () =
  Alcotest.run "arena"
    [
      ( "packed encoding",
        [
          qc_roundtrip;
          qc_stream_roundtrip;
          Alcotest.test_case "range limits" `Quick test_limits;
          Alcotest.test_case "sub-ranges" `Quick test_sub_ranges;
          Alcotest.test_case "quarantined frames roundtrip" `Quick
            test_quarantined_roundtrip;
        ] );
      ( "mmap reader parity",
        [
          Alcotest.test_case "valid traces" `Quick test_parity_valid;
          Alcotest.test_case "malformed traces" `Quick test_parity_malformed;
          qc_parity_random;
          Alcotest.test_case "packed-range fallback" `Quick
            test_range_fallback;
          Alcotest.test_case "empty file" `Quick test_empty_file;
          Alcotest.test_case "truncated mid-record" `Quick
            test_truncated_mid_record;
        ] );
    ]
