(* Property-based tests of the paper's Theorems 2-4 and the Lemma of §4,
   over randomly generated designs and simulated traces.

   Two deliberate deviations from the paper's idealized statements, both
   locked in here and discussed in DESIGN.md:

   - The exact algorithm is worst-case exponential (Theorem 1), so runs
     that blow past a working-set limit are skipped, not failed.
   - The Lemma's equality [d*(bound=1) = ⊔D*] holds on the paper's own
     worked example (see test_paper_example.ml) but not in general under
     assumption-based branching: merging with bound 1 happens before the
     minimality pruning can discard dominated branches. The invariant
     that {e does} hold — and is what "conservative" soundness needs —
     is domination: [⊔D* ⊑ d*(bound=1)], with both sides matching the
     trace. That is what we test. *)

module M = Rt_learn.Matching
open Test_support

let gen_trace_of_seed seed =
  let d = small_design (seed mod 50) in
  simulate ~periods:(3 + (seed mod 5)) ~seed d

let exact_opt trace =
  match Rt_learn.Exact.run ~limit:20_000 trace with
  | o -> Some o
  | exception Rt_learn.Exact.Blowup _ -> None

let arb_seed = QCheck.int_range 0 10_000

(* Theorem 2 (correctness): every hypothesis the exact algorithm returns
   matches every instance. *)
let thm2_exact =
  qcheck_case "thm2: exact results match the trace" ~count:40 arb_seed
    (fun seed ->
       let trace = gen_trace_of_seed seed in
       match exact_opt trace with
       | None -> true
       | Some o -> List.for_all (fun d -> M.matches_trace d trace) o.hypotheses)

(* Theorem 2 for the heuristic. *)
let thm2_heuristic =
  qcheck_case "thm2: heuristic results match the trace" ~count:40
    (QCheck.pair arb_seed (QCheck.int_range 1 8))
    (fun (seed, bound) ->
       let trace = gen_trace_of_seed seed in
       let o = Rt_learn.Heuristic.run ~bound trace in
       List.for_all (fun d -> M.matches_trace d trace) o.hypotheses)

(* Theorem 3 (optimality and completeness): any dependency function that
   matches the trace dominates some returned hypothesis. We sample
   matching functions by generalizing a returned hypothesis with random
   upward moves and keep the ones that still match. *)
let thm3_completeness =
  qcheck_case "thm3: matching functions dominate some answer" ~count:25
    (QCheck.pair arb_seed (QCheck.int_range 0 1000))
    (fun (seed, salt) ->
       let trace = gen_trace_of_seed seed in
       match exact_opt trace with
       | None -> true
       | Some o ->
         (match o.hypotheses with
          | [] -> true
          | base :: _ ->
            let n = Df.size base in
            let rng = Rt_util.Pcg32.of_int (seed + (salt * 7919)) in
            let candidate = Df.copy base in
            for _ = 1 to 1 + Rt_util.Pcg32.int rng 4 do
              let a = Rt_util.Pcg32.int rng n and b = Rt_util.Pcg32.int rng n in
              if a <> b then begin
                let v = Df.get candidate a b in
                match Dv.covers v with
                | [] -> ()
                | cs -> Df.set candidate a b (Rt_util.Pcg32.pick rng cs)
              end
            done;
            (not (M.matches_trace candidate trace))
            || List.exists (fun h -> Df.leq h candidate) o.hypotheses))

(* The top element always dominates every answer. *)
let thm3_top =
  qcheck_case "thm3: top dominates all answers" ~count:40 arb_seed
    (fun seed ->
       let trace = gen_trace_of_seed seed in
       match exact_opt trace with
       | None -> true
       | Some o ->
         let n = Rt_trace.Trace.task_count trace in
         List.for_all (fun h -> Df.leq h (Df.top n)) o.hypotheses)

(* Lemma, conservative direction: the bound-1 answer dominates the LUB of
   the answer set obtained with any bound b (including no bound at all),
   and it still matches the trace. *)
let lemma_bound1_dominates_bounded =
  qcheck_case "lemma: bound-1 dominates lub of bound-b results" ~count:30
    (QCheck.pair arb_seed (QCheck.int_range 2 10))
    (fun (seed, bound) ->
       let trace = gen_trace_of_seed seed in
       let ob = Rt_learn.Heuristic.run ~bound trace in
       let o1 = Rt_learn.Heuristic.run ~bound:1 trace in
       match o1.hypotheses, ob.hypotheses with
       | [ d1 ], (_ :: _ as db) ->
         Df.leq (Df.lub db) d1 && M.matches_trace d1 trace
       | [], [] -> true
       | _ -> false)

let lemma_bound1_dominates_exact =
  qcheck_case "lemma: bound-1 dominates lub of exact results" ~count:30 arb_seed
    (fun seed ->
       let trace = gen_trace_of_seed seed in
       match exact_opt trace with
       | None -> true
       | Some oe ->
         let o1 = Rt_learn.Heuristic.run ~bound:1 trace in
         (match o1.hypotheses, oe.hypotheses with
          | [ d1 ], (_ :: _ as de) -> Df.leq (Df.lub de) d1
          | [], [] -> true
          | _ -> false))

(* Consistency agreement: the heuristic must not report an inconsistent
   trace when the exact algorithm finds an answer. *)
let consistency_agreement =
  qcheck_case "heuristic consistent whenever exact is" ~count:40
    (QCheck.pair arb_seed (QCheck.int_range 1 6))
    (fun (seed, bound) ->
       let trace = gen_trace_of_seed seed in
       match exact_opt trace with
       | None -> true
       | Some oe ->
         let oh = Rt_learn.Heuristic.run ~bound trace in
         oe.hypotheses = [] || oh.hypotheses <> [])

(* Theorem 4 (convergence): if the exact algorithm converges to a unique
   most specific hypothesis, every bounded answer dominates it. *)
let thm4_convergence =
  qcheck_case "thm4: bounded answers dominate a converged result" ~count:30
    (QCheck.pair arb_seed (QCheck.int_range 1 8))
    (fun (seed, bound) ->
       let trace = gen_trace_of_seed seed in
       match exact_opt trace with
       | None -> true
       | Some oe ->
         (match oe.hypotheses with
          | [ unique ] ->
            let oh = Rt_learn.Heuristic.run ~bound trace in
            oh.hypotheses <> []
            && List.for_all (fun d -> Df.leq unique d) oh.hypotheses
          | _ -> true))

(* Monotonicity of evidence: seeing a prefix of the trace yields a
   bound-1 answer below (or equal to) the full-trace answer. *)
let prefix_monotone =
  qcheck_case "prefix learning stays below full-trace answer" ~count:25 arb_seed
    (fun seed ->
       let trace = gen_trace_of_seed seed in
       let periods = Rt_trace.Trace.periods trace in
       match periods with
       | [] | [ _ ] -> true
       | _ ->
         let k = List.length periods / 2 in
         let prefix =
           Rt_trace.Trace.of_periods ~task_set:trace.task_set
             (List.filteri (fun i _ -> i < k) periods)
         in
         let o_pre = Rt_learn.Heuristic.run ~bound:1 prefix in
         let o_full = Rt_learn.Heuristic.run ~bound:1 trace in
         (match o_pre.hypotheses, o_full.hypotheses with
          | [ dp ], [ dfull ] -> Df.leq dp dfull
          | _, [] -> true
          | [], _ -> false
          | _ -> false))

(* Period order must not matter to the exact answer set (Definition 1:
   instance order irrelevant). *)
let order_invariance =
  qcheck_case "period order does not change the exact answer set" ~count:20
    arb_seed
    (fun seed ->
       let trace = gen_trace_of_seed seed in
       let periods = Rt_trace.Trace.periods trace in
       let reversed =
         Rt_trace.Trace.of_periods ~task_set:trace.task_set (List.rev periods)
       in
       match exact_opt trace, exact_opt reversed with
       | Some o1, Some o2 ->
         let norm o = List.sort Df.compare o.Rt_learn.Exact.hypotheses in
         List.length (norm o1) = List.length (norm o2)
         && List.for_all2 Df.equal (norm o1) (norm o2)
       | None, _ | _, None -> true)

(* Duplicated instances add no information: learning on trace @ trace
   returns the same set. *)
let idempotent_instances =
  qcheck_case "duplicated periods change nothing" ~count:20 arb_seed
    (fun seed ->
       let trace = gen_trace_of_seed seed in
       let periods = Rt_trace.Trace.periods trace in
       let doubled =
         Rt_trace.Trace.of_periods ~task_set:trace.task_set (periods @ periods)
       in
       match exact_opt trace, exact_opt doubled with
       | Some o1, Some o2 ->
         let norm o = List.sort Df.compare o.Rt_learn.Exact.hypotheses in
         List.length (norm o1) = List.length (norm o2)
         && List.for_all2 Df.equal (norm o1) (norm o2)
       | None, _ | _, None -> true)

(* Theorem 2 still holds when part of the communication is ECU-internal
   and invisible to the logger: the learner only ever commits to what the
   logged messages support. *)
let thm2_with_local_edges =
  qcheck_case "thm2: sound under hidden local edges" ~count:30
    (QCheck.pair arb_seed (QCheck.int_range 1 6))
    (fun (seed, bound) ->
       let d =
         Rt_task.Generator.generate
           { Rt_task.Generator.default with
             layers = 3; width_min = 1; width_max = 2;
             edge_density = 0.3; skip_density = 0.0; local_fraction = 0.4 }
           ~seed
       in
       let trace =
         Rt_sim.Simulator.run d
           { Rt_sim.Simulator.default_config with periods = 6; seed }
       in
       let o = Rt_learn.Heuristic.run ~bound trace in
       List.for_all (fun dep -> M.matches_trace dep trace) o.hypotheses)

(* Dropped frames leave a sparser but still well-formed log; whatever the
   learner returns must still match it. *)
let thm2_under_frame_loss =
  qcheck_case "thm2: sound under frame loss" ~count:30
    (QCheck.pair arb_seed (QCheck.int_range 1 6))
    (fun (seed, bound) ->
       let d = small_design (seed mod 50) in
       let trace =
         Rt_sim.Simulator.run d
           { Rt_sim.Simulator.default_config with
             periods = 6; seed; drop_rate = 0.3 }
       in
       let o = Rt_learn.Heuristic.run ~bound trace in
       List.for_all (fun dep -> M.matches_trace dep trace) o.hypotheses)

let () =
  Alcotest.run "theorems"
    [
      ( "properties",
        [
          thm2_exact;
          thm2_heuristic;
          thm3_completeness;
          thm3_top;
          lemma_bound1_dominates_bounded;
          lemma_bound1_dominates_exact;
          consistency_agreement;
          thm4_convergence;
          prefix_monotone;
          order_invariance;
          idempotent_instances;
          thm2_with_local_edges;
          thm2_under_frame_loss;
        ] );
    ]
