(* The sharding contract (DESIGN.md §14): for any trace, any bound and
   any shard count, the folded shard model is byte-equal to the
   monolithic bound-1 model — with the seed's Reference implementation
   as the oracle — and a trace is reported inconsistent by the fold iff
   the monolithic run finds it so. The bounded LUB itself is NOT
   partition-independent (minimality pruning under assumption branching
   can discard evidence carriers per shard — the deviation
   test_theorems.ml documents), which is why the fold goes through the
   bound-1 companions; a regression here pins the counterexample that
   proves it. Also pins the partition planner's arithmetic, domination
   of every shard's bounded LUB by the folded model, and the
   violation-exchange law the fold relies on (a naive join without the
   final weakening pass must NOT equal the monolithic model on a
   crafted fixture, or the fold is not being tested at all). *)

module Df = Rt_lattice.Depfun
module H = Rt_learn.Heuristic
module R = Rt_learn.Reference
module S = Rt_shard.Shard
module Engine = Rt_engine.Engine
module Trace = Rt_trace.Trace

let depfun = Test_support.depfun

(* --- plan ------------------------------------------------------------ *)

let test_plan () =
  Alcotest.(check (list (pair int int)))
    "4 shards over 10 periods"
    [ (0, 3); (3, 6); (6, 8); (8, 10) ]
    (Array.to_list (S.plan ~shards:4 ~periods:10));
  Alcotest.(check (list (pair int int)))
    "more shards than periods collapse"
    [ (0, 1); (1, 2) ]
    (Array.to_list (S.plan ~shards:8 ~periods:2));
  Alcotest.(check (list (pair int int)))
    "empty trace keeps one empty range"
    [ (0, 0) ]
    (Array.to_list (S.plan ~shards:4 ~periods:0));
  Alcotest.check_raises "zero shards refused"
    (Invalid_argument "Shard.plan: shards must be >= 1") (fun () ->
        ignore (S.plan ~shards:0 ~periods:5))

let qc_plan_partitions =
  Test_support.qcheck_case "plan = contiguous near-equal partition"
    ~count:200
    QCheck.(pair (int_range 1 16) (int_range 0 64))
    (fun (shards, periods) ->
       let ranges = S.plan ~shards ~periods in
       let sizes = Array.map (fun (lo, hi) -> hi - lo) ranges in
       let covers =
         fst ranges.(0) = 0
         && snd ranges.(Array.length ranges - 1) = periods
         && Array.for_all (fun s -> s >= 0) sizes
         && (let ok = ref true in
             for i = 1 to Array.length ranges - 1 do
               if fst ranges.(i) <> snd ranges.(i - 1) then ok := false
             done;
             !ok)
       in
       let near_equal =
         periods = 0
         || Array.for_all (fun s ->
                s >= periods / Array.length ranges) sizes
       in
       covers && near_equal)

(* --- the headline property: fold = monolithic bound-1 model ---------- *)

let lub_of (o : H.outcome) =
  match o.hypotheses with [] -> None | l -> Some (Df.lub l)

let oracle_of trace = lub_of (R.run ~bound:1 trace)

let check_equal_opt what expect got =
  match (expect, got) with
  | None, None -> ()
  | Some e, Some g -> Alcotest.check depfun what e g
  | Some _, None -> Alcotest.failf "%s: fold inconsistent, oracle is not" what
  | None, Some _ -> Alcotest.failf "%s: fold has a model, oracle does not" what

(* Besides the oracle equality: the folded model must dominate every
   shard's bounded LUB (the Lemma of test_theorems.ml, per shard). *)
let check_domination what (out : S.outcome) =
  match out.model with
  | None -> ()
  | Some model ->
    Array.iteri
      (fun i (r : S.result) ->
         match r.hypotheses with
         | [] -> ()
         | hs ->
           Alcotest.(check bool)
             (Printf.sprintf "%s: shard %d bounded lub dominated" what i)
             true
             (Df.leq (Df.lub hs) model))
      out.shards

let check_trace ?(bounds = [ 1; 2; 8 ]) trace =
  let oracle = oracle_of trace in
  List.iter
    (fun bound ->
       List.iter
         (fun shards ->
            let what = Printf.sprintf "bound %d, %d shards" bound shards in
            let out = S.learn ~bound ~shards trace in
            check_equal_opt what oracle out.model;
            check_domination what out;
            Alcotest.(check int)
              (Printf.sprintf "periods total (K=%d)" shards)
              (Trace.period_count trace) out.periods)
         [ 1; 2; 4; 8 ])
    bounds

let test_oracle_pipeline () =
  check_trace
    (Test_support.simulate ~periods:12 ~seed:3 (Test_support.pipeline_design 4))

let test_oracle_paper_example () = check_trace (Test_support.fig2_trace ())

let qc_oracle_random =
  Test_support.qcheck_case
    "fold(shards) = monolithic bound-1 model on random designs" ~count:40
    QCheck.(triple (int_range 0 11) (int_range 1 12) (int_range 1 8))
    (fun (seed, bound, shards) ->
       let trace =
         Test_support.simulate ~periods:9 ~seed (Test_support.small_design seed)
       in
       let oracle = oracle_of trace in
       let got = (S.learn ~bound ~shards trace).model in
       match (oracle, got) with
       | None, None -> true
       | Some e, Some g -> Df.equal e g
       | _ -> false)

(* The counterexample that forced the companion design: at (seed 3,
   bound 6, K = 5) the shards' bounded LUBs lose the weakened Fwd
   evidence for one task pair (each shard's minimality pruning discards
   its carrier), so a fold of the bounded hypotheses diverges from the
   monolithic model while the companion fold does not. *)
let test_bounded_fold_is_partition_dependent () =
  let trace =
    Test_support.simulate ~periods:9 ~seed:3 (Test_support.small_design 3)
  in
  let out = S.learn ~bound:6 ~shards:5 trace in
  check_equal_opt "companion fold matches oracle" (oracle_of trace) out.model;
  let bounded =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (r : S.result) -> Array.of_list r.hypotheses)
            out.shards))
  in
  let naive_bounded = Df.lub_many bounded in
  match out.model with
  | None -> Alcotest.fail "regression trace unexpectedly inconsistent"
  | Some model ->
    Alcotest.(check bool)
      "bounded-hypothesis fold loses evidence on this partition" false
      (Df.equal naive_bounded model)

(* --- the violation-exchange law -------------------------------------- *)

(* A trace where tasks 3 and 4 skip the first period: the violation (a
   ran, b did not) is only observed by the shard holding period 0,
   while the definite Fwd evidence arrives in period 1. A naive fold
   that joins the companion summaries WITHOUT the union-weakening pass
   keeps the definite value and diverges from the monolithic run —
   proving the exchange pass is load-bearing. *)
let exchange_trace () =
  Rt_trace.Trace_io.of_string_exn
    "tasks t1 t2 t3 t4\n\
     period 0\n\
     100 start t1\n\
     200 end t1\n\
     210 rise 0x10\n\
     250 fall 0x10\n\
     260 start t2\n\
     300 end t2\n\
     period 1\n\
     100 start t1\n\
     200 end t1\n\
     210 rise 0x10\n\
     250 fall 0x10\n\
     260 start t4\n\
     300 end t4\n\
     310 start t2\n\
     340 end t2\n\
     350 start t3\n\
     380 end t3\n"

let test_exchange_law () =
  let trace = exchange_trace () in
  let oracle = oracle_of trace in
  let out = S.learn ~bound:4 ~shards:2 trace in
  check_equal_opt "exchange fixture, K=2" oracle out.model;
  (* The naive fold — plain join of companion summaries, no exchange
     pass — must differ here, or this fixture exercises nothing. *)
  let naive =
    Df.lub_many
      (Array.map (fun (r : S.result) -> Option.get r.summary) out.shards)
  in
  (match oracle with
   | Some e ->
     Alcotest.(check bool) "naive fold diverges (fixture is load-bearing)"
       false (Df.equal e naive)
   | None -> Alcotest.fail "exchange fixture unexpectedly inconsistent")

(* --- inconsistency localises ----------------------------------------- *)

let test_inconsistent () =
  (* A message no task can explain (no task executes around it) empties
     the hypothesis set in period 1 only. *)
  let trace =
    Rt_trace.Trace_io.of_string_exn
      "tasks t1 t2\n\
       period 0\n\
       100 start t1\n\
       200 end t1\n\
       210 rise 0x10\n\
       250 fall 0x10\n\
       260 start t2\n\
       300 end t2\n\
       period 1\n\
       500 rise 0x11\n\
       550 fall 0x11\n"
  in
  let oracle = R.run ~bound:4 trace in
  Alcotest.(check (list depfun)) "oracle inconsistent" [] oracle.hypotheses;
  List.iter
    (fun shards ->
       let out = S.learn ~bound:4 ~shards trace in
       Alcotest.(check bool)
         (Printf.sprintf "fold inconsistent (K=%d)" shards)
         true (out.model = None))
    [ 1; 2; 4 ]

(* --- pool execution is invisible ------------------------------------- *)

let test_pool_identical () =
  let trace =
    Test_support.simulate ~periods:10 ~seed:9 (Test_support.small_design 9)
  in
  let serial = S.learn ~bound:6 ~shards:4 trace in
  let pool = Rt_util.Domain_pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Rt_util.Domain_pool.shutdown pool)
    (fun () ->
       let parallel = S.learn ~pool ~bound:6 ~shards:4 trace in
       check_equal_opt "pool run identical" serial.model parallel.model;
       Alcotest.(check int) "same shard count"
         (Array.length serial.shards)
         (Array.length parallel.shards))

(* --- streaming fold: round-robin units -------------------------------- *)

let test_stream_round_robin () =
  let trace =
    Test_support.simulate ~periods:12 ~seed:4 (Test_support.small_design 4)
  in
  let ntasks = Trace.task_count trace in
  (* Bounds above 1 exercise the companion plumbing; the fold must be
     oracle-equal either way, despite the non-contiguous partition. *)
  List.iter
    (fun bound ->
       let st = S.Stream.create ~ntasks ~bound ~shards:3 () in
       List.iter (S.Stream.feed st) (Trace.periods trace);
       Alcotest.(check int) "all periods fed"
         (Trace.period_count trace)
         (S.Stream.periods_fed st);
       check_equal_opt
         (Printf.sprintf "round-robin stream fold (bound %d)" bound)
         (oracle_of trace) (S.Stream.fold st))
    [ 1; 4 ]

let test_fold_engines_round_robin () =
  let trace =
    Test_support.simulate ~periods:12 ~seed:4 (Test_support.small_design 4)
  in
  let ntasks = Trace.task_count trace in
  let k = 3 in
  let engines =
    Array.init k (fun _ -> Engine.create ~ntasks (Engine.Heuristic { bound = 1 }))
  in
  (* Round-robin distribution — an arbitrary non-contiguous partition,
     which the fold must not care about. *)
  List.iteri
    (fun i p -> Engine.feed engines.(i mod k) p)
    (Trace.periods trace);
  check_equal_opt "round-robin engine fold" (oracle_of trace)
    (S.fold_engines engines)

let test_fold_engines_refuses_exact () =
  let e = Engine.create ~ntasks:3 (Engine.Exact { limit = None }) in
  Alcotest.check_raises "exact core refused"
    (Invalid_argument "Shard.fold_engines: exact-core engine has no fold")
    (fun () -> ignore (S.fold_engines [| e |]))

(* --- observability ---------------------------------------------------- *)

let test_obs () =
  let trace =
    Test_support.simulate ~periods:8 ~seed:2 (Test_support.small_design 2)
  in
  let r = Rt_obs.Registry.create () in
  let out = S.learn ~obs:r ~bound:4 ~shards:3 trace in
  let json =
    Rt_obs.Json.to_string ~pretty:true (Rt_obs.Registry.to_json r)
  in
  let has needle = Astring.String.is_infix ~affix:needle json in
  Alcotest.(check bool) "shard.shards counter" true (has "\"shard.shards\": 3");
  Alcotest.(check bool) "shard.fanout span" true (has "shard.fanout");
  Alcotest.(check bool) "shard.fold span" true (has "shard.fold");
  Alcotest.(check bool) "shard.worker_us histogram" true
    (has "shard.worker_us");
  Alcotest.(check int) "messages total" (Trace.total_messages trace)
    out.messages

let () =
  Alcotest.run "shard"
    [
      ( "plan",
        [ Alcotest.test_case "fixed partitions" `Quick test_plan;
          qc_plan_partitions ] );
      ( "fold = monolithic bound-1 model",
        [
          Alcotest.test_case "pipeline design" `Quick test_oracle_pipeline;
          Alcotest.test_case "paper example" `Quick test_oracle_paper_example;
          qc_oracle_random;
          Alcotest.test_case "bounded fold is partition-dependent" `Quick
            test_bounded_fold_is_partition_dependent;
          Alcotest.test_case "violation-exchange law" `Quick
            test_exchange_law;
          Alcotest.test_case "inconsistency localises" `Quick
            test_inconsistent;
        ] );
      ( "execution",
        [
          Alcotest.test_case "pool run identical" `Quick test_pool_identical;
          Alcotest.test_case "round-robin stream units" `Quick
            test_stream_round_robin;
          Alcotest.test_case "round-robin engine fold" `Quick
            test_fold_engines_round_robin;
          Alcotest.test_case "exact core refused" `Quick
            test_fold_engines_refuses_exact;
          Alcotest.test_case "spans and counters" `Quick test_obs;
        ] );
    ]
