(* Rt_obs: JSON round trips, histogram bucket math, registry/span
   behaviour under a fake clock, and the two sinks. *)

module Json = Rt_obs.Json
module Histogram = Rt_obs.Histogram
module Registry = Rt_obs.Registry
module Report = Rt_obs.Report

(* --- Json --- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("a", Json.Int 42); ("b", Json.Float 1.5);
        ("c", Json.String "hi \"there\"\n"); ("d", Json.Bool true);
        ("e", Json.Null); ("f", Json.List [ Json.Int 1; Json.Int (-2) ]);
        ("g", Json.Obj []) ]
  in
  List.iter (fun pretty ->
      match Json.of_string (Json.to_string ~pretty doc) with
      | Ok doc' -> Alcotest.(check bool) "round trip" true (doc = doc')
      | Error m -> Alcotest.failf "reparse failed: %s" m)
    [ false; true ]

let test_json_errors () =
  List.iter (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

let test_json_accessors () =
  let doc = Result.get_ok (Json.of_string {|{"n": 3, "f": 2.0, "s": "x"}|}) in
  Alcotest.(check (option int)) "int member" (Some 3)
    (Option.bind (Json.member "n" doc) Json.to_int);
  Alcotest.(check (option int)) "integral float as int" (Some 2)
    (Option.bind (Json.member "f" doc) Json.to_int);
  Alcotest.(check (option string)) "string member" (Some "x")
    (Option.bind (Json.member "s" doc) Json.to_string_opt);
  Alcotest.(check bool) "missing member" true (Json.member "zzz" doc = None)

(* --- Histogram --- *)

let test_histogram_buckets () =
  Alcotest.(check int) "v<=0 in bucket 0" 0 (Histogram.bucket_of 0);
  Alcotest.(check int) "1 in bucket 1" 1 (Histogram.bucket_of 1);
  Alcotest.(check int) "2 in bucket 2" 2 (Histogram.bucket_of 2);
  Alcotest.(check int) "3 in bucket 2" 2 (Histogram.bucket_of 3);
  Alcotest.(check int) "4 in bucket 3" 3 (Histogram.bucket_of 4);
  Alcotest.(check int) "1023 in bucket 10" 10 (Histogram.bucket_of 1023);
  Alcotest.(check int) "1024 in bucket 11" 11 (Histogram.bucket_of 1024)

let test_histogram_stats () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check int) "empty quantile" 0 (Histogram.quantile h 0.5);
  List.iter (Histogram.record h) [ 5; 10; 20; 40; 80 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int) "sum" 155 (Histogram.sum h);
  Alcotest.(check int) "min" 5 (Histogram.min_value h);
  Alcotest.(check int) "max" 80 (Histogram.max_value h);
  Alcotest.(check (float 0.001)) "mean" 31.0 (Histogram.mean h);
  Alcotest.(check bool) "median in a middle bucket" true
    (let q = Histogram.quantile h 0.5 in q >= 16 && q <= 31);
  let h2 = Histogram.create () in
  Histogram.record h2 1000;
  Histogram.merge ~into:h h2;
  Alcotest.(check int) "merged count" 6 (Histogram.count h);
  Alcotest.(check int) "merged max" 1000 (Histogram.max_value h)

let test_histogram_edges () =
  (* Empty: every quantile is 0, no buckets. *)
  let h = Histogram.create () in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "empty quantile %.2f" q)
        0 (Histogram.quantile h q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  Alcotest.(check (list (pair int int))) "empty buckets" []
    (Histogram.nonempty_buckets h);
  (* Single sample: min/max clamping pins every quantile to that value,
     not to its bucket's (wider) upper bound. *)
  Histogram.record h 37;
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "single-sample quantile %.2f" q)
        37 (Histogram.quantile h q))
    [ 0.0; 0.5; 1.0 ];
  Alcotest.(check (list (pair int int))) "single bucket" [ (63, 1) ]
    (Histogram.nonempty_buckets h);
  (* Saturating top bucket: max_int lands in the open-ended last
     non-empty bucket, whose reported bound is the max_int sentinel,
     and quantiles stay clamped to the observed extremes. *)
  let h2 = Histogram.create () in
  Histogram.record h2 1;
  Histogram.record h2 max_int;
  (match List.rev (Histogram.nonempty_buckets h2) with
   | (le, n) :: _ ->
     Alcotest.(check int) "top bucket bound is the sentinel" max_int le;
     Alcotest.(check int) "top bucket count" 1 n
   | [] -> Alcotest.fail "no buckets after recording");
  Alcotest.(check int) "q=1.0 clamps to observed max" max_int
    (Histogram.quantile h2 1.0);
  Alcotest.(check int) "q=0.0 stays at observed min" 1
    (Histogram.quantile h2 0.0);
  Alcotest.(check int) "sum survives the big sample" (max_int + 1)
    (Histogram.sum h2)

(* --- Registry --- *)

(* A controllable clock: each [tick] advances one microsecond. *)
let fake_clock () =
  let t = ref 0 in
  ((fun () -> !t), fun () -> t := !t + 1_000)

let test_counters_and_gauges () =
  let reg = Registry.create () in
  let c = Registry.counter reg "learn.merges" in
  Registry.incr c;
  Registry.add c 4;
  Alcotest.(check int) "incr+add" 5 (Registry.counter_value c);
  Alcotest.(check bool) "same handle for same name" true
    (Registry.counter reg "learn.merges" == c);
  Registry.set_counter reg "learn.merges" 17;
  Alcotest.(check int) "set_counter overwrites" 17 (Registry.counter_value c);
  let g = Registry.gauge reg "learn.occupancy" in
  Registry.set_gauge g 3;
  Registry.set_gauge g 9;
  Registry.set_gauge g 2;
  (match Json.member "gauges" (Registry.to_json reg) with
   | Some gauges ->
     let f field =
       Option.bind (Json.member "learn.occupancy" gauges) (fun o ->
           Option.bind (Json.member field o) Json.to_int)
     in
     Alcotest.(check (option int)) "gauge last" (Some 2) (f "last");
     Alcotest.(check (option int)) "gauge max" (Some 9) (f "max");
     Alcotest.(check (option int)) "gauge samples" (Some 3) (f "samples")
   | None -> Alcotest.fail "no gauges section")

let test_spans () =
  let clock, tick = fake_clock () in
  let reg = Registry.create ~clock () in
  Registry.span_begin reg "learn.period";
  tick ();
  Registry.span_begin reg "learn.inner";
  tick ();
  Registry.span_end reg;
  tick ();
  Registry.span_end reg;
  Alcotest.(check int) "balanced" 0 (Registry.open_spans reg);
  Alcotest.check_raises "unbalanced close rejected"
    (Invalid_argument "Registry.span_end: no open span")
    (fun () -> Registry.span_end reg);
  let spans = Option.get (Json.member "spans" (Registry.to_json reg)) in
  let total name =
    Option.bind (Json.member name spans) (fun o ->
        Option.bind (Json.member "total_ns" o) Json.to_int)
  in
  Alcotest.(check (option int)) "outer total" (Some 3_000)
    (total "learn.period");
  Alcotest.(check (option int)) "inner total" (Some 1_000)
    (total "learn.inner")

let test_with_span_exception_safe () =
  let reg = Registry.create () in
  (try Registry.with_span reg "x.y" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 0 (Registry.open_spans reg)

(* --- sinks --- *)

let populated () =
  let clock, tick = fake_clock () in
  let reg = Registry.create ~clock () in
  Registry.set_counter reg "learn.merges" 7;
  Registry.set_counter reg "ingest.periods_kept" 3;
  Registry.set_gauge_named reg "learn.occupancy" 4;
  Histogram.record (Registry.histogram reg "learn.candidate_pairs") 12;
  Registry.with_span reg "learn.period" tick;
  reg

let test_metrics_json_shape () =
  let doc = Registry.to_json (populated ()) in
  Alcotest.(check (option string)) "schema" (Some Registry.schema_name)
    (Option.bind (Json.member "schema" doc) Json.to_string_opt);
  Alcotest.(check (option int)) "version" (Some Registry.schema_version)
    (Option.bind (Json.member "version" doc) Json.to_int);
  (* Reparse of the serialized document must succeed and preserve it. *)
  let text = Json.to_string ~pretty:true doc in
  Alcotest.(check bool) "serialized form reparses" true
    (Json.of_string text = Ok doc);
  (* Deterministic sections precede the timing-dependent ones, so tests
     can compare the counters prefix textually across runs. *)
  (match doc with
   | Json.Obj fields ->
     let keys = List.map fst fields in
     Alcotest.(check (list string)) "section order"
       [ "schema"; "version"; "counters"; "gauges"; "histograms"; "spans";
         "elapsed_ns" ]
       keys
   | _ -> Alcotest.fail "not an object")

let test_report_render () =
  let reg = populated () in
  let text = Report.of_registry reg in
  List.iter (fun needle ->
      Alcotest.(check bool) ("report mentions " ^ needle) true
        (let nh = String.length text and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
         in
         go 0))
    [ "== ingest =="; "== learn =="; "learn.merges"; "7";
      "learn.candidate_pairs" ];
  (match Report.render (Registry.to_json reg) with
   | Ok text' -> Alcotest.(check string) "render = of_registry" text text'
   | Error m -> Alcotest.failf "render failed: %s" m);
  (match Report.render (Json.Obj [ ("schema", Json.String "bogus") ]) with
   | Ok _ -> Alcotest.fail "accepted a non-metrics document"
   | Error _ -> ())

let test_phase_of () =
  Alcotest.(check string) "dotted" "learn" (Report.phase_of "learn.period");
  Alcotest.(check string) "undotted" "flat" (Report.phase_of "flat")

let test_trace_events () =
  let doc = Registry.trace_events_json (populated ()) in
  match doc with
  | Json.List (_ :: _ as events) ->
    List.iter (fun ev ->
        Alcotest.(check (option string)) "complete event" (Some "X")
          (Option.bind (Json.member "ph" ev) Json.to_string_opt);
        Alcotest.(check bool) "has ts and dur" true
          (Json.member "ts" ev <> None && Json.member "dur" ev <> None))
      events;
    Alcotest.(check (option string)) "cat is the phase" (Some "learn")
      (Option.bind (Json.member "cat" (List.hd events)) Json.to_string_opt)
  | Json.List [] -> Alcotest.fail "no events emitted"
  | _ -> Alcotest.fail "not a JSON array"

(* --- learner counters: determinism and checkpoint travel --- *)

let gm_trace = lazy (Rt_case.Gm_model.trace ~periods:6 ())

let learn_counters ?pool () =
  let module H = Rt_learn.Heuristic in
  let trace = Lazy.force gm_trace in
  let st =
    H.init ?pool ~bound:8 ~ntasks:(Rt_trace.Trace.task_count trace) ()
  in
  List.iter (H.feed st) (Rt_trace.Trace.periods trace);
  H.counters st

let test_counters_parallel_deterministic () =
  let seq = learn_counters () in
  let pool = Rt_util.Domain_pool.create ~jobs:4 in
  let par =
    Fun.protect ~finally:(fun () -> Rt_util.Domain_pool.shutdown pool)
      (fun () -> learn_counters ~pool ())
  in
  Alcotest.(check bool) "counters identical across -j" true (seq = par)

let test_counters_travel_checkpoint () =
  let module H = Rt_learn.Heuristic in
  let trace = Lazy.force gm_trace in
  let periods = Rt_trace.Trace.periods trace in
  let ntasks = Rt_trace.Trace.task_count trace in
  let full = H.init ~bound:8 ~ntasks () in
  List.iter (H.feed full) periods;
  (* Kill after 3 periods, checkpoint, resume, finish. *)
  let st = H.init ~bound:8 ~ntasks () in
  List.iteri (fun i p -> if i < 3 then H.feed st p) periods;
  let st', _tag = Result.get_ok (H.resume (H.checkpoint st)) in
  List.iteri (fun i p -> if i >= 3 then H.feed st' p) periods;
  Alcotest.(check bool) "stats equal" true (H.stats full = H.stats st');
  Alcotest.(check bool) "counters equal" true
    (H.counters full = H.counters st')

let test_checkpoint_v1_refused () =
  let module H = Rt_learn.Heuristic in
  let st = H.init ~bound:2 ~ntasks:3 () in
  let ck = Bytes.of_string (H.checkpoint st) in
  Bytes.set ck 8 '\001';  (* version byte follows the 8-byte magic *)
  match H.resume (Bytes.to_string ck) with
  | Ok _ -> Alcotest.fail "resumed a version-1 checkpoint"
  | Error m ->
    Alcotest.(check bool) "names the version" true
      (String.length m > 0
       && (let nh = String.length m in
           let needle = "version 1" in
           let nn = String.length needle in
           let rec go i =
             i + nn <= nh && (String.sub m i nn = needle || go (i + 1))
           in
           go 0))

(* --- flight recorder --- *)

module Flight = Rt_obs.Flight

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let check_contains what haystack needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s mentions %s" what needle)
    true (contains haystack needle)

let test_flight_wraparound () =
  let clock, tick = fake_clock () in
  let t = Flight.create ~clock ~capacity:4 () in
  for i = 0 to 5 do
    Flight.record t Flight.Info ~stream:"s"
      ~kind:(Printf.sprintf "k%d" i)
      (Printf.sprintf "d%d" i);
    tick ()
  done;
  Alcotest.(check int) "capacity" 4 (Flight.capacity t);
  Alcotest.(check int) "recorded counts overwritten events" 6
    (Flight.recorded t);
  Alcotest.(check int) "length capped at capacity" 4 (Flight.length t);
  Alcotest.(check int) "dropped = recorded - length" 2 (Flight.dropped t);
  let evs = Flight.events t in
  Alcotest.(check (list int)) "oldest-first sequence order after wrap"
    [ 2; 3; 4; 5 ]
    (List.map (fun (e : Flight.event) -> e.seq) evs);
  Alcotest.(check (list string)) "payloads rotate with the sequence"
    [ "k2"; "k3"; "k4"; "k5" ]
    (List.map (fun (e : Flight.event) -> e.kind) evs);
  Alcotest.(check bool) "timestamps non-decreasing" true
    (let rec mono = function
       | (a : Flight.event) :: (b :: _ as tl) -> a.ts_ns <= b.ts_ns && mono tl
       | _ -> true
     in
     mono evs)

let test_flight_scope_and_json () =
  let clock, _tick = fake_clock () in
  let t = Flight.create ~clock ~capacity:8 () in
  let s = Flight.scope t "veh0" in
  Flight.record_s s Flight.Warn ~kind:"stream.shed" "q=4096";
  Flight.record t Flight.Error ~stream:"" ~kind:"daemon.exit" "drained";
  (match Flight.events t with
   | [ a; b ] ->
     Alcotest.(check string) "scoped stream id" "veh0" a.Flight.stream;
     Alcotest.(check string) "daemon-wide stream id" "" b.Flight.stream
   | _ -> Alcotest.fail "expected exactly two events");
  let doc = Flight.to_json t in
  Alcotest.(check (option string)) "schema" (Some Flight.schema_name)
    (Option.bind (Json.member "schema" doc) Json.to_string_opt);
  Alcotest.(check (option int)) "version" (Some Flight.schema_version)
    (Option.bind (Json.member "version" doc) Json.to_int);
  Alcotest.(check (option int)) "dropped in the dump" (Some 0)
    (Option.bind (Json.member "dropped" doc) Json.to_int);
  Alcotest.(check bool) "dump reparses to itself" true
    (Json.of_string (Json.to_string ~pretty:true doc) = Ok doc);
  (match Option.bind (Json.member "events" doc) Json.to_list with
   | Some [ a; b ] ->
     Alcotest.(check (option string)) "severity rendered" (Some "warn")
       (Option.bind (Json.member "severity" a) Json.to_string_opt);
     Alcotest.(check (option string)) "error rendered" (Some "error")
       (Option.bind (Json.member "severity" b) Json.to_string_opt)
   | _ -> Alcotest.fail "events list shape");
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Flight.create: capacity must be >= 1")
    (fun () -> ignore (Flight.create ~capacity:0 ()))

(* --- profiler --- *)

module Profile = Rt_obs.Profile

(* One period with two scans inside: period inclusive 3us (1us its own),
   scan 2 * 1us, all exclusive. *)
let profiled () =
  let clock, tick = fake_clock () in
  let reg = Registry.create ~clock () in
  Registry.with_span reg "learn.period" (fun () ->
      tick ();
      Registry.with_span reg "learn.scan" tick;
      Registry.with_span reg "learn.scan" tick);
  reg

let test_profile_rows () =
  match Profile.rows (profiled ()) with
  | [ scan; period ] ->
    Alcotest.(check string) "hotter span first" "learn.scan" scan.Profile.name;
    Alcotest.(check int) "scan count" 2 scan.Profile.count;
    Alcotest.(check int) "scan inclusive" 2_000 scan.Profile.inclusive_ns;
    Alcotest.(check int) "scan exclusive" 2_000 scan.Profile.exclusive_ns;
    Alcotest.(check string) "parent second" "learn.period" period.Profile.name;
    Alcotest.(check int) "period inclusive is the whole span" 3_000
      period.Profile.inclusive_ns;
    Alcotest.(check int) "period exclusive subtracts children" 1_000
      period.Profile.exclusive_ns
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_profile_folded_and_hotspots () =
  let reg = profiled () in
  Alcotest.(check string) "folded stacks: path -> exclusive ns"
    "learn.period 1000\nlearn.period;learn.scan 2000\n"
    (Profile.folded reg);
  let table = Profile.hotspots reg in
  List.iter (check_contains "hotspot table" table)
    [ "learn.scan"; "learn.period"; "excl%"; "total span time" ];
  Alcotest.(check string) "empty registry degrades gracefully"
    "(no spans recorded — nothing to profile)\n"
    (Profile.hotspots (Registry.create ()))

(* --- prometheus exposition --- *)

module Prom = Rt_obs.Prom

let test_prom_render () =
  let reg = populated () in
  Registry.set_gauge_named reg "daemon.stream.veh0.queue" 5;
  Registry.set_gauge_named reg "daemon.stream.veh1.queue" 7;
  let text = Prom.of_registry reg in
  (* Counters gain _total; names are sanitized under the rtgen_ prefix. *)
  check_contains "exposition" text
    "# TYPE rtgen_learn_merges_total counter\nrtgen_learn_merges_total 7\n";
  (* Per-stream gauges collapse to one labelled, contiguous family. *)
  check_contains "exposition" text
    "rtgen_daemon_stream_queue{stream=\"veh0\"} 5\n\
     rtgen_daemon_stream_queue{stream=\"veh1\"} 7\n";
  (* Histograms turn per-bucket counts cumulative, ending at +Inf. *)
  check_contains "exposition" text
    "rtgen_learn_candidate_pairs_bucket{le=\"15\"} 1\n";
  check_contains "exposition" text
    "rtgen_learn_candidate_pairs_bucket{le=\"+Inf\"} 1\n";
  check_contains "exposition" text "rtgen_learn_candidate_pairs_sum 12\n";
  check_contains "exposition" text "rtgen_learn_candidate_pairs_count 1\n";
  (* Span aggregates become a pair of counters. *)
  check_contains "exposition" text "rtgen_learn_period_spans_total 1\n";
  check_contains "exposition" text "rtgen_learn_period_span_ns_total 1000\n";
  check_contains "exposition" text "# TYPE rtgen_elapsed_ns gauge\n"

let test_prom_rejects_foreign_documents () =
  (match Prom.render (Json.Obj [ ("schema", Json.String "bogus") ]) with
   | Ok _ -> Alcotest.fail "rendered a non-metrics document"
   | Error m -> check_contains "error" m "bogus");
  match Prom.render (Json.Obj [ ("schema", Json.String Registry.schema_name) ])
  with
  | Ok _ -> Alcotest.fail "rendered a versionless document"
  | Error m -> check_contains "error" m "version"

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "stats and merge" `Quick test_histogram_stats;
          Alcotest.test_case "edge cases" `Quick test_histogram_edges;
        ] );
      ( "flight",
        [
          Alcotest.test_case "wraparound keeps order" `Quick
            test_flight_wraparound;
          Alcotest.test_case "scopes and dump shape" `Quick
            test_flight_scope_and_json;
        ] );
      ( "profile",
        [
          Alcotest.test_case "exclusive vs inclusive" `Quick test_profile_rows;
          Alcotest.test_case "folded stacks and hotspots" `Quick
            test_profile_folded_and_hotspots;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "exposition mapping" `Quick test_prom_render;
          Alcotest.test_case "foreign documents rejected" `Quick
            test_prom_rejects_foreign_documents;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "spans under a fake clock" `Quick test_spans;
          Alcotest.test_case "with_span exception safety" `Quick
            test_with_span_exception_safe;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "metrics document shape" `Quick
            test_metrics_json_shape;
          Alcotest.test_case "report rendering" `Quick test_report_render;
          Alcotest.test_case "phase grouping" `Quick test_phase_of;
          Alcotest.test_case "chrome trace events" `Quick test_trace_events;
        ] );
      ( "learner-counters",
        [
          Alcotest.test_case "deterministic across -j" `Quick
            test_counters_parallel_deterministic;
          Alcotest.test_case "travel through checkpoints" `Quick
            test_counters_travel_checkpoint;
          Alcotest.test_case "version-1 checkpoint refused" `Quick
            test_checkpoint_v1_refused;
        ] );
    ]
