(* Integration tests of the rtgen binary: the full simulate -> learn ->
   check pipeline as a user would run it. The test dune rule declares the
   executable as a dependency, so it is available relative to the test's
   working directory. *)

(* Under `dune runtest` the working directory is _build/default/test; under
   `dune exec test/test_cli.exe` it is the project root. *)
let rtgen =
  let candidates =
    [ "../bin/rtgen.exe"; "_build/default/bin/rtgen.exe"; "bin/rtgen.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "rtgen.exe not found; run `dune build` first"

let rtlint =
  let candidates =
    [ "../tool/rtlint.exe"; "_build/default/tool/rtlint.exe"; "tool/rtlint.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "rtlint.exe not found; run `dune build` first"

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("rtgen_test_" ^ name)

let read_file p =
  let ic = open_in p in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let write_file p s =
  let oc = open_out p in
  output_string oc s;
  close_out oc

(* Run and return the exact exit code plus captured stdout. The
   documented code convention (0 ok / 1 findings / 2 input error /
   3 internal error) is part of the contract under test. *)
let run_code ?(bin = rtgen) args =
  let out = tmp "stdout" in
  let cmd = Printf.sprintf "%s %s > %s 2> %s" bin args out (tmp "stderr") in
  let code = Sys.command cmd in
  (code, read_file out)

let run ?(expect_fail = false) args =
  let out = tmp "stdout" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" rtgen args out (tmp "stderr")
  in
  let code = Sys.command cmd in
  if expect_fail then
    Alcotest.(check bool) ("non-zero exit: " ^ args) true (code <> 0)
  else Alcotest.(check int) ("exit code: " ^ args) 0 code;
  let ic = open_in out in
  let content =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  content

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let trace_file = tmp "gm.trace"
let model_file = tmp "gm.model"

let test_simulate () =
  let _ = run (Printf.sprintf "simulate --case-study --periods 6 --seed 2007 -o %s" trace_file) in
  Alcotest.(check bool) "trace file exists" true (Sys.file_exists trace_file);
  let out = run "simulate --tasks 6 --periods 2" in
  Alcotest.(check bool) "stdout trace" true (contains ~needle:"# rtgen-trace v1" out)

let test_simulate_dot () =
  let out = run "simulate --tasks 6 --dot" in
  Alcotest.(check bool) "dot graph" true (contains ~needle:"digraph design" out)

let test_learn () =
  let out = run (Printf.sprintf "learn %s --bound 1 -o %s" trace_file model_file) in
  Alcotest.(check bool) "prints matrix" true (contains ~needle:"least upper bound" out);
  Alcotest.(check bool) "model saved" true (Sys.file_exists model_file)

let test_learn_dot () =
  let out = run (Printf.sprintf "learn %s --bound 1 --dot" trace_file) in
  Alcotest.(check bool) "dot deps" true (contains ~needle:"digraph dependencies" out)

let test_query_pass () =
  let code, out =
    run_code
      (Printf.sprintf "query %s \"d(A,L) = -> & conjunction(Q)\" --model %s"
         trace_file model_file)
  in
  Alcotest.(check int) "holding property exits 0" 0 code;
  Alcotest.(check bool) "both ok" true (contains ~needle:"[ok]" out);
  Alcotest.(check bool) "no failures" false (contains ~needle:"[FAIL]" out)

let test_query_fail () =
  let code, _ =
    run_code
      (Printf.sprintf "query %s \"d(A,L) = ||\" --model %s" trace_file
         model_file)
  in
  Alcotest.(check int) "violated property exits 1" 1 code

let test_query_bad () =
  let code, _ =
    run_code
      (Printf.sprintf "query %s \"frobnicate(A)\" --model %s" trace_file
         model_file)
  in
  Alcotest.(check int) "unparseable property exits 2" 2 code

let test_analyze () =
  let out = run (Printf.sprintf "analyze %s --bound 1" trace_file) in
  Alcotest.(check bool) "classification" true
    (contains ~needle:"node classification" out);
  Alcotest.(check bool) "state space" true (contains ~needle:"state space" out)

let test_stats () =
  let out = run (Printf.sprintf "stats %s" trace_file) in
  Alcotest.(check bool) "bus line" true (contains ~needle:"bus:" out)

let test_vcd () =
  let out = run (Printf.sprintf "vcd %s" trace_file) in
  Alcotest.(check bool) "vcd header" true (contains ~needle:"$timescale" out)

let test_gantt () =
  let out = run (Printf.sprintf "gantt %s --period 1" trace_file) in
  Alcotest.(check bool) "svg" true (contains ~needle:"<svg" out);
  ignore
    (run ~expect_fail:true (Printf.sprintf "gantt %s --period 99" trace_file))

let test_example () =
  let out = run "example" in
  Alcotest.(check bool) "5 hypotheses" true
    (contains ~needle:"5 most specific hypotheses" out)

let test_anonymize () =
  let out = run (Printf.sprintf "anonymize %s" trace_file) in
  Alcotest.(check bool) "anonymized trace" true
    (contains ~needle:"# rtgen-trace v1" out);
  (* Original GM task names must be gone. *)
  Alcotest.(check bool) "no 'tasks S A B'" false
    (contains ~needle:"tasks S A B" out)

let test_missing_file () =
  ignore (run ~expect_fail:true "learn /nonexistent/file.trace")

(* --- static analysis: rtgen check + rtlint exit codes and rule ids --- *)

let bad_diag_text = "    A    B\nA   ->   ->\nB   <-   ||\n"

let test_model_check_learned () =
  let code, _ = run_code (Printf.sprintf "check %s" model_file) in
  Alcotest.(check int) "learned model audits clean" 0 code;
  let code, _ =
    run_code (Printf.sprintf "check %s --trace %s" model_file trace_file)
  in
  Alcotest.(check int) "conforms to its own trace" 0 code

let test_model_check_broken () =
  let bad = tmp "bad_diag.model" in
  write_file bad bad_diag_text;
  let code, out = run_code (Printf.sprintf "check %s" bad) in
  Alcotest.(check int) "broken model exits 1" 1 code;
  Alcotest.(check bool) "rule id on stdout" true (contains ~needle:"RTC101" out);
  let code, out = run_code (Printf.sprintf "check %s --format json" bad) in
  Alcotest.(check int) "json rendering keeps exit 1" 1 code;
  Alcotest.(check bool) "json findings doc" true
    (contains ~needle:"rtgen-findings" out)

let test_model_check_answer_set () =
  let a = tmp "dup_cli_a.model" and b = tmp "dup_cli_b.model" in
  let text = "    A    B\nA   ||   ->?\nB   <-?  ||\n" in
  write_file a text;
  write_file b text;
  let code, out = run_code (Printf.sprintf "check %s %s" a b) in
  Alcotest.(check int) "duplicate hypotheses exit 1" 1 code;
  Alcotest.(check bool) "RTC201 reported" true (contains ~needle:"RTC201" out)

let test_model_check_missing () =
  let code, _ = run_code "check /nonexistent/m.model" in
  Alcotest.(check int) "missing model exits 2" 2 code;
  let code, _ = run_code "check" in
  Alcotest.(check int) "nothing to check exits 2" 2 code

let test_model_check_checkpoint () =
  let ckpt = tmp "audit.ckpt" in
  if Sys.file_exists ckpt then Sys.remove ckpt;
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --checkpoint %s --stop-after 2"
            trace_file ckpt));
  let code, _ = run_code (Printf.sprintf "check --checkpoint %s" ckpt) in
  Alcotest.(check int) "mid-run checkpoint audits clean" 0 code;
  Sys.remove ckpt;
  let garbage = tmp "garbage.ckpt" in
  write_file garbage "not a checkpoint at all";
  let code, _ = run_code (Printf.sprintf "check --checkpoint %s" garbage) in
  Alcotest.(check int) "garbage checkpoint exits 2" 2 code

let test_model_check_all_learn_paths () =
  (* Models produced by every learn path must satisfy the auditor:
     batch (already covered), streamed, and checkpoint-resumed. *)
  let streamed = tmp "streamed.model" in
  ignore
    (run (Printf.sprintf "learn --stream %s --bound 4 -o %s" trace_file
            streamed));
  let code, _ =
    run_code (Printf.sprintf "check %s --trace %s" streamed trace_file)
  in
  Alcotest.(check int) "streamed model audits clean" 0 code;
  let ckpt = tmp "resume_chain.ckpt" and resumed = tmp "resumed.model" in
  if Sys.file_exists ckpt then Sys.remove ckpt;
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --checkpoint %s --stop-after 2"
            trace_file ckpt));
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --checkpoint %s -o %s" trace_file
            ckpt resumed));
  let code, _ =
    run_code (Printf.sprintf "check %s --trace %s" resumed trace_file)
  in
  Alcotest.(check int) "checkpoint-resumed model audits clean" 0 code

let test_model_check_sarif () =
  let bad = tmp "bad_diag.model" and sarif = tmp "check.sarif" in
  write_file bad bad_diag_text;
  let code, _ = run_code (Printf.sprintf "check %s --sarif %s" bad sarif) in
  Alcotest.(check int) "sarif side channel keeps exit 1" 1 code;
  Alcotest.(check bool) "sarif log written" true
    (contains ~needle:"\"2.1.0\"" (read_file sarif))

let test_rtlint_cli () =
  let dirty = tmp "rtlint_dirty.ml" in
  write_file dirty
    "let t0 = Unix.gettimeofday ()\nlet c = Stdlib.compare 1 2\n";
  let code, out = run_code ~bin:rtlint dirty in
  Alcotest.(check int) "violations exit 1" 1 code;
  Alcotest.(check bool) "RTL003 reported" true (contains ~needle:"RTL003" out);
  Alcotest.(check bool) "RTL002 reported" true (contains ~needle:"RTL002" out);
  let clean = tmp "rtlint_clean.ml" in
  write_file clean "let xs = List.sort Int.compare [ 2; 1 ]\n";
  let code, _ = run_code ~bin:rtlint clean in
  Alcotest.(check int) "clean file exits 0" 0 code;
  let code, _ = run_code ~bin:rtlint "/nonexistent/dir" in
  Alcotest.(check int) "missing path exits 2" 2 code;
  let code, out =
    run_code ~bin:rtlint (Printf.sprintf "%s --format json" dirty)
  in
  Alcotest.(check int) "json rendering keeps exit 1" 1 code;
  Alcotest.(check bool) "json findings doc" true
    (contains ~needle:"rtgen-findings" out)

let test_rtlint_own_tree_clean () =
  (* The sources this binary was built from must lint clean; the tree
     root is two levels up from the test cwd (_build/default/test). *)
  let root =
    List.find_opt
      (fun d -> Sys.file_exists (Filename.concat d "dune-project"))
      [ "../.."; "." ]
  in
  match root with
  | None -> () (* exotic cwd; the CI job covers this path *)
  | Some root ->
    (* Depending on what has been built, not every source dir is
       materialized next to the test; lint whichever are. *)
    let paths =
      List.map (Filename.concat root) [ "lib"; "bin"; "bench" ]
      |> List.filter Sys.file_exists
    in
    Alcotest.(check bool) "at least lib present" true (paths <> []);
    let code, _ = run_code ~bin:rtlint (String.concat " " paths) in
    Alcotest.(check int) "own sources lint clean" 0 code

(* --- fault injection / recovery / checkpointing --- *)

let corrupted_file = tmp "gm_corrupted.trace"

let test_inject () =
  let out =
    run (Printf.sprintf "inject %s --rate 0.1 --seed 7 -o %s" trace_file
           corrupted_file)
  in
  ignore out;
  Alcotest.(check bool) "corrupted trace written" true
    (Sys.file_exists corrupted_file);
  (* Same seed, same damage. *)
  let again = run (Printf.sprintf "inject %s --rate 0.1 --seed 7" trace_file) in
  Alcotest.(check string) "reproducible" (read_file corrupted_file) again;
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "inject %s --rate 1.5" trace_file));
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "inject %s --kinds not_a_kind" trace_file))

let test_learn_strict_vs_recover () =
  (* Strict mode must reject the damage... *)
  ignore (run ~expect_fail:true (Printf.sprintf "learn %s" corrupted_file));
  (* ...recover mode must complete and report the quarantine on stderr. *)
  let out =
    run (Printf.sprintf "learn %s --mode recover --eps 60 --bound 4"
           corrupted_file)
  in
  Alcotest.(check bool) "prints a model" true
    (contains ~needle:"least upper bound" out);
  Alcotest.(check bool) "quarantine summary on stderr" true
    (contains ~needle:"quarantine:" (read_file (tmp "stderr")))

let test_analyze_recover_confidence () =
  let out =
    run (Printf.sprintf "analyze %s --mode recover --eps 60 --bound 4"
           corrupted_file)
  in
  Alcotest.(check bool) "ingestion section" true
    (contains ~needle:"== ingestion ==" out);
  Alcotest.(check bool) "confidence reported" true
    (contains ~needle:"confidence" out)

let test_checkpoint_kill_resume () =
  let ckpt = tmp "gm.ckpt" in
  if Sys.file_exists ckpt then Sys.remove ckpt;
  (* Emulate a kill after 2 of 6 periods. *)
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --checkpoint %s --stop-after 2"
            trace_file ckpt));
  Alcotest.(check bool) "checkpoint written" true (Sys.file_exists ckpt);
  let resumed =
    run (Printf.sprintf "learn %s --bound 4 --checkpoint %s" trace_file ckpt)
  in
  Alcotest.(check bool) "resume announced" true
    (contains ~needle:"resumed" (read_file (tmp "stderr")));
  let uninterrupted = run (Printf.sprintf "learn %s --bound 4" trace_file) in
  Alcotest.(check string) "resumed model = uninterrupted model"
    uninterrupted resumed;
  Alcotest.(check bool) "checkpoint removed on success" false
    (Sys.file_exists ckpt)

let test_checkpoint_wrong_trace_refused () =
  let ckpt = tmp "gm_wrong.ckpt" in
  if Sys.file_exists ckpt then Sys.remove ckpt;
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --checkpoint %s --stop-after 1"
            trace_file ckpt));
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "learn %s --bound 4 --checkpoint %s" corrupted_file
          ckpt));
  Sys.remove ckpt

(* The counters section of a metrics file — the part that must be
   deterministic across -j levels, checkpoint resumes, and batch vs
   streamed ingestion (histograms and spans cover only the resumed
   segment's work and timing). The registry orders it before the
   timing-dependent sections precisely to allow this textual cut. *)
let counters_section path =
  let text = read_file path in
  let find needle from =
    let nh = String.length text and nn = String.length needle in
    let rec go i =
      if i + nn > nh then Alcotest.failf "%s: no %S section" path needle
      else if String.sub text i nn = needle then i
      else go (i + 1)
    in
    go from
  in
  let a = find "\"counters\"" 0 in
  String.sub text a (find "\"gauges\"" a - a)

(* --- streaming engine surfaces --- *)

let test_learn_stream_equals_batch () =
  let batch = run (Printf.sprintf "learn %s --bound 4" trace_file) in
  let streamed = run (Printf.sprintf "learn --stream %s --bound 4" trace_file) in
  Alcotest.(check string) "streamed model = batch model" batch streamed;
  (* And the same through a pipe: stdin is spelled "-". *)
  let piped =
    run (Printf.sprintf "learn --stream --bound 4 - < %s" trace_file)
  in
  Alcotest.(check string) "stdin model = batch model" batch piped

let test_learn_stream_recover_equals_batch () =
  let batch =
    run (Printf.sprintf "learn %s --mode recover --eps 60 --bound 4"
           corrupted_file)
  in
  let batch_err = read_file (tmp "stderr") in
  let streamed =
    run (Printf.sprintf "learn --stream %s --mode recover --eps 60 --bound 4"
           corrupted_file)
  in
  Alcotest.(check string) "recover stream = recover batch" batch streamed;
  Alcotest.(check string) "identical quarantine summary" batch_err
    (read_file (tmp "stderr"))

let test_learn_stream_metrics_equal_batch () =
  let mb = tmp "gm_metrics_batch.json" and ms = tmp "gm_metrics_stream.json" in
  ignore (run (Printf.sprintf "learn %s --bound 4 --metrics %s" trace_file mb));
  ignore
    (run (Printf.sprintf "learn --stream %s --bound 4 --metrics %s" trace_file
            ms));
  Alcotest.(check string) "engine counters identical batch vs stream"
    (counters_section mb) (counters_section ms);
  Alcotest.(check bool) "engine section present" true
    (contains ~needle:"\"engine.periods\"" (read_file ms))

let test_learn_stream_conflicts () =
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "learn --stream %s --checkpoint %s" trace_file
          (tmp "never.ckpt")));
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "learn --stream --auto %s" trace_file));
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "learn --auto --exact %s" trace_file))

(* --- sharded learning surfaces --- *)

(* The sharding contract: the folded model is the exact bound-1 model
   for every K, so model files and stdout are byte-identical across
   shard counts and match the non-sharded bound-1 run's saved model. *)
let test_learn_shards_equal_across_k () =
  let base = tmp "gm_shard_base.model" in
  ignore (run (Printf.sprintf "learn %s --bound 1 -o %s" trace_file base));
  let base_bytes = read_file base in
  let out1 = run (Printf.sprintf "learn %s --bound 6 --shards 1" trace_file) in
  Alcotest.(check bool) "folded header" true
    (contains ~needle:"folded model (exact at bound 1):" out1);
  List.iter
    (fun k ->
       let m = tmp (Printf.sprintf "gm_shard_%d.model" k) in
       let out =
         run (Printf.sprintf "learn %s --bound 6 --shards %d -o %s -j 2"
                trace_file k m)
       in
       Alcotest.(check string)
         (Printf.sprintf "K=%d model file = non-sharded bound-1 model" k)
         base_bytes (read_file m);
       Alcotest.(check string)
         (Printf.sprintf "K=%d stdout = K=1 stdout" k)
         out1 out)
    [ 2; 4; 8 ];
  (* Per-shard accounting goes to stderr, not the comparable stdout. *)
  Alcotest.(check bool) "per-shard accounting on stderr" true
    (contains ~needle:"shard 0:" (read_file (tmp "stderr")))

let test_learn_shards_stream_equals_batch () =
  let batch = run (Printf.sprintf "learn %s --bound 4 --shards 3" trace_file) in
  let streamed =
    run (Printf.sprintf "learn --stream %s --bound 4 --shards 3" trace_file)
  in
  Alcotest.(check string) "sharded stream model = sharded batch model"
    batch streamed

let test_learn_shards_checkpoint_resume () =
  let ckpt = tmp "gm_shard.ckpt" in
  List.iter (fun i ->
      List.iter (fun suffix ->
          let p = Printf.sprintf "%s.shard%d%s" ckpt i suffix in
          if Sys.file_exists p then Sys.remove p)
        [ ""; ".b1" ])
    [ 0; 1; 2 ];
  ignore
    (run (Printf.sprintf
            "learn %s --bound 4 --shards 3 --checkpoint %s --stop-after 2"
            trace_file ckpt));
  Alcotest.(check bool) "per-shard checkpoint written" true
    (Sys.file_exists (ckpt ^ ".shard0"));
  let resumed =
    run (Printf.sprintf "learn %s --bound 4 --shards 3 --checkpoint %s"
           trace_file ckpt)
  in
  let uninterrupted =
    run (Printf.sprintf "learn %s --bound 4 --shards 3" trace_file)
  in
  Alcotest.(check string) "resumed fold = uninterrupted fold"
    uninterrupted resumed;
  List.iter (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d checkpoints removed on success" i) false
        (Sys.file_exists (Printf.sprintf "%s.shard%d" ckpt i)
         || Sys.file_exists (Printf.sprintf "%s.shard%d.b1" ckpt i)))
    [ 0; 1; 2 ]

let test_learn_shards_metrics () =
  let m = tmp "gm_shard_metrics.json" in
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --shards 3 -j 2 --metrics %s"
            trace_file m));
  let text = read_file m in
  List.iter
    (fun needle ->
       Alcotest.(check bool) (needle ^ " recorded") true
         (contains ~needle:(Printf.sprintf "%S" needle) text))
    [ "shard.shards"; "shard.periods"; "shard.messages"; "shard.jobs";
      "shard.worker_us" ]

let test_learn_shards_conflicts () =
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "learn --shards 0 %s" trace_file));
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "learn --shards 2 --exact %s" trace_file));
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "learn --shards 2 --auto %s" trace_file))

let test_learn_auto_trajectory () =
  let out = run (Printf.sprintf "learn --auto %s" trace_file) in
  Alcotest.(check bool) "trajectory header" true
    (contains ~needle:"auto bound search:" out);
  Alcotest.(check bool) "bound 1 pass shown" true
    (contains ~needle:"bound 1:" out);
  Alcotest.(check bool) "selection reported" true
    (contains ~needle:"selected bound" out);
  Alcotest.(check bool) "model printed" true
    (contains ~needle:"least upper bound" out)

let test_watch_reports_drift () =
  let out = run (Printf.sprintf "watch %s --bound 1" trace_file) in
  Alcotest.(check bool) "first period reported" true
    (contains ~needle:"period 1: 1 hypothesis(es), converged" out);
  Alcotest.(check bool) "drift noticed" true
    (contains ~needle:"drift: previously converged model invalidated" out)

let test_watch_max_periods_stdin () =
  let out =
    run (Printf.sprintf "watch - --bound 1 --max-periods 2 < %s" trace_file)
  in
  Alcotest.(check bool) "stops at period 2" true
    (contains ~needle:"period 2:" out);
  Alcotest.(check bool) "never reaches period 3" false
    (contains ~needle:"period 3:" out)

let test_watch_follow_growing_file () =
  (* tail -f semantics: start on a half-written capture, append the rest
     while the watcher polls, and it must pick the new periods up. *)
  let growing = tmp "growing.trace" in
  let full = read_file trace_file in
  let cut =
    (* Split at the "period 3" line so 3 whole periods are visible. *)
    let needle = "period 3\n" in
    let rec find i =
      if i + String.length needle > String.length full then
        Alcotest.fail "trace too short for the follow test"
      else if String.sub full i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let oc = open_out growing in
  output_string oc (String.sub full 0 cut);
  close_out oc;
  let out_file = tmp "watch_follow.out" in
  let cmd =
    Printf.sprintf
      "( sleep 0.4; tail -c +%d %s >> %s ) & \
       %s watch %s --follow --poll 0.05 --bound 1 --max-periods 5 > %s 2>&1"
      (cut + 1) trace_file growing rtgen growing out_file
  in
  Alcotest.(check int) "watch -f exits once satisfied" 0 (Sys.command cmd);
  let out = read_file out_file in
  Alcotest.(check bool) "saw an early period" true
    (contains ~needle:"period 1:" out);
  Alcotest.(check bool) "saw appended periods" true
    (contains ~needle:"period 5:" out)

(* --- observability --- *)

let test_learn_metrics_and_report () =
  let metrics = tmp "gm_metrics.json" in
  let events = tmp "gm_events.json" in
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --metrics %s --trace-events %s \
                          --progress 2"
            trace_file metrics events));
  Alcotest.(check bool) "progress on stderr" true
    (contains ~needle:"progress:" (read_file (tmp "stderr")));
  let m = read_file metrics in
  Alcotest.(check bool) "schema stamped" true
    (contains ~needle:"\"schema\": \"rtgen-metrics\"" m);
  Alcotest.(check bool) "merge counter present" true
    (contains ~needle:"\"learn.merges\"" m);
  Alcotest.(check bool) "merges non-zero" false
    (contains ~needle:"\"learn.merges\": 0" m);
  Alcotest.(check bool) "weakenings non-zero" false
    (contains ~needle:"\"learn.weakenings\": 0" m);
  let ev = read_file events in
  Alcotest.(check bool) "complete events" true
    (contains ~needle:"\"ph\": \"X\"" ev);
  Alcotest.(check bool) "learn span present" true
    (contains ~needle:"\"learn.period\"" ev);
  let report = run (Printf.sprintf "report %s" metrics) in
  Alcotest.(check bool) "per-phase sections" true
    (contains ~needle:"== learn ==" report
     && contains ~needle:"== ingest ==" report);
  ignore (run ~expect_fail:true (Printf.sprintf "report %s" trace_file))

let test_metrics_deterministic_across_jobs () =
  let m1 = tmp "gm_metrics_j1.json" and m4 = tmp "gm_metrics_j4.json" in
  ignore
    (run (Printf.sprintf "learn %s --bound 4 -j 1 --metrics %s" trace_file m1));
  ignore
    (run (Printf.sprintf "learn %s --bound 4 -j 4 --metrics %s" trace_file m4));
  Alcotest.(check string) "counters identical across -j"
    (counters_section m1) (counters_section m4)

let test_metrics_deterministic_across_resume () =
  let ckpt = tmp "gm_metrics.ckpt" in
  if Sys.file_exists ckpt then Sys.remove ckpt;
  let m_full = tmp "gm_metrics_full.json" in
  let m_resumed = tmp "gm_metrics_resumed.json" in
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --metrics %s" trace_file m_full));
  ignore
    (run (Printf.sprintf
            "learn %s --bound 4 --checkpoint %s --stop-after 2 --metrics %s"
            trace_file ckpt (tmp "gm_metrics_partial.json")));
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --checkpoint %s --metrics %s"
            trace_file ckpt m_resumed));
  Alcotest.(check string) "counters identical after kill+resume"
    (counters_section m_full) (counters_section m_resumed)

let test_learn_profile_byte_equal () =
  let base = tmp "gm_prof_base.model" and prof = tmp "gm_prof.model" in
  let folded = tmp "gm_prof.folded" in
  ignore (run (Printf.sprintf "learn %s --bound 4 -o %s" trace_file base));
  let plain = run (Printf.sprintf "learn %s --bound 4" trace_file) in
  let profiled =
    run (Printf.sprintf "learn %s --bound 4 --profile --folded %s -o %s"
           trace_file folded prof)
  in
  (* profiling is observation only: model file and stdout are unchanged *)
  Alcotest.(check string) "profiled model byte-equal" (read_file base)
    (read_file prof);
  Alcotest.(check string) "profiled stdout unchanged" plain profiled;
  let table = read_file (tmp "stderr") in
  Alcotest.(check bool) "hotspot table on stderr" true
    (contains ~needle:"excl%" table && contains ~needle:"learn.period" table);
  let stacks = read_file folded in
  Alcotest.(check bool) "folded stacks mention the root span" true
    (contains ~needle:"learn.period" stacks);
  (* every folded line is "path <exclusive_ns>" *)
  List.iter
    (fun l ->
      if l <> "" then
        match String.rindex_opt l ' ' with
        | None -> Alcotest.failf "bad folded line: %S" l
        | Some i ->
          (match
             int_of_string_opt
               (String.sub l (i + 1) (String.length l - i - 1))
           with
           | Some ns when ns >= 0 -> ()
           | _ -> Alcotest.failf "bad folded value: %S" l))
    (String.split_on_char '\n' stacks)

let test_report_prometheus () =
  let metrics = tmp "gm_prom_metrics.json" in
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --metrics %s" trace_file metrics));
  let out = run (Printf.sprintf "report %s --prometheus" metrics) in
  Alcotest.(check bool) "counter family" true
    (contains ~needle:"# TYPE rtgen_learn_merges_total counter" out);
  Alcotest.(check bool) "cumulative histogram ends at +Inf" true
    (contains ~needle:"le=\"+Inf\"" out);
  Alcotest.(check bool) "span counters" true
    (contains ~needle:"rtgen_learn_period_spans_total" out);
  (* a trace file is not a metrics document *)
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "report %s --prometheus" trace_file));
  (* --prometheus already picks the query *)
  let code, _ =
    run_code (Printf.sprintf "report %s --prometheus --query status" metrics)
  in
  Alcotest.(check int) "conflicting --query exits 2" 2 code

let test_watch_flight_recorder () =
  let fl = tmp "watch_flight.json" in
  if Sys.file_exists fl then Sys.remove fl;
  ignore (run (Printf.sprintf "watch %s --bound 1 --flight %s" trace_file fl));
  let text = read_file fl in
  Alcotest.(check bool) "flight dump written" true
    (contains ~needle:"rtgen-flight" text);
  Alcotest.(check bool) "drift routed through the recorder" true
    (contains ~needle:"watch.drift" text)

let test_stats_recover () =
  (* On damaged input, --recover must surface the quarantine account on
     stdout (plain stats would just refuse the file). *)
  ignore (run ~expect_fail:true (Printf.sprintf "stats %s" corrupted_file));
  let out =
    run (Printf.sprintf "stats %s --recover --eps 60" corrupted_file)
  in
  Alcotest.(check bool) "quarantine section" true
    (contains ~needle:"== quarantine ==" out);
  Alcotest.(check bool) "confidence line" true
    (contains ~needle:"confidence:" out);
  Alcotest.(check bool) "quarantine not on stderr" false
    (contains ~needle:"quarantine:" (read_file (tmp "stderr")))

(* --- the serving daemon --- *)

let period_count file =
  let lines = String.split_on_char '\n' (read_file file) in
  List.length
    (List.filter
       (fun l -> String.length l >= 6 && String.sub l 0 6 = "period")
       lines)

(* A spool of [fleet] vehicle traces plus the reference models that
   [rtgen serve] must reproduce byte-for-byte. Returns the drain
   threshold: total periods minus one per stream, because a followed
   file (no EOF until drain) holds its final period back until the
   parser sees the end of input. *)
let make_fleet_spool name fleet =
  let spool = tmp (name ^ "_spool") and refs = tmp (name ^ "_refs") in
  ignore (Sys.command (Printf.sprintf "rm -rf %s %s" spool refs));
  ignore
    (run (Printf.sprintf "simulate --fleet %d --spool %s --periods 8 --seed 23"
            fleet spool));
  ignore (Sys.command (Printf.sprintf "mkdir -p %s" refs));
  let total = ref 0 in
  for i = 0 to fleet - 1 do
    let id = Printf.sprintf "vehicle%02d" i in
    let trace = Filename.concat spool (id ^ ".trace") in
    Alcotest.(check bool) (id ^ " trace exists") true (Sys.file_exists trace);
    total := !total + period_count trace;
    ignore
      (run (Printf.sprintf "learn --stream %s --mode recover --bound 4 -o %s"
              trace (Filename.concat refs (id ^ ".model"))))
  done;
  (spool, refs, !total - fleet)

let check_fleet_models name refs out fleet =
  for i = 0 to fleet - 1 do
    let id = Printf.sprintf "vehicle%02d" i in
    Alcotest.(check string)
      (Printf.sprintf "%s: %s model = learn --stream model" name id)
      (read_file (Filename.concat refs (id ^ ".model")))
      (read_file (Filename.concat out (id ^ ".model")))
  done

let test_serve_drain_equals_learn () =
  let fleet = 4 in
  let spool, refs, threshold = make_fleet_spool "serve_drain" fleet in
  let out = tmp "serve_drain_out" in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" out));
  ignore
    (run (Printf.sprintf "serve --spool %s --out %s --bound 4 \
                          --drain-after-total %d" spool out threshold));
  Alcotest.(check bool) "drain summary on stderr" true
    (contains ~needle:"drained:" (read_file (tmp "stderr")));
  check_fleet_models "drain" refs out fleet

let test_serve_kill_resume_byte_equal () =
  let fleet = 4 in
  let spool, refs, threshold = make_fleet_spool "serve_kill" fleet in
  let out = tmp "serve_kill_out" and ckpt = tmp "serve_kill_ckpt" in
  ignore (Sys.command (Printf.sprintf "rm -rf %s %s" out ckpt));
  (* two abrupt exits mid-learn (the deterministic SIGKILL), each run
     resuming the previous run's checkpoints, then a full drain *)
  List.iter
    (fun stop ->
      ignore
        (run (Printf.sprintf
                "serve --spool %s --out %s --checkpoint-dir %s \
                 --checkpoint-every 3 --bound 4 --stop-after-total %d"
                spool out ckpt stop)))
    [ threshold / 3; 2 * threshold / 3 ];
  Alcotest.(check bool) "no model after the kill" false
    (Sys.file_exists (Filename.concat out "vehicle00.model"));
  Alcotest.(check bool) "checkpoint survives the kill" true
    (Sys.file_exists (Filename.concat ckpt "vehicle00.ckpt"));
  ignore
    (run (Printf.sprintf
            "serve --spool %s --out %s --checkpoint-dir %s \
             --checkpoint-every 3 --bound 4 --drain-after-total %d"
            spool out ckpt threshold));
  check_fleet_models "kill+resume" refs out fleet

let test_serve_live_report_isolation () =
  (* A live daemon over a spool with one poisoned stream: the control
     socket must answer rtgen report while it runs, the bad stream must
     fail in the status report, and the good streams' models must still
     be byte-equal after a control-socket drain. *)
  let fleet = 2 in
  let spool, refs, _ = make_fleet_spool "serve_live" fleet in
  write_file (Filename.concat spool "poison.trace") "garbage\nnot a trace\n";
  let out = tmp "serve_live_out" and ctl = tmp "serve_live.sock" in
  let log = tmp "serve_live.log" in
  ignore (Sys.command (Printf.sprintf "rm -rf %s %s" out ctl));
  let code =
    Sys.command
      (Printf.sprintf
         "%s serve --spool %s --out %s --control %s --bound 4 \
          --max-restarts 1 --backoff 0.001 > %s 2>&1 &"
         rtgen spool out ctl log)
  in
  Alcotest.(check int) "daemon launched" 0 code;
  (* poll the control socket until the daemon answers *)
  let rec poll n =
    if n > 200 then Alcotest.failf "control socket never came up: %s" (read_file log)
    else
      let code, out = run_code (Printf.sprintf "report --socket %s --query status" ctl) in
      if code = 0 && contains ~needle:"rtgend status" out then out
      else begin
        ignore (Sys.command "sleep 0.05");
        poll (n + 1)
      end
  in
  let status = poll 0 in
  Alcotest.(check bool) "live status lists the good stream" true
    (contains ~needle:"stream vehicle00" status);
  Alcotest.(check bool) "live status lists the poisoned stream" true
    (contains ~needle:"stream poison" status);
  let metrics = run (Printf.sprintf "report --socket %s --query metrics" ctl) in
  Alcotest.(check bool) "live metrics render" true
    (contains ~needle:"daemon.streams_accepted" metrics);
  (* the flight recorder, prometheus exposition and top table are all
     served from the same live socket *)
  let flight = run (Printf.sprintf "report --socket %s --query flight" ctl) in
  Alcotest.(check bool) "live flight dump" true
    (contains ~needle:"rtgen-flight" flight
     && contains ~needle:"stream.admit" flight);
  let prom = run (Printf.sprintf "report --socket %s --prometheus" ctl) in
  Alcotest.(check bool) "live prometheus counters" true
    (contains ~needle:"# TYPE rtgen_daemon_streams_accepted_total counter"
       prom);
  Alcotest.(check bool) "per-stream labelled family" true
    (contains ~needle:"{stream=\"vehicle00\"}" prom);
  let topout = run (Printf.sprintf "top --socket %s --count 1 --no-clear" ctl) in
  Alcotest.(check bool) "top renders the fleet table" true
    (contains ~needle:"STREAM" topout && contains ~needle:"vehicle00" topout);
  Alcotest.(check bool) "top shows the checkpoint-age column" true
    (contains ~needle:"CKPT-AGE" topout);
  (* an unknown verb comes back as a single error line and exit 2 *)
  let code, bogus =
    run_code (Printf.sprintf "report --socket %s --query frobnicate" ctl)
  in
  Alcotest.(check int) "unknown query exits 2" 2 code;
  Alcotest.(check bool) "error line echoed" true
    (contains ~needle:"error:" bogus && contains ~needle:"frobnicate" bogus);
  (match String.split_on_char '\n' (String.trim bogus) with
   | [ _one_line ] -> ()
   | _ -> Alcotest.failf "error reply is not a single line: %S" bogus);
  ignore (run (Printf.sprintf "report --socket %s --query drain" ctl));
  let rec wait_done n =
    if n > 200 then Alcotest.failf "daemon never drained: %s" (read_file log)
    else if Sys.file_exists (Filename.concat out "vehicle01.model") then ()
    else begin
      ignore (Sys.command "sleep 0.05");
      wait_done (n + 1)
    end
  in
  wait_done 0;
  ignore (Sys.command "sleep 0.2");
  check_fleet_models "live" refs out fleet;
  Alcotest.(check bool) "poisoned stream yields no model" false
    (Sys.file_exists (Filename.concat out "poison.model"))

let test_serve_flag_validation () =
  ignore (run ~expect_fail:true "serve");
  ignore (run ~expect_fail:true "serve --spool /nonexistent/spool_dir");
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "report --socket %s" (tmp "no_such.sock")))

let test_inject_torn_write () =
  (* --torn-at emulates a writer dying mid-write: the output is exactly
     the first BYTE bytes of the same seeded corruption, and recover
     mode still learns from the remains. *)
  let full = run (Printf.sprintf "inject %s --rate 0.05 --seed 3" trace_file) in
  let torn_file = tmp "torn.trace" in
  let at = String.length full / 2 in
  ignore
    (run (Printf.sprintf "inject %s --rate 0.05 --seed 3 --torn-at %d -o %s"
            trace_file at torn_file));
  let torn = read_file torn_file in
  Alcotest.(check int) "torn length" at (String.length torn);
  Alcotest.(check string) "torn = prefix of the full write"
    (String.sub full 0 at) torn;
  Alcotest.(check bool) "tear reported" true
    (contains ~needle:"torn at byte" (read_file (tmp "stderr")));
  let out =
    run (Printf.sprintf "learn --stream %s --mode recover --eps 60 --bound 4"
           torn_file)
  in
  Alcotest.(check bool) "recover learns from the torn file" true
    (contains ~needle:"least upper bound" out);
  ignore
    (run ~expect_fail:true
       (Printf.sprintf "inject %s --torn-at -1" trace_file))

let test_vcd_import_roundtrip () =
  let dump = tmp "gm.vcd" in
  ignore
    (run (Printf.sprintf "vcd %s --period-len 100000 -o %s" trace_file dump));
  let back = run (Printf.sprintf "vcd --import %s --period-len 100000" dump) in
  Alcotest.(check string) "vcd import round trip" (read_file trace_file) back;
  ignore (run ~expect_fail:true (Printf.sprintf "vcd --import %s" trace_file))

(* --- the content-addressed store and fleet merge --- *)

let rm_rf path = ignore (Sys.command (Printf.sprintf "rm -rf %s" path))

(* Split a trace file into [k] files, distributing whole periods
   round-robin: any partition must fold back to the monolithic bound-1
   model, so an arbitrary-looking one is the stronger test. *)
let split_trace k src dsts =
  let starts_period l =
    String.length l >= 7 && String.sub l 0 7 = "period "
  in
  let lines = String.split_on_char '\n' (read_file src) in
  let rec header acc = function
    | l :: _ as rest when starts_period l -> (List.rev acc, rest)
    | l :: tl -> header (l :: acc) tl
    | [] -> (List.rev acc, [])
  in
  let hdr, rest = header [] lines in
  let blocks =
    List.fold_left
      (fun acc l ->
         if starts_period l then [ l ] :: acc
         else
           match acc with
           | [] -> acc (* stray trailing blank before any period *)
           | b :: tl -> (l :: b) :: tl)
      [] rest
    |> List.rev_map List.rev
  in
  List.iteri
    (fun i dst ->
       let mine =
         List.filteri (fun j _ -> j mod k = i) blocks |> List.concat
       in
       write_file dst (String.concat "\n" (hdr @ mine) ^ "\n"))
    dsts

let test_learn_store_inspect () =
  let store = tmp "inspect_store" in
  rm_rf store;
  ignore (run (Printf.sprintf "learn %s --bound 1 --store %s" trace_file store));
  Alcotest.(check bool) "commit announced" true
    (contains ~needle:"stored " (read_file (tmp "stderr")));
  let refs = run (Printf.sprintf "store refs %s" store) in
  Alcotest.(check bool) "model ref" true (contains ~needle:"model @1" refs);
  Alcotest.(check bool) "bound-1 companion ref" true
    (contains ~needle:"model/b1 @1" refs);
  Alcotest.(check bool) "answer-set ref" true
    (contains ~needle:"model/answers @1" refs);
  let log = run (Printf.sprintf "store log %s model" store) in
  Alcotest.(check bool) "kind recorded" true (contains ~needle:"kind=model" log);
  Alcotest.(check bool) "derived from the companion" true
    (contains ~needle:"parents=" log);
  (* The committed blob is the canonical model text behind a format
     header — byte-comparable with what `learn -o` wrote. *)
  let blob = run (Printf.sprintf "store cat %s//model@1" store) in
  Alcotest.(check string) "canonical model blob"
    ("rtgen-model v1\n" ^ read_file model_file)
    blob;
  (* Everything committed is referenced, so gc deletes nothing. *)
  let gc = run (Printf.sprintf "store gc %s" store) in
  Alcotest.(check bool) "nothing unreferenced" true
    (contains ~needle:"deleted 0" gc);
  (* Import a foreign file, then re-learn: generations are dense. *)
  let put = run (Printf.sprintf "store put %s imported %s" store model_file) in
  Alcotest.(check bool) "put names the generation" true
    (contains ~needle:"imported@1 " put);
  ignore (run (Printf.sprintf "learn %s --bound 1 --store %s" trace_file store));
  let refs = run (Printf.sprintf "store refs %s" store) in
  Alcotest.(check bool) "model at generation 2" true
    (contains ~needle:"model @2" refs)

let test_merge_fleet_byte_equal () =
  let mono = tmp "fleet_mono.model" in
  ignore (run (Printf.sprintf "learn %s --bound 1 -o %s" trace_file mono));
  List.iter
    (fun k ->
       let part i ext = tmp (Printf.sprintf "fleet%d_%d%s" k i ext) in
       let parts = List.init k (fun i -> part i ".trace") in
       split_trace k trace_file parts;
       let stores = List.init k (fun i -> part i ".store") in
       List.iter rm_rf stores;
       List.iteri
         (fun i p ->
            (* Mixed bounds across the fleet: the committed companion
               is bound-1 regardless, so the merge stays exact. *)
            ignore
              (run
                 (Printf.sprintf "learn %s --bound %d --store %s" p
                    (if i mod 2 = 0 then 1 else 3)
                    (List.nth stores i))))
         parts;
       let fleet = tmp (Printf.sprintf "fleet%d.model" k) in
       let fleet_store = tmp (Printf.sprintf "fleet%d_out.store" k) in
       rm_rf fleet_store;
       let out =
         run
           (Printf.sprintf "merge %s -o %s --store %s" (String.concat " " stores)
              fleet fleet_store)
       in
       Alcotest.(check bool)
         (Printf.sprintf "K=%d part count" k)
         true
         (contains ~needle:(Printf.sprintf "fleet model (%d part(s)" k) out);
       Alcotest.(check string)
         (Printf.sprintf "K=%d fleet model byte-equal to monolithic" k)
         (read_file mono) (read_file fleet);
       (* The committed fleet ref embeds the same canonical bytes. *)
       let blob = run (Printf.sprintf "store cat %s//fleet@latest" fleet_store) in
       Alcotest.(check string)
         (Printf.sprintf "K=%d committed fleet blob" k)
         ("rtgen-model v1\n" ^ read_file mono)
         blob)
    [ 1; 2; 4 ]

let test_store_checkpoint_resume () =
  let store = tmp "ckpt.store" in
  rm_rf store;
  let slot = store ^ "//ckpt/main" in
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --checkpoint %s --stop-after 2"
            trace_file slot));
  let refs = run (Printf.sprintf "store refs %s" store) in
  Alcotest.(check bool) "checkpoint ref committed" true
    (contains ~needle:"ckpt/main @" refs);
  (* Store-resident checkpoints audit like file ones. *)
  let code, _ = run_code (Printf.sprintf "check --checkpoint %s" slot) in
  Alcotest.(check int) "store checkpoint audits clean" 0 code;
  let resumed =
    run (Printf.sprintf "learn %s --bound 4 --checkpoint %s" trace_file slot)
  in
  Alcotest.(check bool) "resume announced" true
    (contains ~needle:"resumed" (read_file (tmp "stderr")));
  let uninterrupted = run (Printf.sprintf "learn %s --bound 4" trace_file) in
  Alcotest.(check string) "resumed model = uninterrupted model"
    uninterrupted resumed;
  (* Success discards the slot: the ref is gone, gc reaps the images. *)
  let refs = run (Printf.sprintf "store refs %s" store) in
  Alcotest.(check bool) "checkpoint ref discarded" false
    (contains ~needle:"ckpt/main" refs);
  let gc = run (Printf.sprintf "store gc %s" store) in
  Alcotest.(check bool) "orphaned images reaped" false
    (contains ~needle:"deleted 0" gc)

let test_store_addressed_check_query () =
  let store = tmp "addr.store" in
  rm_rf store;
  ignore (run (Printf.sprintf "learn %s --bound 1 --store %s" trace_file store));
  let code, _ = run_code (Printf.sprintf "check %s//model@1" store) in
  Alcotest.(check int) "store model audits clean" 0 code;
  let code, out =
    run_code
      (Printf.sprintf "query %s \"d(A,L) = -> & conjunction(Q)\" --model %s//model"
         trace_file store)
  in
  Alcotest.(check int) "query over a store address" 0 code;
  Alcotest.(check bool) "property holds" true (contains ~needle:"[ok]" out);
  (* A checkpoint blob is not a model: check refuses with guidance. *)
  ignore
    (run (Printf.sprintf "learn %s --bound 4 --checkpoint %s//c --stop-after 1"
            trace_file store));
  let code, _ = run_code (Printf.sprintf "check %s//c" store) in
  Alcotest.(check int) "checkpoint blob as MODEL exits 2" 2 code;
  Alcotest.(check bool) "points at --checkpoint" true
    (contains ~needle:"--checkpoint" (read_file (tmp "stderr")))

let test_store_merge_validation () =
  let store = tmp "empty.store" in
  rm_rf store;
  ignore (run (Printf.sprintf "store init %s" store));
  let code, _ = run_code (Printf.sprintf "merge %s" store) in
  Alcotest.(check int) "no companion parts exits 2" 2 code;
  let code, _ =
    run_code (Printf.sprintf "learn %s --exact --store %s" trace_file store)
  in
  Alcotest.(check int) "--exact conflicts with --store" 2 code;
  let code, _ =
    run_code (Printf.sprintf "learn %s --auto --store %s" trace_file store)
  in
  Alcotest.(check int) "--auto conflicts with --store" 2 code;
  let code, _ = run_code "store refs /nonexistent/store" in
  Alcotest.(check int) "missing store exits 2" 2 code

let () =
  Alcotest.run "cli"
    [
      ( "pipeline",
        [
          Alcotest.test_case "simulate" `Quick test_simulate;
          Alcotest.test_case "simulate --dot" `Quick test_simulate_dot;
          Alcotest.test_case "learn" `Quick test_learn;
          Alcotest.test_case "learn --dot" `Quick test_learn_dot;
          Alcotest.test_case "query holds" `Quick test_query_pass;
          Alcotest.test_case "query violated" `Quick test_query_fail;
          Alcotest.test_case "query unparseable" `Quick test_query_bad;
          Alcotest.test_case "analyze" `Quick test_analyze;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "vcd" `Quick test_vcd;
          Alcotest.test_case "gantt" `Quick test_gantt;
          Alcotest.test_case "example" `Quick test_example;
          Alcotest.test_case "anonymize" `Quick test_anonymize;
          Alcotest.test_case "missing file" `Quick test_missing_file;
        ] );
      ( "static analysis",
        [
          Alcotest.test_case "check learned model" `Quick
            test_model_check_learned;
          Alcotest.test_case "check broken model" `Quick
            test_model_check_broken;
          Alcotest.test_case "check answer set" `Quick
            test_model_check_answer_set;
          Alcotest.test_case "check missing input" `Quick
            test_model_check_missing;
          Alcotest.test_case "check checkpoint" `Quick
            test_model_check_checkpoint;
          Alcotest.test_case "check all learn paths" `Quick
            test_model_check_all_learn_paths;
          Alcotest.test_case "check sarif" `Quick test_model_check_sarif;
          Alcotest.test_case "rtlint exit codes" `Quick test_rtlint_cli;
          Alcotest.test_case "rtlint own tree clean" `Quick
            test_rtlint_own_tree_clean;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "inject" `Quick test_inject;
          Alcotest.test_case "strict vs recover learn" `Quick
            test_learn_strict_vs_recover;
          Alcotest.test_case "analyze confidence" `Quick
            test_analyze_recover_confidence;
          Alcotest.test_case "checkpoint kill-resume" `Quick
            test_checkpoint_kill_resume;
          Alcotest.test_case "checkpoint trace mismatch" `Quick
            test_checkpoint_wrong_trace_refused;
          Alcotest.test_case "vcd import round trip" `Quick
            test_vcd_import_roundtrip;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "learn --stream = batch" `Quick
            test_learn_stream_equals_batch;
          Alcotest.test_case "recover stream = batch" `Quick
            test_learn_stream_recover_equals_batch;
          Alcotest.test_case "stream metrics = batch" `Quick
            test_learn_stream_metrics_equal_batch;
          Alcotest.test_case "flag conflicts" `Quick test_learn_stream_conflicts;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "model byte-equal across K" `Quick
            test_learn_shards_equal_across_k;
          Alcotest.test_case "sharded stream = sharded batch" `Quick
            test_learn_shards_stream_equals_batch;
          Alcotest.test_case "sharded checkpoint kill-resume" `Quick
            test_learn_shards_checkpoint_resume;
          Alcotest.test_case "sharded metrics keys" `Quick
            test_learn_shards_metrics;
          Alcotest.test_case "sharded flag conflicts" `Quick
            test_learn_shards_conflicts;
          Alcotest.test_case "learn --auto trajectory" `Quick
            test_learn_auto_trajectory;
          Alcotest.test_case "watch drift" `Quick test_watch_reports_drift;
          Alcotest.test_case "watch --max-periods stdin" `Quick
            test_watch_max_periods_stdin;
          Alcotest.test_case "watch --follow growing file" `Quick
            test_watch_follow_growing_file;
        ] );
      ( "serving",
        [
          Alcotest.test_case "serve drain = learn --stream" `Quick
            test_serve_drain_equals_learn;
          Alcotest.test_case "serve kill twice + resume byte-equal" `Quick
            test_serve_kill_resume_byte_equal;
          Alcotest.test_case "live report + corrupt isolation" `Quick
            test_serve_live_report_isolation;
          Alcotest.test_case "serve flag validation" `Quick
            test_serve_flag_validation;
          Alcotest.test_case "inject --torn-at" `Quick test_inject_torn_write;
        ] );
      ( "store",
        [
          Alcotest.test_case "learn --store + plumbing" `Quick
            test_learn_store_inspect;
          Alcotest.test_case "fleet merge byte-equal across K" `Quick
            test_merge_fleet_byte_equal;
          Alcotest.test_case "store checkpoint kill-resume" `Quick
            test_store_checkpoint_resume;
          Alcotest.test_case "check/query over store addresses" `Quick
            test_store_addressed_check_query;
          Alcotest.test_case "merge and flag validation" `Quick
            test_store_merge_validation;
        ] );
      ( "observability",
        [
          Alcotest.test_case "learn --metrics + report" `Quick
            test_learn_metrics_and_report;
          Alcotest.test_case "counters deterministic across -j" `Quick
            test_metrics_deterministic_across_jobs;
          Alcotest.test_case "counters deterministic across resume" `Quick
            test_metrics_deterministic_across_resume;
          Alcotest.test_case "stats --recover" `Quick test_stats_recover;
          Alcotest.test_case "learn --profile leaves the model alone" `Quick
            test_learn_profile_byte_equal;
          Alcotest.test_case "report --prometheus" `Quick
            test_report_prometheus;
          Alcotest.test_case "watch --flight" `Quick
            test_watch_flight_recorder;
        ] );
    ]
