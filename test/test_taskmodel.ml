module Ts = Rt_task.Task_set
module D = Rt_task.Design
module G = Rt_task.Generator
open Test_support

(* --- Task_set --- *)

let test_ts_numbered () =
  let ts = Ts.numbered 3 in
  Alcotest.(check int) "size" 3 (Ts.size ts);
  Alcotest.(check string) "name" "t2" (Ts.name ts 1);
  Alcotest.(check (option int)) "index" (Some 2) (Ts.index ts "t3");
  Alcotest.(check (option int)) "missing" None (Ts.index ts "zz")

let test_ts_duplicates_rejected () =
  Alcotest.check_raises "dup"
    (Invalid_argument "Task_set.of_names: duplicate name a")
    (fun () -> ignore (Ts.of_names [| "a"; "a" |]))

let test_ts_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Task_set.of_names: empty")
    (fun () -> ignore (Ts.of_names [||]))

let test_ts_name_range () =
  let ts = Ts.numbered 2 in
  Alcotest.check_raises "range"
    (Invalid_argument "Task_set.name: index out of range")
    (fun () -> ignore (Ts.name ts 5))

let test_ts_names_copy () =
  let ts = Ts.numbered 2 in
  let names = Ts.names ts in
  names.(0) <- "mutated";
  Alcotest.(check string) "internal untouched" "t1" (Ts.name ts 0)

(* --- Design validation --- *)

let task ?(policy = D.Broadcast) ?(ecu = 0) ~priority name =
  { D.name; policy; ecu; priority; wcet = 10; offset = 0 }

let edge ?(tx = 3) ?(medium = D.Bus) src dst can_id =
  { D.src; dst; can_id; tx_time = tx; medium }

let two_tasks () = [| task "a" ~priority:1; task "b" ~priority:2 |]

let test_design_cycle_rejected () =
  Alcotest.check_raises "cycle"
    (Invalid_argument "Design.make: design graph has a cycle")
    (fun () ->
       ignore
         (D.make ~tasks:(two_tasks ())
            ~edges:[| edge 0 1 1; edge 1 0 2 |]
            ~period:1000))

let test_design_self_edge_rejected () =
  Alcotest.check_raises "self" (Invalid_argument "Design.make: self edge")
    (fun () ->
       ignore (D.make ~tasks:(two_tasks ()) ~edges:[| edge 0 0 1 |] ~period:1000))

let test_design_duplicate_can_id () =
  let tasks = [| task "a" ~priority:1; task "b" ~priority:2; task "c" ~priority:3 |] in
  Alcotest.check_raises "dup id"
    (Invalid_argument "Design.make: duplicate CAN id")
    (fun () ->
       ignore (D.make ~tasks ~edges:[| edge 0 1 7; edge 0 2 7 |] ~period:1000))

let test_design_duplicate_pair () =
  Alcotest.check_raises "dup pair"
    (Invalid_argument "Design.make: duplicate (src, dst) edge")
    (fun () ->
       ignore
         (D.make ~tasks:(two_tasks ()) ~edges:[| edge 0 1 1; edge 0 1 2 |]
            ~period:1000))

let test_design_bad_period () =
  Alcotest.check_raises "period"
    (Invalid_argument "Design.make: period must be positive")
    (fun () -> ignore (D.make ~tasks:(two_tasks ()) ~edges:[||] ~period:0))

let test_design_edge_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Design.make: edge endpoint out of range")
    (fun () ->
       ignore (D.make ~tasks:(two_tasks ()) ~edges:[| edge 0 5 1 |] ~period:1000))

(* --- Fig. 1 structure --- *)

let test_fig1_shape () =
  let d = fig1_design () in
  Alcotest.(check int) "4 tasks" 4 (D.size d);
  Alcotest.(check (list int)) "sources" [ 0 ] (D.sources d);
  Alcotest.(check int) "t1 out-degree" 2 (List.length (D.outgoing d 0));
  Alcotest.(check int) "t4 in-degree" 2 (List.length (D.incoming d 3));
  Alcotest.(check bool) "t1 disjunction" true (D.is_disjunction d 0);
  Alcotest.(check bool) "t2 not disjunction" false (D.is_disjunction d 1);
  Alcotest.(check bool) "t4 conjunction" true (D.is_conjunction d 3);
  Alcotest.(check bool) "t2 not conjunction" false (D.is_conjunction d 1)

let test_fig1_topological_order () =
  let d = fig1_design () in
  let order = D.topological_order d in
  let pos v =
    let rec go i = function
      | [] -> Alcotest.failf "task %d missing from topo order" v
      | x :: rest -> if x = v then i else go (i + 1) rest
    in
    go 0 order
  in
  Array.iter (fun (e : D.edge) ->
      Alcotest.(check bool) "src before dst" true (pos e.src < pos e.dst))
    d.edges

let test_fig1_outcomes () =
  let d = fig1_design () in
  match D.all_outcomes d ~limit:100 with
  | None -> Alcotest.fail "should enumerate"
  | Some outcomes ->
    (* t1 chooses a nonempty subset of {t2, t3}: three outcomes. *)
    Alcotest.(check int) "3 outcomes" 3 (List.length outcomes);
    List.iter (fun (o : D.outcome) ->
        Alcotest.(check bool) "t1 executes" true o.executed.(0);
        Alcotest.(check bool) "t4 executes" true o.executed.(3);
        Alcotest.(check bool) "t2 or t3" true (o.executed.(1) || o.executed.(2)))
      outcomes

let test_fig1_ground_truth () =
  let d = fig1_design () in
  match D.ground_truth d with
  | None -> Alcotest.fail "small design must have ground truth"
  | Some gt ->
    (* Hand-derived fixpoint over the three outcomes. *)
    let expected =
      df
        [
          [ p; fq; fq; p ];
          [ b; p; p; f ];
          [ b; p; p; f ];
          [ p; bq; bq; p ];
        ]
    in
    Alcotest.(check depfun) "ground truth" expected gt

let test_pipeline_ground_truth () =
  let d = pipeline_design 3 in
  match D.ground_truth d with
  | None -> Alcotest.fail "must enumerate"
  | Some gt ->
    let expected = df [ [ p; f; p ]; [ b; p; f ]; [ p; b; p ] ] in
    Alcotest.(check depfun) "chain" expected gt

let test_sample_outcome_valid () =
  let d = fig1_design () in
  let rng = Rt_util.Pcg32.of_int 5 in
  for _ = 1 to 50 do
    let o = D.sample_outcome d rng in
    Alcotest.(check bool) "t1" true o.executed.(0);
    List.iter (fun (e : D.edge) ->
        Alcotest.(check bool) "sender executed" true o.executed.(e.src);
        Alcotest.(check bool) "receiver executed" true o.executed.(e.dst))
      o.sent
  done

let test_choose_one_policy () =
  let tasks =
    [| task "a" ~policy:D.Choose_one ~priority:1;
       task "b" ~priority:2; task "c" ~priority:3 |]
  in
  let d = D.make ~tasks ~edges:[| edge 0 1 1; edge 0 2 2 |] ~period:1000 in
  (match D.all_outcomes d ~limit:10 with
   | Some outcomes -> Alcotest.(check int) "two outcomes" 2 (List.length outcomes)
   | None -> Alcotest.fail "enumerable");
  let rng = Rt_util.Pcg32.of_int 1 in
  for _ = 1 to 20 do
    let o = D.sample_outcome d rng in
    Alcotest.(check int) "exactly one edge" 1 (List.length o.sent)
  done

let test_all_outcomes_limit () =
  (* A wide Choose_any fan has 2^k - 1 outcomes; the limit must kick in. *)
  let k = 12 in
  let tasks =
    Array.init (k + 1) (fun i ->
        if i = 0 then task "src" ~policy:D.Choose_any ~priority:1
        else task (Printf.sprintf "s%d" i) ~priority:(i + 1))
  in
  let edges = Array.init k (fun i -> edge 0 (i + 1) (i + 1)) in
  let d = D.make ~tasks ~edges ~period:100_000 in
  Alcotest.(check bool) "exceeds limit" true (D.all_outcomes d ~limit:100 = None)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_to_dot () =
  let s = D.to_dot (fig1_design ()) in
  Alcotest.(check bool) "digraph" true
    (String.length s > 8 && String.sub s 0 7 = "digraph");
  Alcotest.(check bool) "has edge" true (contains ~needle:"t1 -> t2" s)

(* --- Generator --- *)

let test_generator_deterministic () =
  let d1 = G.generate G.default ~seed:3 in
  let d2 = G.generate G.default ~seed:3 in
  Alcotest.(check int) "same size" (D.size d1) (D.size d2);
  Alcotest.(check bool) "same dot" true (D.to_dot d1 = D.to_dot d2)

let test_generator_seeds_differ () =
  let d1 = G.generate G.default ~seed:1 in
  let d2 = G.generate G.default ~seed:2 in
  Alcotest.(check bool) "different" true (D.to_dot d1 <> D.to_dot d2)

let test_generator_every_nonsource_reachable () =
  for seed = 0 to 20 do
    let d = G.generate G.default ~seed in
    let srcs = D.sources d in
    for v = 0 to D.size d - 1 do
      if not (List.mem v srcs) then
        Alcotest.(check bool) "has predecessor" true (D.incoming d v <> [])
    done
  done

let test_generator_valid_designs () =
  (* Design.make validates; generation must never raise. *)
  for seed = 0 to 30 do
    ignore (G.generate G.default ~seed)
  done

let test_generator_sized () =
  let d = G.sized ~ntasks:18 ~seed:5 in
  Alcotest.(check bool) "roughly 18 tasks" true
    (D.size d >= 12 && D.size d <= 26)

let () =
  Alcotest.run "rt_task"
    [
      ( "task_set",
        [
          Alcotest.test_case "numbered" `Quick test_ts_numbered;
          Alcotest.test_case "duplicates" `Quick test_ts_duplicates_rejected;
          Alcotest.test_case "empty" `Quick test_ts_empty_rejected;
          Alcotest.test_case "name range" `Quick test_ts_name_range;
          Alcotest.test_case "names copy" `Quick test_ts_names_copy;
        ] );
      ( "design",
        [
          Alcotest.test_case "cycle rejected" `Quick test_design_cycle_rejected;
          Alcotest.test_case "self edge" `Quick test_design_self_edge_rejected;
          Alcotest.test_case "dup can id" `Quick test_design_duplicate_can_id;
          Alcotest.test_case "dup pair" `Quick test_design_duplicate_pair;
          Alcotest.test_case "bad period" `Quick test_design_bad_period;
          Alcotest.test_case "edge range" `Quick test_design_edge_range;
          Alcotest.test_case "fig1 shape" `Quick test_fig1_shape;
          Alcotest.test_case "fig1 topo order" `Quick test_fig1_topological_order;
          Alcotest.test_case "fig1 outcomes" `Quick test_fig1_outcomes;
          Alcotest.test_case "fig1 ground truth" `Quick test_fig1_ground_truth;
          Alcotest.test_case "pipeline ground truth" `Quick
            test_pipeline_ground_truth;
          Alcotest.test_case "sampled outcomes valid" `Quick
            test_sample_outcome_valid;
          Alcotest.test_case "choose_one" `Quick test_choose_one_policy;
          Alcotest.test_case "outcome limit" `Quick test_all_outcomes_limit;
          Alcotest.test_case "dot export" `Quick test_to_dot;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_generator_seeds_differ;
          Alcotest.test_case "reachability" `Quick
            test_generator_every_nonsource_reachable;
          Alcotest.test_case "valid designs" `Quick test_generator_valid_designs;
          Alcotest.test_case "sized" `Quick test_generator_sized;
        ] );
    ]
