(* The store contract (DESIGN.md §17): blobs are immutable,
   deduplicated and hash-verified on read; refs are dense 1-based
   generation ledgers whose metadata survives a round trip; a ref and
   its sub-namespace ("model" and "model/b1") coexist; gc deletes
   exactly the blobs no generation or parent mentions. Codec blobs are
   canonical: encode/decode is the identity on models, companions and
   answer sets (qcheck), and kind sniffing recognizes each header. The
   companion blob is the fleet-merge interchange, so the decisive test
   is end-to-end: per-partition engines serialized through the store
   and folded back must be byte-equal to the monolithic bound-1 run. *)

module Store = Rt_store.Store
module Codec = Rt_store.Codec
module Slot = Rt_store.Slot
module Df = Rt_lattice.Depfun
module S = Rt_shard.Shard
module Engine = Rt_engine.Engine
module Trace = Rt_trace.Trace

let tmpdir () =
  let d = Filename.temp_file "rtstore_test" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let ok_exn = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let err_exn = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error m -> m

let meta ?bound ?source ?(parents = []) ?(created_at = 0) kind =
  { Store.kind; bound; source; parents; created_at }

(* --- store basics ----------------------------------------------------- *)

let test_init_open () =
  let root = Filename.concat (tmpdir ()) "s" in
  let s = ok_exn (Store.init root) in
  Alcotest.(check string) "root" root (Store.root s);
  (* Re-init and open_ both land on the same store. *)
  ignore (ok_exn (Store.init root));
  ignore (ok_exn (Store.open_ root));
  (* A directory without a marker is not a store. *)
  let plain = tmpdir () in
  Alcotest.(check bool) "missing marker refused" true
    (Astring.String.is_infix ~affix:"store.meta" (err_exn (Store.open_ plain)))

let test_blob_roundtrip () =
  let s = ok_exn (Store.init (Filename.concat (tmpdir ()) "s")) in
  let body = "hello store\n" in
  let a1 = ok_exn (Store.put_blob s body) in
  let a2 = ok_exn (Store.put_blob s body) in
  Alcotest.(check string) "put is idempotent" a1 a2;
  Alcotest.(check string) "address is content hash" (Store.address_of body) a1;
  Alcotest.(check string) "read back" body (ok_exn (Store.read_blob s a1));
  Alcotest.(check bool) "has_blob" true (Store.has_blob s a1);
  Alcotest.(check bool) "no such blob" false
    (Store.has_blob s (Store.address_of "other"))

let test_blob_corruption_detected () =
  let s = ok_exn (Store.init (Filename.concat (tmpdir ()) "s")) in
  let addr = ok_exn (Store.put_blob s "precious bytes") in
  (* Flip the object's bytes on disk behind the store's back. *)
  let path =
    Filename.concat
      (Filename.concat
         (Filename.concat (Store.root s) "objects")
         (String.sub addr 0 2))
      (String.sub addr 2 30)
  in
  let oc = open_out_bin path in
  output_string oc "tampered bytes!";
  close_out oc;
  Alcotest.(check bool) "hash mismatch reported" true
    (Astring.String.is_infix ~affix:"hash mismatch"
       (err_exn (Store.read_blob s addr)))

let test_commit_generations_resolve () =
  let s = ok_exn (Store.init (Filename.concat (tmpdir ()) "s")) in
  let e1 =
    ok_exn
      (Store.commit s ~ref_:"m"
         ~meta:(meta ~bound:3 ~source:"trace a b" ~created_at:10 Store.Model)
         "blob one")
  in
  let e2 =
    ok_exn
      (Store.commit s ~ref_:"m"
         ~meta:
           (meta ~parents:[ e1.Store.address ] ~created_at:20 Store.Model)
         "blob two")
  in
  Alcotest.(check int) "gen 1" 1 e1.Store.gen;
  Alcotest.(check int) "gen 2" 2 e2.Store.gen;
  let gens = ok_exn (Store.generations s "m") in
  Alcotest.(check int) "two generations" 2 (List.length gens);
  (* Metadata round-trips through the ledger, including a source with
     spaces and the parents list. *)
  let g1 = List.nth gens 0 in
  Alcotest.(check (option int)) "bound" (Some 3) g1.Store.meta.Store.bound;
  Alcotest.(check (option string))
    "source keeps spaces" (Some "trace a b") g1.Store.meta.Store.source;
  Alcotest.(check int) "created_at" 10 g1.Store.meta.Store.created_at;
  let g2 = List.nth gens 1 in
  Alcotest.(check (list string))
    "parents" [ e1.Store.address ] g2.Store.meta.Store.parents;
  (* resolve: bare name, @latest, @N, and errors *)
  let latest = ok_exn (Store.resolve s "m") in
  Alcotest.(check int) "bare name is latest" 2 latest.Store.gen;
  Alcotest.(check int) "@latest" 2 (ok_exn (Store.resolve s "m@latest")).Store.gen;
  Alcotest.(check int) "@1" 1 (ok_exn (Store.resolve s "m@1")).Store.gen;
  Alcotest.(check bool) "@7 names latest" true
    (Astring.String.is_infix ~affix:"latest is 2" (err_exn (Store.resolve s "m@7")));
  ignore (err_exn (Store.resolve s "nope"))

let test_ref_subnamespace_coexists () =
  (* The regression that motivated the ".ref" ledger suffix: ref
     "model" and its sub-refs "model/b1", "model/answers" must coexist
     on the filesystem. *)
  let s = ok_exn (Store.init (Filename.concat (tmpdir ()) "s")) in
  let commit ref_ blob =
    ignore (ok_exn (Store.commit s ~ref_ ~meta:(meta Store.Model) blob))
  in
  commit "model" "the model";
  commit "model/b1" "the companion";
  commit "model/answers" "the answers";
  commit "model/b1/0" "part zero";
  Alcotest.(check (list string))
    "all refs listed"
    [ "model"; "model/answers"; "model/b1"; "model/b1/0" ]
    (Store.refs s);
  Alcotest.(check string) "parent readable" "the model"
    (ok_exn (Store.read_blob s (ok_exn (Store.resolve s "model")).Store.address));
  Alcotest.(check string) "child readable" "part zero"
    (ok_exn
       (Store.read_blob s (ok_exn (Store.resolve s "model/b1/0")).Store.address))

let test_ref_name_validation () =
  let s = ok_exn (Store.init (Filename.concat (tmpdir ()) "s")) in
  List.iter
    (fun bad ->
       Alcotest.(check bool)
         (Printf.sprintf "%S refused" bad)
         true
         (Astring.String.is_infix ~affix:"invalid ref name"
            (err_exn (Store.commit s ~ref_:bad ~meta:(meta Store.Model) "x"))))
    [ ""; "/abs"; "trail/"; "a//b"; "a/../b"; "."; "sp ace" ]

let test_gc () =
  let s = ok_exn (Store.init (Filename.concat (tmpdir ()) "s")) in
  let keep = ok_exn (Store.commit s ~ref_:"keep" ~meta:(meta Store.Model) "live") in
  (* A blob reachable only through a parents edge must survive gc. *)
  let parent_only = ok_exn (Store.put_blob s "parent-only") in
  ignore
    (ok_exn
       (Store.commit s ~ref_:"child"
          ~meta:(meta ~parents:[ parent_only ] Store.Model)
          "child"));
  ignore (ok_exn (Store.put_blob s "orphan one"));
  ignore (ok_exn (Store.commit s ~ref_:"gone" ~meta:(meta Store.Model) "orphan two"));
  ok_exn (Store.delete_ref s "gone");
  let kept, deleted = ok_exn (Store.gc s) in
  Alcotest.(check int) "kept live + child + parent-only" 3 kept;
  Alcotest.(check int) "deleted both orphans" 2 deleted;
  Alcotest.(check bool) "live blob intact" true (Store.has_blob s keep.Store.address);
  Alcotest.(check bool) "parent-only blob intact" true
    (Store.has_blob s parent_only);
  Alcotest.(check bool) "orphan gone" false
    (Store.has_blob s (Store.address_of "orphan one"))

let test_split_address () =
  Alcotest.(check (option (pair string string)))
    "dir//ref@2"
    (Some ("/tmp/s", "model@2"))
    (Store.split_address "/tmp/s//model@2");
  Alcotest.(check (option (pair string string)))
    "first // splits"
    (Some ("dir", "a//b"))
    (Store.split_address "dir//a//b");
  Alcotest.(check (option (pair string string)))
    "plain path" None
    (Store.split_address "out/model.txt");
  Alcotest.(check (option (pair string string)))
    "empty dir rejected" None
    (Store.split_address "//ref")

(* --- slots ------------------------------------------------------------ *)

let test_slot_file () =
  let path = Filename.concat (tmpdir ()) "image.bin" in
  let slot = ok_exn (Slot.of_string path) in
  (match slot with
   | Slot.File p -> Alcotest.(check string) "file slot" path p
   | Slot.Ref _ -> Alcotest.fail "expected a file slot");
  Alcotest.(check bool) "absent before save" false (Slot.exists slot);
  Slot.save slot "v1";
  Slot.save slot "v2";
  Alcotest.(check bool) "exists" true (Slot.exists slot);
  Alcotest.(check string) "latest image" "v2" (ok_exn (Slot.load slot));
  Slot.discard slot;
  Alcotest.(check bool) "discarded" false (Slot.exists slot);
  Slot.discard slot (* idempotent *)

let test_slot_ref () =
  let root = Filename.concat (tmpdir ()) "s" in
  let slot = ok_exn (Slot.of_string (root ^ "//ckpt/main")) in
  Alcotest.(check string) "describe round-trips"
    (root ^ "//ckpt/main") (Slot.describe slot);
  Alcotest.(check bool) "absent before save" false (Slot.exists slot);
  Slot.save ~source:"stream-a" ~created_at:4 slot "v1";
  Slot.save ~source:"stream-a" ~created_at:8 slot "v2";
  Alcotest.(check string) "latest generation" "v2" (ok_exn (Slot.load slot));
  let s = ok_exn (Store.open_ root) in
  let gens = ok_exn (Store.generations s "ckpt/main") in
  Alcotest.(check int) "two generations" 2 (List.length gens);
  Alcotest.(check bool) "kind defaults to checkpoint" true
    (List.for_all
       (fun e -> e.Store.meta.Store.kind = Store.Checkpoint)
       gens);
  Slot.discard slot;
  Alcotest.(check bool) "ref deleted" false (Slot.exists slot);
  (* Blobs linger until gc — that is the documented contract. *)
  let _, deleted = ok_exn (Store.gc s) in
  Alcotest.(check int) "gc reaps the images" 2 deleted

(* --- codec round trips ------------------------------------------------ *)

let all_vals =
  [ Rt_lattice.Depval.Par; Fwd; Bwd; Bi; Fwd_maybe; Bwd_maybe; Bi_maybe ]

let gen_df n : Df.t QCheck.Gen.t =
 fun g ->
  let d = Df.create n in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then Df.set d a b (QCheck.Gen.oneofl all_vals g)
    done
  done;
  d

let arb_df n = QCheck.make ~print:Df.to_string (gen_df n)

let gen_violations n : bool array array QCheck.Gen.t =
 fun g ->
  Array.init n (fun a ->
      Array.init n (fun b -> a <> b && QCheck.Gen.bool g))

let names n = Array.init n (fun i -> Printf.sprintf "t%d" (i + 1))

let qc_model_roundtrip =
  Test_support.qcheck_case "model blob round trip" ~count:100 (arb_df 4)
    (fun d ->
       let blob = Codec.model_to_blob ~names:(names 4) d in
       Codec.kind_of_blob blob = Some Store.Model
       &&
       match Codec.model_of_blob blob with
       | Ok (d', ns) -> Df.equal d d' && ns = names 4
       | Error _ -> false)

let qc_model_wrap_canonical =
  Test_support.qcheck_case "model_wrap = model_to_blob on rendered text"
    ~count:100 (arb_df 4)
    (fun d ->
       let text = Df.to_string ~names:(names 4) d ^ "\n" in
       Codec.model_wrap text = Codec.model_to_blob ~names:(names 4) d)

let qc_companion_roundtrip =
  Test_support.qcheck_case "companion blob round trip" ~count:100
    QCheck.(
      make
        ~print:(fun (d, _) -> Df.to_string d)
        (Gen.pair (gen_df 4) (gen_violations 4)))
    (fun (summary, violations) ->
       let blob =
         Codec.companion_to_blob ~names:(names 4) ~summary ~violations ()
       in
       Codec.kind_of_blob blob = Some Store.Companion
       &&
       match Codec.companion_of_blob blob with
       | Ok (s', v', ns) ->
         Df.equal summary s' && v' = violations && ns = names 4
       | Error _ -> false)

let qc_answerset_roundtrip =
  Test_support.qcheck_case "answerset blob round trip" ~count:60
    QCheck.(list_of_size (Gen.int_range 0 5) (arb_df 3))
    (fun models ->
       let blob = Codec.answerset_to_blob ~names:(names 3) models in
       Codec.kind_of_blob blob = Some Store.Answerset
       &&
       match Codec.answerset_of_blob blob with
       | Ok decoded ->
         List.length decoded = List.length models
         && List.for_all2 (fun d (d', _) -> Df.equal d d') models decoded
       | Error _ -> false)

let qc_blob_determinism =
  Test_support.qcheck_case "same model, same address" ~count:60 (arb_df 4)
    (fun d ->
       Store.address_of (Codec.model_to_blob d)
       = Store.address_of (Codec.model_to_blob (Df.copy d)))

let test_kind_sniffing () =
  Alcotest.(check (option string)) "checkpoint magic" (Some "checkpoint")
    (Option.map Store.kind_to_string
       (Codec.kind_of_blob (Codec.checkpoint_to_blob "RTGENCKP v3 ...")));
  Alcotest.(check (option string)) "garbage" None
    (Option.map Store.kind_to_string (Codec.kind_of_blob "what is this"))

let test_codec_rejects_foreign () =
  ignore (err_exn (Codec.model_of_blob "rtgen-companion v1\nnope"));
  ignore (err_exn (Codec.companion_of_blob "rtgen-model v1\nnope"));
  ignore (err_exn (Codec.answerset_of_blob "rtgen-model v1\nnope"));
  ignore
    (err_exn
       (Codec.companion_of_blob "rtgen-companion v1\nviolations 2\n01\n0\n%%\n"))

(* --- the fold over store-decoded companions --------------------------- *)

(* Algebraic shape of the exchange law at the fold level: folding the
   parts one by one equals folding their pre-joined summary with the
   union violation matrix. *)
let qc_fold_exchange =
  Test_support.qcheck_case "fold parts = fold of pre-joined part" ~count:100
    QCheck.(
      list_of_size
        (Gen.int_range 1 4)
        (make
           ~print:(fun (d, _) -> Df.to_string d)
           (Gen.pair (gen_df 3) (gen_violations 3))))
    (fun parts ->
       let arr =
         Array.of_list (List.map (fun (s, v) -> (Some s, v)) parts)
       in
       let joined =
         Df.lub_many (Array.of_list (List.map fst parts))
       in
       let union =
         Array.init 3 (fun a ->
             Array.init 3 (fun b ->
                 List.exists (fun (_, v) -> v.(a).(b)) parts))
       in
       match
         (S.fold_summaries arr, S.fold_summaries [| (Some joined, union) |])
       with
       | Some a, Some b -> Df.equal a b
       | None, None -> true
       | _ -> false)

let test_fold_inconsistent_part () =
  Alcotest.(check bool) "any None part poisons the fold" true
    (S.fold_summaries
       [| (Some (Df.create 2), Array.make_matrix 2 2 false);
          (None, Array.make_matrix 2 2 false) |]
     = None)

(* End-to-end interchange: engines over a partition, each serialized to
   a companion blob committed to a store, decoded back and folded —
   byte-equal to the monolithic bound-1 model. This is the property
   `rtgen merge` rides on. *)
let test_store_interchange_fold () =
  let trace =
    Test_support.simulate ~periods:12 ~seed:7 (Test_support.small_design 7)
  in
  let ntasks = Trace.task_count trace in
  let mono = Engine.create ~ntasks (Engine.Heuristic { bound = 1 }) in
  List.iter (Engine.feed mono) (Trace.periods trace);
  let expected = S.fold_engines [| mono |] in
  let k = 3 in
  let engines =
    Array.init k (fun _ ->
        Engine.create ~ntasks (Engine.Heuristic { bound = 1 }))
  in
  List.iteri
    (fun i p -> Engine.feed engines.(i mod k) p)
    (Trace.periods trace);
  let s = ok_exn (Store.init (Filename.concat (tmpdir ()) "s")) in
  (* Producer side: one companion blob per engine, committed under the
     sub-namespace `rtgen learn --store` uses. *)
  Array.iteri
    (fun i e ->
       let summary = Option.get (S.summary_of e) in
       let violations = Option.get (Engine.violations e) in
       let blob = Codec.companion_to_blob ~summary ~violations () in
       ignore
         (ok_exn
            (Store.commit s
               ~ref_:(Printf.sprintf "model/b1/%d" i)
               ~meta:
                 (meta ~bound:1 ~created_at:(Engine.periods_fed e)
                    Store.Companion)
               blob)))
    engines;
  (* Consumer side: decode every companion ref and fold. *)
  let parts =
    Store.refs s
    |> List.map (fun name ->
        let e = ok_exn (Store.resolve s name) in
        let blob = ok_exn (Store.read_blob s e.Store.address) in
        let summary, violations, _ = ok_exn (Codec.companion_of_blob blob) in
        (Some summary, violations))
    |> Array.of_list
  in
  Alcotest.(check int) "all parts decoded" k (Array.length parts);
  match (expected, S.fold_summaries parts) with
  | Some want, Some got ->
    Alcotest.(check string)
      "store-decoded fold byte-equal to monolithic"
      (Df.to_string want) (Df.to_string got)
  | _ -> Alcotest.fail "unexpected inconsistency"

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "init and open" `Quick test_init_open;
          Alcotest.test_case "blob round trip" `Quick test_blob_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_blob_corruption_detected;
          Alcotest.test_case "commit, generations, resolve" `Quick
            test_commit_generations_resolve;
          Alcotest.test_case "ref sub-namespace coexists" `Quick
            test_ref_subnamespace_coexists;
          Alcotest.test_case "ref name validation" `Quick
            test_ref_name_validation;
          Alcotest.test_case "gc keeps the reachable" `Quick test_gc;
          Alcotest.test_case "split_address" `Quick test_split_address;
        ] );
      ( "slot",
        [
          Alcotest.test_case "file slot" `Quick test_slot_file;
          Alcotest.test_case "store ref slot" `Quick test_slot_ref;
        ] );
      ( "codec",
        [
          qc_model_roundtrip;
          qc_model_wrap_canonical;
          qc_companion_roundtrip;
          qc_answerset_roundtrip;
          qc_blob_determinism;
          Alcotest.test_case "kind sniffing" `Quick test_kind_sniffing;
          Alcotest.test_case "foreign blobs rejected" `Quick
            test_codec_rejects_foreign;
        ] );
      ( "interchange",
        [
          qc_fold_exchange;
          Alcotest.test_case "inconsistent part poisons fold" `Quick
            test_fold_inconsistent_part;
          Alcotest.test_case "store-decoded fold = monolithic" `Quick
            test_store_interchange_fold;
        ] );
    ]
