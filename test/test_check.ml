(* The semantic checker (Rt_check): lattice-law self-audit, the lenient
   model reader, per-model and answer-set rules — each law-shaped rule
   cross-checked against an independent naive reference on random
   matrices — plus the broken-model fixtures with their exact rule
   ids. *)

module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun
module F = Rt_check.Finding
module Mc = Rt_check.Model_check

let has rule fs = List.exists (fun (f : F.t) -> f.rule = rule) fs

let rules_of fs =
  List.sort_uniq String.compare (List.map (fun (f : F.t) -> f.rule) fs)

let errors_of fs =
  List.filter (fun (f : F.t) -> f.severity = F.Error) fs

(* --- the lattice laws hold on this build --- *)

let test_laws () =
  Alcotest.(check (list string)) "no law violations" []
    (List.map (fun (f : F.t) -> f.message) (Mc.check_laws ()))

(* --- findings core --- *)

let test_rule_registry () =
  let ids = List.map (fun (r : F.rule_info) -> r.id) F.rules in
  Alcotest.(check int) "ids unique"
    (List.length (List.sort_uniq String.compare ids))
    (List.length ids);
  List.iter
    (fun id -> Alcotest.(check bool) id true (List.mem id ids))
    [ "RTL000"; "RTL001"; "RTL005"; "RTL999"; "RTC001"; "RTC101"; "RTC103";
      "RTC106"; "RTC201"; "RTC203" ];
  Alcotest.(check string) "lookup by id" "no-poly-compare"
    (F.rule_name "RTL002");
  Alcotest.(check string) "unknown id falls back" "XYZ999"
    (F.rule_name "XYZ999")

let test_exit_codes () =
  let module Ec = Rt_check.Exit_code in
  Alcotest.(check int) "ok wins nothing" Ec.findings
    (Ec.combine Ec.ok Ec.findings);
  Alcotest.(check int) "input error beats findings" Ec.input_error
    (Ec.combine Ec.findings Ec.input_error);
  Alcotest.(check int) "internal beats all" Ec.internal_error
    (Ec.combine Ec.internal_error Ec.input_error);
  let warning = F.v ~rule:"RTC102" ~severity:F.Warning "w" in
  let error = F.v ~rule:"RTC101" ~severity:F.Error "e" in
  Alcotest.(check int) "warnings exit 0" Ec.ok (F.exit_code [ warning ]);
  Alcotest.(check int) "errors exit 1" Ec.findings
    (F.exit_code [ warning; error ])

let test_renderers () =
  let f =
    F.v
      ~pos:(F.at ~file:"m.model" ~line:3 ~col:1)
      ~rule:"RTC101" ~severity:F.Error "diagonal broken"
  in
  let text = F.render ~tool:"t" ~format:F.Text [ f ] in
  Alcotest.(check bool) "text has position" true
    (Astring.String.is_infix ~affix:"m.model:3:1" text);
  let json = F.render ~tool:"t" ~format:F.Json_format [ f ] in
  Alcotest.(check bool) "json schema tag" true
    (Astring.String.is_infix ~affix:"\"schema\": \"rtgen-findings\"" json);
  let sarif = F.render ~tool:"t" ~format:F.Sarif [ f ] in
  Alcotest.(check bool) "sarif version" true
    (Astring.String.is_infix ~affix:"\"version\": \"2.1.0\"" sarif);
  Alcotest.(check bool) "sarif result ruleId" true
    (Astring.String.is_infix ~affix:"\"ruleId\": \"RTC101\"" sarif)

(* --- model reader --- *)

let test_parse_round_trip () =
  let d = Df.create 3 in
  Df.set d 0 1 Dv.Fwd;
  Df.set d 1 0 Dv.Bwd;
  Df.set d 1 2 Dv.Fwd_maybe;
  Df.set d 2 1 Dv.Bwd_maybe;
  let text = Df.to_string ~names:[| "A"; "B"; "C" |] d in
  match Mc.parse_model ~source:"<test>" text with
  | Error m -> Alcotest.fail m
  | Ok m ->
    (match Mc.to_depfun m with
     | None -> Alcotest.fail "diagonal lost in round trip"
     | Some d' -> Alcotest.(check bool) "round trip" true (Df.equal d d'))

let test_parse_rejects_garbage () =
  (match Mc.parse_model ~source:"<test>" "not a matrix\nat all\n" with
   | Ok _ -> Alcotest.fail "garbage accepted"
   | Error _ -> ());
  match Mc.parse_model ~source:"<test>" "" with
  | Ok _ -> Alcotest.fail "empty accepted"
  | Error m ->
    Alcotest.(check string) "empty message" "empty model file" m

(* --- random models: cycle rule vs. naive reference --- *)

let model_of_flat n flat =
  let cells =
    Array.init n (fun a ->
        Array.init n (fun b ->
            if a = b then Dv.Par else Dv.of_index flat.((a * n) + b)))
  in
  {
    Mc.source = "<random>";
    names = Array.init n (fun i -> Printf.sprintf "t%d" (i + 1));
    cells;
    row_lines = Array.make n 0;
  }

let gen_model =
  QCheck.Gen.(
    int_range 2 6 >>= fun n ->
    array_size (return (n * n)) (int_range 0 6) >>= fun flat ->
    return (model_of_flat n flat))

let print_model (m : Mc.model) =
  String.concat "\n"
    (Array.to_list
       (Array.map (fun row ->
            String.concat " "
              (Array.to_list (Array.map Dv.to_string row)))
          m.Mc.cells))

let arb_model = QCheck.make ~print:print_model gen_model

(* Reference: definite edges (a→b from →, b→a from ←; ↔ none), cycle
   by plain recursive DFS with a recursion stack. *)
let ref_has_cycle (m : Mc.model) =
  let n = Mc.size m in
  let adj = Array.make_matrix n n false in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then begin
        if Dv.equal m.Mc.cells.(a).(b) Dv.Fwd then adj.(a).(b) <- true;
        if Dv.equal m.Mc.cells.(a).(b) Dv.Bwd then adj.(b).(a) <- true
      end
    done
  done;
  let visited = Array.make n false and on_stack = Array.make n false in
  let found = ref false in
  let rec dfs v =
    visited.(v) <- true;
    on_stack.(v) <- true;
    for w = 0 to n - 1 do
      if adj.(v).(w) then
        if on_stack.(w) then found := true
        else if not visited.(w) then dfs w
    done;
    on_stack.(v) <- false
  in
  for v = 0 to n - 1 do
    if not visited.(v) then dfs v
  done;
  !found

let prop_cycle =
  QCheck.Test.make ~count:500 ~name:"RTC103 iff naive DFS finds a cycle"
    arb_model (fun m -> has "RTC103" (Mc.check_model m) = ref_has_cycle m)

(* --- random answer sets: minimality/duplicates vs. reference --- *)

let depfun_of_flat n flat =
  let d = Df.create n in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then Df.set d a b (Dv.of_index flat.((a * n) + b))
    done
  done;
  d

let gen_answer_set =
  QCheck.Gen.(
    int_range 2 4 >>= fun n ->
    list_size (int_range 2 4)
      (array_size (return (n * n)) (int_range 0 6))
    >>= fun flats -> return (n, flats))

let arb_answer_set =
  QCheck.make
    ~print:(fun (n, flats) ->
      Printf.sprintf "%d tasks, %d hypotheses" n (List.length flats))
    gen_answer_set

let prop_answer_set =
  QCheck.Test.make ~count:300
    ~name:"RTC201/RTC202 iff naive pairwise comparison says so"
    arb_answer_set (fun (n, flats) ->
      let ds = List.map (depfun_of_flat n) flats in
      let models = List.map (fun d -> Mc.model_of_depfun d) ds in
      let fs = Mc.check_answer_set models in
      let dup = ref false and nonmin = ref false in
      List.iteri (fun i di ->
          List.iteri (fun j dj ->
              if i < j && Df.equal di dj then dup := true;
              if i <> j && Df.leq di dj && not (Df.equal di dj) then
                nonmin := true)
            ds)
        ds;
      has "RTC201" fs = !dup && has "RTC202" fs = !nonmin)

(* --- model vs. trace (RTC105 / RTC106) --- *)

let paper_trace = lazy (Rt_case.Paper_example.trace ())

let learned_model () =
  let trace = Lazy.force paper_trace in
  let o = Rt_learn.Exact.run trace in
  let lub = Df.lub o.Rt_learn.Exact.hypotheses in
  let names = Rt_task.Task_set.names trace.Rt_trace.Trace.task_set in
  (trace, Mc.model_of_depfun ~names lub)

let test_learned_model_conforms () =
  let trace, m = learned_model () in
  Alcotest.(check (list string)) "no errors against its own trace" []
    (List.map (fun (f : F.t) -> f.rule)
       (errors_of (Mc.check_against_trace m trace)));
  Alcotest.(check (list string)) "no per-model errors" []
    (List.map (fun (f : F.t) -> f.rule) (errors_of (Mc.check_model m)))

let test_trace_conformance_violation () =
  let trace, m = learned_model () in
  (* Forge a definite claim some period contradicts: a pair (a, b)
     where a ran without b. *)
  let periods = Rt_trace.Trace.periods trace in
  let n = Mc.size m in
  let forged = ref false in
  (try
     List.iter (fun (p : Rt_trace.Period.t) ->
         for a = 0 to n - 1 do
           for b = 0 to n - 1 do
             if a <> b && p.executed.(a) && not p.executed.(b) then begin
               m.Mc.cells.(a).(b) <- Dv.Fwd;
               forged := true;
               raise Exit
             end
           done
         done)
       periods
   with Exit -> ());
  if not !forged then Alcotest.fail "no forgeable pair in the paper trace"
  else begin
    let fs = Mc.check_against_trace m trace in
    Alcotest.(check bool) "RTC106 raised" true (has "RTC106" fs)
  end

let test_task_set_mismatch () =
  let trace, _ = learned_model () in
  let small = Mc.model_of_depfun (Df.create 2) in
  Alcotest.(check bool) "RTC105 on size mismatch" true
    (has "RTC105" (Mc.check_against_trace small trace));
  let n = Rt_trace.Trace.task_count trace in
  let wrong_names =
    Mc.model_of_depfun
      ~names:(Array.init n (fun i -> Printf.sprintf "ghost%d" i))
      (Df.create n)
  in
  Alcotest.(check bool) "RTC105 on unknown task name" true
    (has "RTC105" (Mc.check_against_trace wrong_names trace))

(* --- checkpoints --- *)

let test_checkpoint_audit () =
  let trace = Lazy.force paper_trace in
  let st =
    Rt_learn.Heuristic.init ~bound:4
      ~ntasks:(Rt_trace.Trace.task_count trace) ()
  in
  List.iter (Rt_learn.Heuristic.feed st) (Rt_trace.Trace.periods trace);
  let data = Rt_learn.Heuristic.checkpoint st in
  (match Mc.check_checkpoint ~source:"<ck>" data with
   | Error (m, _) -> Alcotest.fail m
   | Ok fs ->
     Alcotest.(check (list string)) "healthy checkpoint has no errors" []
       (List.map (fun (f : F.t) -> f.rule) (errors_of fs)));
  (match Mc.check_checkpoint ~source:"<ck>" "garbage bytes" with
   | Ok _ -> Alcotest.fail "garbage checkpoint accepted"
   | Error (_, f) ->
     Alcotest.(check string) "unreadable checkpoint carries RTC203" "RTC203"
       f.F.rule);
  (* Integrity trailer: a truncated or bit-flipped checkpoint is caught
     by the checksum, as a clean error, never an exception. *)
  let truncated = String.sub data 0 (String.length data - 7) in
  (match Mc.check_checkpoint ~source:"<ck>" truncated with
   | Ok _ -> Alcotest.fail "truncated checkpoint accepted"
   | Error (_, f) ->
     Alcotest.(check string) "truncation is RTC203" "RTC203" f.F.rule);
  let flipped = Bytes.of_string data in
  Bytes.set flipped (String.length data / 2)
    (Char.chr (Char.code (Bytes.get flipped (String.length data / 2)) lxor 1));
  match Mc.check_checkpoint ~source:"<ck>" (Bytes.to_string flipped) with
  | Ok _ -> Alcotest.fail "bit-flipped checkpoint accepted"
  | Error (_, f) ->
    Alcotest.(check string) "bit flip is RTC203" "RTC203" f.F.rule

(* --- the broken-model fixtures carry their documented rule ids --- *)

let fixture name = Filename.concat "fixtures/models" name

let load_fixture name =
  match Mc.load_model (fixture name) with
  | Ok m -> m
  | Error m -> Alcotest.failf "%s: %s" name m

let test_fixtures () =
  let expect =
    [ ("ok.model", []);
      ("bad_diag.model", [ "RTC101" ]);
      ("bad_cycle.model", [ "RTC103" ]);
      ("bad_bi.model", [ "RTC102" ]);
      ("bad_mirror.model", [ "RTC104" ]) ]
  in
  List.iter (fun (name, rules) ->
      let m = load_fixture name in
      Alcotest.(check (list string)) name rules (rules_of (Mc.check_model m)))
    expect;
  Alcotest.(check (list string)) "duplicate pair" [ "RTC201" ]
    (rules_of
       (Mc.check_answer_set [ load_fixture "dup_a.model";
                              load_fixture "dup_b.model" ]));
  Alcotest.(check (list string)) "non-minimal pair" [ "RTC202" ]
    (rules_of
       (Mc.check_answer_set [ load_fixture "nonminimal_a.model";
                              load_fixture "nonminimal_b.model" ]));
  match Mc.load_model (fixture "garbage.model") with
  | Ok _ -> Alcotest.fail "garbage.model parsed"
  | Error _ -> ()

let () =
  Alcotest.run "check"
    [
      ( "laws",
        [
          Alcotest.test_case "lattice laws hold" `Quick test_laws;
          QCheck_alcotest.to_alcotest prop_cycle;
          QCheck_alcotest.to_alcotest prop_answer_set;
        ] );
      ( "findings",
        [
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "renderers" `Quick test_renderers;
        ] );
      ( "models",
        [
          Alcotest.test_case "parse round trip" `Quick test_parse_round_trip;
          Alcotest.test_case "garbage rejected" `Quick
            test_parse_rejects_garbage;
          Alcotest.test_case "learned model conforms" `Quick
            test_learned_model_conforms;
          Alcotest.test_case "forged definite flagged" `Quick
            test_trace_conformance_violation;
          Alcotest.test_case "task set mismatch" `Quick test_task_set_mismatch;
          Alcotest.test_case "checkpoint audit" `Quick test_checkpoint_audit;
          Alcotest.test_case "fixtures" `Quick test_fixtures;
        ] );
    ]
