(* The PR-1 rewrite contract: the array-backed {!Rt_learn.Workset} and
   the learner on top of it must be observably indistinguishable from the
   seed's sorted-list implementation (kept verbatim as
   {!Rt_learn.Reference}) — same dedup decisions, same eviction victims,
   same merge counts, same final D* — for every merge policy and bound.
   The perf work is only legitimate because these properties hold. *)

module W = Rt_learn.Workset
module Hy = Rt_learn.Hypothesis
module H = Rt_learn.Heuristic
module R = Rt_learn.Reference
module Df = Rt_lattice.Depfun

let hyp : Hy.t Alcotest.testable =
  Alcotest.testable (Hy.pp ?names:None) (fun a b -> Hy.compare_full a b = 0)

(* Distinct fixtures: each [generalize_message] step joins a Fwd and a
   Bwd cell, so the weight grows by 2 per fresh pair. *)
let mk n pairs =
  List.fold_left
    (fun h (s, r) ->
       if s = r then h
       else
         match Hy.generalize_message h ~sender:s ~receiver:r with
         | Some h' -> h'
         | None -> h)
    (Hy.bottom n) pairs

let h1 = mk 5 [ (0, 1) ]                    (* weight 2 *)
let h2 = mk 5 [ (0, 1); (2, 3) ]            (* weight 4 *)
let h3 = mk 5 [ (0, 1); (2, 3); (1, 4) ]    (* weight 6 *)

let filled () =
  let t = W.create ~bound:10 in
  List.iter (W.insert t) [ h2; h3; h1 ];
  t

let test_sorted_ascending () =
  let t = filled () in
  Alcotest.(check int) "length" 3 (W.length t);
  Alcotest.(check (list hyp)) "to_list lightest first" [ h1; h2; h3 ]
    (W.to_list t);
  Alcotest.(check (array hyp)) "to_array agrees" [| h1; h2; h3 |]
    (W.to_array t)

let test_dedup () =
  let t = filled () in
  Alcotest.(check bool) "mem" true (W.mem t h2);
  Alcotest.(check bool) "add duplicate refused" false (W.add t h2);
  Alcotest.(check int) "length unchanged" 3 (W.length t);
  Alcotest.check_raises "insert duplicate raises"
    (Invalid_argument "Workset.insert: duplicate hypothesis")
    (fun () -> W.insert t h2);
  Alcotest.(check bool) "fresh element accepted" true
    (W.add t (mk 5 [ (3, 4) ]))

let test_extract_lightest () =
  let t = filled () in
  let a, b = W.extract_pair t W.Lightest_pair in
  Alcotest.(check hyp) "lightest first" h1 a;
  Alcotest.(check hyp) "second lightest" h2 b;
  Alcotest.(check (list hyp)) "rest" [ h3 ] (W.to_list t);
  Alcotest.(check bool) "victims dropped from index" false (W.mem t h1)

let test_extract_heaviest () =
  let t = filled () in
  let a, b = W.extract_pair t W.Heaviest_pair in
  Alcotest.(check hyp) "heaviest first" h3 a;
  Alcotest.(check hyp) "second heaviest" h2 b;
  Alcotest.(check (list hyp)) "rest" [ h1 ] (W.to_list t)

let test_extract_first_last () =
  let t = filled () in
  let a, b = W.extract_pair t W.First_last in
  Alcotest.(check hyp) "lightest" h1 a;
  Alcotest.(check hyp) "heaviest" h3 b;
  Alcotest.(check (list hyp)) "rest" [ h2 ] (W.to_list t)

let test_extract_underflow () =
  let t = W.create ~bound:4 in
  W.insert t h1;
  Alcotest.check_raises "needs two elements"
    (Invalid_argument "Workset.extract_pair: fewer than 2 elements")
    (fun () -> ignore (W.extract_pair t W.Lightest_pair))

let test_clear_reuse () =
  let t = filled () in
  W.clear t;
  Alcotest.(check int) "emptied" 0 (W.length t);
  Alcotest.(check bool) "index emptied" false (W.mem t h1);
  W.insert t h3;
  Alcotest.(check (list hyp)) "reusable" [ h3 ] (W.to_list t)

let test_of_list () =
  let t = W.of_list ~bound:4 [ h3; h1; h2 ] in
  Alcotest.(check (list hyp)) "canonically sorted" [ h1; h2; h3 ] (W.to_list t);
  Alcotest.(check bool) "indexed" true (W.mem t h2)

(* Inserting any bag of generated hypotheses leaves exactly the
   first-occurrence representatives, in canonical order. *)
let qc_canonical_order =
  Test_support.qcheck_case "to_list = sort canonical (dedup kept)" ~count:200
    QCheck.(small_list (small_list (pair (int_range 0 4) (int_range 0 4))))
    (fun pairlists ->
       let hs = List.map (mk 5) pairlists in
       let t = W.create ~bound:1000 in
       let kept = List.filter (W.add t) hs in
       W.to_list t = List.sort W.canonical kept)

(* --- representation auto-selection (the measured crossover) --- *)

let test_crossover_selection () =
  Alcotest.(check bool) "crossover bound is positive" true
    (W.crossover_bound > 1);
  Alcotest.(check bool) "small bound -> seed list" true
    (W.uses_list_repr (W.create ~bound:1));
  Alcotest.(check bool) "just below crossover -> seed list" true
    (W.uses_list_repr (W.create ~bound:(W.crossover_bound - 1)));
  Alcotest.(check bool) "at crossover -> array" false
    (W.uses_list_repr (W.create ~bound:W.crossover_bound));
  Alcotest.(check bool) "large bound -> array" false
    (W.uses_list_repr (W.create ~bound:150));
  Alcotest.(check bool) "forced list stays list" true
    (W.uses_list_repr (W.create_with ~repr:`List ~bound:150));
  Alcotest.(check bool) "forced array stays array" false
    (W.uses_list_repr (W.create_with ~repr:`Array ~bound:1))

(* Both representations, driven through the same insert/extract
   sequence, must agree on every observation — the auto-selection can
   never change results, only constants. *)
let qc_repr_equivalence =
  Test_support.qcheck_case "list repr = array repr, op for op" ~count:100
    QCheck.(
      pair
        (small_list (small_list (pair (int_range 0 4) (int_range 0 4))))
        (int_range 0 2))
    (fun (pairlists, pol_ix) ->
       let policy =
         [| W.Lightest_pair; W.Heaviest_pair; W.First_last |].(pol_ix)
       in
       let drive repr =
         let t = W.create_with ~repr ~bound:1000 in
         let kept = List.map (fun h -> W.add t h) (List.map (mk 5) pairlists) in
         let extracted =
           if W.length t >= 2 then Some (W.extract_pair t policy) else None
         in
         (kept, extracted, W.to_list t, W.length t)
       in
       drive `List = drive `Array)

(* --- the headline property: learner equivalence with the seed --- *)

let policies = [| H.Lightest_pair; H.Heaviest_pair; H.First_last |]

let same_outcome (a : H.outcome) (b : H.outcome) =
  List.length a.hypotheses = List.length b.hypotheses
  && List.for_all2 Df.equal a.hypotheses b.hypotheses
  && a.stats = b.stats

let qc_equivalence =
  Test_support.qcheck_case
    "heuristic(workset) = reference(seed list): D*, victims, stats" ~count:60
    QCheck.(triple (int_range 0 11) (int_range 0 2) (int_range 1 24))
    (fun (seed, pol_ix, bound) ->
       let trace =
         Test_support.simulate ~periods:6 ~seed (Test_support.small_design seed)
       in
       let policy = policies.(pol_ix) in
       same_outcome
         (H.run ~policy ~bound trace)
         (R.run ~policy ~bound trace))

(* Fixed-seed smoke of the same property on every policy at a bound that
   forces heavy merging, so a qcheck distribution quirk can never skip
   the interesting regime. *)
let test_equivalence_all_policies () =
  let trace = Test_support.simulate ~periods:8 ~seed:5 (Test_support.small_design 5) in
  Array.iter (fun policy ->
      List.iter (fun bound ->
          Alcotest.(check bool) "same outcome" true
            (same_outcome
               (H.run ~policy ~bound trace)
               (R.run ~policy ~bound trace)))
        [ 1; 2; 3; 8; 64 ])
    policies

(* Parallel fan-out must be invisible in the result (DESIGN.md §9). *)
let test_parallel_fanout_deterministic () =
  let trace = Test_support.simulate ~periods:6 ~seed:7 (Test_support.small_design 7) in
  let serial = H.run ~bound:8 trace in
  let pool = Rt_util.Domain_pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Rt_util.Domain_pool.shutdown pool)
    (fun () ->
       let parallel = H.run ~pool ~bound:8 trace in
       Alcotest.(check bool) "pool run identical" true
         (same_outcome serial parallel))

let () =
  Alcotest.run "workset"
    [
      ( "structure",
        [
          Alcotest.test_case "sorted ascending" `Quick test_sorted_ascending;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "extract lightest pair" `Quick test_extract_lightest;
          Alcotest.test_case "extract heaviest pair" `Quick test_extract_heaviest;
          Alcotest.test_case "extract first+last" `Quick test_extract_first_last;
          Alcotest.test_case "extract underflow" `Quick test_extract_underflow;
          Alcotest.test_case "clear and reuse" `Quick test_clear_reuse;
          Alcotest.test_case "of_list" `Quick test_of_list;
          qc_canonical_order;
        ] );
      ( "representation",
        [
          Alcotest.test_case "crossover auto-selection" `Quick
            test_crossover_selection;
          qc_repr_equivalence;
        ] );
      ( "equivalence",
        [
          qc_equivalence;
          Alcotest.test_case "all policies, merge-heavy bounds" `Quick
            test_equivalence_all_policies;
          Alcotest.test_case "parallel fan-out deterministic" `Quick
            test_parallel_fanout_deterministic;
        ] );
    ]
