module Ts = Rt_task.Task_set
module E = Rt_trace.Event
module P = Rt_trace.Period
module C = Rt_trace.Candidates
module T = Rt_trace.Trace
module Io = Rt_trace.Trace_io
open Test_support

let ts4 = Ts.numbered 4

let ev time kind = { E.time; kind }

(* --- Event ordering --- *)

let test_event_order_by_time () =
  let a = ev 5 (E.Task_start 0) and b = ev 6 (E.Task_end 0) in
  Alcotest.(check bool) "a < b" true (E.compare a b < 0)

let test_event_causal_tiebreak () =
  (* At equal time: end < fall < rise < start. *)
  let es =
    [ ev 10 (E.Task_start 1); ev 10 (E.Msg_rise 7); ev 10 (E.Msg_fall 7);
      ev 10 (E.Task_end 0) ]
  in
  let sorted = List.sort E.compare es in
  let kinds = List.map (fun (e : E.t) -> e.kind) sorted in
  Alcotest.(check bool) "causal order" true
    (kinds = [ E.Task_end 0; E.Msg_fall 7; E.Msg_rise 7; E.Task_start 1 ])

let test_event_accessors () =
  Alcotest.(check (option int)) "task" (Some 2) (E.task (ev 0 (E.Task_start 2)));
  Alcotest.(check (option int)) "no task" None (E.task (ev 0 (E.Msg_rise 5)));
  Alcotest.(check (option int)) "msg" (Some 5) (E.msg_id (ev 0 (E.Msg_fall 5)));
  Alcotest.(check (option int)) "no msg" None (E.msg_id (ev 0 (E.Task_end 1)))

(* --- Period validation --- *)

let ok_events =
  [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0); ev 21 (E.Msg_rise 1);
    ev 24 (E.Msg_fall 1); ev 25 (E.Task_start 1); ev 35 (E.Task_end 1) ]

let test_period_ok () =
  let pd = P.make_exn ~index:0 ~task_set:ts4 ok_events in
  Alcotest.(check (list int)) "executed" [ 0; 1 ] (P.executed_tasks pd);
  Alcotest.(check int) "count" 2 (P.executed_count pd);
  Alcotest.(check int) "msgs" 1 (P.msg_count pd);
  Alcotest.(check int) "start" 10 pd.start_time.(0);
  Alcotest.(check int) "end" 35 pd.end_time.(1);
  Alcotest.(check int) "absent" (-1) pd.start_time.(2);
  let m = pd.msgs.(0) in
  Alcotest.(check int) "rise" 21 m.rise;
  Alcotest.(check int) "fall" 24 m.fall;
  Alcotest.(check int) "bus id" 1 m.bus_id

let expect_error err events =
  match P.make ~index:0 ~task_set:ts4 events with
  | Ok _ -> Alcotest.fail "expected validation error"
  | Error e ->
    Alcotest.(check string) "error kind" (P.string_of_error err)
      (P.string_of_error e)

let test_period_duplicate_start () =
  expect_error (P.Duplicate_start 0)
    [ ev 1 (E.Task_start 0); ev 2 (E.Task_end 0); ev 3 (E.Task_start 0);
      ev 4 (E.Task_end 0) ]

let test_period_end_without_start () =
  expect_error (P.End_without_start 1) [ ev 5 (E.Task_end 1) ]

let test_period_start_without_end () =
  expect_error (P.Start_without_end 1) [ ev 5 (E.Task_start 1) ]

let test_period_fall_without_rise () =
  expect_error (P.Fall_without_rise 9) [ ev 5 (E.Msg_fall 9) ]

let test_period_rise_without_fall () =
  expect_error (P.Rise_without_fall 9) [ ev 5 (E.Msg_rise 9) ]

let test_period_unknown_task () =
  expect_error (P.Unknown_task 12) [ ev 5 (E.Task_start 12) ]

let test_period_multiple_frames_same_id () =
  (* Two frames with the same bus id in one period pair sequentially. *)
  let pd =
    P.make_exn ~index:0 ~task_set:ts4
      [ ev 1 (E.Msg_rise 5); ev 2 (E.Msg_fall 5); ev 3 (E.Msg_rise 5);
        ev 4 (E.Msg_fall 5) ]
  in
  Alcotest.(check int) "2 occurrences" 2 (P.msg_count pd);
  Alcotest.(check int) "occ 0 rise" 1 pd.msgs.(0).rise;
  Alcotest.(check int) "occ 1 rise" 3 pd.msgs.(1).rise

let test_period_msgs_sorted_by_rise () =
  let pd =
    P.make_exn ~index:0 ~task_set:ts4
      [ ev 10 (E.Msg_rise 2); ev 12 (E.Msg_fall 2); ev 1 (E.Msg_rise 7);
        ev 3 (E.Msg_fall 7) ]
  in
  Alcotest.(check int) "first is earliest" 7 pd.msgs.(0).bus_id;
  Alcotest.(check int) "occ renumbered" 0 pd.msgs.(0).occ

(* --- Candidates (the paper's A_m computation) --- *)

(* Period 1 of Fig. 2: t1 [10,20], m1 (21,24), t2 [25,35], m2 (36,39),
   t4 [40,50]. *)
let fig2_period1 () =
  P.make_exn ~index:0 ~task_set:ts4
    [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0); ev 21 (E.Msg_rise 1);
      ev 24 (E.Msg_fall 1); ev 25 (E.Task_start 1); ev 35 (E.Task_end 1);
      ev 36 (E.Msg_rise 2); ev 39 (E.Msg_fall 2); ev 40 (E.Task_start 3);
      ev 50 (E.Task_end 3) ]

let test_candidates_m1 () =
  let pd = fig2_period1 () in
  let m1 = pd.msgs.(0) in
  Alcotest.(check (list int)) "senders m1" [ 0 ] (C.senders pd m1);
  Alcotest.(check (list int)) "receivers m1" [ 1; 3 ] (C.receivers pd m1);
  Alcotest.(check (list (pair int int))) "A_m1" [ (0, 1); (0, 3) ]
    (C.pairs pd m1)

let test_candidates_m2 () =
  let pd = fig2_period1 () in
  let m2 = pd.msgs.(1) in
  Alcotest.(check (list (pair int int))) "A_m2" [ (0, 3); (1, 3) ]
    (C.pairs pd m2)

let test_candidates_exclude_self () =
  let pd = fig2_period1 () in
  List.iter (fun (s, r) -> Alcotest.(check bool) "s<>r" true (s <> r))
    (List.concat_map (fun m -> C.pairs pd m) (Array.to_list pd.msgs))

let test_candidates_slack () =
  let pd = fig2_period1 () in
  let m1 = pd.msgs.(0) in
  (* With enough slack, t2 (ends at 35) becomes a plausible sender of m1
     (rise 21): 35 <= 21 + 14. *)
  Alcotest.(check (list int)) "slack senders" [ 0; 1 ] (C.senders ~slack:14 pd m1)

let test_pair_count () =
  let pd = fig2_period1 () in
  Alcotest.(check int) "total pairs" 4 (C.pair_count pd)

(* --- Trace --- *)

let test_trace_of_periods_checks_task_set () =
  let pd = fig2_period1 () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Trace.of_periods: period over a different task set")
    (fun () -> ignore (T.of_periods ~task_set:(Ts.numbered 3) [ pd ]))

let test_trace_segment () =
  let events =
    [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0);
      ev 110 (E.Task_start 0); ev 120 (E.Task_end 0);
      ev 130 (E.Task_start 1); ev 140 (E.Task_end 1) ]
  in
  match T.segment ~task_set:ts4 ~period_len:100 events with
  | Error _ -> Alcotest.fail "should segment"
  | Ok t ->
    Alcotest.(check int) "2 periods" 2 (T.period_count t);
    Alcotest.(check int) "events" 6 (T.total_events t)

let test_trace_segment_boundary_violation () =
  (* A task spanning the period boundary is a validation error. *)
  let events = [ ev 90 (E.Task_start 0); ev 110 (E.Task_end 0) ] in
  match T.segment ~task_set:ts4 ~period_len:100 events with
  | Ok _ -> Alcotest.fail "must reject"
  | Error errs -> Alcotest.(check int) "two bad periods" 2 (List.length errs)

let test_trace_stats () =
  let t = fig2_trace () in
  Alcotest.(check int) "periods" 3 (T.period_count t);
  Alcotest.(check int) "tasks" 4 (T.task_count t);
  Alcotest.(check int) "messages" 8 (T.total_messages t);
  Alcotest.(check int) "events" 36 (T.total_events t)

let test_executed_matrix () =
  let t = fig2_trace () in
  let m = T.executed_matrix t in
  Alcotest.(check bool) "p0: t1 t2 t4" true
    (m.(0).(0) && m.(0).(1) && not m.(0).(2) && m.(0).(3));
  Alcotest.(check bool) "p1: t1 t3 t4" true
    (m.(1).(0) && not m.(1).(1) && m.(1).(2) && m.(1).(3));
  Alcotest.(check bool) "p2: all" true
    (m.(2).(0) && m.(2).(1) && m.(2).(2) && m.(2).(3))

(* --- Trace_io --- *)

let test_io_round_trip () =
  let t = fig2_trace () in
  let s = Io.to_string t in
  let t' = Io.of_string_exn s in
  Alcotest.(check string) "round trip" s (Io.to_string t')

let test_io_round_trip_simulated () =
  let d = small_design 11 in
  let t = simulate ~periods:6 d in
  let s = Io.to_string t in
  Alcotest.(check string) "simulated round trip" s
    (Io.to_string (Io.of_string_exn s))

let expect_parse_error text =
  match Io.of_string text with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ()

let test_io_missing_tasks () = expect_parse_error "period 0\n1 start t1\n"

let test_io_unknown_task () =
  expect_parse_error "tasks t1\nperiod 0\n1 start zz\n2 end zz\n"

let test_io_bad_timestamp () =
  expect_parse_error "tasks t1\nperiod 0\nxx start t1\n"

let test_io_bad_verb () =
  expect_parse_error "tasks t1\nperiod 0\n1 jump t1\n"

let test_io_event_before_period () =
  expect_parse_error "tasks t1\n1 start t1\n"

let test_io_duplicate_tasks_line () =
  expect_parse_error "tasks t1\ntasks t2\n"

let test_io_comments_and_blanks () =
  let t =
    Io.of_string_exn
      "# comment\n\ntasks t1\n# another\nperiod 0\n1 start t1\n2 end t1\n"
  in
  Alcotest.(check int) "parsed" 1 (T.period_count t)

let test_io_error_line_numbers () =
  match Io.of_string "tasks t1\nperiod 0\nbogus line here\n" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check int) "line 3" 3 e.line

let test_io_save_load () =
  let t = fig2_trace () in
  let path = Filename.temp_file "rtgen" ".trace" in
  Io.save path t;
  (match Io.load path with
   | Ok (t', _) ->
     Alcotest.(check string) "file round trip" (Io.to_string t) (Io.to_string t')
   | Error _ -> Alcotest.fail "load failed");
  Sys.remove path

(* --- Candidate windows --- *)

let test_candidates_window_narrows () =
  let pd = fig2_period1 () in
  let m2 = pd.msgs.(1) in
  (* m2: rise 36 fall 39; senders end<=36: {t1 (ended 20), t2 (ended 35)}.
     With a 10us freshness window only t2 qualifies. *)
  Alcotest.(check (list int)) "windowed senders" [ 1 ]
    (C.senders ~window:10 pd m2);
  (* receivers start>=39: {t4 (40)}; within 5us after the fall. *)
  Alcotest.(check (list int)) "windowed receivers" [ 3 ]
    (C.receivers ~window:5 pd m2)

let test_candidates_window_monotone () =
  let pd = fig2_period1 () in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  Array.iter (fun m ->
      let unbounded = C.pairs pd m in
      List.iter (fun w ->
          let narrow = C.pairs ~window:w pd m in
          Alcotest.(check bool) "narrow subset of unbounded" true
            (subset narrow unbounded))
        [ 1; 5; 20; 100 ];
      Alcotest.(check bool) "huge window = unbounded" true
        (C.pairs ~window:1_000_000 pd m = unbounded))
    pd.msgs

(* --- Period inference --- *)

(* Flatten a simulated trace into an absolute-time event stream, laying
   periods out every [period_len] microseconds — what a real logging
   device would capture. *)
let flatten ~period_len trace =
  List.concat_map (fun (pd : P.t) ->
      List.map (fun (e : E.t) -> { e with E.time = e.time + (pd.index * period_len) })
        pd.events)
    (Rt_trace.Trace.periods trace)

let test_infer_period_exact () =
  let d = small_design 7 in
  let trace = simulate ~periods:10 d in
  let events = flatten ~period_len:10_000 trace in
  match T.infer_period events with
  | None -> Alcotest.fail "should infer"
  | Some p ->
    (* Jitter shifts individual starts but the median gap stays within
       the release jitter of the true period. *)
    Alcotest.(check bool) "close to 10000" true (abs (p - 10_000) < 200)

let test_infer_period_insufficient () =
  Alcotest.(check (option int)) "no recurrence" None
    (T.infer_period [ ev 1 (E.Task_start 0); ev 2 (E.Task_end 0) ])

let test_infer_period_skip_periods () =
  (* A task that skips a period leaves one double-length gap; the median
     over the regular gaps discards it. Starts in periods 0,1,2,4,5,6. *)
  let events =
    List.concat_map (fun k ->
        [ ev ((k * 1000) + 10) (E.Task_start 0);
          ev ((k * 1000) + 20) (E.Task_end 0) ])
      [ 0; 1; 2; 4; 5; 6 ]
  in
  Alcotest.(check (option int)) "skip-period gaps" (Some 1000)
    (T.infer_period events)

let test_infer_period_heavy_jitter () =
  (* Release jitter shifts every start, but the median gap stays within
     the jitter amplitude of the true period. *)
  let offsets = [ 0; 180; -150; 120; -90; 60 ] in
  let events =
    List.concat (List.mapi (fun k off ->
        [ ev ((k * 10_000) + 500 + off) (E.Task_start 0);
          ev ((k * 10_000) + 600 + off) (E.Task_end 0) ])
        offsets)
  in
  match T.infer_period events with
  | None -> Alcotest.fail "should infer under jitter"
  | Some p ->
    Alcotest.(check bool) "within jitter of 10000" true
      (abs (p - 10_000) <= 200)

let test_infer_period_no_task_recurs_enough () =
  (* Two tasks with two activations each: nobody recurs three times, so
     there is no defensible estimate. *)
  let events =
    [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0);
      ev 30 (E.Task_start 1); ev 40 (E.Task_end 1);
      ev 1010 (E.Task_start 0); ev 1020 (E.Task_end 0);
      ev 1030 (E.Task_start 1); ev 1040 (E.Task_end 1) ]
  in
  Alcotest.(check (option int)) "two activations are not recurrence" None
    (T.infer_period events);
  (* Message traffic alone never yields a period either. *)
  Alcotest.(check (option int)) "messages only" None
    (T.infer_period
       [ ev 1 (E.Msg_rise 5); ev 2 (E.Msg_fall 5);
         ev 101 (E.Msg_rise 5); ev 102 (E.Msg_fall 5);
         ev 201 (E.Msg_rise 5); ev 202 (E.Msg_fall 5) ])

let test_segment_auto_round_trip () =
  let d = small_design 7 in
  let trace = simulate ~periods:10 d in
  let events = flatten ~period_len:10_000 trace in
  match T.segment_auto ~task_set:trace.task_set events with
  | Error _ -> Alcotest.fail "auto segmentation failed"
  | Ok (t, inferred) ->
    Alcotest.(check bool) "period close" true (abs (inferred - 10_000) < 200);
    Alcotest.(check int) "10 periods recovered" 10 (T.period_count t);
    (* Same per-period executed sets as the original. *)
    List.iter2 (fun (a : P.t) (b : P.t) ->
        Alcotest.(check (list int)) "same executions" (P.executed_tasks a)
          (P.executed_tasks b))
      (T.periods trace) (T.periods t)

(* --- Streaming segmentation --- *)

module Es = Rt_trace.Event_source
module Seg = Rt_trace.Segmenter

let drain_segmenter seg =
  let rec go acc =
    match Seg.next seg with
    | None -> List.rev acc
    | Some item -> go (item :: acc)
  in
  go []

(* A message whose edges straddle the period boundary at t=100: period 0
   sees a dangling rise, period 1 a dangling fall. *)
let straddle_events =
  [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0);
    ev 90 (E.Msg_rise 5); ev 110 (E.Msg_fall 5);
    ev 120 (E.Task_start 1); ev 130 (E.Task_end 1) ]

let test_event_source_latches () =
  let calls = ref 0 in
  let src =
    Es.of_fun (fun () ->
        incr calls;
        if !calls <= 2 then Some (ev !calls (E.Task_start 0)) else None)
  in
  Alcotest.(check bool) "yields" true (Es.next src <> None);
  Alcotest.(check bool) "yields again" true (Es.next src <> None);
  Alcotest.(check bool) "exhausted" true (Es.next src = None);
  Alcotest.(check bool) "stays exhausted" true (Es.next src = None);
  (* The generator is never called past its first None. *)
  Alcotest.(check int) "no re-entry" 3 !calls;
  Alcotest.(check int) "served" 2 (Es.count src)

let test_segmenter_straddle_matches_batch_strict () =
  let batch_errs =
    match T.segment ~task_set:ts4 ~period_len:100 straddle_events with
    | Ok _ -> Alcotest.fail "batch must reject the straddling message"
    | Error errs ->
      List.map (fun (e : T.segment_error) ->
          (e.period_index, P.string_of_error e.error))
        errs
  in
  let seg =
    Seg.create ~task_set:ts4 ~period_len:100 (Es.of_list straddle_events)
  in
  let stream_errs =
    List.filter_map (function
        | `Invalid (e : Seg.segment_error) ->
          Some (e.period_index, P.string_of_error e.error)
        | `Period _ -> None)
      (drain_segmenter seg)
  in
  Alcotest.(check (list (pair int string)))
    "streaming errors identical to batch" batch_errs stream_errs

let test_segmenter_straddle_matches_batch_recover () =
  let batch_trace, batch_q =
    T.segment_recover ~task_set:ts4 ~period_len:100 straddle_events
  in
  let seg =
    Seg.create ~mode:`Recover ~task_set:ts4 ~period_len:100
      (Es.of_list straddle_events)
  in
  let streamed =
    List.filter_map (function
        | `Period p -> Some p
        | `Invalid _ -> Alcotest.fail "recover mode never yields `Invalid")
      (drain_segmenter seg)
  in
  let q = Seg.quarantine seg in
  Alcotest.(check int) "same period count"
    (T.period_count batch_trace) (List.length streamed);
  List.iter2 (fun (a : P.t) (b : P.t) ->
      Alcotest.(check (list int)) "same executions"
        (P.executed_tasks a) (P.executed_tasks b);
      Alcotest.(check int) "same frames" (P.msg_count a) (P.msg_count b))
    (T.periods batch_trace) streamed;
  Alcotest.(check int) "same kept" batch_q.Rt_trace.Quarantine.kept
    q.Rt_trace.Quarantine.kept;
  Alcotest.(check (list (pair int (list string)))) "same repairs"
    (List.map (fun (r : Rt_trace.Quarantine.period_repair) ->
         (r.period_index, r.fixes))
       batch_q.repaired)
    (List.map (fun (r : Rt_trace.Quarantine.period_repair) ->
         (r.period_index, r.fixes))
       q.repaired);
  Alcotest.(check (list (pair int string))) "same drops"
    (List.map (fun (d : Rt_trace.Quarantine.period_drop) ->
         (d.period_index, d.reason))
       batch_q.dropped)
    (List.map (fun (d : Rt_trace.Quarantine.period_drop) ->
         (d.period_index, d.reason))
       q.dropped)

let test_segmenter_bounded_memory () =
  (* 500 periods, 6 events each: the high-water mark must be one period's
     worth of events no matter how long the stream runs. *)
  let n = 500 in
  let k = ref (-1) in
  let src =
    Es.of_fun (fun () ->
        incr k;
        let period = !k / 6 and slot = !k mod 6 in
        if period >= n then None
        else
          let base = period * 100 in
          Some
            (match slot with
             | 0 -> ev (base + 10) (E.Task_start 0)
             | 1 -> ev (base + 20) (E.Task_end 0)
             | 2 -> ev (base + 30) (E.Msg_rise 5)
             | 3 -> ev (base + 40) (E.Msg_fall 5)
             | 4 -> ev (base + 50) (E.Task_start 1)
             | _ -> ev (base + 60) (E.Task_end 1)))
  in
  let seg = Seg.create ~task_set:ts4 ~period_len:100 src in
  let items = drain_segmenter seg in
  Alcotest.(check int) "all periods" n (List.length items);
  Alcotest.(check int) "periods seen" n (Seg.periods_seen seg);
  Alcotest.(check int) "memory bounded by one period" 6 (Seg.max_buffered seg)

let test_segmenter_rejects_out_of_order () =
  let seg =
    Seg.create ~task_set:ts4 ~period_len:100
      (Es.of_list
         [ ev 150 (E.Task_start 0); ev 160 (E.Task_end 0);
           ev 10 (E.Task_start 1); ev 20 (E.Task_end 1) ])
  in
  Alcotest.check_raises "time travel rejected"
    (Invalid_argument
       "Segmenter.next: event at time 10 belongs to period 0 but period 1 \
        is already being assembled (stream not in nondecreasing period \
        order)")
    (fun () -> ignore (drain_segmenter seg))

let test_segment_wrapper_unordered_input () =
  (* The batch wrapper must keep accepting events in arbitrary order (the
     seed behaviour), sorting by period before the segmenter sees them. *)
  let shuffled =
    [ ev 130 (E.Task_start 1); ev 10 (E.Task_start 0); ev 140 (E.Task_end 1);
      ev 20 (E.Task_end 0); ev 110 (E.Task_start 0); ev 120 (E.Task_end 0) ]
  in
  match T.segment ~task_set:ts4 ~period_len:100 shuffled with
  | Error _ -> Alcotest.fail "should segment"
  | Ok t ->
    Alcotest.(check int) "2 periods" 2 (T.period_count t);
    Alcotest.(check int) "events" 6 (T.total_events t)

(* --- Gantt --- *)

let export_total_on_random_traces =
  Test_support.qcheck_case "vcd/gantt/stats total on random traces" ~count:25
    (QCheck.int_range 0 5_000)
    (fun seed ->
       let d = small_design (seed mod 30) in
       let trace = simulate ~periods:4 ~seed d in
       let vcd = Rt_trace.Vcd.to_string trace in
       let stats = Rt_trace.Stats.to_string trace in
       let gantts =
         List.map Rt_trace.Gantt.to_svg (Rt_trace.Trace.periods trace)
       in
       String.length vcd > 0 && String.length stats > 0
       && List.for_all (fun s -> String.length s > 0) gantts)

let test_gantt_svg () =
  let pd = fig2_period1 () in
  let svg = Rt_trace.Gantt.to_svg pd in
  let count needle =
    let n = String.length needle and h = String.length svg in
    let rec go i acc =
      if i + n > h then acc
      else if String.sub svg i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check bool) "svg root" true (count "<svg" = 1);
  Alcotest.(check int) "task bars" 3 (count "class=\"task\"");
  Alcotest.(check int) "frame bars" 2 (count "class=\"frame\"");
  Alcotest.(check bool) "closed" true (count "</svg>" = 1)

(* --- Stats --- *)

let test_stats_fig2 () =
  let s = Rt_trace.Stats.of_trace (fig2_trace ()) in
  Alcotest.(check int) "periods" 3 s.periods;
  Alcotest.(check int) "4 running tasks" 4 (List.length s.tasks);
  let t1 = List.find (fun (x : Rt_trace.Stats.task_stats) -> x.task = 0) s.tasks in
  Alcotest.(check int) "t1 in all periods" 3 t1.activations;
  Alcotest.(check (float 0.001)) "ratio" 1.0 t1.activation_ratio;
  Alcotest.(check int) "t1 duration" 10 t1.min_duration;
  Alcotest.(check int) "t1 duration max" 10 t1.max_duration;
  let t2 = List.find (fun (x : Rt_trace.Stats.task_stats) -> x.task = 1) s.tasks in
  Alcotest.(check int) "t2 twice" 2 t2.activations;
  Alcotest.(check int) "frames" 8 s.bus.frames;
  Alcotest.(check int) "ids" 4 s.bus.distinct_ids;
  Alcotest.(check int) "frame time" 3 s.bus.min_frame_time;
  Alcotest.(check bool) "utilization sane" true
    (s.bus.utilization > 0.0 && s.bus.utilization < 1.0)

let test_stats_report_renders () =
  let s = Rt_trace.Stats.to_string (fig2_trace ()) in
  Alcotest.(check bool) "nonempty" true (String.length s > 50)

(* --- Vcd --- *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_vcd_structure () =
  let s = Rt_trace.Vcd.to_string (fig2_trace ()) in
  Alcotest.(check bool) "header" true (contains ~needle:"$timescale 1us $end" s);
  Alcotest.(check bool) "task signal" true (contains ~needle:"task_t1" s);
  Alcotest.(check bool) "bus signal" true (contains ~needle:"can_0x1" s);
  Alcotest.(check bool) "dumpvars" true (contains ~needle:"$dumpvars" s);
  Alcotest.(check bool) "enddefinitions" true
    (contains ~needle:"$enddefinitions" s)

let test_vcd_timestamps_monotone () =
  let s = Rt_trace.Vcd.to_string ~period_len:100 (fig2_trace ()) in
  let times =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
        if String.length line > 1 && line.[0] = '#' then
          int_of_string_opt (String.sub line 1 (String.length line - 1))
        else None)
  in
  Alcotest.(check bool) "some timestamps" true (List.length times > 5);
  let rec mono = function
    | a :: (b :: _ as rest) -> a < b && mono rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "strictly increasing" true (mono times);
  (* period 2 events land beyond 2 * period_len *)
  Alcotest.(check bool) "periods laid out" true
    (List.exists (fun t -> t >= 200) times)

let test_vcd_balanced_toggles () =
  (* Every signal toggled high must be toggled low again: count 1x/0x
     lines per code. *)
  let s = Rt_trace.Vcd.to_string (fig2_trace ()) in
  let ups = Hashtbl.create 16 and downs = Hashtbl.create 16 in
  List.iter (fun line ->
      if String.length line >= 2 && (line.[0] = '0' || line.[0] = '1') then begin
        let code = String.sub line 1 (String.length line - 1) in
        let tbl = if line.[0] = '1' then ups else downs in
        Hashtbl.replace tbl code
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl code))
      end)
    (String.split_on_char '\n' s);
  (* $dumpvars initializes every signal to 0, so each active signal has
     exactly one more down-toggle than up-toggles. *)
  Hashtbl.iter (fun code n ->
      Alcotest.(check (option int)) ("balanced " ^ code) (Some (n + 1))
        (Hashtbl.find_opt downs code))
    ups

let () =
  Alcotest.run "rt_trace"
    [
      ( "event",
        [
          Alcotest.test_case "order by time" `Quick test_event_order_by_time;
          Alcotest.test_case "causal tiebreak" `Quick test_event_causal_tiebreak;
          Alcotest.test_case "accessors" `Quick test_event_accessors;
        ] );
      ( "period",
        [
          Alcotest.test_case "valid period" `Quick test_period_ok;
          Alcotest.test_case "duplicate start" `Quick test_period_duplicate_start;
          Alcotest.test_case "end w/o start" `Quick test_period_end_without_start;
          Alcotest.test_case "start w/o end" `Quick test_period_start_without_end;
          Alcotest.test_case "fall w/o rise" `Quick test_period_fall_without_rise;
          Alcotest.test_case "rise w/o fall" `Quick test_period_rise_without_fall;
          Alcotest.test_case "unknown task" `Quick test_period_unknown_task;
          Alcotest.test_case "same-id frames" `Quick
            test_period_multiple_frames_same_id;
          Alcotest.test_case "msgs sorted" `Quick test_period_msgs_sorted_by_rise;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "A_m1 of Fig.2" `Quick test_candidates_m1;
          Alcotest.test_case "A_m2 of Fig.2" `Quick test_candidates_m2;
          Alcotest.test_case "no self pairs" `Quick test_candidates_exclude_self;
          Alcotest.test_case "slack widens" `Quick test_candidates_slack;
          Alcotest.test_case "pair count" `Quick test_pair_count;
          Alcotest.test_case "window narrows" `Quick
            test_candidates_window_narrows;
          Alcotest.test_case "window monotone" `Quick
            test_candidates_window_monotone;
        ] );
      ( "inference",
        [
          Alcotest.test_case "infer period" `Quick test_infer_period_exact;
          Alcotest.test_case "insufficient data" `Quick
            test_infer_period_insufficient;
          Alcotest.test_case "skip-period gaps" `Quick
            test_infer_period_skip_periods;
          Alcotest.test_case "heavy jitter" `Quick
            test_infer_period_heavy_jitter;
          Alcotest.test_case "no task recurs 3x" `Quick
            test_infer_period_no_task_recurs_enough;
          Alcotest.test_case "segment auto" `Quick test_segment_auto_round_trip;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "event source latches" `Quick
            test_event_source_latches;
          Alcotest.test_case "straddle = batch (strict)" `Quick
            test_segmenter_straddle_matches_batch_strict;
          Alcotest.test_case "straddle = batch (recover)" `Quick
            test_segmenter_straddle_matches_batch_recover;
          Alcotest.test_case "bounded memory" `Quick
            test_segmenter_bounded_memory;
          Alcotest.test_case "out-of-order rejected" `Quick
            test_segmenter_rejects_out_of_order;
          Alcotest.test_case "wrapper sorts input" `Quick
            test_segment_wrapper_unordered_input;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "svg render" `Quick test_gantt_svg;
          export_total_on_random_traces;
        ] );
      ( "stats",
        [
          Alcotest.test_case "fig2 statistics" `Quick test_stats_fig2;
          Alcotest.test_case "report renders" `Quick test_stats_report_renders;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "structure" `Quick test_vcd_structure;
          Alcotest.test_case "timestamps monotone" `Quick
            test_vcd_timestamps_monotone;
          Alcotest.test_case "balanced toggles" `Quick
            test_vcd_balanced_toggles;
        ] );
      ( "trace",
        [
          Alcotest.test_case "task set check" `Quick
            test_trace_of_periods_checks_task_set;
          Alcotest.test_case "segment" `Quick test_trace_segment;
          Alcotest.test_case "boundary violation" `Quick
            test_trace_segment_boundary_violation;
          Alcotest.test_case "stats" `Quick test_trace_stats;
          Alcotest.test_case "executed matrix" `Quick test_executed_matrix;
        ] );
      ( "trace_io",
        [
          Alcotest.test_case "round trip" `Quick test_io_round_trip;
          Alcotest.test_case "simulated round trip" `Quick
            test_io_round_trip_simulated;
          Alcotest.test_case "missing tasks" `Quick test_io_missing_tasks;
          Alcotest.test_case "unknown task" `Quick test_io_unknown_task;
          Alcotest.test_case "bad timestamp" `Quick test_io_bad_timestamp;
          Alcotest.test_case "bad verb" `Quick test_io_bad_verb;
          Alcotest.test_case "event before period" `Quick
            test_io_event_before_period;
          Alcotest.test_case "duplicate tasks line" `Quick
            test_io_duplicate_tasks_line;
          Alcotest.test_case "comments and blanks" `Quick
            test_io_comments_and_blanks;
          Alcotest.test_case "error line numbers" `Quick
            test_io_error_line_numbers;
          Alcotest.test_case "save/load" `Quick test_io_save_load;
        ] );
    ]
