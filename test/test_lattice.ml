open Test_support

let all = Dv.all

let pairs = List.concat_map (fun a -> List.map (fun b -> (a, b)) all) all

let triples =
  List.concat_map (fun a ->
      List.concat_map (fun b -> List.map (fun c -> (a, b, c)) all) all)
    all

(* --- Depval: the Figure 3 lattice --- *)

let test_all_distinct () =
  Alcotest.(check int) "7 values" 7 (List.length all);
  Alcotest.(check int) "all distinct" 7
    (List.length (List.sort_uniq Dv.compare all))

let test_distance_levels () =
  Alcotest.(check int) "par" 0 (Dv.distance p);
  Alcotest.(check int) "fwd" 1 (Dv.distance f);
  Alcotest.(check int) "bwd" 1 (Dv.distance b);
  Alcotest.(check int) "bi" 4 (Dv.distance bi);
  Alcotest.(check int) "fwd?" 4 (Dv.distance fq);
  Alcotest.(check int) "bwd?" 4 (Dv.distance bq);
  Alcotest.(check int) "bi?" 9 (Dv.distance biq)

let test_bottom_top () =
  List.iter (fun v ->
      Alcotest.(check bool) "par below all" true (Dv.leq p v);
      Alcotest.(check bool) "bi? above all" true (Dv.leq v biq))
    all

let test_leq_reflexive () =
  List.iter (fun v -> Alcotest.(check bool) "v <= v" true (Dv.leq v v)) all

let test_leq_antisymmetric () =
  List.iter (fun (a, b) ->
      if Dv.leq a b && Dv.leq b a then
        Alcotest.(check depval) "a = b" a b)
    pairs

let test_leq_transitive () =
  List.iter (fun (a, b, c) ->
      if Dv.leq a b && Dv.leq b c then
        Alcotest.(check bool) "a <= c" true (Dv.leq a c))
    triples

let test_hasse_edges () =
  (* The exact cover relation of Figure 3. *)
  let expected =
    [ (p, [ f; b ]); (f, [ fq; bi ]); (b, [ bq; bi ]);
      (bi, [ biq ]); (fq, [ biq ]); (bq, [ biq ]); (biq, []) ]
  in
  List.iter (fun (v, cs) ->
      Alcotest.(check (slist depval Dv.compare)) "covers" cs (Dv.covers v))
    expected

let test_covers_are_minimal_strict_successors () =
  List.iter (fun v ->
      List.iter (fun c ->
          Alcotest.(check bool) "strictly above" true (Dv.lt v c);
          (* No value strictly between v and c. *)
          List.iter (fun w ->
              if Dv.lt v w && Dv.lt w c then
                Alcotest.failf "found %a between %a and %a" Dv.pp w Dv.pp v
                  Dv.pp c)
            all)
        (Dv.covers v))
    all

let test_join_commutative () =
  List.iter (fun (a, b) ->
      Alcotest.(check depval) "join comm" (Dv.join a b) (Dv.join b a))
    pairs

let test_join_idempotent () =
  List.iter (fun v -> Alcotest.(check depval) "join idem" v (Dv.join v v)) all

let test_join_associative () =
  List.iter (fun (a, b, c) ->
      Alcotest.(check depval) "join assoc"
        (Dv.join a (Dv.join b c))
        (Dv.join (Dv.join a b) c))
    triples

let test_join_is_lub () =
  List.iter (fun (a, b) ->
      let j = Dv.join a b in
      Alcotest.(check bool) "a <= j" true (Dv.leq a j);
      Alcotest.(check bool) "b <= j" true (Dv.leq b j);
      List.iter (fun c ->
          if Dv.leq a c && Dv.leq b c then
            Alcotest.(check bool) "j <= any ub" true (Dv.leq j c))
        all)
    pairs

let test_meet_commutative () =
  List.iter (fun (a, b) ->
      Alcotest.(check depval) "meet comm" (Dv.meet a b) (Dv.meet b a))
    pairs

let test_meet_is_glb () =
  List.iter (fun (a, b) ->
      let m = Dv.meet a b in
      Alcotest.(check bool) "m <= a" true (Dv.leq m a);
      Alcotest.(check bool) "m <= b" true (Dv.leq m b);
      List.iter (fun c ->
          if Dv.leq c a && Dv.leq c b then
            Alcotest.(check bool) "any lb <= m" true (Dv.leq c m))
        all)
    pairs

let test_absorption () =
  List.iter (fun (a, b) ->
      Alcotest.(check depval) "a ⊔ (a ⊓ b) = a" a (Dv.join a (Dv.meet a b));
      Alcotest.(check depval) "a ⊓ (a ⊔ b) = a" a (Dv.meet a (Dv.join a b)))
    pairs

let test_specific_joins () =
  Alcotest.(check depval) "fwd ⊔ bwd = bi" bi (Dv.join f b);
  Alcotest.(check depval) "fwd ⊔ bwd? = bi?" biq (Dv.join f bq);
  Alcotest.(check depval) "fwd? ⊔ bwd? = bi?" biq (Dv.join fq bq);
  Alcotest.(check depval) "fwd? ⊔ bi = bi?" biq (Dv.join fq bi);
  Alcotest.(check depval) "fwd ⊔ fwd? = fwd?" fq (Dv.join f fq)

let test_distance_monotone () =
  List.iter (fun (a, b) ->
      if Dv.lt a b then
        Alcotest.(check bool) "distance strictly grows" true
          (Dv.distance a < Dv.distance b))
    pairs

let test_flip_involution () =
  List.iter (fun v -> Alcotest.(check depval) "flip flip" v (Dv.flip (Dv.flip v))) all

let test_flip_order_automorphism () =
  List.iter (fun (a, b) ->
      Alcotest.(check bool) "flip preserves leq" (Dv.leq a b)
        (Dv.leq (Dv.flip a) (Dv.flip b)))
    pairs

let test_flip_values () =
  Alcotest.(check depval) "fwd -> bwd" b (Dv.flip f);
  Alcotest.(check depval) "fwd? -> bwd?" bq (Dv.flip fq);
  Alcotest.(check depval) "par fixed" p (Dv.flip p);
  Alcotest.(check depval) "bi fixed" bi (Dv.flip bi)

let test_weaken () =
  Alcotest.(check depval) "fwd" fq (Dv.weaken f);
  Alcotest.(check depval) "bwd" bq (Dv.weaken b);
  Alcotest.(check depval) "bi" biq (Dv.weaken bi);
  List.iter (fun v ->
      if not (Dv.is_definite v) then
        Alcotest.(check depval) "identity on non-definite" v (Dv.weaken v))
    all

let test_weaken_is_minimal_matching_generalization () =
  (* weaken v must be a cover of v for definite v. *)
  List.iter (fun v ->
      if Dv.is_definite v then
        Alcotest.(check bool) "weaken is a cover" true
          (List.exists (Dv.equal (Dv.weaken v)) (Dv.covers v)))
    all

let test_is_definite () =
  Alcotest.(check (list bool)) "definite set"
    [ false; true; true; true; false; false; false ]
    (List.map Dv.is_definite all)

let test_string_round_trip () =
  List.iter (fun v ->
      Alcotest.(check (option depval)) "round trip" (Some v)
        (Dv.of_string (Dv.to_string v)))
    all;
  Alcotest.(check (option depval)) "garbage" None (Dv.of_string "?!")

let test_compare_total_order_compatible () =
  List.iter (fun (a, b) ->
      if Dv.lt a b then
        Alcotest.(check bool) "compare respects leq" true (Dv.compare a b < 0))
    pairs

(* --- Depfun --- *)

let test_df_create_bottom () =
  let d = Df.create 3 in
  Df.iter_pairs (fun _ _ v -> Alcotest.(check depval) "par" p v) d;
  Alcotest.(check int) "weight 0" 0 (Df.weight d)

let test_df_top () =
  let d = Df.top 3 in
  Df.iter_pairs (fun _ _ v -> Alcotest.(check depval) "bi?" biq v) d;
  Alcotest.(check int) "weight 6*9" 54 (Df.weight d);
  Alcotest.(check depval) "diagonal par" p (Df.get d 1 1)

let test_df_create_invalid () =
  Alcotest.check_raises "0 tasks"
    (Invalid_argument "Depfun.create: need at least one task")
    (fun () -> ignore (Df.create 0))

let test_df_set_get () =
  let d = Df.create 3 in
  Df.set d 0 1 f;
  Df.set d 1 0 b;
  Alcotest.(check depval) "get 0 1" f (Df.get d 0 1);
  Alcotest.(check depval) "get 1 0" b (Df.get d 1 0);
  Alcotest.(check depval) "untouched" p (Df.get d 0 2);
  Alcotest.(check int) "weight" 2 (Df.weight d)

let test_df_diagonal_protected () =
  let d = Df.create 3 in
  Alcotest.check_raises "diag set"
    (Invalid_argument "Depfun.set: diagonal must stay Par")
    (fun () -> Df.set d 1 1 f)

let test_df_out_of_range () =
  let d = Df.create 3 in
  Alcotest.check_raises "bad index"
    (Invalid_argument "Depfun: task index out of range")
    (fun () -> ignore (Df.get d 0 3))

let test_df_join_cell () =
  let d = Df.create 2 in
  Alcotest.(check bool) "changes" true (Df.join_cell d 0 1 f);
  Alcotest.(check bool) "idempotent" false (Df.join_cell d 0 1 f);
  Alcotest.(check bool) "par no-op" false (Df.join_cell d 0 1 p);
  Alcotest.(check bool) "upgrade" true (Df.join_cell d 0 1 b);
  Alcotest.(check depval) "now bi" bi (Df.get d 0 1)

let test_df_copy_isolated () =
  let d = Df.create 2 in
  let d' = Df.copy d in
  Df.set d 0 1 f;
  Alcotest.(check depval) "copy untouched" p (Df.get d' 0 1)

let test_df_equal_compare () =
  let d1 = df [ [ p; f ]; [ b; p ] ] in
  let d2 = df [ [ p; f ]; [ b; p ] ] in
  let d3 = df [ [ p; fq ]; [ b; p ] ] in
  Alcotest.(check bool) "equal" true (Df.equal d1 d2);
  Alcotest.(check int) "compare eq" 0 (Df.compare d1 d2);
  Alcotest.(check bool) "not equal" false (Df.equal d1 d3);
  Alcotest.(check bool) "compare consistent" true
    (Df.compare d1 d3 = -Df.compare d3 d1)

let test_df_leq_pointwise () =
  let d1 = df [ [ p; f ]; [ p; p ] ] in
  let d2 = df [ [ p; fq ]; [ b; p ] ] in
  Alcotest.(check bool) "d1 <= d2" true (Df.leq d1 d2);
  Alcotest.(check bool) "d2 </= d1" false (Df.leq d2 d1);
  Alcotest.(check bool) "bottom below" true (Df.leq (Df.create 2) d2);
  Alcotest.(check bool) "below top" true (Df.leq d2 (Df.top 2))

let test_df_join_meet () =
  let d1 = df [ [ p; f ]; [ p; p ] ] in
  let d2 = df [ [ p; b ]; [ f; p ] ] in
  let j = Df.join d1 d2 in
  Alcotest.(check depval) "join cell" bi (Df.get j 0 1);
  Alcotest.(check depval) "join cell 2" f (Df.get j 1 0);
  let m = Df.meet d1 d2 in
  Alcotest.(check depval) "meet cell" p (Df.get m 0 1)

let test_df_size_mismatch () =
  Alcotest.check_raises "join mismatch"
    (Invalid_argument "Depfun.join: size mismatch")
    (fun () -> ignore (Df.join (Df.create 2) (Df.create 3)))

let test_df_lub () =
  let d1 = df [ [ p; f ]; [ p; p ] ] in
  let d2 = df [ [ p; p ]; [ f; p ] ] in
  let l = Df.lub [ d1; d2 ] in
  Alcotest.(check depval) "cell 01" f (Df.get l 0 1);
  Alcotest.(check depval) "cell 10" f (Df.get l 1 0);
  Alcotest.check_raises "empty lub"
    (Invalid_argument "Depfun.lub: empty list")
    (fun () -> ignore (Df.lub []))

let test_df_lub_does_not_mutate () =
  let d1 = df [ [ p; f ]; [ p; p ] ] in
  let d2 = df [ [ p; p ]; [ f; p ] ] in
  ignore (Df.lub [ d1; d2 ]);
  Alcotest.(check depval) "d1 unchanged" p (Df.get d1 1 0)

let test_df_rows_round_trip () =
  let rows = [ [ p; f; fq ]; [ b; p; biq ]; [ bq; bi; p ] ] in
  let d = df rows in
  Alcotest.(check bool) "round trip" true (Df.to_rows d = rows)

let test_df_of_rows_invalid () =
  Alcotest.check_raises "not square"
    (Invalid_argument "Depfun.of_rows: not square")
    (fun () -> ignore (Df.of_rows [ [ p; f ]; [ b ] ]));
  Alcotest.check_raises "bad diagonal"
    (Invalid_argument "Depfun.of_rows: diagonal must be Par")
    (fun () -> ignore (Df.of_rows [ [ f; f ]; [ b; p ] ]))

let test_df_count () =
  let d = df [ [ p; f; fq ]; [ b; p; p ]; [ p; p; p ] ] in
  Alcotest.(check int) "definite cells" 2 (Df.count Dv.is_definite d)

let test_df_weight_equals_sum () =
  let d = df [ [ p; f; fq ]; [ b; p; biq ]; [ bq; bi; p ] ] in
  Alcotest.(check int) "weight" (1 + 4 + 1 + 9 + 4 + 4) (Df.weight d)

let test_df_parse_round_trip () =
  let d = df [ [ p; f; fq ]; [ b; p; biq ]; [ bq; bi; p ] ] in
  (match Df.parse (Df.to_string d) with
   | Ok (d', names) ->
     Alcotest.(check depfun) "matrix" d d';
     Alcotest.(check (array string)) "names" [| "t1"; "t2"; "t3" |] names
   | Error m -> Alcotest.fail m);
  let s = Df.to_string ~names:[| "A"; "B"; "C" |] d in
  (match Df.parse s with
   | Ok (d', names) ->
     Alcotest.(check depfun) "named matrix" d d';
     Alcotest.(check (array string)) "custom names" [| "A"; "B"; "C" |] names
   | Error m -> Alcotest.fail m)

let test_df_parse_errors () =
  let bad s =
    match Df.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  bad "";
  bad "t1 t2\nt1 || ->";        (* missing row *)
  bad "t1 t2\nt1 || ->\nt2 <-"; (* short row *)
  bad "t1 t2\nt1 || xx\nt2 <- ||";  (* bad value *)
  bad "t1 t2\nzz || ->\nt2 <- ||"   (* unknown row label *)

let test_df_pp_names () =
  let d = df [ [ p; f ]; [ b; p ] ] in
  let s = Df.to_string ~names:[| "A"; "B" |] d in
  Alcotest.(check bool) "mentions names" true
    (String.length s > 0
     && String.index_opt s 'A' <> None
     && String.index_opt s 'B' <> None)

(* qcheck: random matrices keep lattice laws pointwise *)
let arb_depval = QCheck.oneofl all

let gen_df n : Df.t QCheck.Gen.t =
 fun g ->
  let d = Df.create n in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then Df.set d a b (QCheck.Gen.oneofl all g)
    done
  done;
  d

let arb_df n = QCheck.make ~print:(fun d -> Df.to_string d) (gen_df n)

let df_join_upper_bound =
  Test_support.qcheck_case "depfun join dominates" ~count:200
    (QCheck.pair (arb_df 4) (arb_df 4))
    (fun (d1, d2) ->
       let j = Df.join d1 d2 in
       Df.leq d1 j && Df.leq d2 j)

let df_leq_partial_order =
  Test_support.qcheck_case "depfun leq antisymmetric" ~count:200
    (QCheck.pair (arb_df 3) (arb_df 3))
    (fun (d1, d2) -> (not (Df.leq d1 d2 && Df.leq d2 d1)) || Df.equal d1 d2)

let df_weight_monotone =
  Test_support.qcheck_case "weight monotone along join" ~count:200
    (QCheck.pair (arb_df 4) (arb_df 4))
    (fun (d1, d2) -> Df.weight (Df.join d1 d2) >= max (Df.weight d1) (Df.weight d2))

let df_parse_round_trip_random =
  Test_support.qcheck_case "depfun text round trip" ~count:100 (arb_df 4)
    (fun d ->
       match Df.parse (Df.to_string d) with
       | Ok (d', _) -> Df.equal d d'
       | Error _ -> false)

let depval_join_monotone =
  Test_support.qcheck_case "depval join monotone" ~count:200
    (QCheck.triple arb_depval arb_depval arb_depval)
    (fun (a, b, c) -> if Dv.leq a b then Dv.leq (Dv.join a c) (Dv.join b c) else true)

let () =
  Alcotest.run "rt_lattice"
    [
      ( "depval",
        [
          Alcotest.test_case "seven distinct values" `Quick test_all_distinct;
          Alcotest.test_case "distance levels" `Quick test_distance_levels;
          Alcotest.test_case "bottom and top" `Quick test_bottom_top;
          Alcotest.test_case "leq reflexive" `Quick test_leq_reflexive;
          Alcotest.test_case "leq antisymmetric" `Quick test_leq_antisymmetric;
          Alcotest.test_case "leq transitive" `Quick test_leq_transitive;
          Alcotest.test_case "hasse diagram" `Quick test_hasse_edges;
          Alcotest.test_case "covers minimal" `Quick
            test_covers_are_minimal_strict_successors;
          Alcotest.test_case "join commutative" `Quick test_join_commutative;
          Alcotest.test_case "join idempotent" `Quick test_join_idempotent;
          Alcotest.test_case "join associative" `Quick test_join_associative;
          Alcotest.test_case "join is LUB" `Quick test_join_is_lub;
          Alcotest.test_case "meet commutative" `Quick test_meet_commutative;
          Alcotest.test_case "meet is GLB" `Quick test_meet_is_glb;
          Alcotest.test_case "absorption laws" `Quick test_absorption;
          Alcotest.test_case "paper joins" `Quick test_specific_joins;
          Alcotest.test_case "distance monotone" `Quick test_distance_monotone;
          Alcotest.test_case "flip involution" `Quick test_flip_involution;
          Alcotest.test_case "flip automorphism" `Quick
            test_flip_order_automorphism;
          Alcotest.test_case "flip values" `Quick test_flip_values;
          Alcotest.test_case "weaken values" `Quick test_weaken;
          Alcotest.test_case "weaken minimal" `Quick
            test_weaken_is_minimal_matching_generalization;
          Alcotest.test_case "definite set" `Quick test_is_definite;
          Alcotest.test_case "string round trip" `Quick test_string_round_trip;
          Alcotest.test_case "compare compatible" `Quick
            test_compare_total_order_compatible;
          depval_join_monotone;
        ] );
      ( "depfun",
        [
          Alcotest.test_case "bottom" `Quick test_df_create_bottom;
          Alcotest.test_case "top" `Quick test_df_top;
          Alcotest.test_case "invalid size" `Quick test_df_create_invalid;
          Alcotest.test_case "set/get" `Quick test_df_set_get;
          Alcotest.test_case "diagonal protected" `Quick
            test_df_diagonal_protected;
          Alcotest.test_case "index range" `Quick test_df_out_of_range;
          Alcotest.test_case "join_cell" `Quick test_df_join_cell;
          Alcotest.test_case "copy isolated" `Quick test_df_copy_isolated;
          Alcotest.test_case "equal/compare" `Quick test_df_equal_compare;
          Alcotest.test_case "leq pointwise" `Quick test_df_leq_pointwise;
          Alcotest.test_case "join/meet" `Quick test_df_join_meet;
          Alcotest.test_case "size mismatch" `Quick test_df_size_mismatch;
          Alcotest.test_case "lub" `Quick test_df_lub;
          Alcotest.test_case "lub pure" `Quick test_df_lub_does_not_mutate;
          Alcotest.test_case "rows round trip" `Quick test_df_rows_round_trip;
          Alcotest.test_case "of_rows invalid" `Quick test_df_of_rows_invalid;
          Alcotest.test_case "count" `Quick test_df_count;
          Alcotest.test_case "weight sum" `Quick test_df_weight_equals_sum;
          Alcotest.test_case "pp names" `Quick test_df_pp_names;
          Alcotest.test_case "parse round trip" `Quick test_df_parse_round_trip;
          Alcotest.test_case "parse errors" `Quick test_df_parse_errors;
          df_parse_round_trip_random;
          df_join_upper_bound;
          df_leq_partial_order;
          df_weight_monotone;
        ] );
    ]
