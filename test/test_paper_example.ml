(* Locks in the paper's §3.3 worked example end to end: the intermediate
   hypothesis set after the first period (d21, d22, d23), the final set
   after all three periods (d81..d85), the least upper bound dLUB, and
   the bound-1 heuristic agreement (the Lemma). All matrices are copied
   verbatim from the paper. *)

open Test_support

let d21 = df [ [ p; f; p; f ]; [ b; p; p; p ]; [ p; p; p; p ]; [ b; p; p; p ] ]
let d22 = df [ [ p; f; p; p ]; [ b; p; p; f ]; [ p; p; p; p ]; [ p; b; p; p ] ]
let d23 = df [ [ p; p; p; f ]; [ p; p; p; f ]; [ p; p; p; p ]; [ b; b; p; p ] ]

let d81 = df [ [ p; fq; fq; f ]; [ b; p; p; p ]; [ b; p; p; f ]; [ b; p; bq; p ] ]
let d82 = df [ [ p; p; fq; f ]; [ p; p; p; f ]; [ b; p; p; f ]; [ b; bq; bq; p ] ]
let d83 = df [ [ p; fq; p; f ]; [ b; p; p; f ]; [ p; p; p; f ]; [ b; bq; bq; p ] ]
let d84 = df [ [ p; fq; fq; f ]; [ b; p; p; f ]; [ b; p; p; p ]; [ b; bq; p; p ] ]
let d85 = df [ [ p; fq; fq; p ]; [ b; p; p; f ]; [ b; p; p; f ]; [ p; bq; bq; p ] ]

let dlub = df [ [ p; fq; fq; f ]; [ b; p; p; f ]; [ b; p; p; f ]; [ b; bq; bq; p ] ]

let same_set expected actual =
  let norm = List.sort Df.compare in
  let pp_all l = String.concat "\n---\n" (List.map Df.to_string l) in
  if norm expected <> [] && List.length expected = List.length actual
     && List.for_all2 Df.equal (norm expected) (norm actual)
  then ()
  else
    Alcotest.failf "hypothesis sets differ.\nexpected:\n%s\n\nactual:\n%s"
      (pp_all (norm expected)) (pp_all (norm actual))

let run_exact_with_snapshots () =
  let trace = fig2_trace () in
  let snapshots = Hashtbl.create 4 in
  let outcome =
    Rt_learn.Exact.run trace ~on_period:(fun idx hs ->
        Hashtbl.replace snapshots idx
          (List.map (fun h -> Df.copy (Rt_learn.Hypothesis.depfun h)) hs))
  in
  (outcome, snapshots)

let test_after_period_1 () =
  let _, snapshots = run_exact_with_snapshots () in
  same_set [ d21; d22; d23 ] (Hashtbl.find snapshots 0)

let test_final_set_is_d81_to_d85 () =
  let outcome, _ = run_exact_with_snapshots () in
  same_set [ d81; d82; d83; d84; d85 ] outcome.hypotheses

let test_dlub () =
  let outcome, _ = run_exact_with_snapshots () in
  Alcotest.(check depfun) "dLUB" dlub (Df.lub outcome.hypotheses)

let test_dlub_has_paper_highlight () =
  (* "One interesting result is: t1 always determines t4 (→)" — an
     unconditional dependency not visible in the design graph. *)
  Alcotest.(check depval) "d(t1,t4) = fwd" f (Df.get dlub 0 3);
  Alcotest.(check depval) "d(t4,t1) = bwd" b (Df.get dlub 3 0)

let test_exact_stats () =
  let outcome, _ = run_exact_with_snapshots () in
  Alcotest.(check int) "3 periods" 3 outcome.stats.periods_processed;
  Alcotest.(check bool) "sets grew" true (outcome.stats.max_set_size >= 5);
  Alcotest.(check bool) "not converged" true
    (Rt_learn.Exact.converged outcome = None)

let test_every_final_hypothesis_matches_trace () =
  (* Theorem 2 instantiated on the worked example. *)
  let trace = fig2_trace () in
  let outcome, _ = run_exact_with_snapshots () in
  List.iter (fun d ->
      Alcotest.(check bool) "matches" true (Rt_learn.Matching.matches_trace d trace))
    outcome.hypotheses

let test_final_set_is_pairwise_incomparable () =
  let outcome, _ = run_exact_with_snapshots () in
  List.iteri (fun i di ->
      List.iteri (fun j dj ->
          if i <> j then
            Alcotest.(check bool) "incomparable" false (Df.leq di dj))
        outcome.hypotheses)
    outcome.hypotheses

let test_heuristic_bound1_equals_dlub () =
  let trace = fig2_trace () in
  let o = Rt_learn.Heuristic.run ~bound:1 trace in
  match o.hypotheses with
  | [ d ] -> Alcotest.(check depfun) "lemma: bound-1 = dLUB" dlub d
  | l -> Alcotest.failf "expected 1 hypothesis, got %d" (List.length l)

let test_heuristic_any_bound_lub_is_dlub () =
  (* §3.4: the exact result "equaled the least upper bound of the
     dependency functions we obtained with heuristics (using any
     arbitrary bound)". On this example the equality holds for small
     bounds (heavy merging folds everything into the LUB) and for bounds
     large enough that no merge occurs (the exact set survives). *)
  let trace = fig2_trace () in
  List.iter (fun bound ->
      let o = Rt_learn.Heuristic.run ~bound trace in
      match o.hypotheses with
      | [] -> Alcotest.failf "bound %d: empty result" bound
      | l ->
        Alcotest.(check depfun)
          (Printf.sprintf "lub at bound %d" bound)
          dlub (Df.lub l))
    [ 1; 2; 3; 4; 5; 8; 10; 12; 20; 24; 32; 64 ]

let test_heuristic_twilight_bounds_stay_sound () =
  (* At intermediate bounds (14-18 on this example) partially merged
     hypotheses are pruned by the minimality rule in favour of surviving
     specific ones, so the reported set can lose information: the §3.4
     equality is an empirical observation, not a theorem. What must
     always hold is soundness and the conservative direction. *)
  let trace = fig2_trace () in
  List.iter (fun bound ->
      match (Rt_learn.Heuristic.run ~bound trace).hypotheses with
      | [] -> Alcotest.failf "bound %d: empty result" bound
      | l ->
        let lub = Df.lub l in
        Alcotest.(check bool) "below dLUB" true (Df.leq lub dlub);
        List.iter (fun d ->
            Alcotest.(check bool) "matches" true
              (Rt_learn.Matching.matches_trace d trace))
          l)
    [ 14; 16; 18 ]

let test_heuristic_large_bound_equals_exact () =
  (* With a bound that never binds, the heuristic degenerates to the
     exact algorithm. *)
  let trace = fig2_trace () in
  let o = Rt_learn.Heuristic.run ~bound:64 trace in
  Alcotest.(check int) "no merges" 0 o.stats.merges;
  same_set [ d81; d82; d83; d84; d85 ] o.hypotheses

let test_heuristic_sound_all_bounds () =
  let trace = fig2_trace () in
  List.iter (fun bound ->
      let o = Rt_learn.Heuristic.run ~bound trace in
      List.iter (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "bound %d sound" bound)
            true
            (Rt_learn.Matching.matches_trace d trace))
        o.hypotheses)
    [ 1; 2; 3; 5 ]

let test_library_fixtures_agree () =
  (* The reusable fixtures in Rt_case.Paper_example must carry exactly
     the matrices this suite transcribes from the paper. *)
  same_set [ d21; d22; d23 ] Rt_case.Paper_example.expected_after_period_1;
  same_set [ d81; d82; d83; d84; d85 ] Rt_case.Paper_example.expected_final;
  Alcotest.(check depfun) "lub fixture" dlub Rt_case.Paper_example.expected_lub;
  Alcotest.(check string) "trace fixture" fig2_trace_text
    Rt_case.Paper_example.trace_text

let test_learner_facade () =
  let trace = fig2_trace () in
  let r = Rt_engine.Learner.learn Rt_engine.Learner.Exact trace in
  Alcotest.(check bool) "consistent" true r.consistent;
  Alcotest.(check bool) "not converged" false r.converged;
  Alcotest.(check int) "5 hypotheses" 5 (List.length r.hypotheses);
  (match r.lub with
   | Some l -> Alcotest.(check depfun) "facade lub" dlub l
   | None -> Alcotest.fail "lub expected");
  Alcotest.(check bool) "verify (thm 2)" true (Rt_engine.Learner.verify r trace)

let () =
  Alcotest.run "paper_example"
    [
      ( "section_3_3",
        [
          Alcotest.test_case "after period 1: {d21,d22,d23}" `Quick
            test_after_period_1;
          Alcotest.test_case "final set: {d81..d85}" `Quick
            test_final_set_is_d81_to_d85;
          Alcotest.test_case "dLUB matrix" `Quick test_dlub;
          Alcotest.test_case "t1 -> t4 discovered" `Quick
            test_dlub_has_paper_highlight;
          Alcotest.test_case "stats" `Quick test_exact_stats;
          Alcotest.test_case "theorem 2 on example" `Quick
            test_every_final_hypothesis_matches_trace;
          Alcotest.test_case "answers incomparable" `Quick
            test_final_set_is_pairwise_incomparable;
        ] );
      ( "heuristic_agreement",
        [
          Alcotest.test_case "bound 1 = dLUB (lemma)" `Quick
            test_heuristic_bound1_equals_dlub;
          Alcotest.test_case "any bound: lub = dLUB" `Quick
            test_heuristic_any_bound_lub_is_dlub;
          Alcotest.test_case "twilight bounds stay sound" `Quick
            test_heuristic_twilight_bounds_stay_sound;
          Alcotest.test_case "slack bound = exact" `Quick
            test_heuristic_large_bound_equals_exact;
          Alcotest.test_case "soundness across bounds" `Quick
            test_heuristic_sound_all_bounds;
          Alcotest.test_case "library fixtures agree" `Quick
            test_library_fixtures_agree;
          Alcotest.test_case "facade" `Quick test_learner_facade;
        ] );
    ]
