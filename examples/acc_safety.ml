(* Safety argument for an adaptive-cruise-control function, built from a
   black-box bus log: learn the dependency model, check the structural
   properties a safety engineer cares about, and bound the
   sensor-to-brake reaction time — the paper's "if the brake is pressed,
   then brake actuator must react within 300 msec" style of requirement.

   Also demonstrates trace anonymization (the operation the paper's
   authors applied to the GM data) and automatic bound selection.

   Run with: dune exec examples/acc_safety.exe *)

module Acc = Rt_case.Acc_model
module Q = Rt_analysis.Query
module L = Rt_analysis.Latency

let () =
  let design = Acc.design () in
  let names = Acc.names in
  let trace = Acc.trace () in
  Format.printf "ACC function under observation: %a@." Rt_trace.Trace.pp_summary trace;

  (* 1. Learn with an automatically selected bound. *)
  let report, bound = Rt_engine.Learner.auto trace in
  Format.printf "auto-selected bound: %d (%.3fs, converged: %b)@.@."
    bound report.elapsed_s report.converged;
  let model = Option.get report.lub in

  (* 2. The safety engineer's checklist, in the property language. *)
  let checklist =
    [ (* Fusion's two inputs always arrive (both sensor chains run every
         period), so it is a *definite* join, not the paper's conditional
         conjunction: the right property is that it depends on both. *)
      "fusion requires both sensor streams",
      "depends(Fusion, RadarProc) & depends(Fusion, CamProc)";
      "controller is the mode switch", "disjunction(AccCtl)";
      "modes are mutually exclusive", "exclusive(Follow, Cruise)";
      "arbiter always reacts to the controller", "d(AccCtl, Arbiter) = ->";
      "brake command follows arbitration", "d(Arbiter, Brake) = ->";
      "brake never fires without fusion", "depends(Brake, Fusion)" ]
  in
  List.iter (fun (label, q) ->
      match Q.holds ~model ~names ~trace (Q.parse_exn q) with
      | Ok holds ->
        Format.printf "%-42s %s  %s@." label
          (if holds then "[ok]  " else "[FAIL]") q
      | Error m -> Format.printf "%-42s [error] %s@." label m)
    checklist;

  (* 3. What the learner cannot see: the ECU-internal acquisition hops. *)
  Format.printf "@.learner's view of the hidden RadarAcq -> RadarProc hop: %s@."
    (Rt_lattice.Depval.to_string
       (Rt_lattice.Depfun.get model (Acc.task "RadarAcq") (Acc.task "RadarProc")));
  let mined = Rt_mining.Order_miner.infer trace in
  Format.printf "ordering baseline's view of the same hop:          %s@."
    (Rt_lattice.Depval.to_string
       (Rt_lattice.Depfun.get mined (Acc.task "RadarAcq") (Acc.task "RadarProc")));

  (* 4. Sensor-to-brake reaction time, with and without the learned
        dependencies. *)
  let path = Acc.brake_path () in
  let pess, inf, gain = L.improvement design ~dep:model ~path in
  Format.printf "@.sensor-to-brake chain: %s@."
    (String.concat " -> " (List.map (fun i -> names.(i)) path));
  Format.printf "pessimistic bound: %dus; dependency-informed: %dus (%.2fx)@."
    pess inf gain;
  Format.printf "deadline %dus: pessimistic %s, informed %s@."
    Acc.brake_deadline_us
    (if pess <= Acc.brake_deadline_us then "MET" else "MISSED")
    (if inf <= Acc.brake_deadline_us then "MET" else "MISSED");

  (* 5. Share the evidence without leaking the design: anonymize. *)
  let anon, mapping = Rt_trace.Anonymize.anonymize trace in
  Format.printf "@.anonymized for sharing: %a@." Rt_trace.Trace.pp_summary anon;
  List.iteri (fun i (original, hidden) ->
      if i < 4 then Format.printf "  %s -> %s@." original hidden)
    mapping.task_names;
  Format.printf "  ...@.";
  (* Anonymization preserves the learning problem. *)
  let report_anon, _ = Rt_engine.Learner.auto anon in
  Format.printf "model learned from the anonymized trace is identical: %b@."
    (match report_anon.lub with
     | Some l -> Rt_lattice.Depfun.equal l model
     | None -> false)
