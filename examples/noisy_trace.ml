(* Failure injection and the negative-example extension.

   The paper (§3.1): "If Dcur becomes empty at some point, it means
   1) either the instances contain errors (and thereby violate our
   assumption), or 2) the generalization language is not expressive
   enough to describe the desired property."

   This example corrupts a clean trace in ways a real logging device
   might (truncated frames, a frame attributed to a period where its
   sender never ran) and shows how each failure surfaces; then it
   demonstrates the negative-example version-space filter from the
   paper's conclusion.

   Run with: dune exec examples/noisy_trace.exe *)

module E = Rt_trace.Event
module P = Rt_trace.Period

let ts = Rt_task.Task_set.numbered 3

let ev time kind = { E.time; kind }

let clean_period idx =
  P.make_exn ~index:idx ~task_set:ts
    [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0); ev 21 (E.Msg_rise 1);
      ev 24 (E.Msg_fall 1); ev 25 (E.Task_start 1); ev 35 (E.Task_end 1);
      ev 36 (E.Msg_rise 2); ev 39 (E.Msg_fall 2); ev 40 (E.Task_start 2);
      ev 50 (E.Task_end 2) ]

let () =
  print_endline "=== 1. A malformed period is rejected at validation ===";
  (match
     P.make ~index:0 ~task_set:ts
       [ ev 10 (E.Task_start 0); ev 21 (E.Msg_rise 1) ]
   with
   | Ok _ -> assert false
   | Error e -> Format.printf "rejected: %s@.@." (P.string_of_error e));

  print_endline "=== 2. A physically impossible message empties the version space ===";
  (* A frame that rises before any task has finished has no admissible
     sender: the MoC assumption is violated. *)
  let impossible =
    P.make_exn ~index:0 ~task_set:ts
      [ ev 5 (E.Msg_rise 7); ev 8 (E.Msg_fall 7); ev 10 (E.Task_start 0);
        ev 20 (E.Task_end 0) ]
  in
  let trace =
    Rt_trace.Trace.of_periods ~task_set:ts [ clean_period 0; impossible ]
  in
  let o = Rt_learn.Exact.run trace in
  Format.printf "hypotheses left: %d (empty => trace errors or MoC mismatch)@.@."
    (List.length o.hypotheses);

  print_endline "=== 3. Clean trace learns normally ===";
  let trace = Rt_trace.Trace.of_periods ~task_set:ts [ clean_period 0; clean_period 1 ] in
  let o = Rt_learn.Exact.run trace in
  Format.printf "hypotheses: %d@." (List.length o.hypotheses);
  List.iter (fun d -> Format.printf "%s@.@." (Rt_lattice.Depfun.to_string d))
    o.hypotheses;

  print_endline "=== 4. Negative examples prune the version space ===";
  (* Suppose a safety spec says: t3 must never run without t2 having run
     (we witnessed a faulty unit doing exactly that). Periods exhibiting
     the forbidden behaviour become negative instances. *)
  let forbidden =
    P.make_exn ~index:99 ~task_set:ts
      [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0); ev 21 (E.Msg_rise 1);
        ev 24 (E.Msg_fall 1); ev 30 (E.Task_start 2); ev 40 (E.Task_end 2) ]
  in
  let r = Rt_learn.Version_space.learn ~negatives:[ forbidden ] trace in
  Format.printf "accepted %d, rejected %d hypotheses@."
    (List.length r.accepted) (List.length r.rejected);
  List.iter (fun d ->
      Format.printf "rejected (would allow the forbidden behaviour):@.%s@.@."
        (Rt_lattice.Depfun.to_string d))
    r.rejected;
  List.iter (fun d ->
      Format.printf "accepted:@.%s@.@." (Rt_lattice.Depfun.to_string d))
    r.accepted
;

  print_endline "\n=== 5. Accuracy under increasing corruption (GM case study) ===";
  (* The full resilient pipeline on the paper's 27-period controller
     trace: inject every corruption kind at a given rate, re-ingest in
     recover mode (syntactic repair + semantic excision), learn at bound
     16, and score the LUB model against design ground truth. *)
  let module Gm = Rt_case.Gm_model in
  let module C = Rt_trace.Corrupt in
  let module Io = Rt_trace.Trace_io in
  let module Q = Rt_trace.Quarantine in
  let clean = Gm.trace () in
  let truth = Option.get (Rt_task.Design.ground_truth (Gm.design ())) in
  Format.printf
    "rate   kept  rep  drop  confidence  hyps  cell-acc  dep-prec  dep-rec@.";
  List.iter
    (fun rate ->
       let text = C.to_string (C.apply { C.default with rate; seed = 7 } clean) in
       match Io.of_string ~mode:`Recover ~eps:60 text with
       | Error e ->
         Format.printf "%.2f   unreadable: line %d: %s@." rate e.line e.message
       | Ok (t, q) ->
         let t, q = Io.semantic_filter t q in
         let o = Rt_learn.Heuristic.run ~bound:16 t in
         (match o.hypotheses with
          | [] -> Format.printf "%.2f   inconsistent after recovery@." rate
          | hs ->
            let m =
              Rt_mining.Order_miner.score
                ~predicted:(Rt_lattice.Depfun.lub hs) ~truth
            in
            Format.printf
              "%.2f   %3d  %3d  %3d       %5.2f    %2d      %.2f      %.2f     %.2f@."
              rate q.Q.kept (List.length q.repaired) (List.length q.dropped)
              (Q.confidence q) (List.length hs) m.cell_accuracy
              m.dependency_precision m.dependency_recall))
    [ 0.0; 0.02; 0.05; 0.10; 0.20 ]
