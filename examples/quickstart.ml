(* Quickstart: generate a black-box system, log its bus traffic, learn a
   dependency model, and ask it questions.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A system design we will treat as a black box: a random layered
        task graph deployed on 2 ECUs and one CAN bus. *)
  let design = Rt_task.Generator.generate Rt_task.Generator.default ~seed:42 in
  Format.printf "system under observation: %a@.@." Rt_task.Design.pp design;

  (* 2. Execute it for 20 periods and capture the bus log — the only
        thing the learner is allowed to see. *)
  let trace =
    Rt_sim.Simulator.run design
      { Rt_sim.Simulator.default_config with periods = 20; seed = 7 }
  in
  Format.printf "captured %a@.@." Rt_trace.Trace.pp_summary trace;

  (* 3. Learn a dependency model with the bounded heuristic. *)
  let report = Rt_engine.Learner.learn (Rt_engine.Learner.Heuristic 8) trace in
  let names = Rt_task.Task_set.names (Rt_task.Design.task_set design) in
  Format.printf "%a@.@." (Rt_engine.Learner.pp_report ~names) report;

  (* 4. Query the learned model. *)
  match report.lub with
  | None -> print_endline "trace was inconsistent with the assumed MoC"
  | Some model ->
    let dot = Rt_analysis.Dep_graph.to_dot ~names model in
    print_endline "dependency graph (graphviz):";
    print_endline dot;
    List.iter (fun info ->
        Format.printf "%a@." (Rt_analysis.Classify.pp_info ~names) info)
      (Rt_analysis.Classify.classify model);
    Format.printf "@.state space: %d of %d period outcomes remain possible (%.1fx reduction)@."
      (Rt_analysis.Reachability.count_consistent model)
      (Rt_analysis.Reachability.total_states (Rt_lattice.Depfun.size model))
      (Rt_analysis.Reachability.reduction model)
