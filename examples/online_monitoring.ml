(* Online monitoring: learn the dependency model of a live system period
   by period, and watch properties become provable as evidence arrives.

   This runs the full streaming stack end to end: the simulator emits
   events into a pull-based Event_source (one period buffered, never the
   whole trace), the Segmenter cuts the stream into validated periods,
   and the Engine folds each period into the model the moment it
   completes — the same pipeline `rtgen watch` runs against a growing
   capture file.

   Run with: dune exec examples/online_monitoring.exe *)

module Gm = Rt_case.Gm_model
module Df = Rt_lattice.Depfun
module Q = Rt_analysis.Query
module Seg = Rt_trace.Segmenter
module Engine = Rt_engine.Engine

let properties =
  [ "mode coverage", "d(A,L) = -> & d(B,M) = ->";
    "scheduler-induced Q-O", "d(Q,O) = <-";
    "joins identified", "conjunction(H) & conjunction(P) & conjunction(Q)";
    "mode selectors", "disjunction(A) & disjunction(B)" ]

let () =
  let design = Gm.design () in
  let names = Gm.names in
  (* The "live bus": events appear one at a time, periods on demand. *)
  let src = Rt_sim.Simulator.source design Gm.reference_config in
  let seg =
    Seg.create
      ~task_set:(Rt_task.Design.task_set design)
      ~period_len:design.Rt_task.Design.period src
  in
  let eng =
    Engine.create ~ntasks:(Array.length names) (Engine.Heuristic { bound = 1 })
  in
  let proven = Hashtbl.create 4 in
  Format.printf "%-8s %-8s %-10s %s@." "period" "weight" "consistent"
    "newly provable properties";
  let rec monitor () =
    match Seg.next seg with
    | None -> ()
    | Some (`Invalid e) ->
      Format.printf "%-8d %-8s %-10s@." (e.Seg.period_index + 1) "-" "INVALID";
      monitor ()
    | Some (`Period p) ->
      Engine.feed eng p;
      (match Engine.current eng with
       | [] -> Format.printf "%-8d %-8s %-10s@." (p.index + 1) "-" "NO"
       | model :: _ ->
         let newly =
           List.filter_map (fun (label, q) ->
               if Hashtbl.mem proven label then None
               else
                 match Q.holds ~model ~names (Q.parse_exn q) with
                 | Ok true ->
                   Hashtbl.replace proven label ();
                   Some label
                 | Ok false | Error _ -> None)
             properties
         in
         Format.printf "%-8d %-8d %-10s %s@." (p.index + 1) (Df.weight model)
           "yes" (String.concat ", " newly));
      monitor ()
  in
  monitor ();
  let final = Engine.finalize eng in
  Format.printf "@.%d of %d properties provable after %d periods@."
    (Hashtbl.length proven) (List.length properties) final.Engine.periods;
  (* The anytime guarantee: the online model always matches everything
     seen so far — including the same trace learned in batch. *)
  match final.Engine.hypotheses with
  | model :: _ ->
    Format.printf "final model matches the whole trace: %b@."
      (Rt_learn.Matching.matches_trace model (Gm.trace ~seed:2007 ()))
  | [] -> ()
