(* The §3.4 case study on the synthetic GM-like controller: 18 tasks
   (S, A..Q), one CAN bus, 27 logged periods. Learns the dependency
   model, prints the Fig. 5-style graph, and re-derives every property
   the paper reports.

   Run with: dune exec examples/gm_case_study.exe *)

module Gm = Rt_case.Gm_model
module Df = Rt_lattice.Depfun
module Dv = Rt_lattice.Depval

let () =
  let design = Gm.design () in
  let names = Gm.names in
  let trace = Gm.trace () in
  Format.printf "reference log: %a@.@." Rt_trace.Trace.pp_summary trace;

  (* Learn with the bounded heuristic (the paper used the heuristics for
     this trace too; bound 1 yields the conservative single model). *)
  let report = Rt_engine.Learner.learn (Rt_engine.Learner.Heuristic 1) trace in
  Format.printf "learning: %d hypotheses in %.3fs (converged: %b)@.@."
    (List.length report.hypotheses) report.elapsed_s report.converged;
  let model = Option.get report.lub in

  print_endline "=== Fig. 5: learned dependency graph (graphviz) ===";
  print_string (Rt_analysis.Dep_graph.to_dot ~names model);

  print_endline "\n=== Properties the paper reports ===";
  let t = Gm.task in
  let show_value a b =
    Format.printf "d(%s,%s) = %s@." a b
      (Dv.to_string (Df.get model (t a) (t b)))
  in
  let disj = Rt_analysis.Classify.disjunction_nodes model in
  let conj = Rt_analysis.Classify.conjunction_nodes model in
  Format.printf "disjunction nodes: %s (paper: A and B are disjunction nodes)@."
    (String.concat " " (List.map (fun i -> names.(i)) disj));
  Format.printf "conjunction nodes: %s (paper: H, P and Q are conjunction nodes)@."
    (String.concat " " (List.map (fun i -> names.(i)) conj));
  show_value "A" "L";
  print_endline "  -> no matter which mode task A chooses, task L must execute";
  show_value "B" "M";
  print_endline "  -> no matter which mode task B chooses, task M must execute";
  show_value "Q" "O";
  print_endline
    "  -> the implicit Q-O data dependency induced by the OSEK/CAN\n\
    \     schedulers: not an edge of the design, discovered from the trace";

  print_endline "\n=== State-space reduction for model checking ===";
  let consistent = Rt_analysis.Reachability.count_consistent model in
  Format.printf
    "consistent period outcomes: %d of %d possible (%.0fx reduction)@."
    consistent
    (Rt_analysis.Reachability.total_states (Df.size model))
    (Rt_analysis.Reachability.reduction model);

  print_endline "\n=== Operation modes ===";
  List.iter (fun pair_list ->
      match pair_list with
      | [ _ ] -> ()
      | cls ->
        Format.printf "always execute together: {%s}@."
          (String.concat " " (List.map (fun i -> names.(i)) cls)))
    (Rt_analysis.Modes.co_execution_classes model);
  List.iter (fun (a, b) ->
      Format.printf "mutually exclusive (modes): %s vs %s@." names.(a) names.(b))
    (Rt_analysis.Modes.exclusive_pairs trace);

  print_endline "\n=== End-to-end latency on the critical path (incl. Q) ===";
  let path = Rt_analysis.Latency.critical_path design in
  let pess, inf, gain = Rt_analysis.Latency.improvement design ~dep:model ~path in
  Format.printf "path: %s@."
    (String.concat " -> " (List.map (fun i -> names.(i)) path));
  Format.printf "pessimistic (all tasks independent): %dus@." pess;
  Format.printf "dependency-informed:                 %dus (%.2fx tighter)@."
    inf gain;
  Format.printf "response time of Q alone: %dus -> %dus (O can no longer preempt)@."
    (Rt_analysis.Latency.response_time design (Gm.task "Q"))
    (Rt_analysis.Latency.response_time ~dep:model design (Gm.task "Q"));

  print_endline "\n=== Baseline: process-mining ordering inference ===";
  let truth = Option.get (Rt_task.Design.ground_truth design) in
  let mined = Rt_mining.Order_miner.infer trace in
  Format.printf "order miner vs design truth: %a@."
    Rt_mining.Order_miner.pp_metrics
    (Rt_mining.Order_miner.score ~predicted:mined ~truth);
  Format.printf "learner (bound 1) vs design truth: %a@."
    Rt_mining.Order_miner.pp_metrics
    (Rt_mining.Order_miner.score ~predicted:model ~truth)
