module Df = Rt_lattice.Depfun

type algorithm = Exact | Heuristic of int

type bound_step = {
  bound : int;
  lub_changed : bool;
  elapsed_s : float;
  hypotheses : int;
}

type report = {
  algorithm : algorithm;
  hypotheses : Df.t list;
  lub : Df.t option;
  converged : bool;
  consistent : bool;
  elapsed_s : float;
  periods : int;
  messages : int;
  trajectory : bound_step list;
}

let now_s () = float_of_int (Rt_obs.Registry.now_ns ()) /. 1e9

(* Feed every period of [trace] through a fresh engine and finalize:
   the batch entry point is literally the streaming one driven from an
   in-memory list. *)
let engine_snapshot ?exact_limit ?window ?pool ?obs algorithm trace =
  let alg =
    match algorithm with
    | Exact -> Engine.Exact { limit = exact_limit }
    | Heuristic bound -> Engine.Heuristic { bound }
  in
  let eng =
    Engine.create ?window ?pool ?obs
      ~ntasks:(Rt_trace.Trace.task_count trace) alg
  in
  List.iter (Engine.feed eng) (Rt_trace.Trace.periods trace);
  Engine.finalize eng

let report_of ~algorithm ~elapsed_s ~trajectory (s : Engine.snapshot) trace =
  {
    algorithm;
    hypotheses = s.hypotheses;
    lub = s.lub;
    converged = s.converged;
    consistent = s.consistent;
    elapsed_s;
    periods = Rt_trace.Trace.period_count trace;
    messages = Rt_trace.Trace.total_messages trace;
    trajectory;
  }

let learn ?exact_limit ?window ?pool ?obs algorithm trace =
  let t0 = now_s () in
  let s = engine_snapshot ?exact_limit ?window ?pool ?obs algorithm trace in
  report_of ~algorithm ~elapsed_s:(now_s () -. t0) ~trajectory:[] s trace

let auto ?(initial = 1) ?(max_bound = 256) ?window ?pool ?obs trace =
  if initial < 1 then invalid_arg "Learner.auto: initial bound must be >= 1";
  let t0 = now_s () in
  let rec go bound prev steps =
    let s0 = now_s () in
    let s = engine_snapshot ?window ?pool ?obs (Heuristic bound) trace in
    let pass_elapsed = now_s () -. s0 in
    let stable =
      match prev, s.lub with
      | Some p, Some l -> Df.equal p l
      | None, None -> true  (* consistently inconsistent *)
      | _ -> false
    in
    let steps =
      { bound;
        lub_changed = not stable;
        elapsed_s = pass_elapsed;
        hypotheses = List.length s.hypotheses }
      :: steps
    in
    if stable || bound >= max_bound then
      ( report_of ~algorithm:(Heuristic bound) ~elapsed_s:(now_s () -. t0)
          ~trajectory:(List.rev steps) s trace,
        bound )
    else go (bound * 2) s.lub steps
  in
  go initial None []

let verify report trace =
  List.for_all (fun d -> Rt_learn.Matching.matches_trace d trace)
    report.hypotheses

let pp_report ?names ppf r =
  let alg = match r.algorithm with
    | Exact -> "exact"
    | Heuristic b -> Printf.sprintf "heuristic(bound=%d)" b
  in
  Format.fprintf ppf "@[<v>algorithm: %s@,periods: %d, messages: %d@,"
    alg r.periods r.messages;
  Format.fprintf ppf "hypotheses: %d%s, %.3fs@,"
    (List.length r.hypotheses)
    (if r.converged then " (converged)"
     else if not r.consistent then " (INCONSISTENT TRACE)"
     else "")
    r.elapsed_s;
  if r.trajectory <> [] then begin
    Format.fprintf ppf "bound trajectory:@,";
    List.iter (fun s ->
        Format.fprintf ppf "  bound %d: %d hypothesis(es), lub %s, %.3fs@,"
          s.bound s.hypotheses
          (if s.lub_changed then "changed" else "stable")
          s.elapsed_s)
      r.trajectory
  end;
  (match r.lub with
   | Some d -> Format.fprintf ppf "least upper bound:@,%a@]" (Df.pp ?names) d
   | None -> Format.fprintf ppf "@]")
