module Df = Rt_lattice.Depfun
module H = Rt_learn.Heuristic
module E = Rt_learn.Exact

type algorithm =
  | Exact of { limit : int option }
  | Heuristic of { bound : int }

type core = Hstate of H.state | Estate of E.state

type t = {
  core : core;
  obs : Rt_obs.Registry.t option;
  flight : Rt_obs.Flight.scope option;
  feed_hist : Rt_obs.Histogram.t option;
  periods_gauge : Rt_obs.Registry.gauge option;
  msgs_gauge : Rt_obs.Registry.gauge option;
}

type snapshot = {
  hypotheses : Df.t list;
  lub : Df.t option;
  converged : bool;
  consistent : bool;
  periods : int;
  messages : int;
}

let wrap ?obs ?flight core =
  {
    core;
    obs;
    flight;
    feed_hist =
      Option.map (fun r -> Rt_obs.Registry.histogram r "engine.feed_ns") obs;
    periods_gauge =
      Option.map
        (fun r -> Rt_obs.Registry.gauge r "engine.periods_in_flight")
        obs;
    msgs_gauge =
      Option.map
        (fun r -> Rt_obs.Registry.gauge r "engine.messages_in_flight")
        obs;
  }

let create ?window ?pool ?obs ?flight ~ntasks algorithm =
  let core =
    match algorithm with
    | Exact { limit } -> Estate (E.init ?limit ?window ?obs ~ntasks ())
    | Heuristic { bound } -> Hstate (H.init ?window ?pool ?obs ~bound ~ntasks ())
  in
  wrap ?obs ?flight core

let of_heuristic ?obs ?flight st = wrap ?obs ?flight (Hstate st)

let periods_fed t =
  match t.core with
  | Hstate st -> (H.stats st).periods_processed
  | Estate st -> (E.stats st).periods_processed

let messages_fed t =
  match t.core with
  | Hstate st -> H.messages_processed st
  | Estate st -> E.messages_processed st

let feed t p =
  let t0 = if t.feed_hist = None then 0 else Rt_obs.Registry.now_ns () in
  (match t.core with Hstate st -> H.feed st p | Estate st -> E.feed st p);
  (match t.flight with
   | None -> ()
   | Some s ->
     Rt_obs.Flight.record_s s Rt_obs.Flight.Debug ~kind:"engine.period"
       (Printf.sprintf "periods=%d messages=%d" (periods_fed t)
          (messages_fed t)));
  match t.feed_hist with
  | None -> ()
  | Some h ->
    Rt_obs.Histogram.record h (Rt_obs.Registry.now_ns () - t0);
    (match t.periods_gauge with
     | Some g -> Rt_obs.Registry.set_gauge g (periods_fed t)
     | None -> ());
    (match t.msgs_gauge with
     | Some g -> Rt_obs.Registry.set_gauge g (messages_fed t)
     | None -> ())

let rec feed_source ?on_period t seg =
  match Rt_trace.Segmenter.next seg with
  | None -> Ok (periods_fed t)
  | Some (`Invalid e) -> Error e
  | Some (`Period p) ->
    feed t p;
    (match on_period with Some f -> f t | None -> ());
    feed_source ?on_period t seg

let current t =
  match t.core with Hstate st -> H.current st | Estate st -> E.current st

let violations t =
  match t.core with
  | Hstate st -> Some (H.violations st)
  | Estate _ -> None

(* The engine's own counter totals come from the core state — which is
   what checkpoints carry — so a resumed engine republishes the same
   numbers an uninterrupted one would. *)
let publish t =
  (match t.core with Hstate st -> H.publish st | Estate st -> E.publish st);
  match t.obs with
  | None -> ()
  | Some r ->
    let set = Rt_obs.Registry.set_counter r in
    set "engine.periods" (periods_fed t);
    set "engine.messages" (messages_fed t)

let snapshot t =
  publish t;
  let hypotheses = current t in
  {
    hypotheses;
    lub = (match hypotheses with [] -> None | l -> Some (Df.lub l));
    converged = List.length hypotheses = 1;
    consistent = hypotheses <> [];
    periods = periods_fed t;
    messages = messages_fed t;
  }

let finalize = snapshot

let set_provenance t ~dropped ~repaired =
  match t.core with
  | Hstate st -> H.set_provenance st ~dropped ~repaired
  | Estate _ -> ()

let checkpoint ?tag t =
  match t.core with
  | Hstate st -> Ok (H.checkpoint ?tag st)
  | Estate _ -> Error "the exact algorithm has no checkpoint format"

let resume ?pool ?obs ?flight data =
  match H.resume ?pool ?obs data with
  | Ok (st, tag) -> Ok (of_heuristic ?obs ?flight st, tag)
  | Error _ as e -> e
