(** The incremental learning engine: one period in, updated model out.

    This is the per-period fold the paper's algorithms actually are,
    surfaced as an API. An engine wraps either core ({!Rt_learn.Exact}
    or {!Rt_learn.Heuristic}); callers [feed] it periods from any source
    — a batch {!Rt_trace.Trace.t}, a {!Rt_trace.Segmenter} over a live
    {!Rt_trace.Event_source}, a growing file — and may take a
    {!snapshot} at any point mid-stream. Feeding the periods of a trace
    in order and finalizing is {e exactly} [Learner.learn] on that
    trace: same hypotheses, same LUB, same published counters, because
    both run this code.

    Instrumentation (with [obs]): an ["engine.feed_ns"] latency
    histogram and ["engine.periods_in_flight"] /
    ["engine.messages_in_flight"] gauges are recorded live, and
    ["engine.periods"] / ["engine.messages"] counter totals are
    published at snapshot time from the core's own state — which
    travels through checkpoints — so the totals are deterministic
    across [-j] levels and across a kill/resume. *)

type algorithm =
  | Exact of { limit : int option }  (** precise; [limit] bounds the set *)
  | Heuristic of { bound : int }     (** bounded width *)

type t

type snapshot = {
  hypotheses : Rt_lattice.Depfun.t list;  (** the answer set, so far *)
  lub : Rt_lattice.Depfun.t option;       (** [⊔ D*]; [None] iff empty *)
  converged : bool;                       (** exactly one hypothesis *)
  consistent : bool;                      (** answer set non-empty *)
  periods : int;                          (** periods fed so far *)
  messages : int;                         (** bus messages fed so far *)
}

val create :
  ?window:int -> ?pool:Rt_util.Domain_pool.t -> ?obs:Rt_obs.Registry.t ->
  ?flight:Rt_obs.Flight.scope -> ntasks:int -> algorithm -> t
(** A fresh engine holding only [{d⊥}]. [pool] parallelizes the
    heuristic fan-out (ignored by [Exact]); results are identical for
    every pool size. [flight] attaches a flight-recorder scope: each
    {!feed} appends one [Debug]-severity ["engine.period"] event. *)

val of_heuristic :
  ?obs:Rt_obs.Registry.t -> ?flight:Rt_obs.Flight.scope ->
  Rt_learn.Heuristic.state -> t
(** Wrap an existing heuristic state — e.g. one resumed from a
    checkpoint. [obs] attaches the engine-level instrumentation (the
    state keeps its own registry attachment for core metrics). *)

val feed : t -> Rt_trace.Period.t -> unit
(** Consume one period.
    @raise Rt_learn.Exact.Blowup when the exact working set exceeds
    its limit. *)

val feed_source :
  ?on_period:(t -> unit) -> t -> Rt_trace.Segmenter.t ->
  (int, Rt_trace.Segmenter.segment_error) result
(** Drain a streaming segmenter into the engine: pull, feed, repeat,
    never holding more than one period. [on_period] runs after each
    period is consumed (print a snapshot, write a checkpoint, …).
    Returns the number of periods fed, or the first [`Invalid] from a
    strict-mode segmenter. *)

val periods_fed : t -> int

val messages_fed : t -> int

val current : t -> Rt_lattice.Depfun.t list
(** The current hypothesis list (fresh copies), cheapest first. *)

val violations : t -> bool array array option
(** A copy of the heuristic core's accumulated violation matrix
    ({!Rt_learn.Heuristic.violations}); [None] for an exact-core
    engine. Consumed by {!Rt_shard} when folding per-shard engines. *)

val publish : t -> unit
(** Push the core's and the engine's counter totals into the attached
    registry without building a snapshot. *)

val snapshot : t -> snapshot
(** The model learned from everything fed so far; also publishes the
    counter totals. Non-destructive — feeding may continue, and a
    mid-stream snapshot followed by more feeding equals an
    uninterrupted run. *)

val finalize : t -> snapshot
(** The terminal {!snapshot}: take the final answer and publish totals.
    The engine remains usable, but by convention nothing is fed after
    finalizing. *)

val set_provenance : t -> dropped:int -> repaired:int -> unit
(** Record how many periods ingestion quarantined before the engine
    ever saw them (heuristic core only; no-op for exact). *)

val checkpoint : ?tag:string -> t -> (string, string) result
(** Serialize the core state ({!Rt_learn.Heuristic.checkpoint}).
    [Error] for an exact-core engine, which has no checkpoint format. *)

val resume :
  ?pool:Rt_util.Domain_pool.t -> ?obs:Rt_obs.Registry.t ->
  ?flight:Rt_obs.Flight.scope -> string ->
  (t * string, string) result
(** Deserialize a heuristic checkpoint into a live engine plus its tag. *)
