(** Facade over the two algorithms with a uniform report — the entry point
    a downstream user calls. Both entry points drive the incremental
    {!Engine}; [learn] on a trace is feeding its periods in order and
    finalizing, nothing more, which is why batch results and streamed
    results are identical. *)

type algorithm =
  | Exact                  (** precise, worst-case exponential *)
  | Heuristic of int       (** bounded width (the paper's heuristics) *)

type bound_step = {
  bound : int;             (** the heuristic bound this pass ran with *)
  lub_changed : bool;      (** did the LUB move vs. the previous pass? *)
  elapsed_s : float;       (** wall-clock time of this pass *)
  hypotheses : int;        (** answer-set size at this bound *)
}
(** One doubling step of {!auto}'s bound search. *)

type report = {
  algorithm : algorithm;
  hypotheses : Rt_lattice.Depfun.t list;  (** the answer set [D*] *)
  lub : Rt_lattice.Depfun.t option;
  (** [⊔ D*] — the single conservative answer (what §3.3 reports as
      [dLUB]); [None] iff the answer set is empty. *)
  converged : bool;        (** exactly one hypothesis left *)
  consistent : bool;       (** answer set non-empty *)
  elapsed_s : float;
  (** Wall-clock learning time, from the monotonic clock
      ({!Rt_obs.Registry.now_ns}) — never negative, even if NTP steps
      the system clock mid-run. *)
  periods : int;
  messages : int;
  trajectory : bound_step list;
  (** {!auto}'s per-bound history, in doubling order; [[]] for a plain
      {!learn}. Shows why the final bound was chosen. *)
}

val learn :
  ?exact_limit:int -> ?window:int -> ?pool:Rt_util.Domain_pool.t ->
  ?obs:Rt_obs.Registry.t -> algorithm -> Rt_trace.Trace.t -> report

val auto :
  ?initial:int -> ?max_bound:int -> ?window:int ->
  ?pool:Rt_util.Domain_pool.t -> ?obs:Rt_obs.Registry.t ->
  Rt_trace.Trace.t -> report * int
(** Pick the heuristic bound automatically: double it (starting at
    [initial], default 1) until the least upper bound of the answer set
    stops changing between consecutive runs, or [max_bound] (default
    256) is reached. Returns the final report and the bound used; the
    report's [trajectory] records every pass. Each pass re-feeds the
    already-segmented periods through a fresh engine — the trace source
    is never re-read. A pragmatic answer to the open tuning knob the
    paper leaves to the user. *)

val verify : report -> Rt_trace.Trace.t -> bool
(** Theorem 2 as a runtime check: every returned hypothesis matches every
    period of the trace. *)

val pp_report : ?names:string array -> Format.formatter -> report -> unit
