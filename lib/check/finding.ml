(* The findings record shared by the two static-analysis prongs: rtlint
   (AST rules over the codebase) and rtgen check (semantic rules over
   learned models). One record type, one rule registry, three renderers
   (human text, JSON, SARIF) — so CI consumes both tools identically. *)

module Json = Rt_obs.Json

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* SARIF calls the middle level "warning" too but spells info "note". *)
let severity_to_sarif = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

type pos = { file : string; line : int; col : int }

type t = {
  rule : string;
  severity : severity;
  pos : pos option;
  message : string;
}

let v ?pos ~rule ~severity message = { rule; severity; pos; message }

let at ~file ~line ~col = { file; line; col }

(* --- rule registry --- *)

type rule_info = { id : string; name : string; summary : string }

(* Rule ids are stable API: tests, CI greps and suppression comments all
   key on them. RTL* are source-lint rules, RTC0* lattice-law
   self-checks, RTC1* per-model rules, RTC2* answer-set/checkpoint
   rules. *)
let rules =
  [
    { id = "RTL000"; name = "suppression-needs-reason";
      summary = "a 'rtlint: allow' comment must carry a justification" };
    { id = "RTL001"; name = "no-poly-hash";
      summary = "Hashtbl.hash / seeded_hash are banned: hashes feed \
                 deterministic dedup indexes and must stay structural \
                 and incremental" };
    { id = "RTL002"; name = "no-poly-compare";
      summary = "polymorphic compare/equality on lattice or hypothesis \
                 values; use the monomorphic Depval/Depfun/Hypothesis \
                 operations" };
    { id = "RTL003"; name = "no-wall-clock";
      summary = "wall-clock or ambient-randomness primitive outside \
                 lib/obs and the simulator; deterministic paths must \
                 use Rt_obs.Registry.now_ns or Rt_util.Pcg32" };
    { id = "RTL004"; name = "no-captured-mutation";
      summary = "mutation of state captured by a closure handed to \
                 Domain_pool; parallel tasks must write only \
                 task-partitioned slots or locally-bound state" };
    { id = "RTL005"; name = "depval-wildcard";
      summary = "wildcard match arm over the 7-value dependency \
                 lattice; enumerate the constructors so adding a value \
                 is a compile error" };
    { id = "RTL006"; name = "no-hot-loop-alloc";
      summary = "record or tuple construction inside a while/for body \
                 of the packed ingest path (mmap_io, event_arena); \
                 per-event allocation defeats the zero-allocation \
                 contract — keep state in the arena or scalar refs" };
    { id = "RTL999"; name = "parse-error";
      summary = "the source file could not be parsed" };
    { id = "RTC001"; name = "law-idempotence";
      summary = "lattice law: v \xe2\x8a\x94 v = v and v \xe2\x8a\x93 v = v" };
    { id = "RTC002"; name = "law-commutativity";
      summary = "lattice law: \xe2\x8a\x94 and \xe2\x8a\x93 are commutative" };
    { id = "RTC003"; name = "law-absorption";
      summary = "lattice law: a \xe2\x8a\x94 (a \xe2\x8a\x93 b) = a and \
                 a \xe2\x8a\x93 (a \xe2\x8a\x94 b) = a" };
    { id = "RTC004"; name = "law-monotonicity";
      summary = "lattice law: a \xe2\x8a\x91 b implies a \xe2\x8a\x94 c \
                 \xe2\x8a\x91 b \xe2\x8a\x94 c; weaken and covers move up" };
    { id = "RTC005"; name = "law-order";
      summary = "lattice law: \xe2\x8a\x91 is a partial order consistent \
                 with \xe2\x8a\x94/\xe2\x8a\x93 and the tabulated kernels" };
    { id = "RTC101"; name = "diagonal-not-par";
      summary = "d(t,t) must be \xe2\x80\x96: a task has no dependency on \
                 itself" };
    { id = "RTC102"; name = "bi-unobservable";
      summary = "\xe2\x86\x94 exists for lattice completeness and is never \
                 produced by single-message evidence; its presence \
                 deserves a second look" };
    { id = "RTC103"; name = "definite-cycle";
      summary = "definite precedences (\xe2\x86\x92/\xe2\x86\x90) form a \
                 cycle, which no single period can schedule" };
    { id = "RTC104"; name = "mirror-inconsistency";
      summary = "a definite dependency without any converse evidence in \
                 the mirror cell; message evidence always writes both" };
    { id = "RTC105"; name = "task-mismatch";
      summary = "the model's task set does not match the reference \
                 trace or task model" };
    { id = "RTC106"; name = "conformance-violation";
      summary = "a definite cell is contradicted by an observed period; \
                 post-processing must have weakened it to the ?-form" };
    { id = "RTC201"; name = "duplicate-hypothesis";
      summary = "the answer set contains the same dependency function \
                 twice; post-processing unifies duplicates" };
    { id = "RTC202"; name = "non-minimal-hypothesis";
      summary = "a hypothesis has a strictly more specific peer; the \
                 answer set must contain only most specific elements" };
    { id = "RTC203"; name = "bound-overflow";
      summary = "a checkpointed working set is larger than its bound, or \
                 the checkpoint failed its integrity check (truncated, \
                 torn or bit-flipped)" };
    { id = "RTC999"; name = "model-parse-error";
      summary = "the model, checkpoint or trace could not be parsed" };
  ]

let rule_info id = List.find_opt (fun r -> r.id = id) rules

let rule_name id =
  match rule_info id with Some r -> r.name | None -> id

(* --- aggregation --- *)

let count sev fs = List.length (List.filter (fun f -> f.severity = sev) fs)

let has_errors fs = List.exists (fun f -> f.severity = Error) fs

let exit_code fs = if has_errors fs then Exit_code.findings else Exit_code.ok

(* Stable report order: by file, then line/col, then rule id. Findings
   never depend on traversal order, so reports diff cleanly. *)
let compare_keys (f1, l1, c1, r1, m1) (f2, l2, c2, r2, m2) =
  let c = String.compare f1 f2 in
  if c <> 0 then c
  else
    let c = Int.compare l1 l2 in
    if c <> 0 then c
    else
      let c = Int.compare c1 c2 in
      if c <> 0 then c
      else
        let c = String.compare r1 r2 in
        if c <> 0 then c else String.compare m1 m2

let sort fs =
  let key f =
    match f.pos with
    | Some p -> (p.file, p.line, p.col, f.rule, f.message)
    | None -> ("", 0, 0, f.rule, f.message)
  in
  List.sort (fun a b -> compare_keys (key a) (key b)) fs

(* --- renderers --- *)

let pp_text ppf f =
  let pos =
    match f.pos with
    | Some p -> Printf.sprintf "%s:%d:%d: " p.file p.line p.col
    | None -> ""
  in
  Format.fprintf ppf "%s%s[%s %s] %s" pos
    (severity_to_string f.severity) f.rule (rule_name f.rule) f.message

let to_text fs =
  let b = Buffer.create 256 in
  List.iter (fun f -> Buffer.add_string b (Format.asprintf "%a@." pp_text f))
    (sort fs);
  Buffer.contents b

let summary_line ~tool fs =
  Printf.sprintf "%s: %d error(s), %d warning(s), %d info" tool
    (count Error fs) (count Warning fs) (count Info fs)

(* JSON follows the metrics.schema.json conventions: a schema tag and
   version first, then the payload; findings.schema.json pins the
   shape and scripts/check_findings.py validates it in CI. *)
let to_json ~tool fs =
  let finding f =
    let base =
      [ ("rule", Json.String f.rule);
        ("name", Json.String (rule_name f.rule));
        ("severity", Json.String (severity_to_string f.severity));
        ("message", Json.String f.message) ]
    in
    let pos =
      match f.pos with
      | None -> []
      | Some p ->
        [ ("file", Json.String p.file);
          ("line", Json.Int p.line);
          ("col", Json.Int p.col) ]
    in
    Json.Obj (base @ pos)
  in
  Json.Obj
    [ ("schema", Json.String "rtgen-findings");
      ("version", Json.Int 1);
      ("tool", Json.String tool);
      ("errors", Json.Int (count Error fs));
      ("warnings", Json.Int (count Warning fs));
      ("findings", Json.List (List.map finding (sort fs))) ]

(* Minimal SARIF 2.1.0: enough for GitHub code-scanning upload and for
   generic SARIF viewers — tool.driver with the rule catalogue, one
   result per finding. *)
let to_sarif ~tool fs =
  let rule r =
    Json.Obj
      [ ("id", Json.String r.id);
        ("name", Json.String r.name);
        ("shortDescription", Json.Obj [ ("text", Json.String r.summary) ]) ]
  in
  let result f =
    let location =
      match f.pos with
      | None -> []
      | Some p ->
        [ ( "locations",
            Json.List
              [ Json.Obj
                  [ ( "physicalLocation",
                      Json.Obj
                        [ ( "artifactLocation",
                            Json.Obj [ ("uri", Json.String p.file) ] );
                          ( "region",
                            Json.Obj
                              [ ("startLine", Json.Int p.line);
                                ("startColumn", Json.Int (p.col + 1)) ] ) ] )
                  ] ] ) ]
    in
    Json.Obj
      ( [ ("ruleId", Json.String f.rule);
          ("level", Json.String (severity_to_sarif f.severity));
          ("message", Json.Obj [ ("text", Json.String f.message) ]) ]
        @ location )
  in
  Json.Obj
    [ ("$schema",
       Json.String
         "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
          Schemata/sarif-schema-2.1.0.json");
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [ Json.Obj
              [ ( "tool",
                  Json.Obj
                    [ ( "driver",
                        Json.Obj
                          [ ("name", Json.String tool);
                            ("informationUri",
                             Json.String "https://github.com/rtgen/rtgen");
                            ("rules", Json.List (List.map rule rules)) ] ) ] );
                ("results", Json.List (List.map result (sort fs))) ] ] ) ]

type format = Text | Json_format | Sarif

let render ~tool ~format fs =
  match format with
  | Text ->
    let body = to_text fs in
    if body = "" then summary_line ~tool fs ^ "\n"
    else body ^ summary_line ~tool fs ^ "\n"
  | Json_format -> Json.to_string ~pretty:true (to_json ~tool fs) ^ "\n"
  | Sarif -> Json.to_string ~pretty:true (to_sarif ~tool fs) ^ "\n"
