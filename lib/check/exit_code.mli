(** Process exit codes shared by [rtgen] and [rtlint].

    - [ok] (0): success, no error-severity findings.
    - [findings] (1): the inputs were well-formed but violate at least
      one rule at error severity (lint findings, model-check findings,
      failed property queries, inconsistent traces).
    - [input_error] (2): an input could not be read or parsed (missing
      file, malformed trace/model/metrics document, conflicting flags).
    - [internal_error] (3): an uncaught exception; a bug in the tool.

    Command-line misuse (unknown flags) keeps cmdliner's own code 124. *)

val ok : int
val findings : int
val input_error : int
val internal_error : int

val describe : int -> string
(** One-line meaning of a code, for [--help] and docs. *)

val combine : int -> int -> int
(** Worst-of two codes: [internal_error > input_error > findings > ok].
    An input error trumps findings because an incomplete scan proves
    nothing about the unread remainder. *)
