(* One exit-code convention for every rtgen / rtlint entry point, so CI
   and scripts can distinguish "the input is broken" from "the input is
   well-formed but violates a rule" without parsing stderr. *)

let ok = 0
let findings = 1
let input_error = 2
let internal_error = 3

let describe = function
  | 0 -> "success"
  | 1 -> "findings at error severity (lint/check rule violations, failed properties)"
  | 2 -> "input error (unreadable file, parse error, invalid flag combination)"
  | 3 -> "internal error (uncaught exception; please report)"
  | _ -> "reserved"

(* Worst-of for commands that aggregate several sub-results: input
   errors trump findings (the scan was incomplete, so a clean findings
   list proves nothing), and internal errors trump everything. *)
let combine a b =
  let rank = function
    | 0 -> 0
    | 1 -> 1
    | 2 -> 2
    | _ -> 3
  in
  if rank a >= rank b then a else b
