(* Semantic static analysis of learned artifacts: saved models
   (Depfun matrix text), answer sets, and heuristic checkpoints are
   audited against the laws they must obey by construction — lattice
   algebra, schedulability of definite precedences, post-processing
   hygiene — independently of the learner that produced them. *)

module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun

let err = Finding.Error
let warn = Finding.Warning

let finding ?pos rule severity fmt =
  Printf.ksprintf (fun m -> Finding.v ?pos ~rule ~severity m) fmt

(* --- lattice law self-checks (RTC0xx) --- *)

(* The 7x7 tables are tiny, so the laws are checked exhaustively; this
   is the independent audit of the tabulated kernels the hot loops
   trust blindly. *)
let check_laws () =
  let acc = ref [] in
  let fail rule fmt =
    Printf.ksprintf (fun m -> acc := finding rule err "%s" m :: !acc) fmt
  in
  let vs = Dv.all in
  let s = Dv.to_string in
  List.iter (fun a ->
      if not (Dv.equal (Dv.join a a) a) then
        fail "RTC001" "%s %s %s <> %s" (s a) "\xe2\x8a\x94" (s a) (s a);
      if not (Dv.equal (Dv.meet a a) a) then
        fail "RTC001" "%s %s %s <> %s" (s a) "\xe2\x8a\x93" (s a) (s a);
      if not (Dv.leq a a) then fail "RTC005" "%s not \xe2\x8a\x91 itself" (s a);
      if Dv.of_index (Dv.index a) <> a then
        fail "RTC005" "of_index (index %s) <> %s" (s a) (s a))
    vs;
  List.iter (fun a ->
      List.iter (fun b ->
          if not (Dv.equal (Dv.join a b) (Dv.join b a)) then
            fail "RTC002" "join %s %s <> join %s %s" (s a) (s b) (s b) (s a);
          if not (Dv.equal (Dv.meet a b) (Dv.meet b a)) then
            fail "RTC002" "meet %s %s <> meet %s %s" (s a) (s b) (s b) (s a);
          if not (Dv.equal (Dv.join a (Dv.meet a b)) a) then
            fail "RTC003" "%s \xe2\x8a\x94 (%s \xe2\x8a\x93 %s) <> %s"
              (s a) (s a) (s b) (s a);
          if not (Dv.equal (Dv.meet a (Dv.join a b)) a) then
            fail "RTC003" "%s \xe2\x8a\x93 (%s \xe2\x8a\x94 %s) <> %s"
              (s a) (s a) (s b) (s a);
          if Dv.leq a b && Dv.leq b a && not (Dv.equal a b) then
            fail "RTC005" "\xe2\x8a\x91 not antisymmetric on %s, %s" (s a) (s b);
          (* leq, join and meet must tell the same story. *)
          if Dv.leq a b <> Dv.equal (Dv.join a b) b then
            fail "RTC005" "leq/join disagree on %s, %s" (s a) (s b);
          if Dv.leq a b <> Dv.equal (Dv.meet a b) a then
            fail "RTC005" "leq/meet disagree on %s, %s" (s a) (s b);
          (* join really is the least upper bound. *)
          if not (Dv.leq a (Dv.join a b) && Dv.leq b (Dv.join a b)) then
            fail "RTC005" "join %s %s below an argument" (s a) (s b);
          List.iter (fun c ->
              if Dv.leq a c && Dv.leq b c && not (Dv.leq (Dv.join a b) c)
              then
                fail "RTC005" "join %s %s not least below %s" (s a) (s b)
                  (s c);
              if Dv.leq a b && Dv.leq b c && not (Dv.leq a c) then
                fail "RTC005" "\xe2\x8a\x91 not transitive via %s" (s b);
              if Dv.leq a b
                 && not (Dv.leq (Dv.join a c) (Dv.join b c)) then
                fail "RTC004" "join not monotone: %s \xe2\x8a\x91 %s but \
                               join with %s breaks it" (s a) (s b) (s c))
            vs;
          (* The pure-index kernel tables must agree with the
             functions they tabulate. *)
          let ia = Dv.index a and ib = Dv.index b in
          if Dv.join_ix_tbl.((ia * 7) + ib)
             <> Dv.index (Dv.join a b) then
            fail "RTC005" "join_ix_tbl wrong at %s, %s" (s a) (s b);
          if Dv.leq_ix_tbl.((ia * 7) + ib) <> Dv.leq a b then
            fail "RTC005" "leq_ix_tbl wrong at %s, %s" (s a) (s b);
          if Dv.cmp_ix_tbl.((ia * 7) + ib) <> Dv.compare a b then
            fail "RTC005" "cmp_ix_tbl wrong at %s, %s" (s a) (s b))
        vs;
      if Dv.dist_ix_tbl.(Dv.index a) <> Dv.distance a then
        fail "RTC005" "dist_ix_tbl wrong at %s" (s a);
      (* Generalization steps move strictly up the lattice. *)
      if not (Dv.leq a (Dv.weaken a)) then
        fail "RTC004" "weaken %s not above %s" (s a) (s a);
      List.iter (fun c ->
          if not (Dv.lt a c) then
            fail "RTC004" "covers %s contains non-successor %s" (s a) (s c))
        (Dv.covers a))
    vs;
  List.rev !acc

(* --- lenient model reader --- *)

(* [Depfun.parse] refuses matrices that break its own invariants (the
   whole point of the checker is to look at those), so models are read
   into a raw cell matrix first, with per-row source lines for
   positioned findings. *)
type model = {
  source : string;
  names : string array;
  cells : Dv.t array array;
  row_lines : int array;  (** 1-based source line of each matrix row *)
}

let model_of_depfun ?(source = "<model>") ?names d =
  let n = Df.size d in
  let names =
    match names with
    | Some a -> a
    | None -> Array.init n (fun i -> Printf.sprintf "t%d" (i + 1))
  in
  {
    source;
    names;
    cells = Array.init n (fun a -> Array.init n (fun b -> Df.get d a b));
    row_lines = Array.make n 0;
  }

let parse_model ~source text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let fields l =
    String.split_on_char ' ' l |> List.filter (fun f -> f <> "")
  in
  match lines with
  | [] -> Error "empty model file"
  | (_, header) :: rows ->
    let names = Array.of_list (fields header) in
    let n = Array.length names in
    if n = 0 then Error "no task names in header"
    else if List.length rows <> n then
      Error
        (Printf.sprintf "expected %d matrix rows, got %d" n
           (List.length rows))
    else begin
      let cells = Array.make_matrix n n Dv.Par in
      let row_lines = Array.make n 0 in
      let exception Fail of string in
      try
        List.iteri (fun a (line, row) ->
            row_lines.(a) <- line;
            match fields row with
            | [] -> raise (Fail "empty matrix row")
            | label :: cs ->
              if not (Array.exists (String.equal label) names) then
                raise
                  (Fail
                     (Printf.sprintf "line %d: unknown row label %s" line
                        label));
              if List.length cs <> n then
                raise
                  (Fail
                     (Printf.sprintf "line %d: expected %d cells, got %d"
                        line n (List.length cs)));
              List.iteri (fun b c ->
                  match Dv.of_string c with
                  | Some v -> cells.(a).(b) <- v
                  | None ->
                    raise
                      (Fail
                         (Printf.sprintf "line %d: bad dependency value %s"
                            line c)))
                cs)
          rows;
        Ok { source; names; cells; row_lines }
      with Fail m -> Error m
    end

let load_model path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | text -> parse_model ~source:path text

let size m = Array.length m.names

let to_depfun m =
  let n = size m in
  let ok = ref true in
  for a = 0 to n - 1 do
    if not (Dv.equal m.cells.(a).(a) Dv.Par) then ok := false
  done;
  if not !ok then None
  else begin
    let d = Df.create n in
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if a <> b then Df.set d a b m.cells.(a).(b)
      done
    done;
    Some d
  end

(* --- per-model rules (RTC1xx) --- *)

let pos_of m a =
  if m.row_lines.(a) = 0 then None
  else Some (Finding.at ~file:m.source ~line:m.row_lines.(a) ~col:0)

(* Definite precedences within one period: [a] before [b] when a
   message from [a] determines [b]. Fwd means "a determines b", Bwd
   "a depends on b" — the converse edge. Bi contributes no edge here
   (it is flagged separately by RTC102): treating it as a 2-cycle
   would condemn every matrix that legitimately joined Fwd and Bwd
   evidence from different periods. *)
let definite_cycle m =
  let n = size m in
  let succs = Array.make n [] in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then begin
        match m.cells.(a).(b) with
        | Dv.Fwd -> succs.(a) <- b :: succs.(a)
        | Dv.Bwd -> succs.(b) <- a :: succs.(b)
        | Dv.Par | Dv.Bi | Dv.Fwd_maybe | Dv.Bwd_maybe | Dv.Bi_maybe -> ()
      end
    done
  done;
  (* Iterative DFS with colors; on a back edge, unwind the explicit
     stack for the cycle's vertices. *)
  let color = Array.make n 0 in
  let cycle = ref None in
  let rec visit path v =
    if Option.is_none !cycle then begin
      color.(v) <- 1;
      List.iter (fun w ->
          if Option.is_none !cycle then
            if color.(w) = 1 then begin
              let rec take acc = function
                | [] -> acc
                | x :: _ when x = w -> w :: acc
                | x :: tl -> take (x :: acc) tl
              in
              cycle := Some (take [ v ] path)
            end
            else if color.(w) = 0 then visit (v :: path) w)
        (List.rev succs.(v));
      color.(v) <- 2
    end
  in
  for v = 0 to n - 1 do
    if color.(v) = 0 && Option.is_none !cycle then visit [] v
  done;
  !cycle

let check_model m =
  let n = size m in
  let acc = ref [] in
  let add f = acc := f :: !acc in
  for a = 0 to n - 1 do
    if not (Dv.equal m.cells.(a).(a) Dv.Par) then
      add
        (finding ?pos:(pos_of m a) "RTC101" err
           "d(%s, %s) = %s; the diagonal must be \xe2\x80\x96" m.names.(a)
           m.names.(a)
           (Dv.to_string m.cells.(a).(a)));
    for b = 0 to n - 1 do
      if a <> b then begin
        let v = m.cells.(a).(b) and mirror = m.cells.(b).(a) in
        (match v with
         | Dv.Bi ->
           add
             (finding ?pos:(pos_of m a) "RTC102" warn
                "d(%s, %s) = \xe2\x86\x94: defined for lattice completeness \
                 but never produced by single-message evidence"
                m.names.(a) m.names.(b))
         | Dv.Par | Dv.Fwd | Dv.Bwd | Dv.Fwd_maybe | Dv.Bwd_maybe
         | Dv.Bi_maybe -> ());
        (* Message evidence always writes both cells of a pair:
           d(a,b) ⊒ → goes with d(b,a) ⊒ ← (possibly weakened, never
           erased). *)
        let mirror_ok =
          match v with
          | Dv.Fwd | Dv.Fwd_maybe -> Dv.leq Dv.Bwd mirror
          | Dv.Bwd | Dv.Bwd_maybe -> Dv.leq Dv.Fwd mirror
          | Dv.Bi -> Dv.leq Dv.Bi mirror
          | Dv.Par | Dv.Bi_maybe -> true
        in
        if a < b && not mirror_ok then
          add
            (finding ?pos:(pos_of m a) "RTC104" warn
               "d(%s, %s) = %s but d(%s, %s) = %s: message evidence \
                writes both cells of a pair"
               m.names.(a) m.names.(b) (Dv.to_string v) m.names.(b)
               m.names.(a) (Dv.to_string mirror))
      end
    done
  done;
  (match definite_cycle m with
   | None -> ()
   | Some cyc ->
     add
       (finding "RTC103" err
          "definite precedences form a cycle: %s; no single period can \
           schedule it"
          (String.concat " \xe2\x86\x92 "
             (List.map (fun i -> m.names.(i)) cyc))));
  Finding.sort !acc

(* --- model vs. task set / trace (RTC105, RTC106) --- *)

let task_mapping m (ts : Rt_task.Task_set.t) =
  let n = size m in
  if n <> Rt_task.Task_set.size ts then
    Error
      (finding "RTC105" err
         "model has %d tasks but the reference has %d" n
         (Rt_task.Task_set.size ts))
  else begin
    let map = Array.make n (-1) in
    let missing = ref None in
    Array.iteri (fun i name ->
        match Rt_task.Task_set.index ts name with
        | Some j -> map.(i) <- j
        | None -> if Option.is_none !missing then missing := Some name)
      m.names;
    match !missing with
    | Some name ->
      Error
        (finding "RTC105" err
           "model task %s does not exist in the reference task set" name)
    | None -> Ok map
  end

let check_against_trace m (trace : Rt_trace.Trace.t) =
  match task_mapping m trace.task_set with
  | Error f -> [ f ]
  | Ok map ->
    let n = size m in
    let acc = ref [] in
    (* A definite cell claims: whenever [a] executes, [b] executes in
       the same period. The learner's end-of-period post-processing
       weakens exactly the cells some period contradicts, so any
       surviving definite value must hold in every period. *)
    let violated = Array.make_matrix n n None in
    List.iter (fun (p : Rt_trace.Period.t) ->
        for a = 0 to n - 1 do
          for b = 0 to n - 1 do
            if a <> b && Option.is_none violated.(a).(b)
               && Dv.is_definite m.cells.(a).(b)
               && p.executed.(map.(a))
               && not p.executed.(map.(b))
            then violated.(a).(b) <- Some p.index
          done
        done)
      (Rt_trace.Trace.periods trace);
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        match violated.(a).(b) with
        | None -> ()
        | Some pidx ->
          acc :=
            finding ?pos:(pos_of m a) "RTC106" err
              "d(%s, %s) = %s is definite, but period %d executed %s \
               without %s; post-processing must have weakened it to %s"
              m.names.(a) m.names.(b)
              (Dv.to_string m.cells.(a).(b))
              pidx m.names.(a) m.names.(b)
              (Dv.to_string (Dv.weaken m.cells.(a).(b)))
            :: !acc
      done
    done;
    Finding.sort !acc

(* --- answer-set rules (RTC2xx) --- *)

let label m i =
  if m.source = "<model>" then Printf.sprintf "#%d" (i + 1) else m.source

let check_answer_set models =
  let ds =
    List.mapi (fun i m -> (i, m, to_depfun m)) models
    |> List.filter_map (fun (i, m, d) ->
        match d with Some d -> Some (i, m, d) | None -> None)
  in
  let acc = ref [] in
  List.iter (fun (i, mi, di) ->
      List.iter (fun (j, mj, dj) ->
          if i < j && Df.equal di dj then
            acc :=
              finding "RTC201" err
                "hypotheses %s and %s are identical; post-processing \
                 unifies duplicates"
                (label mi i) (label mj j)
              :: !acc
          else if i <> j && Df.leq di dj && not (Df.equal di dj) then
            acc :=
              finding "RTC202" err
                "hypothesis %s is not minimal: %s is strictly more \
                 specific"
                (label mj j) (label mi i)
              :: !acc)
        ds)
    ds;
  Finding.sort !acc

(* --- checkpoint rules --- *)

let check_checkpoint ~source data =
  match Rt_learn.Heuristic.resume data with
  | Error m ->
    (* An unreadable checkpoint is both an input error (the audit could
       not run) and a finding in its own right: CI greps for RTC203 to
       distinguish integrity damage from a merely missing file. *)
    Error
      (Printf.sprintf "%s: %s" source m,
       finding "RTC203" err "unreadable checkpoint %s: %s" source m)
  | Ok (st, _tag) ->
    let hs = Rt_learn.Heuristic.current st in
    let bound = Rt_learn.Heuristic.bound st in
    let acc = ref [] in
    if List.length hs > bound then
      acc :=
        [ finding "RTC203" err
            "working set holds %d hypotheses but the bound is %d"
            (List.length hs) bound ];
    let models =
      List.mapi (fun i d ->
          model_of_depfun ~source:(Printf.sprintf "%s[%d]" source i) d)
        hs
    in
    let per_model = List.concat_map check_model models in
    Ok (Finding.sort (!acc @ per_model @ check_answer_set models))
