(** The findings record shared by [rtlint] (AST rules over the
    codebase) and [rtgen check] (semantic rules over learned models):
    one record type, one rule registry, and renderers for human text,
    JSON ([findings.schema.json]) and SARIF 2.1.0 — so CI consumes
    both tools identically. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type pos = { file : string; line : int; col : int }

type t = {
  rule : string;      (** stable rule id, e.g. ["RTL002"] *)
  severity : severity;
  pos : pos option;   (** [None] for whole-input findings *)
  message : string;
}

val v : ?pos:pos -> rule:string -> severity:severity -> string -> t

val at : file:string -> line:int -> col:int -> pos

(** {2 Rule registry} *)

type rule_info = { id : string; name : string; summary : string }

val rules : rule_info list
(** Every rule either tool can emit, in id order. Ids are stable API:
    suppression comments, tests and CI greps key on them. *)

val rule_info : string -> rule_info option

val rule_name : string -> string
(** Short kebab-case name, or the id itself for unknown rules. *)

(** {2 Aggregation} *)

val count : severity -> t list -> int

val has_errors : t list -> bool

val exit_code : t list -> int
(** {!Exit_code.findings} iff any error-severity finding, else
    {!Exit_code.ok}. *)

val sort : t list -> t list
(** Stable report order: file, then position, then rule id. *)

val summary_line : tool:string -> t list -> string

(** {2 Renderers} *)

val pp_text : Format.formatter -> t -> unit
(** [file:line:col: severity[RULE name] message]. *)

val to_text : t list -> string

val to_json : tool:string -> t list -> Rt_obs.Json.t
(** The [rtgen-findings] document validated by [findings.schema.json]
    (schema tag and version first, like the metrics documents). *)

val to_sarif : tool:string -> t list -> Rt_obs.Json.t
(** Minimal SARIF 2.1.0: driver + rule catalogue + one result per
    finding; uploadable to GitHub code scanning. *)

type format = Text | Json_format | Sarif

val render : tool:string -> format:format -> t list -> string
(** Full report in the chosen format, findings sorted; text format
    appends the summary line. *)
