(** Semantic static analysis of learned artifacts (the [rtgen check]
    prong): saved models, answer sets and heuristic checkpoints are
    audited against the laws they must obey by construction — lattice
    algebra, schedulability of definite precedences within a period,
    post-processing hygiene — independently of the learner that
    produced them.

    Rule ids: RTC0xx lattice-law self-checks, RTC1xx per-model rules,
    RTC2xx answer-set/checkpoint rules (see {!Finding.rules}). *)

val check_laws : unit -> Finding.t list
(** Exhaustive audit of the {!Rt_lattice.Depval} algebra and its
    tabulated kernels: idempotence, commutativity, absorption,
    monotonicity of generalization steps ([join], [weaken], [covers]),
    partial-order laws, and agreement of the [*_ix_tbl] tables with
    the functions they tabulate. Empty on a healthy build. *)

(** {2 Models} *)

type model = {
  source : string;         (** file path, or a synthetic label *)
  names : string array;
  cells : Rt_lattice.Depval.t array array;  (** row-major [n×n] *)
  row_lines : int array;   (** 1-based source line per row; 0 = none *)
}

val parse_model : source:string -> string -> (model, string) result
(** Lenient reader for the [Depfun.to_string] matrix format: accepts
    matrices that violate the [Depfun] invariants (a broken diagonal is
    a finding, not a parse error). [Error] only for text that is not a
    matrix at all. *)

val load_model : string -> (model, string) result

val model_of_depfun :
  ?source:string -> ?names:string array -> Rt_lattice.Depfun.t -> model

val to_depfun : model -> Rt_lattice.Depfun.t option
(** [None] when the diagonal is not [Par] (such a model cannot be
    represented as a [Depfun]). *)

val size : model -> int

val check_model : model -> Finding.t list
(** Per-model rules: RTC101 diagonal, RTC102 unobservable [↔]
    (warning), RTC103 definite-precedence cycle, RTC104 mirror
    consistency (warning). *)

val check_against_trace : model -> Rt_trace.Trace.t -> Finding.t list
(** RTC105 task-set mismatch; RTC106 conformance — every definite cell
    must hold in every period of the trace, because end-of-period
    post-processing weakens exactly the contradicted cells. *)

val check_answer_set : model list -> Finding.t list
(** Cross-model rules on a set treated as one answer set: RTC201
    duplicates, RTC202 non-minimality. Models whose diagonal is broken
    are skipped here (they already carry an RTC101). *)

val check_checkpoint :
  source:string -> string -> (Finding.t list, string * Finding.t) result
(** Deserialize a {!Rt_learn.Heuristic} checkpoint and audit its
    working set: RTC203 bound overflow, plus the per-model and
    answer-set rules over the serialized hypotheses. [Error] when the
    blob does not parse — truncated, torn or checksum-failed — carrying
    both the input-error message (the audit could not run, exit 2) and
    an RTC203 finding for the report. *)
