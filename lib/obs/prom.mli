(** Prometheus text-exposition sink over the metrics document.

    A pure renderer: the metrics JSON ([metrics.schema.json]) stays the
    source of truth, and every exposed series derives from a registry
    name by a fixed mapping — counters gain [_total], gauges expose
    last value plus a [_max] twin, histograms become cumulative
    [_bucket]/[_sum]/[_count] series, span aggregates become
    [_spans_total] / [_span_ns_total] counters, and the per-stream
    [daemon.stream.<id>.<metric>] gauges collapse into one family per
    metric with a [stream="<id>"] label. All names carry the [rtgen_]
    prefix with non-alphanumerics mapped to ['_'].
    [scripts/check_metrics.py] recomputes this mapping to cross-check
    an exposition against its document. *)

val render : Json.t -> (string, string) result
(** Render a metrics document ({!Registry.to_json} or a metrics file
    read back) as Prometheus text exposition. [Error] when the value is
    not an rtgen-metrics document of the supported version. *)

val of_registry : Registry.t -> string
(** [render] over a live registry's document; rendering errors degrade
    to a comment line (they cannot happen for a well-formed registry). *)
