(* Flight recorder: a fixed-capacity ring of structured events for
   post-mortem forensics. Where the Registry answers "how much, how
   fast", the recorder answers "what happened, in what order, on which
   stream" — the last [capacity] lifecycle events survive any crash
   the process itself survives long enough to dump them.

   The ring is four preallocated arrays indexed by [seq mod capacity];
   recording writes four cells and bumps the sequence number, so the
   recorder never allocates beyond the strings the caller already
   built. Wraparound silently overwrites the oldest event and the dump
   reports how many were lost that way. *)

type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type t = {
  clock : unit -> int;
  capacity : int;
  sevs : int array;
  times : int array;      (* monotonic ns, from [clock] *)
  streams : string array; (* "" = daemon-wide *)
  kinds : string array;
  details : string array;
  mutable seq : int;      (* total events ever recorded *)
}

(* A recorder bound to one stream id, so per-stream call sites (the
   engine's period boundary, a stream's checkpoint writer) don't carry
   the id separately. *)
type scope = { ring : t; stream : string }

let create ?clock ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be >= 1";
  let clock = match clock with Some c -> c | None -> Registry.now_ns in
  {
    clock;
    capacity;
    sevs = Array.make capacity 0;
    times = Array.make capacity 0;
    streams = Array.make capacity "";
    kinds = Array.make capacity "";
    details = Array.make capacity "";
    seq = 0;
  }

let capacity t = t.capacity

let recorded t = t.seq

let length t = if t.seq < t.capacity then t.seq else t.capacity

let dropped t = t.seq - length t

let record t sev ~stream ~kind detail =
  let i = t.seq mod t.capacity in
  t.sevs.(i) <- severity_rank sev;
  t.times.(i) <- t.clock ();
  t.streams.(i) <- stream;
  t.kinds.(i) <- kind;
  t.details.(i) <- detail;
  t.seq <- t.seq + 1

let scope t stream = { ring = t; stream }

let record_s s sev ~kind detail =
  record s.ring sev ~stream:s.stream ~kind detail

type event = {
  seq : int;
  ts_ns : int;
  severity : severity;
  stream : string;
  kind : string;
  detail : string;
}

let severity_of_rank = function
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

(* Oldest first: the ring's logical order is sequence order, which a
   full ring stores rotated — the oldest surviving event sits at
   [seq mod capacity]. *)
let events t =
  let n = length t in
  List.init n (fun j ->
      let seq = t.seq - n + j in
      let i = seq mod t.capacity in
      {
        seq;
        ts_ns = t.times.(i);
        severity = severity_of_rank t.sevs.(i);
        stream = t.streams.(i);
        kind = t.kinds.(i);
        detail = t.details.(i);
      })

let schema_name = "rtgen-flight"

let schema_version = 1

let to_json t =
  Json.Obj
    [ ("schema", Json.String schema_name);
      ("version", Json.Int schema_version);
      ("capacity", Json.Int t.capacity);
      ("recorded", Json.Int t.seq);
      ("dropped", Json.Int (dropped t));
      ("events",
       Json.List
         (List.map
            (fun e ->
              Json.Obj
                [ ("seq", Json.Int e.seq);
                  ("ts_ns", Json.Int e.ts_ns);
                  ("severity", Json.String (severity_to_string e.severity));
                  ("stream", Json.String e.stream);
                  ("kind", Json.String e.kind);
                  ("detail", Json.String e.detail) ])
            (events t))) ]
