(* Metrics registry: named monotonic counters, gauges, log-bucket
   histograms and hierarchical spans, all owned by one [t]. Handles are
   fetched once at instrumentation-setup time; the per-event operations
   ([incr], [add], [set_gauge], [Histogram.record]) are plain mutations
   of preallocated cells — no allocation, no hashing, no branching on
   sink configuration. Sinks only run when a snapshot is taken.

   The registry is deliberately single-owner: the pipeline records all
   deterministic counters on the orchestrating domain (worker domains
   only compute, see Heuristic.step_message), so no atomics are needed
   and counter totals are reproducible across -j levels. *)

type counter = { c_name : string; mutable c_value : int }

type gauge = {
  g_name : string;
  mutable g_last : int;
  mutable g_max : int;
  mutable g_samples : int;
}

(* A completed span. [depth] is the stack depth at entry (0 = root);
   the Chrome trace-event sink conveys nesting by time containment on
   one track and carries the depth in the event's [args] for the
   viewers' detail pane. *)
type span = {
  s_name : string;
  s_depth : int;
  s_start_ns : int;
  s_dur_ns : int;
}

type t = {
  clock : unit -> int;
  origin_ns : int;
  mutable counters : counter list;   (* reverse registration order *)
  mutable gauges : gauge list;
  mutable hists : (string * Histogram.t) list;
  mutable stack : (string * int) list;  (* open spans: name, start ns *)
  mutable spans : span list;            (* completed, reverse order *)
}

(* Wall clock, monotonic-ized: the stdlib has no monotonic source, so we
   clamp gettimeofday to be non-decreasing per registry. Resolution is
   ~1us, ample for per-period spans. *)
let default_clock () =
  let last = ref 0 in
  fun () ->
    let now = int_of_float (Unix.gettimeofday () *. 1e9) in
    if now > !last then last := now;
    !last

(* Process-wide monotonic time for callers that have no registry at
   hand (e.g. Learner's elapsed_s): never goes backwards even if NTP
   steps the wall clock. *)
let now_ns = default_clock ()

let create ?clock () =
  let clock = match clock with Some c -> c | None -> default_clock () in
  { clock; origin_ns = clock (); counters = []; gauges = []; hists = [];
    stack = []; spans = [] }

let elapsed_ns t = t.clock () - t.origin_ns

(* --- counters --- *)

let counter t name =
  match List.find_opt (fun c -> c.c_name = name) t.counters with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    t.counters <- c :: t.counters;
    c

let incr c = c.c_value <- c.c_value + 1

let add c n = c.c_value <- c.c_value + n

let counter_value c = c.c_value

let set_counter t name v = (counter t name).c_value <- v

(* --- gauges --- *)

let gauge t name =
  match List.find_opt (fun g -> g.g_name = name) t.gauges with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_last = 0; g_max = min_int; g_samples = 0 } in
    t.gauges <- g :: t.gauges;
    g

let set_gauge g v =
  g.g_last <- v;
  if v > g.g_max then g.g_max <- v;
  g.g_samples <- g.g_samples + 1

let set_gauge_named t name v = set_gauge (gauge t name) v

(* --- histograms --- *)

let histogram t name =
  match List.assoc_opt name t.hists with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    t.hists <- (name, h) :: t.hists;
    h

(* --- spans --- *)

let span_begin t name = t.stack <- (name, t.clock ()) :: t.stack

let span_end t =
  match t.stack with
  | [] -> invalid_arg "Registry.span_end: no open span"
  | (name, start) :: rest ->
    t.stack <- rest;
    t.spans <-
      { s_name = name; s_depth = List.length rest;
        s_start_ns = start - t.origin_ns;
        s_dur_ns = t.clock () - start }
      :: t.spans

let with_span t name f =
  span_begin t name;
  match f () with
  | v -> span_end t; v
  | exception e -> span_end t; raise e

let open_spans t = List.length t.stack

(* Chronological export for the profiler: start order, parents before
   the children they enclose (depth breaks start-time ties, which a
   coarse or fake clock produces routinely). *)
type raw_span = { name : string; depth : int; start_ns : int; dur_ns : int }

let raw_spans t =
  List.stable_sort
    (fun a b ->
      match Int.compare a.start_ns b.start_ns with
      | 0 -> Int.compare a.depth b.depth
      | c -> c)
    (List.rev_map
       (fun s ->
         { name = s.s_name; depth = s.s_depth; start_ns = s.s_start_ns;
           dur_ns = s.s_dur_ns })
       t.spans)

(* --- sinks --- *)

let schema_name = "rtgen-metrics"
let schema_version = 1

let by_name key l = List.sort (fun a b -> String.compare (key a) (key b)) l

(* Aggregate completed spans per name for the metrics document; the full
   timeline only goes to the trace-event sink. *)
type span_agg = {
  mutable a_count : int;
  mutable a_total : int;
  mutable a_min : int;
  mutable a_max : int;
}

let span_aggregates t =
  let tbl = Hashtbl.create 8 in
  List.iter (fun s ->
      let a =
        match Hashtbl.find_opt tbl s.s_name with
        | Some a -> a
        | None ->
          let a = { a_count = 0; a_total = 0; a_min = max_int; a_max = 0 } in
          Hashtbl.add tbl s.s_name a;
          a
      in
      a.a_count <- a.a_count + 1;
      a.a_total <- a.a_total + s.s_dur_ns;
      if s.s_dur_ns < a.a_min then a.a_min <- s.s_dur_ns;
      if s.s_dur_ns > a.a_max then a.a_max <- s.s_dur_ns)
    t.spans;
  by_name fst (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let histogram_json h =
  Json.Obj
    [ ("count", Json.Int (Histogram.count h));
      ("sum", Json.Int (Histogram.sum h));
      ("min", Json.Int (Histogram.min_value h));
      ("max", Json.Int (Histogram.max_value h));
      ("buckets",
       Json.List
         (List.map (fun (le, n) ->
              (* The open-ended last bucket prints as le = -1 rather than
                 a 19-digit sentinel. *)
              Json.Obj
                [ ("le", Json.Int (if le = max_int then -1 else le));
                  ("count", Json.Int n) ])
             (Histogram.nonempty_buckets h))) ]

(* The deterministic sections (counters, gauges, histograms) come before
   the timing-dependent ones (spans, elapsed_ns) so tooling and tests can
   compare reproducible prefixes textually. *)
let to_json t =
  Json.Obj
    [ ("schema", Json.String schema_name);
      ("version", Json.Int schema_version);
      ("counters",
       Json.Obj
         (List.map (fun c -> (c.c_name, Json.Int c.c_value))
            (by_name (fun c -> c.c_name) t.counters)));
      ("gauges",
       Json.Obj
         (List.map (fun g ->
              ( g.g_name,
                Json.Obj
                  [ ("last", Json.Int g.g_last);
                    ("max", Json.Int (if g.g_samples = 0 then 0 else g.g_max));
                    ("samples", Json.Int g.g_samples) ] ))
            (by_name (fun g -> g.g_name) t.gauges)));
      ("histograms",
       Json.Obj
         (List.map (fun (name, h) -> (name, histogram_json h))
            (by_name fst t.hists)));
      ("spans",
       Json.Obj
         (List.map (fun (name, a) ->
              ( name,
                Json.Obj
                  [ ("count", Json.Int a.a_count);
                    ("total_ns", Json.Int a.a_total);
                    ("min_ns", Json.Int (if a.a_count = 0 then 0 else a.a_min));
                    ("max_ns", Json.Int a.a_max) ] ))
            (span_aggregates t)));
      ("elapsed_ns", Json.Int (elapsed_ns t)) ]

(* Chrome trace_event sink: an array of complete ("X") events, one per
   span, timestamps in (fractional) microseconds relative to the
   registry origin. Everything runs on one logical track, so nesting is
   conveyed by time containment, which the viewers render as a flame
   graph. Load via chrome://tracing, Perfetto, or speedscope. *)
let trace_events_json t =
  let cat name =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  Json.List
    (List.rev_map (fun s ->
         Json.Obj
           [ ("name", Json.String s.s_name);
             ("cat", Json.String (cat s.s_name));
             ("ph", Json.String "X");
             ("pid", Json.Int 1);
             ("tid", Json.Int 1);
             ("ts", Json.Float (float_of_int s.s_start_ns /. 1e3));
             ("dur", Json.Float (float_of_int s.s_dur_ns /. 1e3));
             ("args", Json.Obj [ ("depth", Json.Int s.s_depth) ]) ])
        t.spans)
