(** Learner self-profiler: exclusive/inclusive hotspot aggregation and
    folded-stacks output over the registry's completed span timeline.

    The span tree is recovered from the flat (name, depth, start,
    duration) records by replaying them in start order against an
    explicit stack. {e Inclusive} time is a span's full duration;
    {e exclusive} time subtracts its direct children — the time spent
    in that code itself, which is what hotspot ranking must use.
    Profiling is a read-only fold over data the registry already
    collects, so enabling it cannot change learned models. *)

type row = {
  name : string;
  count : int;
  inclusive_ns : int;
  exclusive_ns : int;
}

val rows : Registry.t -> row list
(** Per-name aggregates, sorted by exclusive time descending (name
    breaks ties). *)

val hotspots : Registry.t -> string
(** The rendered hotspot table: span, count, inclusive, exclusive,
    exclusive-%. *)

val folded : Registry.t -> string
(** Folded stacks, one ["root;child;leaf <exclusive_ns>"] line per
    distinct call path, sorted — feed to flamegraph.pl, speedscope or
    inferno. *)
