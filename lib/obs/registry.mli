(** Metrics registry: named monotonic counters, gauges, log-bucket
    histograms and hierarchical spans.

    Handles ({!counter}, {!gauge}, {!histogram}) are fetched once when
    instrumentation is set up; the per-event operations are single-cell
    mutations with no allocation, so leaving instrumentation compiled in
    is near-free, and code paths that receive [t option = None] pay one
    branch. The registry is single-owner by design: deterministic
    counters must be recorded on the orchestrating domain only, which
    keeps totals reproducible across [-j] levels without atomics.

    Span convention used across the pipeline: names are
    ["phase.operation"] (e.g. ["learn.period"], ["ingest.parse"]); the
    prefix before the first dot is the phase, which the report renderer
    and the trace-event [cat] field group by. *)

type t

type counter

type gauge

val create : ?clock:(unit -> int) -> unit -> t
(** [clock] returns nanoseconds and must be non-decreasing; the default
    is a per-registry monotonic-ized [Unix.gettimeofday]. Inject a fake
    clock for deterministic span tests. *)

val elapsed_ns : t -> int

val now_ns : unit -> int
(** Process-wide monotonic nanoseconds (clamped never to decrease, so
    timings derived from it cannot go negative under NTP steps). Only
    differences are meaningful. *)

(** {2 Counters} *)

val counter : t -> string -> counter
(** Find or register. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val set_counter : t -> string -> int -> unit
(** Overwrite by name — for publishing externally-accumulated totals
    (e.g. learner state counters that travelled through a checkpoint). *)

(** {2 Gauges} *)

val gauge : t -> string -> gauge

val set_gauge : gauge -> int -> unit
(** Records last value, running max, and sample count. *)

val set_gauge_named : t -> string -> int -> unit

(** {2 Histograms} *)

val histogram : t -> string -> Histogram.t

(** {2 Spans} *)

val span_begin : t -> string -> unit

val span_end : t -> unit
(** Closes the innermost open span.
    @raise Invalid_argument when none is open. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Exception-safe [span_begin]/[span_end] bracket. *)

val open_spans : t -> int
(** Number of currently-open spans (0 when balanced). *)

type raw_span = {
  name : string;
  depth : int;     (** stack depth at entry; 0 = root *)
  start_ns : int;  (** relative to the registry origin *)
  dur_ns : int;
}

val raw_spans : t -> raw_span list
(** Completed spans in chronological start order, parents before the
    children they enclose — the profiler's input ({!Profile}). *)

(** {2 Sinks} *)

val schema_name : string

val schema_version : int

val to_json : t -> Json.t
(** The metrics document ([metrics.schema.json]): deterministic sections
    (counters, gauges, histograms) first, then per-name span aggregates
    and [elapsed_ns]. *)

val trace_events_json : t -> Json.t
(** Chrome [trace_event] sink: a JSON array of [ph:"X"] complete events
    in microseconds, loadable in chrome://tracing / Perfetto. *)
