(* Latency/size histogram with fixed log-scale buckets: bucket 0 holds
   values <= 0, bucket i (i >= 1) holds values in [2^(i-1), 2^i). The
   bucket array is preallocated at creation, so [record] is two array
   stores and a handful of compares — no allocation on the hot path. *)

let nbuckets = 64

type t = {
  buckets : int array;  (* counts per log2 bucket *)
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
}

let create () =
  { buckets = Array.make nbuckets 0;
    count = 0; sum = 0; min = max_int; max = min_int }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do incr i; v := !v lsr 1 done;
    if !i >= nbuckets then nbuckets - 1 else !i
  end

(* Inclusive upper bound of a bucket, for reporting. *)
let bucket_le i =
  if i = 0 then 0
  else if i >= nbuckets - 1 then max_int
  else (1 lsl i) - 1

let record t v =
  let i = bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min
let max_value t = if t.count = 0 then 0 else t.max

let mean t =
  if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* Bucket-resolution quantile: the inclusive upper bound of the bucket
   holding the q-th ranked sample, clamped to the observed extremes. *)
let quantile t q =
  if t.count = 0 then 0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target =
      Stdlib.max 1 (int_of_float (Float.round (q *. float_of_int t.count)))
    in
    let rec go i acc =
      if i >= nbuckets then t.max
      else
        let acc = acc + t.buckets.(i) in
        if acc >= target then Stdlib.min t.max (Stdlib.max t.min (bucket_le i))
        else go (i + 1) acc
    in
    go 0 0
  end

let nonempty_buckets t =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.buckets.(i) > 0 then out := (bucket_le i, t.buckets.(i)) :: !out
  done;
  !out

let merge ~into src =
  Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.count > 0 then begin
    if src.min < into.min then into.min <- src.min;
    if src.max > into.max then into.max <- src.max
  end
