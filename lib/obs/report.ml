(* Human-readable sink: render a metrics document (Registry.to_json, or
   a metrics file read back from disk) as per-phase tables. The phase of
   an instrument is the name prefix before the first '.' — the same
   convention the trace-event sink uses for its [cat] field. *)

let phase_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let pp_ns ns =
  let f = float_of_int ns in
  if ns >= 1_000_000_000 then Printf.sprintf "%.2fs" (f /. 1e9)
  else if ns >= 1_000_000 then Printf.sprintf "%.2fms" (f /. 1e6)
  else if ns >= 1_000 then Printf.sprintf "%.1fus" (f /. 1e3)
  else Printf.sprintf "%dns" ns

(* One rendered instrument: (kind, name, value-description). *)
type row = { kind : string; name : string; value : string }

let int_member key j = Option.bind (Json.member key j) Json.to_int

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "metrics document: missing or bad %s" what)

let ( let* ) = Result.bind

let counter_rows j =
  List.map (fun (name, v) ->
      { kind = "counter"; name;
        value = (match Json.to_int v with
            | Some n -> string_of_int n
            | None -> "?") })
    (Option.value ~default:[]
       (Option.bind (Json.member "counters" j) Json.to_obj))

let gauge_rows j =
  List.map (fun (name, g) ->
      let last = Option.value ~default:0 (int_member "last" g) in
      let max = Option.value ~default:0 (int_member "max" g) in
      { kind = "gauge"; name;
        value = Printf.sprintf "last %d, max %d" last max })
    (Option.value ~default:[]
       (Option.bind (Json.member "gauges" j) Json.to_obj))

let histogram_rows j =
  List.map (fun (name, h) ->
      let get k = Option.value ~default:0 (int_member k h) in
      let count = get "count" in
      let mean =
        if count = 0 then 0.0 else float_of_int (get "sum") /. float_of_int count
      in
      { kind = "histogram"; name;
        value =
          Printf.sprintf "n=%d min=%d mean=%.1f max=%d" count (get "min")
            mean (get "max") })
    (Option.value ~default:[]
       (Option.bind (Json.member "histograms" j) Json.to_obj))

let span_rows j =
  List.map (fun (name, s) ->
      let get k = Option.value ~default:0 (int_member k s) in
      let count = get "count" and total = get "total_ns" in
      let mean = if count = 0 then 0 else total / count in
      { kind = "span"; name;
        value =
          Printf.sprintf "n=%d total=%s mean=%s max=%s" count (pp_ns total)
            (pp_ns mean) (pp_ns (get "max_ns")) })
    (Option.value ~default:[]
       (Option.bind (Json.member "spans" j) Json.to_obj))

let render j =
  let* schema =
    require "\"schema\" field"
      (Option.bind (Json.member "schema" j) Json.to_string_opt)
  in
  let* () =
    if schema = Registry.schema_name then Ok ()
    else Error (Printf.sprintf "not a metrics document (schema %S)" schema)
  in
  let* version = require "\"version\" field" (int_member "version" j) in
  let* () =
    if version = Registry.schema_version then Ok ()
    else Error (Printf.sprintf "unsupported metrics version %d" version)
  in
  let rows = counter_rows j @ gauge_rows j @ histogram_rows j @ span_rows j in
  let phases =
    List.fold_left (fun acc r ->
        let p = phase_of r.name in
        if List.mem p acc then acc else acc @ [ p ])
      [] rows
  in
  let buf = Buffer.create 1024 in
  (match int_member "elapsed_ns" j with
   | Some ns -> Buffer.add_string buf (Printf.sprintf "run time %s\n" (pp_ns ns))
   | None -> ());
  let kind_w =
    List.fold_left (fun w r -> Stdlib.max w (String.length r.kind)) 4 rows
  in
  let name_w =
    List.fold_left (fun w r -> Stdlib.max w (String.length r.name)) 4 rows
  in
  let pad w s = s ^ String.make (Stdlib.max 0 (w - String.length s)) ' ' in
  List.iter (fun phase ->
      Buffer.add_string buf (Printf.sprintf "\n== %s ==\n" phase);
      List.iter (fun r ->
          if phase_of r.name = phase then
            Buffer.add_string buf
              (Printf.sprintf "%s  %s  %s\n" (pad kind_w r.kind)
                 (pad name_w r.name) r.value))
        rows)
    phases;
  if rows = [] then Buffer.add_string buf "(no instruments recorded)\n";
  Ok (Buffer.contents buf)

let of_registry reg =
  match render (Registry.to_json reg) with
  | Ok s -> s
  | Error m -> "metrics rendering failed: " ^ m ^ "\n"
