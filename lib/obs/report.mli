(** Human-readable summary sink: renders a metrics document as per-phase
    tables (one section per name prefix before the first '.'). *)

val render : Json.t -> (string, string) result
(** Render a metrics document (the shape {!Registry.to_json} produces,
    e.g. read back from a [--metrics] file). [Error] on documents that
    are not version-[Registry.schema_version] metrics files. *)

val of_registry : Registry.t -> string
(** Render a live registry directly; never fails. *)

val phase_of : string -> string
(** The phase (grouping key) of an instrument name. *)

val pp_ns : int -> string
(** Human duration: ["734ns"], ["8.2us"], ["12.53ms"], ["3.21s"]. *)
