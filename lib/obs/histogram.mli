(** Log-scale histogram with a fixed number of power-of-two buckets:
    bucket 0 holds values [<= 0], bucket [i] holds values in
    [[2^(i-1), 2^i)]. All storage is preallocated, so {!record} never
    allocates — cheap enough for per-message instrumentation. *)

type t

val create : unit -> t

val record : t -> int -> unit

val count : t -> int

val sum : t -> int

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
(** 0 when empty. *)

val mean : t -> float

val quantile : t -> float -> int
(** Bucket-resolution quantile (e.g. [quantile t 0.99]): the inclusive
    upper bound of the bucket containing the ranked sample, clamped to
    the observed min/max. 0 when empty. *)

val nonempty_buckets : t -> (int * int) list
(** [(inclusive_upper_bound, count)] for each non-empty bucket, in
    ascending bound order. The last bucket's bound is [max_int]. *)

val bucket_of : int -> int
(** The bucket index a value lands in (exposed for tests). *)

val merge : into:t -> t -> unit
(** Add [src]'s samples into [into]. *)
