(* Learner self-profiler: fold the registry's completed span timeline
   into per-name exclusive/inclusive aggregates and flamegraph-ready
   folded stacks.

   The registry records spans flat (name, depth, start, duration); the
   tree is implicit in time containment. Replaying the spans in start
   order against an explicit stack recovers it: a new span at depth d
   closes every frame at depth >= d, and whatever then tops the stack
   is its parent. Exclusive time is a frame's duration minus the
   durations of its direct children — the time attributable to that
   code itself, which is what a hotspot table must rank by (the root
   "learn.period" span would otherwise dwarf the kernels it calls). *)

type row = {
  name : string;
  count : int;
  inclusive_ns : int;  (** total span duration *)
  exclusive_ns : int;  (** duration minus direct children *)
}

type frame = {
  f_name : string;
  f_depth : int;
  f_dur : int;
  f_path : string;  (* ";"-joined ancestry, folded-stacks style *)
  mutable f_children_ns : int;
}

type agg = {
  mutable a_count : int;
  mutable a_incl : int;
  mutable a_excl : int;
}

(* One pass over the chronological spans, feeding [on_close] every
   finished frame (its exclusive time now known). *)
let replay spans ~on_close =
  let stack = ref [] in
  let close f = on_close f (f.f_dur - f.f_children_ns) in
  let rec unwind depth =
    match !stack with
    | f :: rest when f.f_depth >= depth ->
      close f;
      stack := rest;
      unwind depth
    | _ -> ()
  in
  List.iter
    (fun (s : Registry.raw_span) ->
      unwind s.depth;
      let path =
        match !stack with
        | [] -> s.name
        | parent :: _ ->
          parent.f_children_ns <- parent.f_children_ns + s.dur_ns;
          parent.f_path ^ ";" ^ s.name
      in
      stack :=
        { f_name = s.name; f_depth = s.depth; f_dur = s.dur_ns;
          f_path = path; f_children_ns = 0 }
        :: !stack)
    spans;
  unwind min_int

let rows reg =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  replay (Registry.raw_spans reg) ~on_close:(fun f excl ->
      let a =
        match Hashtbl.find_opt tbl f.f_name with
        | Some a -> a
        | None ->
          let a = { a_count = 0; a_incl = 0; a_excl = 0 } in
          Hashtbl.add tbl f.f_name a;
          order := f.f_name :: !order;
          a
      in
      a.a_count <- a.a_count + 1;
      a.a_incl <- a.a_incl + f.f_dur;
      a.a_excl <- a.a_excl + excl);
  List.sort
    (fun a b ->
      match Int.compare b.exclusive_ns a.exclusive_ns with
      | 0 -> String.compare a.name b.name
      | c -> c)
    (List.rev_map
       (fun name ->
         let a = Hashtbl.find tbl name in
         { name; count = a.a_count; inclusive_ns = a.a_incl;
           exclusive_ns = a.a_excl })
       !order)

(* Folded stacks: one line per distinct call path, value = exclusive
   nanoseconds, the format flamegraph.pl / speedscope / inferno eat
   directly. Paths sort lexicographically so output is stable. *)
let folded reg =
  let tbl = Hashtbl.create 16 in
  replay (Registry.raw_spans reg) ~on_close:(fun f excl ->
      Hashtbl.replace tbl f.f_path
        (excl + Option.value ~default:0 (Hashtbl.find_opt tbl f.f_path)));
  let buf = Buffer.create 1024 in
  List.iter
    (fun (path, ns) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" path ns))
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []));
  Buffer.contents buf

let hotspots reg =
  match rows reg with
  | [] -> "(no spans recorded — nothing to profile)\n"
  | rows ->
    let total = List.fold_left (fun acc r -> acc + r.exclusive_ns) 0 rows in
    let name_w =
      List.fold_left (fun w r -> Stdlib.max w (String.length r.name)) 4 rows
    in
    let pad w s = s ^ String.make (Stdlib.max 0 (w - String.length s)) ' ' in
    let lpad w s = String.make (Stdlib.max 0 (w - String.length s)) ' ' ^ s in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "%s  %s  %s  %s  %s\n" (pad name_w "span")
         (lpad 8 "count") (lpad 10 "inclusive") (lpad 10 "exclusive")
         (lpad 6 "excl%"));
    List.iter
      (fun r ->
        let pct =
          if total = 0 then 0.0
          else 100.0 *. float_of_int r.exclusive_ns /. float_of_int total
        in
        Buffer.add_string buf
          (Printf.sprintf "%s  %s  %s  %s  %s\n" (pad name_w r.name)
             (lpad 8 (string_of_int r.count))
             (lpad 10 (Report.pp_ns r.inclusive_ns))
             (lpad 10 (Report.pp_ns r.exclusive_ns))
             (lpad 6 (Printf.sprintf "%.1f" pct))))
      rows;
    Buffer.add_string buf
      (Printf.sprintf "total span time %s (exclusive sum)\n"
         (Report.pp_ns total));
    Buffer.contents buf
