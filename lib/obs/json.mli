(** Minimal JSON values for the observability sinks — writing metrics and
    Chrome trace-event files, and reading a metrics file back for
    [rtgen report]. Not a general-purpose JSON library: non-ASCII
    [\u] escapes degrade to ['?'], and numbers are [Int] when they fit
    and [Float] otherwise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces. *)

val of_string : string -> (t, string) result
(** Parse one JSON document; trailing non-whitespace is an error. Error
    messages carry a byte offset. *)

val member : string -> t -> t option
(** Field lookup; [None] on non-objects and missing keys. *)

val to_int : t -> int option
(** [Int], or an integral [Float]. *)

val to_float : t -> float option

val to_string_opt : t -> string option

val to_list : t -> t list option

val to_obj : t -> (string * t) list option
