(** Flight recorder: a fixed-capacity, allocation-light ring buffer of
    structured lifecycle events (severity, monotonic timestamp, stream
    id, event kind, free-form detail).

    The {!Registry} aggregates; the recorder remembers {e order}. The
    daemon writes an event at every supervision transition (admit,
    shed, crash, restart, checkpoint write/resume, quarantine latch,
    finalize), the engine at every period boundary, and a post-mortem
    dump then shows the exact per-stream sequence leading up to a
    failure. Recording writes into preallocated arrays — no allocation
    beyond the caller's own strings — and a disabled recorder is a
    [t option = None], costing the usual single branch. When the ring
    wraps, the oldest events are overwritten and the dump says how
    many were lost. *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string

type t

val create : ?clock:(unit -> int) -> ?capacity:int -> unit -> t
(** [clock] returns nanoseconds and must be non-decreasing (default
    {!Registry.now_ns}); inject a fake clock for deterministic tests.
    [capacity] defaults to 1024 events.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val length : t -> int
(** Events currently held: [min recorded capacity]. *)

val dropped : t -> int
(** Events lost to wraparound: [recorded - length]. *)

val record : t -> severity -> stream:string -> kind:string -> string -> unit
(** [record t sev ~stream ~kind detail] appends one event. [stream] is
    [""] for daemon-wide events. [kind] is dot-namespaced like metric
    names (["stream.crash"], ["checkpoint.write"], ["engine.period"]). *)

(** {2 Scoped recording} *)

type scope
(** A recorder bound to one stream id, for call sites that always
    record against the same stream (the engine, a stream's checkpoint
    writer). *)

val scope : t -> string -> scope

val record_s : scope -> severity -> kind:string -> string -> unit

(** {2 Reading the ring} *)

type event = {
  seq : int;       (** global sequence number, 0-based *)
  ts_ns : int;
  severity : severity;
  stream : string;
  kind : string;
  detail : string;
}

val events : t -> event list
(** Surviving events, oldest first — sequence order even after the
    ring has wrapped. *)

val schema_name : string

val schema_version : int

val to_json : t -> Json.t
(** The dump document: schema/version, capacity, recorded/dropped
    totals, and the surviving events oldest-first. *)
