(* Minimal JSON: just enough for the metrics/trace-event sinks and for
   `rtgen report` to read a metrics file back. The repo deliberately has
   no external JSON dependency; the documents involved are small and
   flat, so a ~150-line recursive-descent parser is the whole cost. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.9g" f)

let rec write ~indent ~level buf j =
  let nl k =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * k) ' ')
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        escape buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        write ~indent ~level:(level + 1) buf v)
      fields;
    nl level;
    Buffer.add_char buf '}'

let to_string ?(pretty = false) j =
  let buf = Buffer.create 1024 in
  write ~indent:pretty ~level:0 buf j;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        let c = s.[!pos] in
        advance ();
        (match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail ("bad \\u escape: " ^ hex)
            | Some code ->
              (* Non-ASCII code points round-trip as '?'; the metrics
                 documents only ever contain ASCII names. *)
              Buffer.add_char buf
                (if code < 0x80 then Char.chr code else '?'))
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some v -> Int v
    | None ->
      (match float_of_string_opt tok with
       | Some f -> Float f
       | None -> fail ("bad number: " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}' in object"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']' in array"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_fail (at, msg) ->
    Error (Printf.sprintf "offset %d: %s" at msg)

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_obj = function Obj f -> Some f | _ -> None
