(* Prometheus text-exposition sink: render a metrics document
   (Registry.to_json, or a metrics file read back from disk) in the
   text format scrapers ingest. A pure renderer over the existing
   registry names — the metrics document stays the source of truth and
   keeps its schema; this maps it:

     counter   a.b        -> rtgen_a_b_total            (counter)
     gauge     a.b        -> rtgen_a_b, rtgen_a_b_max   (gauges)
     histogram a.b        -> rtgen_a_b_bucket{le=...}, _sum, _count
     span      a.b        -> rtgen_a_b_spans_total, rtgen_a_b_span_ns_total
     elapsed_ns           -> rtgen_elapsed_ns           (gauge)

   Per-stream daemon gauges are the one structured family:
   [daemon.stream.<id>.<metric>] becomes
   [rtgen_daemon_stream_<metric>{stream="<id>"}], so a 16-vehicle
   fleet is one labelled series family per metric, not 16 names.
   scripts/check_metrics.py recomputes this mapping and cross-checks
   an exposition against its metrics document. *)

let prefix = "rtgen_"

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* [daemon.stream.<id>.<metric>] -> base family + stream label. *)
let split_stream_name name =
  let p = "daemon.stream." in
  let pl = String.length p in
  if String.length name > pl && String.sub name 0 pl = p then
    match String.rindex_opt name '.' with
    | Some i when i > pl ->
      let id = String.sub name pl (i - pl) in
      let metric = String.sub name (i + 1) (String.length name - i - 1) in
      Some (Printf.sprintf "daemon.stream.%s" metric, id)
    | Some _ | None -> None
  else None

let escape_label v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* One family: a TYPE line followed by its samples, which the format
   requires to be contiguous. *)
type sample = { labels : (string * string) list; suffix : string; value : int }

type family = { fname : string; ftype : string; samples : sample list }

let render_family buf f =
  Buffer.add_string buf
    (Printf.sprintf "# TYPE %s %s\n" (prefix ^ sanitize f.fname) f.ftype);
  List.iter
    (fun s ->
      let labels =
        match s.labels with
        | [] -> ""
        | l ->
          "{"
          ^ String.concat ","
              (List.map
                 (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
                 l)
          ^ "}"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s %d\n"
           (prefix ^ sanitize f.fname ^ s.suffix)
           labels s.value))
    f.samples

let int_member key j = Option.bind (Json.member key j) Json.to_int

let obj_member key j =
  Option.value ~default:[] (Option.bind (Json.member key j) Json.to_obj)

(* Group name-keyed members into label-carrying families, preserving
   first-seen order: vehicle00.periods and vehicle07.periods must land
   in one contiguous rtgen_daemon_stream_periods family. *)
let group_families members =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, j) ->
      let fam, labels =
        match split_stream_name name with
        | Some (base, id) -> (base, [ ("stream", id) ])
        | None -> (name, [])
      in
      (match Hashtbl.find_opt tbl fam with
       | None ->
         order := fam :: !order;
         Hashtbl.add tbl fam [ (labels, j) ]
       | Some l -> Hashtbl.replace tbl fam ((labels, j) :: l)))
    members;
  List.rev_map (fun fam -> (fam, List.rev (Hashtbl.find tbl fam))) !order

let counter_families j =
  List.map
    (fun (fam, entries) ->
      {
        fname = fam ^ "_total";
        ftype = "counter";
        samples =
          List.map
            (fun (labels, v) ->
              { labels; suffix = ""; value = Option.value ~default:0 (Json.to_int v) })
            entries;
      })
    (group_families (obj_member "counters" j))

let gauge_families j =
  List.concat_map
    (fun (fam, entries) ->
      let sample key labels g =
        { labels; suffix = ""; value = Option.value ~default:0 (int_member key g) }
      in
      [ { fname = fam;
          ftype = "gauge";
          samples = List.map (fun (labels, g) -> sample "last" labels g) entries };
        { fname = fam ^ "_max";
          ftype = "gauge";
          samples = List.map (fun (labels, g) -> sample "max" labels g) entries } ])
    (group_families (obj_member "gauges" j))

let histogram_families j =
  List.map
    (fun (fam, entries) ->
      let samples =
        List.concat_map
          (fun (labels, h) ->
            let buckets =
              List.filter_map
                (fun b ->
                  match (int_member "le" b, int_member "count" b) with
                  | Some le, Some n -> Some (le, n)
                  | _ -> None)
                (Option.value ~default:[]
                   (Option.bind (Json.member "buckets" h) Json.to_list))
            in
            (* The document stores per-bucket counts with the open top
               bucket's bound printed as -1; the exposition wants
               cumulative counts ending at le="+Inf". *)
            let cum = ref 0 in
            let bucket_samples =
              List.concat_map
                (fun (le, n) ->
                  cum := !cum + n;
                  if le < 0 then []
                  else
                    [ { labels = labels @ [ ("le", string_of_int le) ];
                        suffix = "_bucket"; value = !cum } ])
                buckets
            in
            let count = Option.value ~default:0 (int_member "count" h) in
            bucket_samples
            @ [ { labels = labels @ [ ("le", "+Inf") ];
                  suffix = "_bucket"; value = count };
                { labels; suffix = "_sum";
                  value = Option.value ~default:0 (int_member "sum" h) };
                { labels; suffix = "_count"; value = count } ])
          entries
      in
      { fname = fam; ftype = "histogram"; samples })
    (group_families (obj_member "histograms" j))

let span_families j =
  List.concat_map
    (fun (fam, entries) ->
      let fam_of key suffix =
        {
          fname = fam ^ suffix;
          ftype = "counter";
          samples =
            List.map
              (fun (labels, s) ->
                { labels; suffix = "";
                  value = Option.value ~default:0 (int_member key s) })
              entries;
        }
      in
      [ fam_of "count" "_spans_total"; fam_of "total_ns" "_span_ns_total" ])
    (group_families (obj_member "spans" j))

let ( let* ) = Result.bind

let render j =
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_string_opt with
    | Some s when s = Registry.schema_name -> Ok ()
    | Some s -> Error (Printf.sprintf "not a metrics document (schema %S)" s)
    | None -> Error "metrics document: missing or bad \"schema\" field"
  in
  let* () =
    match int_member "version" j with
    | Some v when v = Registry.schema_version -> Ok ()
    | Some v -> Error (Printf.sprintf "unsupported metrics version %d" v)
    | None -> Error "metrics document: missing or bad \"version\" field"
  in
  let buf = Buffer.create 4096 in
  List.iter
    (render_family buf)
    (counter_families j @ gauge_families j @ histogram_families j
    @ span_families j
    @
    match int_member "elapsed_ns" j with
    | Some ns ->
      [ { fname = "elapsed_ns"; ftype = "gauge";
          samples = [ { labels = []; suffix = ""; value = ns } ] } ]
    | None -> []);
  Ok (Buffer.contents buf)

let of_registry reg =
  match render (Registry.to_json reg) with
  | Ok s -> s
  | Error m -> "# prometheus rendering failed: " ^ m ^ "\n"
