type t = Par | Fwd | Bwd | Bi | Fwd_maybe | Bwd_maybe | Bi_maybe

let all = [ Par; Fwd; Bwd; Bi; Fwd_maybe; Bwd_maybe; Bi_maybe ]

let equal (a : t) (b : t) = a = b

let distance = function
  | Par -> 0
  | Fwd | Bwd -> 1
  | Fwd_maybe | Bi | Bwd_maybe -> 4
  | Bi_maybe -> 9

let index = function
  | Par -> 0
  | Fwd -> 1
  | Bwd -> 2
  | Bi -> 3
  | Fwd_maybe -> 4
  | Bwd_maybe -> 5
  | Bi_maybe -> 6

let compare a b =
  let c = Int.compare (distance a) (distance b) in
  if c <> 0 then c else Int.compare (index a) (index b)

(* Figure 3, read as a more-specific-than order with Par at the bottom. *)
let leq_def a b =
  match a, b with
  | Par, _ -> true
  | _, Bi_maybe -> true
  | Fwd, (Fwd | Fwd_maybe | Bi) -> true
  | Bwd, (Bwd | Bwd_maybe | Bi) -> true
  | Bi, Bi -> true
  | Fwd_maybe, Fwd_maybe -> true
  | Bwd_maybe, Bwd_maybe -> true
  | (Fwd | Bwd | Bi | Fwd_maybe | Bwd_maybe | Bi_maybe), _ -> false

let join_def a b =
  if leq_def a b then b
  else if leq_def b a then a
  else
    match a, b with
    | Fwd, Bwd | Bwd, Fwd -> Bi
    | Fwd, Bwd_maybe | Bwd_maybe, Fwd
    | Bwd, Fwd_maybe | Fwd_maybe, Bwd
    | Fwd_maybe, Bwd_maybe | Bwd_maybe, Fwd_maybe
    | Fwd_maybe, Bi | Bi, Fwd_maybe
    | Bwd_maybe, Bi | Bi, Bwd_maybe -> Bi_maybe
    | (Par | Fwd | Bwd | Bi | Fwd_maybe | Bwd_maybe | Bi_maybe), _ ->
      (* Any remaining combination is comparable and was handled above. *)
      assert false

(* [leq] and [join] sit inside the learner's per-cell hot loops (a merge
   runs them 2·t² times); the 7×7 lattice is small enough to tabulate
   once at module load and answer both in a single array read. *)
let of_index_tbl = [| Par; Fwd; Bwd; Bi; Fwd_maybe; Bwd_maybe; Bi_maybe |]

let of_index i = of_index_tbl.(i)

let join_tbl =
  Array.init 49 (fun k -> join_def of_index_tbl.(k / 7) of_index_tbl.(k mod 7))

let leq_tbl =
  Array.init 49 (fun k -> leq_def of_index_tbl.(k / 7) of_index_tbl.(k mod 7))

let leq a b = leq_tbl.((index a * 7) + index b)

let join a b = join_tbl.((index a * 7) + index b)

(* Pure-int views of the same tables, for callers that keep lattice
   values in index form (the byte-matrix kernels of [Depfun] and the
   learner's fused merge loop). Row-major: entry [ia * 7 + ib]. *)
let join_ix_tbl = Array.init 49 (fun k -> index join_tbl.(k))

let leq_ix_tbl = leq_tbl

let dist_ix_tbl = Array.init 7 (fun i -> distance of_index_tbl.(i))

let cmp_ix_tbl =
  Array.init 49 (fun k -> compare of_index_tbl.(k / 7) of_index_tbl.(k mod 7))

let lt a b = leq a b && not (equal a b)

let meet a b =
  if leq a b then a
  else if leq b a then b
  else
    match a, b with
    | Fwd, Bwd | Bwd, Fwd
    | Fwd, Bwd_maybe | Bwd_maybe, Fwd
    | Bwd, Fwd_maybe | Fwd_maybe, Bwd
    | Fwd_maybe, Bwd_maybe | Bwd_maybe, Fwd_maybe -> Par
    | Fwd_maybe, Bi | Bi, Fwd_maybe -> Fwd
    | Bwd_maybe, Bi | Bi, Bwd_maybe -> Bwd
    | (Par | Fwd | Bwd | Bi | Fwd_maybe | Bwd_maybe | Bi_maybe), _ ->
      assert false

let covers = function
  | Par -> [ Fwd; Bwd ]
  | Fwd -> [ Fwd_maybe; Bi ]
  | Bwd -> [ Bwd_maybe; Bi ]
  | Bi | Fwd_maybe | Bwd_maybe -> [ Bi_maybe ]
  | Bi_maybe -> []

let flip = function
  | Fwd -> Bwd
  | Bwd -> Fwd
  | Fwd_maybe -> Bwd_maybe
  | Bwd_maybe -> Fwd_maybe
  | (Par | Bi | Bi_maybe) as v -> v

let is_definite = function
  | Fwd | Bwd | Bi -> true
  | Par | Fwd_maybe | Bwd_maybe | Bi_maybe -> false

let weaken = function
  | Fwd -> Fwd_maybe
  | Bwd -> Bwd_maybe
  | Bi -> Bi_maybe
  | (Par | Fwd_maybe | Bwd_maybe | Bi_maybe) as v -> v

let to_string = function
  | Par -> "||"
  | Fwd -> "->"
  | Bwd -> "<-"
  | Bi -> "<->"
  | Fwd_maybe -> "->?"
  | Bwd_maybe -> "<-?"
  | Bi_maybe -> "<->?"

let of_string = function
  | "||" | "\xe2\x80\x96" -> Some Par
  | "->" | "\xe2\x86\x92" -> Some Fwd
  | "<-" | "\xe2\x86\x90" -> Some Bwd
  | "<->" | "\xe2\x86\x94" -> Some Bi
  | "->?" | "\xe2\x86\x92?" -> Some Fwd_maybe
  | "<-?" | "\xe2\x86\x90?" -> Some Bwd_maybe
  | "<->?" | "\xe2\x86\x94?" -> Some Bi_maybe
  | _ -> None

let pp ppf v = Format.pp_print_string ppf (to_string v)
