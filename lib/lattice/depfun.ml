(* Matrices are stored as flat row-major byte strings — one byte per
   cell, holding [Depval.index] of the value. An 18-task matrix is 324
   bytes (41 words), comfortably inside OCaml's minor-heap allocation
   limit; the learner allocates one matrix per generated hypothesis, and
   with a boxed [Depval.t array] every one of those was a 325-word
   major-heap allocation (beyond [Max_young_wosize]), which made the GC
   the dominant cost of a bounded run. Byte cells also let the hot
   pointwise operations run on pure int tables ([Depval.join_ix_tbl] and
   friends) with no per-cell variant dispatch. *)
type t = { n : int; cells : Bytes.t }

(* Local bindings so the per-cell loops index the tables directly. *)
let join_ix = Depval.join_ix_tbl
let leq_ix = Depval.leq_ix_tbl
let dist_ix = Depval.dist_ix_tbl
let cmp_ix = Depval.cmp_ix_tbl

let create n =
  if n < 1 then invalid_arg "Depfun.create: need at least one task";
  { n; cells = Bytes.make (n * n) '\000' }

let top n =
  let d = create n in
  let hi = Char.chr (Depval.index Depval.Bi_maybe) in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then Bytes.set d.cells ((a * n) + b) hi
    done
  done;
  d

let size d = d.n

let check d a b =
  if a < 0 || a >= d.n || b < 0 || b >= d.n then
    invalid_arg "Depfun: task index out of range"

let get d a b =
  check d a b;
  Depval.of_index (Char.code (Bytes.get d.cells ((a * d.n) + b)))

let set d a b v =
  check d a b;
  if a = b && not (Depval.equal v Depval.Par) then
    invalid_arg "Depfun.set: diagonal must stay Par";
  Bytes.set d.cells ((a * d.n) + b) (Char.chr (Depval.index v))

let join_cell d a b v =
  check d a b;
  let i = (a * d.n) + b in
  let old = Char.code (Bytes.get d.cells i) in
  let v' = join_ix.((old * 7) + Depval.index v) in
  if v' = old then false
  else begin
    if a = b then invalid_arg "Depfun.join_cell: diagonal must stay Par";
    Bytes.set d.cells i (Char.chr v');
    true
  end

let copy d = { n = d.n; cells = Bytes.copy d.cells }

let cells d = d.cells

let equal d1 d2 = d1.n = d2.n && Bytes.equal d1.cells d2.cells

let compare d1 d2 =
  let c = Int.compare d1.n d2.n in
  if c <> 0 then c
  else
    (* Per-cell [Depval.compare] (distance-major), {e not} byte order —
       the learner's canonical tie-break depends on this order staying
       exactly what the boxed representation used. *)
    let rec loop i =
      if i >= d1.n * d1.n then 0
      else
        let ia = Char.code (Bytes.unsafe_get d1.cells i)
        and ib = Char.code (Bytes.unsafe_get d2.cells i) in
        if ia = ib then loop (i + 1) else cmp_ix.((ia * 7) + ib)
    in
    loop 0

let leq d1 d2 =
  d1.n = d2.n
  && (let rec loop i =
        i < 0
        || (leq_ix.(((Char.code (Bytes.unsafe_get d1.cells i)) * 7)
                    + Char.code (Bytes.unsafe_get d2.cells i))
            && loop (i - 1))
      in
      loop ((d1.n * d1.n) - 1))

let map2_ix name tbl d1 d2 =
  if d1.n <> d2.n then invalid_arg name;
  let m = d1.n * d1.n in
  let cells = Bytes.create m in
  for i = 0 to m - 1 do
    Bytes.unsafe_set cells i
      (Char.unsafe_chr
         tbl.(((Char.code (Bytes.unsafe_get d1.cells i)) * 7)
              + Char.code (Bytes.unsafe_get d2.cells i)))
  done;
  { n = d1.n; cells }

let meet_ix_tbl =
  Array.init 49 (fun k ->
      Depval.index (Depval.meet (Depval.of_index (k / 7)) (Depval.of_index (k mod 7))))

let join d1 d2 = map2_ix "Depfun.join: size mismatch" join_ix d1 d2

let meet d1 d2 = map2_ix "Depfun.meet: size mismatch" meet_ix_tbl d1 d2

let join_into ~dst d =
  if dst.n <> d.n then invalid_arg "Depfun.join_into: size mismatch";
  for i = 0 to (d.n * d.n) - 1 do
    Bytes.unsafe_set dst.cells i
      (Char.unsafe_chr
         join_ix.(((Char.code (Bytes.unsafe_get dst.cells i)) * 7)
                  + Char.code (Bytes.unsafe_get d.cells i)))
  done

let lub = function
  | [] -> invalid_arg "Depfun.lub: empty list"
  | d :: rest ->
    let acc = copy d in
    List.iter (fun d' -> join_into ~dst:acc d') rest;
    acc

(* Batched lub over a whole working set's matrices: one destination
   allocation, then a single tight unsafe byte loop per source matrix.
   Matrix-outer / cell-inner keeps each source sequential in memory,
   which is what the prefetcher wants; the per-cell body is the same
   [join_ix_tbl] lookup the pairwise kernels use. *)
let lub_many ds =
  let k = Array.length ds in
  if k = 0 then invalid_arg "Depfun.lub_many: empty array";
  let n = ds.(0).n in
  let m = n * n in
  for i = 1 to k - 1 do
    if ds.(i).n <> n then invalid_arg "Depfun.lub_many: size mismatch"
  done;
  let cells = Bytes.copy ds.(0).cells in
  for i = 1 to k - 1 do
    let src = ds.(i).cells in
    for j = 0 to m - 1 do
      Bytes.unsafe_set cells j
        (Char.unsafe_chr
           join_ix.(((Char.code (Bytes.unsafe_get cells j)) * 7)
                    + Char.code (Bytes.unsafe_get src j)))
    done
  done;
  { n; cells }

(* End-of-fold conditional-dependency pass on a bare matrix: weaken every
   definite cell whose pair some period violated. The shard fold applies
   this once with the union of the shards' violation matrices; see
   DESIGN.md sec. 14 for why that equals the monolithic interleaving. *)
let weaken_violations d ~violated =
  let n = d.n in
  if Array.length violated <> n then
    invalid_arg "Depfun.weaken_violations: size mismatch";
  let changed = ref 0 in
  for a = 0 to n - 1 do
    let row = violated.(a) in
    for b = 0 to n - 1 do
      if a <> b && row.(b) then begin
        let i = (a * n) + b in
        let v = Depval.of_index (Char.code (Bytes.unsafe_get d.cells i)) in
        if Depval.is_definite v then begin
          Bytes.unsafe_set d.cells i
            (Char.unsafe_chr (Depval.index (Depval.weaken v)));
          incr changed
        end
      end
    done
  done;
  !changed

let weight d =
  let w = ref 0 in
  for i = 0 to Bytes.length d.cells - 1 do
    w := !w + dist_ix.(Char.code (Bytes.unsafe_get d.cells i))
  done;
  !w

let iter_pairs f d =
  for a = 0 to d.n - 1 do
    for b = 0 to d.n - 1 do
      if a <> b then
        f a b (Depval.of_index (Char.code (Bytes.get d.cells ((a * d.n) + b))))
    done
  done

let fold_pairs f d init =
  let acc = ref init in
  iter_pairs (fun a b v -> acc := f a b v !acc) d;
  !acc

let count pred d = fold_pairs (fun _ _ v acc -> if pred v then acc + 1 else acc) d 0

let of_rows rows =
  let n = List.length rows in
  if n = 0 then invalid_arg "Depfun.of_rows: empty matrix";
  let d = create n in
  List.iteri (fun a row ->
      if List.length row <> n then invalid_arg "Depfun.of_rows: not square";
      List.iteri (fun b v ->
          if a = b then begin
            if not (Depval.equal v Depval.Par) then
              invalid_arg "Depfun.of_rows: diagonal must be Par"
          end
          else set d a b v)
        row)
    rows;
  d

let to_rows d =
  List.init d.n (fun a ->
      List.init d.n (fun b ->
          Depval.of_index (Char.code (Bytes.get d.cells ((a * d.n) + b)))))

let default_names n = Array.init n (fun i -> Printf.sprintf "t%d" (i + 1))

let pp ?names ppf d =
  let names = match names with Some a -> a | None -> default_names d.n in
  let name i = if i < Array.length names then names.(i) else Printf.sprintf "t%d" i in
  let cell a b =
    Depval.to_string (Depval.of_index (Char.code (Bytes.get d.cells ((a * d.n) + b))))
  in
  let width = ref 0 in
  for a = 0 to d.n - 1 do
    width := max !width (String.length (name a));
    for b = 0 to d.n - 1 do
      width := max !width (String.length (cell a b))
    done
  done;
  let pad s = s ^ String.make (!width - String.length s) ' ' in
  Format.fprintf ppf "%s" (pad "");
  for b = 0 to d.n - 1 do
    Format.fprintf ppf " %s" (pad (name b))
  done;
  for a = 0 to d.n - 1 do
    Format.fprintf ppf "@\n%s" (pad (name a));
    for b = 0 to d.n - 1 do
      Format.fprintf ppf " %s" (pad (cell a b))
    done
  done

let to_string ?names d = Format.asprintf "%a" (pp ?names) d

let parse s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let fields l =
    String.split_on_char ' ' l |> List.filter (fun f -> f <> "")
  in
  match lines with
  | [] -> Error "empty input"
  | header :: rows ->
    let names = fields header in
    let n = List.length names in
    if n = 0 then Error "no task names in header"
    else if List.length rows <> n then
      Error (Printf.sprintf "expected %d rows, got %d" n (List.length rows))
    else begin
      let exception Fail of string in
      try
        let parsed_rows =
          List.map (fun row ->
              match fields row with
              | name :: cells ->
                if not (List.mem name names) then
                  raise (Fail ("unknown row label " ^ name));
                if List.length cells <> n then
                  raise (Fail ("wrong cell count in row " ^ name));
                List.map (fun cell ->
                    match Depval.of_string cell with
                    | Some v -> v
                    | None -> raise (Fail ("bad dependency value " ^ cell)))
                  cells
              | [] -> raise (Fail "empty row"))
            rows
        in
        match of_rows parsed_rows with
        | d -> Ok (d, Array.of_list names)
        | exception Invalid_argument m -> Error m
      with Fail m -> Error m
    end

let parse_exn s =
  match parse s with
  | Ok r -> r
  | Error m -> invalid_arg ("Depfun.parse_exn: " ^ m)
