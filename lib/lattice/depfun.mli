(** Dependency functions [d : T × T → V] (Definition 5) over a task set
    indexed [0 .. n-1], with the pointwise partial order [⊑_D], pointwise
    least upper bound [⊔_D] and the weight of Definition 8.

    The diagonal [d(t, t)] is fixed to [Par]: a task has no dependency on
    itself. Off-diagonal entries are independent — the paper's matrices are
    {e not} antisymmetric (e.g. [d(t1,t3) = →?] can coexist with
    [d(t3,t1) = ←], meaning "t1 may determine t3" and "t3 definitely
    depends on t1").

    Values of this type are mutable matrices; the learner copies before
    branching. *)

type t

val create : int -> t
(** [create n] is the most specific hypothesis [d⊥]: everything [Par].
    Requires [n >= 1]. *)

val top : int -> t
(** The least specific hypothesis [d⊤]: every off-diagonal entry
    [Bi_maybe]. *)

val size : t -> int
(** Number of tasks [n]. *)

val get : t -> int -> int -> Depval.t
(** [get d a b] is [d(a, b)]. Indices must be in range. *)

val set : t -> int -> int -> Depval.t -> unit
(** In-place update. Setting a diagonal cell to anything but [Par] raises
    [Invalid_argument]. *)

val join_cell : t -> int -> int -> Depval.t -> bool
(** [join_cell d a b v] replaces [d(a,b)] by [d(a,b) ⊔ v]; returns [true]
    iff the cell changed. *)

val copy : t -> t

val cells : t -> Bytes.t
(** The backing row-major byte matrix, {e not} a copy: the byte at index
    [a * n + b] holds [Depval.index (d (a, b))]. Exposed for the
    learner's fused hot loops (merge = join + weight + hash in one pass
    over bytes, driven by {!Depval.join_ix_tbl}); treat as read-only
    everywhere else — writing through it bypasses the diagonal
    invariant. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order for use in sets/maps (lexicographic on cells). *)

val leq : t -> t -> bool
(** Pointwise [⊑_D]. *)

val join : t -> t -> t
(** Fresh pointwise [⊔_D]. Sizes must agree. *)

val meet : t -> t -> t
(** Fresh pointwise [⊓_D]. Sizes must agree. *)

val join_into : dst:t -> t -> unit
(** [join_into ~dst d] folds [d] into [dst] pointwise, in place. *)

val lub : t list -> t
(** Least upper bound of a non-empty list. *)

val lub_many : t array -> t
(** Batched least upper bound of a non-empty array: one fused unsafe
    byte-table pass per source matrix into a single fresh destination.
    Semantically [lub (Array.to_list ds)]; exists so whole-workset folds
    (the shard merge, the final model) pay one allocation instead of a
    list walk of pairwise kernels. Raises [Invalid_argument] on an empty
    array or a size mismatch. *)

val weaken_violations : t -> violated:bool array array -> int
(** In-place conditional-dependency pass (Section 4.3): for every ordered
    pair [(a, b)] with [a <> b] and [violated.(a).(b)], replace a definite
    cell value by its weakened ([…?]) counterpart. Returns the number of
    cells changed. [violated] must be [n × n]. Used by the shard fold to
    apply the union of per-shard violation matrices exactly once after
    joining; idempotent, and commutes with pointwise join in the sense
    [w (w x ⊔ d) = w (x ⊔ d)], which is what makes the single
    end-of-fold pass equal to the monolithic run's interleaved passes. *)

val weight : t -> int
(** Definition 8: sum over ordered pairs of [Depval.distance]. *)

val iter_pairs : (int -> int -> Depval.t -> unit) -> t -> unit
(** Iterate over all ordered pairs [a <> b]. *)

val fold_pairs : (int -> int -> Depval.t -> 'a -> 'a) -> t -> 'a -> 'a

val count : (Depval.t -> bool) -> t -> int
(** Number of off-diagonal cells satisfying the predicate. *)

val of_rows : Depval.t list list -> t
(** Build from a square matrix given as rows (as printed in the paper's
    tables). Raises [Invalid_argument] if not square or the diagonal is
    not [Par]. *)

val to_rows : t -> Depval.t list list

val pp : ?names:string array -> Format.formatter -> t -> unit
(** Matrix rendering in the style of the paper's tables. *)

val to_string : ?names:string array -> t -> string

val parse : string -> (t * string array, string) result
(** Parse the output of [to_string]: a header row of task names followed
    by one row per task. Returns the matrix and the task names. *)

val parse_exn : string -> t * string array
