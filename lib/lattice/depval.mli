(** The seven-valued dependency lattice [V] of the paper (Definition 5 and
    Figure 3).

    For an ordered task pair [(t1, t2)], a value describes how the execution
    of [t1] relates to the execution of [t2] within one period:

    - [Par] (‖): [t1] always executes in parallel with (independently of)
      [t2]; no dependency either way.
    - [Fwd] (→): if [t1] executes, it always determines the execution of
      [t2] ([t2] must also execute).
    - [Bwd] (←): if [t1] executes, it always depends on the execution of
      [t2] ([t2] must also execute, and did so before).
    - [Bi] (↔): both; defined for lattice completeness, never observed.
    - [Fwd_maybe] (→?): if [t1] executes it may or may not determine [t2].
    - [Bwd_maybe] (←?): if [t1] executes it may or may not depend on [t2].
    - [Bi_maybe] (↔?): may or may not depend on / determine each other;
      the least specific value.

    The partial order [leq] is the more-specific-than order of Figure 3:
    [Par] is the bottom; [Fwd] and [Bwd] cover it; [Fwd_maybe], [Bi] and
    [Bwd_maybe] form the next level ([Fwd_maybe] above [Fwd], [Bi] above
    both [Fwd] and [Bwd], [Bwd_maybe] above [Bwd]); [Bi_maybe] is the top. *)

type t = Par | Fwd | Bwd | Bi | Fwd_maybe | Bwd_maybe | Bi_maybe

val all : t list
(** Every value, bottom first. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** A total order compatible with [leq] (by distance, then constructor);
    used only for sorting and sets, not for lattice reasoning. *)

val leq : t -> t -> bool
(** [leq a b] iff [a] is more specific than or equal to [b] (written
    [a ⊑ b] in the paper). *)

val lt : t -> t -> bool

val join : t -> t -> t
(** Least upper bound [⊔]. *)

val meet : t -> t -> t
(** Greatest lower bound [⊓]. *)

val covers : t -> t list
(** [covers v] are the immediate successors of [v] in the Hasse diagram:
    the minimal values strictly above [v]. Used for minimal
    generalization. *)

val distance : t -> int
(** Definition 7: squared distance from the lattice bottom;
    0 for [Par], 1 for [Fwd]/[Bwd], 4 for [Fwd_maybe]/[Bi]/[Bwd_maybe],
    9 for [Bi_maybe]. *)

val flip : t -> t
(** Transpose of the relation: exchanges [Fwd]↔[Bwd] and
    [Fwd_maybe]↔[Bwd_maybe]; [Par], [Bi], [Bi_maybe] are symmetric. *)

val is_definite : t -> bool
(** [Fwd], [Bwd] or [Bi]: values that constrain executions unconditionally. *)

val weaken : t -> t
(** Minimal generalization of a definite value whose guarantee was violated
    by an observed period: [Fwd ↦ Fwd_maybe], [Bwd ↦ Bwd_maybe],
    [Bi ↦ Bi_maybe]. Identity on the other values. *)

val index : t -> int
(** Position in declaration order: [0] for [Par] … [6] for [Bi_maybe].
    Matches the runtime representation of the constructors; inverse of
    {!of_index}. *)

val of_index : int -> t
(** Inverse of {!index}. The argument must be in [0..6]. *)

(** {2 Tabulated kernels}

    Read-only tables for hot loops that keep lattice values in index form
    (notably {!Depfun}'s byte matrices and the learner's fused merge).
    All pair tables are row-major 7×7: entry [ia * 7 + ib] describes
    [(of_index ia, of_index ib)]. Treat as constants; never mutate. *)

val join_ix_tbl : int array
(** [join_ix_tbl.(ia * 7 + ib) = index (join (of_index ia) (of_index ib))]. *)

val leq_ix_tbl : bool array
(** [leq_ix_tbl.(ia * 7 + ib) = leq (of_index ia) (of_index ib)]. *)

val dist_ix_tbl : int array
(** [dist_ix_tbl.(i) = distance (of_index i)]; 7 entries. *)

val cmp_ix_tbl : int array
(** [cmp_ix_tbl.(ia * 7 + ib) = compare (of_index ia) (of_index ib)]. *)

val to_string : t -> string
(** ASCII rendering: ["||"], ["->"], ["<-"], ["<->"], ["->?"], ["<-?"],
    ["<->?"]. *)

val of_string : string -> t option
(** Inverse of [to_string]; also accepts the Unicode forms. *)

val pp : Format.formatter -> t -> unit
