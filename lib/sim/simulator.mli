(** Discrete-event simulator: executes a design model period by period and
    emits the bus-logger trace the learner consumes.

    Per period: a logical outcome is drawn (which disjunction choices were
    made), then timing is simulated — tasks run under fixed-priority
    preemptive scheduling on their ECUs, become ready when all their chosen
    input messages have been delivered, and send their frames on the shared
    CAN bus when they finish. The logger records task start/end and frame
    rising/falling edges, exactly the four event kinds of the paper's
    traces. *)

type config = {
  periods : int;        (** number of periods to simulate *)
  seed : int;           (** PRNG seed; runs are reproducible *)
  wcet_jitter : bool;   (** execution times vary in [60%, 100%] of WCET *)
  release_jitter : int; (** max extra release delay for source tasks, us *)
  drop_rate : float;    (** fault injection: probability that the logger
                            misses a frame (both edges). The frame is still
                            delivered — only the log is incomplete — so the
                            downstream task appears to fire without a
                            cause, which the learner must surface as an
                            inconsistent trace or a more general model. *)
  jitter_spike_rate : float;
  (** fault injection: probability that a source release draws its jitter
      from [release_jitter * jitter_spike_factor] instead of
      [release_jitter] — a rare but large release delay (overloaded
      gateway, late interrupt). No effect when [release_jitter] is 0. *)
  jitter_spike_factor : int;  (** spike magnitude multiplier (default 4) *)
  glitch_rate : float;
  (** fault injection: expected bus glitches per period (geometric, capped
      at 32). A glitch is a 1–3 us spurious frame under a high CAN id
      (0x7c0+) that the logger records but no task sent or receives.
      Ground-truth [senders_receivers] covers only real frames, so with
      glitches enabled the truth array no longer aligns positionally with
      the trace's rising edges — match by CAN id range when evaluating. *)
}

val default_config : config
(** 27 periods (the case-study trace length), seed 42, jitter on, no
    drops. *)

exception Overrun of { period : int; time : int }
(** Raised when a period's activity does not finish before the next period
    starts — the design is not schedulable at this load. *)

type period_truth = {
  outcome : Rt_task.Design.outcome;
  senders_receivers : (int * int) array;
  (** ground-truth (sender, receiver) per message occurrence, in
      rising-edge order — what the bus logger cannot see. *)
}

val run : ?obs:Rt_obs.Registry.t -> Rt_task.Design.t -> config -> Rt_trace.Trace.t
(** With [obs], the simulation runs inside a ["sim.run"] span and
    publishes ["sim.*"] counters: periods, logged events, and the
    fault-injection tallies (frames dropped from the log, glitches,
    jitter spikes). *)

val run_with_truth :
  ?obs:Rt_obs.Registry.t ->
  Rt_task.Design.t -> config -> Rt_trace.Trace.t * period_truth array
(** Like [run] but also returns per-period ground truth, for evaluating
    candidate inference and baselines. *)

val source :
  ?obs:Rt_obs.Registry.t ->
  Rt_task.Design.t -> config -> Rt_trace.Event_source.t
(** The simulator as a live feed: an event source that simulates each
    period lazily as the consumer drains it, holding at most one period
    in memory — plug it into a {!Rt_trace.Segmenter} (with
    [period_len = design.period] and the design's task set) and feed an
    engine for an end-to-end online run. Event times are absolute
    ([index * period] plus the in-period time), unlike [run]'s periods,
    which are relative — a uniform shift the learner is invariant to.
    The same seed draws the same PRNG stream as [run], so the streamed
    periods are the same periods. [sim.*] counters are published once
    the source is exhausted. *)
