module Pcg = Rt_util.Pcg32
module Design = Rt_task.Design
module Event = Rt_trace.Event

type config = {
  periods : int;
  seed : int;
  wcet_jitter : bool;
  release_jitter : int;
  drop_rate : float;
  jitter_spike_rate : float;
  jitter_spike_factor : int;
  glitch_rate : float;
}

let default_config =
  { periods = 27; seed = 42; wcet_jitter = true; release_jitter = 20;
    drop_rate = 0.0; jitter_spike_rate = 0.0; jitter_spike_factor = 4;
    glitch_rate = 0.0 }

exception Overrun of { period : int; time : int }

(* Per-run fault-injection tally, published as [sim.*] counters when a
   registry is attached. Counted unconditionally — integer stores on
   paths that already drew from the PRNG. *)
type tally = {
  mutable t_events : int;
  mutable t_dropped : int;
  mutable t_glitches : int;
  mutable t_spikes : int;
}

type period_truth = {
  outcome : Design.outcome;
  senders_receivers : (int * int) array;
}

(* One period: returns events with timestamps relative to the period start,
   plus the ground-truth message assignment in rising-edge order. *)
let simulate_period (d : Design.t) rng config ~tally ~period_index =
  let n = Design.size d in
  let outcome = Design.sample_outcome d rng in
  let work =
    Array.init n (fun i ->
        let w = d.tasks.(i).wcet in
        if config.wcet_jitter then Pcg.int_in rng (max 1 (w * 6 / 10)) w else w)
  in
  (* How many chosen input frames each task still waits for. *)
  let missing = Array.make n 0 in
  List.iter (fun (e : Design.edge) -> missing.(e.dst) <- missing.(e.dst) + 1)
    outcome.sent;
  let sched =
    Scheduler.create
      ~ecus:(1 + Array.fold_left (fun m t -> max m t.Design.ecu) 0 d.tasks)
      ~priority:(Array.map (fun t -> t.Design.priority) d.tasks)
      ~ecu_of:(Array.map (fun t -> t.Design.ecu) d.tasks)
  in
  let bus = Can_bus.create () in
  let bus_fall = ref None in
  let timed_heap () =
    Rt_util.Binary_heap.create
      ~cmp:(fun (t1, i1) (t2, i2) ->
          let c = Int.compare t1 t2 in
          if c <> 0 then c else Int.compare i1 i2)
      ~capacity:8
  in
  let releases = timed_heap () in
  (* Local (off-bus) deliveries in flight: (arrival time, edge tag). *)
  let local_inflight = timed_heap () in
  List.iter (fun v ->
      if outcome.executed.(v) then
        let jitter =
          if config.release_jitter > 0 then begin
            (* Occasional spike: a source held up [factor] times longer
               than its nominal jitter bound (an overloaded gateway, a
               late interrupt). All draws are gated on the rates so a
               zero-rate config consumes the same PRNG stream as before
               the fault model existed. *)
            let bound =
              if config.jitter_spike_rate > 0.0
                 && Pcg.chance rng config.jitter_spike_rate
              then begin
                tally.t_spikes <- tally.t_spikes + 1;
                config.release_jitter * max 1 config.jitter_spike_factor
              end
              else config.release_jitter
            in
            Pcg.int rng (bound + 1)
          end
          else 0
        in
        Rt_util.Binary_heap.push releases (d.tasks.(v).Design.offset + jitter, v))
    (Design.sources d);
  let events = ref [] in
  let truth = ref [] in
  let log time kind = events := { Event.time; kind } :: !events in
  let chosen_out = Array.make n [] in
  List.iter (fun (e : Design.edge) ->
      chosen_out.(e.src) <- e :: chosen_out.(e.src))
    outcome.sent;
  let edge_of_tag tag = d.edges.(tag) in
  let tag_of_pair : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri (fun k (e : Design.edge) -> Hashtbl.replace tag_of_pair (e.src, e.dst) k)
    d.edges;
  let frame_of_edge (e : Design.edge) =
    let tag = Hashtbl.find tag_of_pair (e.src, e.dst) in
    { Can_bus.can_id = e.can_id; tx_time = e.tx_time; tag }
  in
  (* Fault injection: a dropped frame is transmitted and delivered but
     missing from the log. *)
  let dropped : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let bus_start now =
    match Can_bus.try_start bus ~now with
    | None -> ()
    | Some (f, fall) ->
      let e = edge_of_tag f.tag in
      if config.drop_rate > 0.0 && Pcg.chance rng config.drop_rate then begin
        tally.t_dropped <- tally.t_dropped + 1;
        Hashtbl.replace dropped f.tag ()
      end
      else begin
        log now (Event.Msg_rise f.can_id);
        truth := (e.src, e.dst) :: !truth
      end;
      bus_fall := Some fall
  in
  let deliver now (e : Design.edge) =
    missing.(e.dst) <- missing.(e.dst) - 1;
    if missing.(e.dst) = 0 && outcome.executed.(e.dst) then
      Scheduler.release sched ~now ~task:e.dst ~work:work.(e.dst)
  in
  let next_time () =
    let cand = ref None in
    let consider t = match !cand with
      | Some m when m <= t -> ()
      | _ -> cand := Some t
    in
    (match Rt_util.Binary_heap.peek releases with
     | Some (t, _) -> consider t
     | None -> ());
    (match Rt_util.Binary_heap.peek local_inflight with
     | Some (t, _) -> consider t
     | None -> ());
    (match Scheduler.next_completion sched with Some t -> consider t | None -> ());
    (match !bus_fall with Some t -> consider t | None -> ());
    !cand
  in
  let rec loop () =
    match next_time () with
    | None -> ()
    | Some now ->
      Scheduler.advance sched ~now;
      (* 1. Task completions: log ends and queue their frames. *)
      let completed = Scheduler.take_completions sched ~now in
      List.iter (fun c ->
          log now (Event.Task_end c);
          List.iter (fun (e : Design.edge) ->
              match e.medium with
              | Design.Bus -> Can_bus.submit bus (frame_of_edge e)
              | Design.Local ->
                (* ECU-internal delivery: fixed IPC latency, never on the
                   bus, invisible to the logger. *)
                Rt_util.Binary_heap.push local_inflight
                  (now + e.tx_time, Hashtbl.find tag_of_pair (e.src, e.dst)))
            (List.sort
               (fun (a : Design.edge) b -> Int.compare a.can_id b.can_id)
               chosen_out.(c)))
        completed;
      (* 2. Frame completion: log the falling edge and deliver. *)
      (match !bus_fall with
       | Some t when t = now ->
         let f = Can_bus.complete bus in
         bus_fall := None;
         if Hashtbl.mem dropped f.tag then Hashtbl.remove dropped f.tag
         else log now (Event.Msg_fall f.can_id);
         deliver now (edge_of_tag f.tag)
       | Some _ | None -> ());
      (* 2b. Local deliveries due now. *)
      let rec pop_local () =
        match Rt_util.Binary_heap.peek local_inflight with
        | Some (t, tag) when t = now ->
          ignore (Rt_util.Binary_heap.pop local_inflight);
          deliver now (edge_of_tag tag);
          pop_local ()
        | Some _ | None -> ()
      in
      pop_local ();
      (* 3. Source releases due now. *)
      let rec pop_releases () =
        match Rt_util.Binary_heap.peek releases with
        | Some (t, v) when t = now ->
          ignore (Rt_util.Binary_heap.pop releases);
          Scheduler.release sched ~now ~task:v ~work:work.(v);
          pop_releases ()
        | Some _ | None -> ()
      in
      pop_releases ();
      (* 4. Start the next frame if the bus went idle, then dispatch CPUs. *)
      bus_start now;
      Scheduler.dispatch sched ~now;
      List.iter (fun (t, v) -> log t (Event.Task_start v)) (Scheduler.take_starts sched);
      loop ()
  in
  loop ();
  (* Bus glitches: short spurious frames from electrical noise, recorded
     by the logger but carrying no message. Each glitch gets a fresh high
     id (0x7c0+) so glitches never interleave with a real frame or each
     other under the same id; the cap keeps the id space distinct within
     a period. Geometric count: keep glitching while the coin comes up. *)
  if config.glitch_rate > 0.0 && d.period > 4 then begin
    let count = ref 0 in
    while !count < 32 && Pcg.chance rng config.glitch_rate do
      let dur = 1 + Pcg.int rng 3 in
      let t = Pcg.int rng (d.period - dur - 1) in
      let id = 0x7c0 + (!count land 63) in
      log t (Event.Msg_rise id);
      log (t + dur) (Event.Msg_fall id);
      incr count
    done;
    tally.t_glitches <- tally.t_glitches + !count
  end;
  let events = List.rev !events in
  tally.t_events <- tally.t_events + List.length events;
  (match events with
   | [] -> ()
   | _ ->
     let tmax = List.fold_left (fun m (e : Event.t) -> max m e.time) 0 events in
     if tmax >= d.period then raise (Overrun { period = period_index; time = tmax }));
  (events, { outcome; senders_receivers = Array.of_list (List.rev !truth) })

let run_with_truth ?obs d config =
  if config.periods <= 0 then invalid_arg "Simulator.run: periods must be positive";
  (match obs with
   | Some r -> Rt_obs.Registry.span_begin r "sim.run"
   | None -> ());
  let rng = Pcg.of_int config.seed in
  let task_set = Design.task_set d in
  let tally = { t_events = 0; t_dropped = 0; t_glitches = 0; t_spikes = 0 } in
  let periods = ref [] and truths = ref [] in
  for idx = 0 to config.periods - 1 do
    let events, truth = simulate_period d rng config ~tally ~period_index:idx in
    periods := Rt_trace.Period.make_exn ~index:idx ~task_set events :: !periods;
    truths := truth :: !truths
  done;
  (match obs with
   | None -> ()
   | Some r ->
     let set = Rt_obs.Registry.set_counter r in
     set "sim.periods" config.periods;
     set "sim.events" tally.t_events;
     set "sim.frames_dropped" tally.t_dropped;
     set "sim.glitches" tally.t_glitches;
     set "sim.jitter_spikes" tally.t_spikes;
     Rt_obs.Registry.span_end r);
  ( Rt_trace.Trace.of_periods ~task_set (List.rev !periods),
    Array.of_list (List.rev !truths) )

let run ?obs d config = fst (run_with_truth ?obs d config)

(* Live feed: simulate lazily, one period ahead of the consumer. Only
   the period currently being drained is buffered, so an arbitrarily
   long simulation streams in constant memory. Event times are absolute
   (offset by [index * d.period]), which is what a segmenter expects. *)
let source ?obs d config =
  if config.periods <= 0 then
    invalid_arg "Simulator.source: periods must be positive";
  let rng = Pcg.of_int config.seed in
  let tally = { t_events = 0; t_dropped = 0; t_glitches = 0; t_spikes = 0 } in
  let idx = ref 0 in
  let buf = ref [] in
  let published = ref false in
  let publish () =
    match obs with
    | Some r when not !published ->
      published := true;
      let set = Rt_obs.Registry.set_counter r in
      set "sim.periods" config.periods;
      set "sim.events" tally.t_events;
      set "sim.frames_dropped" tally.t_dropped;
      set "sim.glitches" tally.t_glitches;
      set "sim.jitter_spikes" tally.t_spikes
    | Some _ | None -> ()
  in
  let rec pull () =
    match !buf with
    | e :: tl ->
      buf := tl;
      Some e
    | [] ->
      if !idx >= config.periods then begin
        publish ();
        None
      end
      else begin
        let events, _ = simulate_period d rng config ~tally ~period_index:!idx in
        let off = !idx * d.period in
        buf :=
          List.map (fun (e : Event.t) -> { e with time = e.time + off }) events;
        incr idx;
        pull ()
      end
  in
  Rt_trace.Event_source.of_fun pull
