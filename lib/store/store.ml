(* Content-addressed store. Everything durable goes through
   Rt_util.Atomic_file; objects are immutable once written, refs are
   small text ledgers rewritten atomically on commit. No wall clock
   anywhere: created_at is injected by callers so identical inputs
   yield identical store trees. *)

type t = { root : string }

type kind = Model | Companion | Checkpoint | Answerset

let kind_to_string = function
  | Model -> "model"
  | Companion -> "companion"
  | Checkpoint -> "checkpoint"
  | Answerset -> "answerset"

let kind_of_string = function
  | "model" -> Some Model
  | "companion" -> Some Companion
  | "checkpoint" -> Some Checkpoint
  | "answerset" -> Some Answerset
  | _ -> None

type meta = {
  kind : kind;
  bound : int option;
  source : string option;
  parents : string list;
  created_at : int;
}

type entry = { gen : int; address : string; meta : meta }

let root t = t.root
let marker = "rtgen-store v1\n"
let meta_file dir = Filename.concat dir "store.meta"
let objects_dir t = Filename.concat t.root "objects"
let refs_dir t = Filename.concat t.root "refs"

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755
      with Sys_error _ when Sys.file_exists d -> ()
    end
  in
  go dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let open_ dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else
    let mf = meta_file dir in
    if not (Sys.file_exists mf) then
      Error (Printf.sprintf "%s: not a store (missing store.meta)" dir)
    else if read_file mf <> marker then
      Error (Printf.sprintf "%s: foreign store format" dir)
    else Ok { root = dir }

let init dir =
  if Sys.file_exists (meta_file dir) then open_ dir
  else if Sys.file_exists dir && not (Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else begin
    let t = { root = dir } in
    mkdir_p (objects_dir t);
    mkdir_p (refs_dir t);
    Rt_util.Atomic_file.write (meta_file dir) marker;
    Ok t
  end

(* ---- blobs ------------------------------------------------------- *)

let address_of content = Digest.to_hex (Digest.string content)

let is_address a =
  String.length a = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       a

let obj_path t addr =
  Filename.concat
    (Filename.concat (objects_dir t) (String.sub addr 0 2))
    (String.sub addr 2 30)

let has_blob t addr = is_address addr && Sys.file_exists (obj_path t addr)

let put_blob t content =
  let addr = address_of content in
  let path = obj_path t addr in
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    Rt_util.Atomic_file.write path content
  end;
  Ok addr

let read_blob t addr =
  if not (is_address addr) then
    Error (Printf.sprintf "%s: not a blob address" addr)
  else
    let path = obj_path t addr in
    if not (Sys.file_exists path) then
      Error (Printf.sprintf "%s: no such object" addr)
    else
      let content = read_file path in
      if address_of content <> addr then
        Error (Printf.sprintf "%s: object corrupt (hash mismatch)" addr)
      else Ok content

(* ---- refs -------------------------------------------------------- *)

let ref_ok name =
  String.length name > 0
  && name.[0] <> '/'
  && name.[String.length name - 1] <> '/'
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '/' ->
           true
         | _ -> false)
       name
  &&
  (* no "." or ".." path segments, no empty segments *)
  List.for_all
    (fun seg -> seg <> "" && seg <> "." && seg <> "..")
    (String.split_on_char '/' name)

(* The ledger file carries a ".ref" suffix so a ref and its
   sub-namespace can coexist on the filesystem: "model" lives at
   refs/model.ref while "model/b1" lives under the refs/model/
   directory. *)
let ref_path t name = Filename.concat (refs_dir t) (name ^ ".ref")

let ref_header = "rtgen-ref v1"

(* One generation per line:
     gen <N> <addr> kind=<k> created=<c> [bound=<b>] [parents=a,b] [source=<rest>]
   source is last because it may contain spaces. *)
let entry_to_line e =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "gen %d %s kind=%s created=%d" e.gen e.address
       (kind_to_string e.meta.kind) e.meta.created_at);
  (match e.meta.bound with
   | Some n -> Buffer.add_string b (Printf.sprintf " bound=%d" n)
   | None -> ());
  (match e.meta.parents with
   | [] -> ()
   | ps -> Buffer.add_string b (" parents=" ^ String.concat "," ps));
  (match e.meta.source with
   | Some s -> Buffer.add_string b (" source=" ^ s)
   | None -> ());
  Buffer.contents b

let entry_of_line line =
  let fail m = Error (Printf.sprintf "bad ref line (%s): %s" m line) in
  match String.split_on_char ' ' line with
  | "gen" :: gen :: addr :: rest -> begin
      match int_of_string_opt gen with
      | None -> fail "generation"
      | Some gen ->
        if not (is_address addr) then fail "address"
        else begin
          let kind = ref None and bound = ref None and created = ref None in
          let parents = ref [] and source = ref None in
          let err = ref None in
          let rec eat = function
            | [] -> ()
            | f :: tl -> (
                match String.index_opt f '=' with
                | None -> err := Some "field"
                | Some i ->
                  let k = String.sub f 0 i in
                  let v = String.sub f (i + 1) (String.length f - i - 1) in
                  (match k with
                   | "kind" -> (
                       match kind_of_string v with
                       | Some k -> kind := Some k
                       | None -> err := Some "kind")
                   | "created" -> (
                       match int_of_string_opt v with
                       | Some c -> created := Some c
                       | None -> err := Some "created")
                   | "bound" -> (
                       match int_of_string_opt v with
                       | Some b -> bound := Some b
                       | None -> err := Some "bound")
                   | "parents" ->
                     parents :=
                       String.split_on_char ',' v
                       |> List.filter (fun p -> p <> "")
                   | "source" ->
                     (* source swallows the rest of the line *)
                     source := Some (String.concat " " (v :: tl))
                   | _ -> err := Some ("unknown field " ^ k));
                  if k = "source" then () else eat tl)
          in
          eat rest;
          match (!err, !kind, !created) with
          | Some m, _, _ -> fail m
          | None, Some kind, Some created_at ->
            Ok
              { gen; address = addr;
                meta =
                  { kind; bound = !bound; source = !source;
                    parents = !parents; created_at } }
          | None, None, _ -> fail "missing kind"
          | None, _, None -> fail "missing created"
        end
    end
  | _ -> fail "shape"

let load_ref t name =
  let path = ref_path t name in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such ref" name)
  else
    let lines =
      read_file path |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
    in
    match lines with
    | hd :: rest when hd = ref_header ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | l :: tl -> (
            match entry_of_line l with
            | Ok e -> go (e :: acc) tl
            | Error m -> Error (Printf.sprintf "%s: %s" name m))
      in
      go [] rest
    | _ -> Error (Printf.sprintf "%s: foreign ref format" name)

let store_ref t name entries =
  let path = ref_path t name in
  mkdir_p (Filename.dirname path);
  let body =
    ref_header :: List.map entry_to_line entries
    |> String.concat "\n"
  in
  Rt_util.Atomic_file.write path (body ^ "\n")

let generations t name =
  if not (ref_ok name) then Error (Printf.sprintf "%s: invalid ref name" name)
  else load_ref t name

let commit t ~ref_ ~meta blob =
  if not (ref_ok ref_) then
    Error (Printf.sprintf "%s: invalid ref name" ref_)
  else
    match put_blob t blob with
    | Error e -> Error e
    | Ok address ->
      let prior =
        if Sys.file_exists (ref_path t ref_) then load_ref t ref_
        else Ok []
      in
      (match prior with
       | Error e -> Error e
       | Ok entries ->
         let gen =
           1 + List.fold_left (fun a e -> max a e.gen) 0 entries
         in
         let entry = { gen; address; meta } in
         store_ref t ref_ (entries @ [ entry ]);
         Ok entry)

let resolve t spec =
  let name, sel =
    match String.rindex_opt spec '@' with
    | Some i ->
      (String.sub spec 0 i,
       Some (String.sub spec (i + 1) (String.length spec - i - 1)))
    | None -> (spec, None)
  in
  match generations t name with
  | Error _ as e -> e
  | Ok [] -> Error (Printf.sprintf "%s: ref has no generations" name)
  | Ok entries -> (
      let last = List.nth entries (List.length entries - 1) in
      match sel with
      | None | Some "latest" -> Ok last
      | Some g -> (
          match int_of_string_opt g with
          | None -> Error (Printf.sprintf "%s: bad generation %S" spec g)
          | Some g -> (
              match List.find_opt (fun e -> e.gen = g) entries with
              | Some e -> Ok e
              | None ->
                Error
                  (Printf.sprintf "%s: no generation %d (latest is %d)"
                     name g last.gen))))

let refs t =
  let dir = refs_dir t in
  let rec walk prefix acc d =
    if not (Sys.file_exists d && Sys.is_directory d) then acc
    else
      Array.fold_left
        (fun acc name ->
           let path = Filename.concat d name in
           let rel = if prefix = "" then name else prefix ^ "/" ^ name in
           if Sys.is_directory path then walk rel acc path
           else if Filename.check_suffix rel ".ref" then
             Filename.chop_suffix rel ".ref" :: acc
           else acc)
        acc (Sys.readdir d)
  in
  walk "" [] dir |> List.sort String.compare

let delete_ref t name =
  if not (ref_ok name) then Error (Printf.sprintf "%s: invalid ref name" name)
  else
    let path = ref_path t name in
    if not (Sys.file_exists path) then
      Error (Printf.sprintf "%s: no such ref" name)
    else begin
      Sys.remove path;
      Ok ()
    end

let gc t =
  let live = Hashtbl.create 64 in
  let collect name =
    match load_ref t name with
    | Error _ -> ()
    | Ok entries ->
      List.iter
        (fun e ->
           Hashtbl.replace live e.address ();
           List.iter (fun p -> Hashtbl.replace live p ()) e.meta.parents)
        entries
  in
  List.iter collect (refs t);
  let kept = ref 0 and deleted = ref 0 in
  let odir = objects_dir t in
  if Sys.file_exists odir && Sys.is_directory odir then
    Array.iter
      (fun sub ->
         let subdir = Filename.concat odir sub in
         if Sys.is_directory subdir then
           Array.iter
             (fun name ->
                let addr = sub ^ name in
                if Hashtbl.mem live addr then incr kept
                else begin
                  Sys.remove (Filename.concat subdir name);
                  incr deleted
                end)
             (Sys.readdir subdir))
      (Sys.readdir odir);
  Ok (!kept, !deleted)

let split_address s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = '/' && s.[i + 1] = '/' then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i when i > 0 && i + 2 < n ->
    Some (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))
  | _ -> None
