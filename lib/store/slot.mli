(** A whole-image persistence slot: a plain file, or a store ref.

    Engine checkpoints (and anything else written as one atomic image)
    address their destination through a slot, so [learn --checkpoint],
    sharded per-shard checkpoints, and rtgend per-stream checkpoints
    work identically over bare files and over store refs. The CLI
    syntax is: a spec containing ["//"] is [DIR//ref] (store-backed,
    the store is created on demand); anything else is a file path. *)

type t = File of string | Ref of Store.t * string

val of_string : string -> (t, string) result
(** Parse a slot spec. [DIR//ref] opens-or-creates the store at [DIR];
    a plain path becomes {!File}. *)

val describe : t -> string
(** Round-trips [of_string] for display in messages. *)

val exists : t -> bool
(** A file that exists, or a ref with at least one generation. *)

val load : t -> (string, string) result
(** Read the current image ([Ref] loads the latest generation,
    hash-verified). *)

val save :
  ?kind:Store.kind -> ?bound:int -> ?source:string -> ?created_at:int ->
  t -> string -> unit
(** Durably replace the slot's image. [File] is an atomic write; [Ref]
    commits a new generation (kind defaults to [Checkpoint]).
    Raises [Sys_error] on IO failure, as {!Rt_util.Atomic_file.write}
    does. *)

val discard : t -> unit
(** Remove the image: delete the file, or delete the ref (blobs remain
    until {!Store.gc}). Missing slots are ignored. *)
