(* A checkpoint (or any whole-image) persistence slot: either a plain
   file, or a ref in a content-addressed store. Producers write the
   same bytes either way; the store variant additionally versions every
   write as a new generation, so a fleet of learners can exchange
   checkpoints with no extra transport format. *)

type t = File of string | Ref of Store.t * string

let of_string spec =
  match Store.split_address spec with
  | None -> Ok (File spec)
  | Some (dir, ref_) -> (
      match Store.init dir with
      | Error e -> Error e
      | Ok store -> Ok (Ref (store, ref_)))

let describe = function
  | File path -> path
  | Ref (store, ref_) -> Store.root store ^ "//" ^ ref_

let exists = function
  | File path -> Sys.file_exists path
  | Ref (store, ref_) -> (
      match Store.resolve store ref_ with Ok _ -> true | Error _ -> false)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load = function
  | File path -> (
      match read_file path with
      | content -> Ok content
      | exception Sys_error m -> Error m)
  | Ref (store, ref_) -> (
      match Store.resolve store ref_ with
      | Error e -> Error e
      | Ok entry -> Store.read_blob store entry.Store.address)

let save ?(kind = Store.Checkpoint) ?bound ?source ?(created_at = 0) t data =
  match t with
  | File path -> Rt_util.Atomic_file.write path data
  | Ref (store, ref_) -> (
      let meta =
        { Store.kind; bound; source; parents = []; created_at }
      in
      match Store.commit store ~ref_ ~meta data with
      | Ok _ -> ()
      | Error m -> raise (Sys_error m))

let discard = function
  | File path -> ( try Sys.remove path with Sys_error _ -> ())
  | Ref (store, ref_) -> (
      match Store.delete_ref store ref_ with Ok () | Error _ -> ())
