module Df = Rt_lattice.Depfun

let model_header = "rtgen-model v1"
let companion_header = "rtgen-companion v1"
let answerset_header = "rtgen-answerset v1"
let ckpt_magic = "RTGENCKP"

let strip_header header blob =
  let hn = String.length header in
  let n = String.length blob in
  if n > hn && String.sub blob 0 hn = header && blob.[hn] = '\n' then
    Some (String.sub blob (hn + 1) (n - hn - 1))
  else None

let model_wrap text = model_header ^ "\n" ^ text

let model_to_blob ?names d = model_wrap (Df.to_string ?names d ^ "\n")

let model_of_blob blob =
  match strip_header model_header blob with
  | None -> Error "not a model blob (missing rtgen-model header)"
  | Some body -> Df.parse body

(* violations: "violations <n>" then n rows of '0'/'1' chars. *)
let violations_to_string v =
  let n = Array.length v in
  let b = Buffer.create ((n * (n + 1)) + 16) in
  Buffer.add_string b (Printf.sprintf "violations %d\n" n);
  Array.iter
    (fun row ->
       Array.iter (fun x -> Buffer.add_char b (if x then '1' else '0')) row;
       Buffer.add_char b '\n')
    v;
  Buffer.contents b

let violations_of_lines = function
  | [] -> Error "missing violations section"
  | hd :: rows -> (
      match String.split_on_char ' ' hd with
      | [ "violations"; n ] -> (
          match int_of_string_opt n with
          | None -> Error "bad violations count"
          | Some n ->
            if List.length rows <> n then
              Error
                (Printf.sprintf "expected %d violation rows, got %d" n
                   (List.length rows))
            else begin
              let exception Fail of string in
              try
                let m =
                  rows
                  |> List.map (fun row ->
                      if String.length row <> n then
                        raise (Fail "violation row width");
                      Array.init n (fun i ->
                          match row.[i] with
                          | '0' -> false
                          | '1' -> true
                          | _ -> raise (Fail "violation cell")))
                  |> Array.of_list
                in
                Ok m
              with Fail m -> Error m
            end)
      | _ -> Error "missing violations header")

let companion_to_blob ?names ~summary ~violations () =
  companion_header ^ "\n"
  ^ violations_to_string violations
  ^ "%%\n"
  ^ Df.to_string ?names summary
  ^ "\n"

let companion_of_blob blob =
  match strip_header companion_header blob with
  | None -> Error "not a companion blob (missing rtgen-companion header)"
  | Some body -> (
      let lines = String.split_on_char '\n' body in
      let rec split acc = function
        | [] -> Error "missing %% separator"
        | "%%" :: rest -> Ok (List.rev acc, rest)
        | l :: rest -> split (l :: acc) rest
      in
      match split [] (List.filter (fun l -> String.trim l <> "") lines) with
      | Error e -> Error e
      | Ok (vlines, mlines) -> (
          match violations_of_lines vlines with
          | Error e -> Error e
          | Ok v -> (
              match Df.parse (String.concat "\n" mlines) with
              | Error e -> Error e
              | Ok (d, names) ->
                if Array.length v <> Df.size d then
                  Error "violation matrix size mismatch"
                else Ok (d, v, names))))

let answerset_to_blob ?names models =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s %d\n" answerset_header (List.length models));
  List.iter
    (fun d ->
       Buffer.add_string b "%%\n";
       Buffer.add_string b (Df.to_string ?names d);
       Buffer.add_char b '\n')
    models;
  Buffer.contents b

let answerset_of_blob blob =
  let hn = String.length answerset_header in
  if
    String.length blob <= hn
    || String.sub blob 0 hn <> answerset_header
    || blob.[hn] <> ' '
  then Error "not an answerset blob (missing rtgen-answerset header)"
  else
    match String.index_opt blob '\n' with
    | None -> Error "truncated answerset blob"
    | Some nl -> (
        let count_s = String.sub blob (hn + 1) (nl - hn - 1) in
        match int_of_string_opt count_s with
        | None -> Error "bad answerset count"
        | Some count ->
          let body = String.sub blob (nl + 1) (String.length blob - nl - 1) in
          let chunks =
            String.split_on_char '\n' body
            |> List.fold_left
                 (fun acc l ->
                    if l = "%%" then [] :: acc
                    else
                      match acc with
                      | [] -> if String.trim l = "" then [] else [ [ l ] ]
                      | cur :: rest -> (l :: cur) :: rest)
                 []
            |> List.rev_map (fun ls -> String.concat "\n" (List.rev ls))
            |> List.filter (fun c -> String.trim c <> "")
          in
          if List.length chunks <> count then
            Error
              (Printf.sprintf "expected %d models, got %d" count
                 (List.length chunks))
          else begin
            let exception Fail of string in
            try
              Ok
                (List.map
                   (fun c ->
                      match Df.parse c with
                      | Ok r -> r
                      | Error m -> raise (Fail m))
                   chunks)
            with Fail m -> Error m
          end)

let checkpoint_to_blob data = data

let kind_of_blob blob =
  let starts p =
    String.length blob >= String.length p
    && String.sub blob 0 (String.length p) = p
  in
  if starts (model_header ^ "\n") then Some Store.Model
  else if starts (companion_header ^ "\n") then Some Store.Companion
  else if starts (answerset_header ^ " ") then Some Store.Answerset
  else if starts ckpt_magic then Some Store.Checkpoint
  else None
