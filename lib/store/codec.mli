(** Canonical serialized forms for store blobs.

    Four blob kinds share the store; each is self-describing from its
    first bytes so consumers ([rtgen check], [rtgen merge], audits)
    can dispatch without out-of-band typing:

    - model      — ["rtgen-model v1\n"] + the {!Rt_lattice.Depfun}
                   text matrix (names header + rows), the same text
                   [learn -o] writes, so store blobs and plain model
                   files stay byte-comparable.
    - companion  — ["rtgen-companion v1\n"] + the {e pre-weaken}
                   bound-1 summary matrix and the violation matrix;
                   this is the fleet-merge interchange: folding K of
                   these with the exchange-law fold reproduces the
                   monolithic bound-1 model byte-for-byte.
    - answerset  — ["rtgen-answerset v1\n"] + [%%]-separated model
                   matrices (the full hypothesis set of a run).
    - checkpoint — the raw engine checkpoint image (RTGENCKP binary
                   with its RTCKSUM1 trailer), stored verbatim.

    All encoders are deterministic: same input, same bytes, same
    content address. *)

module Df = Rt_lattice.Depfun

val model_to_blob : ?names:string array -> Df.t -> string
val model_of_blob : string -> (Df.t * string array, string) result

val model_wrap : string -> string
(** Wrap already-rendered canonical model text (the matrix exactly as
    [learn -o] writes it, trailing newline included) into a model
    blob; equal to {!model_to_blob} on the parsed matrix. *)

val companion_to_blob :
  ?names:string array -> summary:Df.t -> violations:bool array array ->
  unit -> string

val companion_of_blob :
  string -> (Df.t * bool array array * string array, string) result
(** Returns (pre-weaken bound-1 summary, violation matrix, names). *)

val answerset_to_blob : ?names:string array -> Df.t list -> string
val answerset_of_blob :
  string -> ((Df.t * string array) list, string) result

val checkpoint_to_blob : string -> string
(** Identity — checkpoints are already a canonical binary format. *)

val kind_of_blob : string -> Store.kind option
(** Sniff a blob's kind from its leading bytes. *)
