(** Content-addressed, versioned object store — the one persistence
    substrate for models, bound-1 companions, engine checkpoints, and
    answer sets, and the transport-free interchange for fleet merging.

    Layout under a root directory:

    {v
    DIR/store.meta            format marker ("rtgen-store v1")
    DIR/objects/aa/bbbb...    immutable blobs, named by the MD5 hex
                              digest of their bytes (2+30 split)
    DIR/refs/<name>.ref       text ledger: one generation per line,
                              newest last, each pointing at a blob
                              (the suffix lets "model" and "model/b1"
                              coexist)
    v}

    Blobs are immutable and deduplicated: writing the same bytes twice
    yields the same address and one file. Refs are small append-mostly
    text files rewritten atomically; a generation records the blob
    address plus metadata (kind, bound, source stream, parent
    addresses, created-at). [created_at] is injected by the caller —
    typically periods fed — never read from a wall clock, so store
    trees produced from the same trace are byte-comparable.

    Addresses as seen on the CLI use the form [DIR//ref],
    [DIR//ref@N], or [DIR//ref@latest]; see {!split_address}. *)

type t
(** An opened store rooted at some directory. *)

type kind = Model | Companion | Checkpoint | Answerset

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type meta = {
  kind : kind;
  bound : int option;        (** learning bound of the producer *)
  source : string option;    (** producing stream / trace label *)
  parents : string list;     (** blob addresses this object was derived from *)
  created_at : int;          (** injected logical time (e.g. periods fed) *)
}

type entry = {
  gen : int;                 (** generation number, 1-based, dense *)
  address : string;          (** 32-char lowercase hex blob address *)
  meta : meta;
}

val root : t -> string

val init : string -> (t, string) result
(** [init dir] creates a store at [dir] (creating directories as
    needed) or opens an existing one; fails if [dir] exists but is not
    a store. *)

val open_ : string -> (t, string) result
(** [open_ dir] opens an existing store; fails if the marker file is
    missing or foreign. *)

val address_of : string -> string
(** Content address (MD5 hex) a blob with these bytes would get. *)

val put_blob : t -> string -> (string, string) result
(** Write a blob, returning its address. Idempotent: existing blobs
    are left untouched. *)

val read_blob : t -> string -> (string, string) result
(** Read a blob by address, verifying the content hash — a corrupted
    object is an error, never silently returned. *)

val has_blob : t -> string -> bool

val commit :
  t -> ref_:string -> meta:meta -> string -> (entry, string) result
(** [commit t ~ref_ ~meta blob] writes the blob and appends a new
    generation to [ref_] (creating the ref at generation 1). *)

val generations : t -> string -> (entry list, string) result
(** All generations of a ref, oldest first. Unknown ref is an error. *)

val resolve : t -> string -> (entry, string) result
(** Resolve ["name"], ["name@latest"], or ["name@N"] to a generation. *)

val refs : t -> string list
(** All ref names, sorted. *)

val delete_ref : t -> string -> (unit, string) result

val gc : t -> (int * int, string) result
(** Delete blobs referenced by no generation of any ref. Returns
    [(kept, deleted)]. *)

val split_address : string -> (string * string) option
(** [split_address "DIR//ref@N"] is [Some ("DIR", "ref@N")]; [None]
    when the string contains no ["//"] separator (a plain file path).
    The first ["//"] splits; the store directory may not be empty. *)
