(** End-of-period post-processing shared by both algorithms: unification
    of equal hypotheses and removal of non-minimal ones (the paper's
    redundancy rule — the answer set must contain only most specific
    elements).

    The optional [removed] accumulators add the number of hypotheses
    each pass eliminated — the learners' dedup/pruning observability
    counters ride on them without a second length scan. *)

val dedup : ?removed:int ref -> Hypothesis.t list -> Hypothesis.t list
(** Remove duplicates under [Hypothesis.compare_full] (matrix and
    assumption set). Output order is unspecified. *)

val minimal_only : ?removed:int ref -> Hypothesis.t list -> Hypothesis.t list
(** Keep only hypotheses with no strictly-more-specific peer in the
    list. Input should already be duplicate-free. Output is sorted in
    ascending ({!Workset.canonical}) order — lightest first — and the
    scan exploits that order: a strict dominator is always strictly
    lighter, so only the lighter prefix is ever compared against. *)
