(** The seed's sorted-immutable-list heuristic, kept as an executable
    oracle. The production learner ({!Heuristic}) replaced this working
    set with the array-backed {!Workset}; this module preserves the
    original O(b²)-per-message implementation so that

    - the benchmark harness can print measured old-vs-new head-to-head
      rows, and
    - the qcheck equivalence property ([test/test_workset.ml]) can prove
      the rewrite changes {e nothing} about the learned hypothesis sets,
      eviction victims included, for every merge policy.

    Not part of the supported API surface; use {!Heuristic}. *)

val run :
  ?policy:Heuristic.merge_policy -> ?window:int -> bound:int ->
  Rt_trace.Trace.t -> Heuristic.outcome
(** Batch learning with the seed implementation. Same contract (and,
    by the equivalence property, same results) as {!Heuristic.run}. *)
