(** The precise version-space algorithm (paper §3.1): starting from
    [{d⊥}], branch over every candidate sender/receiver assumption of
    every message, weaken violated definite dependencies at each period
    boundary, then unify and keep only the minimal hypotheses.

    Worst-case exponential in the number of messages (Theorem 1). The
    [limit] parameter aborts runaway searches. *)

type stats = {
  periods_processed : int;
  max_set_size : int;      (** largest hypothesis set during the run *)
  created : int;           (** hypotheses allocated in total *)
}

type outcome = {
  hypotheses : Rt_lattice.Depfun.t list;
  (** The final set [D*]: minimal, duplicate-free, assumption-less.
      Empty means the trace violates the model-of-computation assumptions
      (some message has no admissible sender/receiver). *)
  stats : stats;
}

exception Blowup of { period : int; set_size : int; limit : int }

val run : ?limit:int -> ?window:int -> ?obs:Rt_obs.Registry.t ->
  ?on_period:(int -> Hypothesis.t list -> unit) ->
  Rt_trace.Trace.t -> outcome
(** [limit] (default [200_000]) bounds the working-set size; [on_period]
    observes the post-processed hypothesis set after each period (used by
    the worked-example tests to check the paper's intermediate tables);
    [window] narrows candidate sets as in [Rt_trace.Candidates]. With
    [obs], per-period ["exact.period"] spans, the candidate-size
    histogram, the live set-size gauge and final ["exact.*"] counter
    totals are recorded. *)

val converged : outcome -> Rt_lattice.Depfun.t option
(** The unique most specific solution, if the algorithm converged. *)

(** {2 Incremental driving}

    Like the heuristic learner, the exact algorithm is a per-period
    fold: its state after [k] periods does not depend on the rest of the
    trace. [run] is a thin wrapper over these. *)

type state

val init :
  ?limit:int -> ?window:int -> ?obs:Rt_obs.Registry.t ->
  ?on_period:(int -> Hypothesis.t list -> unit) ->
  ntasks:int -> unit -> state
(** Fresh state over [ntasks] tasks, holding only [{d⊥}]. *)

val feed : state -> Rt_trace.Period.t -> unit
(** Consume one period. @raise Blowup when the working set exceeds
    [limit]; the state is then unusable. *)

val current : state -> Rt_lattice.Depfun.t list
(** The current hypothesis set (fresh copies). *)

val stats : state -> stats

val messages_processed : state -> int
(** Bus messages consumed so far, across all fed periods. *)

val publish : state -> unit
(** Export the state-held totals (["exact.periods"], ["exact.created"],
    …) into the attached registry as counters, overwriting previous
    values. No-op without [obs]. *)

val snapshot : state -> outcome
(** [current] and [stats] packaged like a [run] result; also
    {!publish}es. *)
