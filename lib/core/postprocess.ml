(* [removed] accumulators let the learners count unified duplicates and
   dropped non-minimal hypotheses without a second length scan — the
   counts feed the observability layer and the checkpointed state. *)

let bump removed n =
  match removed with None -> () | Some r -> r := !r + n

let dedup ?removed hs =
  let sorted = List.sort Hypothesis.compare_full hs in
  let cut = ref 0 in
  let rec uniq = function
    | a :: (b :: _ as rest) ->
      if Hypothesis.compare_full a b = 0 then begin
        incr cut;
        uniq rest
      end
      else a :: uniq rest
    | ([] | [ _ ]) as l -> l
  in
  let out = uniq sorted in
  bump removed !cut;
  out

(* Strict domination implies a strictly smaller weight: every strict step
   in the value lattice strictly increases [Depval.distance] (0 < 1 < 4
   < 9 along all covers), so [leq h h'] with [h <> h'] forces
   [weight h < weight h']. Sorting by weight therefore lets each element
   look only at the strictly-lighter prefix — half the pairs of the old
   all-vs-all scan, no [equal] calls at all, and the output comes back in
   the learner's canonical (weight, structural) order for free. *)
let minimal_only ?removed hs =
  match hs with
  | [] | [ _ ] -> hs
  | hs ->
    let arr = Array.of_list hs in
    Array.sort Workset.canonical arr;
    let n = Array.length arr in
    let keep = Array.make n true in
    let cut = ref 0 in
    for i = 1 to n - 1 do
      let wi = Hypothesis.weight arr.(i) in
      let j = ref 0 in
      while keep.(i) && !j < i && Hypothesis.weight arr.(!j) < wi do
        (* Transitivity makes skipping dropped dominators sound: whatever
           dropped them is lighter still and dominates [arr.(i)] too. *)
        if keep.(!j) && Hypothesis.leq arr.(!j) arr.(i) then begin
          keep.(i) <- false;
          incr cut
        end;
        incr j
      done
    done;
    let out = ref [] in
    for i = n - 1 downto 0 do
      if keep.(i) then out := arr.(i) :: !out
    done;
    bump removed !cut;
    !out
