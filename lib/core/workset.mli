(** The heuristic's bounded working set (paper §3.2), imperative and
    array-backed.

    The seed implementation kept the set as a sorted immutable list:
    O(b) full-order comparisons per membership test, an O(b) length scan
    per insertion and O(b) consing per eviction. This version keeps

    - a dynamic array sorted {e descending} by the canonical total order
      (weight of Definition 8 first, then [Hypothesis.compare_full]), so
      the hot eviction — the paper's lightest pair — pops the last two
      slots in O(1), and insertion is an O(log b) binary search plus one
      [Array.blit];
    - a [Hashtbl] deduplication index keyed on the pair of cached
      structural hashes [(hash, a_hash)], falling back to
      [Hypothesis.compare_full] only on a bucket collision, making
      membership O(1) integer work in the common case;
    - a tracked length (no [List.length] scans).

    Contents are a function of the {e set} of inserted hypotheses only —
    the sorted order is canonical, never insertion order — which is what
    keeps parallel fan-out deterministic (see DESIGN.md §9).

    The array machinery only pays for itself once the set is large:
    below {!crossover_bound} (the break-even measured in
    BENCH_heuristic.json) {!create} silently selects the seed's sorted
    singly-linked-list layout instead — same canonical order, same
    dedup decisions, same eviction victims, observably identical, just
    without the hash index and blits that dominate at small bounds.
    {!create_with} forces a representation, for tests and A/B
    benchmarks. *)

type t

val canonical : Hypothesis.t -> Hypothesis.t -> int
(** The canonical ascending total order of the working set: weight of
    Definition 8 first, ties under [Hypothesis.compare_full]. Zero only
    on true duplicates. *)

(** How to pick the two merge victims when the set overflows the bound
    (re-exported by {!Heuristic} as [merge_policy]). *)
type victim_policy =
  | Lightest_pair  (** the paper's rule: merge the two lowest-weight *)
  | Heaviest_pair  (** ablation: merge the two highest-weight *)
  | First_last     (** ablation: merge the lightest with the heaviest *)

val crossover_bound : int
(** The measured array-vs-list break-even bound (see
    BENCH_heuristic.json); {!create} uses the list representation
    strictly below it. *)

val create : bound:int -> t
(** Empty set; [bound] sizes the backing array ([bound + 1] slots: the
    set only ever overflows by the one hypothesis being inserted).
    Selects the representation from [bound] (see {!crossover_bound}). *)

val create_with : repr:[ `Array | `List ] -> bound:int -> t
(** {!create} with the representation forced. *)

val uses_list_repr : t -> bool
(** Which representation a set ended up with (for tests). *)

val length : t -> int

val clear : t -> unit
(** Empty the set, keeping the allocations for reuse. *)

val mem : t -> Hypothesis.t -> bool

val add : t -> Hypothesis.t -> bool
(** [add t h] inserts [h] unless an equal hypothesis is already present;
    [true] iff the set grew. Membership test and index update share a
    single bucket lookup — this is the learner's per-child hot path. *)

val insert : t -> Hypothesis.t -> unit
(** {!add}, but inserting a duplicate is a programming error and raises
    [Invalid_argument]. *)

val extract_pair : t -> victim_policy -> Hypothesis.t * Hypothesis.t
(** Remove and return the policy's two merge victims, ordered as the
    merge expects them (lightest first for [Lightest_pair] and
    [First_last], heaviest first for [Heaviest_pair]). O(1) for the
    default [Lightest_pair]; the ablation policies pay one [Array.blit].
    @raise Invalid_argument on fewer than two elements. *)

val to_list : t -> Hypothesis.t list
(** Ascending canonical order (lightest first). *)

val to_array : t -> Hypothesis.t array
(** Ascending canonical order, freshly allocated. *)

val of_list : bound:int -> Hypothesis.t list -> t
(** Build a set from distinct hypotheses in any order (sorted via
    {!Rt_util.Binary_heap}); grows beyond [bound + 1] if needed. *)
