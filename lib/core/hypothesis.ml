module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun

type t = {
  dep : Df.t;
  mutable weight : int;
  mutable hash : int;
  mutable a_hash : int;  (* order-independent hash of the assumption set *)
  mutable assumptions : (int * int) list;
}

(* A structural hash of the matrix, maintained incrementally on every
   cell mutation so set-membership tests almost never fall back to the
   O(n²) matrix comparison. Each cell position gets a fixed mixing
   weight; the hash is the sum of [position_weight * value_code]. *)
let position_weight n a b = (((a * n) + b + 1) * 0x9E3779B1) land max_int

let value_code = function
  | Dv.Par -> 1
  | Dv.Fwd -> 2
  | Dv.Bwd -> 3
  | Dv.Bi -> 4
  | Dv.Fwd_maybe -> 5
  | Dv.Bwd_maybe -> 6
  | Dv.Bi_maybe -> 7

(* Flat per-size mixing-weight table: entry [a * n + b] is
   [position_weight n a b], zeroed on the diagonal so a whole-matrix sum
   over the flat cell array equals the off-diagonal-only definition above
   (the diagonal is pinned to [Par] anyway). The cache is domain-local:
   whole learner runs may execute on pool domains (e.g. the benchmark's
   bound sweep), and a shared [Hashtbl] would race; one tiny table per
   domain costs nothing and needs no lock. *)
let pw_cache_key : (int, int array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let position_weights n =
  let cache = Domain.DLS.get pw_cache_key in
  match Hashtbl.find_opt cache n with
  | Some a -> a
  | None ->
    let a =
      Array.init (n * n) (fun i ->
          if i mod (n + 1) = 0 then 0
          else ((i + 1) * 0x9E3779B1) land max_int)
    in
    Hashtbl.add cache n a;
    a

(* [value_code v = Depval.index v + 1], so a matrix byte codes straight
   into the hash. *)
let full_hash d =
  let cells = Df.cells d in
  let pw = position_weights (Df.size d) in
  let h = ref 0 in
  for i = 0 to Bytes.length cells - 1 do
    h := !h + (Array.unsafe_get pw i * (Char.code (Bytes.unsafe_get cells i) + 1))
  done;
  !h land max_int

(* Assumption sets are duplicate-free, so a commutative sum of per-pair
   mixes hashes the set independently of insertion order. *)
let pair_mix (s, r) = (((s * 8191) + r + 1) * 0x9E3779B1) land max_int

let assumptions_hash l =
  List.fold_left (fun acc pair -> (acc + pair_mix pair) land max_int) 0 l

let bottom n =
  let dep = Df.create n in
  { dep; weight = 0; hash = full_hash dep; a_hash = 0; assumptions = [] }

let of_depfun d =
  let dep = Df.copy d in
  { dep; weight = Df.weight dep; hash = full_hash dep; a_hash = 0; assumptions = [] }

let depfun h = h.dep

let weight h = h.weight

let assumptions h = h.assumptions

let assumed h s r = List.mem (s, r) h.assumptions

(* Mutate cell (a,b), keeping the cached weight and hash exact. *)
let update_cell h a b old v' =
  Df.set h.dep a b v';
  h.weight <- h.weight - Dv.distance old + Dv.distance v';
  let pw = position_weight (Df.size h.dep) a b in
  h.hash <- (h.hash + (pw * (value_code v' - value_code old))) land max_int

let join_cell h a b v =
  let old = Df.get h.dep a b in
  let v' = Dv.join old v in
  if not (Dv.equal v' old) then update_cell h a b old v'

(* Assumption lists are kept sorted so that hypotheses with identical
   matrices and identical assumption sets compare equal and can be
   unified mid-period. *)
let insert_sorted p l =
  let rec go = function
    | [] -> [ p ]
    | q :: rest as all -> if p <= q then p :: all else q :: go rest
  in
  go l

let generalize_message h ~sender ~receiver =
  if sender = receiver then invalid_arg "Hypothesis.generalize_message: sender = receiver";
  if assumed h sender receiver then None
  else begin
    let h' =
      { dep = Df.copy h.dep;
        weight = h.weight;
        hash = h.hash;
        a_hash = (h.a_hash + pair_mix (sender, receiver)) land max_int;
        assumptions = insert_sorted (sender, receiver) h.assumptions }
    in
    join_cell h' sender receiver Dv.Fwd;
    join_cell h' receiver sender Dv.Bwd;
    Some h'
  end

let weaken_violations_count h ~violated =
  let n = ref 0 in
  Df.iter_pairs (fun a b v ->
      if Dv.is_definite v && violated.(a).(b) then begin
        update_cell h a b v (Dv.weaken v);
        incr n
      end)
    h.dep;
  !n

let weaken_violations h ~violated = ignore (weaken_violations_count h ~violated)

let clear_assumptions h =
  h.assumptions <- [];
  h.a_hash <- 0

(* Merged assumptions are the intersection: a pair only stays blocked if
   both parents used it. Union would starve later messages of candidates
   and kill the merged hypothesis, losing the soundness the heuristic
   promises; intersection can at worst re-join evidence for a pair, which
   is idempotent and only makes the result more general. *)
(* The single hottest operation of the bounded learner: at bound b it
   runs once per forced merge, which is nearly once per generated child.
   Joined cells, the Definition-8 weight and the structural hash are all
   produced in one pass over the flat cell arrays (the separate
   join/weight/hash passes of the naive version tripled the memory
   traffic); the resulting hash is bit-identical to [full_hash]. *)
let join_ix = Dv.join_ix_tbl
let dist_ix = Dv.dist_ix_tbl

let merge_lub h1 h2 =
  let n = Df.size h1.dep in
  if Df.size h2.dep <> n then invalid_arg "Hypothesis.merge_lub: size mismatch";
  let dep = Df.create n in
  let c1 = Df.cells h1.dep and c2 = Df.cells h2.dep and c = Df.cells dep in
  let pw = position_weights n in
  let w = ref 0 and h = ref 0 in
  for i = 0 to (n * n) - 1 do
    let j =
      Array.unsafe_get join_ix
        (((Char.code (Bytes.unsafe_get c1 i)) * 7)
         + Char.code (Bytes.unsafe_get c2 i))
    in
    Bytes.unsafe_set c i (Char.unsafe_chr j);
    w := !w + Array.unsafe_get dist_ix j;
    h := !h + (Array.unsafe_get pw i * (j + 1))
  done;
  let inter = List.filter (fun p -> List.mem p h2.assumptions) h1.assumptions in
  { dep; weight = !w; hash = !h land max_int;
    a_hash = assumptions_hash inter; assumptions = inter }

let equal h1 h2 = Df.equal h1.dep h2.dep

let compare h1 h2 = Df.compare h1.dep h2.dep

let hash h = h.hash

let a_hash h = h.a_hash

let compare_assumption (a1, b1) (a2, b2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c else Int.compare b1 b2

let compare_full h1 h2 =
  let c = Int.compare h1.hash h2.hash in
  if c <> 0 then c
  else
    let c = Int.compare h1.a_hash h2.a_hash in
    if c <> 0 then c
    else
      let c = Df.compare h1.dep h2.dep in
      if c <> 0 then c
      else List.compare compare_assumption h1.assumptions h2.assumptions

let leq h1 h2 = Df.leq h1.dep h2.dep

let pp ?names ppf h = Df.pp ?names ppf h.dep
