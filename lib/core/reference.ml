(* The seed heuristic, verbatim: working set as a weight-sorted immutable
   list with linear membership scans and [List.length] bound checks. Kept
   only as the oracle/baseline documented in the .mli — do not optimize
   this file; its value is being the unchanged original. *)

module Df = Rt_lattice.Depfun
module Period = Rt_trace.Period
module Candidates = Rt_trace.Candidates

module Wlist = struct
  let before h h' =
    let c = Int.compare (Hypothesis.weight h) (Hypothesis.weight h') in
    if c <> 0 then c < 0 else Hypothesis.compare_full h h' < 0

  let insert h l =
    let rec go = function
      | [] -> [ h ]
      | h' :: rest as all -> if before h h' then h :: all else h' :: go rest
    in
    go l

  let mem h l =
    let w = Hypothesis.weight h in
    List.exists
      (fun h' -> Hypothesis.weight h' = w && Hypothesis.compare_full h h' = 0)
      l

  let pick_pair policy l =
    match (policy : Heuristic.merge_policy), l with
    | _, ([] | [ _ ]) -> invalid_arg "Reference: cannot merge fewer than 2"
    | Heuristic.Lightest_pair, a :: b :: rest -> (a, b, rest)
    | Heuristic.Heaviest_pair, l ->
      (match List.rev l with
       | a :: b :: rest -> (a, b, List.rev rest)
       | [] | [ _ ] -> assert false)
    | Heuristic.First_last, a :: rest ->
      (match List.rev rest with
       | z :: mid -> (a, z, List.rev mid)
       | [] -> assert false)
end

type state = {
  policy : Heuristic.merge_policy;
  window : int option;
  bound : int;
  violations : Violations.t;
  mutable hs : Hypothesis.t list;
  mutable created : int;
  mutable merges : int;
  mutable periods : int;
}

let init ?(policy = Heuristic.Lightest_pair) ?window ~bound ~ntasks () =
  if bound < 1 then invalid_arg "Heuristic.init: bound must be >= 1";
  if ntasks < 1 then invalid_arg "Heuristic.init: need at least one task";
  {
    policy;
    window;
    bound;
    violations = Violations.create ntasks;
    hs = [ Hypothesis.bottom ntasks ];
    created = 1;
    merges = 0;
    periods = 0;
  }

let rec add st h l =
  if Wlist.mem h l then l
  else begin
    let l = Wlist.insert h l in
    if List.length l <= st.bound then l
    else begin
      let a, b, rest = Wlist.pick_pair st.policy l in
      st.merges <- st.merges + 1;
      add st (Hypothesis.merge_lub a b) rest
    end
  end

let step_message st hs pairs =
  List.fold_left (fun acc h ->
      List.fold_left (fun acc (s, r) ->
          match Hypothesis.generalize_message h ~sender:s ~receiver:r with
          | Some h' ->
            st.created <- st.created + 1;
            add st h' acc
          | None -> acc)
        acc pairs)
    [] hs

let feed st (p : Period.t) =
  let hs =
    Array.fold_left
      (fun hs m -> step_message st hs (Candidates.pairs ?window:st.window p m))
      st.hs p.msgs
  in
  Violations.observe st.violations ~executed:p.executed;
  let violated = Violations.matrix st.violations in
  List.iter (fun h ->
      Hypothesis.weaken_violations h ~violated;
      Hypothesis.clear_assumptions h)
    hs;
  let survivors = Postprocess.minimal_only (Postprocess.dedup hs) in
  st.hs <- List.fold_left (fun acc h -> Wlist.insert h acc) [] survivors;
  st.periods <- st.periods + 1

let run ?policy ?window ~bound trace =
  let st =
    init ?policy ?window ~bound ~ntasks:(Rt_trace.Trace.task_count trace) ()
  in
  List.iter (feed st) (Rt_trace.Trace.periods trace);
  {
    Heuristic.hypotheses =
      List.map (fun h -> Df.copy (Hypothesis.depfun h)) st.hs;
    stats =
      { Heuristic.periods_processed = st.periods;
        merges = st.merges;
        created = st.created };
  }
