module Df = Rt_lattice.Depfun
module Period = Rt_trace.Period
module Candidates = Rt_trace.Candidates

type stats = {
  periods_processed : int;
  max_set_size : int;
  created : int;
}

type outcome = {
  hypotheses : Df.t list;
  stats : stats;
}

exception Blowup of { period : int; set_size : int; limit : int }

exception Blowup_signal of int

(* Builds the next level; raises mid-construction when it exceeds [limit]
   so a combinatorial explosion cannot exhaust memory before the
   post-step size check would have caught it. *)
let step_message hs pairs ~created ~limit =
  let count = ref 0 in
  List.concat_map (fun h ->
      List.filter_map (fun (s, r) ->
          match Hypothesis.generalize_message h ~sender:s ~receiver:r with
          | Some h' ->
            incr created;
            incr count;
            if !count > limit then raise (Blowup_signal !count);
            Some h'
          | None -> None)
        pairs)
    hs

let end_of_period ?weakened ?removed hs ~violated =
  List.iter (fun h ->
      let n = Hypothesis.weaken_violations_count h ~violated in
      (match weakened with Some w -> w := !w + n | None -> ());
      Hypothesis.clear_assumptions h)
    hs;
  Postprocess.minimal_only ?removed (Postprocess.dedup ?removed hs)

type state = {
  limit : int;
  window : int option;
  on_period : (int -> Hypothesis.t list -> unit) option;
  violations : Violations.t;
  created : int ref;
  weakened : int ref;
  removed : int ref;
  mutable max_set : int;
  mutable periods : int;
  mutable msgs : int;
  mutable hs : Hypothesis.t list;
  obs : Rt_obs.Registry.t option;
  cand_hist : Rt_obs.Histogram.t option;
  set_gauge : Rt_obs.Registry.gauge option;
}

let init ?(limit = 200_000) ?window ?obs ?on_period ~ntasks () =
  if limit < 1 then invalid_arg "Exact.init: limit must be >= 1";
  if ntasks < 1 then invalid_arg "Exact.init: need at least one task";
  {
    limit;
    window;
    on_period;
    violations = Violations.create ntasks;
    created = ref 1;
    weakened = ref 0;
    removed = ref 0;
    max_set = 1;
    periods = 0;
    msgs = 0;
    hs = [ Hypothesis.bottom ntasks ];
    obs;
    cand_hist =
      Option.map (fun r -> Rt_obs.Registry.histogram r "exact.candidate_pairs")
        obs;
    set_gauge =
      Option.map (fun r -> Rt_obs.Registry.gauge r "exact.set_size") obs;
  }

let watch st period hs =
  let k = List.length hs in
  if k > st.max_set then st.max_set <- k;
  (match st.set_gauge with
   | Some g -> Rt_obs.Registry.set_gauge g k
   | None -> ());
  if k > st.limit then
    raise (Blowup { period; set_size = k; limit = st.limit })

let feed st (p : Period.t) =
  (match st.obs with
   | Some r -> Rt_obs.Registry.span_begin r "exact.period"
   | None -> ());
  let hs =
    Array.fold_left (fun hs m ->
        let pairs = Candidates.pairs ?window:st.window ?hist:st.cand_hist p m in
        let hs =
          match step_message hs pairs ~created:st.created ~limit:st.limit with
          | hs -> hs
          | exception Blowup_signal set_size ->
            raise (Blowup { period = p.index; set_size; limit = st.limit })
        in
        watch st p.index hs;
        Postprocess.dedup ~removed:st.removed hs)
      st.hs p.msgs
  in
  Violations.observe st.violations ~executed:p.executed;
  let hs =
    end_of_period ~weakened:st.weakened ~removed:st.removed hs
      ~violated:(Violations.matrix st.violations)
  in
  (match st.on_period with Some f -> f p.index hs | None -> ());
  st.hs <- hs;
  st.periods <- st.periods + 1;
  st.msgs <- st.msgs + Array.length p.msgs;
  (match st.obs with Some r -> Rt_obs.Registry.span_end r | None -> ())

let current st =
  List.map (fun h -> Df.copy (Hypothesis.depfun h)) st.hs

let stats st =
  { periods_processed = st.periods;
    max_set_size = st.max_set;
    created = !(st.created) }

let messages_processed st = st.msgs

(* Totals are pushed once here (overwriting), not incremented live, so
   the same numbers surface no matter how the state was driven — whole
   trace at once or one period at a time. *)
let publish st =
  match st.obs with
  | None -> ()
  | Some r ->
    let set = Rt_obs.Registry.set_counter r in
    set "exact.periods" st.periods;
    set "exact.created" !(st.created);
    set "exact.max_set_size" st.max_set;
    set "exact.weakenings" !(st.weakened);
    set "exact.dedup_removed" !(st.removed);
    set "exact.hypotheses" (List.length st.hs)

let snapshot st =
  publish st;
  { hypotheses = current st; stats = stats st }

let run ?limit ?window ?obs ?on_period trace =
  let st =
    init ?limit ?window ?obs ?on_period
      ~ntasks:(Rt_trace.Trace.task_count trace) ()
  in
  List.iter (feed st) (Rt_trace.Trace.periods trace);
  snapshot st

let converged o = match o.hypotheses with [ d ] -> Some d | [] | _ :: _ -> None
