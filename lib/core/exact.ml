module Df = Rt_lattice.Depfun
module Period = Rt_trace.Period
module Candidates = Rt_trace.Candidates

type stats = {
  periods_processed : int;
  max_set_size : int;
  created : int;
}

type outcome = {
  hypotheses : Df.t list;
  stats : stats;
}

exception Blowup of { period : int; set_size : int; limit : int }

exception Blowup_signal of int

(* Builds the next level; raises mid-construction when it exceeds [limit]
   so a combinatorial explosion cannot exhaust memory before the
   post-step size check would have caught it. *)
let step_message hs pairs ~created ~limit =
  let count = ref 0 in
  List.concat_map (fun h ->
      List.filter_map (fun (s, r) ->
          match Hypothesis.generalize_message h ~sender:s ~receiver:r with
          | Some h' ->
            incr created;
            incr count;
            if !count > limit then raise (Blowup_signal !count);
            Some h'
          | None -> None)
        pairs)
    hs

let end_of_period ?weakened ?removed hs ~violated =
  List.iter (fun h ->
      let n = Hypothesis.weaken_violations_count h ~violated in
      (match weakened with Some w -> w := !w + n | None -> ());
      Hypothesis.clear_assumptions h)
    hs;
  Postprocess.minimal_only ?removed (Postprocess.dedup ?removed hs)

let run ?(limit = 200_000) ?window ?obs ?on_period trace =
  let n = Rt_trace.Trace.task_count trace in
  let violations = Violations.create n in
  let created = ref 1 in
  let max_set = ref 1 in
  let weakened = ref 0 in
  let removed = ref 0 in
  let cand_hist =
    Option.map (fun r -> Rt_obs.Registry.histogram r "exact.candidate_pairs")
      obs
  in
  let set_gauge =
    Option.map (fun r -> Rt_obs.Registry.gauge r "exact.set_size") obs
  in
  let watch period hs =
    let k = List.length hs in
    if k > !max_set then max_set := k;
    (match set_gauge with
     | Some g -> Rt_obs.Registry.set_gauge g k
     | None -> ());
    if k > limit then raise (Blowup { period; set_size = k; limit })
  in
  let step_period hs (p : Period.t) =
    (match obs with
     | Some r -> Rt_obs.Registry.span_begin r "exact.period"
     | None -> ());
    let hs =
      Array.fold_left (fun hs m ->
          let pairs = Candidates.pairs ?window ?hist:cand_hist p m in
          let hs =
            match step_message hs pairs ~created ~limit with
            | hs -> hs
            | exception Blowup_signal set_size ->
              raise (Blowup { period = p.index; set_size; limit })
          in
          watch p.index hs;
          Postprocess.dedup ~removed hs)
        hs p.msgs
    in
    Violations.observe violations ~executed:p.executed;
    let hs =
      end_of_period ~weakened ~removed hs
        ~violated:(Violations.matrix violations)
    in
    (match on_period with Some f -> f p.index hs | None -> ());
    (match obs with Some r -> Rt_obs.Registry.span_end r | None -> ());
    hs
  in
  let final, periods =
    List.fold_left (fun (hs, k) p -> (step_period hs p, k + 1))
      ([ Hypothesis.bottom n ], 0)
      (Rt_trace.Trace.periods trace)
  in
  (match obs with
   | None -> ()
   | Some r ->
     let set = Rt_obs.Registry.set_counter r in
     set "exact.periods" periods;
     set "exact.created" !created;
     set "exact.max_set_size" !max_set;
     set "exact.weakenings" !weakened;
     set "exact.dedup_removed" !removed;
     set "exact.hypotheses" (List.length final));
  {
    hypotheses = List.map (fun h -> Df.copy (Hypothesis.depfun h)) final;
    stats = { periods_processed = periods; max_set_size = !max_set; created = !created };
  }

let converged o = match o.hypotheses with [ d ] -> Some d | [] | _ :: _ -> None
