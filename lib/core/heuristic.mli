(** The polynomial bounded-width algorithm (paper §3.2): the hypothesis
    set is an ordered list, sorted by the weight of Definition 8; whenever
    an insertion would make the list longer than the user-specified
    [bound], the two lightest hypotheses are replaced by their least upper
    bound.

    Sound but conservative: the result still matches the trace, but is no
    longer guaranteed minimal. With [bound = 1] the result is the least
    upper bound of the exact algorithm's answer set (the paper's Lemma). *)

type stats = {
  periods_processed : int;
  merges : int;    (** number of LUB merges forced by the bound *)
  created : int;
}

type counters = {
  branches : int;    (** generalization attempts: parents × candidate pairs *)
  dedup_hits : int;  (** children rejected by the working set as duplicates *)
  evictions : int;   (** hypotheses consumed by bound-forced merges *)
  weakenings : int;  (** matrix cells weakened at period boundaries *)
  end_dedup : int;   (** duplicates unified by end-of-period dedup *)
  nonminimal : int;  (** non-minimal hypotheses pruned at period end *)
}
(** Observability counters, disjoint from {!stats} (which is the paper's
    cost model and is asserted against the reference oracle). Counted
    unconditionally — plain integer stores on the sequential merge path —
    and deterministic across [-j] levels because the parallel fan-out
    computes children only; everything countable happens on the
    orchestrating domain. They travel through {!checkpoint}/{!resume}, so
    a resumed run reports the same totals as an uninterrupted one. *)

type outcome = {
  hypotheses : Rt_lattice.Depfun.t list;
  (** Final hypotheses, lightest first; at most [bound] of them; empty iff
      the trace is inconsistent with the model of computation. *)
  stats : stats;
}

type merge_policy = Workset.victim_policy =
  | Lightest_pair  (** the paper's rule: merge the two lowest-weight *)
  | Heaviest_pair  (** ablation: merge the two highest-weight *)
  | First_last     (** ablation: merge the lightest with the heaviest *)

val run : ?policy:merge_policy -> ?window:int ->
  ?pool:Rt_util.Domain_pool.t -> ?obs:Rt_obs.Registry.t -> bound:int ->
  Rt_trace.Trace.t -> outcome
(** With [pool], the per-message hypothesis fan-out runs on the pool's
    domains; results are identical to a sequential run (the working set
    is ordered canonically, never by arrival). With [obs], per-period
    ["learn.period"] spans, the candidate-size histogram, the working-set
    occupancy gauge and the final counter totals are recorded into the
    registry; without it, instrumentation costs integer stores only.
    @raise Invalid_argument if [bound < 1]. *)

val converged : outcome -> Rt_lattice.Depfun.t option

(** {2 Online learning}

    The bounded algorithm is inherently incremental: its state after [k]
    periods is independent of how the remaining trace will look. These
    functions expose that, for monitoring a live bus period by period. *)

type state

val init :
  ?policy:merge_policy -> ?window:int -> ?pool:Rt_util.Domain_pool.t ->
  ?obs:Rt_obs.Registry.t -> bound:int -> ntasks:int -> unit -> state
(** Fresh state over [ntasks] tasks, holding only [{d⊥}]. *)

val feed : state -> Rt_trace.Period.t -> unit
(** Consume one period (messages, then end-of-period post-processing). *)

val current : state -> Rt_lattice.Depfun.t list
(** The current hypothesis list, lightest first (fresh copies). *)

val bound : state -> int
(** The working-set bound the state was created with; exposed so
    auditors ({!Rt_check.Model_check}) can verify a resumed checkpoint
    respects it. *)

val stats : state -> stats

val messages_processed : state -> int
(** Bus messages consumed so far, across all fed periods. Travels
    through {!checkpoint}/{!resume} like the other totals. *)

val violations : state -> bool array array
(** A copy of the accumulated violation matrix — which ordered pairs
    [(a, b)] have had [a] execute in some period where [b] did not.
    This is the evidence the end-of-period weakening pass conditions
    on; the shard fold ({!Rt_shard}) unions these matrices across
    shards to reproduce the monolithic run's weakenings exactly. *)

val counters : state -> counters
(** The current observability totals (see {!type-counters}). *)

val publish : state -> unit
(** Export the state-held totals ([learn.periods], [learn.merges],
    [learn.branches], …, plus provenance) into the attached registry as
    counters, overwriting previous values. No-op without [obs]. Totals
    are pushed once here rather than incremented live so that fresh and
    checkpoint-resumed runs surface identical numbers. *)

val snapshot : state -> outcome
(** [current] and [stats] packaged like a [run] result; also
    {!publish}es. *)

(** {2 Provenance}

    When ingestion ran in recover mode, the learner never saw the periods
    the loader dropped, and saw repaired approximations of others. These
    counters travel with the state (and through checkpoints) so that
    downstream analysis can report how degraded the learned model's
    evidence is. They are deliberately {e not} part of [stats], which
    characterises the algorithm's own work. *)

type provenance = {
  periods_dropped : int;   (** quarantined periods the learner never saw *)
  periods_repaired : int;  (** periods repaired before feeding *)
}

val provenance : state -> provenance

val set_provenance : state -> dropped:int -> repaired:int -> unit
(** @raise Invalid_argument on negative counts. *)

(** {2 Checkpointing}

    A state between two [feed]s is fully described by its configuration,
    counters, violation matrix and hypothesis matrices (assumption sets
    are empty at period boundaries), so it serialises to a small
    versioned binary snapshot. [resume (checkpoint st)] is
    indistinguishable from [st] for all future [feed]s: a run killed
    after period [k] and resumed produces the same outcome as an
    uninterrupted one. *)

val checkpoint : ?tag:string -> state -> string
(** Serialise. [tag] is an opaque caller string stored verbatim —
    e.g. a digest of the source trace, so [resume] callers can refuse
    a checkpoint taken against different data. *)

val resume :
  ?pool:Rt_util.Domain_pool.t -> ?obs:Rt_obs.Registry.t -> string ->
  (state * string, string) result
(** Deserialise a {!checkpoint} into a live state plus its tag.
    [pool] re-attaches a domain pool and [obs] a metrics registry
    (runtime resources are not serialised). Malformed or
    version-mismatched input yields [Error message], never an
    exception. The current format is version 3 (version 1 predates the
    observability counters, version 2 the message count; both are
    refused). *)
