type t = bool array array

let create n = Array.make_matrix n n false

let observe t ~executed =
  let n = Array.length t in
  for a = 0 to n - 1 do
    if executed.(a) then
      for b = 0 to n - 1 do
        if a <> b && not executed.(b) then t.(a).(b) <- true
      done
  done

let of_periods n periods =
  let t = create n in
  List.iter (fun (p : Rt_trace.Period.t) -> observe t ~executed:p.executed) periods;
  t

let of_matrix m =
  let n = Array.length m in
  Array.iter (fun row ->
      if Array.length row <> n then invalid_arg "Violations.of_matrix: not square")
    m;
  Array.map Array.copy m

let get t a b = t.(a).(b)

let matrix t = t
