(** The execution-violation matrix of a growing instance set:
    [get v a b] is true iff some observed period executed task [a] but not
    task [b]. Definite dependency values on such pairs are untenable and
    must be weakened; the matrix is hypothesis-independent, so the
    learners maintain one copy incrementally. *)

type t

val create : int -> t

val observe : t -> executed:bool array -> unit
(** Fold one period's executed set into the matrix. *)

val of_periods : int -> Rt_trace.Period.t list -> t

val of_matrix : bool array array -> t
(** Rebuild from a matrix previously obtained with {!matrix} (copied);
    the checkpoint restore path. Raises [Invalid_argument] if not
    square. *)

val get : t -> int -> int -> bool

val matrix : t -> bool array array
(** The underlying matrix (not copied). *)
