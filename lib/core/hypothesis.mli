(** A hypothesis of the version space: a dependency function plus the
    sender/receiver assumptions made in the period currently being
    analyzed (paper §3.1). The weight of Definition 8 is cached and
    maintained incrementally. *)

type t

val bottom : int -> t
(** The most specific hypothesis [d⊥] over [n] tasks. *)

val of_depfun : Rt_lattice.Depfun.t -> t
(** Wrap an existing dependency function (copied). *)

val depfun : t -> Rt_lattice.Depfun.t
(** The underlying dependency function (not copied; treat as read-only). *)

val weight : t -> int

val assumptions : t -> (int * int) list
(** Sender/receiver pairs assumed in the current period, latest first. *)

val assumed : t -> int -> int -> bool
(** Has [(s, r)] already been used for a message this period? *)

val generalize_message : t -> sender:int -> receiver:int -> t option
(** The minimal generalization that explains one more message sent from
    [sender] to [receiver]: a fresh hypothesis with
    [d(s,r) := d(s,r) ⊔ →], [d(r,s) := d(r,s) ⊔ ←] and the assumption
    recorded. [None] if [(s, r)] was already assumed this period (at most
    one message per pair and period). *)

val weaken_violations : t -> violated:bool array array -> unit
(** End-of-period conditional-dependency test, in place: every definite
    cell [d(a,b)] such that some period seen so far executed [a] without
    [b] ([violated.(a).(b)]) is weakened minimally ([→ ↦ →?], [← ↦ ←?],
    [↔ ↦ ↔?]). Checking against {e all} seen periods (not only the
    current one) is what keeps correctness when a message observed late
    introduces a definite value contradicted by an early period — cf. the
    [←?] cells of the paper's final tables. *)

val weaken_violations_count : t -> violated:bool array array -> int
(** Same operation, returning the number of cells actually weakened —
    the learners' [weakenings] observability counter. *)

val clear_assumptions : t -> unit

val merge_lub : t -> t -> t
(** Pointwise least upper bound; assumptions are intersected, so the
    merged hypothesis only refuses a pair both parents used. Re-joining
    evidence for a pair is idempotent, so this keeps the heuristic sound
    while never starving a later message of candidates. *)

val equal : t -> t -> bool
(** Equality of the dependency functions (assumptions ignored, as in the
    paper's post-processing unification). *)

val compare : t -> t -> int

val compare_full : t -> t -> int
(** Like [compare] but also distinguishes the assumption sets; two
    hypotheses equal under [compare_full] have identical futures and can
    be unified mid-period. Incomparably fast in the common case thanks to
    a cached structural hash, but {e not} order-compatible with [compare]
    (it orders by hash first). *)

val hash : t -> int
(** Structural hash of the matrix (assumptions excluded), maintained
    incrementally. Equal hypotheses have equal hashes. *)

val a_hash : t -> int
(** Order-independent hash of the assumption set, maintained
    incrementally; 0 when no assumptions are recorded. [(hash, a_hash)]
    keys the working set's deduplication index. *)

val leq : t -> t -> bool
(** [⊑_D] on the underlying dependency functions. *)

val pp : ?names:string array -> Format.formatter -> t -> unit
