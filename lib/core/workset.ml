type victim_policy = Lightest_pair | Heaviest_pair | First_last

(* Canonical ascending order: weight first, then the structural order.
   Total on distinct hypotheses ([compare_full] = 0 only for duplicates,
   which [insert] rejects). *)
let canonical h h' =
  let c = Int.compare (Hypothesis.weight h) (Hypothesis.weight h') in
  if c <> 0 then c else Hypothesis.compare_full h h'

type t = {
  bound : int;
  (* Sorted descending under [canonical]: the lightest hypothesis sits in
     the last occupied slot, so the default eviction is a pop. Empty until
     the first insertion (OCaml arrays need a witness element). *)
  mutable data : Hypothesis.t array;
  mutable len : int;
  (* (hash, a_hash) -> hypotheses with those cached hashes. Buckets are
     almost always singletons; [compare_full] resolves true collisions. *)
  index : (int * int, Hypothesis.t list) Hashtbl.t;
}

let create ~bound =
  { bound; data = [||]; len = 0; index = Hashtbl.create (2 * (bound + 1)) }

let length t = t.len

let clear t =
  t.len <- 0;
  Hashtbl.reset t.index

let key h = (Hypothesis.hash h, Hypothesis.a_hash h)

let mem t h =
  match Hashtbl.find_opt t.index (key h) with
  | None -> false
  | Some bucket -> List.exists (fun h' -> Hypothesis.compare_full h h' = 0) bucket

let index_add t h =
  let k = key h in
  Hashtbl.replace t.index k
    (h :: (Option.value ~default:[] (Hashtbl.find_opt t.index k)))

let index_remove t h =
  let k = key h in
  match Hashtbl.find_opt t.index k with
  | None -> ()
  | Some bucket ->
    (match List.filter (fun h' -> h' != h) bucket with
     | [] -> Hashtbl.remove t.index k
     | rest -> Hashtbl.replace t.index k rest)

let ensure_capacity t h =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max (t.bound + 1) (max 4 (2 * cap)) in
    let nd = Array.make ncap h in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

(* Dedup check and index update share one bucket lookup — [add] is on
   the per-child hot path of the learner. *)
let add t h =
  let k = key h in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.index k) in
  if List.exists (fun h' -> Hypothesis.compare_full h h' = 0) bucket then false
  else begin
    ensure_capacity t h;
    (* Binary search in the descending array: smallest index whose element
       is canonically below [h]. *)
    let lo = ref 0 and hi = ref t.len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if canonical t.data.(mid) h > 0 then lo := mid + 1 else hi := mid
    done;
    let pos = !lo in
    Array.blit t.data pos t.data (pos + 1) (t.len - pos);
    t.data.(pos) <- h;
    t.len <- t.len + 1;
    Hashtbl.replace t.index k (h :: bucket);
    true
  end

let insert t h =
  if not (add t h) then invalid_arg "Workset.insert: duplicate hypothesis"

let extract_pair t policy =
  if t.len < 2 then invalid_arg "Workset.extract_pair: fewer than 2 elements";
  let a, b =
    match policy with
    | Lightest_pair ->
      (* Last two slots; no shifting. *)
      let a = t.data.(t.len - 1) and b = t.data.(t.len - 2) in
      t.len <- t.len - 2;
      (a, b)
    | Heaviest_pair ->
      let a = t.data.(0) and b = t.data.(1) in
      Array.blit t.data 2 t.data 0 (t.len - 2);
      t.len <- t.len - 2;
      (a, b)
    | First_last ->
      let a = t.data.(t.len - 1) and z = t.data.(0) in
      Array.blit t.data 1 t.data 0 (t.len - 2);
      t.len <- t.len - 2;
      (a, z)
  in
  index_remove t a;
  index_remove t b;
  (a, b)

let to_list t =
  let acc = ref [] in
  for i = 0 to t.len - 1 do acc := t.data.(i) :: !acc done;
  !acc

let to_array t =
  Array.init t.len (fun i -> t.data.(t.len - 1 - i))

let of_list ~bound l =
  let t = create ~bound in
  (* A min-heap under the reversed order drains heaviest-first, which is
     exactly the internal layout. *)
  let heap = Rt_util.Binary_heap.of_list ~cmp:(fun a b -> canonical b a) l in
  let n = Rt_util.Binary_heap.length heap in
  if n > 0 then begin
    t.data <- Array.make (max n (bound + 1)) (List.hd l);
    for i = 0 to n - 1 do
      let h = Rt_util.Binary_heap.pop_exn heap in
      t.data.(i) <- h;
      index_add t h
    done;
    t.len <- n
  end;
  t
