type victim_policy = Lightest_pair | Heaviest_pair | First_last

(* Canonical ascending order: weight first, then the structural order.
   Total on distinct hypotheses ([compare_full] = 0 only for duplicates,
   which [insert] rejects). *)
let canonical h h' =
  let c = Int.compare (Hypothesis.weight h) (Hypothesis.weight h') in
  if c <> 0 then c else Hypothesis.compare_full h h'

(* Below this bound the array-plus-index machinery loses to a plain
   sorted list: the hash index, binary search and blits only pay for
   themselves once the set is big enough, and BENCH_heuristic.json puts
   the measured break-even at bound 64 on the reference workload. *)
let crossover_bound = 64

type repr = Array_repr | List_repr

type t = {
  bound : int;
  repr : repr;
  (* Array representation: sorted descending under [canonical], so the
     default eviction (lightest pair) is a pop off the end. Empty until
     the first insertion (OCaml arrays need a witness element). *)
  mutable data : Hypothesis.t array;
  mutable len : int;
  (* (hash, a_hash) -> hypotheses with those cached hashes. Buckets are
     almost always singletons; [compare_full] resolves true collisions. *)
  index : (int * int, Hypothesis.t list) Hashtbl.t;
  (* List representation: sorted ascending under [canonical] — the seed
     layout, selected below [crossover_bound]. [len] tracks both. *)
  mutable items : Hypothesis.t list;
}

let make repr ~bound =
  { bound; repr; data = [||]; len = 0;
    index = Hashtbl.create (2 * (bound + 1)); items = [] }

let create_with ~repr ~bound =
  make (match repr with `Array -> Array_repr | `List -> List_repr) ~bound

let create ~bound =
  make (if bound < crossover_bound then List_repr else Array_repr) ~bound

let uses_list_repr t = t.repr = List_repr

let length t = t.len

let clear t =
  t.len <- 0;
  match t.repr with
  | List_repr -> t.items <- []
  | Array_repr -> Hashtbl.reset t.index

let key h = (Hypothesis.hash h, Hypothesis.a_hash h)

let rec mem_list h = function
  | [] -> false
  | h' :: tl ->
    let c = canonical h h' in
    c = 0 || (c > 0 && mem_list h tl)

let mem t h =
  match t.repr with
  | List_repr -> mem_list h t.items
  | Array_repr ->
    (match Hashtbl.find_opt t.index (key h) with
     | None -> false
     | Some bucket ->
       List.exists (fun h' -> Hypothesis.compare_full h h' = 0) bucket)

let index_remove t h =
  let k = key h in
  match Hashtbl.find_opt t.index k with
  | None -> ()
  | Some bucket ->
    (match List.filter (fun h' -> h' != h) bucket with
     | [] -> Hashtbl.remove t.index k
     | rest -> Hashtbl.replace t.index k rest)

let ensure_capacity t h =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max (t.bound + 1) (max 4 (2 * cap)) in
    let nd = Array.make ncap h in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

exception Duplicate

(* Sorted insertion, one pass for both the dedup test and the slot —
   exactly the seed's list discipline. *)
let rec ins_list h = function
  | [] -> [ h ]
  | h' :: tl as l ->
    let c = canonical h h' in
    if c = 0 then raise Duplicate
    else if c < 0 then h :: l
    else h' :: ins_list h tl

(* Dedup check and index update share one bucket lookup — [add] is on
   the per-child hot path of the learner. *)
let add t h =
  match t.repr with
  | List_repr ->
    (match ins_list h t.items with
     | items ->
       t.items <- items;
       t.len <- t.len + 1;
       true
     | exception Duplicate -> false)
  | Array_repr ->
    let k = key h in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt t.index k) in
    if List.exists (fun h' -> Hypothesis.compare_full h h' = 0) bucket then
      false
    else begin
      ensure_capacity t h;
      (* Binary search in the descending array: smallest index whose
         element is canonically below [h]. *)
      let lo = ref 0 and hi = ref t.len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if canonical t.data.(mid) h > 0 then lo := mid + 1 else hi := mid
      done;
      let pos = !lo in
      Array.blit t.data pos t.data (pos + 1) (t.len - pos);
      t.data.(pos) <- h;
      t.len <- t.len + 1;
      Hashtbl.replace t.index k (h :: bucket);
      true
    end

let insert t h =
  if not (add t h) then invalid_arg "Workset.insert: duplicate hypothesis"

let extract_pair t policy =
  if t.len < 2 then invalid_arg "Workset.extract_pair: fewer than 2 elements";
  match t.repr with
  | List_repr ->
    t.len <- t.len - 2;
    (match policy with
     | Lightest_pair ->
       (match t.items with
        | a :: b :: rest ->
          t.items <- rest;
          (a, b)
        | _ -> assert false)
     | Heaviest_pair ->
       (match List.rev t.items with
        | a :: b :: rest ->
          t.items <- List.rev rest;
          (a, b)
        | _ -> assert false)
     | First_last ->
       (match t.items with
        | a :: rest ->
          (match List.rev rest with
           | z :: mid ->
             t.items <- List.rev mid;
             (a, z)
           | [] -> assert false)
        | [] -> assert false))
  | Array_repr ->
    let a, b =
      match policy with
      | Lightest_pair ->
        (* Last two slots; no shifting. *)
        let a = t.data.(t.len - 1) and b = t.data.(t.len - 2) in
        t.len <- t.len - 2;
        (a, b)
      | Heaviest_pair ->
        let a = t.data.(0) and b = t.data.(1) in
        Array.blit t.data 2 t.data 0 (t.len - 2);
        t.len <- t.len - 2;
        (a, b)
      | First_last ->
        let a = t.data.(t.len - 1) and z = t.data.(0) in
        Array.blit t.data 1 t.data 0 (t.len - 2);
        t.len <- t.len - 2;
        (a, z)
    in
    index_remove t a;
    index_remove t b;
    (a, b)

let to_list t =
  match t.repr with
  | List_repr -> t.items
  | Array_repr ->
    let acc = ref [] in
    for i = 0 to t.len - 1 do acc := t.data.(i) :: !acc done;
    !acc

let to_array t =
  match t.repr with
  | List_repr -> Array.of_list t.items
  | Array_repr -> Array.init t.len (fun i -> t.data.(t.len - 1 - i))

let index_add t h =
  let k = key h in
  Hashtbl.replace t.index k
    (h :: Option.value ~default:[] (Hashtbl.find_opt t.index k))

let of_list ~bound l =
  let t = create ~bound in
  match t.repr with
  | List_repr ->
    t.items <- List.sort canonical l;
    t.len <- List.length l;
    t
  | Array_repr ->
    (* A min-heap under the reversed order drains heaviest-first, which
       is exactly the internal layout. *)
    let heap = Rt_util.Binary_heap.of_list ~cmp:(fun a b -> canonical b a) l in
    let n = Rt_util.Binary_heap.length heap in
    if n > 0 then begin
      t.data <- Array.make (max n (bound + 1)) (List.hd l);
      for i = 0 to n - 1 do
        let h = Rt_util.Binary_heap.pop_exn heap in
        t.data.(i) <- h;
        index_add t h
      done;
      t.len <- n
    end;
    t
