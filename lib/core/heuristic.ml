module Df = Rt_lattice.Depfun
module Period = Rt_trace.Period
module Candidates = Rt_trace.Candidates

type stats = {
  periods_processed : int;
  merges : int;
  created : int;
}

type outcome = {
  hypotheses : Df.t list;
  stats : stats;
}

type merge_policy = Workset.victim_policy =
  | Lightest_pair | Heaviest_pair | First_last

type state = {
  policy : merge_policy;
  window : int option;
  bound : int;
  pool : Rt_util.Domain_pool.t option;
  violations : Violations.t;
  scratch : Workset.t;  (* per-message working set, reused across messages *)
  mutable hs : Hypothesis.t array;  (* ascending (weight, structural) order *)
  mutable created : int;
  mutable merges : int;
  mutable periods : int;
}

let init ?(policy = Lightest_pair) ?window ?pool ~bound ~ntasks () =
  if bound < 1 then invalid_arg "Heuristic.init: bound must be >= 1";
  if ntasks < 1 then invalid_arg "Heuristic.init: need at least one task";
  {
    policy;
    window;
    bound;
    pool;
    violations = Violations.create ntasks;
    scratch = Workset.create ~bound;
    hs = [| Hypothesis.bottom ntasks |];
    created = 1;
    merges = 0;
    periods = 0;
  }

(* Insert with deduplication, then enforce the bound by merging. *)
let rec add st h =
  if Workset.add st.scratch h
     && Workset.length st.scratch > st.bound then begin
    let a, b = Workset.extract_pair st.scratch st.policy in
    st.merges <- st.merges + 1;
    add st (Hypothesis.merge_lub a b)
  end

let fanout pairs h =
  List.filter_map
    (fun (s, r) -> Hypothesis.generalize_message h ~sender:s ~receiver:r)
    pairs

(* The fan-out (one fresh hypothesis per live hypothesis × candidate pair,
   each an O(t²) matrix copy) is where the time goes and is embarrassingly
   parallel: [generalize_message] only reads its parent. The merge into
   the bounded set stays sequential and consumes the children in canonical
   parent order — chunk scheduling cannot change the outcome. *)
let step_message st hs pairs =
  let children =
    match st.pool with
    | Some pool when Array.length hs > 1 ->
      Rt_util.Domain_pool.map pool (fanout pairs) hs
    | Some _ | None -> Array.map (fanout pairs) hs
  in
  Workset.clear st.scratch;
  Array.iter
    (List.iter (fun h' ->
         st.created <- st.created + 1;
         add st h'))
    children;
  Workset.to_array st.scratch

let feed st (p : Period.t) =
  let hs =
    Array.fold_left
      (fun hs m -> step_message st hs (Candidates.pairs ?window:st.window p m))
      st.hs p.msgs
  in
  Violations.observe st.violations ~executed:p.executed;
  let violated = Violations.matrix st.violations in
  Array.iter (fun h ->
      Hypothesis.weaken_violations h ~violated;
      Hypothesis.clear_assumptions h)
    hs;
  (* Post-processing: unify equal hypotheses, drop non-minimal ones.
     [minimal_only] returns ascending (weight, structural) order, which is
     exactly the state invariant (weakening changed the weights). *)
  let survivors = Postprocess.minimal_only (Postprocess.dedup (Array.to_list hs)) in
  st.hs <- Array.of_list survivors;
  st.periods <- st.periods + 1

let current st =
  Array.to_list (Array.map (fun h -> Df.copy (Hypothesis.depfun h)) st.hs)

let stats st =
  { periods_processed = st.periods; merges = st.merges; created = st.created }

let snapshot st = { hypotheses = current st; stats = stats st }

let run ?policy ?window ?pool ~bound trace =
  let st =
    init ?policy ?window ?pool ~bound
      ~ntasks:(Rt_trace.Trace.task_count trace) ()
  in
  List.iter (feed st) (Rt_trace.Trace.periods trace);
  snapshot st

let converged o = match o.hypotheses with [ d ] -> Some d | [] | _ :: _ -> None
