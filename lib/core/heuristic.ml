module Df = Rt_lattice.Depfun
module Dv = Rt_lattice.Depval
module Period = Rt_trace.Period
module Candidates = Rt_trace.Candidates

type stats = {
  periods_processed : int;
  merges : int;
  created : int;
}

type counters = {
  branches : int;
  dedup_hits : int;
  evictions : int;
  weakenings : int;
  end_dedup : int;
  nonminimal : int;
}

type outcome = {
  hypotheses : Df.t list;
  stats : stats;
}

type merge_policy = Workset.victim_policy =
  | Lightest_pair | Heaviest_pair | First_last

type provenance = {
  periods_dropped : int;
  periods_repaired : int;
}

type state = {
  policy : merge_policy;
  window : int option;
  bound : int;
  pool : Rt_util.Domain_pool.t option;
  violations : Violations.t;
  scratch : Workset.t;  (* per-message working set, reused across messages *)
  mutable hs : Hypothesis.t array;  (* ascending (weight, structural) order *)
  mutable created : int;
  mutable merges : int;
  mutable periods : int;
  mutable msgs : int;      (* bus messages consumed, across all periods *)
  mutable dropped : int;   (* periods quarantine dropped before feeding *)
  mutable repaired : int;  (* periods repaired by ingestion *)
  (* Observability counters. Like [merges]/[created] they are counted
     unconditionally (single int stores on the sequential merge path —
     nothing observable on the parallel fan-out), deterministically
     across -j levels, and travel through checkpoints so a resumed run
     reports the same totals as an uninterrupted one. *)
  mutable branches : int;      (* generalization attempts (parents × pairs) *)
  mutable dedup_hits : int;    (* children the working set rejected as dups *)
  mutable evictions : int;     (* hypotheses removed by bound-forced merges *)
  mutable weakenings : int;    (* cells weakened at period boundaries *)
  mutable end_dedup : int;     (* duplicates unified at period end *)
  mutable nonminimal : int;    (* non-minimal hypotheses pruned at period end *)
  (* Sink attachment; [None] costs one branch per period. *)
  obs : Rt_obs.Registry.t option;
  cand_hist : Rt_obs.Histogram.t option;
  occ_gauge : Rt_obs.Registry.gauge option;
}

let init ?(policy = Lightest_pair) ?window ?pool ?obs ~bound ~ntasks () =
  if bound < 1 then invalid_arg "Heuristic.init: bound must be >= 1";
  if ntasks < 1 then invalid_arg "Heuristic.init: need at least one task";
  {
    policy;
    window;
    bound;
    pool;
    violations = Violations.create ntasks;
    scratch = Workset.create ~bound;
    hs = [| Hypothesis.bottom ntasks |];
    created = 1;
    merges = 0;
    periods = 0;
    msgs = 0;
    dropped = 0;
    repaired = 0;
    branches = 0;
    dedup_hits = 0;
    evictions = 0;
    weakenings = 0;
    end_dedup = 0;
    nonminimal = 0;
    obs;
    cand_hist =
      Option.map (fun r -> Rt_obs.Registry.histogram r "learn.candidate_pairs")
        obs;
    occ_gauge =
      Option.map (fun r -> Rt_obs.Registry.gauge r "learn.workset_occupancy")
        obs;
  }

let provenance st =
  { periods_dropped = st.dropped; periods_repaired = st.repaired }

let set_provenance st ~dropped ~repaired =
  if dropped < 0 || repaired < 0 then
    invalid_arg "Heuristic.set_provenance: counts must be non-negative";
  st.dropped <- dropped;
  st.repaired <- repaired

(* Insert with deduplication, then enforce the bound by merging. *)
let rec add st h =
  if Workset.add st.scratch h then begin
    if Workset.length st.scratch > st.bound then begin
      let a, b = Workset.extract_pair st.scratch st.policy in
      st.merges <- st.merges + 1;
      st.evictions <- st.evictions + 2;
      add st (Hypothesis.merge_lub a b)
    end
  end
  else st.dedup_hits <- st.dedup_hits + 1

let fanout pairs h =
  List.filter_map
    (fun (s, r) -> Hypothesis.generalize_message h ~sender:s ~receiver:r)
    pairs

(* The fan-out (one fresh hypothesis per live hypothesis × candidate pair,
   each an O(t²) matrix copy) is where the time goes and is embarrassingly
   parallel: [generalize_message] only reads its parent. The merge into
   the bounded set stays sequential and consumes the children in canonical
   parent order — chunk scheduling cannot change the outcome. *)
let step_message st hs pairs =
  st.branches <- st.branches + (Array.length hs * List.length pairs);
  let children =
    match st.pool with
    | Some pool when Array.length hs > 1 ->
      Rt_util.Domain_pool.map pool (fanout pairs) hs
    | Some _ | None -> Array.map (fanout pairs) hs
  in
  Workset.clear st.scratch;
  Array.iter
    (List.iter (fun h' ->
         st.created <- st.created + 1;
         add st h'))
    children;
  Workset.to_array st.scratch

let feed st (p : Period.t) =
  (match st.obs with
   | Some r -> Rt_obs.Registry.span_begin r "learn.period"
   | None -> ());
  let hs =
    Array.fold_left
      (fun hs m ->
         step_message st hs
           (Candidates.pairs ?window:st.window ?hist:st.cand_hist p m))
      st.hs p.msgs
  in
  Violations.observe st.violations ~executed:p.executed;
  let violated = Violations.matrix st.violations in
  Array.iter (fun h ->
      st.weakenings <-
        st.weakenings + Hypothesis.weaken_violations_count h ~violated;
      Hypothesis.clear_assumptions h)
    hs;
  (* Post-processing: unify equal hypotheses, drop non-minimal ones.
     [minimal_only] returns ascending (weight, structural) order, which is
     exactly the state invariant (weakening changed the weights). *)
  let cut_dup = ref 0 and cut_min = ref 0 in
  let survivors =
    Postprocess.minimal_only ~removed:cut_min
      (Postprocess.dedup ~removed:cut_dup (Array.to_list hs))
  in
  st.end_dedup <- st.end_dedup + !cut_dup;
  st.nonminimal <- st.nonminimal + !cut_min;
  st.hs <- Array.of_list survivors;
  st.periods <- st.periods + 1;
  st.msgs <- st.msgs + Array.length p.msgs;
  (match st.obs with
   | Some r ->
     (match st.occ_gauge with
      | Some g -> Rt_obs.Registry.set_gauge g (Array.length st.hs)
      | None -> ());
     Rt_obs.Registry.span_end r
   | None -> ())

let bound st = st.bound

let current st =
  Array.to_list (Array.map (fun h -> Df.copy (Hypothesis.depfun h)) st.hs)

let stats st =
  { periods_processed = st.periods; merges = st.merges; created = st.created }

let messages_processed st = st.msgs

let violations st = Array.map Array.copy (Violations.matrix st.violations)

let counters st =
  {
    branches = st.branches;
    dedup_hits = st.dedup_hits;
    evictions = st.evictions;
    weakenings = st.weakenings;
    end_dedup = st.end_dedup;
    nonminimal = st.nonminimal;
  }

(* Export the state-held totals into the attached registry. Counters are
   pushed once here, not incremented live in registry cells, so that the
   same totals surface whether the state was freshly run or resumed from
   a checkpoint. *)
let publish st =
  match st.obs with
  | None -> ()
  | Some r ->
    let set = Rt_obs.Registry.set_counter r in
    set "learn.periods" st.periods;
    set "learn.merges" st.merges;
    set "learn.created" st.created;
    set "learn.branches" st.branches;
    set "learn.dedup_hits" st.dedup_hits;
    set "learn.evictions" st.evictions;
    set "learn.weakenings" st.weakenings;
    set "learn.end_dedup" st.end_dedup;
    set "learn.nonminimal_dropped" st.nonminimal;
    set "learn.hypotheses" (Array.length st.hs);
    set "learn.periods_dropped" st.dropped;
    set "learn.periods_repaired" st.repaired

let snapshot st =
  publish st;
  { hypotheses = current st; stats = stats st }

let run ?policy ?window ?pool ?obs ~bound trace =
  let st =
    init ?policy ?window ?pool ?obs ~bound
      ~ntasks:(Rt_trace.Trace.task_count trace) ()
  in
  List.iter (feed st) (Rt_trace.Trace.periods trace);
  snapshot st

let converged o = match o.hypotheses with [ d ] -> Some d | [] | _ :: _ -> None

(* Checkpoints. Only taken between [feed]s, where every hypothesis has an
   empty assumption set — so a snapshot is exactly: the configuration, the
   counters, the violation matrix, and the hypothesis matrices in state
   order (which the restore preserves verbatim; re-sorting could disagree
   with the working set's canonical order). All integers are little-endian
   64-bit; matrices are row-major bytes. Version 2 extended version 1
   with the six observability counters; version 3 adds the message
   count, so a resumed run reports the same totals as an uninterrupted
   one. *)

let ckpt_magic = "RTGENCKP"
let ckpt_version = 3

(* Integrity trailer appended after the payload: 8-byte magic, the
   payload length, and the payload's MD5 — 32 bytes total. A torn write
   or a flipped bit is detected before any field is trusted, instead of
   surfacing as a confusing parse error (or worse, loading silently
   wrong matrices). Checkpoints written before the trailer existed
   carry no magic and still load through the legacy path. *)
let trailer_magic = "RTCKSUM1"
let trailer_len = 8 + 8 + 16

let policy_byte = function
  | Lightest_pair -> 0 | Heaviest_pair -> 1 | First_last -> 2

let policy_of_byte = function
  | 0 -> Some Lightest_pair | 1 -> Some Heaviest_pair | 2 -> Some First_last
  | _ -> None

let checkpoint ?(tag = "") st =
  let buf = Buffer.create 1024 in
  let i64 n = Buffer.add_int64_le buf (Int64.of_int n) in
  Buffer.add_string buf ckpt_magic;
  Buffer.add_char buf (Char.chr ckpt_version);
  Buffer.add_char buf (Char.chr (policy_byte st.policy));
  (match st.window with
   | None -> Buffer.add_char buf '\000'
   | Some w -> Buffer.add_char buf '\001'; i64 w);
  i64 st.bound;
  let vm = Violations.matrix st.violations in
  let ntasks = Array.length vm in
  i64 ntasks;
  i64 st.periods;
  i64 st.merges;
  i64 st.created;
  i64 st.dropped;
  i64 st.repaired;
  i64 st.branches;
  i64 st.dedup_hits;
  i64 st.evictions;
  i64 st.weakenings;
  i64 st.end_dedup;
  i64 st.nonminimal;
  i64 st.msgs;
  i64 (String.length tag);
  Buffer.add_string buf tag;
  for a = 0 to ntasks - 1 do
    for b = 0 to ntasks - 1 do
      Buffer.add_char buf (if vm.(a).(b) then '\001' else '\000')
    done
  done;
  i64 (Array.length st.hs);
  Array.iter (fun h -> Buffer.add_bytes buf (Df.cells (Hypothesis.depfun h)))
    st.hs;
  let payload = Buffer.contents buf in
  Buffer.add_string buf trailer_magic;
  Buffer.add_int64_le buf (Int64.of_int (String.length payload));
  Buffer.add_string buf (Digest.string payload);
  Buffer.contents buf

(* Strip and verify the integrity trailer, when present. [Ok] carries
   the bare payload; a checkpoint without the magic is assumed legacy
   and passed through untouched. *)
let verify_trailer data =
  let len = String.length data in
  if len >= trailer_len
     && String.sub data (len - trailer_len) 8 = trailer_magic
  then begin
    let plen =
      Int64.to_int (String.get_int64_le data (len - trailer_len + 8))
    in
    if plen <> len - trailer_len then
      Error "checkpoint trailer length mismatch — file is truncated or corrupt"
    else
      let payload = String.sub data 0 plen in
      if not (String.equal (Digest.string payload)
                (String.sub data (len - 16) 16))
      then Error "checkpoint checksum mismatch — file is corrupt"
      else Ok payload
  end
  else Ok data

let resume_payload ?pool ?obs data =
  let exception Bad of string in
  let len = String.length data in
  let pos = ref 0 in
  let need n = if !pos + n > len then raise (Bad "truncated checkpoint") in
  let byte () =
    need 1;
    let c = Char.code data.[!pos] in
    incr pos;
    c
  in
  let i64 () =
    need 8;
    let v = Int64.to_int (String.get_int64_le data !pos) in
    pos := !pos + 8;
    if v < 0 then raise (Bad "negative integer field");
    v
  in
  let str n = need n; let s = String.sub data !pos n in pos := !pos + n; s in
  try
    if len < 8 || String.sub data 0 8 <> ckpt_magic then
      raise (Bad "not an rtgen checkpoint");
    pos := 8;
    let version = byte () in
    if version <> ckpt_version then
      raise (Bad (Printf.sprintf "unsupported checkpoint version %d" version));
    let policy =
      match policy_of_byte (byte ()) with
      | Some p -> p
      | None -> raise (Bad "bad merge policy")
    in
    let window =
      match byte () with
      | 0 -> None
      | 1 -> Some (i64 ())
      | _ -> raise (Bad "bad window flag")
    in
    let bound = i64 () in
    if bound < 1 then raise (Bad "bound must be >= 1");
    let ntasks = i64 () in
    if ntasks < 1 then raise (Bad "need at least one task");
    if ntasks > 65536 then
      (* A flipped bit in a legacy (trailer-less) checkpoint must not
         drive the matrix allocations below into Out_of_memory. *)
      raise (Bad (Printf.sprintf "implausible task count %d" ntasks));
    let periods = i64 () in
    let merges = i64 () in
    let created = i64 () in
    let dropped = i64 () in
    let repaired = i64 () in
    let branches = i64 () in
    let dedup_hits = i64 () in
    let evictions = i64 () in
    let weakenings = i64 () in
    let end_dedup = i64 () in
    let nonminimal = i64 () in
    let msgs = i64 () in
    let tag = str (i64 ()) in
    let vm = Array.make_matrix ntasks ntasks false in
    for a = 0 to ntasks - 1 do
      for b = 0 to ntasks - 1 do
        match byte () with
        | 0 -> ()
        | 1 -> vm.(a).(b) <- true
        | _ -> raise (Bad "bad violation cell")
      done
    done;
    let nhyp = i64 () in
    if nhyp > bound then raise (Bad "more hypotheses than bound");
    let hs = Array.make nhyp (Hypothesis.bottom ntasks) in
    for k = 0 to nhyp - 1 do
      let df = Df.create ntasks in
      let cells = Df.cells df in
      for a = 0 to ntasks - 1 do
        for b = 0 to ntasks - 1 do
          let v = byte () in
          if v > Dv.index Dv.Bi_maybe then raise (Bad "bad dependency cell");
          if a = b && v <> Dv.index Dv.Par then
            raise (Bad "non-Par diagonal cell");
          Bytes.set cells ((a * ntasks) + b) (Char.chr v)
        done
      done;
      hs.(k) <- Hypothesis.of_depfun df
    done;
    if !pos <> len then raise (Bad "trailing bytes after checkpoint");
    let st =
      {
        policy;
        window;
        bound;
        pool;
        violations = Violations.of_matrix vm;
        scratch = Workset.create ~bound;
        hs;
        created;
        merges;
        periods;
        msgs;
        dropped;
        repaired;
        branches;
        dedup_hits;
        evictions;
        weakenings;
        end_dedup;
        nonminimal;
        obs;
        cand_hist =
          Option.map
            (fun r -> Rt_obs.Registry.histogram r "learn.candidate_pairs")
            obs;
        occ_gauge =
          Option.map
            (fun r -> Rt_obs.Registry.gauge r "learn.workset_occupancy")
            obs;
      }
    in
    Ok (st, tag)
  with Bad m -> Error m

let resume ?pool ?obs data =
  (* A well-formed header with a foreign version number is reported as
     such before the trailer is consulted: other versions wrote other
     trailers (or none), so the checksum verdict would only mislead. *)
  if
    String.length data > 8
    && String.sub data 0 8 = ckpt_magic
    && Char.code data.[8] <> ckpt_version
  then
    Error
      (Printf.sprintf "unsupported checkpoint version %d" (Char.code data.[8]))
  else
  match verify_trailer data with
  | Error _ as e -> e
  | Ok payload ->
    (match resume_payload ?pool ?obs payload with
     | r -> r
     | exception e ->
       (* A corrupt legacy blob (no trailer to catch it) must degrade
          into a clean [Error], never an exception. *)
       Error ("unreadable checkpoint: " ^ Printexc.to_string e))
