(* Sharded learning. The correctness story lives in shard.mli and
   DESIGN.md §14; the code is deliberately small: plan ranges, run one
   private engine pair per range (on pool workers when given — the
   workers never see the pool itself, it is not reentrant), fold the
   bound-1 companion models with the fused byte-matrix lub and one
   end-of-fold weakening pass under the union violation matrix. *)

module Df = Rt_lattice.Depfun
module Engine = Rt_engine.Engine

type result = {
  hypotheses : Df.t list;
  summary : Df.t option;
  violations : bool array array;
  periods : int;
  messages : int;
  elapsed_ns : int;
}

type outcome = {
  model : Df.t option;
  shards : result array;
  periods : int;
  messages : int;
}

let plan ~shards ~periods =
  if shards < 1 then invalid_arg "Shard.plan: shards must be >= 1";
  if periods < 0 then invalid_arg "Shard.plan: negative period count";
  let base = periods / shards and extra = periods mod shards in
  let range i =
    let lo = (i * base) + min i extra in
    (lo, lo + base + (if i < extra then 1 else 0))
  in
  let ranges =
    Array.init shards range
    |> Array.to_list
    |> List.filter (fun (lo, hi) -> hi > lo)
  in
  (* Keep one (empty) range for an empty trace: a shard over nothing
     still learns {d⊥}, exactly like the monolithic run. *)
  match ranges with [] -> [| (0, 0) |] | l -> Array.of_list l

let union_violations parts =
  let ntasks = Array.length parts.(0) in
  let v = Array.make_matrix ntasks ntasks false in
  Array.iter
    (fun m ->
       for a = 0 to ntasks - 1 do
         for b = 0 to ntasks - 1 do
           if m.(a).(b) then v.(a).(b) <- true
         done
       done)
    parts;
  v

let summary_of engine =
  match Engine.current engine with [] -> None | hs -> Some (Df.lub hs)

(* The exchange-law fold over bound-1 summaries: any inconsistent shard
   means the whole trace is inconsistent; otherwise join the summaries
   in one fused pass and weaken once under the union matrix. *)
let fold_summaries parts =
  if Array.exists (fun (s, _) -> s = None) parts then None
  else begin
    let mats = Array.map (fun (s, _) -> Option.get s) parts in
    let model = Df.lub_many mats in
    let violated = union_violations (Array.map snd parts) in
    ignore (Df.weaken_violations model ~violated : int);
    Some model
  end

let fold_results results =
  fold_summaries (Array.map (fun r -> (r.summary, r.violations)) results)

let fold_engines engines =
  if Array.length engines = 0 then
    invalid_arg "Shard.fold_engines: no engines";
  let parts =
    Array.map
      (fun e ->
         match Engine.violations e with
         | Some v -> (summary_of e, v)
         | None ->
           invalid_arg "Shard.fold_engines: exact-core engine has no fold")
      engines
  in
  fold_summaries parts

let learn ?window ?pool ?obs ~bound ~shards (trace : Rt_trace.Trace.t) =
  if shards < 1 then invalid_arg "Shard.learn: shards must be >= 1";
  if bound < 1 then invalid_arg "Shard.learn: bound must be >= 1";
  let periods = trace.periods in
  let ntasks = Rt_trace.Trace.task_count trace in
  let ranges = plan ~shards ~periods:(Array.length periods) in
  let span name f =
    match obs with
    | None -> f ()
    | Some r -> Rt_obs.Registry.with_span r name f
  in
  (* One private engine pair per range; everything the orchestrator
     needs comes back by value, so pool workers mutate nothing shared.
     At [bound = 1] the main engine is its own companion. *)
  let worker (lo, hi) =
    let t0 = Rt_obs.Registry.now_ns () in
    let main = Engine.create ?window ~ntasks (Engine.Heuristic { bound }) in
    let companion =
      if bound = 1 then None
      else Some (Engine.create ?window ~ntasks (Engine.Heuristic { bound = 1 }))
    in
    for i = lo to hi - 1 do
      Engine.feed main periods.(i);
      Option.iter (fun c -> Engine.feed c periods.(i)) companion
    done;
    {
      hypotheses = Engine.current main;
      summary = summary_of (Option.value companion ~default:main);
      violations = Option.get (Engine.violations main);
      periods = Engine.periods_fed main;
      messages = Engine.messages_fed main;
      elapsed_ns = Rt_obs.Registry.now_ns () - t0;
    }
  in
  let shards_out =
    span "shard.fanout" (fun () ->
        match pool with
        | Some pool when Array.length ranges > 1 ->
          Rt_util.Domain_pool.map pool worker ranges
        | Some _ | None -> Array.map worker ranges)
  in
  let model = span "shard.fold" (fun () -> fold_results shards_out) in
  let periods_total =
    Array.fold_left (fun a (r : result) -> a + r.periods) 0 shards_out
  in
  let messages_total =
    Array.fold_left (fun a (r : result) -> a + r.messages) 0 shards_out
  in
  (match obs with
   | None -> ()
   | Some r ->
     let set = Rt_obs.Registry.set_counter r in
     set "shard.shards" (Array.length shards_out);
     set "shard.periods" periods_total;
     set "shard.messages" messages_total;
     let h = Rt_obs.Registry.histogram r "shard.worker_us" in
     Array.iter
       (fun (res : result) -> Rt_obs.Histogram.record h (res.elapsed_ns / 1000))
       shards_out);
  { model; shards = shards_out; periods = periods_total;
    messages = messages_total }

(* Round-robin sharded units for the streaming path: each unit is a
   main engine at the user's bound plus its bound-1 companion, and the
   fold at end of stream is the same exchange-law fold as the batch
   path — the companions' per-period deltas commute, so the round-robin
   (non-contiguous) partition folds just as exactly. *)
module Stream = struct
  type unit_t = { main : Engine.t; companion : Engine.t option }

  type t = {
    units : unit_t array;
    mutable next : int;
    mutable fed : int;
  }

  let create ?window ~ntasks ~bound ~shards () =
    if shards < 1 then invalid_arg "Shard.Stream.create: shards must be >= 1";
    if bound < 1 then invalid_arg "Shard.Stream.create: bound must be >= 1";
    let unit () =
      { main = Engine.create ?window ~ntasks (Engine.Heuristic { bound });
        companion =
          (if bound = 1 then None
           else
             Some (Engine.create ?window ~ntasks (Engine.Heuristic { bound = 1 })))
      }
    in
    { units = Array.init shards (fun _ -> unit ()); next = 0; fed = 0 }

  let shards t = Array.length t.units

  let feed t p =
    let u = t.units.(t.next) in
    Engine.feed u.main p;
    Option.iter (fun c -> Engine.feed c p) u.companion;
    t.next <- (t.next + 1) mod Array.length t.units;
    t.fed <- t.fed + 1

  let periods_fed t = t.fed

  let hypotheses t =
    Array.fold_left
      (fun acc u -> acc + List.length (Engine.current u.main))
      0 t.units

  let messages_fed t =
    Array.fold_left (fun acc u -> acc + Engine.messages_fed u.main) 0 t.units

  let parts t =
    Array.map
      (fun u ->
         (summary_of (Option.value u.companion ~default:u.main),
          Option.get (Engine.violations u.main)))
      t.units

  let fold t = fold_summaries (parts t)
end
