(** Sharded lub-merge learning: partition, learn per shard, fold.

    Periods are independent instances of the learning problem (paper
    §2.2), so a trace can be cut into [K] period ranges, each range
    learned by its own {!Rt_engine.Engine} on a {!Rt_util.Domain_pool}
    worker, and the per-shard results folded into a single model.

    {b What the fold can — and cannot — reconstruct.} The LUB of a
    {e bounded} run's answer set is NOT partition-independent: under
    assumption-based branching, the end-of-period minimality pruning
    discards dominated hypotheses, and which hypotheses are dominated
    depends on everything learned so far — so two shards can each prune
    away the sole carrier of some evidence that survives in the
    monolithic interleaving (the same deviation from the paper's
    idealized Lemma that test_theorems.ml pins down). What {e is}
    partition-independent is the bound-1 model [d*(1)]: with a single
    hypothesis, every candidate pair of every message joins into one
    matrix, making each period's contribution a per-cell monotone delta
    that depends only on the period itself. Joins commute, so any
    partition — contiguous or not — accumulates the same matrix.

    Each shard therefore runs {e two} engines over its range: the main
    engine at the user's bound (the expensive work being parallelized;
    its version space is reported per shard) and a cheap bound-1
    companion whose single matrix is the shard's fold contribution.

    The fold is not a plain pointwise join of the companions either.
    Each shard weakens against only the violations {e it} observed; the
    monolithic run weakens against the union. Since weakening absorbs
    into later joins ([w (w x ⊔ d) = w (x ⊔ d)] on the seven-value
    lattice), the intermediate passes are redundant and the exchange
    law holds:

    {v monolithic d*(1) = weaken_{∪ᵢ Vᵢ} (⊔ᵢ b1ᵢ) v}

    where [b1ᵢ] and [Vᵢ] are shard [i]'s companion model and violation
    matrix. Inconsistency also localises: a period with an inexplicable
    message empties the hypothesis set regardless of what was learned
    before it, so some shard's companion turns up empty iff the
    monolithic run does. By the domination Lemma (test_theorems.ml),
    the folded model dominates every shard's bounded LUB — it is the
    same conservative summary the monolithic bounded run's LUB
    converges to. All of this is enforced against the
    {!Rt_learn.Reference} oracle by test_shard. *)

type result = {
  hypotheses : Rt_lattice.Depfun.t list;
      (** the main (user-bound) engine's final hypotheses for this
          shard's range (empty = inconsistent) *)
  summary : Rt_lattice.Depfun.t option;
      (** the bound-1 companion's model — the shard's fold
          contribution; [None] iff the range is inconsistent *)
  violations : bool array array;  (** the shard's violation matrix *)
  periods : int;
  messages : int;
  elapsed_ns : int;  (** wall-clock learn time of this shard *)
}

type outcome = {
  model : Rt_lattice.Depfun.t option;
      (** the folded model — byte-equal to the monolithic bound-1
          model [d*(1)] for every shard count; [None] iff the trace is
          inconsistent *)
  shards : result array;
  periods : int;   (** total periods, across shards *)
  messages : int;  (** total bus messages, across shards *)
}

val plan : shards:int -> periods:int -> (int * int) array
(** Near-equal contiguous ranges [\[lo, hi)] covering [\[0, periods)]:
    the first [periods mod K] ranges hold one extra period. Empty
    ranges are dropped, so at most [min shards periods] (but at least
    one, possibly empty, when [periods = 0]) ranges come back.
    @raise Invalid_argument when [shards < 1] or [periods < 0]. *)

val summary_of : Rt_engine.Engine.t -> Rt_lattice.Depfun.t option
(** The LUB of an engine's current hypotheses — its {e pre-weaken}
    fold contribution; [None] iff the hypothesis set is empty
    (inconsistent input). This is the matrix a bound-1 companion
    publishes to a store as its fleet-merge interchange. *)

val fold_summaries :
  (Rt_lattice.Depfun.t option * bool array array) array ->
  Rt_lattice.Depfun.t option
(** The raw exchange-law fold over [(summary, violations)] pairs:
    [None] if any part is inconsistent, otherwise
    [weaken_{∪ᵢ Vᵢ} (⊔ᵢ b1ᵢ)]. This is the cross-process merge
    primitive — [rtgen merge] feeds it companion blobs read from K
    separately-produced stores, and partition-shape independence makes
    the result byte-equal to the monolithic bound-1 model. Exact when
    each part is a bound-1 summary over a partition of the periods;
    parts produced at higher bounds fold to a conservative upper
    bound instead. *)

val fold_results : result array -> Rt_lattice.Depfun.t option
(** The exchange-law fold described above, over the shards' companion
    summaries: [None] if any shard came back inconsistent, otherwise
    the fused {!Rt_lattice.Depfun.lub_many} of every summary with the
    union violation matrix applied once at the end. *)

val fold_engines : Rt_engine.Engine.t array -> Rt_lattice.Depfun.t option
(** {!fold_results} over live engines: each engine contributes the LUB
    of its current hypotheses and its violation matrix. Exact — equal
    to the monolithic [d*(1)] — when the engines are bound-1 cores fed
    a partition (any partition, order irrelevant) of the trace's
    periods. The engines must have heuristic cores
    ([Engine.violations = Some]).
    @raise Invalid_argument on an exact-core engine or an empty
    array. *)

val learn :
  ?window:int ->
  ?pool:Rt_util.Domain_pool.t ->
  ?obs:Rt_obs.Registry.t ->
  bound:int ->
  shards:int ->
  Rt_trace.Trace.t ->
  outcome
(** Learn [trace] in [shards] contiguous period ranges and fold. With
    [pool], shards run on the pool's domains (each worker builds
    {e private} engines — the pool is not reentrant, so workers never
    touch it — and returns its results by value); without, they run
    sequentially. At [bound = 1] the main engine doubles as its own
    companion, so no duplicate work is done. With [obs], the fan-out
    and fold run inside ["shard.fanout"] / ["shard.fold"] spans,
    per-shard learn times land in a ["shard.worker_us"] histogram, and
    ["shard.shards"] / ["shard.periods"] / ["shard.messages"] counters
    are published — all recorded on the calling domain only.
    @raise Invalid_argument when [shards < 1] or [bound < 1]. *)

(** Round-robin sharded engine units for [--stream --shards K]: feed
    periods as they arrive, fold at end of stream. The fold is the
    same exchange-law fold as {!learn} — companion deltas commute, so
    the non-contiguous round-robin partition folds just as exactly. *)
module Stream : sig
  type t

  val create :
    ?window:int -> ntasks:int -> bound:int -> shards:int -> unit -> t
  (** [shards] units, each a main engine at [bound] plus its bound-1
      companion (shared when [bound = 1]).
      @raise Invalid_argument when [shards < 1] or [bound < 1]. *)

  val shards : t -> int

  val feed : t -> Rt_trace.Period.t -> unit
  (** Feed one period to the next unit in round-robin order. *)

  val periods_fed : t -> int

  val messages_fed : t -> int

  val hypotheses : t -> int
  (** Total hypotheses across the units' main engines (a progress
      figure, not a version space — the per-shard sets are not
      comparable across partitions). *)

  val parts : t -> (Rt_lattice.Depfun.t option * bool array array) array
  (** Each unit's [(companion summary, violation matrix)] pair — what
      a per-process learner publishes to a store for a later
      cross-process {!fold_summaries}. *)

  val fold : t -> Rt_lattice.Depfun.t option
  (** The folded model; [None] iff some unit saw an inconsistent
      period. *)
end
