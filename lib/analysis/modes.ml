module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun

(* Union-find over task indices. *)
let co_execution_classes d =
  let n = Df.size d in
  let parent = Array.init n Fun.id in
  let rec find x = if parent.(x) = x then x else (parent.(x) <- find parent.(x); parent.(x)) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  Df.iter_pairs (fun a b v ->
      if Dv.is_definite v && Dv.is_definite (Df.get d b a) then union a b)
    d;
  let classes = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let r = find i in
    Hashtbl.replace classes r (i :: Option.value ~default:[] (Hashtbl.find_opt classes r))
  done;
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) classes []
  |> List.sort (List.compare Int.compare)

let exclusive_pairs trace =
  let n = Rt_trace.Trace.task_count trace in
  let matrix = Rt_trace.Trace.executed_matrix trace in
  let ever = Array.make n false in
  let together = Array.make_matrix n n false in
  Array.iter (fun row ->
      for a = 0 to n - 1 do
        if row.(a) then begin
          ever.(a) <- true;
          for b = 0 to n - 1 do
            if row.(b) then together.(a).(b) <- true
          done
        end
      done)
    matrix;
  let acc = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto a + 1 do
      if ever.(a) && ever.(b) && not together.(a).(b) then acc := (a, b) :: !acc
    done
  done;
  !acc

let mode_alternatives d trace task =
  let succs =
    List.filter (fun b -> b <> task && Dv.equal (Df.get d task b) Dv.Fwd_maybe)
      (List.init (Df.size d) Fun.id)
  in
  let excl = exclusive_pairs trace in
  let exclusive a b = List.mem (min a b, max a b) excl in
  (* Greedy grouping: successors that are mutually exclusive with every
     member of a group belong to alternative groups. *)
  let rec place groups s =
    match groups with
    | [] -> [ [ s ] ]
    | g :: rest ->
      if List.for_all (fun m -> not (exclusive s m)) g then (s :: g) :: rest
      else g :: place rest s
  in
  List.fold_left place [] succs |> List.map List.rev
  |> List.sort (List.compare Int.compare)
