module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun

let select pred d a =
  let acc = ref [] in
  for b = Df.size d - 1 downto 0 do
    if b <> a && pred (Df.get d a b) then acc := b :: !acc
  done;
  !acc

let determines =
  select (function
    | Dv.Fwd | Dv.Bi -> true
    | Dv.Par | Dv.Bwd | Dv.Fwd_maybe | Dv.Bwd_maybe | Dv.Bi_maybe -> false)

let depends_on =
  select (function
    | Dv.Bwd | Dv.Bi -> true
    | Dv.Par | Dv.Fwd | Dv.Fwd_maybe | Dv.Bwd_maybe | Dv.Bi_maybe -> false)

let may_determine =
  select (function
    | Dv.Fwd_maybe | Dv.Bi_maybe -> true
    | Dv.Par | Dv.Fwd | Dv.Bwd | Dv.Bi | Dv.Bwd_maybe -> false)

let may_depend_on =
  select (function
    | Dv.Bwd_maybe | Dv.Bi_maybe -> true
    | Dv.Par | Dv.Fwd | Dv.Bwd | Dv.Bi | Dv.Fwd_maybe -> false)

let definite_edges d =
  List.rev
    (Df.fold_pairs (fun a b v acc -> if Dv.is_definite v then (a, b) :: acc else acc)
       d [])

let reduced_determines d =
  let n = Df.size d in
  let det = Array.make_matrix n n false in
  for a = 0 to n - 1 do
    List.iter (fun b -> det.(a).(b) <- true) (determines d a)
  done;
  (* Reachability from [src] through determines edges, avoiding the
     direct edge (src, dst) under test. *)
  let reachable_avoiding src dst =
    let seen = Array.make n false in
    let rec go v =
      if not seen.(v) then begin
        seen.(v) <- true;
        for w = 0 to n - 1 do
          if det.(v).(w) && not (v = src && w = dst) then go w
        done
      end
    in
    go src;
    fun b -> seen.(b)
  in
  let edges = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto 0 do
      if det.(a).(b) then begin
        (* Keep mutual pairs (co-execution classes) and non-redundant
           edges. *)
        let mutual = det.(b).(a) in
        let redundant = (not mutual) && reachable_avoiding a b b in
        if not redundant then edges := (a, b) :: !edges
      end
    done
  done;
  !edges

let name_of names i =
  match names with
  | Some a when i < Array.length a -> a.(i)
  | Some _ | None -> Printf.sprintf "t%d" (i + 1)

let to_dot ?names d =
  let n = Df.size d in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dependencies {\n  rankdir=TB;\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  %s;\n" (name_of names i))
  done;
  (* One rendered edge per unordered pair with any non-Par relation, in
     the style of the Fig. 5 legend. *)
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let vab = Df.get d a b and vba = Df.get d b a in
      if not (Dv.equal vab Dv.Par && Dv.equal vba Dv.Par) then begin
        (* Orient the arrow along the "determines/depends" direction:
           a -> b when a determines b or b depends on a. *)
        let fwdish = function Dv.Fwd | Dv.Fwd_maybe | Dv.Bi | Dv.Bi_maybe -> true
                            | Dv.Par | Dv.Bwd | Dv.Bwd_maybe -> false
        in
        let bwdish = function Dv.Bwd | Dv.Bwd_maybe | Dv.Bi | Dv.Bi_maybe -> true
                            | Dv.Par | Dv.Fwd | Dv.Fwd_maybe -> false
        in
        let src, dst, vsrc =
          if fwdish vab || bwdish vba then (a, b, vab) else (b, a, vba)
        in
        let style =
          if Dv.is_definite vsrc && Dv.is_definite (Df.get d dst src) then "solid"
          else if Dv.is_definite vsrc then "solid"
          else "dashed"
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s [style=%s, label=\"%s/%s\"];\n"
             (name_of names src) (name_of names dst) style
             (Dv.to_string (Df.get d src dst)) (Dv.to_string (Df.get d dst src)))
      end
    done
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let summary ?names d =
  let buf = Buffer.create 512 in
  Df.iter_pairs (fun a b v ->
      if not (Dv.equal v Dv.Par) then
        Buffer.add_string buf
          (Printf.sprintf "d(%s, %s) = %s\n" (name_of names a) (name_of names b)
             (Dv.to_string v)))
    d;
  Buffer.contents buf
