(* Work distribution is a single mutex-guarded round descriptor: a round
   publishes a [body] and a chunk counter, workers (and the caller) grab
   the next chunk index under the mutex and run it unlocked. Chunks are
   coarse (an index range, not an element), so the mutex is touched a few
   times per round and contention stays negligible next to the work. *)

type round = {
  body : int -> unit;
  chunks : int;
  mutable next : int;     (* next chunk index to hand out *)
  mutable running : int;  (* workers still inside this round *)
  mutable failure : exn option;  (* first exception, re-raised by caller *)
}

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t;     (* signalled when a round is published / shutdown *)
  done_ : Condition.t;    (* signalled when a round fully drains *)
  mutable current : round option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.jobs

(* Runs [r.body] on chunk indices until the round drains. Called with
   [t.m] held; returns with it held. *)
let participate t (r : round) =
  r.running <- r.running + 1;
  while r.next < r.chunks do
    let i = r.next in
    r.next <- r.next + 1;
    Mutex.unlock t.m;
    (match r.body i with
     | () -> Mutex.lock t.m
     | exception e ->
       Mutex.lock t.m;
       if r.failure = None then r.failure <- Some e;
       r.next <- r.chunks (* abandon the remaining chunks *))
  done;
  r.running <- r.running - 1;
  if r.running = 0 then Condition.broadcast t.done_

let worker t () =
  Mutex.lock t.m;
  let rec loop () =
    match t.current with
    | Some r when r.next < r.chunks -> participate t r; loop ()
    | Some _ | None ->
      if t.stop then Mutex.unlock t.m
      else begin Condition.wait t.work t.m; loop () end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    { jobs; m = Mutex.create (); work = Condition.create ();
      done_ = Condition.create (); current = None; stop = false;
      domains = [] }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  if jobs > 1 then
    at_exit (fun () ->
        (* Idempotent; releases the workers if the program never calls
           [shutdown] itself. *)
        Mutex.lock t.m;
        let live = not t.stop in
        t.stop <- true;
        Condition.broadcast t.work;
        Mutex.unlock t.m;
        if live then List.iter Domain.join t.domains);
  t

let shutdown t =
  Mutex.lock t.m;
  let live = not t.stop in
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  if live then List.iter Domain.join t.domains

let run t ~chunks body =
  if chunks > 0 then begin
    if t.jobs = 1 || chunks = 1 then
      for i = 0 to chunks - 1 do body i done
    else begin
      let r = { body; chunks; next = 0; running = 0; failure = None } in
      Mutex.lock t.m;
      if t.stop then begin
        Mutex.unlock t.m;
        invalid_arg "Domain_pool.run: pool is shut down"
      end;
      t.current <- Some r;
      Condition.broadcast t.work;
      participate t r;
      while r.running > 0 do Condition.wait t.done_ t.m done;
      t.current <- None;
      Mutex.unlock t.m;
      match r.failure with Some e -> raise e | None -> ()
    end
  end

let map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then Array.map f arr
  else begin
    let out = Array.make n None in
    (* A few chunks per domain balances load without descending into
       per-element locking. *)
    let chunks = min n (t.jobs * 4) in
    let per = (n + chunks - 1) / chunks in
    run t ~chunks (fun c ->
        let lo = c * per and hi = min n ((c + 1) * per) in
        for i = lo to hi - 1 do out.(i) <- Some (f arr.(i)) done);
    Array.map (function Some x -> x | None -> assert false) out
  end

let map_list t f l = Array.to_list (map t f (Array.of_list l))
