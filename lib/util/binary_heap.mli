(** Imperative binary min-heap, the event queue of the discrete-event
    simulator. Elements are ordered by a user-supplied comparison. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> capacity:int -> 'a t
(** Empty heap; [capacity] is an initial size hint. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Bottom-up heapify, O(n). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: all elements in ascending order. *)
