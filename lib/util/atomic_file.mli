(** Atomic whole-file writes: write to [path ^ ".tmp"], then rename over
    [path]. A reader (or a crash) never observes a truncated file — the
    rename is atomic on POSIX filesystems — which is what trace exports
    and learner checkpoints need to survive interruption. *)

val write : string -> string -> unit
(** [write path content] atomically replaces [path] with [content].
    The temporary file is removed on failure. Raises [Sys_error] as the
    underlying syscalls do. *)
