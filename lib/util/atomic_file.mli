(** Atomic whole-file writes: write to [path ^ ".tmp"], then rename over
    [path]. A reader (or a crash) never observes a truncated file — the
    rename is atomic on POSIX filesystems — which is what trace exports,
    learner checkpoints, and store objects need to survive interruption.

    This module is the single sanctioned owner of [open_out] /
    [Sys.rename] on persistence paths; rtlint rule RTL007 flags direct
    use anywhere else under [lib/] and [bin/] (outside [lib/store]). *)

val write : string -> string -> unit
(** [write path content] atomically replaces [path] with [content].
    The temporary file is removed on failure. Raises [Sys_error] as the
    underlying syscalls do. Equivalent to [commit ~tmp:(stage path
    content) path]. *)

val stage : string -> string -> string
(** [stage path content] durably writes [content] to the temporary
    sibling [path ^ ".tmp"] and returns that temporary path without
    touching [path]. A crash between [stage] and [commit] leaves the
    destination exactly as it was. The temporary file is removed if the
    write itself fails. *)

val commit : tmp:string -> string -> unit
(** [commit ~tmp path] atomically renames a staged temporary over
    [path]. Removes [tmp] on failure and re-raises. *)

val abort : tmp:string -> unit
(** [abort ~tmp] discards a staged temporary, ignoring a missing file. *)
