(* The one place in the tree allowed to open_out/Sys.rename persistence
   paths directly (rtlint RTL007 funnels everything else here). The
   stage/commit split exists so tests can stop a writer inside the
   crash window and observe that the destination is untouched. *)

let stage path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  tmp

let commit ~tmp path =
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let abort ~tmp = try Sys.remove tmp with Sys_error _ -> ()

let write path content = commit ~tmp:(stage path content) path
