(** A fixed pool of OCaml 5 domains with a chunked parallel map.

    Domains are expensive to spawn (~ms) while the learner's fan-out runs
    per message (~µs-ms), so the workers are spawned once and reused; each
    parallel call hands out contiguous index chunks to whichever worker is
    free, and the caller participates as a worker itself. Results are
    written at their input index, so the output never depends on domain
    scheduling — parallel runs are bit-for-bit reproducible. *)

type t

val create : jobs:int -> t
(** A pool executing on [max 1 jobs] domains in total (the caller counts
    as one, so [jobs - 1] workers are spawned). The workers are shut down
    automatically at program exit; [shutdown] releases them earlier. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], the sensible [-j 0] expansion. *)

val shutdown : t -> unit
(** Join all workers. The pool must not be used afterwards; idempotent. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] is [Array.map f arr] computed on all domains of the
    pool. [f] must be safe to run concurrently with itself (the learner's
    fan-out only reads its argument and allocates fresh hypotheses). The
    first exception raised by [f], if any, is re-raised in the caller. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val run : t -> chunks:int -> (int -> unit) -> unit
(** [run pool ~chunks body] executes [body 0 .. body (chunks - 1)],
    distributing chunk indices over the pool. The low-level primitive
    behind [map]; exposed for sweeps that fill preallocated result
    slots themselves. *)
