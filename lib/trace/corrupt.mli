(** Deterministic fault injection for traces: the testing counterpart
    of the [`Recover] ingestion path. Real CAN captures exhibit a small
    set of recurring damage patterns; this module reproduces each of
    them, driven by {!Rt_util.Pcg32} so a corruption run is exactly
    reproducible from its seed (exposed as [rtgen inject]).

    A corrupted period may no longer validate as a {!Period.t} — that
    is the point — so the result is a {e raw} trace: the task set plus
    plain event lists, which {!to_string} renders in the rtgen-trace
    text format for the loader to chew on. *)

type kind =
  | Drop_edge          (** each event vanishes with probability [rate] *)
  | Duplicate_edge     (** each event is logged twice with probability [rate] *)
  | Swap_order         (** adjacent events swap timestamps with probability [rate] *)
  | Truncate_tail      (** a period loses its tail with probability [rate] *)
  | Clock_skew         (** with probability [rate] per period, all bus-event
                           timestamps shift by a constant in [±eps] against the
                           task events (two free-running logger clocks) *)
  | Splice_garbage     (** a bogus event is inserted per slot with probability [rate] *)
  | Reorder_within_eps (** each timestamp jitters by up to [eps] with probability [rate] *)

val all_kinds : kind list
(** In declaration order — also the order corruptions are applied. *)

val kind_to_string : kind -> string
(** The CLI spelling: ["drop_edge"], ["duplicate_edge"], ... *)

val kind_of_string : string -> kind option

type spec = {
  kinds : kind list;  (** which corruptions to apply, in {!all_kinds} order *)
  rate : float;       (** per-event / per-period probability, in [0, 1] *)
  eps : int;          (** jitter magnitude for [Reorder_within_eps], us *)
  seed : int;         (** PRNG seed; equal specs produce equal corruption *)
}

val default : spec
(** All kinds, rate 0.05, eps 50, seed 42. *)

type raw = {
  task_set : Rt_task.Task_set.t;
  raw_periods : (int * Event.t list) list;  (** (index, events), unvalidated *)
}

val raw_of_trace : Trace.t -> raw

val apply : spec -> Trace.t -> raw
(** Corrupt every period. At [rate = 0.0] the output is event-for-event
    identical to the input (the property tests lean on this). *)

val to_string : raw -> string
(** Render in the rtgen-trace v1 text format ({!Trace_io}); the result
    may be rejected by a [`Strict] load — that is what [`Recover] mode
    is for. *)

val torn_write : at:int -> string -> string
(** The rendered trace truncated at byte offset [at] (clamped to the
    text length) — mid-line or mid-frame, exactly the artifact a writer
    killed between [write] and [fsync] leaves behind. Recover-mode
    ingestion must quarantine the torn tail and keep everything before
    it; [rtgen inject --torn-at] exposes this for the crash tests. *)

val save : string -> raw -> unit
(** Atomic write (tmp + rename), like {!Trace_io.save}. *)
