(** Streaming segmentation: cut a pull-based flat event stream into
    validated (or repaired) periods, one at a time, with memory bounded
    by a single period.

    This is the incremental core behind {!Trace.segment} and
    {!Trace.segment_recover}: the batch functions sort their event list
    by period index and drain a segmenter, so batch and streaming
    ingestion share one implementation and produce identical periods,
    errors and quarantine accounts. A live feed (simulator, bus tap)
    plugs an {!Event_source} in directly and never materializes more
    than the period currently being assembled.

    Events must arrive in nondecreasing period order (event at time [x]
    belongs to period [x / period_len]); within a period any order is
    accepted, exactly as the batch bucketing did. Empty periods cannot
    occur (a period exists only because an event mapped to it). Yielded
    periods are renumbered 0.. in arrival order — including invalid or
    dropped ones, which keep their slot — while errors and quarantine
    entries report the original time-based index, mirroring the batch
    behaviour. *)

type segment_error = {
  period_index : int;  (** original (pre-renumbering) period index *)
  error : Period.error;
}

type item =
  [ `Period of Period.t   (** a valid (or, in recover mode, repaired) period *)
  | `Invalid of segment_error  (** strict mode only: a malformed period *)
  ]

type t

val create :
  ?mode:[ `Strict | `Recover ] -> ?eps:int ->
  task_set:Rt_task.Task_set.t -> period_len:int -> Event_source.t -> t
(** [`Strict] (default) surfaces malformed periods as [`Invalid];
    [`Recover] repairs them with {!Repair} (tolerance [eps]) or drops
    them, recording either in the quarantine account. @raise
    Invalid_argument when [period_len <= 0]. *)

val next : t -> item option
(** The next period of the stream; [None] when the source is exhausted.
    @raise Invalid_argument if the source violates the nondecreasing
    period-order contract. *)

val quarantine : t -> Quarantine.t
(** Snapshot of the recover-mode account so far (kept, repaired and
    dropped periods by original index; never any skipped lines). In
    strict mode only [kept] moves. *)

val periods_seen : t -> int
(** Periods flushed so far, valid or not — the next period's new index. *)

val max_buffered : t -> int
(** High-water mark of events buffered at once — the memory bound. For a
    well-formed stream this is the size of the largest single period, no
    matter how long the stream runs. *)
