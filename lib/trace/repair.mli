(** Repair heuristics for damaged periods (the [`Recover] ingestion
    path). A real logging device drops edges, duplicates frames and
    timestamps two clocks against each other; {!Period.make} rightly
    rejects such periods, but rejecting is useless in production — the
    loader should salvage what the evidence still supports and report
    what it changed.

    The sanitizer is a single deterministic pass per signal stream
    (each task's start/end stream, each bus id's rise/fall stream):

    - a {e dangling} rising edge or task start (no matching fall/end
      before the period ends) is closed with a synthetic edge just
      after the last event — the frame/execution was real, only its
      tail was lost;
    - an {e orphan} falling edge or task end (no matching rise/start)
      is dropped — there is no evidence of when it began;
    - a {e nested} rising edge or repeated start/end (duplicated log
      entry) is dropped;
    - an inverted pair within [eps] microseconds (fall before its
      rise, end before its start) is re-ordered by swapping the two
      timestamps — two free-running clocks skew by small amounts, so a
      small inversion is far more likely mis-timestamping than a
      genuine orphan+dangling pair.

    Every change is reported as a {!fix} so the quarantine report can
    show exactly how synthetic a repaired period is. *)

type fix =
  | Closed_dangling_rise of int   (** bus id: synthesized falling edge *)
  | Dropped_orphan_fall of int    (** bus id *)
  | Dropped_nested_rise of int    (** bus id: duplicated rising edge *)
  | Closed_dangling_start of int  (** task: synthesized end *)
  | Dropped_orphan_end of int     (** task *)
  | Dropped_duplicate_start of int
  | Dropped_duplicate_end of int
  | Swapped_task_within_eps of int   (** task: end/start inversion undone *)
  | Swapped_edges_within_eps of int  (** bus id: fall/rise inversion undone *)
  | Dropped_unknown_task of int      (** task index out of range *)

val string_of_fix : fix -> string

val sanitize : ?eps:int -> ntasks:int -> Event.t list -> Event.t list * fix list
(** [sanitize ~ntasks events] returns a repaired event list (sorted with
    {!Event.compare}) that {!Period.make} accepts, plus the fixes
    applied in deterministic order (tasks ascending, then bus ids
    ascending). [eps] (default 0) is the clock-skew tolerance for the
    swap heuristic. [([], [])] on an empty input. *)

val period :
  ?eps:int -> index:int -> task_set:Rt_task.Task_set.t ->
  Event.t list -> (Period.t * fix list, Period.error) result
(** {!sanitize} then {!Period.make}. [Ok (p, [])] means the period was
    already clean. [Error _] cannot happen unless the sanitizer has a
    blind spot — callers should treat it as "drop this period". *)
