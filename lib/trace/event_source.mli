(** Pull-based event streams: the ingestion end of the streaming engine.

    A source yields timestamped {!Event.t} values one at a time until
    exhausted. Producers decide where the events come from — an
    in-memory list, a generator closure (a live simulator feed, a bus
    tap), or a lazily-read capture — and consumers such as
    {!Segmenter} never see more than they asked for, which is what
    bounds the memory of streaming ingestion. *)

type t

val next : t -> Event.t option
(** The next event, or [None] when the source is exhausted. Once [None]
    is returned every subsequent call returns [None]. *)

val of_list : Event.t list -> t
(** In-memory source; yields the list in order. *)

val of_fun : (unit -> Event.t option) -> t
(** Wrap a generator closure — e.g. a live simulator feed or a socket
    reader. The closure's [None] is latched: after the first [None] the
    underlying function is never called again, so generators need not be
    re-entrant past exhaustion. *)

val count : t -> int
(** Events handed out so far. *)
