(** A full execution trace: the instance set [I] of the learning problem.
    Periods are independent instances; their order is irrelevant to the
    learner but preserved for reporting. *)

type t = private {
  task_set : Rt_task.Task_set.t;
  periods : Period.t array;
}

val of_periods : task_set:Rt_task.Task_set.t -> Period.t list -> t
(** All periods must share [task_set]. *)

type segment_error = Segmenter.segment_error = {
  period_index : int;
  error : Period.error;
}

val segment :
  task_set:Rt_task.Task_set.t -> period_len:int -> Event.t list ->
  (t, segment_error list) result
(** Cut a flat timestamped event stream into periods of [period_len]
    microseconds (event at time [x] belongs to period [x / period_len]),
    re-basing each period at index 0..  A message whose edges straddle a
    boundary violates the model-of-computation assumption and is reported
    as an error. Empty periods are dropped. *)

val segment_recover :
  ?eps:int -> task_set:Rt_task.Task_set.t -> period_len:int ->
  Event.t list -> t * Quarantine.t
(** [segment] for messy streams: a period that fails validation is
    salvaged with {!Repair} (counted as repaired) or, if irreparable,
    dropped — never an error. The quarantine report accounts for every
    period by its original (pre-renumbering) index. [eps] is the
    clock-skew tolerance forwarded to {!Repair}. *)

val infer_period : Event.t list -> int option
(** Estimate the period length of a flat absolute-time event stream from
    the recurrence of task start events: for every task with at least
    three activations, take the median gap between consecutive starts,
    then the median over tasks. [None] when no task recurs enough.
    Robust to release jitter and to tasks that skip periods (their gaps
    are near-multiples of the true period and the median discards
    them). *)

val segment_auto :
  task_set:Rt_task.Task_set.t -> Event.t list ->
  (t * int, segment_error list) result
(** [segment] with an inferred period length (also returned). Errors with
    an empty list when no period could be inferred. *)

val periods : t -> Period.t list

val period_count : t -> int

val task_count : t -> int

val total_messages : t -> int

val total_events : t -> int

val executed_matrix : t -> bool array array
(** [executed_matrix t] is one row per period: which tasks executed. *)

val pp_summary : Format.formatter -> t -> unit
