module Pcg = Rt_util.Pcg32

type kind =
  | Drop_edge
  | Duplicate_edge
  | Swap_order
  | Truncate_tail
  | Clock_skew
  | Splice_garbage
  | Reorder_within_eps

let all_kinds =
  [ Drop_edge; Duplicate_edge; Swap_order; Truncate_tail; Clock_skew;
    Splice_garbage; Reorder_within_eps ]

let kind_to_string = function
  | Drop_edge -> "drop_edge"
  | Duplicate_edge -> "duplicate_edge"
  | Swap_order -> "swap_order"
  | Truncate_tail -> "truncate_tail"
  | Clock_skew -> "clock_skew"
  | Splice_garbage -> "splice_garbage"
  | Reorder_within_eps -> "reorder_within_eps"

let kind_of_string s =
  List.find_opt (fun k -> kind_to_string k = s) all_kinds

type spec = { kinds : kind list; rate : float; eps : int; seed : int }

let default = { kinds = all_kinds; rate = 0.05; eps = 50; seed = 42 }

type raw = {
  task_set : Rt_task.Task_set.t;
  raw_periods : (int * Event.t list) list;
}

let raw_of_trace (t : Trace.t) =
  {
    task_set = t.task_set;
    raw_periods =
      List.map (fun (p : Period.t) -> (p.index, p.events)) (Trace.periods t);
  }

(* Corruptions are applied in [all_kinds] order, period by period, off a
   single PRNG stream: a spec is a complete, reproducible description of
   the damage. Every draw is gated on [rate], so at rate 0.0 each
   transformation is the identity. *)
let apply spec (trace : Trace.t) =
  let rng = Pcg.of_int spec.seed in
  let rate = spec.rate and eps = max 0 spec.eps in
  let ntasks = Trace.task_count trace in
  let has k = List.mem k spec.kinds in
  let corrupt_period (p : Period.t) =
    let evs = ref p.events in
    if has Drop_edge then
      evs := List.filter (fun _ -> not (Pcg.chance rng rate)) !evs;
    if has Duplicate_edge then
      evs :=
        List.concat_map
          (fun e -> if Pcg.chance rng rate then [ e; e ] else [ e ])
          !evs;
    if has Swap_order then begin
      (* Swap the timestamps of adjacent events, inverting their causal
         order (the list order itself is immaterial — loaders sort). *)
      let a = Array.of_list !evs in
      for i = 0 to Array.length a - 2 do
        if Pcg.chance rng rate then begin
          let t = a.(i).Event.time in
          a.(i) <- { a.(i) with Event.time = a.(i + 1).Event.time };
          a.(i + 1) <- { a.(i + 1) with Event.time = t }
        end
      done;
      evs := Array.to_list a
    end;
    if has Truncate_tail && Pcg.chance rng rate then begin
      let n = List.length !evs in
      if n > 0 then begin
        let keep = Pcg.int rng n in
        evs := List.filteri (fun i _ -> i < keep) !evs
      end
    end;
    if has Clock_skew && Pcg.chance rng rate && eps > 0 then begin
      (* The bus logger and the ECU logger run on different clocks: shift
         every bus event against the task events by a period-constant
         offset. *)
      let shift = Pcg.int_in rng (-eps) eps in
      evs :=
        List.map
          (fun (e : Event.t) ->
             match e.kind with
             | Event.Msg_rise _ | Event.Msg_fall _ ->
               { e with Event.time = max 0 (e.time + shift) }
             | Event.Task_start _ | Event.Task_end _ -> e)
          !evs
    end;
    if has Splice_garbage then begin
      let top = 1 + List.fold_left (fun m (e : Event.t) -> max m e.time) 0 !evs in
      evs :=
        List.concat_map
          (fun e ->
             if Pcg.chance rng rate then begin
               let time = Pcg.int rng top in
               let kind =
                 match Pcg.int rng 4 with
                 | 0 -> Event.Msg_rise (0x700 + Pcg.int rng 256)
                 | 1 -> Event.Msg_fall (0x700 + Pcg.int rng 256)
                 | 2 -> Event.Task_start (Pcg.int rng ntasks)
                 | _ -> Event.Task_end (Pcg.int rng ntasks)
               in
               [ { Event.time; kind }; e ]
             end
             else [ e ])
          !evs
    end;
    if has Reorder_within_eps && eps > 0 then
      evs :=
        List.map
          (fun (e : Event.t) ->
             if Pcg.chance rng rate then
               { e with Event.time = max 0 (e.time + Pcg.int_in rng (-eps) eps) }
             else e)
          !evs;
    (p.index, !evs)
  in
  {
    task_set = trace.task_set;
    raw_periods = List.map corrupt_period (Trace.periods trace);
  }

let to_string raw =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# rtgen-trace v1\n";
  Buffer.add_string buf "tasks";
  Array.iter (fun n ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf n)
    (Rt_task.Task_set.names raw.task_set);
  Buffer.add_char buf '\n';
  List.iter (fun (index, events) ->
      Buffer.add_string buf (Printf.sprintf "period %d\n" index);
      List.iter (fun (e : Event.t) ->
          let line =
            match e.kind with
            | Event.Task_start i ->
              Printf.sprintf "%d start %s" e.time
                (Rt_task.Task_set.name raw.task_set i)
            | Event.Task_end i ->
              Printf.sprintf "%d end %s" e.time
                (Rt_task.Task_set.name raw.task_set i)
            | Event.Msg_rise m -> Printf.sprintf "%d rise 0x%x" e.time m
            | Event.Msg_fall m -> Printf.sprintf "%d fall 0x%x" e.time m
          in
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        events)
    raw.raw_periods;
  Buffer.contents buf

let torn_write ~at text =
  String.sub text 0 (max 0 (min at (String.length text)))

let save path raw = Rt_util.Atomic_file.write path (to_string raw)
