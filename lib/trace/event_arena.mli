(** Packed integer event storage: the zero-allocation ingest arena.

    Boxed {!Event.t} values cost three heap words per event (record +
    variant), which makes a million-event capture a GC workload before
    the learner sees a single period. This arena packs each event into
    one OCaml [int] —

    {v
      bits 62..61  kind tag   (0 start | 1 end | 2 rise | 3 fall)
      bits 60..41  identifier (task index or bus id, 20 bits)
      bits 40..0   timestamp  (microseconds, 41 bits ≈ 25 days)
    v}

    — stored in a C-layout [Bigarray] of native ints, so ingest appends
    are a bounds-checked store with no per-event allocation at all, and
    shard workers can read disjoint ranges of one shared arena without
    copying ([Bigarray] buffers are outside the OCaml heap, so reads
    from multiple domains are safe as long as the ranges are fixed
    before fan-out).

    [encode]/[decode] are exposed separately from the arena so the
    roundtrip law [decode (encode e) = e] can be property-tested over
    arbitrary event streams, including quarantined/repaired frames. *)

type t

val max_id : int
(** Largest encodable task index / bus identifier ([2^20 - 1]). *)

val max_time : int
(** Largest encodable timestamp ([2^41 - 1] microseconds). *)

val encode : Event.t -> int
(** Pack an event into one int. Raises [Invalid_argument] when the
    timestamp is negative or exceeds {!max_time}, or the identifier is
    negative or exceeds {!max_id}. *)

val decode : int -> Event.t
(** Unpack. Total on the image of [encode]: [decode (encode e) = e]. *)

val create : ?capacity:int -> unit -> t
(** Fresh empty arena. [capacity] is the initial backing-store size in
    events (default 4096); the arena doubles as needed. *)

val push : t -> Event.t -> unit
(** Append one event ([encode] + store; amortised O(1), no per-event
    heap allocation outside growth doublings). *)

val tag_start : int
val tag_end : int
val tag_rise : int
val tag_fall : int
(** The four kind tags, for callers using {!push_packed}. *)

val push_packed : t -> tag:int -> id:int -> time:int -> unit
(** Append from unboxed parts — the allocation-free ingest entry used by
    the mmap reader's scan loop, which never materialises an {!Event.t}.
    Same range checks as {!encode}; [tag] must be one of the four tag
    constants. *)

val length : t -> int
(** Number of events stored. *)

val get : t -> int -> Event.t
(** [get a i] decodes the [i]th event. Raises [Invalid_argument] when
    [i] is out of range. *)

val of_events : Event.t list -> t

val to_list : ?lo:int -> ?hi:int -> t -> Event.t list
(** Decode the range [\[lo, hi)] (defaults: the whole arena). *)

val source : ?lo:int -> ?hi:int -> t -> Event_source.t
(** A pull source decoding the range [\[lo, hi)] on demand — this is how
    an arena slots behind the streaming engine and how shard workers
    read their slice of a shared capture. *)
