type fix =
  | Closed_dangling_rise of int
  | Dropped_orphan_fall of int
  | Dropped_nested_rise of int
  | Closed_dangling_start of int
  | Dropped_orphan_end of int
  | Dropped_duplicate_start of int
  | Dropped_duplicate_end of int
  | Swapped_task_within_eps of int
  | Swapped_edges_within_eps of int
  | Dropped_unknown_task of int

let string_of_fix = function
  | Closed_dangling_rise m -> Printf.sprintf "closed dangling rise of 0x%x" m
  | Dropped_orphan_fall m -> Printf.sprintf "dropped orphan fall of 0x%x" m
  | Dropped_nested_rise m -> Printf.sprintf "dropped nested rise of 0x%x" m
  | Closed_dangling_start i -> Printf.sprintf "closed dangling start of task %d" i
  | Dropped_orphan_end i -> Printf.sprintf "dropped orphan end of task %d" i
  | Dropped_duplicate_start i -> Printf.sprintf "dropped duplicate start of task %d" i
  | Dropped_duplicate_end i -> Printf.sprintf "dropped duplicate end of task %d" i
  | Swapped_task_within_eps i ->
    Printf.sprintf "swapped inverted end/start of task %d" i
  | Swapped_edges_within_eps m ->
    Printf.sprintf "swapped inverted fall/rise of 0x%x" m
  | Dropped_unknown_task i -> Printf.sprintf "dropped events of unknown task %d" i

(* Per-task start/end state machine over the task's events in time
   order. A task executes at most once per period, so any start after
   the first and any end after the first completed one is a duplicate. *)
let fix_task_stream ~eps ~close_time task evs =
  let out = ref [] and fixes = ref [] in
  let emit e = out := e :: !out in
  let note f = fixes := f :: !fixes in
  let rec go state = function
    | [] ->
      if state = `Running then begin
        emit { Event.time = close_time; kind = Event.Task_end task };
        note (Closed_dangling_start task)
      end
    | (e : Event.t) :: rest ->
      (match e.kind, state with
       | Event.Task_start _, `Idle -> emit e; go `Running rest
       | Event.Task_start _, (`Running | `Done) ->
         note (Dropped_duplicate_start task); go state rest
       | Event.Task_end _, `Running -> emit e; go `Done rest
       | Event.Task_end _, `Done ->
         note (Dropped_duplicate_end task); go state rest
       | Event.Task_end _, `Idle ->
         (match rest with
          | ({ Event.kind = Event.Task_start _; time = t' } as s) :: rest'
            when t' > e.time && t' - e.time <= eps ->
            (* Small inversion: the two clocks skewed; swap timestamps.
               (At equal times the canonical event order already puts the
               end first, so a swap would change nothing — fall through
               to the orphan rule instead.) *)
            emit { s with Event.time = e.time };
            emit { e with Event.time = t' };
            note (Swapped_task_within_eps task);
            go `Done rest'
          | _ -> note (Dropped_orphan_end task); go state rest)
       | (Event.Msg_rise _ | Event.Msg_fall _), _ -> assert false)
  in
  go `Idle evs;
  (List.rev !out, List.rev !fixes)

(* Per-bus-id rise/fall pairing. Frames of the same id pair
   rise-to-next-fall and never nest on a serial bus. *)
let fix_msg_stream ~eps ~close_time id evs =
  let out = ref [] and fixes = ref [] in
  let emit e = out := e :: !out in
  let note f = fixes := f :: !fixes in
  let rec go opened = function
    | [] ->
      if opened then begin
        emit { Event.time = close_time; kind = Event.Msg_fall id };
        note (Closed_dangling_rise id)
      end
    | (e : Event.t) :: rest ->
      (match e.kind, opened with
       | Event.Msg_rise _, false -> emit e; go true rest
       | Event.Msg_rise _, true ->
         note (Dropped_nested_rise id); go opened rest
       | Event.Msg_fall _, true -> emit e; go false rest
       | Event.Msg_fall _, false ->
         (match rest with
          | ({ Event.kind = Event.Msg_rise _; time = t' } as r) :: rest'
            when t' > e.time && t' - e.time <= eps ->
            emit { r with Event.time = e.time };
            emit { e with Event.time = t' };
            note (Swapped_edges_within_eps id);
            go false rest'
          | _ -> note (Dropped_orphan_fall id); go opened rest)
       | (Event.Task_start _ | Event.Task_end _), _ -> assert false)
  in
  go false evs;
  (List.rev !out, List.rev !fixes)

let sanitize ?(eps = 0) ~ntasks events =
  let events = List.sort Event.compare events in
  let close_time =
    1 + List.fold_left (fun m (e : Event.t) -> max m e.time) 0 events
  in
  let task_streams : (int, Event.t list) Hashtbl.t = Hashtbl.create 8 in
  let msg_streams : (int, Event.t list) Hashtbl.t = Hashtbl.create 8 in
  let unknown = ref [] in
  let push tbl k e =
    Hashtbl.replace tbl k (e :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  List.iter (fun (e : Event.t) ->
      match e.kind with
      | Event.Task_start i | Event.Task_end i ->
        if i < 0 || i >= ntasks then begin
          if not (List.mem i !unknown) then unknown := i :: !unknown
        end
        else push task_streams i e
      | Event.Msg_rise m | Event.Msg_fall m -> push msg_streams m e)
    events;
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare in
  let out = ref [] and fixes = ref [] in
  List.iter (fun i -> fixes := Dropped_unknown_task i :: !fixes)
    (List.sort Int.compare (List.rev !unknown));
  List.iter (fun i ->
      let evs, fxs =
        fix_task_stream ~eps ~close_time i (List.rev (Hashtbl.find task_streams i))
      in
      out := List.rev_append evs !out;
      fixes := List.rev_append fxs !fixes)
    (keys task_streams);
  List.iter (fun m ->
      let evs, fxs =
        fix_msg_stream ~eps ~close_time m (List.rev (Hashtbl.find msg_streams m))
      in
      out := List.rev_append evs !out;
      fixes := List.rev_append fxs !fixes)
    (keys msg_streams);
  (List.sort Event.compare (List.rev !out), List.rev !fixes)

let period ?eps ~index ~task_set events =
  let events, fixes =
    sanitize ?eps ~ntasks:(Rt_task.Task_set.size task_set) events
  in
  match Period.make ~index ~task_set events with
  | Ok p -> Ok (p, fixes)
  | Error _ as e -> e
