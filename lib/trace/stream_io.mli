(** Incremental parsing of the rtgen-trace v1 text format: the streaming
    twin of {!Trace_io}.

    A parser pulls lines one at a time from a {!line_source} and yields
    each period as soon as its closing boundary (the next [period] line
    or end of input) is seen, holding only the period under construction
    in memory. {!Trace_io.of_string} is a thin wrapper that drains one of
    these over an in-memory string, so batch and streaming parses share
    one implementation and agree byte-for-byte on periods, errors and
    quarantine accounting.

    Line sources never materialize the input: {!lines_of_channel} reads
    a pipe or file as it goes, and {!follow_lines} tails a growing file,
    which is what [rtgen watch] and [rtgen learn --stream] sit on. *)

type line_source = unit -> string option
(** The next raw line (without its newline), or [None] at end of input.
    Once [None] is returned the parser never calls the source again. *)

val lines_of_string : string -> line_source
(** Split on ['\n'], exactly as the batch loader did (a trailing newline
    yields a final empty line). *)

val lines_of_channel : in_channel -> line_source
(** Read lines as they become available; blocks with the channel. The
    channel is not closed on exhaustion — the caller owns it. *)

val follow_lines :
  ?poll_interval:float -> stop:(unit -> bool) -> in_channel -> line_source
(** [tail -f] over a growing file: at end of file, sleep [poll_interval]
    seconds (default 0.05) and retry until [stop ()] is true, then yield
    any final partial line and end. Lines are assembled byte-by-byte so
    a half-written line is never handed out early. Bound to one open
    channel, so it cannot survive log rotation — use {!follow_path} for
    a path-tracking follower. *)

(** The non-blocking core of path following: one {!Tail.step} yields at
    most one line and never sleeps, so a single-threaded daemon can
    multiplex hundreds of tails. Detects log rotation (the path's
    device/inode changed), truncation (the file shrank below the read
    position) and disappearance, reopening as needed. [rtgen watch
    --follow] and the [rtgend] spool follower share this logic. *)
module Tail : sig
  type event =
    | Line of string  (** a complete line (newline seen) *)
    | Opened          (** the path was (re)opened; reading starts at 0 *)
    | Waiting         (** at end of data; the same file may still grow *)
    | Rotated
    (** the path now names a different inode: the old file's final
        partial line (if any) was yielded as a [Line] just before this,
        and the next step reopens the new file *)
    | Truncated
    (** the file shrank below the read position: the partial line is
        discarded and the next step reopens from the start *)
    | Vanished        (** the path does not exist (yet, or mid-rotation) *)

  type t

  val create : string -> t
  (** No I/O happens until the first {!step}. *)

  val step : t -> event

  val pending : t -> string option
  (** Take the partial line under assembly, if any — the final flush
      when a follower decides the writer is gone for good. *)

  val close : t -> unit
end

val follow_path :
  ?poll_interval:float -> ?max_backoff:float ->
  ?on_event:(Tail.event -> unit) -> stop:(unit -> bool) ->
  string -> line_source
(** {!follow_lines} by path, surviving rotation and truncation: lines
    keep flowing across a logrotate-style rename or a copytruncate
    shrink, and a missing file is retried with exponential backoff
    capped at [max_backoff] (default 1s) instead of failing. When
    [stop ()] becomes true the follower yields any final partial line
    and ends. [on_event] observes the non-line transitions the follower
    absorbs ([Opened], [Rotated], [Truncated]) — e.g. to route them
    into a flight recorder. *)

type parse_error = { line : int; message : string }

type mode = [ `Strict | `Recover ]

type t

val create : ?mode:mode -> ?eps:int -> line_source -> t
(** [`Strict] (default) fails on the first malformed line or period;
    [`Recover] skips and repairs, filling the quarantine account. [eps]
    is the clock-skew tolerance forwarded to {!Repair}. *)

val next : t -> (Period.t option, parse_error) result
(** The next period of the stream; [Ok None] at end of input. Both end
    of input and errors are latched: subsequent calls return the same
    answer. A stream that ends before any [tasks] line is an error even
    in recover mode — there is nothing to parse events against. *)

val task_set : t -> Rt_task.Task_set.t option
(** The task set, once its header line has been parsed. *)

val quarantine : t -> Quarantine.t
(** Snapshot of the account so far; grows as the stream is consumed. *)

val lines_read : t -> int
(** Lines pulled from the source so far. *)
