(* Filters run over the period's precomputed executed-index array — the
   seed allocated [List.init (task count) Fun.id] afresh for every
   message, for every learner step, which dominated the profile on large
   bounds. [Array.fold_right] builds each result list in ascending order
   without an intermediate list. *)
let filter_executed pred (p : Period.t) =
  Array.fold_right (fun i acc -> if pred i then i :: acc else acc)
    p.executed_ix []

let senders ?(slack = 0) ?window (p : Period.t) (m : Period.msg) =
  let lo = match window with None -> min_int | Some w -> m.rise - w in
  filter_executed
    (fun i -> p.end_time.(i) <= m.rise + slack && p.end_time.(i) >= lo)
    p

let receivers ?(slack = 0) ?window (p : Period.t) (m : Period.msg) =
  let hi = match window with None -> max_int | Some w -> m.fall + w in
  filter_executed
    (fun i -> p.start_time.(i) + slack >= m.fall && p.start_time.(i) <= hi)
    p

let pairs ?slack ?window ?hist p m =
  let ss = senders ?slack ?window p m and rs = receivers ?slack ?window p m in
  let out =
    List.concat_map (fun s ->
        List.filter_map (fun r -> if s = r then None else Some (s, r)) rs)
      ss
  in
  (match hist with
   | Some h -> Rt_obs.Histogram.record h (List.length out)
   | None -> ());
  out

let pair_count ?slack ?window p =
  Array.fold_left (fun acc m -> acc + List.length (pairs ?slack ?window p m))
    0 p.Period.msgs

let unexplained ?slack ?window (p : Period.t) =
  let bad = ref [] in
  Array.iter (fun (m : Period.msg) ->
      if pairs ?slack ?window p m = [] then bad := m.bus_id :: !bad)
    p.msgs;
  List.rev !bad
