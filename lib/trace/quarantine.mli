(** The quarantine report of a [`Recover]-mode ingestion: everything the
    loader skipped, repaired or dropped instead of raising. Real CAN
    captures are messy — truncated logs, duplicated frames, missing
    edges — and a production ingest path must degrade gracefully while
    telling the analyst exactly how much evidence was lost.

    A report is assembled by {!Trace_io} and {!Trace.segment_recover}
    and consumed by [rtgen learn --mode recover] / [rtgen analyze]:
    dropped periods shrink the instance set, so the learned model's
    confidence degrades with the drop fraction. *)

type line_issue = {
  line : int;        (** 1-based line number in the source file *)
  message : string;
}

type period_repair = {
  period_index : int;
  fixes : string list;  (** human-readable, from {!Repair.string_of_fix} *)
}

type period_drop = {
  period_index : int;
  reason : string;
}

type t = {
  skipped_lines : line_issue list;   (** in file order *)
  kept : int;                        (** periods ingested untouched *)
  repaired : period_repair list;     (** in trace order *)
  dropped : period_drop list;        (** in trace order *)
}

val empty : t

val is_empty : t -> bool
(** No skipped lines, no repairs, no drops — the input was pristine
    (regardless of how many periods were kept). *)

val periods_seen : t -> int
(** [kept + repaired + dropped]. *)

val confidence : t -> float
(** Fraction of evidence the learner actually saw: kept periods count
    1, repaired periods 1/2 (their timing is partly synthetic), dropped
    periods 0. [1.0] when no period was seen at all (nothing to
    distrust). *)

val merge : t -> t -> t
(** Concatenate two reports (line issues and period lists appended,
    counters summed). *)

val summary : t -> string
(** One line: ["quarantine: 24 kept, 2 repaired, 1 dropped, 3 lines skipped (confidence 0.87)"]. *)

val to_string : t -> string
(** Full multi-line report: the summary plus one line per skipped line,
    repair and drop. *)

val pp : Format.formatter -> t -> unit
