(** Zero-copy strict trace reader.

    {!Trace_io.load} reads the whole file into a string, splits it into
    line strings, splits those into token strings, and conses a boxed
    {!Event.t} per event — four transient heap objects per input line
    before the learner sees anything. This reader instead [mmap]s the
    file and scans the mapped bytes in place: keywords are compared
    against the buffer directly, timestamps and identifiers are parsed
    off the raw bytes, and events are appended to a packed
    {!Event_arena.t} without ever constructing an [Event.t]. Substrings
    are allocated only for task names (once per file) and error
    messages.

    Parsing semantics are {e exactly} those of a strict-mode
    {!Stream_io} over {!Stream_io.lines_of_string} — same accepted
    inputs, same error messages, same line numbers — which is enforced
    by parity tests; the CLI uses this reader for strict batch loads
    and falls back to {!Trace_io.load} only on {!is_range_error}. The
    one divergence: events whose timestamp or identifier exceed the
    packed encoding's range ({!Event_arena.max_time} /
    {!Event_arena.max_id}) are refused with a range error rather than
    stored boxed. Recover mode is out of scope — repair works on boxed
    periods anyway. *)

type t = private {
  trace : Trace.t;          (** the validated trace, as {!Trace_io.load} *)
  arena : Event_arena.t;    (** every event of [trace], packed, in file order *)
  marks : (int * int * int) array;
      (** one [(period_index, lo, hi)] per kept period: the arena range
          [\[lo, hi)] holding its events — the handle shard workers use
          to re-read slices without re-parsing. *)
}

val load :
  ?obs:Rt_obs.Registry.t -> string ->
  (t * Quarantine.t, Stream_io.parse_error) result
(** Strict load from a file path. The quarantine report is the strict
    one ([kept] count only). With [obs], runs inside an
    ["ingest.parse"] span and publishes the same ["ingest.*"] counters
    as {!Trace_io.load}, so metrics sidecars are path-independent. *)

val is_range_error : Stream_io.parse_error -> bool
(** [true] for the packed-range refusal described above — the caller's
    cue to retry with the boxed loader. *)

val source : ?lo:int -> ?hi:int -> t -> Event_source.t
(** Pull events back out of the arena (range in {e event} indices, as
    recorded in [marks]); decodes on demand. *)
