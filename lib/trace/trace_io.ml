let header = "# rtgen-trace v1"

let to_string (t : Trace.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "tasks";
  Array.iter (fun n ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf n)
    (Rt_task.Task_set.names t.task_set);
  Buffer.add_char buf '\n';
  List.iter (fun (p : Period.t) ->
      Buffer.add_string buf (Printf.sprintf "period %d\n" p.index);
      List.iter (fun (e : Event.t) ->
          let line =
            match e.kind with
            | Event.Task_start i ->
              Printf.sprintf "%d start %s" e.time (Rt_task.Task_set.name t.task_set i)
            | Event.Task_end i ->
              Printf.sprintf "%d end %s" e.time (Rt_task.Task_set.name t.task_set i)
            | Event.Msg_rise m -> Printf.sprintf "%d rise 0x%x" e.time m
            | Event.Msg_fall m -> Printf.sprintf "%d fall 0x%x" e.time m
          in
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        p.events)
    (Trace.periods t);
  Buffer.contents buf

let output oc t = Stdlib.output_string oc (to_string t)

let save path t = Rt_util.Atomic_file.write path (to_string t)

type parse_error = Stream_io.parse_error = { line : int; message : string }

type mode = Stream_io.mode

(* Quarantine tallies are published with [set_counter] (overwrite, not
   add): each ingestion stage re-states the whole account, so the last
   stage to run — [semantic_filter] when the recover pipeline uses it —
   owns the final numbers. *)
let publish_quarantine_to r (q : Quarantine.t) =
  let set = Rt_obs.Registry.set_counter r in
  set "ingest.lines_skipped" (List.length q.skipped_lines);
  set "ingest.periods_kept" q.kept;
  set "ingest.periods_repaired" (List.length q.repaired);
  set "ingest.periods_dropped" (List.length q.dropped)

let publish_quarantine obs (q : Quarantine.t) =
  match obs with
  | None -> ()
  | Some r -> publish_quarantine_to r q

(* Batch parsing drains the incremental {!Stream_io} parser over an
   in-memory string: one implementation serves both this path and the
   live [--stream]/[watch] paths, so they cannot disagree. *)
let of_string_body ~mode ?eps s =
  let p = Stream_io.create ~mode ?eps (Stream_io.lines_of_string s) in
  let rec drain acc =
    match Stream_io.next p with
    | Ok (Some period) -> drain (period :: acc)
    | Ok None ->
      let ts = Option.get (Stream_io.task_set p) in
      Ok (Trace.of_periods ~task_set:ts (List.rev acc), Stream_io.quarantine p)
    | Error e -> Error e
  in
  drain []

let of_string ?(mode = `Strict) ?eps ?obs s =
  (match obs with
   | Some r -> Rt_obs.Registry.span_begin r "ingest.parse"
   | None -> ());
  let res = of_string_body ~mode ?eps s in
  (match obs with
   | Some r ->
     (match res with Ok (_, q) -> publish_quarantine obs q | Error _ -> ());
     Rt_obs.Registry.span_end r
   | None -> ());
  res

let of_string_exn s =
  match of_string s with
  | Ok (t, _) -> t
  | Error e ->
    invalid_arg (Printf.sprintf "Trace_io.of_string_exn: line %d: %s" e.line e.message)

let load ?mode ?eps ?obs path =
  let ic = open_in path in
  let content =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  of_string ?mode ?eps ?obs content

(* A structurally valid period can still be semantically hopeless: a
   message with an empty candidate set A_m collapses the learner's
   hypothesis set to the empty set (paper §3.1). Excising just that
   message's edges cannot invalidate the others — candidate sets depend
   only on task times — so we cut the bad frames and re-validate, and
   drop the period only if that fails. *)
let salvage_period ?window (p : Period.t) =
  let bad_msgs =
    Array.to_list p.msgs
    |> List.filter (fun m -> Candidates.pairs ?window p m = [])
  in
  if bad_msgs = [] then `Clean
  else begin
    (* Within a valid period, edges of a given bus id never overlap, so
       (id, time) identifies each bad edge uniquely. *)
    let is_bad (e : Event.t) =
      match e.kind with
      | Event.Msg_rise id ->
        List.exists (fun (m : Period.msg) -> m.bus_id = id && m.rise = e.time)
          bad_msgs
      | Event.Msg_fall id ->
        List.exists (fun (m : Period.msg) -> m.bus_id = id && m.fall = e.time)
          bad_msgs
      | Event.Task_start _ | Event.Task_end _ -> false
    in
    let events = List.filter (fun e -> not (is_bad e)) p.events in
    match Period.make ~index:p.index ~task_set:p.task_set events with
    | Ok p' when Candidates.unexplained ?window p' = [] ->
      `Excised (p', List.length bad_msgs)
    | Ok _ | Error _ -> `Dropped
  end

(* Fold the salvage outcomes back into the quarantine account: excised
   periods become (or extend) repair entries, unsalvageable ones become
   drops, and the kept count gives up the periods that were clean before
   salvage touched them. Shared verbatim between [semantic_filter] and
   the streaming ingest path, so their accounts cannot diverge. *)
let salvage_account (q : Quarantine.t) ~excised ~dropped_idx =
  if excised = [] && dropped_idx = [] then q
  else begin
    let was_repaired i =
      List.exists
        (fun (r : Quarantine.period_repair) -> r.period_index = i)
        q.repaired
    in
    let touched = List.map fst excised @ dropped_idx in
    let clean_touched =
      List.length (List.filter (fun i -> not (was_repaired i)) touched)
    in
    let fix_of (i, n) =
      match
        List.find_opt
          (fun (r : Quarantine.period_repair) -> r.period_index = i)
          q.repaired
      with
      | Some r ->
        { r with
          Quarantine.fixes =
            r.fixes @ [ Printf.sprintf "excised %d inexplicable frame(s)" n ] }
      | None ->
        { Quarantine.period_index = i;
          fixes = [ Printf.sprintf "excised %d inexplicable frame(s)" n ] }
    in
    { q with
      Quarantine.kept = q.kept - clean_touched;
      repaired =
        List.filter
          (fun (r : Quarantine.period_repair) ->
             not (List.mem r.period_index touched))
          q.repaired
        @ List.map fix_of excised;
      dropped =
        q.dropped
        @ List.map
            (fun i ->
               { Quarantine.period_index = i;
                 reason = "message with no admissible sender/receiver" })
            dropped_idx;
    }
  end

let publish_salvage r (q : Quarantine.t) ~frames_excised =
  Rt_obs.Registry.set_counter r "ingest.frames_excised" frames_excised;
  publish_quarantine (Some r) q

let semantic_filter ?window ?obs (trace : Trace.t) (q : Quarantine.t) =
  let good = ref [] and excised = ref [] and dropped = ref [] in
  List.iter (fun (p : Period.t) ->
      match salvage_period ?window p with
      | `Clean -> good := p :: !good
      | `Excised (p', n) ->
        good := p' :: !good;
        excised := (p'.Period.index, n) :: !excised
      | `Dropped -> dropped := p.index :: !dropped)
    (Trace.periods trace);
  let excised = List.rev !excised and dropped_idx = List.rev !dropped in
  let untouched = excised = [] && dropped_idx = [] in
  let q = salvage_account q ~excised ~dropped_idx in
  (match obs with
   | None -> ()
   | Some r ->
     publish_salvage r q
       ~frames_excised:(List.fold_left (fun a (_, n) -> a + n) 0 excised));
  if untouched then (trace, q)
  else (Trace.of_periods ~task_set:trace.task_set (List.rev !good), q)
