let header = "# rtgen-trace v1"

let to_string (t : Trace.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "tasks";
  Array.iter (fun n ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf n)
    (Rt_task.Task_set.names t.task_set);
  Buffer.add_char buf '\n';
  List.iter (fun (p : Period.t) ->
      Buffer.add_string buf (Printf.sprintf "period %d\n" p.index);
      List.iter (fun (e : Event.t) ->
          let line =
            match e.kind with
            | Event.Task_start i ->
              Printf.sprintf "%d start %s" e.time (Rt_task.Task_set.name t.task_set i)
            | Event.Task_end i ->
              Printf.sprintf "%d end %s" e.time (Rt_task.Task_set.name t.task_set i)
            | Event.Msg_rise m -> Printf.sprintf "%d rise 0x%x" e.time m
            | Event.Msg_fall m -> Printf.sprintf "%d fall 0x%x" e.time m
          in
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        p.events)
    (Trace.periods t);
  Buffer.contents buf

let output oc t = Stdlib.output_string oc (to_string t)

let save path t = Rt_util.Atomic_file.write path (to_string t)

type parse_error = { line : int; message : string }

type mode = [ `Strict | `Recover ]

(* Quarantine tallies are published with [set_counter] (overwrite, not
   add): each ingestion stage re-states the whole account, so the last
   stage to run — [semantic_filter] when the recover pipeline uses it —
   owns the final numbers. *)
let publish_quarantine obs (q : Quarantine.t) =
  match obs with
  | None -> ()
  | Some r ->
    let set = Rt_obs.Registry.set_counter r in
    set "ingest.lines_skipped" (List.length q.skipped_lines);
    set "ingest.periods_kept" q.kept;
    set "ingest.periods_repaired" (List.length q.repaired);
    set "ingest.periods_dropped" (List.length q.dropped)

let of_string_body ~mode ?eps s =
  let strict = mode = `Strict in
  let lines = String.split_on_char '\n' s in
  let exception Fail of parse_error in
  let fail line message = raise (Fail { line; message }) in
  (* Quarantine accumulators (all stay empty in strict mode except the
     kept count). *)
  let skipped = ref [] and repaired = ref [] and dropped = ref [] in
  let kept = ref 0 in
  (* A malformed line is fatal in strict mode, a diagnostic in recover
     mode. *)
  let skip_line line message =
    if strict then fail line message
    else skipped := { Quarantine.line; message } :: !skipped
  in
  let task_set = ref None in
  let periods = ref [] in
  let cur_index = ref None and cur_events = ref [] in
  let flush_period lineno =
    match !cur_index with
    | None -> ()
    | Some index ->
      (match !task_set with
       | None ->
         if strict then fail lineno "period before tasks line"
         else
           dropped :=
             { Quarantine.period_index = index; reason = "before tasks line" }
             :: !dropped
       | Some ts ->
         let events = List.rev !cur_events in
         if strict then
           (match Period.make ~index ~task_set:ts events with
            | Ok p -> periods := p :: !periods; incr kept
            | Error e ->
              fail lineno
                (Printf.sprintf "invalid period %d: %s" index
                   (Period.string_of_error e)))
         else
           (match Repair.period ?eps ~index ~task_set:ts events with
            | Ok (p, []) -> periods := p :: !periods; incr kept
            | Ok (p, fixes) ->
              periods := p :: !periods;
              repaired :=
                { Quarantine.period_index = index;
                  fixes = List.map Repair.string_of_fix fixes }
                :: !repaired
            | Error e ->
              dropped :=
                { Quarantine.period_index = index;
                  reason = Period.string_of_error e }
                :: !dropped));
      cur_index := None;
      cur_events := []
  in
  (* Line-level parse helpers signal with [Not_found]-style local
     exceptions so that recover mode can skip just the line. *)
  let exception Bad_line of string in
  let parse_msg_id tok =
    match int_of_string_opt tok with
    | Some m -> m
    | None -> raise (Bad_line ("bad message id: " ^ tok))
  in
  let parse_task tok =
    match !task_set with
    | None -> raise (Bad_line "event before tasks line")
    | Some ts ->
      (match Rt_task.Task_set.index ts tok with
       | Some i -> i
       | None -> raise (Bad_line ("unknown task: " ^ tok)))
  in
  try
    List.iteri (fun i raw ->
        let lineno = i + 1 in
        let line = String.trim raw in
        if line = "" || String.length line > 0 && line.[0] = '#' then ()
        else
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | "tasks" :: names ->
            if !task_set <> None then skip_line lineno "duplicate tasks line"
            else if names = [] then skip_line lineno "tasks line without names"
            else
              (match Rt_task.Task_set.of_names (Array.of_list names) with
               | ts -> task_set := Some ts
               | exception Invalid_argument m -> skip_line lineno m)
          | [ "period"; idx ] ->
            flush_period lineno;
            (match int_of_string_opt idx with
             | Some n -> cur_index := Some n
             | None -> skip_line lineno ("bad period index: " ^ idx))
          | [ time; verb; arg ] ->
            (match
               if !cur_index = None then
                 raise (Bad_line "event before a period line")
               else begin
                 let time =
                   match int_of_string_opt time with
                   | Some t when t >= 0 -> t
                   | Some _ -> raise (Bad_line "negative timestamp")
                   | None -> raise (Bad_line ("bad timestamp: " ^ time))
                 in
                 let kind =
                   match verb with
                   | "start" -> Event.Task_start (parse_task arg)
                   | "end" -> Event.Task_end (parse_task arg)
                   | "rise" -> Event.Msg_rise (parse_msg_id arg)
                   | "fall" -> Event.Msg_fall (parse_msg_id arg)
                   | _ -> raise (Bad_line ("unknown event kind: " ^ verb))
                 in
                 { Event.time; kind }
               end
             with
             | e -> cur_events := e :: !cur_events
             | exception Bad_line m -> skip_line lineno m)
          | _ -> skip_line lineno ("unparseable line: " ^ line))
      lines;
    flush_period (List.length lines);
    (match !task_set with
     | None -> fail (List.length lines) "missing tasks line"
     | Some ts ->
       let q =
         { Quarantine.skipped_lines = List.rev !skipped;
           kept = !kept;
           repaired = List.rev !repaired;
           dropped = List.rev !dropped }
       in
       Ok (Trace.of_periods ~task_set:ts (List.rev !periods), q))
  with Fail e -> Error e

let of_string ?(mode = `Strict) ?eps ?obs s =
  (match obs with
   | Some r -> Rt_obs.Registry.span_begin r "ingest.parse"
   | None -> ());
  let res = of_string_body ~mode ?eps s in
  (match obs with
   | Some r ->
     (match res with Ok (_, q) -> publish_quarantine obs q | Error _ -> ());
     Rt_obs.Registry.span_end r
   | None -> ());
  res

let of_string_exn s =
  match of_string s with
  | Ok (t, _) -> t
  | Error e ->
    invalid_arg (Printf.sprintf "Trace_io.of_string_exn: line %d: %s" e.line e.message)

let load ?mode ?eps ?obs path =
  let ic = open_in path in
  let content =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  of_string ?mode ?eps ?obs content

(* A structurally valid period can still be semantically hopeless: a
   message with an empty candidate set A_m collapses the learner's
   hypothesis set to the empty set (paper §3.1). Excising just that
   message's edges cannot invalidate the others — candidate sets depend
   only on task times — so we cut the bad frames and re-validate, and
   drop the period only if that fails. *)
let semantic_filter ?window ?obs (trace : Trace.t) (q : Quarantine.t) =
  let salvage (p : Period.t) =
    let bad_msgs =
      Array.to_list p.msgs
      |> List.filter (fun m -> Candidates.pairs ?window p m = [])
    in
    if bad_msgs = [] then `Clean
    else begin
      (* Within a valid period, edges of a given bus id never overlap, so
         (id, time) identifies each bad edge uniquely. *)
      let is_bad (e : Event.t) =
        match e.kind with
        | Event.Msg_rise id ->
          List.exists (fun (m : Period.msg) -> m.bus_id = id && m.rise = e.time)
            bad_msgs
        | Event.Msg_fall id ->
          List.exists (fun (m : Period.msg) -> m.bus_id = id && m.fall = e.time)
            bad_msgs
        | Event.Task_start _ | Event.Task_end _ -> false
      in
      let events = List.filter (fun e -> not (is_bad e)) p.events in
      match Period.make ~index:p.index ~task_set:p.task_set events with
      | Ok p' when Candidates.unexplained ?window p' = [] ->
        `Excised (p', List.length bad_msgs)
      | Ok _ | Error _ -> `Dropped
    end
  in
  let good = ref [] and excised = ref [] and dropped = ref [] in
  List.iter (fun (p : Period.t) ->
      match salvage p with
      | `Clean -> good := p :: !good
      | `Excised (p', n) ->
        good := p' :: !good;
        excised := (p'.Period.index, n) :: !excised
      | `Dropped -> dropped := p.index :: !dropped)
    (Trace.periods trace);
  let publish_excised q total =
    match obs with
    | None -> ()
    | Some r ->
      Rt_obs.Registry.set_counter r "ingest.frames_excised" total;
      publish_quarantine obs q
  in
  if !excised = [] && !dropped = [] then begin
    publish_excised q 0;
    (trace, q)
  end
  else begin
    let excised = List.rev !excised and dropped_idx = List.rev !dropped in
    let was_repaired i =
      List.exists
        (fun (r : Quarantine.period_repair) -> r.period_index = i)
        q.repaired
    in
    let touched = List.map fst excised @ dropped_idx in
    let clean_touched =
      List.length (List.filter (fun i -> not (was_repaired i)) touched)
    in
    let fix_of (i, n) =
      match
        List.find_opt
          (fun (r : Quarantine.period_repair) -> r.period_index = i)
          q.repaired
      with
      | Some r ->
        { r with
          Quarantine.fixes =
            r.fixes @ [ Printf.sprintf "excised %d inexplicable frame(s)" n ] }
      | None ->
        { Quarantine.period_index = i;
          fixes = [ Printf.sprintf "excised %d inexplicable frame(s)" n ] }
    in
    let q =
      { q with
        Quarantine.kept = q.kept - clean_touched;
        repaired =
          List.filter
            (fun (r : Quarantine.period_repair) ->
               not (List.mem r.period_index touched))
            q.repaired
          @ List.map fix_of excised;
        dropped =
          q.dropped
          @ List.map
              (fun i ->
                 { Quarantine.period_index = i;
                   reason = "message with no admissible sender/receiver" })
              dropped_idx;
      }
    in
    publish_excised q (List.fold_left (fun a (_, n) -> a + n) 0 excised);
    (Trace.of_periods ~task_set:trace.task_set (List.rev !good), q)
  end
