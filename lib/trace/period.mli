(** One period of a trace — an {e instance} of the learning problem
    (paper Definition 1: "each instance is a period in that trace").

    A period view is validated and pre-digested: which tasks executed (a
    task executes at most once per period), their start/end times, and the
    message occurrences with paired rising/falling edges. *)

type msg = {
  occ : int;      (** occurrence index within the period, 0-based *)
  bus_id : int;   (** frame identifier as seen on the bus *)
  rise : int;     (** timestamp of the rising edge *)
  fall : int;     (** timestamp of the falling edge *)
}

type t = private {
  index : int;
  task_set : Rt_task.Task_set.t;
  events : Event.t list;     (** sorted with [Event.compare] *)
  executed : bool array;     (** per task: both start and end seen *)
  executed_ix : int array;   (** indices of executed tasks, ascending *)
  start_time : int array;    (** -1 when the task did not execute *)
  end_time : int array;
  msgs : msg array;          (** in rising-edge order *)
}

type error =
  | Duplicate_start of int
  | Duplicate_end of int
  | End_without_start of int
  | Start_without_end of int
  | End_before_start of int
  | Fall_without_rise of int   (** bus id *)
  | Rise_without_fall of int
  | Unknown_task of int

val string_of_error : error -> string

val make : index:int -> task_set:Rt_task.Task_set.t -> Event.t list -> (t, error) result
(** Sorts the events and validates the period. *)

val make_exn : index:int -> task_set:Rt_task.Task_set.t -> Event.t list -> t
(** @raise Invalid_argument on a malformed period. *)

val executed_tasks : t -> int list
(** Indices of tasks that executed, ascending. *)

val executed_count : t -> int

val msg_count : t -> int

val pp : Format.formatter -> t -> unit
