type msg = { occ : int; bus_id : int; rise : int; fall : int }

type t = {
  index : int;
  task_set : Rt_task.Task_set.t;
  events : Event.t list;
  executed : bool array;
  executed_ix : int array;
  start_time : int array;
  end_time : int array;
  msgs : msg array;
}

type error =
  | Duplicate_start of int
  | Duplicate_end of int
  | End_without_start of int
  | Start_without_end of int
  | End_before_start of int
  | Fall_without_rise of int
  | Rise_without_fall of int
  | Unknown_task of int

let string_of_error = function
  | Duplicate_start i -> Printf.sprintf "task %d started twice in a period" i
  | Duplicate_end i -> Printf.sprintf "task %d ended twice in a period" i
  | End_without_start i -> Printf.sprintf "task %d ended without starting" i
  | Start_without_end i -> Printf.sprintf "task %d started but never ended" i
  | End_before_start i -> Printf.sprintf "task %d ended before it started" i
  | Fall_without_rise m -> Printf.sprintf "falling edge of 0x%x without rising edge" m
  | Rise_without_fall m -> Printf.sprintf "rising edge of 0x%x without falling edge" m
  | Unknown_task i -> Printf.sprintf "task index %d out of range" i

let make ~index ~task_set events =
  let n = Rt_task.Task_set.size task_set in
  let events = List.sort Event.compare events in
  let start_time = Array.make n (-1) in
  let end_time = Array.make n (-1) in
  let open_rises : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let msgs = ref [] in
  let occ = ref 0 in
  let exception Bad of error in
  try
    List.iter (fun (e : Event.t) ->
        match e.kind with
        | Event.Task_start i ->
          if i < 0 || i >= n then raise (Bad (Unknown_task i));
          if start_time.(i) >= 0 then raise (Bad (Duplicate_start i));
          start_time.(i) <- e.time
        | Event.Task_end i ->
          if i < 0 || i >= n then raise (Bad (Unknown_task i));
          if start_time.(i) < 0 then raise (Bad (End_without_start i));
          if end_time.(i) >= 0 then raise (Bad (Duplicate_end i));
          if e.time < start_time.(i) then raise (Bad (End_before_start i));
          end_time.(i) <- e.time
        | Event.Msg_rise m ->
          (* Frames with the same bus id pair rise-to-next-fall; nesting of
             the same id cannot happen on a serial bus. *)
          if Hashtbl.mem open_rises m then raise (Bad (Rise_without_fall m));
          Hashtbl.add open_rises m e.time
        | Event.Msg_fall m ->
          (match Hashtbl.find_opt open_rises m with
           | None -> raise (Bad (Fall_without_rise m))
           | Some rise ->
             Hashtbl.remove open_rises m;
             msgs := { occ = !occ; bus_id = m; rise; fall = e.time } :: !msgs;
             incr occ))
      events;
    Hashtbl.iter (fun m _ -> raise (Bad (Rise_without_fall m))) open_rises;
    Array.iteri (fun i st ->
        if st >= 0 && end_time.(i) < 0 then raise (Bad (Start_without_end i)))
      start_time;
    let executed = Array.init n (fun i -> start_time.(i) >= 0 && end_time.(i) >= 0) in
    (* Hoisted once per period: the candidate inference walks the executed
       tasks once per message, for every live hypothesis set. *)
    let executed_ix =
      let count = Array.fold_left (fun c b -> if b then c + 1 else c) 0 executed in
      let ix = Array.make count 0 in
      let k = ref 0 in
      Array.iteri (fun i b -> if b then begin ix.(!k) <- i; incr k end) executed;
      ix
    in
    let msgs =
      !msgs |> List.rev |> Array.of_list |> fun a ->
      Array.sort (fun m1 m2 ->
          let c = Int.compare m1.rise m2.rise in
          if c <> 0 then c else Int.compare m1.occ m2.occ) a;
      Array.mapi (fun k m -> { m with occ = k }) a
    in
    Ok { index; task_set; events; executed; executed_ix; start_time; end_time; msgs }
  with Bad e -> Error e

let make_exn ~index ~task_set events =
  match make ~index ~task_set events with
  | Ok p -> p
  | Error e -> invalid_arg ("Period.make_exn: " ^ string_of_error e)

let executed_tasks p = Array.to_list p.executed_ix

let executed_count p = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 p.executed

let msg_count p = Array.length p.msgs

let pp ppf p =
  let names = List.map (Rt_task.Task_set.name p.task_set) (executed_tasks p) in
  Format.fprintf ppf "period %d: tasks [%s], %d msgs"
    p.index (String.concat " " names) (Array.length p.msgs)
