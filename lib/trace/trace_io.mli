(** Textual trace format, the stand-in for the GM logging device's dump.

    {v
    # rtgen-trace v1
    tasks t1 t2 t3 t4
    period 0
    100 start t1
    250 end t1
    260 rise 0x101
    300 fall 0x101
    period 1
    ...
    v}

    Task events name the task; message events give the bus id in hex.
    Timestamps are microseconds relative to the period start.

    Loading has two modes. [`Strict] (the default) rejects the first
    malformed line or period, as a regression gate should. [`Recover]
    is the production ingest path: malformed lines are skipped, damaged
    periods are salvaged by {!Repair} or dropped, and everything the
    loader changed is accounted for in a {!Quarantine.t} report — a
    messy multi-hour CAN capture must not kill the run at line 3. *)

val to_string : Trace.t -> string

val output : out_channel -> Trace.t -> unit

val save : string -> Trace.t -> unit
(** Write to a file path, atomically (tmp + rename): an interrupted
    export never leaves a truncated trace on disk. *)

type parse_error = Stream_io.parse_error = { line : int; message : string }

type mode = Stream_io.mode

val of_string :
  ?mode:mode -> ?eps:int -> ?obs:Rt_obs.Registry.t -> string ->
  (Trace.t * Quarantine.t, parse_error) result
(** In [`Strict] mode (default) the quarantine report is always empty
    apart from its kept count, and any damage is an [Error] — exactly
    the seed behaviour. In [`Recover] mode only a missing/unusable
    [tasks] header is an [Error]; everything else degrades into the
    report. [eps] is the clock-skew tolerance forwarded to {!Repair}
    (default 0). With [obs], the parse runs inside an ["ingest.parse"]
    span and the quarantine tallies are published as ["ingest.*"]
    counters (overwritten, so a later {!semantic_filter} pass owns the
    final numbers). *)

val of_string_exn : string -> Trace.t
(** Strict. @raise Invalid_argument with position information. *)

val load :
  ?mode:mode -> ?eps:int -> ?obs:Rt_obs.Registry.t -> string ->
  (Trace.t * Quarantine.t, parse_error) result
(** Read from a file path. *)

val salvage_period :
  ?window:int -> Period.t ->
  [ `Clean | `Excised of Period.t * int | `Dropped ]
(** The per-period core of {!semantic_filter}, exposed for streaming
    pipelines that see one period at a time. [`Clean]: every message has
    a non-empty candidate set. [`Excised (p', n)]: [n] inexplicable
    frames were cut and the period re-validated. [`Dropped]: the period
    does not survive excision. [window] must match the learner's. *)

val salvage_account :
  Quarantine.t -> excised:(int * int) list -> dropped_idx:int list ->
  Quarantine.t
(** Fold {!salvage_period} outcomes back into an ingestion account:
    [excised] is [(period_index, frames)] per [`Excised] period (in
    trace order), [dropped_idx] the indices of [`Dropped] ones. The
    exact accounting {!semantic_filter} applies — streaming callers use
    it so batch and streamed quarantine reports are identical. *)

val publish_quarantine_to : Rt_obs.Registry.t -> Quarantine.t -> unit
(** Publish the account as ["ingest.*"] counters (overwriting). *)

val publish_salvage : Rt_obs.Registry.t -> Quarantine.t -> frames_excised:int -> unit
(** {!publish_quarantine_to} plus the ["ingest.frames_excised"] total —
    what {!semantic_filter} publishes. *)

val semantic_filter :
  ?window:int -> ?obs:Rt_obs.Registry.t ->
  Trace.t -> Quarantine.t -> Trace.t * Quarantine.t
(** Second-stage quarantine for [`Recover] pipelines. A structurally
    valid period can still carry a message with an empty candidate set
    [A_m] ({!Candidates.unexplained}) — e.g. a spliced bogus frame, or a
    real frame whose sender's events were lost — and a single such
    message collapses the learner's hypothesis set to the empty set.
    This pass excises the inexplicable frames' edges and re-validates
    the period (recorded as a repair in the report); if the period does
    not survive excision it is dropped with a reason. [window] must
    match the one later passed to the learner. Feed it the result of a
    [`Recover]-mode {!load}/{!of_string}. *)
