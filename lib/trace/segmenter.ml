type segment_error = { period_index : int; error : Period.error }

type item = [ `Period of Period.t | `Invalid of segment_error ]

type t = {
  mode : [ `Strict | `Recover ];
  eps : int option;
  task_set : Rt_task.Task_set.t;
  period_len : int;
  source : Event_source.t;
  (* The bucket being assembled. Events are accumulated by consing, so
     the list a finished bucket hands to [Period.make] is in reverse
     arrival order — the same order the batch hash-bucketing produced,
     which keeps tie-breaking under [Period.make]'s stable sort
     identical between batch and streaming ingestion. *)
  mutable cur_active : bool;
  mutable cur_bucket : int;          (* original time-based index *)
  mutable cur_events : Event.t list;
  mutable cur_len : int;
  mutable pending : Event.t option;  (* first event of the next bucket *)
  mutable exhausted : bool;
  mutable seen : int;                (* buckets flushed = next new index *)
  mutable max_buffered : int;
  (* Quarantine accumulators, reverse order. *)
  mutable kept : int;
  mutable repaired : Quarantine.period_repair list;
  mutable dropped : Quarantine.period_drop list;
}

let create ?(mode = `Strict) ?eps ~task_set ~period_len source =
  if period_len <= 0 then
    invalid_arg "Segmenter.create: period_len must be positive";
  {
    mode; eps; task_set; period_len; source;
    cur_active = false;
    cur_bucket = 0;
    cur_events = [];
    cur_len = 0;
    pending = None;
    exhausted = false;
    seen = 0;
    max_buffered = 0;
    kept = 0;
    repaired = [];
    dropped = [];
  }

let add_event t e =
  t.cur_events <- e :: t.cur_events;
  t.cur_len <- t.cur_len + 1;
  if t.cur_len > t.max_buffered then t.max_buffered <- t.cur_len

(* Pull until the current bucket is complete: the next event belongs to a
   later bucket (parked in [pending]) or the source is exhausted. *)
let rec fill t =
  if not t.exhausted then
    match Event_source.next t.source with
    | None -> t.exhausted <- true
    | Some e ->
      let idx = e.Event.time / t.period_len in
      if not t.cur_active then begin
        t.cur_active <- true;
        t.cur_bucket <- idx;
        add_event t e;
        fill t
      end
      else if idx = t.cur_bucket then begin
        add_event t e;
        fill t
      end
      else if idx < t.cur_bucket then
        invalid_arg
          (Printf.sprintf
             "Segmenter.next: event at time %d belongs to period %d but \
              period %d is already being assembled (stream not in \
              nondecreasing period order)"
             e.Event.time idx t.cur_bucket)
      else t.pending <- Some e

(* Close the current bucket and classify it. [None] means the period was
   quarantine-dropped and the caller should move on to the next one. *)
let flush t : item option =
  let old_idx = t.cur_bucket and events = t.cur_events in
  t.cur_active <- false;
  t.cur_events <- [];
  t.cur_len <- 0;
  let new_idx = t.seen in
  t.seen <- t.seen + 1;
  match t.mode with
  | `Strict ->
    (match Period.make ~index:new_idx ~task_set:t.task_set events with
     | Ok p ->
       t.kept <- t.kept + 1;
       Some (`Period p)
     | Error error -> Some (`Invalid { period_index = old_idx; error }))
  | `Recover ->
    (match Repair.period ?eps:t.eps ~index:new_idx ~task_set:t.task_set events with
     | Ok (p, []) ->
       t.kept <- t.kept + 1;
       Some (`Period p)
     | Ok (p, fixes) ->
       t.repaired <-
         { Quarantine.period_index = old_idx;
           fixes = List.map Repair.string_of_fix fixes }
         :: t.repaired;
       Some (`Period p)
     | Error e ->
       t.dropped <-
         { Quarantine.period_index = old_idx;
           reason = Period.string_of_error e }
         :: t.dropped;
       None)

let rec next t =
  (* Promote the parked first event of the next bucket, if any. *)
  (match t.pending with
   | Some e ->
     t.pending <- None;
     t.cur_active <- true;
     t.cur_bucket <- e.Event.time / t.period_len;
     add_event t e
   | None -> ());
  fill t;
  if not t.cur_active then None
  else
    match flush t with
    | Some _ as item -> item
    | None -> next t  (* recover mode dropped it; keep going *)

let quarantine t =
  { Quarantine.skipped_lines = [];
    kept = t.kept;
    repaired = List.rev t.repaired;
    dropped = List.rev t.dropped }

let periods_seen t = t.seen

let max_buffered t = t.max_buffered
