type mapping = {
  task_names : (string * string) list;
  bus_ids : (int * int) list;
}

let letter i =
  if i < 26 then String.make 1 (Char.chr (Char.code 'A' + i))
  else Printf.sprintf "T%d" i

let anonymize ?(rebase_time = true) (t : Trace.t) =
  let old_names = Rt_task.Task_set.names t.task_set in
  let new_names = Array.mapi (fun i _ -> letter i) old_names in
  let task_set = Rt_task.Task_set.of_names new_names in
  (* Bus ids in first-appearance order across the whole trace. *)
  let id_map : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0x100 in
  let anon_id id =
    match Hashtbl.find_opt id_map id with
    | Some x -> x
    | None ->
      let x = !next in
      incr next;
      Hashtbl.add id_map id x;
      x
  in
  let periods =
    List.map (fun (p : Period.t) ->
        let base =
          if rebase_time then
            List.fold_left (fun acc (e : Event.t) -> min acc e.time) max_int
              p.events
          else 0
        in
        let base = if base = max_int then 0 else base in
        let events =
          List.map (fun (e : Event.t) ->
              let kind =
                match e.kind with
                | Event.Msg_rise m -> Event.Msg_rise (anon_id m)
                | Event.Msg_fall m -> Event.Msg_fall (anon_id m)
                | (Event.Task_start _ | Event.Task_end _) as k -> k
              in
              { Event.time = e.time - base; kind })
            p.events
        in
        Period.make_exn ~index:p.index ~task_set events)
      (Trace.periods t)
  in
  let mapping =
    {
      task_names =
        Array.to_list (Array.mapi (fun i n -> (n, new_names.(i))) old_names);
      bus_ids =
        Hashtbl.fold (fun o a acc -> (o, a) :: acc) id_map []
        |> List.sort (fun (o1, _) (o2, _) -> Int.compare o1 o2);
    }
  in
  (Trace.of_periods ~task_set periods, mapping)

let apply_names mapping name = List.assoc_opt name mapping.task_names
