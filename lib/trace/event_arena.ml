(* Packed event arena. Layout (within OCaml's 63-bit int):

     bits 62..61  tag   : 0 Task_start | 1 Task_end | 2 Msg_rise | 3 Msg_fall
     bits 60..41  id    : task index or bus identifier
     bits 40..0   time  : microseconds

   The tag occupies the two highest usable bits so a packed word is
   always non-negative, which keeps textual dumps of raw words readable
   and lets the unused sign bit flag sentinel values if a future format
   needs them. *)

type t = {
  mutable buf : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable len : int;
}

let id_bits = 20
let time_bits = 41
let max_id = (1 lsl id_bits) - 1
let max_time = (1 lsl time_bits) - 1

let tag_start = 0
let tag_end = 1
let tag_rise = 2
let tag_fall = 3

let tag_of_kind = function
  | Event.Task_start _ -> tag_start
  | Event.Task_end _ -> tag_end
  | Event.Msg_rise _ -> tag_rise
  | Event.Msg_fall _ -> tag_fall

let kind_id = function
  | Event.Task_start i | Event.Task_end i | Event.Msg_rise i | Event.Msg_fall i
    -> i

let pack_exn ~tag ~id ~time =
  if time < 0 || time > max_time then
    invalid_arg
      (Printf.sprintf "Event_arena: timestamp %d out of range" time);
  if id < 0 || id > max_id then
    invalid_arg (Printf.sprintf "Event_arena: identifier %d out of range" id);
  if tag < 0 || tag > 3 then
    invalid_arg (Printf.sprintf "Event_arena: bad kind tag %d" tag);
  (tag lsl (id_bits + time_bits)) lor (id lsl time_bits) lor time

let encode (e : Event.t) =
  pack_exn ~tag:(tag_of_kind e.kind) ~id:(kind_id e.kind) ~time:e.time

let decode w =
  let time = w land max_time in
  let id = (w lsr time_bits) land max_id in
  let kind =
    match (w lsr (id_bits + time_bits)) land 3 with
    | 0 -> Event.Task_start id
    | 1 -> Event.Task_end id
    | 2 -> Event.Msg_rise id
    | _ -> Event.Msg_fall id
  in
  { Event.time; kind }

let create ?(capacity = 4096) () =
  let capacity = max capacity 1 in
  { buf = Bigarray.(Array1.create int c_layout capacity); len = 0 }

let grow a =
  let cap = Bigarray.Array1.dim a.buf in
  let buf' = Bigarray.(Array1.create int c_layout (cap * 2)) in
  Bigarray.Array1.blit a.buf (Bigarray.Array1.sub buf' 0 cap);
  a.buf <- buf'

let push_word a w =
  if a.len = Bigarray.Array1.dim a.buf then grow a;
  Bigarray.Array1.unsafe_set a.buf a.len w;
  a.len <- a.len + 1

let push a e = push_word a (encode e)

let push_packed a ~tag ~id ~time = push_word a (pack_exn ~tag ~id ~time)

let length a = a.len

let get a i =
  if i < 0 || i >= a.len then invalid_arg "Event_arena.get: index out of range";
  decode (Bigarray.Array1.unsafe_get a.buf i)

let of_events events =
  let a = create ~capacity:(max (List.length events) 1) () in
  List.iter (push a) events;
  a

let range name ?lo ?hi a =
  let lo = Option.value lo ~default:0 in
  let hi = Option.value hi ~default:a.len in
  if lo < 0 || hi > a.len || lo > hi then
    invalid_arg (name ^ ": range out of bounds");
  (lo, hi)

let to_list ?lo ?hi a =
  let lo, hi = range "Event_arena.to_list" ?lo ?hi a in
  List.init (hi - lo) (fun i -> decode (Bigarray.Array1.unsafe_get a.buf (lo + i)))

let source ?lo ?hi a =
  let lo, hi = range "Event_arena.source" ?lo ?hi a in
  let pos = ref lo in
  Event_source.of_fun (fun () ->
      if !pos >= hi then None
      else begin
        let w = Bigarray.Array1.unsafe_get a.buf !pos in
        incr pos;
        Some (decode w)
      end)
