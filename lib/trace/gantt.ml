let row_height = 24
let label_width = 80
let top_margin = 8

let to_svg ?(width = 800) (p : Period.t) =
  let executed = Period.executed_tasks p in
  let nrows = List.length executed + 1 (* bus row *) in
  let height = top_margin + (nrows * row_height) + 8 in
  let tmin, tmax =
    List.fold_left (fun (lo, hi) (e : Event.t) -> (min lo e.time, max hi e.time))
      (max_int, min_int) p.events
  in
  let tmin, tmax = if tmin > tmax then (0, 1) else (tmin, max tmax (tmin + 1)) in
  let plot = width - label_width - 10 in
  let x t = label_width + (plot * (t - tmin) / (tmax - tmin)) in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"monospace\" font-size=\"12\">\n"
       width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
       width height);
  let row i = top_margin + (i * row_height) in
  List.iteri (fun i task ->
      let y = row i in
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"4\" y=\"%d\">%s</text>\n" (y + 16)
           (Rt_task.Task_set.name p.task_set task));
      let x0 = x p.start_time.(task) and x1 = x p.end_time.(task) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect class=\"task\" x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
            fill=\"#4a90d9\" stroke=\"#2a5a8a\"/>\n"
           x0 (y + 4) (max 1 (x1 - x0)) (row_height - 8)))
    executed;
  (* Bus row. *)
  let y = row (List.length executed) in
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"4\" y=\"%d\">bus</text>\n" (y + 16));
  Array.iter (fun (m : Period.msg) ->
      let x0 = x m.rise and x1 = x m.fall in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect class=\"frame\" x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
            fill=\"#d98b4a\" stroke=\"#8a542a\"><title>0x%x</title></rect>\n"
           x0 (y + 4) (max 1 (x1 - x0)) (row_height - 8) m.bus_id))
    p.msgs;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ?width path p =
  Rt_util.Atomic_file.write path (to_svg ?width p)
