type t = { task_set : Rt_task.Task_set.t; periods : Period.t array }

let of_periods ~task_set ps =
  List.iter (fun (p : Period.t) ->
      if not (Rt_task.Task_set.equal p.task_set task_set) then
        invalid_arg "Trace.of_periods: period over a different task set")
    ps;
  { task_set; periods = Array.of_list ps }

type segment_error = Segmenter.segment_error = {
  period_index : int;
  error : Period.error;
}

(* The batch entry points are thin wrappers over the streaming
   {!Segmenter}: stable-sort the flat event list into nondecreasing
   period order (preserving arrival order within each period, which is
   what the old hash-bucketing preserved too) and drain the segmenter.
   One implementation serves both batch and live ingestion. *)
let ordered_source ~period_len events =
  List.stable_sort
    (fun (a : Event.t) (b : Event.t) ->
      Int.compare (a.time / period_len) (b.time / period_len))
    events
  |> Event_source.of_list

let segment ~task_set ~period_len events =
  if period_len <= 0 then invalid_arg "Trace.segment: period_len must be positive";
  let seg =
    Segmenter.create ~mode:`Strict ~task_set ~period_len
      (ordered_source ~period_len events)
  in
  let oks = ref [] and errs = ref [] in
  let rec drain () =
    match Segmenter.next seg with
    | None -> ()
    | Some (`Period p) -> oks := p :: !oks; drain ()
    | Some (`Invalid e) -> errs := e :: !errs; drain ()
  in
  drain ();
  if !errs <> [] then Error (List.rev !errs)
  else Ok { task_set; periods = Array.of_list (List.rev !oks) }

let segment_recover ?eps ~task_set ~period_len events =
  if period_len <= 0 then
    invalid_arg "Trace.segment_recover: period_len must be positive";
  let seg =
    Segmenter.create ~mode:`Recover ?eps ~task_set ~period_len
      (ordered_source ~period_len events)
  in
  let oks = ref [] in
  let rec drain () =
    match Segmenter.next seg with
    | None -> ()
    | Some (`Period p) -> oks := p :: !oks; drain ()
    | Some (`Invalid _) -> drain ()
  in
  drain ();
  ( { task_set; periods = Array.of_list (List.rev !oks) },
    Segmenter.quarantine seg )

let median = function
  | [] -> None
  | l ->
    let a = Array.of_list l in
    Array.sort Int.compare a;
    Some a.(Array.length a / 2)

let infer_period events =
  let starts : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (e : Event.t) ->
      match e.kind with
      | Event.Task_start i ->
        Hashtbl.replace starts i
          (e.time :: Option.value ~default:[] (Hashtbl.find_opt starts i))
      | Event.Task_end _ | Event.Msg_rise _ | Event.Msg_fall _ -> ())
    events;
  let per_task =
    Hashtbl.fold (fun _ times acc ->
        let times = List.sort Int.compare times in
        if List.length times < 3 then acc
        else
          let rec gaps = function
            | a :: (b :: _ as rest) -> (b - a) :: gaps rest
            | [ _ ] | [] -> []
          in
          match median (gaps times) with
          | Some g when g > 0 -> g :: acc
          | Some _ | None -> acc)
      starts []
  in
  median per_task

let segment_auto ~task_set events =
  match infer_period events with
  | None -> Error []
  | Some period_len ->
    (match segment ~task_set ~period_len events with
     | Ok t -> Ok (t, period_len)
     | Error e -> Error e)

let periods t = Array.to_list t.periods

let period_count t = Array.length t.periods

let task_count t = Rt_task.Task_set.size t.task_set

let total_messages t =
  Array.fold_left (fun acc p -> acc + Period.msg_count p) 0 t.periods

let total_events t =
  Array.fold_left (fun acc (p : Period.t) -> acc + List.length p.events) 0 t.periods

let executed_matrix t =
  Array.to_list t.periods
  |> List.map (fun (p : Period.t) -> Array.copy p.executed)
  |> Array.of_list

let pp_summary ppf t =
  Format.fprintf ppf "trace: %d tasks, %d periods, %d messages, %d events"
    (task_count t) (period_count t) (total_messages t) (total_events t)
