type t = { task_set : Rt_task.Task_set.t; periods : Period.t array }

let of_periods ~task_set ps =
  List.iter (fun (p : Period.t) ->
      if not (Rt_task.Task_set.equal p.task_set task_set) then
        invalid_arg "Trace.of_periods: period over a different task set")
    ps;
  { task_set; periods = Array.of_list ps }

type segment_error = { period_index : int; error : Period.error }

(* [segment]'s bucketing, shared with the recover variant. Returns the
   buckets in ascending original-index order, renumbered from 0. *)
let buckets ~period_len events =
  let by_period : (int, Event.t list) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun (e : Event.t) ->
      let idx = e.time / period_len in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_period idx) in
      Hashtbl.replace by_period idx (e :: cur))
    events;
  Hashtbl.fold (fun k _ acc -> k :: acc) by_period []
  |> List.sort Int.compare
  |> List.mapi (fun new_idx old_idx -> (new_idx, old_idx, Hashtbl.find by_period old_idx))

let segment ~task_set ~period_len events =
  if period_len <= 0 then invalid_arg "Trace.segment: period_len must be positive";
  let oks = ref [] and errs = ref [] in
  List.iter (fun (new_idx, old_idx, evs) ->
      match Period.make ~index:new_idx ~task_set evs with
      | Ok p -> oks := p :: !oks
      | Error error -> errs := { period_index = old_idx; error } :: !errs)
    (buckets ~period_len events);
  if !errs <> [] then Error (List.rev !errs)
  else Ok { task_set; periods = Array.of_list (List.rev !oks) }

let segment_recover ?eps ~task_set ~period_len events =
  if period_len <= 0 then
    invalid_arg "Trace.segment_recover: period_len must be positive";
  let oks = ref [] and kept = ref 0 and repaired = ref [] and dropped = ref [] in
  List.iter (fun (new_idx, old_idx, evs) ->
      match Repair.period ?eps ~index:new_idx ~task_set evs with
      | Ok (p, []) -> oks := p :: !oks; incr kept
      | Ok (p, fixes) ->
        oks := p :: !oks;
        repaired :=
          { Quarantine.period_index = old_idx;
            fixes = List.map Repair.string_of_fix fixes }
          :: !repaired
      | Error e ->
        dropped :=
          { Quarantine.period_index = old_idx;
            reason = Period.string_of_error e }
          :: !dropped)
    (buckets ~period_len events);
  ( { task_set; periods = Array.of_list (List.rev !oks) },
    { Quarantine.skipped_lines = [];
      kept = !kept;
      repaired = List.rev !repaired;
      dropped = List.rev !dropped } )

let median = function
  | [] -> None
  | l ->
    let a = Array.of_list l in
    Array.sort Int.compare a;
    Some a.(Array.length a / 2)

let infer_period events =
  let starts : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (e : Event.t) ->
      match e.kind with
      | Event.Task_start i ->
        Hashtbl.replace starts i
          (e.time :: Option.value ~default:[] (Hashtbl.find_opt starts i))
      | Event.Task_end _ | Event.Msg_rise _ | Event.Msg_fall _ -> ())
    events;
  let per_task =
    Hashtbl.fold (fun _ times acc ->
        let times = List.sort Int.compare times in
        if List.length times < 3 then acc
        else
          let rec gaps = function
            | a :: (b :: _ as rest) -> (b - a) :: gaps rest
            | [ _ ] | [] -> []
          in
          match median (gaps times) with
          | Some g when g > 0 -> g :: acc
          | Some _ | None -> acc)
      starts []
  in
  median per_task

let segment_auto ~task_set events =
  match infer_period events with
  | None -> Error []
  | Some period_len ->
    (match segment ~task_set ~period_len events with
     | Ok t -> Ok (t, period_len)
     | Error e -> Error e)

let periods t = Array.to_list t.periods

let period_count t = Array.length t.periods

let task_count t = Rt_task.Task_set.size t.task_set

let total_messages t =
  Array.fold_left (fun acc p -> acc + Period.msg_count p) 0 t.periods

let total_events t =
  Array.fold_left (fun acc (p : Period.t) -> acc + List.length p.events) 0 t.periods

let executed_matrix t =
  Array.to_list t.periods
  |> List.map (fun (p : Period.t) -> Array.copy p.executed)
  |> Array.of_list

let pp_summary ppf t =
  Format.fprintf ppf "trace: %d tasks, %d periods, %d messages, %d events"
    (task_count t) (period_count t) (total_messages t) (total_events t)
