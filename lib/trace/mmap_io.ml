(* Zero-copy strict trace reader: mmap + in-place byte scan into a
   packed Event_arena. The contract is byte-for-byte parity with a
   strict Stream_io over lines_of_string — same accepted inputs, same
   error text, same line numbers — so every branch below mirrors a
   branch of Stream_io.consume_line, in the same order. Keep the two in
   sync. *)

module A1 = Bigarray.Array1

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) A1.t

type t = {
  trace : Trace.t;
  arena : Event_arena.t;
  marks : (int * int * int) array;
}

exception Fail of Stream_io.parse_error

let fail line message = raise (Fail { Stream_io.line; message })

let range_prefix = "event outside packed range: "

let is_range_error (e : Stream_io.parse_error) =
  String.length e.message >= String.length range_prefix
  && String.sub e.message 0 (String.length range_prefix) = range_prefix

type state = {
  buf : buf;
  len : int;
  arena : Event_arena.t;
  tok : int array;  (* scratch: (lo, hi) pairs of the first three tokens *)
  mutable lineno : int;
  mutable task_set : Rt_task.Task_set.t option;
  mutable names : string array;
  mutable cur_index : int option;
  mutable cur_lo : int;  (* arena offset where the open period began *)
  mutable marks : (int * int * int) list;   (* reverse *)
  mutable periods : Period.t list;          (* reverse *)
  mutable kept : int;
}

(* String.trim's whitespace set. *)
let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012'

let sub_string st lo hi = String.init (hi - lo) (fun i -> A1.get st.buf (lo + i))

let token_eq st lo hi kw =
  hi - lo = String.length kw
  && (let rec eq i =
        i < 0
        || (A1.unsafe_get st.buf (lo + i) = String.unsafe_get kw i
            && eq (i - 1))
      in
      eq (hi - lo - 1))

(* Integer parsing straight off the mapped bytes for the two lexemes
   real traces contain — plain decimal and 0x hex, short enough not to
   overflow. Anything else (signs, underscores, 0o/0b, overflow-length
   digit runs) falls back to [int_of_string_opt] on an allocated
   substring, so the accepted language is exactly Stream_io's. *)
let parse_int st lo hi =
  let n = hi - lo in
  if n = 0 then None
  else begin
    let c0 = A1.unsafe_get st.buf lo in
    let hex =
      c0 = '0' && n > 2 && n <= 17
      && (let c1 = A1.unsafe_get st.buf (lo + 1) in c1 = 'x' || c1 = 'X')
    in
    if hex then begin
      let acc = ref 0 and ok = ref true in
      for i = lo + 2 to hi - 1 do
        let c = A1.unsafe_get st.buf i in
        let d =
          if c >= '0' && c <= '9' then Char.code c - Char.code '0'
          else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
          else if c >= 'A' && c <= 'F' then Char.code c - Char.code 'A' + 10
          else begin ok := false; 0 end
        in
        acc := (!acc lsl 4) lor d
      done;
      if !ok then Some !acc else int_of_string_opt (sub_string st lo hi)
    end
    else if c0 >= '0' && c0 <= '9' && n <= 18 then begin
      let acc = ref 0 and ok = ref true in
      for i = lo to hi - 1 do
        let c = A1.unsafe_get st.buf i in
        if c >= '0' && c <= '9' then
          acc := (!acc * 10) + (Char.code c - Char.code '0')
        else ok := false
      done;
      if !ok then Some !acc else int_of_string_opt (sub_string st lo hi)
    end
    else int_of_string_opt (sub_string st lo hi)
  end

(* Task lookup by comparing the buffer slice against each name: task
   sets are small, and this keeps the hot loop free of substring
   allocation. Equivalent to Task_set.index on the substring. *)
let find_task st lo hi =
  let names = st.names in
  let n = Array.length names in
  let rec go i =
    if i >= n then None
    else if token_eq st lo hi names.(i) then Some i
    else go (i + 1)
  in
  go 0

let push st lineno ~tag ~id ~time =
  match Event_arena.push_packed st.arena ~tag ~id ~time with
  | () -> ()
  | exception Invalid_argument m -> fail lineno (range_prefix ^ m)

let push_task st lineno ~tag ~time lo hi =
  match st.task_set with
  | None -> fail lineno "event before tasks line"
  | Some _ ->
    (match find_task st lo hi with
     | Some i -> push st lineno ~tag ~id:i ~time
     | None -> fail lineno ("unknown task: " ^ sub_string st lo hi))

let push_msg st lineno ~tag ~time lo hi =
  match parse_int st lo hi with
  | Some m -> push st lineno ~tag ~id:m ~time
  | None -> fail lineno ("bad message id: " ^ sub_string st lo hi)

let flush_period st lineno =
  match st.cur_index with
  | None -> ()
  | Some index ->
    let lo = st.cur_lo and hi = Event_arena.length st.arena in
    st.cur_index <- None;
    st.cur_lo <- hi;
    (match st.task_set with
     | None -> fail lineno "period before tasks line"
     | Some ts ->
       (match
          Period.make ~index ~task_set:ts (Event_arena.to_list ~lo ~hi st.arena)
        with
        | Ok p ->
          st.kept <- st.kept + 1;
          st.periods <- p :: st.periods;
          st.marks <- (index, lo, hi) :: st.marks
        | Error e ->
          fail lineno
            (Printf.sprintf "invalid period %d: %s" index
               (Period.string_of_error e))))

let tasks_line st lineno lo hi =
  if st.task_set <> None then fail lineno "duplicate tasks line";
  (* Collect the name tokens; [lo] points just past the "tasks" keyword. *)
  let names = ref [] and p = ref lo in
  while !p < hi do
    if A1.unsafe_get st.buf !p = ' ' then incr p
    else begin
      let s = !p in
      while !p < hi && A1.unsafe_get st.buf !p <> ' ' do incr p done;
      (* rtlint: allow RTL006 the tasks line is parsed once per file, not per event *)
      names := sub_string st s !p :: !names
    end
  done;
  match List.rev !names with
  | [] -> fail lineno "tasks line without names"
  | names ->
    (match Rt_task.Task_set.of_names (Array.of_list names) with
     | ts ->
       st.task_set <- Some ts;
       st.names <- Rt_task.Task_set.names ts
     | exception Invalid_argument m -> fail lineno m)

(* One trimmed, non-empty, non-comment line [lo, hi). Arm order mirrors
   Stream_io.consume_line's match: a "tasks" head wins at any arity,
   "period" needs exactly two tokens, any other three-token line is an
   event (so "period 1 2" fails as "bad timestamp: period"). *)
let consume st lineno lo hi =
  let ntok = ref 0 and p = ref lo in
  while !p < hi do
    if A1.unsafe_get st.buf !p = ' ' then incr p
    else begin
      let s = !p in
      while !p < hi && A1.unsafe_get st.buf !p <> ' ' do incr p done;
      if !ntok < 3 then begin
        st.tok.(!ntok * 2) <- s;
        st.tok.((!ntok * 2) + 1) <- !p
      end;
      incr ntok
    end
  done;
  let tlo i = st.tok.(i * 2) and thi i = st.tok.((i * 2) + 1) in
  if token_eq st (tlo 0) (thi 0) "tasks" then
    tasks_line st lineno (thi 0) hi
  else if !ntok = 2 && token_eq st (tlo 0) (thi 0) "period" then begin
    flush_period st lineno;
    match parse_int st (tlo 1) (thi 1) with
    | Some n -> st.cur_index <- Some n
    | None ->
      fail lineno ("bad period index: " ^ sub_string st (tlo 1) (thi 1))
  end
  else if !ntok = 3 then begin
    if st.cur_index = None then fail lineno "event before a period line";
    let time =
      match parse_int st (tlo 0) (thi 0) with
      | Some tm when tm >= 0 -> tm
      | Some _ -> fail lineno "negative timestamp"
      | None -> fail lineno ("bad timestamp: " ^ sub_string st (tlo 0) (thi 0))
    in
    let vlo = tlo 1 and vhi = thi 1 and alo = tlo 2 and ahi = thi 2 in
    if token_eq st vlo vhi "start" then
      push_task st lineno ~tag:Event_arena.tag_start ~time alo ahi
    else if token_eq st vlo vhi "end" then
      push_task st lineno ~tag:Event_arena.tag_end ~time alo ahi
    else if token_eq st vlo vhi "rise" then
      push_msg st lineno ~tag:Event_arena.tag_rise ~time alo ahi
    else if token_eq st vlo vhi "fall" then
      push_msg st lineno ~tag:Event_arena.tag_fall ~time alo ahi
    else fail lineno ("unknown event kind: " ^ sub_string st vlo vhi)
  end
  else fail lineno ("unparseable line: " ^ sub_string st lo hi)

(* Line segmentation mirrors String.split_on_char '\n': N newlines make
   N+1 segments, so a trailing newline yields a final empty line and an
   empty file is one empty line — line numbers in errors depend on
   this. *)
let scan st =
  let continue = ref true and pos = ref 0 in
  while !continue do
    let nl = ref !pos in
    while !nl < st.len && A1.unsafe_get st.buf !nl <> '\n' do incr nl done;
    st.lineno <- st.lineno + 1;
    let lo = ref !pos and hi = ref !nl in
    while !lo < !hi && is_space (A1.unsafe_get st.buf !lo) do incr lo done;
    while !hi > !lo && is_space (A1.unsafe_get st.buf (!hi - 1)) do
      decr hi
    done;
    if !lo < !hi && A1.unsafe_get st.buf !lo <> '#' then
      consume st st.lineno !lo !hi;
    if !nl >= st.len then continue := false else pos := !nl + 1
  done;
  flush_period st st.lineno;
  match st.task_set with
  | None -> fail st.lineno "missing tasks line"
  | Some ts -> ts

let map_path path : buf =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
       let size = (Unix.fstat fd).Unix.st_size in
       if size = 0 then A1.create Bigarray.char Bigarray.c_layout 0
       else
         Bigarray.array1_of_genarray
           (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]))

let load_body path =
  let buf = map_path path in
  let st =
    {
      buf;
      len = A1.dim buf;
      arena = Event_arena.create ();
      tok = Array.make 6 0;
      lineno = 0;
      task_set = None;
      names = [||];
      cur_index = None;
      cur_lo = 0;
      marks = [];
      periods = [];
      kept = 0;
    }
  in
  match scan st with
  | ts ->
    let quarantine =
      { Quarantine.skipped_lines = []; kept = st.kept; repaired = [];
        dropped = [] }
    in
    Ok
      ( { trace = Trace.of_periods ~task_set:ts (List.rev st.periods);
          arena = st.arena;
          marks = Array.of_list (List.rev st.marks) },
        quarantine )
  | exception Fail e -> Error e

let load ?obs path =
  (match obs with
   | Some r -> Rt_obs.Registry.span_begin r "ingest.parse"
   | None -> ());
  let res = load_body path in
  (match obs with
   | Some r ->
     (match res with
      | Ok (_, q) -> Trace_io.publish_quarantine_to r q
      | Error _ -> ());
     Rt_obs.Registry.span_end r
   | None -> ());
  res

let source ?lo ?hi (t : t) = Event_arena.source ?lo ?hi t.arena
