type line_issue = { line : int; message : string }

type period_repair = { period_index : int; fixes : string list }

type period_drop = { period_index : int; reason : string }

type t = {
  skipped_lines : line_issue list;
  kept : int;
  repaired : period_repair list;
  dropped : period_drop list;
}

let empty = { skipped_lines = []; kept = 0; repaired = []; dropped = [] }

let is_empty q = q.skipped_lines = [] && q.repaired = [] && q.dropped = []

let periods_seen q = q.kept + List.length q.repaired + List.length q.dropped

let confidence q =
  let seen = periods_seen q in
  if seen = 0 then 1.0
  else
    (float_of_int q.kept +. (0.5 *. float_of_int (List.length q.repaired)))
    /. float_of_int seen

let merge a b =
  {
    skipped_lines = a.skipped_lines @ b.skipped_lines;
    kept = a.kept + b.kept;
    repaired = a.repaired @ b.repaired;
    dropped = a.dropped @ b.dropped;
  }

let summary q =
  Printf.sprintf
    "quarantine: %d kept, %d repaired, %d dropped, %d lines skipped (confidence %.2f)"
    q.kept (List.length q.repaired) (List.length q.dropped)
    (List.length q.skipped_lines) (confidence q)

let to_string q =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (summary q);
  List.iter (fun { line; message } ->
      Buffer.add_string buf (Printf.sprintf "\n  line %d skipped: %s" line message))
    q.skipped_lines;
  List.iter (fun { period_index; fixes } ->
      Buffer.add_string buf
        (Printf.sprintf "\n  period %d repaired: %s" period_index
           (String.concat "; " fixes)))
    q.repaired;
  List.iter (fun { period_index; reason } ->
      Buffer.add_string buf
        (Printf.sprintf "\n  period %d dropped: %s" period_index reason))
    q.dropped;
  Buffer.contents buf

let pp ppf q = Format.pp_print_string ppf (to_string q)
