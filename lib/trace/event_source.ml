type t = {
  mutable pull : unit -> Event.t option;
  mutable served : int;
}

let exhausted () = None

let next t =
  match t.pull () with
  | Some _ as e ->
    t.served <- t.served + 1;
    e
  | None ->
    t.pull <- exhausted;
    None

let of_fun f = { pull = f; served = 0 }

let of_list events =
  let rest = ref events in
  of_fun (fun () ->
      match !rest with
      | [] -> None
      | e :: tl ->
        rest := tl;
        Some e)

let count t = t.served
