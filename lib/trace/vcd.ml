(* VCD identifier codes: printable ASCII starting at '!'. *)
let code k =
  let base = Char.code '!' in
  let span = 94 in
  if k < span then String.make 1 (Char.chr (base + k))
  else
    String.make 1 (Char.chr (base + (k / span)))
    ^ String.make 1 (Char.chr (base + (k mod span)))

let default_period_len t =
  let tmax =
    List.fold_left (fun acc (p : Period.t) ->
        List.fold_left (fun acc (e : Event.t) -> max acc e.time) acc p.events)
      0 (Trace.periods t)
  in
  let rec pow10 x = if x > tmax then x else pow10 (x * 10) in
  pow10 10

let to_string ?period_len (t : Trace.t) =
  let period_len =
    match period_len with Some l -> l | None -> default_period_len t
  in
  let names = Rt_task.Task_set.names t.task_set in
  let ntasks = Array.length names in
  (* Collect the distinct bus ids in first-seen order, straight from the
     events so that every edge emitted below has a declared signal. *)
  let id_code : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let ids = ref [] in
  List.iter (fun (p : Period.t) ->
      List.iter (fun (e : Event.t) ->
          match e.kind with
          | Event.Msg_rise m | Event.Msg_fall m ->
            if not (Hashtbl.mem id_code m) then begin
              Hashtbl.add id_code m (code (ntasks + Hashtbl.length id_code));
              ids := m :: !ids
            end
          | Event.Task_start _ | Event.Task_end _ -> ())
        p.events)
    (Trace.periods t);
  let ids = List.rev !ids in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$timescale 1us $end\n";
  Buffer.add_string buf "$scope module trace $end\n";
  Array.iteri (fun i name ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s task_%s $end\n" (code i) name))
    names;
  List.iter (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s can_0x%x $end\n" (Hashtbl.find id_code id) id))
    ids;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  Buffer.add_string buf "$dumpvars\n";
  Array.iteri (fun i _ -> Buffer.add_string buf (Printf.sprintf "0%s\n" (code i)))
    names;
  List.iter (fun id ->
      Buffer.add_string buf (Printf.sprintf "0%s\n" (Hashtbl.find id_code id)))
    ids;
  Buffer.add_string buf "$end\n";
  (* Emit changes grouped by timestamp across the whole trace. *)
  let changes =
    List.concat_map (fun (p : Period.t) ->
        let base = p.index * period_len in
        List.map (fun (e : Event.t) ->
            match e.kind with
            | Event.Task_start i -> (base + e.time, '1', code i)
            | Event.Task_end i -> (base + e.time, '0', code i)
            | Event.Msg_rise m -> (base + e.time, '1', Hashtbl.find id_code m)
            | Event.Msg_fall m -> (base + e.time, '0', Hashtbl.find id_code m))
          p.events)
      (Trace.periods t)
  in
  let changes = List.stable_sort (fun (t1, _, _) (t2, _, _) -> Int.compare t1 t2) changes in
  let last_time = ref (-1) in
  List.iter (fun (time, bit, c) ->
      if time <> !last_time then begin
        Buffer.add_string buf (Printf.sprintf "#%d\n" time);
        last_time := time
      end;
      Buffer.add_char buf bit;
      Buffer.add_string buf c;
      Buffer.add_char buf '\n')
    changes;
  Buffer.contents buf

let save ?period_len path t =
  Rt_util.Atomic_file.write path (to_string ?period_len t)

type parse_error = { line : int; message : string }

type signal = Task of int | Can of int

let prefixed ~prefix name =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    Some (String.sub name pl (String.length name - pl))
  else None

let of_string ?period_len s =
  let exception Fail of parse_error in
  let fail line message = raise (Fail { line; message }) in
  let lines = String.split_on_char '\n' s in
  let codes : (string, signal) Hashtbl.t = Hashtbl.create 16 in
  let task_names = ref [] in
  let in_defs = ref true and in_dump = ref false in
  let time = ref 0 in
  let events = ref [] in
  try
    List.iteri (fun i raw ->
        let lineno = i + 1 in
        let line = String.trim raw in
        if line = "" then ()
        else
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ "$var"; _ty; width; c; name; "$end" ] ->
            if not !in_defs then fail lineno "$var after $enddefinitions";
            if width <> "1" then fail lineno ("unsupported var width: " ^ width);
            if Hashtbl.mem codes c then
              fail lineno ("duplicate identifier code: " ^ c);
            let signal =
              match prefixed ~prefix:"task_" name with
              | Some tname ->
                let idx = List.length !task_names in
                task_names := tname :: !task_names;
                Task idx
              | None ->
                (match prefixed ~prefix:"can_0x" name with
                 | Some hex ->
                   (match int_of_string_opt ("0x" ^ hex) with
                    | Some id -> Can id
                    | None -> fail lineno ("bad bus id in signal name: " ^ name))
                 | None -> fail lineno ("unrecognised signal name: " ^ name))
            in
            Hashtbl.add codes c signal
          | "$enddefinitions" :: _ -> in_defs := false
          | "$dumpvars" :: _ -> in_dump := true
          | [ "$end" ] -> in_dump := false
          | tok :: _ when tok.[0] = '$' -> ()
          | [ tok ] when tok.[0] = '#' ->
            (match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
             | Some t when t >= 0 ->
               if t < !time then fail lineno "timestamps must not decrease";
               time := t
             | Some _ | None -> fail lineno ("bad timestamp: " ^ tok))
          | [ tok ] when tok.[0] = '0' || tok.[0] = '1' ->
            let c = String.sub tok 1 (String.length tok - 1) in
            (match Hashtbl.find_opt codes c with
             | None -> fail lineno ("unknown identifier code: " ^ c)
             | Some signal ->
               if !in_dump then ()
               else
                 let kind =
                   match (signal, tok.[0]) with
                   | Task i, '1' -> Event.Task_start i
                   | Task i, '0' -> Event.Task_end i
                   | Can m, '1' -> Event.Msg_rise m
                   | Can m, '0' -> Event.Msg_fall m
                   | _ -> assert false
                 in
                 events := { Event.time = !time; kind } :: !events)
          | tok :: _ -> fail lineno ("unparseable line: " ^ tok)
          | [] -> ())
      lines;
    let names = Array.of_list (List.rev !task_names) in
    if Array.length names = 0 then
      fail (List.length lines) "no task_* signals declared";
    let task_set =
      match Rt_task.Task_set.of_names names with
      | ts -> ts
      | exception Invalid_argument m -> fail 0 m
    in
    let events = List.rev !events in
    let period_len =
      match period_len with
      | Some l -> if l <= 0 then fail 0 "period_len must be positive" else l
      | None ->
        (match Trace.infer_period events with
         | Some l -> l
         | None ->
           1 + List.fold_left (fun acc (e : Event.t) -> max acc e.time) 0 events)
    in
    (* [Trace.segment] keeps absolute timestamps; a VCD timeline is laid
       out end to end, so re-base each period at 0 ourselves. *)
    let by_period : (int, Event.t list) Hashtbl.t = Hashtbl.create 32 in
    List.iter (fun (e : Event.t) ->
        let idx = e.time / period_len in
        let e = { e with Event.time = e.time - (idx * period_len) } in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_period idx) in
        Hashtbl.replace by_period idx (e :: cur))
      events;
    let idxs =
      Hashtbl.fold (fun k _ acc -> k :: acc) by_period []
      |> List.sort Int.compare
    in
    let ps =
      List.mapi (fun new_idx old_idx ->
          match
            Period.make ~index:new_idx ~task_set
              (List.rev (Hashtbl.find by_period old_idx))
          with
          | Ok p -> p
          | Error e ->
            fail 0
              (Printf.sprintf "period %d: %s" old_idx (Period.string_of_error e)))
        idxs
    in
    Ok (Trace.of_periods ~task_set ps, period_len)
  with Fail e -> Error e

let load ?period_len path =
  let ic = open_in path in
  let content =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  of_string ?period_len content
