(** Value Change Dump (IEEE 1364) import/export: view a trace as
    waveforms in GTKWave or any EDA waveform viewer, and read such a
    dump back as a trace. One 1-bit signal per task (high while
    executing) and one per bus identifier (high while a frame with that
    identifier is on the wire). Timescale: 1 us.

    Period events carry period-relative timestamps; the waveform lays
    periods out end to end every [period_len] microseconds. The default
    is the smallest power of ten that fits the largest event time. *)

val to_string : ?period_len:int -> Trace.t -> string

val save : ?period_len:int -> string -> Trace.t -> unit
(** Write to a file path, atomically (tmp + rename). *)

type parse_error = { line : int; message : string }
(** Structured position information, consistent with {!Trace_io}:
    [line] is 1-based; 0 means the error concerns the whole dump (e.g.
    a period that fails validation after slicing). *)

val of_string : ?period_len:int -> string -> (Trace.t * int, parse_error) result
(** Parse a VCD dump with [task_*] / [can_0x*] 1-bit signals (the shape
    {!to_string} produces) back into a trace, slicing the absolute
    timeline into periods of [period_len] microseconds and re-basing
    each period at 0. Without [period_len] the length is inferred from
    task-start recurrence ({!Trace.infer_period}); a dump without
    enough recurrence becomes a single period. Returns the trace and
    the period length used. *)

val load : ?period_len:int -> string -> (Trace.t * int, parse_error) result
(** Read from a file path. *)
