(** Candidate sender/receiver inference (the sets [A_m] of paper §3.1).

    The bus reveals neither sender nor receiver of a frame. From timing
    alone, within a period:

    - any task that {e ended} no later than the rising edge could be the
      sender (the paper assumes messages are sent only when the sender
      finishes);
    - any task that {e started} no earlier than the falling edge could be
      the receiver (a task fires on arrival of its inputs).

    [slack] relaxes both comparisons by a tolerance in microseconds, for
    traces with timestamping jitter (ablation: candidate-window
    sensitivity). *)

val senders : ?slack:int -> ?window:int -> Period.t -> Period.msg -> int list
(** Tasks that could have sent the message, ascending index order. With
    [window], only tasks that ended within [window] microseconds {e
    before} the rising edge qualify (a data-freshness assumption that
    narrows [A_m]). *)

val receivers : ?slack:int -> ?window:int -> Period.t -> Period.msg -> int list
(** With [window], only tasks that started within [window] microseconds
    after the falling edge qualify (an immediate-activation assumption). *)

val pairs :
  ?slack:int -> ?window:int -> ?hist:Rt_obs.Histogram.t ->
  Period.t -> Period.msg -> (int * int) list
(** All (sender, receiver) combinations with sender <> receiver, in
    lexicographic order. This is [A_m]. When [hist] is given the
    candidate-set size [|A_m|] is recorded into it — the learners pass
    their ["*.candidate_pairs"] histogram; the cost when absent is one
    branch. *)

val pair_count : ?slack:int -> ?window:int -> Period.t -> int
(** Total candidate pairs across all messages of the period — the
    branching factor the exact algorithm faces. *)

val unexplained : ?slack:int -> ?window:int -> Period.t -> int list
(** Bus ids of messages with an empty candidate set [A_m] — frames no
    task could have sent or received under the model of computation.
    A structurally valid period containing one (a spurious frame, or a
    real frame whose sender was lost) would collapse the learner's
    hypothesis set to ∅; recover-mode ingestion quarantines such periods
    instead. *)
