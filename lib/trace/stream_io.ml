type line_source = unit -> string option

let lines_of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  fun () ->
    match !lines with
    | [] -> None
    | l :: tl ->
      lines := tl;
      Some l

let lines_of_channel ic =
  fun () -> match input_line ic with l -> Some l | exception End_of_file -> None

let follow_lines ?(poll_interval = 0.05) ~stop ic =
  let buf = Buffer.create 256 in
  let finished = ref false in
  let take () =
    let l = Buffer.contents buf in
    Buffer.clear buf;
    Some l
  in
  let rec read () =
    match input_char ic with
    | '\n' -> take ()
    | c ->
      Buffer.add_char buf c;
      read ()
    | exception End_of_file ->
      if stop () then begin
        finished := true;
        if Buffer.length buf > 0 then take () else None
      end
      else begin
        Unix.sleepf poll_interval;
        read ()
      end
  in
  fun () -> if !finished then None else read ()

module Tail = struct
  type event =
    | Line of string
    | Opened
    | Waiting
    | Rotated
    | Truncated
    | Vanished

  type t = {
    path : string;
    buf : Buffer.t;                       (* the line under assembly *)
    mutable ic : in_channel option;
    mutable identity : (int * int) option;  (* (st_dev, st_ino) of [ic] *)
    mutable flush_then : event option;
    (* Rotation detected with a partial line pending: the old file is
       final, so its tail is yielded as a line first, then this queued
       event fires and the reopen happens. *)
  }

  let create path =
    { path; buf = Buffer.create 256; ic = None; identity = None;
      flush_then = None }

  let take t =
    let l = Buffer.contents t.buf in
    Buffer.clear t.buf;
    l

  let pending t = if Buffer.length t.buf > 0 then Some (take t) else None

  let close t =
    (match t.ic with Some ic -> close_in_noerr ic | None -> ());
    t.ic <- None;
    t.identity <- None

  (* Forget the open channel but keep the partial line: the same bytes
     will not be re-read (rotation), or will (truncation, where the
     partial belonged to overwritten content and is discarded). *)
  let drop ?(discard_partial = false) t =
    close t;
    if discard_partial then Buffer.clear t.buf

  (* The old file is final (rotated away or deleted): close it and, when
     a partial last line is pending, yield that line now and queue the
     status event for the next step. *)
  let finish_file t event =
    drop t;
    if Buffer.length t.buf > 0 then begin
      t.flush_then <- Some event;
      Line (take t)
    end
    else event

  let step t =
    match t.flush_then with
    | Some e ->
      t.flush_then <- None;
      e
    | None ->
      (match t.ic with
       | None ->
         (match open_in_bin t.path with
          | ic ->
            let st = Unix.fstat (Unix.descr_of_in_channel ic) in
            t.ic <- Some ic;
            t.identity <- Some (st.Unix.st_dev, st.Unix.st_ino);
            Opened
          | exception Sys_error _ -> Vanished)
       | Some ic ->
         let rec read () =
           match input_char ic with
           | '\n' -> Line (take t)
           | c -> Buffer.add_char t.buf c; read ()
           | exception End_of_file ->
             (* End of what is on disk right now: decide between plain
                waiting, rotation (the path names a different file) and
                truncation (the same file shrank under us). *)
             (match Unix.stat t.path with
              | exception Unix.Unix_error _ -> finish_file t Vanished
              | st ->
                if Some (st.Unix.st_dev, st.Unix.st_ino) <> t.identity
                then finish_file t Rotated
                else if st.Unix.st_size < pos_in ic then begin
                  drop ~discard_partial:true t;
                  Truncated
                end
                else Waiting)
         in
         read ())
end

let follow_path ?(poll_interval = 0.05) ?(max_backoff = 1.0) ?on_event ~stop
    path =
  let tail = Tail.create path in
  let notify ev = match on_event with Some f -> f ev | None -> () in
  let backoff = ref poll_interval in
  let finished = ref false in
  let stop_now () =
    finished := true;
    let last = Tail.pending tail in
    Tail.close tail;
    last
  in
  let rec pull () =
    match Tail.step tail with
    | Tail.Line l ->
      backoff := poll_interval;
      Some l
    | (Tail.Opened | Tail.Rotated | Tail.Truncated) as ev ->
      notify ev;
      backoff := poll_interval;
      pull ()
    | Tail.Waiting ->
      if stop () then stop_now ()
      else begin
        Unix.sleepf poll_interval;
        pull ()
      end
    | Tail.Vanished ->
      if stop () then stop_now ()
      else begin
        (* The file is gone (mid-rotation, or not created yet): retry
           with capped exponential backoff rather than spinning on a
           stale descriptor. *)
        Unix.sleepf !backoff;
        backoff := Float.min max_backoff (!backoff *. 2.0);
        pull ()
      end
  in
  fun () -> if !finished then None else pull ()

type parse_error = { line : int; message : string }

type mode = [ `Strict | `Recover ]

type t = {
  mode : mode;
  eps : int option;
  source : line_source;
  mutable lineno : int;
  mutable task_set : Rt_task.Task_set.t option;
  mutable cur_index : int option;
  mutable cur_events : Event.t list;  (* reverse line order *)
  mutable state : [ `Running | `Done | `Failed of parse_error ];
  (* Quarantine accumulators, reverse order. *)
  mutable kept : int;
  mutable skipped : Quarantine.line_issue list;
  mutable repaired : Quarantine.period_repair list;
  mutable dropped : Quarantine.period_drop list;
}

let create ?(mode = `Strict) ?eps source =
  {
    mode; eps; source;
    lineno = 0;
    task_set = None;
    cur_index = None;
    cur_events = [];
    state = `Running;
    kept = 0;
    skipped = [];
    repaired = [];
    dropped = [];
  }

let task_set t = t.task_set

let lines_read t = t.lineno

let quarantine t =
  { Quarantine.skipped_lines = List.rev t.skipped;
    kept = t.kept;
    repaired = List.rev t.repaired;
    dropped = List.rev t.dropped }

exception Fail of parse_error

let fail line message = raise (Fail { line; message })

let strict t = t.mode = `Strict

(* A malformed line is fatal in strict mode, a diagnostic in recover
   mode. *)
let skip_line t lineno message =
  if strict t then fail lineno message
  else t.skipped <- { Quarantine.line = lineno; message } :: t.skipped

(* Close the period under construction, if any. Returns it when it
   survives validation/repair; [None] when there was nothing to close or
   the period was quarantined. *)
let flush_period t lineno : Period.t option =
  match t.cur_index with
  | None -> None
  | Some index ->
    let events = List.rev t.cur_events in
    t.cur_index <- None;
    t.cur_events <- [];
    (match t.task_set with
     | None ->
       if strict t then fail lineno "period before tasks line"
       else begin
         t.dropped <-
           { Quarantine.period_index = index; reason = "before tasks line" }
           :: t.dropped;
         None
       end
     | Some ts ->
       if strict t then
         (match Period.make ~index ~task_set:ts events with
          | Ok p ->
            t.kept <- t.kept + 1;
            Some p
          | Error e ->
            fail lineno
              (Printf.sprintf "invalid period %d: %s" index
                 (Period.string_of_error e)))
       else
         (match Repair.period ?eps:t.eps ~index ~task_set:ts events with
          | Ok (p, []) ->
            t.kept <- t.kept + 1;
            Some p
          | Ok (p, fixes) ->
            t.repaired <-
              { Quarantine.period_index = index;
                fixes = List.map Repair.string_of_fix fixes }
              :: t.repaired;
            Some p
          | Error e ->
            t.dropped <-
              { Quarantine.period_index = index;
                reason = Period.string_of_error e }
              :: t.dropped;
            None))

(* Line-level parse failures signal with a local exception so recover
   mode can skip just the line. *)
exception Bad_line of string

let parse_msg_id tok =
  match int_of_string_opt tok with
  | Some m -> m
  | None -> raise (Bad_line ("bad message id: " ^ tok))

let parse_task t tok =
  match t.task_set with
  | None -> raise (Bad_line "event before tasks line")
  | Some ts ->
    (match Rt_task.Task_set.index ts tok with
     | Some i -> i
     | None -> raise (Bad_line ("unknown task: " ^ tok)))

(* Consume one line. Returns a period when the line closed one. *)
let consume_line t raw : Period.t option =
  let lineno = t.lineno in
  let line = String.trim raw in
  if line = "" || (String.length line > 0 && line.[0] = '#') then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | "tasks" :: names ->
      (if t.task_set <> None then skip_line t lineno "duplicate tasks line"
       else if names = [] then skip_line t lineno "tasks line without names"
       else
         match Rt_task.Task_set.of_names (Array.of_list names) with
         | ts -> t.task_set <- Some ts
         | exception Invalid_argument m -> skip_line t lineno m);
      None
    | [ "period"; idx ] ->
      let finished = flush_period t lineno in
      (match int_of_string_opt idx with
       | Some n -> t.cur_index <- Some n
       | None -> skip_line t lineno ("bad period index: " ^ idx));
      finished
    | [ time; verb; arg ] ->
      (match
         if t.cur_index = None then raise (Bad_line "event before a period line")
         else begin
           let time =
             match int_of_string_opt time with
             | Some tm when tm >= 0 -> tm
             | Some _ -> raise (Bad_line "negative timestamp")
             | None -> raise (Bad_line ("bad timestamp: " ^ time))
           in
           let kind =
             match verb with
             | "start" -> Event.Task_start (parse_task t arg)
             | "end" -> Event.Task_end (parse_task t arg)
             | "rise" -> Event.Msg_rise (parse_msg_id arg)
             | "fall" -> Event.Msg_fall (parse_msg_id arg)
             | _ -> raise (Bad_line ("unknown event kind: " ^ verb))
           in
           { Event.time; kind }
         end
       with
       | e -> t.cur_events <- e :: t.cur_events
       | exception Bad_line m -> skip_line t lineno m);
      None
    | _ ->
      skip_line t lineno ("unparseable line: " ^ line);
      None

let rec next t =
  match t.state with
  | `Done -> Ok None
  | `Failed e -> Error e
  | `Running ->
    (try
       match t.source () with
       | Some raw ->
         t.lineno <- t.lineno + 1;
         (match consume_line t raw with
          | Some p -> Ok (Some p)
          | None -> next t)
       | None ->
         let finished = flush_period t t.lineno in
         (match t.task_set with
          | None -> fail t.lineno "missing tasks line"
          | Some _ -> ());
         t.state <- `Done;
         (match finished with Some p -> Ok (Some p) | None -> Ok None)
     with Fail e ->
       t.state <- `Failed e;
       Error e)
