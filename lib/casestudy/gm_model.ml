module D = Rt_task.Design

let names =
  [| "S"; "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H"; "I"; "J"; "K"; "L"; "M";
     "N"; "O"; "P"; "Q" |]

let task name =
  let rec find i =
    if i >= Array.length names then raise Not_found
    else if names.(i) = name then i
    else find (i + 1)
  in
  find 0

let s = 0 and a = 1 and b = 2 and c = 3 and d_ = 4 and e = 5 and f = 6
and g = 7 and h = 8 and i_ = 9 and j = 10 and k = 11 and l = 12 and m = 13
and n = 14 and o = 15 and p_ = 16 and q = 17

(* ECU 0 hosts the mode-A functional chain plus the infrastructure tasks
   S and O and the critical sink Q; ECU 1 hosts the mode-B chain. O runs
   at higher priority than Q on the same ECU — the preemption the
   pessimistic latency analysis must assume and the learned Q-O
   dependency rules out. *)
let design () =
  let t name policy ecu priority wcet offset =
    { D.name; policy; ecu; priority; wcet; offset }
  in
  let tasks = Array.make 18 (t "?" D.Broadcast 0 1 1 0) in
  tasks.(s) <- t "S" D.Broadcast 0 1 100 0;
  tasks.(o) <- t "O" D.Broadcast 0 2 150 50;
  tasks.(a) <- t "A" D.Choose_one 0 3 200 100;
  tasks.(c) <- t "C" D.Broadcast 0 4 250 0;
  tasks.(d_) <- t "D" D.Broadcast 0 5 250 0;
  tasks.(g) <- t "G" D.Broadcast 0 6 200 0;
  tasks.(i_) <- t "I" D.Broadcast 0 7 200 0;
  tasks.(l) <- t "L" D.Broadcast 0 8 220 0;
  tasks.(n) <- t "N" D.Broadcast 0 9 200 0;
  tasks.(q) <- t "Q" D.Broadcast 0 10 300 0;
  tasks.(b) <- t "B" D.Choose_one 1 1 200 100;
  tasks.(e) <- t "E" D.Broadcast 1 2 250 0;
  tasks.(f) <- t "F" D.Broadcast 1 3 250 0;
  tasks.(j) <- t "J" D.Broadcast 1 4 200 0;
  tasks.(k) <- t "K" D.Broadcast 1 5 200 0;
  tasks.(m) <- t "M" D.Broadcast 1 6 220 0;
  tasks.(h) <- t "H" D.Broadcast 1 7 180 0;
  tasks.(p_) <- t "P" D.Broadcast 1 8 180 0;
  let edge src dst can_id tx_time =
    { D.src; dst; can_id; tx_time; medium = D.Bus }
  in
  let edges =
    [|
      edge a c 0x101 50; edge a d_ 0x102 50;
      edge b e 0x103 55; edge b f 0x104 55;
      edge c g 0x105 45; edge c l 0x106 60;
      edge d_ i_ 0x107 45; edge d_ l 0x108 60;
      edge e j 0x109 45; edge e m 0x10A 60;
      edge f k 0x10B 45; edge f m 0x10C 60;
      edge g h 0x10D 50; edge i_ h 0x10E 50;
      edge j p_ 0x10F 50; edge k p_ 0x110 50;
      edge l n 0x111 55; edge m n 0x112 55;
      edge n q 0x113 65; edge p_ q 0x114 65;
    |]
  in
  D.make ~tasks ~edges ~period:20_000

let reference_config =
  { Rt_sim.Simulator.default_config with periods = 27; seed = 2007;
    release_jitter = 30 }

let trace ?periods ?seed () =
  let config =
    { reference_config with
      periods = Option.value ~default:reference_config.periods periods;
      seed = Option.value ~default:reference_config.seed seed }
  in
  Rt_sim.Simulator.run (design ()) config
