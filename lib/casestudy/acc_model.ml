module D = Rt_task.Design

let names =
  [| "RadarAcq"; "CamAcq"; "RadarProc"; "CamProc"; "Fusion"; "AccCtl";
     "Follow"; "Cruise"; "Arbiter"; "Throttle"; "Brake"; "Hmi" |]

let task name =
  let rec find i =
    if i >= Array.length names then raise Not_found
    else if names.(i) = name then i
    else find (i + 1)
  in
  find 0

let radar_acq = 0 and cam_acq = 1 and radar_proc = 2 and cam_proc = 3
and fusion = 4 and acc_ctl = 5 and follow = 6 and cruise = 7 and arbiter = 8
and throttle = 9 and brake = 10 and hmi = 11

let design () =
  let t name policy ecu priority wcet offset =
    { D.name; policy; ecu; priority; wcet; offset }
  in
  let tasks = Array.make 12 (t "?" D.Broadcast 0 1 1 0) in
  (* ECU 0: sensor cluster. *)
  tasks.(radar_acq) <- t "RadarAcq" D.Broadcast 0 1 300 0;
  tasks.(cam_acq) <- t "CamAcq" D.Broadcast 0 2 400 50;
  tasks.(radar_proc) <- t "RadarProc" D.Broadcast 0 3 500 0;
  tasks.(cam_proc) <- t "CamProc" D.Broadcast 0 4 700 0;
  (* ECU 1: controller. *)
  tasks.(fusion) <- t "Fusion" D.Broadcast 1 1 600 0;
  tasks.(acc_ctl) <- t "AccCtl" D.Choose_one 1 2 400 0;
  tasks.(follow) <- t "Follow" D.Broadcast 1 3 350 0;
  tasks.(cruise) <- t "Cruise" D.Broadcast 1 4 300 0;
  tasks.(arbiter) <- t "Arbiter" D.Broadcast 1 5 250 0;
  (* ECU 2: actuation. *)
  tasks.(throttle) <- t "Throttle" D.Broadcast 2 1 200 0;
  tasks.(brake) <- t "Brake" D.Broadcast 2 2 200 0;
  tasks.(hmi) <- t "Hmi" D.Broadcast 2 3 300 0;
  let edge ?(medium = D.Bus) src dst can_id tx_time =
    { D.src; dst; can_id; tx_time; medium }
  in
  let edges =
    [|
      (* acquisition feeds processing ECU-internally: invisible hops *)
      edge ~medium:D.Local radar_acq radar_proc 0x201 30;
      edge ~medium:D.Local cam_acq cam_proc 0x202 30;
      edge radar_proc fusion 0x203 60;
      edge cam_proc fusion 0x204 80;
      edge ~medium:D.Local fusion acc_ctl 0x205 20;
      (* the mode switch: exactly one of the two commands per period *)
      edge acc_ctl follow 0x206 40;
      edge acc_ctl cruise 0x207 40;
      edge ~medium:D.Local follow arbiter 0x208 20;
      edge ~medium:D.Local cruise arbiter 0x209 20;
      edge arbiter throttle 0x20A 50;
      edge arbiter brake 0x20B 50;
      edge arbiter hmi 0x20C 50;
    |]
  in
  D.make ~tasks ~edges ~period:50_000

let brake_deadline_us = 10_000

(* Through the Follow mode — the worst of the two mode branches for the
   brake reaction chain. *)
let brake_path () = [ radar_proc; fusion; acc_ctl; follow; arbiter; brake ]

let reference_config =
  { Rt_sim.Simulator.default_config with periods = 40; seed = 1101;
    release_jitter = 40 }

let trace ?periods ?seed () =
  let config =
    { reference_config with
      periods = Option.value ~default:reference_config.periods periods;
      seed = Option.value ~default:reference_config.seed seed }
  in
  Rt_sim.Simulator.run (design ()) config
