(** Bounded FIFO — the strict-pipe discipline of the daemon's ingest
    side. A producer that overruns the capacity loses the {e push} (and
    the daemon sheds that stream); the consumer, the other streams and
    the daemon itself are unaffected. Nothing here blocks: the daemon is
    single-threaded by design, so overflow is a policy decision surfaced
    to the caller, not a wait. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> [ `Ok | `Overflow ]
(** [`Overflow] leaves the queue unchanged and bumps {!rejected}. *)

val pop : 'a t -> 'a option

val rejected : 'a t -> int
(** Pushes refused so far — the stream's shed evidence. *)
