(** rtgend: the supervised multi-stream learning daemon behind
    [rtgen serve].

    One single-threaded [Unix.select] loop multiplexes every input —
    trace connections on a unix socket, spool files followed with
    {!Rt_trace.Stream_io.Tail}, control clients — and turns each
    stream's crank with a bounded per-tick budget, so no stream can
    starve the others. Heavy lifting (the heuristic fan-out) runs on a
    shared {!Rt_util.Domain_pool}; everything else, including all
    counters, stays on the orchestrating domain, which keeps the totals
    deterministic.

    Failure domains are per-stream by construction: a crash (parse
    latch, engine exception, vanished/rotated spool file) goes to that
    stream's {!Supervisor}; queue overflow on a socket stream sheds
    {e that stream}, never the daemon; over-limit connects are refused
    with a clean [BUSY] line; corrupt stream content degrades through
    recover-mode quarantine. Spool streams checkpoint periodically
    (atomic tmp+rename, the [learn --checkpoint] format) so a SIGKILLed
    daemon restarted over the same spool finishes with models
    byte-equal to an uninterrupted run. *)

type config = {
  spool : string option;          (** directory of [*.trace] files to follow *)
  listen : string option;         (** unix socket accepting trace streams *)
  control : string option;        (** unix socket speaking {!Control} *)
  out_dir : string;               (** where [ID.model] files land *)
  checkpoint_dir : string option; (** where [ID.ckpt] files land *)
  store : string option;
      (** content-addressed {!Rt_store.Store} directory (created on
          demand). When set it supersedes [checkpoint_dir]: spool
          streams checkpoint to [ckpt/ID] refs, and every finalized
          model is also committed as a [model/ID] generation (the
          fleet-merge / drift-diff interchange) in addition to the
          [out_dir] file. *)
  checkpoint_every : int;         (** periods between checkpoints *)
  bound : int;                    (** heuristic bound for every stream *)
  window : int option;
  eps : int option;
  jobs : int;                     (** shared domain-pool size; 1 = none *)
  max_streams : int;              (** admission limit on live streams *)
  queue_capacity : int;           (** per-stream ingest queue, in lines *)
  pump_budget : int;              (** periods per stream per tick *)
  tick : float;                   (** select timeout / spool scan cadence *)
  policy : Supervisor.policy;
  metrics_path : string option;   (** metrics JSON dumped at exit *)
  flight_capacity : int;          (** flight-recorder ring size (events) *)
  flight_path : string option;
      (** flight dump (rtgen-flight JSON) written at exit and eagerly on
          every stream failure / quarantine latch *)
  stop_after_total : int option;
      (** abrupt exit (no final checkpoints, no models) once this many
          periods were handled — deterministic SIGKILL emulation *)
  drain_after_total : int option;
      (** switch to draining once this many periods were handled —
          deterministic end-of-test trigger *)
  handle_signals : bool;
      (** install SIGTERM/SIGINT → drain handlers (off for in-process
          tests, which must not clobber the host's handlers) *)
}

val default : config
(** No sources, [out_dir = "."], bound 2, 64-stream limit, 4096-line
    queues, 64-period pump budget, 50 ms tick, checkpoint every 64
    periods, {!Supervisor.default_policy}, signals handled. *)

type outcome =
  | Drained   (** every stream finalized (or terminally failed) *)
  | Stopped   (** [stop_after_total] hit: left as a kill would *)

val run : ?clock:(unit -> float) -> config -> (outcome, string) result
(** Run the daemon to completion. [Error] only for setup failures
    (unusable socket path, missing spool directory); per-stream trouble
    is supervised, counted and reported, never fatal. *)
