type policy = {
  max_restarts : int;
  backoff_base : float;
  backoff_factor : float;
  backoff_cap : float;
  stall_timeout : float;
  idle_timeout : float;
}

let default_policy =
  {
    max_restarts = 5;
    backoff_base = 0.1;
    backoff_factor = 2.0;
    backoff_cap = 5.0;
    stall_timeout = 30.0;
    idle_timeout = infinity;
  }

type phase =
  | Running
  | Backing_off of { until : float; reason : string }
  | Failed of string
  | Finalized

type t = {
  policy : policy;
  mutable phase : phase;
  mutable restarts : int;
  mutable last_data : float;
  mutable last_progress : float;
  mutable quarantined : bool;
}

let create ?(policy = default_policy) ~now () =
  {
    policy;
    phase = Running;
    restarts = 0;
    last_data = now;
    last_progress = now;
    quarantined = false;
  }

let phase t = t.phase

let restarts t = t.restarts

let quarantined t = t.quarantined

let set_quarantined t = t.quarantined <- true

let backoff_delay p ~restart =
  let exp = float_of_int (max 0 (restart - 1)) in
  Float.min p.backoff_cap (p.backoff_base *. (p.backoff_factor ** exp))

let note_data t ~now = t.last_data <- now

let note_progress t ~now = t.last_progress <- now

let note_crash t ~now ~reason =
  if t.restarts >= t.policy.max_restarts then begin
    t.phase <- Failed reason;
    `Failed
  end
  else begin
    t.restarts <- t.restarts + 1;
    let until = now +. backoff_delay t.policy ~restart:t.restarts in
    t.phase <- Backing_off { until; reason };
    `Backoff until
  end

let note_restart t ~now =
  t.phase <- Running;
  t.last_data <- now;
  t.last_progress <- now

let fail t ~reason = t.phase <- Failed reason

let finalize t = t.phase <- Finalized

type verdict = Continue | Restart | Stalled | Idle

let poll t ~now ~pending =
  match t.phase with
  | Failed _ | Finalized -> Continue
  | Backing_off { until; _ } -> if now >= until then Restart else Continue
  | Running ->
    if pending then
      if now -. t.last_progress > t.policy.stall_timeout then Stalled
      else Continue
    else if now -. Float.max t.last_data t.last_progress > t.policy.idle_timeout
    then Idle
    else Continue
