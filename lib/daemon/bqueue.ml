type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  mutable rejected : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { q = Queue.create (); capacity; rejected = 0 }

let capacity t = t.capacity

let length t = Queue.length t.q

let is_empty t = Queue.is_empty t.q

let push t x =
  if Queue.length t.q >= t.capacity then begin
    t.rejected <- t.rejected + 1;
    `Overflow
  end
  else begin
    Queue.push x t.q;
    `Ok
  end

let pop t = Queue.take_opt t.q

let rejected t = t.rejected
