module Sio = Rt_trace.Stream_io
module Reg = Rt_obs.Registry

type config = {
  spool : string option;
  listen : string option;
  control : string option;
  out_dir : string;
  checkpoint_dir : string option;
  store : string option;
  checkpoint_every : int;
  bound : int;
  window : int option;
  eps : int option;
  jobs : int;
  max_streams : int;
  queue_capacity : int;
  pump_budget : int;
  tick : float;
  policy : Supervisor.policy;
  metrics_path : string option;
  flight_capacity : int;
  flight_path : string option;
  stop_after_total : int option;
  drain_after_total : int option;
  handle_signals : bool;
}

let default =
  {
    spool = None;
    listen = None;
    control = None;
    out_dir = ".";
    checkpoint_dir = None;
    store = None;
    checkpoint_every = 64;
    bound = 2;
    window = None;
    eps = None;
    jobs = 1;
    max_streams = 64;
    queue_capacity = 4096;
    pump_budget = 64;
    tick = 0.05;
    policy = Supervisor.default_policy;
    metrics_path = None;
    flight_capacity = 1024;
    flight_path = None;
    stop_after_total = None;
    drain_after_total = None;
    handle_signals = true;
  }

type outcome = Drained | Stopped

type spool_src = {
  spath : string;
  mutable tail : Sio.Tail.t;
  mutable opened : bool;  (* distinguishes "not yet created" from
                             "vanished under us" *)
}

type conn_src = { mutable cfd : Unix.file_descr option; rbuf : Buffer.t }

type source = Spool of spool_src | Conn of conn_src

type entry = {
  id : string;
  source : source;
  sup : Supervisor.t;
  mutable stream : Stream.t option;  (* None while backing off or shed *)
  mutable shed : bool;
  mutable last_fed : int;  (* last observed periods_fed; survives the
                              stream object being discarded *)
  mutable ckpt_seen : int;  (* checkpoints_written at the last check *)
  mutable ckpt_at : float option;  (* daemon-clock time of the newest one *)
}

type state = {
  cfg : config;
  reg : Reg.t;
  flight : Rt_obs.Flight.t;
  store : Rt_store.Store.t option;  (* opened once at startup *)
  mutable now : float;  (* the loop's current clock, for status ages *)
  pool : Rt_util.Domain_pool.t option;
  entries : (string, entry) Hashtbl.t;
  mutable order : string list;  (* ids, newest first *)
  deferred : (string, unit) Hashtbl.t;  (* spool files refused as BUSY *)
  mutable conn_seq : int;
  mutable ctrl_clients : (Unix.file_descr * Buffer.t) list;
  mutable draining : bool;
  mutable running : bool;
  mutable busy_tick : bool;  (* progress this tick: skip the select sleep *)
  mutable total_handled : int;
  mutable c_accepted : int;
  mutable c_busy : int;
  mutable c_shed : int;
  mutable c_failed : int;
  mutable c_finalized : int;
  mutable c_restarts : int;
  mutable c_quarantined : int;
  mutable c_checkpoints_base : int;  (* from discarded stream objects *)
}

let logf fmt = Printf.eprintf ("rtgend: " ^^ fmt ^^ "\n%!")

let fl st sev ~stream ~kind detail =
  Rt_obs.Flight.record st.flight sev ~stream ~kind detail

(* Post-mortem dump: written at exit, and eagerly on every stream
   failure or quarantine latch so a later hard death cannot lose it. *)
let dump_flight st =
  match st.cfg.flight_path with
  | None -> ()
  | Some p ->
    Rt_util.Atomic_file.write p
      (Rt_obs.Json.to_string ~pretty:true (Rt_obs.Flight.to_json st.flight))

let is_active e =
  (not e.shed)
  &&
  match Supervisor.phase e.sup with
  | Supervisor.Failed _ | Supervisor.Finalized -> false
  | Supervisor.Running | Supervisor.Backing_off _ -> true

let fold_entries st f acc =
  List.fold_left (fun acc id -> f acc (Hashtbl.find st.entries id)) acc
    (List.rev st.order)

let iter_entries st f = fold_entries st (fun () e -> f e) ()

let active_count st =
  fold_entries st (fun n e -> if is_active e then n + 1 else n) 0

let total_periods st = fold_entries st (fun n e -> n + e.last_fed) 0

let total_checkpoints st =
  fold_entries st
    (fun n e ->
      n + match e.stream with Some s -> Stream.checkpoints_written s | None -> 0)
    st.c_checkpoints_base

(* Checkpoint destination: the store wins when both are configured —
   every write becomes a new [ckpt/<id>] generation — otherwise one
   [<id>.ckpt] file under the checkpoint dir. *)
let checkpoint_slot_of st id =
  match st.store with
  | Some s -> Some (Rt_store.Slot.Ref (s, "ckpt/" ^ id))
  | None ->
    Option.map
      (fun d -> Rt_store.Slot.File (Filename.concat d (id ^ ".ckpt")))
      st.cfg.checkpoint_dir

(* Socket streams never checkpoint: their input dies with the
   connection, so a later daemon run could never replay it — and a
   stale [connN.ckpt] would alias an unrelated future connection. *)
let make_stream st ~checkpointed id =
  let checkpoint = if checkpointed then checkpoint_slot_of st id else None in
  let s, note =
    Stream.create ~id ?pool:st.pool
      ~flight:(Rt_obs.Flight.scope st.flight id)
      {
        Stream.bound = st.cfg.bound;
        window = st.cfg.window;
        eps = st.cfg.eps;
        queue_capacity = st.cfg.queue_capacity;
        checkpoint;
        checkpoint_every = st.cfg.checkpoint_every;
      }
  in
  (match note with Some n -> logf "stream %s: %s" id n | None -> ());
  if Stream.periods_fed s > 0 then
    logf "stream %s: resumed from checkpoint (%d periods already learned)" id
      (Stream.periods_fed s);
  s

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (match Unix.select [] [ fd ] [] 0.2 with
         | _, [ _ ], _ -> go off
         | _ -> ()  (* receiver not draining: give up rather than wedge *)
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off)
  in
  go 0

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* --- per-stream lifecycle ------------------------------------------- *)

let retire_stream st e =
  match e.stream with
  | None -> ()
  | Some s ->
    e.last_fed <- Stream.periods_fed s;
    st.c_checkpoints_base <- st.c_checkpoints_base + Stream.checkpoints_written s;
    e.stream <- None

let shed st e reason =
  e.shed <- true;
  st.c_shed <- st.c_shed + 1;
  (match e.source with
   | Conn c ->
     Option.iter close_fd c.cfd;
     c.cfd <- None
   | Spool sp -> Sio.Tail.close sp.tail);
  retire_stream st e;
  fl st Rt_obs.Flight.Warn ~stream:e.id ~kind:"stream.shed" reason;
  logf "stream %s shed: %s" e.id reason

(* [drop_checkpoint] when the on-disk file's identity changed (rotated,
   truncated, vanished): the checkpointed prefix can no longer be
   replayed against what the path now holds, so the restart must relearn
   from byte 0 — always correct, merely slower. *)
let crash st now e ~drop_checkpoint reason =
  retire_stream st e;
  (match e.source with
   | Spool sp ->
     Sio.Tail.close sp.tail;
     if drop_checkpoint then
       Option.iter Rt_store.Slot.discard (checkpoint_slot_of st e.id)
   | Conn c ->
     Option.iter close_fd c.cfd;
     c.cfd <- None);
  fl st Rt_obs.Flight.Error ~stream:e.id ~kind:"stream.crash" reason;
  match e.source with
  | Conn _ ->
    (* the connection's bytes are gone: nothing to restart from *)
    Supervisor.fail e.sup ~reason;
    st.c_failed <- st.c_failed + 1;
    fl st Rt_obs.Flight.Error ~stream:e.id ~kind:"stream.failed"
      ("socket stream, unrecoverable: " ^ reason);
    dump_flight st;
    logf "stream %s FAILED (socket stream, unrecoverable): %s" e.id reason
  | Spool _ ->
    (match Supervisor.note_crash e.sup ~now ~reason with
     | `Failed ->
       st.c_failed <- st.c_failed + 1;
       fl st Rt_obs.Flight.Error ~stream:e.id ~kind:"stream.failed"
         (Printf.sprintf "after %d restarts: %s" (Supervisor.restarts e.sup)
            reason);
       dump_flight st;
       logf "stream %s FAILED after %d restarts: %s" e.id
         (Supervisor.restarts e.sup) reason
     | `Backoff until ->
       logf "stream %s crashed (%s); restart #%d in %.2fs" e.id reason
         (Supervisor.restarts e.sup) (until -. now))

let restart st now e =
  match e.source with
  | Conn _ -> ()
  | Spool sp ->
    st.c_restarts <- st.c_restarts + 1;
    sp.tail <- Sio.Tail.create sp.spath;
    sp.opened <- false;
    let s = make_stream st ~checkpointed:true e.id in
    e.stream <- Some s;
    e.last_fed <- Stream.periods_fed s;
    e.ckpt_seen <- Stream.checkpoints_written s;
    Supervisor.note_restart e.sup ~now;
    fl st Rt_obs.Flight.Info ~stream:e.id ~kind:"stream.restart"
      (Printf.sprintf "attempt %d" (Supervisor.restarts e.sup));
    logf "stream %s restarted (attempt %d)" e.id (Supervisor.restarts e.sup)

let note_quarantine st e s =
  if
    (not (Supervisor.quarantined e.sup))
    && not (Rt_trace.Quarantine.is_empty (Stream.quarantine s))
  then begin
    Supervisor.set_quarantined e.sup;
    st.c_quarantined <- st.c_quarantined + 1;
    fl st Rt_obs.Flight.Warn ~stream:e.id ~kind:"stream.quarantine"
      (Rt_trace.Quarantine.summary (Stream.quarantine s));
    dump_flight st;
    logf "stream %s: recover-mode quarantine engaged (%s)" e.id
      (Rt_trace.Quarantine.summary (Stream.quarantine s))
  end

(* Track checkpoint writes the stream performed since we last looked,
   so [status] can report how stale each stream's newest one is. *)
let note_ckpt st e s =
  let n = Stream.checkpoints_written s in
  if n > e.ckpt_seen then begin
    e.ckpt_seen <- n;
    e.ckpt_at <- Some st.now
  end

let finalize_entry st e =
  match e.stream with
  | None -> ()
  | Some s ->
    e.last_fed <- Stream.periods_fed s;
    note_quarantine st e s;
    Stream.write_checkpoint s;
    note_ckpt st e s;
    (match Stream.render_model s with
     | Ok text ->
       let path = Filename.concat st.cfg.out_dir (e.id ^ ".model") in
       Rt_util.Atomic_file.write path text;
       (* Also publish the finalized model to the store: one versioned
          [model/<id>] generation per finalize, so a fleet merge (or a
          later diff) can read it without touching out_dir. *)
       (match st.store with
        | None -> ()
        | Some store ->
          let meta =
            { Rt_store.Store.kind = Rt_store.Store.Model;
              bound = Some st.cfg.bound;
              source = Some e.id;
              parents = [];
              created_at = e.last_fed }
          in
          let blob = Rt_store.Codec.model_wrap text in
          (match
             Rt_store.Store.commit store ~ref_:("model/" ^ e.id) ~meta blob
           with
           | Ok entry ->
             fl st Rt_obs.Flight.Info ~stream:e.id ~kind:"store.commit"
               (Printf.sprintf "model/%s gen %d %s" e.id
                  entry.Rt_store.Store.gen entry.Rt_store.Store.address)
           | Error m ->
             fl st Rt_obs.Flight.Warn ~stream:e.id ~kind:"store.error" m));
       Supervisor.finalize e.sup;
       st.c_finalized <- st.c_finalized + 1;
       fl st Rt_obs.Flight.Info ~stream:e.id ~kind:"stream.finalize"
         (Printf.sprintf "%d periods -> %s" e.last_fed path);
       logf "stream %s finalized: %d periods -> %s" e.id e.last_fed path
     | Error m ->
       Supervisor.fail e.sup ~reason:m;
       st.c_failed <- st.c_failed + 1;
       fl st Rt_obs.Flight.Error ~stream:e.id ~kind:"stream.failed"
         ("at finalize: " ^ m);
       dump_flight st;
       logf "stream %s failed at finalize: %s" e.id m)

(* Push a line even when the queue is full, by pumping to make room —
   only used on the end-of-input paths, where losing the line would
   break the byte-equality contract. False when the stream crashed. *)
let rec offer_forcing st s l =
  match Stream.offer_line s l with
  | `Ok -> true
  | `Overflow ->
    let handled, status = Stream.pump s ~budget:st.cfg.pump_budget in
    st.total_handled <- st.total_handled + handled;
    (match status with
     | Stream.Crashed _ -> false
     | Stream.Blocked | Stream.More | Stream.Done -> offer_forcing st s l)

(* Consume everything the source still has, declare end-of-input, pump
   to completion and finalize — the idle-watchdog and drain path. *)
let finish_stream st now e =
  match e.stream with
  | None -> ()
  | Some s ->
    (match e.source with
     | Spool sp ->
       let reading = ref true in
       while !reading do
         match Sio.Tail.step sp.tail with
         | Sio.Tail.Line l -> if not (offer_forcing st s l) then reading := false
         | Sio.Tail.Opened -> sp.opened <- true
         | Sio.Tail.Waiting | Sio.Tail.Vanished -> reading := false
         | Sio.Tail.Rotated | Sio.Tail.Truncated -> reading := false
       done;
       (match Sio.Tail.pending sp.tail with
        | Some l -> ignore (offer_forcing st s l)
        | None -> ());
       Sio.Tail.close sp.tail
     | Conn c ->
       Option.iter close_fd c.cfd;
       c.cfd <- None;
       if Buffer.length c.rbuf > 0 then begin
         ignore (offer_forcing st s (Buffer.contents c.rbuf));
         Buffer.clear c.rbuf
       end);
    Stream.close_input s;
    let finished = ref false in
    while not !finished do
      let handled, status = Stream.pump s ~budget:st.cfg.pump_budget in
      st.total_handled <- st.total_handled + handled;
      if handled > 0 then e.last_fed <- Stream.periods_fed s;
      match status with
      | Stream.Done ->
        finalize_entry st e;
        finished := true
      | Stream.Crashed m ->
        crash st now e ~drop_checkpoint:false m;
        finished := true
      | Stream.Blocked ->
        (* input closed and queue empty: the parser will see EOF on the
           next pump, but guard against looping forever regardless *)
        finished := true
      | Stream.More -> ()
    done

(* --- spool ----------------------------------------------------------- *)

let admit_spool st now id path =
  Hashtbl.remove st.deferred id;
  let e =
    {
      id;
      source = Spool { spath = path; tail = Sio.Tail.create path; opened = false };
      sup = Supervisor.create ~policy:st.cfg.policy ~now ();
      stream = None;
      shed = false;
      last_fed = 0;
      ckpt_seen = 0;
      ckpt_at = None;
    }
  in
  fl st Rt_obs.Flight.Info ~stream:id ~kind:"stream.admit" ("spool " ^ path);
  let s = make_stream st ~checkpointed:true id in
  e.stream <- Some s;
  e.last_fed <- Stream.periods_fed s;
  e.ckpt_seen <- Stream.checkpoints_written s;
  Hashtbl.add st.entries id e;
  st.order <- id :: st.order;
  st.c_accepted <- st.c_accepted + 1;
  logf "following %s (stream %s)" path id

let scan st now =
  match st.cfg.spool with
  | None -> ()
  | Some dir ->
    (match Sys.readdir dir with
     | exception Sys_error _ -> ()
     | files ->
       Array.sort String.compare files;
       Array.iter
         (fun f ->
           if Filename.check_suffix f ".trace" then begin
             let id = Filename.remove_extension f in
             if not (Hashtbl.mem st.entries id) then
               if (not st.draining) && active_count st < st.cfg.max_streams
               then admit_spool st now id (Filename.concat dir f)
               else if not (Hashtbl.mem st.deferred id) then begin
                 Hashtbl.add st.deferred id ();
                 st.c_busy <- st.c_busy + 1;
                 fl st Rt_obs.Flight.Warn ~stream:id ~kind:"stream.defer"
                   (Printf.sprintf "BUSY (%d/%d streams active)"
                      (active_count st) st.cfg.max_streams);
                 logf "stream %s deferred: BUSY (%d/%d streams active)" id
                   (active_count st) st.cfg.max_streams
               end
           end)
         files)

let step_spool st now e sp s =
  let continue = ref true in
  while !continue do
    if Stream.queued s >= Stream.queue_capacity s then
      (* backpressure: stop pulling from disk until the engine catches
         up — a slow stream never sheds its own spool file *)
      continue := false
    else
      match Sio.Tail.step sp.tail with
      | Sio.Tail.Line l ->
        ignore (Stream.offer_line s l);
        Supervisor.note_data e.sup ~now;
        st.busy_tick <- true
      | Sio.Tail.Opened -> sp.opened <- true
      | Sio.Tail.Waiting -> continue := false
      | Sio.Tail.Vanished ->
        continue := false;
        if sp.opened then
          crash st now e ~drop_checkpoint:true "spool file vanished"
      | Sio.Tail.Rotated ->
        continue := false;
        crash st now e ~drop_checkpoint:true
          "spool file rotated (relearning from the new file)"
      | Sio.Tail.Truncated ->
        continue := false;
        crash st now e ~drop_checkpoint:true
          "spool file truncated (relearning)"
  done

(* --- data connections ------------------------------------------------ *)

let conn_eof st e c =
  Option.iter close_fd c.cfd;
  c.cfd <- None;
  match e.stream with
  | None -> ()
  | Some s ->
    (* a final line without its newline still counts, as input_line's
       would — byte-parity with [learn --stream] on the same bytes *)
    if Buffer.length c.rbuf > 0 then begin
      ignore (offer_forcing st s (Buffer.contents c.rbuf));
      Buffer.clear c.rbuf
    end;
    Stream.close_input s

let handle_conn st now e c fd =
  let chunk = Bytes.create 4096 in
  match Unix.read fd chunk 0 4096 with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> conn_eof st e c
  | 0 -> conn_eof st e c
  | n ->
    Supervisor.note_data e.sup ~now;
    st.busy_tick <- true;
    Buffer.add_subbytes c.rbuf chunk 0 n;
    let content = Buffer.contents c.rbuf in
    Buffer.clear c.rbuf;
    let len = String.length content in
    let rec split start =
      if start >= len then ()
      else
        match String.index_from_opt content start '\n' with
        | None -> Buffer.add_substring c.rbuf content start (len - start)
        | Some i ->
          let line = String.sub content start (i - start) in
          (match e.stream with
           | Some s when not e.shed ->
             (match Stream.offer_line s line with
              | `Ok -> split (i + 1)
              | `Overflow ->
                (* strict-pipe shed: this stream dies, its neighbours
                   and the daemon do not *)
                shed st e
                  (Printf.sprintf "ingest queue overflow (%d lines)"
                     (Stream.queue_capacity s)))
           | Some _ | None -> ())
    in
    split 0

let accept_data st now lfd =
  match Unix.accept lfd with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | fd, _ ->
    Unix.set_nonblock fd;
    if st.draining || active_count st >= st.cfg.max_streams then begin
      st.c_busy <- st.c_busy + 1;
      write_all fd "BUSY\n";
      close_fd fd;
      fl st Rt_obs.Flight.Warn ~stream:"" ~kind:"stream.defer"
        (Printf.sprintf "connection refused: BUSY (%d/%d streams active)"
           (active_count st) st.cfg.max_streams);
      logf "connection refused: BUSY (%d/%d streams active)" (active_count st)
        st.cfg.max_streams
    end
    else begin
      st.conn_seq <- st.conn_seq + 1;
      let id = Printf.sprintf "conn%d" st.conn_seq in
      fl st Rt_obs.Flight.Info ~stream:id ~kind:"stream.admit" "socket connection";
      let e =
        {
          id;
          source = Conn { cfd = Some fd; rbuf = Buffer.create 256 };
          sup = Supervisor.create ~policy:st.cfg.policy ~now ();
          stream = Some (make_stream st ~checkpointed:false id);
          shed = false;
          last_fed = 0;
          ckpt_seen = 0;
          ckpt_at = None;
        }
      in
      Hashtbl.add st.entries id e;
      st.order <- id :: st.order;
      st.c_accepted <- st.c_accepted + 1;
      write_all fd ("OK " ^ id ^ "\n");
      logf "accepted stream %s" id
    end

(* --- control socket -------------------------------------------------- *)

let publish st =
  let set = Reg.set_counter st.reg in
  set "daemon.streams_accepted" st.c_accepted;
  set "daemon.busy_rejections" st.c_busy;
  set "daemon.streams_shed" st.c_shed;
  set "daemon.streams_failed" st.c_failed;
  set "daemon.streams_finalized" st.c_finalized;
  set "daemon.restarts" st.c_restarts;
  set "daemon.streams_quarantined" st.c_quarantined;
  set "daemon.checkpoints" (total_checkpoints st);
  set "daemon.periods" (total_periods st);
  Reg.set_gauge_named st.reg "daemon.streams_active" (active_count st);
  iter_entries st (fun e ->
      Reg.set_gauge_named st.reg
        (Printf.sprintf "daemon.stream.%s.periods" e.id)
        e.last_fed;
      Reg.set_gauge_named st.reg
        (Printf.sprintf "daemon.stream.%s.queue" e.id)
        (match e.stream with Some s -> Stream.queued s | None -> 0))

let status_text st =
  let b = Buffer.create 512 in
  Buffer.add_string b "rtgend status\n";
  iter_entries st (fun e ->
      let phase =
        if e.shed then "shed"
        else
          match Supervisor.phase e.sup with
          | Supervisor.Running -> "running"
          | Supervisor.Backing_off _ -> "backing-off"
          | Supervisor.Failed _ -> "failed"
          | Supervisor.Finalized -> "finalized"
      in
      let ckpt_age =
        match e.ckpt_at with
        | None -> "-"
        | Some t -> Printf.sprintf "%.1fs" (Float.max 0.0 (st.now -. t))
      in
      Buffer.add_string b
        (Printf.sprintf
           "stream %s phase=%s periods=%d hypotheses=%d restarts=%d queue=%d \
            quarantined=%b shed=%b ckpt_age=%s\n"
           e.id phase e.last_fed
           (match e.stream with Some s -> Stream.hypotheses s | None -> 0)
           (Supervisor.restarts e.sup)
           (match e.stream with Some s -> Stream.queued s | None -> 0)
           (Supervisor.quarantined e.sup) e.shed ckpt_age));
  Buffer.add_string b
    (Printf.sprintf
       "totals accepted=%d active=%d finalized=%d failed=%d shed=%d busy=%d \
        restarts=%d periods=%d\n"
       st.c_accepted (active_count st) st.c_finalized st.c_failed st.c_shed
       st.c_busy st.c_restarts (total_periods st));
  Buffer.contents b

let snapshot_text st id =
  match Hashtbl.find_opt st.entries id with
  | None -> Printf.sprintf "error: no such stream: %s\n" id
  | Some e ->
    (match e.stream with
     | None -> "error: stream has no live engine\n"
     | Some s ->
       (match Stream.snapshot s with
        | Error m -> "error: " ^ m ^ "\n"
        | Ok (snap, names) ->
          (match snap.Rt_engine.Engine.lub with
           | None -> "error: empty hypothesis set\n"
           | Some lub ->
             Printf.sprintf "stream %s periods=%d hypotheses=%d converged=%b\n%s\n"
               id snap.Rt_engine.Engine.periods
               (List.length snap.Rt_engine.Engine.hypotheses)
               snap.Rt_engine.Engine.converged
               (Rt_lattice.Depfun.to_string ?names lub))))

let respond_control st line =
  match Control.parse line with
  | Error m -> "error: " ^ m ^ "\n"
  | Ok Control.Status -> status_text st
  | Ok Control.Metrics ->
    publish st;
    Rt_obs.Json.to_string (Reg.to_json st.reg) ^ "\n"
  | Ok (Control.Snapshot id) -> snapshot_text st id
  | Ok Control.Flight ->
    Rt_obs.Json.to_string (Rt_obs.Flight.to_json st.flight) ^ "\n"
  | Ok Control.Prometheus ->
    publish st;
    Rt_obs.Prom.of_registry st.reg
  | Ok Control.Drain ->
    st.draining <- true;
    "OK draining\n"

let accept_ctrl st lfd =
  match Unix.accept lfd with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | fd, _ ->
    Unix.set_nonblock fd;
    st.ctrl_clients <- (fd, Buffer.create 64) :: st.ctrl_clients

let drop_ctrl st fd =
  close_fd fd;
  st.ctrl_clients <- List.filter (fun (f, _) -> f <> fd) st.ctrl_clients

let handle_ctrl st fd buf =
  let chunk = Bytes.create 1024 in
  match Unix.read fd chunk 0 1024 with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> drop_ctrl st fd
  | 0 -> drop_ctrl st fd
  | n ->
    Buffer.add_subbytes buf chunk 0 n;
    let content = Buffer.contents buf in
    (match String.index_opt content '\n' with
     | Some i ->
       let resp = respond_control st (String.sub content 0 i) in
       write_all fd resp;
       drop_ctrl st fd
     | None -> if Buffer.length buf > 1024 then drop_ctrl st fd)

(* --- main loop ------------------------------------------------------- *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with e ->
     close_fd fd;
     raise e);
  fd

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let pump_entry st now e =
  match e.stream with
  | None -> ()
  | Some s ->
    let handled, status = Stream.pump s ~budget:st.cfg.pump_budget in
    if handled > 0 then begin
      Supervisor.note_progress e.sup ~now;
      st.total_handled <- st.total_handled + handled;
      e.last_fed <- Stream.periods_fed s;
      st.busy_tick <- true
    end;
    note_ckpt st e s;
    note_quarantine st e s;
    (match status with
     | Stream.Crashed m -> crash st now e ~drop_checkpoint:false m
     | Stream.Done -> finalize_entry st e
     | Stream.Blocked | Stream.More -> ())

let supervise_entry st now e =
  if not e.shed then begin
    let pending =
      match e.stream with Some s -> Stream.queued s > 0 | None -> false
    in
    match Supervisor.poll e.sup ~now ~pending with
    | Supervisor.Continue -> ()
    | Supervisor.Restart -> restart st now e
    | Supervisor.Stalled ->
      crash st now e ~drop_checkpoint:false
        (Printf.sprintf "stalled: queued input but no progress for %.1fs"
           st.cfg.policy.Supervisor.stall_timeout)
    | Supervisor.Idle ->
      logf "stream %s idle for %.1fs: finalizing" e.id
        st.cfg.policy.Supervisor.idle_timeout;
      finish_stream st now e
  end

(* Drive every stream to a terminal phase. A stream whose drain-time
   finish crashes lands in [Backing_off]; looping restarts it right away
   (no point honoring the delay while exiting) and retries, so the
   restart budget — not a single pass — decides between [Finalized] and
   [Failed], and the accepted = active + finalized + failed + shed
   accounting stays exact. *)
let drain_all st now =
  fl st Rt_obs.Flight.Info ~stream:"" ~kind:"drain.begin"
    (Printf.sprintf "%d active stream(s)" (active_count st));
  logf "draining %d active stream(s)" (active_count st);
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun id ->
        let e = Hashtbl.find st.entries id in
        if not e.shed then begin
          (match Supervisor.phase e.sup with
           | Supervisor.Backing_off _ ->
             restart st now e;
             progressed := true
           | Supervisor.Running | Supervisor.Failed _ | Supervisor.Finalized ->
             ());
          match (Supervisor.phase e.sup, e.stream) with
          | Supervisor.Running, Some _ ->
            finish_stream st now e;
            (match Supervisor.phase e.sup with
             | Supervisor.Backing_off _ -> progressed := true
             | _ -> ())
          | _, _ -> ()
        end)
      (List.rev st.order)
  done

let run ?clock cfg =
  let clock =
    match clock with
    | Some c -> c
    | None -> fun () -> float_of_int (Rt_obs.Registry.now_ns ()) /. 1e9
  in
  match
    (match cfg.spool with
     | Some dir when not (Sys.is_directory dir) ->
       Error (Printf.sprintf "spool %s is not a directory" dir)
     | exception Sys_error m -> Error m
     | _ ->
       if cfg.spool = None && cfg.listen = None then
         Error "nothing to serve: need --spool and/or --listen"
       else Ok ())
  with
  | Error m -> Error m
  | Ok () ->
    mkdir_p cfg.out_dir;
    Option.iter mkdir_p cfg.checkpoint_dir;
    (match
       match cfg.store with
       | None -> Ok None
       | Some dir -> Result.map Option.some (Rt_store.Store.init dir)
     with
     | Error m -> Error ("store: " ^ m)
     | Ok store ->
    (match
       let data_l = Option.map listen_unix cfg.listen in
       let ctrl_l =
         try Option.map listen_unix cfg.control
         with e ->
           Option.iter close_fd data_l;
           raise e
       in
       (data_l, ctrl_l)
     with
     | exception Unix.Unix_error (e, _, arg) ->
       Error
         (Printf.sprintf "cannot listen on %s: %s" arg (Unix.error_message e))
     | data_l, ctrl_l ->
       let st =
         {
           cfg;
           reg = Reg.create ();
           flight = Rt_obs.Flight.create ~capacity:cfg.flight_capacity ();
           store;
           now = clock ();
           pool =
             (if cfg.jobs > 1 then
                Some (Rt_util.Domain_pool.create ~jobs:cfg.jobs)
              else None);
           entries = Hashtbl.create 64;
           order = [];
           deferred = Hashtbl.create 16;
           conn_seq = 0;
           ctrl_clients = [];
           draining = false;
           running = true;
           busy_tick = false;
           total_handled = 0;
           c_accepted = 0;
           c_busy = 0;
           c_shed = 0;
           c_failed = 0;
           c_finalized = 0;
           c_restarts = 0;
           c_quarantined = 0;
           c_checkpoints_base = 0;
         }
       in
       let drain_req = ref false in
       if cfg.handle_signals then begin
         let h = Sys.Signal_handle (fun _ -> drain_req := true) in
         Sys.set_signal Sys.sigterm h;
         Sys.set_signal Sys.sigint h
       end;
       (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
        with Invalid_argument _ -> ());
       logf "serving%s%s%s (bound %d, %d max streams)"
         (match cfg.spool with Some d -> " spool " ^ d | None -> "")
         (match cfg.listen with Some p -> " listen " ^ p | None -> "")
         (match cfg.control with Some p -> " control " ^ p | None -> "")
         cfg.bound cfg.max_streams;
       fl st Rt_obs.Flight.Info ~stream:"" ~kind:"daemon.start"
         (Printf.sprintf "bound=%d max_streams=%d" cfg.bound cfg.max_streams);
       let outcome = ref Drained in
       let last_scan = ref neg_infinity in
       while st.running do
         let now = clock () in
         st.now <- now;
         if !drain_req then st.draining <- true;
         if now -. !last_scan >= cfg.tick then begin
           scan st now;
           last_scan := now
         end;
         (* select over listeners, data connections and control clients;
            doubles as the tick sleep when the previous pass was idle *)
         let fds =
           let l = List.map fst st.ctrl_clients in
           let l =
             fold_entries st
               (fun acc e ->
                 match e.source with
                 | Conn { cfd = Some fd; _ } when is_active e -> fd :: acc
                 | Conn _ | Spool _ -> acc)
               l
           in
           let l = match data_l with Some fd -> fd :: l | None -> l in
           match ctrl_l with Some fd -> fd :: l | None -> l
         in
         let timeout = if st.busy_tick then 0.0 else cfg.tick in
         st.busy_tick <- false;
         let ready =
           match Unix.select fds [] [] timeout with
           | r, _, _ -> r
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
         in
         let now = clock () in
         st.now <- now;
         List.iter
           (fun fd ->
             if Some fd = data_l then accept_data st now fd
             else if Some fd = ctrl_l then accept_ctrl st fd
             else
               match List.assoc_opt fd st.ctrl_clients with
               | Some buf -> handle_ctrl st fd buf
               | None ->
                 iter_entries st (fun e ->
                     match e.source with
                     | Conn ({ cfd = Some cfd; _ } as c) when cfd = fd ->
                       handle_conn st now e c fd
                     | Conn _ | Spool _ -> ()))
           ready;
         iter_entries st (fun e ->
             match (e.source, e.stream) with
             | Spool sp, Some s when is_active e -> step_spool st now e sp s
             | _, _ -> ());
         iter_entries st (fun e -> if is_active e then pump_entry st now e);
         iter_entries st (fun e -> supervise_entry st now e);
         (match cfg.stop_after_total with
          | Some n when st.total_handled >= n ->
            logf
              "stop-after-total reached (%d periods handled): exiting abruptly"
              st.total_handled;
            st.running <- false;
            outcome := Stopped
          | Some _ | None -> ());
         (match cfg.drain_after_total with
          | Some n when st.running && st.total_handled >= n ->
            st.draining <- true
          | Some _ | None -> ());
         if st.running && st.draining then begin
           drain_all st (clock ());
           st.running <- false
         end
       done;
       if !outcome = Drained then begin
         publish st;
         Option.iter
           (fun p ->
             Rt_util.Atomic_file.write p
               (Rt_obs.Json.to_string ~pretty:true (Reg.to_json st.reg));
             logf "wrote metrics to %s" p)
           cfg.metrics_path;
         logf
           "drained: %d accepted, %d finalized, %d failed, %d shed, %d busy \
            rejections, %d restarts, %d periods"
           st.c_accepted st.c_finalized st.c_failed st.c_shed st.c_busy
           st.c_restarts (total_periods st)
       end;
       fl st Rt_obs.Flight.Info ~stream:"" ~kind:"daemon.exit"
         (match !outcome with
          | Drained -> "drained"
          | Stopped -> "stopped (stop-after-total)");
       dump_flight st;
       (match cfg.flight_path with
        | Some p -> logf "wrote flight dump to %s" p
        | None -> ());
       iter_entries st (fun e ->
           match e.source with
           | Conn c ->
             Option.iter close_fd c.cfd;
             c.cfd <- None
           | Spool sp -> Sio.Tail.close sp.tail);
       List.iter (fun (fd, _) -> close_fd fd) st.ctrl_clients;
       Option.iter close_fd data_l;
       Option.iter close_fd ctrl_l;
       Option.iter Rt_util.Domain_pool.shutdown st.pool;
       List.iter
         (fun p -> Option.iter (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ()) p)
         [ cfg.listen; cfg.control ];
       Ok !outcome))
