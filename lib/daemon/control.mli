(** The control-socket protocol: one request line in, one UTF-8 text or
    JSON response out, connection closed. Line-oriented on purpose so
    [rtgen report --socket] — or a human with [nc] — can speak it.

    Requests:
    {v
    status            one line per stream plus a totals line
    metrics           the metrics JSON document (metrics.schema.json)
    snapshot ID       the stream's current LUB model matrix
    flight            the flight-recorder dump (rtgen-flight JSON)
    prometheus        the metrics in Prometheus text exposition
    drain             finish all streams, write models, exit
    v}

    An unrecognized verb gets a single [error: ...] line back — never a
    hang, never a silently empty reply. *)

type request =
  | Status
  | Metrics
  | Snapshot of string
  | Flight
  | Prometheus
  | Drain

val parse : string -> (request, string) result

val to_string : request -> string
(** The wire form of a request (no newline). *)
