(** One supervised learning stream: a bounded line queue feeding an
    incremental recover-mode parser feeding an {!Rt_engine.Engine}, with
    periodic crash-safe checkpoints.

    The daemon pushes raw trace lines in with {!offer_line} and turns
    the crank with {!pump}; nothing here blocks or reads a clock. The
    parser pulls from the bounded queue through a line source that
    raises a private starvation exception when the queue is empty and
    end-of-input has not been declared — the parser's own state survives
    that unwind, so a period split across pushes is assembled exactly as
    if the whole file had been read at once. That is what makes the
    recovery guarantee byte-exact: replaying a spool file through a
    stream equals [rtgen learn --stream --mode recover] on that file.

    Recovery works by {e replay-skip}: a checkpoint stores how many
    periods the engine had eaten; on restart the spool file is re-read
    from byte 0 and the first [periods_fed] feed-eligible periods (the
    salvage verdicts are deterministic, so eligibility is too) are
    skipped without feeding. The engine then continues bit-exactly. *)

type config = {
  bound : int;              (** heuristic bound, as [learn --bound] *)
  window : int option;      (** salvage window, must match the learner's *)
  eps : int option;         (** clock-skew tolerance for repair *)
  queue_capacity : int;     (** bounded ingest queue (lines) *)
  checkpoint : Rt_store.Slot.t option;
      (** where checkpoints go: a bare file, or a store ref (every
          write then becomes a new generation) *)
  checkpoint_every : int;   (** periods between checkpoints *)
}

type t

val create :
  id:string -> ?pool:Rt_util.Domain_pool.t -> ?flight:Rt_obs.Flight.scope ->
  config -> t * string option
(** A fresh stream. When [config.checkpoint] names an existing,
    intact checkpoint whose tag matches [id], the engine resumes from it
    and replay-skip is armed; a corrupt, unreadable or foreign
    checkpoint falls back to a fresh start (never an exception), and the
    returned note says why. [flight] records ["stream.resume"] /
    ["checkpoint.stale"] here and ["checkpoint.write"] on every
    checkpoint, and is passed down to the engine. *)

val id : t -> string

val offer_line : t -> string -> [ `Ok | `Overflow ]
(** Queue one raw line. [`Overflow] means the bounded queue is full —
    the daemon's cue to shed the stream (socket sources) or to stop
    pulling (spool backpressure). Lines offered after end-of-input was
    declared are dropped with [`Ok]. *)

val close_input : t -> unit
(** Declare end-of-input: once the queue drains, the parser sees EOF. *)

val input_closed : t -> bool

val queued : t -> int

val queue_capacity : t -> int

type status =
  | Blocked          (** queue empty, input still open: need more data *)
  | More             (** budget exhausted with input still available *)
  | Done             (** parser hit end-of-input; ready to finalize *)
  | Crashed of string  (** parse latch or engine exception *)

val pump : t -> budget:int -> int * status
(** Process up to [budget] periods from the queue; returns how many
    periods were handled this call (fed or replay-skipped) and why
    pumping stopped. After [Crashed] the stream is dead: the daemon
    discards it and lets the supervisor schedule a rebuild. *)

val periods_fed : t -> int
(** Cumulative periods the engine has eaten, including the
    checkpointed prefix — the daemon's progress metric. *)

val messages_fed : t -> int

val hypotheses : t -> int

val checkpoints_written : t -> int

val rejected : t -> int
(** Lines refused by the bounded queue so far. *)

val quarantine : t -> Rt_trace.Quarantine.t
(** Full ingestion account: parser skips/repairs plus salvage verdicts,
    identical to what [learn --mode recover] would report. *)

val snapshot : t -> (Rt_engine.Engine.snapshot * string array option, string) result
(** Current model plus task names (once the header was parsed);
    [Error] before the first period. *)

val render_model : t -> (string, string) result
(** The final model exactly as [learn -o] writes it: LUB matrix with
    task names plus trailing newline. *)

val write_checkpoint : t -> unit
(** Force a checkpoint now (if configured and the engine exists),
    regardless of cadence. *)
