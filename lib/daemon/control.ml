type request =
  | Status
  | Metrics
  | Snapshot of string
  | Flight
  | Prometheus
  | Drain

let parse line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [ "status" ] -> Ok Status
  | [ "metrics" ] -> Ok Metrics
  | [ "snapshot"; id ] -> Ok (Snapshot id)
  | [ "flight" ] -> Ok Flight
  | [ "prometheus" ] -> Ok Prometheus
  | [ "drain" ] -> Ok Drain
  | _ -> Error (Printf.sprintf "unknown control request: %S" (String.trim line))

let to_string = function
  | Status -> "status"
  | Metrics -> "metrics"
  | Snapshot id -> "snapshot " ^ id
  | Flight -> "flight"
  | Prometheus -> "prometheus"
  | Drain -> "drain"
