module Eng = Rt_engine.Engine
module Sio = Rt_trace.Stream_io

type config = {
  bound : int;
  window : int option;
  eps : int option;
  queue_capacity : int;
  checkpoint : Rt_store.Slot.t option;
  checkpoint_every : int;
}

(* Raised by the line source when the bounded queue is empty and input
   is still open. [Sio.next] pulls exactly one line per parse step and
   commits every mutation before pulling the next, so the unwind leaves
   the parser in a resumable state: the next [pump] continues the same
   period mid-assembly. *)
exception Starve

type t = {
  id : string;
  cfg : config;
  pool : Rt_util.Domain_pool.t option;
  flight : Rt_obs.Flight.scope option;
  lines : string Bqueue.t;
  eof : bool ref;
  parser : Sio.t;
  mutable engine : Eng.t option;
  mutable skip : int;  (* replay-skip budget from a resumed checkpoint *)
  mutable excised : (int * int) list;     (* reversed, as learn_stream *)
  mutable sem_dropped : int list;
  mutable checkpoints : int;
  mutable finished : bool;
  mutable crashed : string option;
}

let tag_of id = "rtgend:" ^ id

let create ~id ?pool ?flight cfg =
  let lines = Bqueue.create ~capacity:cfg.queue_capacity in
  let eof = ref false in
  let source () =
    match Bqueue.pop lines with
    | Some l -> Some l
    | None -> if !eof then None else raise Starve
  in
  let parser = Sio.create ~mode:`Recover ?eps:cfg.eps source in
  let engine, skip, note =
    match cfg.checkpoint with
    | Some slot when Rt_store.Slot.exists slot ->
      let p = Rt_store.Slot.describe slot in
      (match Rt_store.Slot.load slot with
       | Error m ->
         (None, 0, Some (Printf.sprintf "checkpoint %s unreadable (%s); starting fresh" p m))
       | Ok data ->
         (match Eng.resume ?pool ?flight data with
          | Ok (eng, tag) when tag = tag_of id ->
            (Some eng, Eng.periods_fed eng, None)
          | Ok (_, tag) ->
            ( None, 0,
              Some
                (Printf.sprintf
                   "checkpoint %s belongs to %S, not this stream; starting fresh"
                   p tag) )
          | Error m ->
            (None, 0, Some (Printf.sprintf "checkpoint %s: %s; starting fresh" p m))))
    | Some _ | None -> (None, 0, None)
  in
  (match flight with
   | None -> ()
   | Some s ->
     (match (engine, note) with
      | Some _, _ ->
        Rt_obs.Flight.record_s s Rt_obs.Flight.Info ~kind:"stream.resume"
          (Printf.sprintf "resumed from checkpoint at %d periods" skip)
      | None, Some m ->
        Rt_obs.Flight.record_s s Rt_obs.Flight.Warn ~kind:"checkpoint.stale" m
      | None, None -> ()));
  ( {
      id;
      cfg;
      pool;
      flight;
      lines;
      eof;
      parser;
      engine;
      skip;
      excised = [];
      sem_dropped = [];
      checkpoints = 0;
      finished = false;
      crashed = None;
    },
    note )

let id t = t.id

let offer_line t l = if !(t.eof) then `Ok else Bqueue.push t.lines l

let close_input t = t.eof := true

let input_closed t = !(t.eof)

let queued t = Bqueue.length t.lines

let queue_capacity t = Bqueue.capacity t.lines

let rejected t = Bqueue.rejected t.lines

let periods_fed t = match t.engine with Some e -> Eng.periods_fed e | None -> 0

let messages_fed t = match t.engine with Some e -> Eng.messages_fed e | None -> 0

let hypotheses t =
  match t.engine with Some e -> List.length (Eng.current e) | None -> 0

let checkpoints_written t = t.checkpoints

let engine_of t =
  match t.engine with
  | Some e -> e
  | None ->
    let ts = Option.get (Sio.task_set t.parser) in
    let e =
      Eng.create ?window:t.cfg.window ?pool:t.pool ?flight:t.flight
        ~ntasks:(Rt_task.Task_set.size ts)
        (Eng.Heuristic { bound = t.cfg.bound })
    in
    t.engine <- Some e;
    e

let write_checkpoint t =
  match (t.cfg.checkpoint, t.engine) with
  | Some slot, Some eng ->
    (match Eng.checkpoint ~tag:(tag_of t.id) eng with
     | Ok data ->
       Rt_store.Slot.save ~kind:Rt_store.Store.Checkpoint
         ~bound:t.cfg.bound ~source:t.id
         ~created_at:(Eng.periods_fed eng) slot data;
       t.checkpoints <- t.checkpoints + 1;
       (match t.flight with
        | None -> ()
        | Some s ->
          Rt_obs.Flight.record_s s Rt_obs.Flight.Info ~kind:"checkpoint.write"
            (Printf.sprintf "periods=%d checkpoints=%d" (Eng.periods_fed eng)
               t.checkpoints))
     | Error _ -> ())
  | _ -> ()

type status = Blocked | More | Done | Crashed of string

(* Handle one parsed period: salvage exactly as [learn --stream --mode
   recover], then either replay-skip it (it was fed before the last
   checkpoint — salvage verdicts are deterministic, so the skip count
   lines up) or feed it and maybe checkpoint. *)
let consume_period t p =
  let feed p' =
    if t.skip > 0 then t.skip <- t.skip - 1
    else begin
      let eng = engine_of t in
      Eng.feed eng p';
      if
        t.cfg.checkpoint <> None
        && Eng.periods_fed eng mod t.cfg.checkpoint_every = 0
      then write_checkpoint t
    end
  in
  match Rt_trace.Trace_io.salvage_period ?window:t.cfg.window p with
  | `Clean -> feed p
  | `Excised (p', n) ->
    t.excised <- (p'.Rt_trace.Period.index, n) :: t.excised;
    feed p'
  | `Dropped -> t.sem_dropped <- p.Rt_trace.Period.index :: t.sem_dropped

let pump t ~budget =
  match t.crashed with
  | Some m -> (0, Crashed m)
  | None ->
    if t.finished then (0, Done)
    else begin
      let handled = ref 0 in
      let status = ref More in
      (try
         let continue = ref true in
         while !continue do
           if !handled >= budget then continue := false
           else
             match Sio.next t.parser with
             | exception Starve ->
               status := Blocked;
               continue := false
             | Error e ->
               let m = Printf.sprintf "line %d: %s" e.line e.message in
               t.crashed <- Some m;
               status := Crashed m;
               continue := false
             | Ok None ->
               t.finished <- true;
               status := Done;
               continue := false
             | Ok (Some p) ->
               consume_period t p;
               incr handled
         done
       with e ->
         let m = "engine exception: " ^ Printexc.to_string e in
         t.crashed <- Some m;
         status := Crashed m);
      (!handled, !status)
    end

let quarantine t =
  let q0 = Sio.quarantine t.parser in
  Rt_trace.Trace_io.salvage_account q0 ~excised:(List.rev t.excised)
    ~dropped_idx:(List.rev t.sem_dropped)

let names t = Option.map Rt_task.Task_set.names (Sio.task_set t.parser)

let snapshot t =
  match t.engine with
  | None -> Error "no periods fed yet"
  | Some eng -> Ok (Eng.snapshot eng, names t)

let render_model t =
  match t.engine with
  | None -> Error "no usable periods after quarantine"
  | Some eng ->
    let q = quarantine t in
    Eng.set_provenance eng
      ~dropped:(List.length q.Rt_trace.Quarantine.dropped)
      ~repaired:(List.length q.Rt_trace.Quarantine.repaired);
    let snap = Eng.finalize eng in
    (match snap.Eng.hypotheses with
     | [] -> Error "inconsistent trace"
     | hs ->
       let names = names t in
       let lub = Rt_lattice.Depfun.lub hs in
       Ok (Rt_lattice.Depfun.to_string ?names lub ^ "\n"))
