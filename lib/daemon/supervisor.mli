(** Per-stream supervision: bounded restarts with exponential backoff,
    plus stall and idle watchdogs.

    The machine is pure state + an injected notion of "now": every
    transition takes the current time as an argument and nothing here
    reads a clock or sleeps, so the whole policy is testable with a fake
    clock and no waiting. The daemon owns the clock and calls {!poll}
    once per tick; the verdicts tell it what to do, it never inspects
    the internals. *)

type policy = {
  max_restarts : int;     (** crashes beyond this latch {!Failed} *)
  backoff_base : float;   (** first restart delay, seconds *)
  backoff_factor : float; (** multiplier per successive restart *)
  backoff_cap : float;    (** ceiling on the delay *)
  stall_timeout : float;
      (** seconds with input queued but no periods produced before the
          stream is declared stalled (wedged parser/engine) *)
  idle_timeout : float;
      (** seconds with no input at all before the stream is considered
          finished; [infinity] disables the idle watchdog *)
}

val default_policy : policy
(** 5 restarts, 0.1 s backoff doubling to a 5 s cap, 30 s stall
    timeout, idle watchdog off. *)

type phase =
  | Running
  | Backing_off of { until : float; reason : string }
  | Failed of string  (** terminal: restart budget exhausted *)
  | Finalized         (** terminal: model written *)

type t

val create : ?policy:policy -> now:float -> unit -> t

val phase : t -> phase

val restarts : t -> int

val quarantined : t -> bool

val set_quarantined : t -> unit
(** Latched flag: the stream's parser recovered over damage at least
    once. Purely informational — quarantine never affects supervision. *)

val backoff_delay : policy -> restart:int -> float
(** The delay before restart number [restart] (1-based):
    [base * factor^(restart-1)], capped. *)

val note_data : t -> now:float -> unit
(** Input arrived (a line was queued) — feeds the idle watchdog. *)

val note_progress : t -> now:float -> unit
(** Periods were produced — feeds the stall watchdog. *)

val note_crash : t -> now:float -> reason:string -> [ `Backoff of float | `Failed ]
(** The stream's worker died (parse latch, engine exception, vanished
    input). Either schedules a restart — [`Backoff until] — or, when
    the budget is spent, latches {!Failed}. *)

val note_restart : t -> now:float -> unit
(** The daemon rebuilt the stream; back to {!Running} with both
    watchdogs reset. *)

val fail : t -> reason:string -> unit
(** Latch {!Failed} immediately, bypassing the restart budget — for
    streams that cannot be rebuilt (a socket connection's data died
    with it) or whose final model was unusable. *)

val finalize : t -> unit

type verdict =
  | Continue   (** nothing to do this tick *)
  | Restart    (** backoff expired: rebuild the stream *)
  | Stalled    (** stall watchdog fired — treat as a crash *)
  | Idle       (** idle watchdog fired — drain and finalize *)

val poll : t -> now:float -> pending:bool -> verdict
(** One supervision tick. [pending] is whether the stream has queued
    input waiting: with input pending the stall watchdog applies, with
    none the idle watchdog does. Terminal phases always [Continue]. *)
