(* End-to-end latency, pessimistic vs dependency-informed — a walkthrough
   of the analysis that motivates the paper (§1: "performing an
   end-to-end timing analysis is difficult without assuming that all
   messages and tasks are potentially independent at the system level.
   This approach is extremely pessimistic.").

   Run with: dune exec examples/latency_analysis.exe *)

module Gm = Rt_case.Gm_model
module L = Rt_analysis.Latency

let () =
  let design = Gm.design () in
  let names = Gm.names in
  let name i = names.(i) in

  (* Learn the dependency model from the bus log. *)
  let trace = Gm.trace () in
  let model =
    match (Rt_learn.Heuristic.run ~bound:1 trace).Rt_learn.Heuristic.hypotheses with
    | [ d ] -> d
    | _ -> failwith "learning failed"
  in

  print_endline "=== Per-task worst-case response times ===";
  Format.printf "%-6s %12s %12s@." "task" "pessimistic" "informed";
  for i = 0 to Rt_task.Design.size design - 1 do
    let pess = L.response_time design i in
    let inf = L.response_time ~dep:model design i in
    Format.printf "%-6s %10dus %10dus%s@." (name i) pess inf
      (if inf < pess then "  <- tightened" else "")
  done;

  print_endline "\n=== All source-to-sink paths ===";
  let rec paths node acc =
    match Rt_task.Design.outgoing design node with
    | [] -> [ List.rev (node :: acc) ]
    | outs ->
      List.concat_map (fun (e : Rt_task.Design.edge) ->
          paths e.dst (node :: acc))
        outs
  in
  let all_paths =
    List.concat_map (fun src -> paths src [])
      (Rt_task.Design.sources design)
    |> List.filter (fun p -> List.length p > 1)
  in
  Format.printf "%-28s %12s %12s %8s@." "path" "pessimistic" "informed" "gain";
  List.iter (fun path ->
      let pess, inf, gain = L.improvement design ~dep:model ~path in
      Format.printf "%-28s %10dus %10dus %7.2fx@."
        (String.concat "->" (List.map name path))
        pess inf gain)
    all_paths;

  print_endline "\n=== The paper's focus: the critical path including Q ===";
  let path = L.critical_path design in
  Format.printf "%a@.@."
    (L.pp_report ~names)
    (L.analyze design ~path);
  Format.printf "and with the learned dependencies:@.%a@."
    (L.pp_report ~names)
    (L.analyze ~dep:model design ~path);
  let q = Gm.task "Q" and o = Gm.task "O" in
  Format.printf
    "@.the gain on Q comes from d(Q,O) = %s: O always precedes Q, so its\n\
     %dus of higher-priority interference cannot hit Q's execution window.@."
    (Rt_lattice.Depval.to_string (Rt_lattice.Depfun.get model q o))
    design.tasks.(o).wcet
