(* The paper's worked example, end to end (Figs. 1, 2, 3, 4 and the
   tables of §3.3): builds the 4-task model, replays the 3-period trace,
   shows the hypothesis sets after each period, and prints the final five
   most specific hypotheses plus their least upper bound dLUB.

   Run with: dune exec examples/paper_example.exe *)

module Df = Rt_lattice.Depfun

(* Fig. 2, with concrete timestamps: period 1 runs t1 t2 t4 (messages m1
   m2), period 2 runs t1 t3 t4 (m3 m4), period 3 runs t1 t3 t2 t4 with
   t1's two frames transmitted back to back (m5 m6) and the two frames to
   t4 at the end (m7 m8). *)
let fig2 = {|# rtgen-trace v1
tasks t1 t2 t3 t4
period 0
10 start t1
20 end t1
21 rise 0x1
24 fall 0x1
25 start t2
35 end t2
36 rise 0x2
39 fall 0x2
40 start t4
50 end t4
period 1
10 start t1
20 end t1
21 rise 0x1
24 fall 0x1
25 start t3
35 end t3
36 rise 0x2
39 fall 0x2
40 start t4
50 end t4
period 2
10 start t1
20 end t1
21 rise 0x1
24 fall 0x1
25 rise 0x2
28 fall 0x2
30 start t3
40 end t3
45 start t2
55 end t2
56 rise 0x3
59 fall 0x3
60 rise 0x4
63 fall 0x4
65 start t4
75 end t4
|}

let print_set hs =
  List.iteri (fun i h ->
      Format.printf "--- hypothesis %d (weight %d) ---@.%a@.@." (i + 1)
        (Rt_learn.Hypothesis.weight h)
        (Rt_learn.Hypothesis.pp ?names:None)
        h)
    hs

let () =
  (* Fig. 1: the design model (which the learner never sees). *)
  let design =
    let task name policy priority =
      { Rt_task.Design.name; policy; ecu = 0; priority; wcet = 10; offset = 0 }
    in
    Rt_task.Design.make
      ~tasks:[|
        task "t1" Rt_task.Design.Choose_any 1;
        task "t2" Rt_task.Design.Broadcast 2;
        task "t3" Rt_task.Design.Broadcast 3;
        task "t4" Rt_task.Design.Broadcast 4;
      |]
      ~edges:
        (let edge src dst can_id =
           { Rt_task.Design.src; dst; can_id; tx_time = 3;
             medium = Rt_task.Design.Bus }
         in
         [| edge 0 1 1; edge 0 2 2; edge 1 3 3; edge 2 3 4 |])
      ~period:1000
  in
  print_endline "=== Fig. 1: the (hidden) design model ===";
  print_string (Rt_task.Design.to_dot design);

  print_endline "\n=== Fig. 2: the observed trace ===";
  let trace = Rt_trace.Trace_io.of_string_exn fig2 in
  Format.printf "%a@.@." Rt_trace.Trace.pp_summary trace;

  print_endline "=== Generalization (exact algorithm) ===";
  let outcome =
    Rt_learn.Exact.run trace ~on_period:(fun idx hs ->
        Format.printf "after period %d: %d most specific hypotheses@." (idx + 1)
          (List.length hs);
        if idx = 0 then print_set hs)
  in
  Format.printf "@.=== Final hypothesis set (the paper's d81..d85) ===@.";
  print_set (List.map Rt_learn.Hypothesis.of_depfun outcome.hypotheses);

  let dlub = Df.lub outcome.hypotheses in
  Format.printf "=== dLUB (Fig. 4) ===@.%s@.@." (Df.to_string dlub);
  Format.printf "paper's highlight — d(t1,t4) = %s: t1 always determines t4,@."
    (Rt_lattice.Depval.to_string (Df.get dlub 0 3));
  print_endline "a fact not visible as an edge of the design graph.";

  print_endline "\n=== Fig. 4: dependency graph of dLUB (graphviz) ===";
  print_string (Rt_analysis.Dep_graph.to_dot dlub);

  (* The Lemma in action: the bound-1 heuristic finds dLUB directly. *)
  (match (Rt_learn.Heuristic.run ~bound:1 trace).hypotheses with
   | [ d1 ] ->
     Format.printf "@.heuristic with bound 1 returns dLUB directly: %b@."
       (Df.equal d1 dlub)
   | _ -> assert false)
