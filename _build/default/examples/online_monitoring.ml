(* Online monitoring: learn the dependency model of a live system period
   by period, and watch properties become provable as evidence arrives.

   The bounded heuristic's state after k periods does not depend on the
   future, so it doubles as an anytime monitor: attach it to the bus,
   feed each completed period, and query the current model.

   Run with: dune exec examples/online_monitoring.exe *)

module Gm = Rt_case.Gm_model
module Df = Rt_lattice.Depfun
module H = Rt_learn.Heuristic
module Q = Rt_analysis.Query

let properties =
  [ "mode coverage", "d(A,L) = -> & d(B,M) = ->";
    "scheduler-induced Q-O", "d(Q,O) = <-";
    "joins identified", "conjunction(H) & conjunction(P) & conjunction(Q)";
    "mode selectors", "disjunction(A) & disjunction(B)" ]

let () =
  let trace = Gm.trace () in
  let names = Gm.names in
  let st = H.init ~bound:1 ~ntasks:18 () in
  let proven = Hashtbl.create 4 in
  Format.printf "%-8s %-8s %-10s %s@." "period" "weight" "consistent"
    "newly provable properties";
  List.iter (fun (p : Rt_trace.Period.t) ->
      H.feed st p;
      match H.current st with
      | [] -> Format.printf "%-8d %-8s %-10s@." (p.index + 1) "-" "NO"
      | model :: _ ->
        let newly =
          List.filter_map (fun (label, q) ->
              if Hashtbl.mem proven label then None
              else
                match Q.holds ~model ~names (Q.parse_exn q) with
                | Ok true ->
                  Hashtbl.replace proven label ();
                  Some label
                | Ok false | Error _ -> None)
            properties
        in
        Format.printf "%-8d %-8d %-10s %s@." (p.index + 1) (Df.weight model)
          "yes" (String.concat ", " newly))
    (Rt_trace.Trace.periods trace);
  Format.printf "@.%d of %d properties provable after %d periods@."
    (Hashtbl.length proven) (List.length properties)
    (H.stats st).periods_processed;
  (* The anytime guarantee: the online model always matches everything
     seen so far. *)
  match H.current st with
  | model :: _ ->
    Format.printf "final model matches the whole trace: %b@."
      (Rt_learn.Matching.matches_trace model trace)
  | [] -> ()
