(* Failure injection and the negative-example extension.

   The paper (§3.1): "If Dcur becomes empty at some point, it means
   1) either the instances contain errors (and thereby violate our
   assumption), or 2) the generalization language is not expressive
   enough to describe the desired property."

   This example corrupts a clean trace in ways a real logging device
   might (truncated frames, a frame attributed to a period where its
   sender never ran) and shows how each failure surfaces; then it
   demonstrates the negative-example version-space filter from the
   paper's conclusion.

   Run with: dune exec examples/noisy_trace.exe *)

module E = Rt_trace.Event
module P = Rt_trace.Period

let ts = Rt_task.Task_set.numbered 3

let ev time kind = { E.time; kind }

let clean_period idx =
  P.make_exn ~index:idx ~task_set:ts
    [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0); ev 21 (E.Msg_rise 1);
      ev 24 (E.Msg_fall 1); ev 25 (E.Task_start 1); ev 35 (E.Task_end 1);
      ev 36 (E.Msg_rise 2); ev 39 (E.Msg_fall 2); ev 40 (E.Task_start 2);
      ev 50 (E.Task_end 2) ]

let () =
  print_endline "=== 1. A malformed period is rejected at validation ===";
  (match
     P.make ~index:0 ~task_set:ts
       [ ev 10 (E.Task_start 0); ev 21 (E.Msg_rise 1) ]
   with
   | Ok _ -> assert false
   | Error e -> Format.printf "rejected: %s@.@." (P.string_of_error e));

  print_endline "=== 2. A physically impossible message empties the version space ===";
  (* A frame that rises before any task has finished has no admissible
     sender: the MoC assumption is violated. *)
  let impossible =
    P.make_exn ~index:0 ~task_set:ts
      [ ev 5 (E.Msg_rise 7); ev 8 (E.Msg_fall 7); ev 10 (E.Task_start 0);
        ev 20 (E.Task_end 0) ]
  in
  let trace =
    Rt_trace.Trace.of_periods ~task_set:ts [ clean_period 0; impossible ]
  in
  let o = Rt_learn.Exact.run trace in
  Format.printf "hypotheses left: %d (empty => trace errors or MoC mismatch)@.@."
    (List.length o.hypotheses);

  print_endline "=== 3. Clean trace learns normally ===";
  let trace = Rt_trace.Trace.of_periods ~task_set:ts [ clean_period 0; clean_period 1 ] in
  let o = Rt_learn.Exact.run trace in
  Format.printf "hypotheses: %d@." (List.length o.hypotheses);
  List.iter (fun d -> Format.printf "%s@.@." (Rt_lattice.Depfun.to_string d))
    o.hypotheses;

  print_endline "=== 4. Negative examples prune the version space ===";
  (* Suppose a safety spec says: t3 must never run without t2 having run
     (we witnessed a faulty unit doing exactly that). Periods exhibiting
     the forbidden behaviour become negative instances. *)
  let forbidden =
    P.make_exn ~index:99 ~task_set:ts
      [ ev 10 (E.Task_start 0); ev 20 (E.Task_end 0); ev 21 (E.Msg_rise 1);
        ev 24 (E.Msg_fall 1); ev 30 (E.Task_start 2); ev 40 (E.Task_end 2) ]
  in
  let r = Rt_learn.Version_space.learn ~negatives:[ forbidden ] trace in
  Format.printf "accepted %d, rejected %d hypotheses@."
    (List.length r.accepted) (List.length r.rejected);
  List.iter (fun d ->
      Format.printf "rejected (would allow the forbidden behaviour):@.%s@.@."
        (Rt_lattice.Depfun.to_string d))
    r.rejected;
  List.iter (fun d ->
      Format.printf "accepted:@.%s@.@." (Rt_lattice.Depfun.to_string d))
    r.accepted
