examples/gm_case_study.ml: Array Format List Option Rt_analysis Rt_case Rt_lattice Rt_learn Rt_mining Rt_task Rt_trace String
