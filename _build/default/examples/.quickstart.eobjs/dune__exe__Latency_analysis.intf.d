examples/latency_analysis.mli:
