examples/paper_example.ml: Format List Rt_analysis Rt_lattice Rt_learn Rt_task Rt_trace
