examples/online_monitoring.ml: Format Hashtbl List Rt_analysis Rt_case Rt_lattice Rt_learn Rt_trace String
