examples/quickstart.ml: Format List Rt_analysis Rt_lattice Rt_learn Rt_sim Rt_task Rt_trace
