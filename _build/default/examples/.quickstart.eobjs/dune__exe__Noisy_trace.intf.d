examples/noisy_trace.mli:
