examples/latency_analysis.ml: Array Format List Rt_analysis Rt_case Rt_lattice Rt_learn Rt_task String
