examples/noisy_trace.ml: Format List Rt_lattice Rt_learn Rt_task Rt_trace
