examples/gm_case_study.mli:
