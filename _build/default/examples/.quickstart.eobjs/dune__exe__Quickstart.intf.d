examples/quickstart.mli:
