examples/acc_safety.ml: Array Format List Option Rt_analysis Rt_case Rt_lattice Rt_learn Rt_mining Rt_trace String
