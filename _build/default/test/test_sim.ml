module D = Rt_task.Design
module Sim = Rt_sim.Simulator
module Bus = Rt_sim.Can_bus
module Sched = Rt_sim.Scheduler
module P = Rt_trace.Period
module T = Rt_trace.Trace
open Test_support

(* --- Can_bus unit tests --- *)

let frame can_id tx_time tag = { Bus.can_id; tx_time; tag }

let test_bus_idle () =
  let bus = Bus.create () in
  Alcotest.(check bool) "idle" true (Bus.is_idle bus);
  Alcotest.(check int) "no pending" 0 (Bus.pending bus);
  Alcotest.(check bool) "nothing to start" true (Bus.try_start bus ~now:0 = None)

let test_bus_priority_arbitration () =
  let bus = Bus.create () in
  Bus.submit bus (frame 0x20 5 0);
  Bus.submit bus (frame 0x10 5 1);
  Bus.submit bus (frame 0x30 5 2);
  (match Bus.try_start bus ~now:100 with
   | Some (f, fin) ->
     Alcotest.(check int) "lowest id wins" 0x10 f.can_id;
     Alcotest.(check int) "completion time" 105 fin
   | None -> Alcotest.fail "bus should start");
  Alcotest.(check int) "2 pending" 2 (Bus.pending bus)

let test_bus_nonpreemptive () =
  let bus = Bus.create () in
  Bus.submit bus (frame 0x20 5 0);
  ignore (Bus.try_start bus ~now:0);
  (* A higher-priority frame arriving mid-transmission must wait. *)
  Bus.submit bus (frame 0x01 5 1);
  Alcotest.(check bool) "no second start" true (Bus.try_start bus ~now:2 = None);
  let f = Bus.complete bus in
  Alcotest.(check int) "first one finished" 0x20 f.can_id;
  (match Bus.try_start bus ~now:5 with
   | Some (f, _) -> Alcotest.(check int) "then the urgent one" 0x01 f.can_id
   | None -> Alcotest.fail "second start expected")

let test_bus_complete_idle () =
  let bus = Bus.create () in
  Alcotest.check_raises "complete on idle"
    (Invalid_argument "Can_bus.complete: bus is idle")
    (fun () -> ignore (Bus.complete bus))

(* --- Scheduler unit tests --- *)

let test_sched_runs_single_task () =
  let s = Sched.create ~ecus:1 ~priority:[| 1 |] ~ecu_of:[| 0 |] in
  Sched.release s ~now:0 ~task:0 ~work:10;
  Sched.dispatch s ~now:0;
  Alcotest.(check (list (pair int int))) "started" [ (0, 0) ] (Sched.take_starts s);
  Alcotest.(check (option int)) "completion" (Some 10) (Sched.next_completion s);
  Sched.advance s ~now:10;
  Alcotest.(check (list int)) "completed" [ 0 ] (Sched.take_completions s ~now:10);
  Alcotest.(check bool) "idle" false (Sched.busy s)

let test_sched_preemption () =
  (* Task 0 (prio 2, work 100) runs from t=0; task 1 (prio 1, work 30)
     arrives at t=20 and preempts; task 0 finishes at 130. *)
  let s = Sched.create ~ecus:1 ~priority:[| 2; 1 |] ~ecu_of:[| 0; 0 |] in
  Sched.release s ~now:0 ~task:0 ~work:100;
  Sched.dispatch s ~now:0;
  Sched.advance s ~now:20;
  Sched.release s ~now:20 ~task:1 ~work:30;
  Sched.dispatch s ~now:20;
  Alcotest.(check (option int)) "task1 completion first" (Some 50)
    (Sched.next_completion s);
  Sched.advance s ~now:50;
  Alcotest.(check (list int)) "task1 done" [ 1 ] (Sched.take_completions s ~now:50);
  Alcotest.(check (option int)) "task0 resumes, 80 left" (Some 130)
    (Sched.next_completion s);
  Sched.advance s ~now:130;
  Alcotest.(check (list int)) "task0 done" [ 0 ]
    (Sched.take_completions s ~now:130);
  (* Starts were logged once each, at first dispatch. *)
  Alcotest.(check (list (pair int int))) "starts" [ (0, 0); (20, 1) ]
    (Sched.take_starts s)

let test_sched_two_ecus_parallel () =
  let s = Sched.create ~ecus:2 ~priority:[| 1; 1 |] ~ecu_of:[| 0; 1 |] in
  Sched.release s ~now:0 ~task:0 ~work:50;
  Sched.release s ~now:0 ~task:1 ~work:50;
  Sched.dispatch s ~now:0;
  Alcotest.(check (option int)) "both finish at 50" (Some 50)
    (Sched.next_completion s);
  Sched.advance s ~now:50;
  Alcotest.(check (list int)) "both complete" [ 0; 1 ]
    (List.sort Int.compare (Sched.take_completions s ~now:50))

let test_sched_priority_tie_break () =
  (* Equal priorities: lower task index dispatched first. *)
  let s = Sched.create ~ecus:1 ~priority:[| 1; 1 |] ~ecu_of:[| 0; 0 |] in
  Sched.release s ~now:0 ~task:1 ~work:10;
  Sched.release s ~now:0 ~task:0 ~work:10;
  Sched.dispatch s ~now:0;
  Alcotest.(check (list (pair int int))) "task 0 first" [ (0, 0) ]
    (Sched.take_starts s)

(* --- Simulator end-to-end --- *)

let no_jitter = { Sim.default_config with wcet_jitter = false; release_jitter = 0 }

let test_sim_deterministic () =
  let d = small_design 4 in
  let t1 = Sim.run d { no_jitter with periods = 10; seed = 9 } in
  let t2 = Sim.run d { no_jitter with periods = 10; seed = 9 } in
  Alcotest.(check string) "same trace" (Rt_trace.Trace_io.to_string t1)
    (Rt_trace.Trace_io.to_string t2)

let test_sim_seeds_differ () =
  let d = Rt_task.Generator.generate Rt_task.Generator.default ~seed:4 in
  let t1 = Sim.run d { Sim.default_config with periods = 10; seed = 1 } in
  let t2 = Sim.run d { Sim.default_config with periods = 10; seed = 2 } in
  Alcotest.(check bool) "different traces" true
    (Rt_trace.Trace_io.to_string t1 <> Rt_trace.Trace_io.to_string t2)

let test_sim_period_count () =
  let d = small_design 5 in
  let t = Sim.run d { no_jitter with periods = 13 } in
  Alcotest.(check int) "13 periods" 13 (T.period_count t)

let test_sim_invalid_periods () =
  let d = small_design 5 in
  Alcotest.check_raises "0 periods"
    (Invalid_argument "Simulator.run: periods must be positive")
    (fun () -> ignore (Sim.run d { no_jitter with periods = 0 }))

let test_sim_overrun () =
  (* A task slower than its period must raise Overrun. *)
  let tasks = [| { D.name = "t1"; policy = D.Broadcast; ecu = 0;
                   priority = 1; wcet = 500; offset = 0 } |] in
  let d = D.make ~tasks ~edges:[||] ~period:100 in
  (match Sim.run d { no_jitter with periods = 1 } with
   | exception Sim.Overrun { period = 0; _ } -> ()
   | exception e -> raise e
   | _ -> Alcotest.fail "expected Overrun")

let test_sim_pipeline_ordering () =
  (* In a pipeline t1 -> t2 -> t3 the trace must show strictly causal
     timing: end(t1) <= rise(m1) < fall(m1) <= start(t2), etc. *)
  let d = pipeline_design 3 in
  let t = Sim.run d { no_jitter with periods = 5 } in
  List.iter (fun (pd : P.t) ->
      Alcotest.(check int) "2 msgs" 2 (P.msg_count pd);
      Alcotest.(check (list int)) "all executed" [ 0; 1; 2 ]
        (P.executed_tasks pd);
      Array.iter (fun (m : P.msg) ->
          Alcotest.(check bool) "rise < fall" true (m.rise < m.fall))
        pd.msgs;
      let m0 = pd.msgs.(0) and m1 = pd.msgs.(1) in
      Alcotest.(check bool) "t1 before m0" true (pd.end_time.(0) <= m0.rise);
      Alcotest.(check bool) "m0 before t2" true (m0.fall <= pd.start_time.(1));
      Alcotest.(check bool) "t2 before m1" true (pd.end_time.(1) <= m1.rise);
      Alcotest.(check bool) "m1 before t3" true (m1.fall <= pd.start_time.(2)))
    (T.periods t)

let test_sim_frames_serialized () =
  (* On a single bus, transmissions never overlap. *)
  for seed = 0 to 5 do
    let d = Rt_task.Generator.generate Rt_task.Generator.default ~seed in
    let t = Sim.run d { Sim.default_config with periods = 8; seed } in
    List.iter (fun (pd : P.t) ->
        let sorted = Array.to_list pd.msgs in
        let rec check = function
          | (a : P.msg) :: (b :: _ as rest) ->
            Alcotest.(check bool) "no overlap" true (a.fall <= b.rise);
            check rest
          | [ _ ] | [] -> ()
        in
        check sorted)
      (T.periods t)
  done

let test_sim_truth_in_candidates () =
  (* The real sender/receiver must always be inferable. *)
  for seed = 0 to 5 do
    let d = Rt_task.Generator.generate Rt_task.Generator.default ~seed in
    let trace, truths = Sim.run_with_truth d { Sim.default_config with periods = 10; seed } in
    List.iteri (fun i (pd : P.t) ->
        let tr = truths.(i) in
        Alcotest.(check int) "truth arity" (P.msg_count pd)
          (Array.length tr.senders_receivers);
        Array.iteri (fun k (m : P.msg) ->
            let pair = tr.senders_receivers.(k) in
            Alcotest.(check bool) "truth in candidates" true
              (List.mem pair (Rt_trace.Candidates.pairs pd m)))
          pd.msgs)
      (T.periods trace)
  done

let test_sim_truth_outcome_consistent () =
  let d = small_design 8 in
  let trace, truths = Sim.run_with_truth d { no_jitter with periods = 10 } in
  List.iteri (fun i (pd : P.t) ->
      let (tr : Sim.period_truth) = truths.(i) in
      (* Executed tasks in the trace = executed tasks in the outcome. *)
      Array.iteri (fun v ex ->
          Alcotest.(check bool) "executed agrees" ex pd.executed.(v))
        tr.outcome.executed;
      (* Message count = chosen edge count. *)
      Alcotest.(check int) "message count" (List.length tr.outcome.sent)
        (P.msg_count pd))
    (T.periods trace)

let test_sim_wcet_jitter_bounds () =
  (* Task busy time never exceeds WCET (and with jitter, is at least 60%). *)
  let d = pipeline_design 3 in
  let t = Sim.run d { Sim.default_config with periods = 10; seed = 3 } in
  List.iter (fun (pd : P.t) ->
      List.iter (fun v ->
          let dur = pd.end_time.(v) - pd.start_time.(v) in
          let w = d.tasks.(v).wcet in
          Alcotest.(check bool) "within [0.6w, w]" true
            (dur >= w * 6 / 10 && dur <= w))
        (P.executed_tasks pd))
    (T.periods t)

let test_sim_can_arbitration_order () =
  (* Two sources on different ECUs finish at the same time and send
     simultaneously: the frame with the lower CAN id transmits first. *)
  let task name ecu priority = { D.name; policy = D.Broadcast; ecu; priority; wcet = 10; offset = 0 } in
  let tasks = [| task "a" 0 1; task "b" 1 1; task "c" 0 3 |] in
  let edges =
    [| { D.src = 0; dst = 2; can_id = 0x50; tx_time = 5; medium = D.Bus };
       { D.src = 1; dst = 2; can_id = 0x10; tx_time = 5; medium = D.Bus } |]
  in
  let d = D.make ~tasks ~edges ~period:1000 in
  let t = Sim.run d { no_jitter with periods = 3 } in
  List.iter (fun (pd : P.t) ->
      Alcotest.(check int) "low id first" 0x10 pd.msgs.(0).bus_id;
      Alcotest.(check int) "high id second" 0x50 pd.msgs.(1).bus_id)
    (T.periods t)

(* --- local (off-bus) edges --- *)

(* t1 -(local)-> t2 -(bus)-> t3: the first hop is ECU-internal and never
   logged; the logger only sees one frame per period. *)
let local_pipeline () =
  let task name priority =
    { D.name; policy = D.Broadcast; ecu = 0; priority; wcet = 10;
      offset = (if name = "t1" then 5 else 0) }
  in
  D.make
    ~tasks:[| task "t1" 1; task "t2" 2; task "t3" 3 |]
    ~edges:[|
      { D.src = 0; dst = 1; can_id = 1; tx_time = 4; medium = D.Local };
      { D.src = 1; dst = 2; can_id = 2; tx_time = 4; medium = D.Bus };
    |]
    ~period:1000

let test_local_edges_invisible () =
  let d = local_pipeline () in
  let t = Sim.run d { no_jitter with periods = 5 } in
  List.iter (fun (pd : P.t) ->
      Alcotest.(check int) "one logged frame" 1 (P.msg_count pd);
      Alcotest.(check (list int)) "all tasks ran" [ 0; 1; 2 ]
        (P.executed_tasks pd);
      (* The local hop still delays t2: start(t2) >= end(t1) + ipc. *)
      Alcotest.(check bool) "ipc latency respected" true
        (pd.start_time.(1) >= pd.end_time.(0) + 4))
    (T.periods t)

let test_local_edges_truth_only_bus () =
  let d = local_pipeline () in
  let _, truths = Sim.run_with_truth d { no_jitter with periods = 5 } in
  Array.iter (fun (tr : Sim.period_truth) ->
      Alcotest.(check int) "one bus message in truth" 1
        (Array.length tr.senders_receivers);
      Alcotest.(check (pair int int)) "it is t2 -> t3" (1, 2)
        tr.senders_receivers.(0);
      (* The outcome still records both edges as sent. *)
      Alcotest.(check int) "two design edges fired" 2
        (List.length tr.outcome.sent))
    truths

let test_local_edges_learner_blind_miner_not () =
  (* The learner cannot see the local t1 -> t2 dependency (no frame to
     explain it); the ordering-based miner recovers it from start/end
     times. An honest win for the baseline. *)
  let d = local_pipeline () in
  let t = Sim.run d { no_jitter with periods = 8 } in
  (match (Rt_learn.Heuristic.run ~bound:1 t).hypotheses with
   | [ model ] ->
     Alcotest.(check bool) "learner misses t1->t2" false
       (Rt_lattice.Depval.is_definite (Rt_lattice.Depfun.get model 0 1))
   | _ -> Alcotest.fail "learning failed");
  let mined = Rt_mining.Order_miner.infer t in
  Alcotest.(check bool) "miner finds t1->t2" true
    (Rt_lattice.Depval.is_definite (Rt_lattice.Depfun.get mined 0 1))

(* --- fault injection --- *)

let test_drop_rate_zero_is_clean () =
  let d = pipeline_design 3 in
  let t0 = Sim.run d { no_jitter with periods = 5 } in
  let t1 = Sim.run d { no_jitter with periods = 5; drop_rate = 0.0 } in
  Alcotest.(check string) "identical" (Rt_trace.Trace_io.to_string t0)
    (Rt_trace.Trace_io.to_string t1)

let test_drop_rate_loses_frames () =
  let d = pipeline_design 4 in
  let clean = Sim.run d { no_jitter with periods = 20 } in
  let lossy = Sim.run d { no_jitter with periods = 20; drop_rate = 0.4 } in
  let n_clean = T.total_messages clean and n_lossy = T.total_messages lossy in
  Alcotest.(check bool) "fewer logged frames" true (n_lossy < n_clean);
  (* Periods stay well formed: validation already ran inside Period.make;
     executions are unchanged because drops only hide log entries. *)
  List.iter2 (fun (pc : P.t) (pl : P.t) ->
      Alcotest.(check (list int)) "same executions" (P.executed_tasks pc)
        (P.executed_tasks pl))
    (T.periods clean) (T.periods lossy)

let test_drop_rate_all () =
  let d = pipeline_design 3 in
  let lossy = Sim.run d { no_jitter with periods = 5; drop_rate = 1.0 } in
  Alcotest.(check int) "no frames logged" 0 (T.total_messages lossy);
  Alcotest.(check bool) "tasks still logged" true (T.total_events lossy > 0)

let test_drop_rate_truth_matches_log () =
  (* Ground truth must describe the LOGGED messages only. *)
  let d = pipeline_design 4 in
  let trace, truths =
    Sim.run_with_truth d { no_jitter with periods = 20; drop_rate = 0.3 }
  in
  List.iteri (fun i (pd : P.t) ->
      Alcotest.(check int) "arity" (P.msg_count pd)
        (Array.length truths.(i).senders_receivers))
    (T.periods trace)

let test_dropped_input_breaks_learnability () =
  (* If the frame feeding t2 is missing from the log, the learner sees t2
     firing without a cause: for a 2-task pipeline the version space
     empties (1 message per period, so a dropped frame leaves a period
     where t2 runs with no message at all — consistent with ‖ actually).
     What must NOT happen is a crash; and with every frame dropped the
     learned model is the bottom function. *)
  let d = pipeline_design 2 in
  let lossy = Sim.run d { no_jitter with periods = 6; drop_rate = 1.0 } in
  let o = Rt_learn.Exact.run lossy in
  (match o.hypotheses with
   | [ dep ] ->
     Alcotest.(check bool) "bottom model" true
       (Rt_lattice.Depfun.equal dep (Rt_lattice.Depfun.create 2))
   | l -> Alcotest.failf "expected singleton, got %d" (List.length l))

let () =
  Alcotest.run "rt_sim"
    [
      ( "can_bus",
        [
          Alcotest.test_case "idle" `Quick test_bus_idle;
          Alcotest.test_case "priority arbitration" `Quick
            test_bus_priority_arbitration;
          Alcotest.test_case "non-preemptive" `Quick test_bus_nonpreemptive;
          Alcotest.test_case "complete on idle" `Quick test_bus_complete_idle;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "single task" `Quick test_sched_runs_single_task;
          Alcotest.test_case "preemption" `Quick test_sched_preemption;
          Alcotest.test_case "two ecus" `Quick test_sched_two_ecus_parallel;
          Alcotest.test_case "tie break" `Quick test_sched_priority_tie_break;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_sim_seeds_differ;
          Alcotest.test_case "period count" `Quick test_sim_period_count;
          Alcotest.test_case "invalid periods" `Quick test_sim_invalid_periods;
          Alcotest.test_case "overrun detection" `Quick test_sim_overrun;
          Alcotest.test_case "pipeline causality" `Quick
            test_sim_pipeline_ordering;
          Alcotest.test_case "frames serialized" `Quick
            test_sim_frames_serialized;
          Alcotest.test_case "truth in candidates" `Quick
            test_sim_truth_in_candidates;
          Alcotest.test_case "truth vs outcome" `Quick
            test_sim_truth_outcome_consistent;
          Alcotest.test_case "wcet jitter bounds" `Quick
            test_sim_wcet_jitter_bounds;
          Alcotest.test_case "arbitration order" `Quick
            test_sim_can_arbitration_order;
        ] );
      ( "local_edges",
        [
          Alcotest.test_case "invisible to logger" `Quick
            test_local_edges_invisible;
          Alcotest.test_case "truth covers bus only" `Quick
            test_local_edges_truth_only_bus;
          Alcotest.test_case "learner blind, miner not" `Quick
            test_local_edges_learner_blind_miner_not;
        ] );
      ( "fault_injection",
        [
          Alcotest.test_case "drop 0 is clean" `Quick test_drop_rate_zero_is_clean;
          Alcotest.test_case "drops lose frames" `Quick
            test_drop_rate_loses_frames;
          Alcotest.test_case "drop all" `Quick test_drop_rate_all;
          Alcotest.test_case "truth matches log" `Quick
            test_drop_rate_truth_matches_log;
          Alcotest.test_case "learning under loss" `Quick
            test_dropped_input_breaks_learnability;
        ] );
    ]
