test/test_taskmodel.ml: Alcotest Array List Printf Rt_lattice Rt_task Rt_util String Test_support
