test/test_sim.ml: Alcotest Array Int List Rt_lattice Rt_learn Rt_mining Rt_sim Rt_task Rt_trace Test_support
