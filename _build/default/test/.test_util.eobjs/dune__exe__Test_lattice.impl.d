test/test_lattice.ml: Alcotest List QCheck Rt_lattice String Test_support
