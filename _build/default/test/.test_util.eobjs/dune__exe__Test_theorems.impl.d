test/test_theorems.ml: Alcotest List QCheck Rt_lattice Rt_learn Rt_sim Rt_task Rt_trace Rt_util Test_support
