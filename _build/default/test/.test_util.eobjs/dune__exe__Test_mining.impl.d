test/test_mining.ml: Alcotest List Option QCheck Rt_lattice Rt_learn Rt_mining Rt_task Rt_trace Test_support
