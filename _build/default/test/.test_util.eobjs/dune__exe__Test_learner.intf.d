test/test_learner.mli:
