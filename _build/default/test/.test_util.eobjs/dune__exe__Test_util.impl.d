test/test_util.ml: Alcotest Array Fun Int List QCheck Rt_util String Test_support
