test/test_learner.ml: Alcotest Array List Option Printf Rt_lattice Rt_learn Rt_task Rt_trace Test_support
