test/test_case_study.ml: Alcotest Array Lazy List Option Printf Rt_analysis Rt_case Rt_lattice Rt_learn Rt_mining Rt_sim Rt_task Rt_trace String Test_support
