test/test_sat.ml: Alcotest Array List QCheck Rt_lattice Rt_learn Rt_sat Rt_task Rt_trace Rt_util Test_support
