test/test_taskmodel.mli:
