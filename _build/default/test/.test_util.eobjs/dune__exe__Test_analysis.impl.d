test/test_analysis.ml: Alcotest Array List Rt_analysis Rt_case Rt_lattice Rt_task Rt_trace String Test_support
