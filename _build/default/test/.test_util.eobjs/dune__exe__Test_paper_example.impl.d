test/test_paper_example.ml: Alcotest Hashtbl List Printf Rt_case Rt_lattice Rt_learn String Test_support
