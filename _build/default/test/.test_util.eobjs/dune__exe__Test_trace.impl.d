test/test_trace.ml: Alcotest Array Filename Hashtbl List Option QCheck Rt_task Rt_trace String Sys Test_support
