(* Shared fixtures and Alcotest testables for the whole suite. *)

module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun

let depval : Dv.t Alcotest.testable = Alcotest.testable Dv.pp Dv.equal

let depfun : Df.t Alcotest.testable =
  Alcotest.testable (fun ppf d -> Df.pp ppf d) Df.equal

(* Shorthand for writing expected matrices the way the paper prints them. *)
let p = Dv.Par
let f = Dv.Fwd
let b = Dv.Bwd
let bi = Dv.Bi
let fq = Dv.Fwd_maybe
let bq = Dv.Bwd_maybe
let biq = Dv.Bi_maybe

let df rows = Df.of_rows rows

(* The paper's worked-example fixtures live in the library itself
   (Rt_case.Paper_example); re-exported here for the suites. *)
let fig1_design () = Rt_case.Paper_example.design ()

let fig2_trace_text = Rt_case.Paper_example.trace_text

let fig2_trace () = Rt_case.Paper_example.trace ()

(* A deterministic pipeline design t1 -> t2 -> t3 (all broadcast): its
   exact version space converges to a unique hypothesis. *)
let pipeline_design n =
  let task i =
    { Rt_task.Design.name = Printf.sprintf "t%d" (i + 1);
      policy = Rt_task.Design.Broadcast;
      ecu = 0;
      priority = i + 1;
      wcet = 10;
      offset = (if i = 0 then 5 else 0) }
  in
  let edge i =
    { Rt_task.Design.src = i; dst = i + 1; can_id = 0x10 + i; tx_time = 3;
      medium = Rt_task.Design.Bus }
  in
  Rt_task.Design.make
    ~tasks:(Array.init n task)
    ~edges:(Array.init (n - 1) edge)
    ~period:2000

(* Small random designs for property tests: sized to keep the exact
   algorithm tractable. *)
let small_design seed =
  Rt_task.Generator.generate
    { Rt_task.Generator.default with
      layers = 3;
      width_min = 1;
      width_max = 2;
      edge_density = 0.3;
      skip_density = 0.0 }
    ~seed

let simulate ?(periods = 8) ?(seed = 1) design =
  Rt_sim.Simulator.run design
    { Rt_sim.Simulator.default_config with periods; seed }

let qcheck_case ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)
