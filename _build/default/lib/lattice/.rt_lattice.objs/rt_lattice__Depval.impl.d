lib/lattice/depval.ml: Format Int
