lib/lattice/depval.mli: Format
