lib/lattice/depfun.mli: Depval Format
