lib/lattice/depfun.ml: Array Depval Format Int List Printf String
