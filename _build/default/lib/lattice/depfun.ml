type t = { n : int; cells : Depval.t array }

let create n =
  if n < 1 then invalid_arg "Depfun.create: need at least one task";
  { n; cells = Array.make (n * n) Depval.Par }

let top n =
  let d = create n in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then d.cells.((a * n) + b) <- Depval.Bi_maybe
    done
  done;
  d

let size d = d.n

let check d a b =
  if a < 0 || a >= d.n || b < 0 || b >= d.n then
    invalid_arg "Depfun: task index out of range"

let get d a b =
  check d a b;
  d.cells.((a * d.n) + b)

let set d a b v =
  check d a b;
  if a = b && not (Depval.equal v Depval.Par) then
    invalid_arg "Depfun.set: diagonal must stay Par";
  d.cells.((a * d.n) + b) <- v

let join_cell d a b v =
  check d a b;
  let i = (a * d.n) + b in
  let v' = Depval.join d.cells.(i) v in
  if Depval.equal v' d.cells.(i) then false
  else begin
    if a = b then invalid_arg "Depfun.join_cell: diagonal must stay Par";
    d.cells.(i) <- v';
    true
  end

let copy d = { n = d.n; cells = Array.copy d.cells }

let equal d1 d2 =
  d1.n = d2.n
  && (let rec loop i = i < 0 || (Depval.equal d1.cells.(i) d2.cells.(i) && loop (i - 1)) in
      loop ((d1.n * d1.n) - 1))

let compare d1 d2 =
  let c = Int.compare d1.n d2.n in
  if c <> 0 then c
  else
    let rec loop i =
      if i >= d1.n * d1.n then 0
      else
        let c = Depval.compare d1.cells.(i) d2.cells.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let leq d1 d2 =
  d1.n = d2.n
  && (let rec loop i = i < 0 || (Depval.leq d1.cells.(i) d2.cells.(i) && loop (i - 1)) in
      loop ((d1.n * d1.n) - 1))

let map2 name f d1 d2 =
  if d1.n <> d2.n then invalid_arg name;
  { n = d1.n; cells = Array.init (d1.n * d1.n) (fun i -> f d1.cells.(i) d2.cells.(i)) }

let join d1 d2 = map2 "Depfun.join: size mismatch" Depval.join d1 d2

let meet d1 d2 = map2 "Depfun.meet: size mismatch" Depval.meet d1 d2

let join_into ~dst d =
  if dst.n <> d.n then invalid_arg "Depfun.join_into: size mismatch";
  for i = 0 to (d.n * d.n) - 1 do
    dst.cells.(i) <- Depval.join dst.cells.(i) d.cells.(i)
  done

let lub = function
  | [] -> invalid_arg "Depfun.lub: empty list"
  | d :: rest ->
    let acc = copy d in
    List.iter (fun d' -> join_into ~dst:acc d') rest;
    acc

let weight d = Array.fold_left (fun acc v -> acc + Depval.distance v) 0 d.cells

let iter_pairs f d =
  for a = 0 to d.n - 1 do
    for b = 0 to d.n - 1 do
      if a <> b then f a b d.cells.((a * d.n) + b)
    done
  done

let fold_pairs f d init =
  let acc = ref init in
  iter_pairs (fun a b v -> acc := f a b v !acc) d;
  !acc

let count pred d = fold_pairs (fun _ _ v acc -> if pred v then acc + 1 else acc) d 0

let of_rows rows =
  let n = List.length rows in
  if n = 0 then invalid_arg "Depfun.of_rows: empty matrix";
  let d = create n in
  List.iteri (fun a row ->
      if List.length row <> n then invalid_arg "Depfun.of_rows: not square";
      List.iteri (fun b v ->
          if a = b then begin
            if not (Depval.equal v Depval.Par) then
              invalid_arg "Depfun.of_rows: diagonal must be Par"
          end
          else set d a b v)
        row)
    rows;
  d

let to_rows d =
  List.init d.n (fun a -> List.init d.n (fun b -> d.cells.((a * d.n) + b)))

let default_names n = Array.init n (fun i -> Printf.sprintf "t%d" (i + 1))

let pp ?names ppf d =
  let names = match names with Some a -> a | None -> default_names d.n in
  let name i = if i < Array.length names then names.(i) else Printf.sprintf "t%d" i in
  let width = ref 0 in
  Array.iter (fun v -> width := max !width (String.length (Depval.to_string v))) d.cells;
  for i = 0 to d.n - 1 do
    width := max !width (String.length (name i))
  done;
  let pad s = s ^ String.make (!width - String.length s) ' ' in
  Format.fprintf ppf "%s" (pad "");
  for b = 0 to d.n - 1 do
    Format.fprintf ppf " %s" (pad (name b))
  done;
  for a = 0 to d.n - 1 do
    Format.fprintf ppf "@\n%s" (pad (name a));
    for b = 0 to d.n - 1 do
      Format.fprintf ppf " %s" (pad (Depval.to_string d.cells.((a * d.n) + b)))
    done
  done

let to_string ?names d = Format.asprintf "%a" (pp ?names) d

let parse s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let fields l =
    String.split_on_char ' ' l |> List.filter (fun f -> f <> "")
  in
  match lines with
  | [] -> Error "empty input"
  | header :: rows ->
    let names = fields header in
    let n = List.length names in
    if n = 0 then Error "no task names in header"
    else if List.length rows <> n then
      Error (Printf.sprintf "expected %d rows, got %d" n (List.length rows))
    else begin
      let exception Fail of string in
      try
        let parsed_rows =
          List.map (fun row ->
              match fields row with
              | name :: cells ->
                if not (List.mem name names) then
                  raise (Fail ("unknown row label " ^ name));
                if List.length cells <> n then
                  raise (Fail ("wrong cell count in row " ^ name));
                List.map (fun cell ->
                    match Depval.of_string cell with
                    | Some v -> v
                    | None -> raise (Fail ("bad dependency value " ^ cell)))
                  cells
              | [] -> raise (Fail "empty row"))
            rows
        in
        match of_rows parsed_rows with
        | d -> Ok (d, Array.of_list names)
        | exception Invalid_argument m -> Error m
      with Fail m -> Error m
    end

let parse_exn s =
  match parse s with
  | Ok r -> r
  | Error m -> invalid_arg ("Depfun.parse_exn: " ^ m)
