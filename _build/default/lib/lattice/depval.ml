type t = Par | Fwd | Bwd | Bi | Fwd_maybe | Bwd_maybe | Bi_maybe

let all = [ Par; Fwd; Bwd; Bi; Fwd_maybe; Bwd_maybe; Bi_maybe ]

let equal (a : t) (b : t) = a = b

let distance = function
  | Par -> 0
  | Fwd | Bwd -> 1
  | Fwd_maybe | Bi | Bwd_maybe -> 4
  | Bi_maybe -> 9

let index = function
  | Par -> 0
  | Fwd -> 1
  | Bwd -> 2
  | Bi -> 3
  | Fwd_maybe -> 4
  | Bwd_maybe -> 5
  | Bi_maybe -> 6

let compare a b =
  let c = Int.compare (distance a) (distance b) in
  if c <> 0 then c else Int.compare (index a) (index b)

(* Figure 3, read as a more-specific-than order with Par at the bottom. *)
let leq a b =
  match a, b with
  | Par, _ -> true
  | _, Bi_maybe -> true
  | Fwd, (Fwd | Fwd_maybe | Bi) -> true
  | Bwd, (Bwd | Bwd_maybe | Bi) -> true
  | Bi, Bi -> true
  | Fwd_maybe, Fwd_maybe -> true
  | Bwd_maybe, Bwd_maybe -> true
  | (Fwd | Bwd | Bi | Fwd_maybe | Bwd_maybe | Bi_maybe), _ -> false

let lt a b = leq a b && not (equal a b)

let join a b =
  if leq a b then b
  else if leq b a then a
  else
    match a, b with
    | Fwd, Bwd | Bwd, Fwd -> Bi
    | Fwd, Bwd_maybe | Bwd_maybe, Fwd
    | Bwd, Fwd_maybe | Fwd_maybe, Bwd
    | Fwd_maybe, Bwd_maybe | Bwd_maybe, Fwd_maybe
    | Fwd_maybe, Bi | Bi, Fwd_maybe
    | Bwd_maybe, Bi | Bi, Bwd_maybe -> Bi_maybe
    | (Par | Fwd | Bwd | Bi | Fwd_maybe | Bwd_maybe | Bi_maybe), _ ->
      (* Any remaining combination is comparable and was handled above. *)
      assert false

let meet a b =
  if leq a b then a
  else if leq b a then b
  else
    match a, b with
    | Fwd, Bwd | Bwd, Fwd
    | Fwd, Bwd_maybe | Bwd_maybe, Fwd
    | Bwd, Fwd_maybe | Fwd_maybe, Bwd
    | Fwd_maybe, Bwd_maybe | Bwd_maybe, Fwd_maybe -> Par
    | Fwd_maybe, Bi | Bi, Fwd_maybe -> Fwd
    | Bwd_maybe, Bi | Bi, Bwd_maybe -> Bwd
    | (Par | Fwd | Bwd | Bi | Fwd_maybe | Bwd_maybe | Bi_maybe), _ ->
      assert false

let covers = function
  | Par -> [ Fwd; Bwd ]
  | Fwd -> [ Fwd_maybe; Bi ]
  | Bwd -> [ Bwd_maybe; Bi ]
  | Bi | Fwd_maybe | Bwd_maybe -> [ Bi_maybe ]
  | Bi_maybe -> []

let flip = function
  | Fwd -> Bwd
  | Bwd -> Fwd
  | Fwd_maybe -> Bwd_maybe
  | Bwd_maybe -> Fwd_maybe
  | (Par | Bi | Bi_maybe) as v -> v

let is_definite = function
  | Fwd | Bwd | Bi -> true
  | Par | Fwd_maybe | Bwd_maybe | Bi_maybe -> false

let weaken = function
  | Fwd -> Fwd_maybe
  | Bwd -> Bwd_maybe
  | Bi -> Bi_maybe
  | (Par | Fwd_maybe | Bwd_maybe | Bi_maybe) as v -> v

let to_string = function
  | Par -> "||"
  | Fwd -> "->"
  | Bwd -> "<-"
  | Bi -> "<->"
  | Fwd_maybe -> "->?"
  | Bwd_maybe -> "<-?"
  | Bi_maybe -> "<->?"

let of_string = function
  | "||" | "\xe2\x80\x96" -> Some Par
  | "->" | "\xe2\x86\x92" -> Some Fwd
  | "<-" | "\xe2\x86\x90" -> Some Bwd
  | "<->" | "\xe2\x86\x94" -> Some Bi
  | "->?" | "\xe2\x86\x92?" -> Some Fwd_maybe
  | "<-?" | "\xe2\x86\x90?" -> Some Bwd_maybe
  | "<->?" | "\xe2\x86\x94?" -> Some Bi_maybe
  | _ -> None

let pp ppf v = Format.pp_print_string ppf (to_string v)
