lib/analysis/query.ml: Array Classify Dep_graph List Modes Printf Result Rt_lattice String
