lib/analysis/latency.mli: Format Rt_lattice Rt_task
