lib/analysis/modes.ml: Array Fun Hashtbl List Option Rt_lattice Rt_trace
