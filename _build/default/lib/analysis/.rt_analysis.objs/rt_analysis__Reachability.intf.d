lib/analysis/reachability.mli: Rt_lattice
