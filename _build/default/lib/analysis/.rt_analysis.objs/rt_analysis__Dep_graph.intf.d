lib/analysis/dep_graph.mli: Rt_lattice
