lib/analysis/latency.ml: Array Float Format List Printf Rt_lattice Rt_task String
