lib/analysis/classify.mli: Format Rt_lattice
