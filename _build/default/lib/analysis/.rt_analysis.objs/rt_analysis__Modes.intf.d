lib/analysis/modes.mli: Rt_lattice Rt_trace
