lib/analysis/query.mli: Rt_lattice Rt_trace
