lib/analysis/dep_graph.ml: Array Buffer List Printf Rt_lattice
