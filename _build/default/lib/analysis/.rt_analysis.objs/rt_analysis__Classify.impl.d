lib/analysis/classify.ml: Array Dep_graph Format Fun List Printf Rt_lattice String
