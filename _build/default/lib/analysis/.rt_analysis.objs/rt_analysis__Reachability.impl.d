lib/analysis/reachability.ml: Array Float Rt_lattice
