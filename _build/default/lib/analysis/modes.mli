(** Operation-mode analysis (§3.4 mentions proving "operation mode of
    tasks"): grouping tasks that always execute together, and finding
    mutually exclusive tasks (distinct modes). *)

val co_execution_classes : Rt_lattice.Depfun.t -> int list list
(** Partition of the tasks into classes that always execute together: [a]
    and [b] are grouped when both [d(a,b)] and [d(b,a)] are definite
    (each one's execution forces the other's). Classes are sorted, each
    class ascending. *)

val exclusive_pairs : Rt_trace.Trace.t -> (int * int) list
(** Pairs of tasks that never executed in the same period of the trace —
    candidate mode alternatives (e.g. the two branches of a disjunction
    node that picks exactly one). Pairs [(a, b)] with [a < b], and both
    tasks executed somewhere in the trace. *)

val mode_alternatives :
  Rt_lattice.Depfun.t -> Rt_trace.Trace.t -> int -> int list list
(** For a disjunction task: its [→?] successors grouped into mutually
    exclusive alternatives using the trace's co-execution data. *)
