module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun

type op = Eq | Leq

type rhs = One of Dv.t | Set of Dv.t list

type clause =
  | Cell of string * string * op * rhs
  | Disjunction of string
  | Conjunction of string
  | Determines of string * string
  | Depends of string * string
  | Together of string * string
  | Exclusive of string * string

type t = clause list

(* --- lexer --- *)

type token =
  | Ident of string
  | Value of Dv.t
  | Lparen | Rparen | Comma | Amp | Equal | Below | Lbrace | Rbrace

(* Longest match first: '<->?' before '<->' before '<-?' before '<-' and
   '<='. *)
let symbols =
  [ ("<->?", Value Dv.Bi_maybe); ("<->", Value Dv.Bi); ("<-?", Value Dv.Bwd_maybe);
    ("<=", Below); ("<-", Value Dv.Bwd); ("->?", Value Dv.Fwd_maybe);
    ("->", Value Dv.Fwd); ("||", Value Dv.Par); ("(", Lparen); (")", Rparen);
    (",", Comma); ("&", Amp); ("=", Equal); ("{", Lbrace); ("}", Rbrace) ]

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else if s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' then go (i + 1) acc
    else
      let sym =
        List.find_opt (fun (lit, _) ->
            let l = String.length lit in
            i + l <= n && String.sub s i l = lit)
          symbols
      in
      match sym with
      | Some (lit, tok) -> go (i + String.length lit) (tok :: acc)
      | None ->
        if is_ident_char s.[i] then begin
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do incr j done;
          go !j (Ident (String.sub s i (!j - i)) :: acc)
        end
        else Error (Printf.sprintf "unexpected character %C at offset %d" s.[i] i)
  in
  go 0 []

(* --- parser --- *)

let parse input =
  let ( let* ) = Result.bind in
  let* tokens = tokenize input in
  let expect tok rest name =
    match rest with
    | t :: rest when t = tok -> Ok rest
    | _ -> Error (Printf.sprintf "expected %s" name)
  in
  let parse_name rest =
    match rest with
    | Ident n :: rest -> Ok (n, rest)
    | _ -> Error "expected a task name"
  in
  let parse_rhs rest =
    match rest with
    | Value v :: rest -> Ok (One v, rest)
    | Lbrace :: rest ->
      let rec vals acc rest =
        match rest with
        | Value v :: Comma :: rest -> vals (v :: acc) rest
        | Value v :: Rbrace :: rest -> Ok (Set (List.rev (v :: acc)), rest)
        | _ -> Error "expected a dependency value inside { }"
      in
      vals [] rest
    | _ -> Error "expected a dependency value or { }"
  in
  let parse_pair rest =
    let* rest = expect Lparen rest "(" in
    let* a, rest = parse_name rest in
    let* rest = expect Comma rest "," in
    let* b, rest = parse_name rest in
    let* rest = expect Rparen rest ")" in
    Ok ((a, b), rest)
  in
  let parse_clause rest =
    match rest with
    | Ident "d" :: rest ->
      let* (a, b), rest = parse_pair rest in
      let* op, rest =
        match rest with
        | Equal :: rest -> Ok (Eq, rest)
        | Below :: rest -> Ok (Leq, rest)
        | _ -> Error "expected '=' or '<=' after d(...)"
      in
      let* rhs, rest = parse_rhs rest in
      Ok (Cell (a, b, op, rhs), rest)
    | Ident "disjunction" :: rest ->
      let* rest = expect Lparen rest "(" in
      let* a, rest = parse_name rest in
      let* rest = expect Rparen rest ")" in
      Ok (Disjunction a, rest)
    | Ident "conjunction" :: rest ->
      let* rest = expect Lparen rest "(" in
      let* a, rest = parse_name rest in
      let* rest = expect Rparen rest ")" in
      Ok (Conjunction a, rest)
    | Ident "determines" :: rest ->
      let* (a, b), rest = parse_pair rest in
      Ok (Determines (a, b), rest)
    | Ident "depends" :: rest ->
      let* (a, b), rest = parse_pair rest in
      Ok (Depends (a, b), rest)
    | Ident "together" :: rest ->
      let* (a, b), rest = parse_pair rest in
      Ok (Together (a, b), rest)
    | Ident "exclusive" :: rest ->
      let* (a, b), rest = parse_pair rest in
      Ok (Exclusive (a, b), rest)
    | Ident other :: _ -> Error (Printf.sprintf "unknown predicate %S" other)
    | _ -> Error "expected a clause"
  in
  let rec parse_query acc rest =
    let* clause, rest = parse_clause rest in
    match rest with
    | [] -> Ok (List.rev (clause :: acc))
    | Amp :: rest -> parse_query (clause :: acc) rest
    | _ -> Error "expected '&' or end of query"
  in
  match tokens with
  | [] -> Error "empty query"
  | _ -> parse_query [] tokens

let parse_exn s =
  match parse s with
  | Ok q -> q
  | Error m -> invalid_arg ("Query.parse_exn: " ^ m)

let rhs_to_string = function
  | One v -> Dv.to_string v
  | Set vs -> "{" ^ String.concat ", " (List.map Dv.to_string vs) ^ "}"

let clause_to_string = function
  | Cell (a, b, op, rhs) ->
    Printf.sprintf "d(%s, %s) %s %s" a b
      (match op with Eq -> "=" | Leq -> "<=")
      (rhs_to_string rhs)
  | Disjunction a -> Printf.sprintf "disjunction(%s)" a
  | Conjunction a -> Printf.sprintf "conjunction(%s)" a
  | Determines (a, b) -> Printf.sprintf "determines(%s, %s)" a b
  | Depends (a, b) -> Printf.sprintf "depends(%s, %s)" a b
  | Together (a, b) -> Printf.sprintf "together(%s, %s)" a b
  | Exclusive (a, b) -> Printf.sprintf "exclusive(%s, %s)" a b

type verdict = {
  clause : clause;
  holds : bool;
  detail : string;
}

let eval ~model ~names ?trace query =
  let ( let* ) = Result.bind in
  let index name =
    let rec find i =
      if i >= Array.length names then Error (Printf.sprintf "unknown task %S" name)
      else if names.(i) = name then Ok i
      else find (i + 1)
    in
    find 0
  in
  let cell_detail a b =
    Printf.sprintf "d(%s, %s) = %s" names.(a) names.(b)
      (Dv.to_string (Df.get model a b))
  in
  let eval_clause clause =
    match clause with
    | Cell (a, b, op, rhs) ->
      let* a = index a in
      let* b = index b in
      let v = Df.get model a b in
      let holds =
        match op, rhs with
        | Eq, One v' -> Dv.equal v v'
        | Eq, Set vs -> List.exists (Dv.equal v) vs
        | Leq, One v' -> Dv.leq v v'
        | Leq, Set vs -> List.exists (Dv.leq v) vs
      in
      Ok { clause; holds; detail = cell_detail a b }
    | Disjunction name ->
      let* a = index name in
      let info = Classify.classify_task model a in
      Ok { clause;
           holds = (match info.kind with
               | Classify.Disjunction | Classify.Both -> true
               | Classify.Conjunction | Classify.Plain -> false);
           detail = Printf.sprintf "%d conditional successors"
               (List.length info.may_determine) }
    | Conjunction name ->
      let* a = index name in
      let info = Classify.classify_task model a in
      Ok { clause;
           holds = (match info.kind with
               | Classify.Conjunction | Classify.Both -> true
               | Classify.Disjunction | Classify.Plain -> false);
           detail = Printf.sprintf "%d conditional predecessors"
               (List.length info.may_depend_on) }
    | Determines (a, b) ->
      let* a = index a in
      let* b = index b in
      Ok { clause; holds = List.mem b (Dep_graph.determines model a);
           detail = cell_detail a b }
    | Depends (a, b) ->
      let* a = index a in
      let* b = index b in
      Ok { clause; holds = List.mem b (Dep_graph.depends_on model a);
           detail = cell_detail a b }
    | Together (a, b) ->
      let* a = index a in
      let* b = index b in
      let holds =
        Dv.is_definite (Df.get model a b) && Dv.is_definite (Df.get model b a)
      in
      Ok { clause; holds;
           detail = Printf.sprintf "%s; %s" (cell_detail a b) (cell_detail b a) }
    | Exclusive (a, b) ->
      let* a = index a in
      let* b = index b in
      (match trace with
       | None -> Error "exclusive(...) needs a trace"
       | Some trace ->
         let pairs = Modes.exclusive_pairs trace in
         Ok { clause; holds = List.mem (min a b, max a b) pairs;
              detail = "from trace co-execution" })
  in
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest ->
      let* v = eval_clause c in
      all (v :: acc) rest
  in
  all [] query

let holds ~model ~names ?trace query =
  Result.map (List.for_all (fun v -> v.holds)) (eval ~model ~names ?trace query)
