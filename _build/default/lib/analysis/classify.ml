module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun

type kind = Disjunction | Conjunction | Both | Plain

type info = {
  task : int;
  kind : kind;
  determines : int list;
  depends_on : int list;
  may_determine : int list;
  may_depend_on : int list;
}

let classify_task d a =
  let only v' = fun v -> Dv.equal v v' in
  let pick pred =
    List.filter (fun b -> b <> a && pred (Df.get d a b))
      (List.init (Df.size d) Fun.id)
  in
  let may_det = pick (only Dv.Fwd_maybe) and may_dep = pick (only Dv.Bwd_maybe) in
  let disj = List.length may_det >= 2 and conj = List.length may_dep >= 2 in
  {
    task = a;
    kind =
      (match disj, conj with
       | true, true -> Both
       | true, false -> Disjunction
       | false, true -> Conjunction
       | false, false -> Plain);
    determines = Dep_graph.determines d a;
    depends_on = Dep_graph.depends_on d a;
    may_determine = may_det;
    may_depend_on = may_dep;
  }

let classify d = List.init (Df.size d) (classify_task d)

let disjunction_nodes d =
  List.filter_map (fun i ->
      match i.kind with Disjunction | Both -> Some i.task | Conjunction | Plain -> None)
    (classify d)

let conjunction_nodes d =
  List.filter_map (fun i ->
      match i.kind with Conjunction | Both -> Some i.task | Disjunction | Plain -> None)
    (classify d)

let pp_info ?names ppf i =
  let name k =
    match names with
    | Some a when k < Array.length a -> a.(k)
    | Some _ | None -> Printf.sprintf "t%d" (k + 1)
  in
  let kind_str = match i.kind with
    | Disjunction -> "disjunction"
    | Conjunction -> "conjunction"
    | Both -> "disjunction+conjunction"
    | Plain -> "plain"
  in
  let list l = String.concat " " (List.map name l) in
  Format.fprintf ppf "%s: %s; determines [%s]; depends on [%s]; may determine [%s]; may depend on [%s]"
    (name i.task) kind_str (list i.determines) (list i.depends_on)
    (list i.may_determine) (list i.may_depend_on)
