(** Queries and rendering over learned dependency functions — the
    dependency-graph view of Fig. 4 / Fig. 5. *)

val determines : Rt_lattice.Depfun.t -> int -> int list
(** [determines d a]: tasks [b] with [d(a,b) ∈ {→, ↔}] — whenever [a]
    executes, it determines the execution of [b] (the paper's
    "no matter which mode A chooses, L must execute"). *)

val depends_on : Rt_lattice.Depfun.t -> int -> int list
(** Tasks [b] with [d(a,b) ∈ {←, ↔}]: [a] never executes without them. *)

val may_determine : Rt_lattice.Depfun.t -> int -> int list
(** Tasks [b] with [d(a,b) ∈ {→?, ↔?}]. *)

val may_depend_on : Rt_lattice.Depfun.t -> int -> int list

val definite_edges : Rt_lattice.Depfun.t -> (int * int) list
(** Ordered pairs with a definite value, lexicographic. *)

val reduced_determines : Rt_lattice.Depfun.t -> (int * int) list
(** Transitive reduction of the determines relation ([→]/[↔] cells):
    an edge [(a,b)] is dropped when [b] is already reachable from [a]
    through another determines edge. Mutually-determining pairs (tasks
    that always co-execute) are kept as-is. Learned LUB models are dense
    with transitive [→] cells; this recovers the readable skeleton. *)

val to_dot : ?names:string array -> Rt_lattice.Depfun.t -> string
(** Graphviz rendering in the style of Fig. 5: one edge per unordered
    task pair with a non-[Par] relation; solid heads for definite
    dependencies, dashed (with [?]) for conditional ones; the label shows
    the pair of values [(d(a,b), d(b,a))]. *)

val summary : ?names:string array -> Rt_lattice.Depfun.t -> string
(** Human-readable listing of all non-[Par] relations. *)
