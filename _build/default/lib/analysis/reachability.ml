module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun

let consistent d s =
  let n = Df.size d in
  let ok = ref true in
  for a = 0 to n - 1 do
    if !ok && s.(a) then
      for b = 0 to n - 1 do
        if a <> b && not s.(b) && Dv.is_definite (Df.get d a b) then ok := false
      done
  done;
  !ok

let closure d s =
  let n = Df.size d in
  let s = Array.copy s in
  let changed = ref true in
  while !changed do
    changed := false;
    for a = 0 to n - 1 do
      if s.(a) then
        for b = 0 to n - 1 do
          if a <> b && not s.(b) && Dv.is_definite (Df.get d a b) then begin
            s.(b) <- true;
            changed := true
          end
        done
    done
  done;
  s

(* Enumerate subsets as bitmasks; precompute each task's required-mask so
   the per-state check is a handful of word operations. *)
let required_masks d =
  let n = Df.size d in
  Array.init n (fun a ->
      let m = ref 0 in
      for b = 0 to n - 1 do
        if a <> b && Dv.is_definite (Df.get d a b) then m := !m lor (1 lsl b)
      done;
      !m)

let count_consistent d =
  let n = Df.size d in
  if n > 24 then invalid_arg "Reachability.count_consistent: too many tasks";
  let req = required_masks d in
  let count = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let ok = ref true in
    for a = 0 to n - 1 do
      if !ok && mask land (1 lsl a) <> 0 && req.(a) land mask <> req.(a) then
        ok := false
    done;
    if !ok then incr count
  done;
  !count

let total_states n = 1 lsl n

let reduction d =
  let c = count_consistent d in
  if c = 0 then infinity
  else Float.of_int (total_states (Df.size d)) /. Float.of_int c

let consistent_states d =
  let n = Df.size d in
  if n > 24 then invalid_arg "Reachability.consistent_states: too many tasks";
  let req = required_masks d in
  let states = ref [] in
  for mask = (1 lsl n) - 1 downto 0 do
    let ok = ref true in
    for a = 0 to n - 1 do
      if !ok && mask land (1 lsl a) <> 0 && req.(a) land mask <> req.(a) then
        ok := false
    done;
    if !ok then
      states := Array.init n (fun a -> mask land (1 lsl a) <> 0) :: !states
  done;
  !states
