(** Node-kind classification from a learned dependency function —
    recovering the paper's §3.4 properties: "Tasks A and B are disjunction
    nodes", "Tasks H, P and Q are conjunction nodes". *)

type kind =
  | Disjunction  (** actively chooses among ≥2 conditional successors *)
  | Conjunction  (** passively joins ≥2 conditional predecessors *)
  | Both
  | Plain

type info = {
  task : int;
  kind : kind;
  determines : int list;       (** definite successors *)
  depends_on : int list;       (** definite predecessors *)
  may_determine : int list;    (** conditional successors *)
  may_depend_on : int list;    (** conditional predecessors *)
}

val classify_task : Rt_lattice.Depfun.t -> int -> info
(** A task is a disjunction node when it has at least two [→?] successors
    (it sometimes determines one, sometimes another: a choice); a
    conjunction node when it has at least two [←?] predecessors (whether
    it runs depends on decisions made by others). *)

val classify : Rt_lattice.Depfun.t -> info list

val disjunction_nodes : Rt_lattice.Depfun.t -> int list

val conjunction_nodes : Rt_lattice.Depfun.t -> int list

val pp_info : ?names:string array -> Format.formatter -> info -> unit
