module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun
module D = Rt_task.Design

type report = {
  path : int list;
  task_response : (int * int) list;
  bus_delay : (int * int * int) list;
  total : int;
}

(* [j] cannot preempt [i] when the learned model proves a message-order
   precedence between them (either direction): definite d(i,j). *)
let excluded dep i j =
  match dep with
  | None -> false
  | Some d -> Dv.is_definite (Df.get d i j) || Dv.is_definite (Df.get d j i)

let response_time ?dep (d : D.t) i =
  let ti = d.tasks.(i) in
  let interference = ref 0 in
  Array.iteri (fun j tj ->
      if j <> i && tj.D.ecu = ti.D.ecu && tj.D.priority < ti.D.priority
         && not (excluded dep i j)
      then interference := !interference + tj.D.wcet)
    d.tasks;
  ti.D.wcet + !interference

let frame_delay (d : D.t) (e : D.edge) =
  match e.medium with
  | D.Local ->
    (* ECU-internal delivery: constant IPC latency, no bus contention. *)
    e.tx_time
  | D.Bus ->
    (* Non-preemptive blocking: one maximal lower-priority frame already
       on the wire; interference: every higher-priority frame once. *)
    let blocking = ref 0 and interference = ref 0 in
    List.iter (fun (e' : D.edge) ->
        if e'.can_id > e.can_id then blocking := max !blocking e'.tx_time
        else if e'.can_id < e.can_id then interference := !interference + e'.tx_time)
      (D.bus_edges d);
    !blocking + !interference + e.tx_time

let edge_between (d : D.t) a b =
  match Array.to_list d.edges |> List.find_opt (fun e -> e.D.src = a && e.D.dst = b) with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Latency.analyze: no design edge %s -> %s"
         d.tasks.(a).D.name d.tasks.(b).D.name)

let analyze ?dep (d : D.t) ~path =
  if path = [] then invalid_arg "Latency.analyze: empty path";
  let task_response = List.map (fun i -> (i, response_time ?dep d i)) path in
  let rec hops = function
    | a :: (b :: _ as rest) ->
      let e = edge_between d a b in
      (a, b, frame_delay d e) :: hops rest
    | [ _ ] | [] -> []
  in
  let bus_delay = hops path in
  let total =
    List.fold_left (fun acc (_, r) -> acc + r) 0 task_response
    + List.fold_left (fun acc (_, _, w) -> acc + w) 0 bus_delay
  in
  { path; task_response; bus_delay; total }

let improvement d ~dep ~path =
  let pess = (analyze d ~path).total in
  let inf = (analyze ~dep d ~path).total in
  (pess, inf, Float.of_int pess /. Float.of_int inf)

let ecu_utilization (d : D.t) =
  let necus = 1 + Array.fold_left (fun m t -> max m t.D.ecu) 0 d.tasks in
  let load = Array.make necus 0 in
  Array.iter (fun t -> load.(t.D.ecu) <- load.(t.D.ecu) + t.D.wcet) d.tasks;
  List.init necus (fun e -> (e, Float.of_int load.(e) /. Float.of_int d.period))

let bus_utilization (d : D.t) =
  let busy = List.fold_left (fun acc (e : D.edge) -> acc + e.tx_time) 0 (D.bus_edges d) in
  Float.of_int busy /. Float.of_int d.period

let critical_path (d : D.t) =
  (* Longest (by pessimistic latency) source-to-sink chain; designs are
     DAGs so a DFS over edges terminates. *)
  let best = ref [] and best_cost = ref min_int in
  let rec go node acc cost =
    let outs = D.outgoing d node in
    let cost = cost + response_time d node in
    if outs = [] then begin
      if cost > !best_cost then begin
        best_cost := cost;
        best := List.rev (node :: acc)
      end
    end
    else
      List.iter (fun (e : D.edge) ->
          go e.D.dst (node :: acc) (cost + frame_delay d e))
        outs
  in
  List.iter (fun s -> go s [] 0) (D.sources d);
  !best

let schedulable ?dep (d : D.t) =
  List.for_all (fun (_, u) -> u < 1.0) (ecu_utilization d)
  && bus_utilization d < 1.0
  &&
  match critical_path d with
  | [] -> true
  | path -> (analyze ?dep d ~path).total <= d.period

let pp_report ?names ppf r =
  let name i =
    match names with
    | Some a when i < Array.length a -> a.(i)
    | Some _ | None -> Printf.sprintf "t%d" (i + 1)
  in
  Format.fprintf ppf "@[<v>path: %s@,"
    (String.concat " -> " (List.map name r.path));
  List.iter (fun (i, t) -> Format.fprintf ppf "  response(%s) = %dus@," (name i) t)
    r.task_response;
  List.iter (fun (a, b, w) ->
      Format.fprintf ppf "  bus(%s -> %s) = %dus@," (name a) (name b) w)
    r.bus_delay;
  Format.fprintf ppf "total end-to-end latency: %dus@]" r.total
