(** A small property language over learned dependency models — the
    executable form of the paper's §3.4 claims ("no matter which mode
    task A chooses, task L must execute" becomes [d(A,L) = ->]).

    Grammar (whitespace-insensitive):

    {v
    query    ::= clause ( '&' clause )*
    clause   ::= 'd' '(' name ',' name ')' op rhs
               | 'disjunction' '(' name ')'
               | 'conjunction' '(' name ')'
               | 'determines' '(' name ',' name ')'
               | 'depends' '(' name ',' name ')'
               | 'together' '(' name ',' name ')'
               | 'exclusive' '(' name ',' name ')'
    op       ::= '=' | '<='                    (equality / lattice below)
    rhs      ::= value | '{' value (',' value)* '}'
    value    ::= '||' | '->' | '<-' | '<->' | '->?' | '<-?' | '<->?'
    v}

    [d(A,B) = v] tests cell equality; [d(A,B) <= v] tests [d(A,B) ⊑ v];
    [d(A,B) = {v1,v2}] tests membership. [together] holds when both
    directed cells are definite (the tasks always co-execute);
    [exclusive] needs trace evidence and holds when the two tasks never
    co-executed. *)

type clause

type t = clause list

val parse : string -> (t, string) result
(** Parse error messages include the offending token. *)

val parse_exn : string -> t

val clause_to_string : clause -> string

type verdict = {
  clause : clause;
  holds : bool;
  detail : string;  (** what the model actually says *)
}

val eval :
  model:Rt_lattice.Depfun.t -> names:string array ->
  ?trace:Rt_trace.Trace.t -> t -> (verdict list, string) result
(** Errors on unknown task names or on [exclusive] without a [trace]. *)

val holds :
  model:Rt_lattice.Depfun.t -> names:string array ->
  ?trace:Rt_trace.Trace.t -> t -> (bool, string) result
(** Conjunction of all clauses. *)
