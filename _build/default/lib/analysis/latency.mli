(** End-to-end latency analysis (§3.4's motivating application).

    The baseline is the pessimistic holistic view (Tindell & Clark style,
    specialized to our one-shot-per-period task model): every
    higher-priority task on the same ECU may preempt, and every
    higher-priority frame on the bus may delay, so worst-case response
    times accumulate all of it.

    The dependency-informed analysis uses a learned dependency function:
    a definite value on [(i, j)] — either [i] depends on [j] or [i]
    determines [j] — implies a message-order precedence between the two
    within a period, so [j] cannot preempt [i]'s execution; its WCET is
    removed from [i]'s interference term. This is exactly the paper's
    "excluding the possible preemption from higher priority task O during
    the execution of task Q". *)

type report = {
  path : int list;               (** the task chain analyzed *)
  task_response : (int * int) list;
  (** per path task: worst-case response time, microseconds *)
  bus_delay : (int * int * int) list;
  (** per path hop (src, dst): worst-case frame delay *)
  total : int;
}

val response_time :
  ?dep:Rt_lattice.Depfun.t -> Rt_task.Design.t -> int -> int
(** Worst-case response time of one task: WCET plus interference from
    same-ECU higher-priority tasks (each runs at most once per period).
    With [dep], interference from tasks with a definite dependency
    relation to the analyzed task is excluded. *)

val frame_delay : Rt_task.Design.t -> Rt_task.Design.edge -> int
(** Worst-case bus delay of one frame: blocking by the longest lower
    priority frame (non-preemptive) plus interference from all
    higher-priority frames (each at most once per period), plus its own
    transmission time. *)

val analyze :
  ?dep:Rt_lattice.Depfun.t -> Rt_task.Design.t -> path:int list -> report
(** End-to-end latency along a task chain: the sum of task response times
    and connecting frame delays. Every consecutive pair in [path] must be
    a design edge ([Invalid_argument] otherwise). *)

val improvement :
  Rt_task.Design.t -> dep:Rt_lattice.Depfun.t -> path:int list ->
  int * int * float
(** [(pessimistic, informed, gain)] where gain = pessimistic /. informed. *)

val ecu_utilization : Rt_task.Design.t -> (int * float) list
(** Per ECU: sum of WCETs over the period (each task runs at most once
    per period). *)

val bus_utilization : Rt_task.Design.t -> float
(** Sum of all frame transmission times over the period (worst case:
    every edge fires). *)

val schedulable : ?dep:Rt_lattice.Depfun.t -> Rt_task.Design.t -> bool
(** All utilizations below 1 and the worst-case end-to-end latency of the
    critical path fits within one period. With [dep], uses the
    dependency-informed response times. *)

val critical_path : Rt_task.Design.t -> int list
(** The design path (source to sink along edges) with the largest
    pessimistic latency — the natural target of the analysis. *)

val pp_report : ?names:string array -> Format.formatter -> report -> unit
