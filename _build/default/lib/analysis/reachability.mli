(** Reachable-state-space computation over a learned dependency function —
    quantifying the paper's claim that "the additional dependencies
    discovered from the execution trace help to reduce the state space
    that needs to be analyzed with other methods [...] such as model
    checking by means of reachability analysis".

    A {e state} is a set of tasks executing within one period. A state [S]
    is {e consistent} with a dependency function [d] iff for every [a ∈ S]
    and every [b] with a definite [d(a,b)], [b ∈ S] as well. Without any
    learned model, an analyzer must consider all [2^n] subsets; the
    definite dependencies prune that space. *)

val consistent : Rt_lattice.Depfun.t -> bool array -> bool

val closure : Rt_lattice.Depfun.t -> bool array -> bool array
(** The least consistent superset of the given task set. *)

val count_consistent : Rt_lattice.Depfun.t -> int
(** Number of consistent states, by exhaustive enumeration. Requires at
    most 24 tasks ([Invalid_argument] beyond that). *)

val total_states : int -> int
(** [2^n]. *)

val reduction : Rt_lattice.Depfun.t -> float
(** [total / consistent]: how many times smaller the search space became.
    1.0 means no reduction. *)

val consistent_states : Rt_lattice.Depfun.t -> bool array list
(** All consistent states (use only for small [n]). *)
