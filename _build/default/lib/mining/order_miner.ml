module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun

let infer trace =
  let stats = Follows.of_trace trace in
  let n = Follows.task_count stats in
  let d = Df.create n in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && Follows.co_executed stats a b > 0 then begin
        let v =
          if Follows.implies stats a b && Follows.always_precedes stats a b then
            Dv.Fwd
          else if Follows.implies stats a b && Follows.always_precedes stats b a
          then Dv.Bwd
          else if Follows.always_precedes stats a b then Dv.Fwd_maybe
          else if Follows.always_precedes stats b a then Dv.Bwd_maybe
          else Dv.Par
        in
        Df.set d a b v
      end
    done
  done;
  d

type metrics = {
  cell_accuracy : float;
  definite_precision : float;
  definite_recall : float;
  dependency_precision : float;
  dependency_recall : float;
}

let ratio num den = if den = 0 then 1.0 else Float.of_int num /. Float.of_int den

let score ~predicted ~truth =
  if Df.size predicted <> Df.size truth then
    invalid_arg "Order_miner.score: size mismatch";
  let eq = ref 0 and cells = ref 0 in
  let def_tp = ref 0 and def_p = ref 0 and def_t = ref 0 in
  let dep_tp = ref 0 and dep_p = ref 0 and dep_t = ref 0 in
  Df.iter_pairs (fun a b v ->
      incr cells;
      let tv = Df.get truth a b in
      if Dv.equal v tv then incr eq;
      let p_def = Dv.is_definite v and t_def = Dv.is_definite tv in
      if p_def then incr def_p;
      if t_def then incr def_t;
      if p_def && t_def then incr def_tp;
      let p_dep = not (Dv.equal v Dv.Par) and t_dep = not (Dv.equal tv Dv.Par) in
      if p_dep then incr dep_p;
      if t_dep then incr dep_t;
      if p_dep && t_dep then incr dep_tp)
    predicted;
  {
    cell_accuracy = ratio !eq !cells;
    definite_precision = ratio !def_tp !def_p;
    definite_recall = ratio !def_tp !def_t;
    dependency_precision = ratio !dep_tp !dep_p;
    dependency_recall = ratio !dep_tp !dep_t;
  }

let pp_metrics ppf m =
  Format.fprintf ppf
    "cell accuracy %.2f; definite P/R %.2f/%.2f; dependency P/R %.2f/%.2f"
    m.cell_accuracy m.definite_precision m.definite_recall
    m.dependency_precision m.dependency_recall
