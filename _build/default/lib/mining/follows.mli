(** Co-occurrence and ordering statistics over a trace — the raw material
    of the process-mining baseline. *)

type t

val of_trace : Rt_trace.Trace.t -> t

val task_count : t -> int

val executed : t -> int -> int
(** Number of periods in which the task executed. *)

val co_executed : t -> int -> int -> int
(** Periods in which both executed. *)

val preceded : t -> int -> int -> int
(** Periods in which both executed and [a] ended no later than [b]
    started. *)

val implies : t -> int -> int -> bool
(** [a] executed at least once and every period executing [a] also
    executed [b]. *)

val always_precedes : t -> int -> int -> bool
(** They co-executed at least once and [a] ended before [b] started in
    every co-period. *)
