lib/mining/follows.ml: Array List Rt_trace
