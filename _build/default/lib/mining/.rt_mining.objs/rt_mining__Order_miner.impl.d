lib/mining/order_miner.ml: Float Follows Format Rt_lattice
