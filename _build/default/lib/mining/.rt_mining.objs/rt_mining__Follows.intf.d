lib/mining/follows.mli: Rt_trace
