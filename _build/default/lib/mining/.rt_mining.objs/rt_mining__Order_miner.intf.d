lib/mining/order_miner.mli: Format Rt_lattice Rt_trace
