type t = {
  n : int;
  executed : int array;
  co : int array array;
  prec : int array array;
}

let of_trace trace =
  let n = Rt_trace.Trace.task_count trace in
  let executed = Array.make n 0 in
  let co = Array.make_matrix n n 0 in
  let prec = Array.make_matrix n n 0 in
  List.iter (fun (p : Rt_trace.Period.t) ->
      for a = 0 to n - 1 do
        if p.executed.(a) then begin
          executed.(a) <- executed.(a) + 1;
          for b = 0 to n - 1 do
            if a <> b && p.executed.(b) then begin
              co.(a).(b) <- co.(a).(b) + 1;
              if p.end_time.(a) <= p.start_time.(b) then
                prec.(a).(b) <- prec.(a).(b) + 1
            end
          done
        end
      done)
    (Rt_trace.Trace.periods trace);
  { n; executed; co; prec }

let task_count t = t.n

let executed t a = t.executed.(a)

let co_executed t a b = t.co.(a).(b)

let preceded t a b = t.prec.(a).(b)

let implies t a b = t.executed.(a) > 0 && t.co.(a).(b) = t.executed.(a)

let always_precedes t a b = t.co.(a).(b) > 0 && t.prec.(a).(b) = t.co.(a).(b)
