(** Baseline: a process-mining style orderings miner in the spirit of
    directly-follows / alpha-algorithm discovery, adapted to the
    dependency-value lattice so its output is comparable with the
    learner's.

    Unlike the version-space learner it ignores messages entirely —
    it reads only execution sets and start/end times:

    - [d(a,b) = →] when [b] executes in every period [a] does and [a]
      always finishes before [b] starts (a determines b);
    - [d(a,b) = ←] when [b] executes whenever [a] does and [b] always
      finishes before [a] starts (a depends on b);
    - [d(a,b) = →?]/[←?] when the ordering is consistent but the
      implication only sometimes holds;
    - [‖] otherwise.

    Its weakness — the reason the paper's message-guided search earns its
    keep — is that pure ordering statistics cannot distinguish a data
    dependency from coincidental scheduling order, so it over-claims on
    dense schedules and misses nothing-ordered-but-dependent cases. The
    evaluation harness quantifies this against design ground truth. *)

val infer : Rt_trace.Trace.t -> Rt_lattice.Depfun.t

type metrics = {
  cell_accuracy : float;      (** fraction of off-diagonal cells equal *)
  definite_precision : float; (** of predicted →/←/↔ cells, fraction in truth *)
  definite_recall : float;
  dependency_precision : float; (** any non-‖ prediction vs truth *)
  dependency_recall : float;
}

val score : predicted:Rt_lattice.Depfun.t -> truth:Rt_lattice.Depfun.t -> metrics

val pp_metrics : Format.formatter -> metrics -> unit
