type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?(aligns = []) ~header rows =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let account row =
    List.iteri (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  account header;
  List.iter account rows;
  let align_of i =
    match List.nth_opt aligns i with Some a -> a | None -> Left
  in
  let line ch =
    let parts = Array.to_list (Array.map (fun w -> String.make (w + 2) ch) widths) in
    "+" ^ String.concat "+" parts ^ "+"
  in
  let fmt_row row =
    let cells =
      List.mapi (fun i cell -> " " ^ pad (align_of i) widths.(i) cell ^ " ") row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (fmt_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter (fun row ->
      Buffer.add_string buf (fmt_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render_kv kvs =
  render ~header:[ "key"; "value" ] (List.map (fun (k, v) -> [ k; v ]) kvs)
