lib/util/table.mli:
