lib/util/pcg32.mli:
