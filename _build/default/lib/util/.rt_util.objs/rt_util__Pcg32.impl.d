lib/util/pcg32.ml: Array Float Int64 List
