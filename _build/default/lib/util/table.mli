(** Plain-text table rendering for benchmark and experiment reports. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a boxed ASCII table. Column widths fit
    the widest cell; [aligns] defaults to left for every column. Rows
    shorter than the header are padded with empty cells. *)

val render_kv : (string * string) list -> string
(** Two-column key/value table. *)
