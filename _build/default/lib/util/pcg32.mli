(** Deterministic, splittable PCG32 pseudo-random number generator.

    The simulator and workload generators must be reproducible across runs
    and platforms, so we implement the PCG-XSH-RR 64/32 generator rather
    than relying on [Stdlib.Random] state semantics. *)

type t
(** Mutable generator state. *)

val make : seed:int64 -> stream:int64 -> t
(** [make ~seed ~stream] creates a generator. Distinct [stream] values give
    statistically independent sequences for the same [seed]. *)

val of_int : int -> t
(** [of_int seed] is [make] with a derived stream; convenient entry point. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split rng] draws from [rng] to derive a fresh, independent generator.
    Used to give each simulated component its own stream. *)

val next_uint32 : t -> int
(** Next raw 32-bit output in [0, 2^32). *)

val int : t -> int -> int
(** [int rng bound] is uniform in [0, bound). Requires [bound > 0].
    Uses rejection sampling, so it is exactly uniform. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform in [lo, hi] inclusive. Requires
    [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance rng p] is true with probability [p] (clamped to [0,1]). *)

val float : t -> float -> float
(** [float rng x] is uniform in [0, x). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val subset : t -> p:float -> 'a list -> 'a list
(** Each element kept independently with probability [p], order preserved. *)
