(* PCG-XSH-RR 64/32 (O'Neill 2014). State advances by a 64-bit LCG; output
   is a xorshifted, randomly-rotated 32-bit projection of the state. *)

type t = { mutable state : int64; inc : int64 }

let multiplier = 6364136223846793005L

let step t = t.state <- Int64.add (Int64.mul t.state multiplier) t.inc

let make ~seed ~stream =
  (* Per the reference implementation: inc must be odd. *)
  let t = { state = 0L; inc = Int64.logor (Int64.shift_left stream 1) 1L } in
  step t;
  t.state <- Int64.add t.state seed;
  step t;
  t

let of_int seed =
  let s = Int64.of_int seed in
  make ~seed:s ~stream:(Int64.logxor s 0x9E3779B97F4A7C15L)

let copy t = { state = t.state; inc = t.inc }

let next_uint32 t =
  let old = t.state in
  step t;
  let xorshifted =
    Int64.to_int
      (Int64.logand
         (Int64.shift_right_logical (Int64.logxor (Int64.shift_right_logical old 18) old) 27)
         0xFFFFFFFFL)
  in
  let rot = Int64.to_int (Int64.shift_right_logical old 59) in
  let x = (xorshifted lsr rot) lor (xorshifted lsl (-rot land 31)) in
  x land 0xFFFFFFFF

let split t =
  let seed =
    Int64.logor
      (Int64.shift_left (Int64.of_int (next_uint32 t)) 32)
      (Int64.of_int (next_uint32 t))
  in
  let stream =
    Int64.logor
      (Int64.shift_left (Int64.of_int (next_uint32 t)) 32)
      (Int64.of_int (next_uint32 t))
  in
  make ~seed ~stream

let int t bound =
  if bound <= 0 then invalid_arg "Pcg32.int: bound must be positive";
  (* Rejection sampling over the 32-bit range for exact uniformity. *)
  let threshold = 0x100000000 mod bound in
  let rec loop () =
    let x = next_uint32 t in
    if x >= threshold then x mod bound else loop ()
  in
  loop ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Pcg32.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = next_uint32 t land 1 = 1

let float t x = Float.of_int (next_uint32 t) /. 4294967296.0 *. x

let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Pcg32.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let subset t ~p l = List.filter (fun _ -> chance t p) l
