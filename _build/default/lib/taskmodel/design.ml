type policy = Broadcast | Choose_any | Choose_one

type task = {
  name : string;
  policy : policy;
  ecu : int;
  priority : int;
  wcet : int;
  offset : int;
}

type medium = Bus | Local

type edge = { src : int; dst : int; can_id : int; tx_time : int; medium : medium }

type t = { tasks : task array; edges : edge array; period : int }

let size d = Array.length d.tasks

let validate d =
  let n = Array.length d.tasks in
  if n = 0 then invalid_arg "Design.make: no tasks";
  if d.period <= 0 then invalid_arg "Design.make: period must be positive";
  Array.iter (fun t ->
      if t.wcet <= 0 then invalid_arg "Design.make: wcet must be positive";
      if t.offset < 0 then invalid_arg "Design.make: negative offset")
    d.tasks;
  let seen_pair = Hashtbl.create 16 and seen_id = Hashtbl.create 16 in
  Array.iter (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid_arg "Design.make: edge endpoint out of range";
      if e.src = e.dst then invalid_arg "Design.make: self edge";
      if e.tx_time <= 0 then invalid_arg "Design.make: tx_time must be positive";
      if Hashtbl.mem seen_pair (e.src, e.dst) then
        invalid_arg "Design.make: duplicate (src, dst) edge";
      Hashtbl.add seen_pair (e.src, e.dst) ();
      if Hashtbl.mem seen_id e.can_id then
        invalid_arg "Design.make: duplicate CAN id";
      Hashtbl.add seen_id e.can_id ())
    d.edges;
  (* Kahn's algorithm both checks acyclicity and yields the topo order. *)
  let indeg = Array.make n 0 in
  Array.iter (fun e -> indeg.(e.dst) <- indeg.(e.dst) + 1) d.edges;
  let queue = Queue.create () in
  Array.iteri (fun i deg -> if deg = 0 then Queue.add i queue) indeg;
  let order = ref [] and count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr count;
    Array.iter (fun e ->
        if e.src = v then begin
          indeg.(e.dst) <- indeg.(e.dst) - 1;
          if indeg.(e.dst) = 0 then Queue.add e.dst queue
        end)
      d.edges
  done;
  if !count <> n then invalid_arg "Design.make: design graph has a cycle";
  List.rev !order

let make ~tasks ~edges ~period =
  let d = { tasks; edges; period } in
  ignore (validate d);
  d

let task_set d = Task_set.of_names (Array.map (fun t -> t.name) d.tasks)

let outgoing d v =
  Array.to_list d.edges
  |> List.filter (fun e -> e.src = v)
  |> List.sort (fun a b -> Int.compare a.can_id b.can_id)

let incoming d v =
  Array.to_list d.edges
  |> List.filter (fun e -> e.dst = v)
  |> List.sort (fun a b -> Int.compare a.can_id b.can_id)

let bus_edges d =
  Array.to_list d.edges |> List.filter (fun e -> e.medium = Bus)

let sources d =
  let has_in = Array.make (size d) false in
  Array.iter (fun e -> has_in.(e.dst) <- true) d.edges;
  List.filter (fun v -> not has_in.(v)) (List.init (size d) Fun.id)

let topological_order d = validate d

let is_disjunction d v =
  match d.tasks.(v).policy with
  | Broadcast -> false
  | Choose_any | Choose_one -> List.length (outgoing d v) >= 2

let is_conjunction d v = List.length (incoming d v) >= 2

type outcome = { executed : bool array; sent : edge list }

(* Nonempty subsets / singletons of the outgoing edge list, as the local
   choice space of a node. *)
let choice_space policy edges =
  match policy, edges with
  | _, [] -> [ [] ]
  | Broadcast, es -> [ es ]
  | Choose_one, es -> List.map (fun e -> [ e ]) es
  | Choose_any, es ->
    let rec subsets = function
      | [] -> [ [] ]
      | e :: rest ->
        let s = subsets rest in
        List.map (fun sub -> e :: sub) s @ s
    in
    List.filter (fun s -> s <> []) (subsets es)

let sample_choice rng policy edges =
  match policy, edges with
  | _, [] -> []
  | Broadcast, es -> es
  | Choose_one, es -> [ Rt_util.Pcg32.pick rng es ]
  | Choose_any, es ->
    let rec pick () =
      match Rt_util.Pcg32.subset rng ~p:0.5 es with
      | [] -> pick ()
      | s -> s
    in
    pick ()

let run_outcome d ~choose =
  let n = size d in
  let executed = Array.make n false in
  let received = Array.make n false in
  let sent = ref [] in
  let order = topological_order d in
  let srcs = sources d in
  List.iter (fun v ->
      let fires = List.mem v srcs || received.(v) in
      if fires then begin
        executed.(v) <- true;
        let chosen = choose v (outgoing d v) in
        List.iter (fun e ->
            received.(e.dst) <- true;
            sent := e :: !sent)
          chosen
      end)
    order;
  { executed; sent = List.rev !sent }

let sample_outcome d rng =
  run_outcome d ~choose:(fun v es -> sample_choice rng d.tasks.(v).policy es)

let all_outcomes d ~limit =
  let order = topological_order d in
  let srcs = sources d in
  (* Worklist of partial states in topo order. *)
  let exception Too_many in
  let step states v =
    let next =
      List.concat_map (fun (executed, received, sent) ->
          let fires = List.mem v srcs || received v in
          if not fires then [ (executed, received, sent) ]
          else
            let choices = choice_space d.tasks.(v).policy (outgoing d v) in
            List.map (fun chosen ->
                let executed' u = u = v || executed u in
                let received' u =
                  received u || List.exists (fun e -> e.dst = u) chosen
                in
                (executed', received', sent @ chosen))
              choices)
        states
    in
    if List.length next > limit then raise Too_many;
    next
  in
  match List.fold_left step [ ((fun _ -> false), (fun _ -> false), []) ] order with
  | states ->
    Some
      (List.map (fun (executed, _, sent) ->
           { executed = Array.init (size d) executed; sent })
         states)
  | exception Too_many -> None

let ground_truth d =
  match all_outcomes d ~limit:100_000 with
  | None -> None
  | Some outcomes ->
    let module Dv = Rt_lattice.Depval in
    let module Df = Rt_lattice.Depfun in
    let n = size d in
    let dep = Df.create n in
    (* Values only move up the finite lattice, so this fixpoint
       terminates. Each pass applies message evidence then execution
       weakening for every outcome. *)
    let changed = ref true in
    while !changed do
      changed := false;
      let note b = if b then changed := true in
      List.iter (fun o ->
          List.iter (fun e ->
              note (Df.join_cell dep e.src e.dst Dv.Fwd);
              note (Df.join_cell dep e.dst e.src Dv.Bwd))
            o.sent;
          Df.iter_pairs (fun a b v ->
              if Dv.is_definite v && o.executed.(a) && not o.executed.(b)
              then begin
                Df.set dep a b (Dv.weaken v);
                changed := true
              end)
            dep)
        outcomes
    done;
    Some dep

let to_dot d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph design {\n  rankdir=TB;\n";
  Array.iteri (fun i t ->
      let shape = if is_disjunction d i then "diamond"
        else if is_conjunction d i then "doublecircle"
        else "ellipse"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=%s, label=\"%s\\necu%d p%d\"];\n"
           t.name shape t.name t.ecu t.priority))
    d.tasks;
  Array.iter (fun e ->
      let style = match e.medium with Bus -> "solid" | Local -> "dotted" in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [style=%s, label=\"0x%x\"];\n"
           d.tasks.(e.src).name d.tasks.(e.dst).name style e.can_id))
    d.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf d =
  Format.fprintf ppf "design: %d tasks, %d edges, period %dus"
    (size d) (Array.length d.edges) d.period
