(** Control-flow design models (paper §2.1, Fig. 1).

    A design is a DAG of tasks. Tasks execute at most once per period, in a
    data-driven way: a {e source} task (no incoming edge) executes every
    period; any other task executes iff it receives at least one message.
    When a task finishes it sends messages on outgoing edges according to
    its policy — this is where the model's nondeterminism (the paper's
    "logical decisions") lives.

    The design also carries the deployment information the simulator needs:
    ECU assignment, fixed priority (OSEK-style, lower number = higher
    priority), WCET, release offset, and a CAN identifier per edge. *)

type policy =
  | Broadcast  (** sends on every outgoing edge (neither dis- nor conjunction) *)
  | Choose_any (** disjunction node: sends on a nonempty subset of edges *)
  | Choose_one (** disjunction node: sends on exactly one edge *)

type task = {
  name : string;
  policy : policy;
  ecu : int;       (** which processor the task runs on *)
  priority : int;  (** fixed priority, lower = more urgent *)
  wcet : int;      (** worst-case execution time, microseconds *)
  offset : int;    (** release offset within the period (sources only) *)
}

type medium =
  | Bus    (** transmitted on the shared CAN bus; visible to the logger *)
  | Local  (** delivered ECU-internally (shared memory / IPC); invisible
               to the bus logger — the source of the paper's "indirect
               influence with no explicit messages" *)

type edge = {
  src : int;
  dst : int;
  can_id : int;   (** bus arbitration identifier, lower = higher priority *)
  tx_time : int;  (** transmission time on the bus, or IPC latency for
                      [Local] edges, microseconds *)
  medium : medium;
}

type t = private {
  tasks : task array;
  edges : edge array;
  period : int;  (** period length in microseconds *)
}

val make : tasks:task array -> edges:edge array -> period:int -> t
(** Validates: at least one task, indices in range, no self-edges, at most
    one edge per (src, dst) pair, distinct CAN ids, positive WCETs and
    period, and acyclicity. Raises [Invalid_argument] with a description
    otherwise. *)

val task_set : t -> Task_set.t

val size : t -> int
(** Number of tasks. *)

val outgoing : t -> int -> edge list
(** Outgoing edges of a task, in CAN-id order. *)

val bus_edges : t -> edge list
(** Only the edges the logger can observe. *)

val incoming : t -> int -> edge list

val sources : t -> int list
(** Tasks with no incoming edge; they fire every period. *)

val topological_order : t -> int list

val is_disjunction : t -> int -> bool
(** A task that makes a real choice: [Choose_any] or [Choose_one] with at
    least two outgoing edges. *)

val is_conjunction : t -> int -> bool
(** A task with at least two incoming edges (a join that passively
    receives). *)

(** {2 Logical outcomes}

    A logical outcome is one resolution of all design choices in a period,
    before any timing: which tasks executed and which edges carried a
    message. *)

type outcome = { executed : bool array; sent : edge list }

val sample_outcome : t -> Rt_util.Pcg32.t -> outcome
(** Draw one outcome uniformly over each node's local choices. *)

val all_outcomes : t -> limit:int -> outcome list option
(** Exhaustive enumeration of outcomes, or [None] if there are more than
    [limit]. Outcomes are produced in a deterministic order. *)

val ground_truth : t -> Rt_lattice.Depfun.t option
(** The most specific dependency function consistent with {e every} logical
    outcome of the design, computed by fixpoint over the exhaustive outcome
    set (with true sender/receiver knowledge). This is what a perfect
    learner converges to given an exhaustive trace and exact candidate
    information. [None] if there are more than 100_000 outcomes. *)

val to_dot : t -> string
(** Graphviz rendering of the design graph (Fig. 1 style). *)

val pp : Format.formatter -> t -> unit
