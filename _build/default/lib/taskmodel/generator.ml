module Pcg = Rt_util.Pcg32

type params = {
  layers : int;
  width_min : int;
  width_max : int;
  edge_density : float;
  skip_density : float;
  choose_any_fraction : float;
  choose_one_fraction : float;
  local_fraction : float;
  ecus : int;
  wcet_min : int;
  wcet_max : int;
  period : int;
}

let default = {
  layers = 4;
  width_min = 2;
  width_max = 4;
  edge_density = 0.3;
  skip_density = 0.1;
  choose_any_fraction = 0.4;
  choose_one_fraction = 0.2;
  local_fraction = 0.0;
  ecus = 2;
  wcet_min = 50;
  wcet_max = 300;
  period = 10_000;
}

let generate p ~seed =
  if p.layers < 1 || p.width_min < 1 || p.width_max < p.width_min then
    invalid_arg "Generator.generate: bad layer shape";
  if p.ecus < 1 then invalid_arg "Generator.generate: need >= 1 ECU";
  let rng = Pcg.of_int seed in
  (* Layer sizes and global task indices. *)
  let widths = Array.init p.layers (fun _ -> Pcg.int_in rng p.width_min p.width_max) in
  let layer_of = ref [] in
  Array.iteri (fun li w ->
      for _ = 1 to w do layer_of := li :: !layer_of done)
    widths;
  let layer_of = Array.of_list (List.rev !layer_of) in
  let n = Array.length layer_of in
  let in_layer li =
    List.filter (fun i -> layer_of.(i) = li) (List.init n Fun.id)
  in
  (* Edges: every non-first-layer task gets one mandatory predecessor in
     the previous layer, plus density-controlled extras. *)
  let edges = ref [] in
  let add_edge s d = if not (List.exists (fun (a, b) -> a = s && b = d) !edges)
    then edges := (s, d) :: !edges
  in
  for i = 0 to n - 1 do
    let li = layer_of.(i) in
    if li > 0 then begin
      let prev = in_layer (li - 1) in
      add_edge (Pcg.pick rng prev) i;
      List.iter (fun s -> if Pcg.chance rng p.edge_density then add_edge s i) prev;
      for lj = 0 to li - 2 do
        List.iter (fun s -> if Pcg.chance rng p.skip_density then add_edge s i)
          (in_layer lj)
      done
    end
  done;
  let edge_pairs = Array.of_list (List.rev !edges) in
  (* CAN ids: a shuffled permutation so that bus priority is unrelated to
     topological position, as on a real bus. *)
  let ids = Array.init (Array.length edge_pairs) Fun.id in
  Pcg.shuffle rng ids;
  let edges =
    Array.mapi (fun k (s, d) ->
        { Design.src = s; dst = d; can_id = 0x100 + ids.(k);
          tx_time = Pcg.int_in rng 20 60;
          medium =
            (if Pcg.chance rng p.local_fraction then Design.Local
             else Design.Bus) })
      edge_pairs
  in
  let out_degree i =
    Array.fold_left (fun acc e -> if e.Design.src = i then acc + 1 else acc) 0 edges
  in
  let tasks =
    Array.init n (fun i ->
        let policy =
          if out_degree i >= 2 then begin
            let r = Pcg.float rng 1.0 in
            if r < p.choose_any_fraction then Design.Choose_any
            else if r < p.choose_any_fraction +. p.choose_one_fraction then
              Design.Choose_one
            else Design.Broadcast
          end
          else Design.Broadcast
        in
        { Design.name = Printf.sprintf "t%d" (i + 1);
          policy;
          ecu = Pcg.int rng p.ecus;
          priority = i + 1;
          wcet = Pcg.int_in rng p.wcet_min p.wcet_max;
          offset = if layer_of.(i) = 0 then Pcg.int rng 50 else 0 })
  in
  Design.make ~tasks ~edges ~period:p.period

let sized ~ntasks ~seed =
  let layers = max 2 (ntasks / 3) in
  let width = max 1 (ntasks / layers) in
  generate
    { default with
      layers;
      width_min = width;
      width_max = width + 1 }
    ~seed
