(** Random layered-DAG design models, the synthetic workload generator for
    scaling benchmarks and property tests. *)

type params = {
  layers : int;            (** number of DAG layers, >= 1 *)
  width_min : int;         (** min tasks per layer *)
  width_max : int;         (** max tasks per layer *)
  edge_density : float;    (** probability of an edge between tasks in
                               consecutive layers (beyond the mandatory
                               one that keeps every task reachable) *)
  skip_density : float;    (** probability of a layer-skipping edge *)
  choose_any_fraction : float; (** fraction of multi-output tasks that are
                                   [Choose_any] disjunction nodes *)
  choose_one_fraction : float;
  local_fraction : float;  (** fraction of edges delivered ECU-internally
                               (invisible to the bus logger) *)
  ecus : int;              (** number of processors, >= 1 *)
  wcet_min : int;
  wcet_max : int;
  period : int;            (** period length in microseconds *)
}

val default : params
(** 4 layers of 2–4 tasks, moderate density, 2 ECUs, 10ms period. *)

val generate : params -> seed:int -> Design.t
(** Deterministic in [(params, seed)]. Every non-source task has at least
    one incoming edge; every source is in the first layer. *)

val sized : ntasks:int -> seed:int -> Design.t
(** Convenience: roughly [ntasks] tasks with default-ish shape. *)
