(** A fixed, named set of tasks. Tasks are dense integer indices
    [0 .. size - 1]; the names are only for reporting, matching the paper's
    [t1..t4] and [S, A..Q] conventions. *)

type t

val of_names : string array -> t
(** Names must be non-empty and pairwise distinct. *)

val numbered : int -> t
(** [numbered n] has names [t1 .. tn]. *)

val size : t -> int

val name : t -> int -> string
(** Raises [Invalid_argument] if out of range. *)

val names : t -> string array
(** A fresh copy of the name array. *)

val index : t -> string -> int option
(** Look a task up by name. *)

val index_exn : t -> string -> int
(** @raise Not_found if absent. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
