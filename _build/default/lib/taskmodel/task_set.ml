type t = { names : string array; by_name : (string, int) Hashtbl.t }

let of_names names =
  if Array.length names = 0 then invalid_arg "Task_set.of_names: empty";
  let by_name = Hashtbl.create (Array.length names) in
  Array.iteri (fun i n ->
      if Hashtbl.mem by_name n then
        invalid_arg ("Task_set.of_names: duplicate name " ^ n);
      Hashtbl.add by_name n i)
    names;
  { names = Array.copy names; by_name }

let numbered n = of_names (Array.init n (fun i -> Printf.sprintf "t%d" (i + 1)))

let size t = Array.length t.names

let name t i =
  if i < 0 || i >= Array.length t.names then
    invalid_arg "Task_set.name: index out of range";
  t.names.(i)

let names t = Array.copy t.names

let index t n = Hashtbl.find_opt t.by_name n

let index_exn t n =
  match index t n with Some i -> i | None -> raise Not_found

let equal a b = a.names = b.names

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat ", " (Array.to_list t.names))
