lib/taskmodel/task_set.mli: Format
