lib/taskmodel/generator.ml: Array Design Fun List Printf Rt_util
