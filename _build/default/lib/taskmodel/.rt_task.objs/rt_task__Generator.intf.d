lib/taskmodel/generator.mli: Design
