lib/taskmodel/design.mli: Format Rt_lattice Rt_util Task_set
