lib/taskmodel/design.ml: Array Buffer Format Fun Hashtbl Int List Printf Queue Rt_lattice Rt_util Task_set
