lib/taskmodel/task_set.ml: Array Format Hashtbl Printf String
