(** CAN bus model: a single shared serial medium with fixed-priority,
    non-preemptive arbitration — the frame with the lowest identifier wins
    arbitration among the queued frames; once transmission starts it runs
    to completion (Bosch CAN 2.0 behaviour at the granularity we need). *)

type frame = {
  can_id : int;   (** arbitration identifier, lower wins *)
  tx_time : int;  (** transmission duration in microseconds *)
  tag : int;      (** opaque client tag (the design edge index) *)
}

type t

val create : unit -> t

val submit : t -> frame -> unit
(** Queue a frame for arbitration. *)

val is_idle : t -> bool

val pending : t -> int
(** Number of frames waiting (not counting one in flight). *)

val try_start : t -> now:int -> (frame * int) option
(** If the bus is idle and frames are pending, start transmitting the
    highest-priority frame: returns it with its completion time
    [now + tx_time]. The caller must call [complete] at that time. *)

val in_flight : t -> frame option

val complete : t -> frame
(** Finish the in-flight transmission.
    @raise Invalid_argument if the bus is idle. *)
