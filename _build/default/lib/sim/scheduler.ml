module Heap = Rt_util.Binary_heap

type ecu_state = {
  ready : int Heap.t;
  mutable running : int option;
  mutable resume : int;
}

type t = {
  priority : int array;
  ecu_of : int array;
  remaining : int array;
  started : bool array;
  mutable starts : (int * int) list;  (* reversed chronological *)
  ecus : ecu_state array;
}

let create ~ecus ~priority ~ecu_of =
  if ecus < 1 then invalid_arg "Scheduler.create: need at least one ECU";
  if Array.length priority <> Array.length ecu_of then
    invalid_arg "Scheduler.create: priority/ecu_of length mismatch";
  Array.iter (fun e ->
      if e < 0 || e >= ecus then invalid_arg "Scheduler.create: ECU out of range")
    ecu_of;
  let n = Array.length priority in
  let mk_ecu () =
    (* The heap compares (priority, id) so dispatch is deterministic. *)
    { ready = Heap.create ~cmp:Int.compare ~capacity:8; running = None; resume = 0 }
  in
  {
    priority;
    ecu_of;
    remaining = Array.make n 0;
    started = Array.make n false;
    starts = [];
    ecus = Array.init ecus (fun _ -> mk_ecu ());
  }

(* Heap elements are packed (priority, id) keys so that ties break on the
   task index. *)
let key t task = (t.priority.(task) * 1_000_000) + task
let task_of_key k = k mod 1_000_000

let release t ~now:_ ~task ~work =
  if work <= 0 then invalid_arg "Scheduler.release: work must be positive";
  t.remaining.(task) <- work;
  Heap.push t.ecus.(t.ecu_of.(task)).ready (key t task)

let advance t ~now =
  Array.iter (fun e ->
      match e.running with
      | None -> e.resume <- now
      | Some r ->
        let progress = now - e.resume in
        assert (progress >= 0 && progress <= t.remaining.(r));
        t.remaining.(r) <- t.remaining.(r) - progress;
        e.resume <- now)
    t.ecus

let dispatch_ecu t e ~now =
  (* Put the running task back in competition, then pick the best. *)
  (match e.running with
   | Some r ->
     Heap.push e.ready (key t r);
     e.running <- None
   | None -> ());
  match Heap.pop e.ready with
  | None -> ()
  | Some k ->
    let r = task_of_key k in
    e.running <- Some r;
    e.resume <- now;
    if not t.started.(r) then begin
      t.started.(r) <- true;
      t.starts <- (now, r) :: t.starts
    end

let dispatch t ~now = Array.iter (fun e -> dispatch_ecu t e ~now) t.ecus

let next_completion t =
  Array.fold_left (fun acc e ->
      match e.running with
      | None -> acc
      | Some r ->
        let fin = e.resume + t.remaining.(r) in
        (match acc with Some m when m <= fin -> acc | _ -> Some fin))
    None t.ecus

let take_completions t ~now =
  let done_ = ref [] in
  Array.iter (fun e ->
      match e.running with
      | Some r when t.remaining.(r) = 0 ->
        e.running <- None;
        done_ := r :: !done_;
        dispatch_ecu t e ~now
      | Some _ | None -> ())
    t.ecus;
  List.rev !done_

let take_starts t =
  let s = List.rev t.starts in
  t.starts <- [];
  s

let busy t =
  Array.exists (fun e -> e.running <> None || not (Heap.is_empty e.ready)) t.ecus
