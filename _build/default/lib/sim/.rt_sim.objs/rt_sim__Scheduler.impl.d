lib/sim/scheduler.ml: Array Int List Rt_util
