lib/sim/can_bus.ml: Int Rt_util
