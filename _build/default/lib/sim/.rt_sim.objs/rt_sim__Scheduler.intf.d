lib/sim/scheduler.mli:
