lib/sim/can_bus.mli:
