lib/sim/simulator.ml: Array Can_bus Hashtbl Int List Rt_task Rt_trace Rt_util Scheduler
