lib/sim/simulator.mli: Rt_task Rt_trace
