type frame = { can_id : int; tx_time : int; tag : int }

type t = {
  queue : frame Rt_util.Binary_heap.t;
  mutable current : frame option;
}

let cmp_frame a b =
  let c = Int.compare a.can_id b.can_id in
  if c <> 0 then c else Int.compare a.tag b.tag

let create () =
  { queue = Rt_util.Binary_heap.create ~cmp:cmp_frame ~capacity:16; current = None }

let submit t f = Rt_util.Binary_heap.push t.queue f

let is_idle t = t.current = None

let pending t = Rt_util.Binary_heap.length t.queue

let try_start t ~now =
  match t.current with
  | Some _ -> None
  | None ->
    (match Rt_util.Binary_heap.pop t.queue with
     | None -> None
     | Some f ->
       t.current <- Some f;
       Some (f, now + f.tx_time))

let in_flight t = t.current

let complete t =
  match t.current with
  | None -> invalid_arg "Can_bus.complete: bus is idle"
  | Some f ->
    t.current <- None;
    f
