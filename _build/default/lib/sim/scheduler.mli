(** Fixed-priority preemptive scheduling state for a set of ECUs (the
    OSEK-like execution substrate). Time is driven externally by the
    discrete-event loop: the owner calls [advance] to account elapsed
    execution, asks for [next_completion] to bound its time step, and
    [take_completions]/[take_starts] to harvest what happened. *)

type t

val create : ecus:int -> priority:int array -> ecu_of:int array -> t
(** [priority.(i)] is task [i]'s fixed priority (lower = more urgent);
    [ecu_of.(i)] its processor in [0 .. ecus-1]. *)

val release : t -> now:int -> task:int -> work:int -> unit
(** Task [task] becomes ready at [now] with [work] microseconds of
    execution demand. A task may be released at most once per period
    (enforced by the caller). *)

val advance : t -> now:int -> unit
(** Account execution progress up to [now]. [now] must not exceed the
    earliest pending completion (the event loop guarantees this by
    stepping to [next_completion] at the latest). *)

val next_completion : t -> int option
(** Absolute time of the earliest completion among running tasks, given no
    further releases; [None] if every ECU is idle. *)

val take_completions : t -> now:int -> int list
(** Tasks whose demand reached zero exactly at [now] (call after
    [advance]); removes them and re-dispatches their ECUs. *)

val dispatch : t -> now:int -> unit
(** Re-evaluate every ECU: ensure the highest-priority ready task is
    running, preempting if needed. Must be called after [release]. *)

val take_starts : t -> (int * int) list
(** Drain the log of first dispatches since the last call:
    [(time, task)] pairs in chronological order. A preempted-and-resumed
    task does not reappear. *)

val busy : t -> bool
(** Some ECU still has running or ready work. *)
