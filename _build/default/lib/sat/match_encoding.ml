module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun
module Period = Rt_trace.Period

type encoding = {
  cnf : Cnf.t;
  vars : (int * (int * int)) array;
}

let allowed_pairs d p m =
  List.filter (fun (s, r) ->
      Dv.leq Dv.Fwd (Df.get d s r) && Dv.leq Dv.Bwd (Df.get d r s))
    (Rt_trace.Candidates.pairs p m)

let encode d (p : Period.t) =
  let table = ref [] and nvars = ref 0 in
  let per_msg =
    Array.mapi (fun mi m ->
        List.map (fun pair ->
            incr nvars;
            table := (mi, pair) :: !table;
            !nvars)
          (allowed_pairs d p m))
      p.msgs
  in
  let vars = Array.of_list (List.rev !table) in
  let at_least_one = Array.to_list per_msg in
  (* At most one message per (sender, receiver) pair: pairwise conflicts
     between variables sharing a pair. *)
  let by_pair = Hashtbl.create 16 in
  Array.iteri (fun i (_, pair) ->
      Hashtbl.replace by_pair pair
        ((i + 1) :: Option.value ~default:[] (Hashtbl.find_opt by_pair pair)))
    vars;
  let conflicts =
    Hashtbl.fold (fun _ vs acc ->
        let rec all_pairs = function
          | v1 :: rest -> List.map (fun v2 -> [ -v1; -v2 ]) rest @ all_pairs rest
          | [] -> []
        in
        all_pairs vs @ acc)
      by_pair []
  in
  { cnf = Cnf.make ~nvars:!nvars (at_least_one @ conflicts); vars }

let matches_sat d p =
  (* Execution closure is not part of the assignment problem; check it
     directly. *)
  let closure_ok =
    let ok = ref true in
    Df.iter_pairs (fun a b v ->
        if !ok && Dv.is_definite v && p.Period.executed.(a)
           && not p.Period.executed.(b)
        then ok := false)
      d;
    !ok
  in
  closure_ok && Dpll.is_satisfiable (encode d p).cnf

let witness_of_model enc model =
  let nmsgs =
    Array.fold_left (fun acc (mi, _) -> max acc (mi + 1)) 0 enc.vars
  in
  let witness = Array.make nmsgs (-1, -1) in
  Array.iteri (fun i (mi, pair) ->
      if model.(i + 1) && witness.(mi) = (-1, -1) then witness.(mi) <- pair)
    enc.vars;
  witness
