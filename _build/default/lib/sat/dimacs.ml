let to_string f = Format.asprintf "%a@." Cnf.pp f

type parse_error = { line : int; message : string }

let of_string s =
  let exception Fail of parse_error in
  let fail line message = raise (Fail { line; message }) in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  try
    List.iteri (fun i raw ->
        let lineno = i + 1 in
        let line = String.trim raw in
        if line = "" || line.[0] = 'c' then ()
        else if String.length line > 1 && line.[0] = 'p' then begin
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "p"; "cnf"; nv; nc ] ->
            (match int_of_string_opt nv, int_of_string_opt nc with
             | Some nv, Some nc -> header := Some (nv, nc)
             | _ -> fail lineno "bad p line")
          | _ -> fail lineno "bad p line"
        end
        else
          String.split_on_char ' ' line
          |> List.filter (( <> ) "")
          |> List.iter (fun tok ->
              match int_of_string_opt tok with
              | None -> fail lineno ("bad literal: " ^ tok)
              | Some 0 ->
                clauses := List.rev !current :: !clauses;
                current := []
              | Some l -> current := l :: !current))
      (String.split_on_char '\n' s);
    if !current <> [] then clauses := List.rev !current :: !clauses;
    (match !header with
     | None -> fail 0 "missing p cnf header"
     | Some (nvars, _) ->
       (match Cnf.make ~nvars (List.rev !clauses) with
        | f -> Ok f
        | exception Invalid_argument m -> fail 0 m))
  with Fail e -> Error e

let of_string_exn s =
  match of_string s with
  | Ok f -> f
  | Error e ->
    invalid_arg (Printf.sprintf "Dimacs.of_string_exn: line %d: %s" e.line e.message)
