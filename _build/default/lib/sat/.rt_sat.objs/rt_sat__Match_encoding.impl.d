lib/sat/match_encoding.ml: Array Cnf Dpll Hashtbl List Option Rt_lattice Rt_trace
