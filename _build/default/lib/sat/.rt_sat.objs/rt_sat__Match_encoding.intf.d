lib/sat/match_encoding.mli: Cnf Rt_lattice Rt_trace
