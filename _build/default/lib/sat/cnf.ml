type lit = int

type clause = lit list

type t = { nvars : int; clauses : clause list }

let make ~nvars clauses =
  if nvars < 0 then invalid_arg "Cnf.make: negative variable count";
  List.iter (fun c ->
      List.iter (fun l ->
          if l = 0 then invalid_arg "Cnf.make: zero literal";
          if abs l > nvars then invalid_arg "Cnf.make: literal out of range")
        c)
    clauses;
  { nvars; clauses }

let var l = abs l

let is_pos l = l > 0

let eval_clause c assignment =
  List.exists (fun l ->
      let v = assignment.(var l) in
      if is_pos l then v else not v)
    c

let eval f assignment = List.for_all (fun c -> eval_clause c assignment) f.clauses

let num_clauses f = List.length f.clauses

let pp ppf f =
  Format.fprintf ppf "@[<v>p cnf %d %d" f.nvars (num_clauses f);
  List.iter (fun c ->
      Format.fprintf ppf "@,%s 0"
        (String.concat " " (List.map string_of_int c)))
    f.clauses;
  Format.fprintf ppf "@]"
