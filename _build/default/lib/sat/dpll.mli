(** A DPLL satisfiability solver: unit propagation, pure-literal
    elimination, and first-unassigned branching. Complete for the
    formula sizes the matching encoder produces (hundreds of variables). *)

type stats = {
  decisions : int;
  propagations : int;
}

type result =
  | Sat of bool array  (** model; index 0 unused *)
  | Unsat

val solve : Cnf.t -> result

val solve_with_stats : Cnf.t -> result * stats

val is_satisfiable : Cnf.t -> bool

val brute_force : Cnf.t -> result
(** Exhaustive enumeration, for differential testing. Requires at most 20
    variables. *)
