(** SAT encoding of the per-period matching problem — the constructive
    face of Theorem 1 (the paper proves NP-hardness of the learning
    problem by transformation from SAT; the same assignment structure is
    visible here in the other direction: deciding message coverage {e is}
    a SAT problem).

    For a hypothesis [d] and a period, one propositional variable per
    (message, admissible candidate pair); clauses say every message gets
    at least one pair and no pair serves two messages. The encoding is
    equisatisfiable with the existence of a witness assignment, so
    [matches_sat] must agree with [Rt_learn.Matching.matches] — which the
    test suite checks differentially. *)

type encoding = {
  cnf : Cnf.t;
  vars : (int * (int * int)) array;
  (** variable [v] (1-based, index [v-1] here) encodes: message occurrence
      [fst] is assigned candidate pair [snd] *)
}

val encode : Rt_lattice.Depfun.t -> Rt_trace.Period.t -> encoding
(** Only the message-coverage half; combine with
    [Rt_learn.Matching.closure_ok] for full matching. *)

val matches_sat : Rt_lattice.Depfun.t -> Rt_trace.Period.t -> bool
(** Full matching decision via the SAT encoding. *)

val witness_of_model : encoding -> bool array -> (int * int) array
(** Decode a model into one (sender, receiver) per message occurrence. *)
