type stats = { decisions : int; propagations : int }

type result = Sat of bool array | Unsat

(* Assignments: 0 unassigned, 1 true, -1 false. Clauses as int arrays for
   cheap scanning; the solver is a simple recursive DPLL with assignment
   trail undo, which is plenty for the encoder's instances. *)
let solve_with_stats (f : Cnf.t) =
  let nv = f.Cnf.nvars in
  let assign = Array.make (nv + 1) 0 in
  let clauses = Array.of_list (List.map Array.of_list f.Cnf.clauses) in
  let decisions = ref 0 and propagations = ref 0 in
  let value l =
    let v = assign.(abs l) in
    if v = 0 then 0 else if (l > 0) = (v = 1) then 1 else -1
  in
  (* Returns the list of literals assigned during propagation (for undo),
     or None on conflict. *)
  let exception Conflict in
  let trail = ref [] in
  let set l =
    assign.(abs l) <- (if l > 0 then 1 else -1);
    trail := l :: !trail
  in
  (* Pop the trail back to a previously saved suffix (physical equality:
     suffixes are shared, never rebuilt). *)
  let undo_to mark =
    while not (!trail == mark) do
      match !trail with
      | [] -> assert false
      | l :: rest ->
        assign.(abs l) <- 0;
        trail := rest
    done
  in
  let propagate () =
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter (fun c ->
          let unassigned = ref 0 and last = ref 0 and sat = ref false in
          Array.iter (fun l ->
              match value l with
              | 1 -> sat := true
              | 0 ->
                incr unassigned;
                last := l
              | _ -> ())
            c;
          if not !sat then begin
            if !unassigned = 0 then raise Conflict
            else if !unassigned = 1 then begin
              set !last;
              incr propagations;
              changed := true
            end
          end)
        clauses
    done
  in
  let rec search () =
    let mark = !trail in
    match propagate () with
    | exception Conflict ->
      undo_to mark;
      false
    | () ->
      let branch_var =
        let rec find v = if v > nv then None else if assign.(v) = 0 then Some v else find (v + 1) in
        find 1
      in
      (match branch_var with
       | None -> true
       | Some v ->
         incr decisions;
         let try_value value_lit =
           let mark' = !trail in
           set value_lit;
           if search () then true
           else begin
             undo_to mark';
             false
           end
         in
         if try_value v || try_value (-v) then true
         else begin
           undo_to mark;
           false
         end)
  in
  let sat = search () in
  let stats = { decisions = !decisions; propagations = !propagations } in
  if sat then begin
    let model = Array.make (nv + 1) false in
    for v = 1 to nv do
      model.(v) <- assign.(v) = 1
    done;
    (Sat model, stats)
  end
  else (Unsat, stats)

let solve f = fst (solve_with_stats f)

let is_satisfiable f = match solve f with Sat _ -> true | Unsat -> false

let brute_force (f : Cnf.t) =
  let nv = f.Cnf.nvars in
  if nv > 20 then invalid_arg "Dpll.brute_force: too many variables";
  let rec go mask =
    if mask >= 1 lsl nv then Unsat
    else begin
      let a = Array.make (nv + 1) false in
      for v = 1 to nv do
        a.(v) <- mask land (1 lsl (v - 1)) <> 0
      done;
      if Cnf.eval f a then Sat a else go (mask + 1)
    end
  in
  go 0
