(** Propositional formulas in conjunctive normal form. Literals are
    non-zero integers; a negative literal is the negation of the variable
    with that magnitude (DIMACS convention). Variables are numbered
    [1 .. nvars]. *)

type lit = int

type clause = lit list

type t = private { nvars : int; clauses : clause list }

val make : nvars:int -> clause list -> t
(** Validates: no zero literal, magnitudes within [1..nvars].
    Empty clauses are allowed (they make the formula unsatisfiable). *)

val var : lit -> int
(** Variable index of a literal (its magnitude). *)

val is_pos : lit -> bool

val eval : t -> bool array -> bool
(** [eval f assignment] with [assignment.(v)] the value of variable [v]
    (index 0 unused). *)

val eval_clause : clause -> bool array -> bool

val num_clauses : t -> int

val pp : Format.formatter -> t -> unit
