(** DIMACS CNF reader/writer. *)

val to_string : Cnf.t -> string

type parse_error = { line : int; message : string }

val of_string : string -> (Cnf.t, parse_error) result

val of_string_exn : string -> Cnf.t
(** @raise Invalid_argument on malformed input. *)
