(** Second domain case study: an adaptive-cruise-control (ACC) function
    spread over three ECUs — the kind of end-to-end chain the paper's
    motivation describes ("if the brake is pressed, then brake actuator
    must react within 300 msec").

    Sensor cluster (ECU 0): radar and camera acquisition feed their
    processing tasks over {e local} links the bus logger cannot see.
    Controller (ECU 1): sensor fusion joins both streams; the ACC
    controller then selects exactly one mode — [Follow] or [Cruise] —
    whose output the arbiter forwards. Actuation (ECU 2): throttle,
    brake and HMI receive the arbiter's commands on the bus.

    Learnable structure: [Fusion] and [Arbiter] are conjunction nodes,
    [AccCtl] a disjunction node, [Follow]/[Cruise] mutually exclusive
    modes, and [d(AccCtl, Arbiter) = →] holds through either mode. The
    two acquisition→processing hops are invisible to the learner (local
    edges) but visible to the ordering baseline. *)

val names : string array

val task : string -> int
(** Index by name. @raise Not_found for unknown names. *)

val design : unit -> Rt_task.Design.t

val brake_deadline_us : int
(** The end-to-end budget from sensor acquisition to brake actuation the
    analysis is checked against. *)

val brake_path : unit -> int list
(** The radar → fusion → controller → arbiter → brake chain. *)

val reference_config : Rt_sim.Simulator.config

val trace : ?periods:int -> ?seed:int -> unit -> Rt_trace.Trace.t
