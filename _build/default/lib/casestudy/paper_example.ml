module D = Rt_task.Design
module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun

let design () =
  let task name policy priority =
    { D.name; policy; ecu = 0; priority; wcet = 10; offset = 0 }
  in
  D.make
    ~tasks:[|
      task "t1" D.Choose_any 1;
      task "t2" D.Broadcast 2;
      task "t3" D.Broadcast 3;
      task "t4" D.Broadcast 4;
    |]
    ~edges:
      (let edge src dst can_id =
         { D.src; dst; can_id; tx_time = 3; medium = D.Bus }
       in
       [| edge 0 1 1; edge 0 2 2; edge 1 3 3; edge 2 3 4 |])
    ~period:1000

let trace_text = {|# rtgen-trace v1
tasks t1 t2 t3 t4
period 0
10 start t1
20 end t1
21 rise 0x1
24 fall 0x1
25 start t2
35 end t2
36 rise 0x2
39 fall 0x2
40 start t4
50 end t4
period 1
10 start t1
20 end t1
21 rise 0x1
24 fall 0x1
25 start t3
35 end t3
36 rise 0x2
39 fall 0x2
40 start t4
50 end t4
period 2
10 start t1
20 end t1
21 rise 0x1
24 fall 0x1
25 rise 0x2
28 fall 0x2
30 start t3
40 end t3
45 start t2
55 end t2
56 rise 0x3
59 fall 0x3
60 rise 0x4
63 fall 0x4
65 start t4
75 end t4
|}

let trace () = Rt_trace.Trace_io.of_string_exn trace_text

(* Shorthands matching the paper's table notation. *)
let p = Dv.Par
let f = Dv.Fwd
let b = Dv.Bwd
let fq = Dv.Fwd_maybe
let bq = Dv.Bwd_maybe

let expected_after_period_1 =
  [
    Df.of_rows [ [ p; f; p; f ]; [ b; p; p; p ]; [ p; p; p; p ]; [ b; p; p; p ] ];
    Df.of_rows [ [ p; f; p; p ]; [ b; p; p; f ]; [ p; p; p; p ]; [ p; b; p; p ] ];
    Df.of_rows [ [ p; p; p; f ]; [ p; p; p; f ]; [ p; p; p; p ]; [ b; b; p; p ] ];
  ]

let expected_final =
  [
    Df.of_rows [ [ p; fq; fq; f ]; [ b; p; p; p ]; [ b; p; p; f ]; [ b; p; bq; p ] ];
    Df.of_rows [ [ p; p; fq; f ]; [ p; p; p; f ]; [ b; p; p; f ]; [ b; bq; bq; p ] ];
    Df.of_rows [ [ p; fq; p; f ]; [ b; p; p; f ]; [ p; p; p; f ]; [ b; bq; bq; p ] ];
    Df.of_rows [ [ p; fq; fq; f ]; [ b; p; p; f ]; [ b; p; p; p ]; [ b; bq; p; p ] ];
    Df.of_rows [ [ p; fq; fq; p ]; [ b; p; p; f ]; [ b; p; p; f ]; [ p; bq; bq; p ] ];
  ]

let expected_lub =
  Df.of_rows [ [ p; fq; fq; f ]; [ b; p; p; f ]; [ b; p; p; f ]; [ b; bq; bq; p ] ]
