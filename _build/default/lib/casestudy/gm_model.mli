(** Synthetic stand-in for the paper's proprietary GM controller (§3.4):
    18 tasks named S, A..Q on one CAN bus, producing ≈12 messages per
    period so that the 27-period reference trace carries ≈330 messages —
    the scale the paper reports.

    The model embeds the qualitative features the paper's results
    highlight, so the learner can rediscover them:

    - [A] and [B] are {b disjunction nodes} ([Choose_one] mode selectors:
      A fires C or D, B fires E or F);
    - [H], [P] and [Q] are {b conjunction nodes} (joins fed by whichever
      mode path ran);
    - every mode path from [A] reaches [L] and every mode path from [B]
      reaches [M], so the learner must find the unconditional transitive
      dependencies [d(A,L) = →] and [d(B,M) = →] that are not edges of
      the design;
    - [S] and [O] are infrastructure tasks (sources with no messages —
      an OSEK dispatcher tick and a bus-manager task). [O] shares ECU 0
      with [Q] at higher priority and always finishes before [Q]'s inputs
      arrive, so the learner discovers the {b implicit dependency}
      [d(Q,O) = ←] that the design never states — the paper's Q–O
      finding, which the latency analysis then uses to rule out
      preemption of Q by O. *)

val names : string array
(** [S; A; B; ...; Q] in index order. *)

val task : string -> int
(** Index by name. @raise Not_found for unknown names. *)

val design : unit -> Rt_task.Design.t

val reference_config : Rt_sim.Simulator.config
(** 27 periods, fixed seed — the stand-in for the paper's logged trace. *)

val trace : ?periods:int -> ?seed:int -> unit -> Rt_trace.Trace.t
(** Simulate the controller; defaults to [reference_config]. *)
