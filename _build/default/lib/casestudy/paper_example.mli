(** The paper's §3.3 worked example as reusable fixtures: the Fig. 1
    design, the Fig. 2 trace (hand-timed so the candidate sets match the
    paper's assumption tables), and the expected results (the five final
    hypotheses d81..d85 and their least upper bound, Fig. 4). *)

val design : unit -> Rt_task.Design.t
(** Fig. 1: t1 —(choose any)→ {t2, t3}; t2 → t4; t3 → t4. *)

val trace : unit -> Rt_trace.Trace.t
(** Fig. 2: three periods — {t1 t2 t4}, {t1 t3 t4}, {t1 t3 t2 t4}. *)

val trace_text : string
(** The Fig. 2 trace in the textual trace format. *)

val expected_after_period_1 : Rt_lattice.Depfun.t list
(** The paper's d21, d22, d23. *)

val expected_final : Rt_lattice.Depfun.t list
(** The paper's d81 .. d85. *)

val expected_lub : Rt_lattice.Depfun.t
(** The paper's dLUB (Fig. 4). *)
