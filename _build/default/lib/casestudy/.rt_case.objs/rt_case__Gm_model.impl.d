lib/casestudy/gm_model.ml: Array Option Rt_sim Rt_task
