lib/casestudy/acc_model.ml: Array Option Rt_sim Rt_task
