lib/casestudy/paper_example.mli: Rt_lattice Rt_task Rt_trace
