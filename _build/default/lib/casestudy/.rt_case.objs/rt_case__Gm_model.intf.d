lib/casestudy/gm_model.mli: Rt_sim Rt_task Rt_trace
